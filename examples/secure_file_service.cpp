// The paper's "specialized file storage and management system": a
// network-connected file service with mandatory AIM labels.  Documents at
// several sensitivity levels are stored and served; the reference monitor
// enforces simple security and the *-property on every operation, and the
// audit log shows what an integrity auditor would review.
//
//   ./build/examples/example_secure_file_service
#include <cstdio>
#include <string>

#include "src/fs/path_walker.h"
#include "src/kernel/kernel.h"

namespace {

std::string Outcome(const mks::Status& s) { return s.ok() ? "ALLOWED" : s.ToString(); }

}  // namespace

int main() {
  using namespace mks;

  KernelConfig config;
  // A hardened root: only the file-service daemon may write top-level names.
  config.root_acl = Acl{};
  config.root_acl.Add(AclEntry{"*", "FileSvc", AccessModes::RW()});
  config.root_acl.Add(AclEntry{"*", "*", AccessModes::R()});
  Kernel kernel{config};
  if (!kernel.Boot().ok()) {
    return 1;
  }

  // The service daemon builds per-level document libraries.  Directory
  // labels rise with the shelf level ("upgraded" directories).
  Subject daemon{Principal{"Curator", "FileSvc"}, Label::SystemLow(), 4};
  auto daemon_pid = kernel.processes().CreateProcess(daemon);
  ProcContext* svc = kernel.processes().Context(*daemon_pid);
  PathWalker walker(&kernel.gates());

  Acl shelf_acl;
  shelf_acl.Add(AclEntry{"*", "*", AccessModes::RW()});
  struct Shelf {
    const char* name;
    Label label;
  };
  const Shelf shelves[] = {
      {"public", Label(0, 0)},
      {"confidential", Label(1, 0)},
      {"secret", Label(3, 0)},
  };
  auto docs = kernel.gates().CreateDirectory(*svc, kernel.gates().RootId(), "docs", shelf_acl,
                                             Label::SystemLow());
  for (const Shelf& shelf : shelves) {
    auto dir = kernel.gates().CreateDirectory(*svc, *docs, shelf.name, shelf_acl, shelf.label);
    if (!dir.ok()) {
      std::printf("shelf %s: %s\n", shelf.name, dir.status().ToString().c_str());
    }
  }

  // Per-level writers deposit documents (writers must run AT the shelf level
  // to write there: write-equal).
  struct Writer {
    const char* person;
    Label label;
    const char* shelf;
    const char* doc;
  };
  const Writer writers[] = {
      {"Pressman", Label(0, 0), "public", "newsletter"},
      {"Analyst", Label(1, 0), "confidential", "forecast"},
      {"Cryptographer", Label(3, 0), "secret", "keys"},
  };
  for (const Writer& w : writers) {
    Subject subject{Principal{w.person, "Gov"}, w.label, 4};
    auto pid = kernel.processes().CreateProcess(subject);
    ProcContext* ctx = kernel.processes().Context(*pid);
    auto entry = walker.CreateSegment(*ctx, std::string(">docs>") + w.shelf + ">" + w.doc,
                                      shelf_acl, w.label);
    if (entry.ok()) {
      auto segno = kernel.gates().Initiate(*ctx, *entry);
      (void)kernel.gates().Write(*ctx, *segno, 0, 0x5eC2e7);
      std::printf("deposit %-12s -> >docs>%s>%s at %s\n", w.person, w.shelf, w.doc,
                  w.label.ToString().c_str());
    } else {
      std::printf("deposit %-12s FAILED: %s\n", w.person, entry.status().ToString().c_str());
    }
  }

  // A confidential-level reader exercises the mandatory policy.
  std::printf("\nreader at L1{} attempts:\n");
  Subject reader{Principal{"Officer", "Gov"}, Label(1, 0), 4};
  auto reader_pid = kernel.processes().CreateProcess(reader);
  ProcContext* rd = kernel.processes().Context(*reader_pid);

  struct Attempt {
    const char* what;
    const char* path;
    bool write;
  };
  const Attempt attempts[] = {
      {"read the public newsletter (read down)", ">docs>public>newsletter", false},
      {"read the confidential forecast (read equal)", ">docs>confidential>forecast", false},
      {"read the secret keys (READ UP)", ">docs>secret>keys", false},
      {"write the public newsletter (WRITE DOWN)", ">docs>public>newsletter", true},
      {"write the confidential forecast (write equal)", ">docs>confidential>forecast", true},
  };
  for (const Attempt& a : attempts) {
    auto segno = walker.Initiate(*rd, a.path);
    Status result = segno.status();
    if (segno.ok()) {
      result = a.write ? kernel.gates().Write(*rd, *segno, 1, 42)
                       : kernel.gates().Read(*rd, *segno, 0).status();
    }
    std::printf("  %-46s %s\n", a.what, Outcome(result).c_str());
  }

  // What the integrity auditor reviews afterwards.
  const auto& audit = kernel.ctx().monitor.audit_log();
  std::printf("\naudit log: %llu decisions, %llu denials; last denials:\n",
              (unsigned long long)audit.total_count(),
              (unsigned long long)audit.denial_count());
  int shown = 0;
  for (auto it = audit.records().rbegin(); it != audit.records().rend() && shown < 5; ++it) {
    if (it->outcome != Code::kOk) {
      std::printf("  t=%-8llu %-16s %-18s %-12s %s\n", (unsigned long long)it->time,
                  it->subject.c_str(), it->operation.c_str(), it->target.c_str(),
                  std::string(CodeName(it->outcome)).c_str());
      ++shown;
    }
  }
  return 0;
}
