// A time-sharing session: several users log in through the answering
// service, run editing/compiling-flavoured workloads multiplexed over the
// fixed virtual-processor pool, link against a shared library through the
// user-ring dynamic linker, and are billed at logout.
//
//   ./build/examples/example_time_sharing
#include <cstdio>

#include "src/answering/service.h"
#include "src/fs/linker.h"

int main() {
  using namespace mks;

  KernelConfig config;
  config.memory_frames = 256;
  config.vp_count = 6;
  Kernel kernel{config};
  if (!kernel.Boot().ok()) {
    return 1;
  }
  Authenticator auth(&kernel);
  if (!auth.Init().ok()) {
    return 1;
  }
  AnsweringService service(&kernel, &auth, ServiceDomain::kUserDomain);

  // Enroll a small user community with different clearances.
  struct UserSpec {
    const char* person;
    const char* password;
    Label clearance;
  };
  const UserSpec users[] = {
      {"Saltzer", "ctss!", Label(3, 0b11)},
      {"Clark", "arpanet", Label(2, 0b01)},
      {"Schroeder", "parc", Label(2, 0b10)},
      {"Reed", "eventcount", Label(1, 0)},
  };
  for (const UserSpec& u : users) {
    (void)auth.Enroll(Principal{u.person, "CSR"}, u.password, u.clearance);
  }

  // A shared library segment everyone links against.
  {
    Subject librarian{Principal{"Librarian", "SysDaemon"}, Label::SystemLow(), 4};
    auto lib_pid = kernel.processes().CreateProcess(librarian);
    PathWalker walker(&kernel.gates());
    Acl acl;
    acl.Add(AclEntry{"*", "*", AccessModes::RWE()});
    (void)walker.CreateSegment(*kernel.processes().Context(*lib_pid), ">lib>ed_", acl,
                               Label::SystemLow());
  }

  // Log everyone in at system-low and give them work.
  std::vector<ProcessId> sessions;
  PathWalker walker(&kernel.gates());
  ReferenceNameManager names(&kernel.ctx());
  DynamicLinker linker(&kernel.ctx(), &kernel.gates(), &walker, &names);
  for (const UserSpec& u : users) {
    auto pid = service.Login(Principal{u.person, "CSR"}, u.password, Label::SystemLow());
    if (!pid.ok()) {
      std::printf("login failed for %s: %s\n", u.person, pid.status().ToString().c_str());
      continue;
    }
    sessions.push_back(*pid);
    ProcContext* ctx = kernel.processes().Context(*pid);

    // "Edit a file": create it in the home directory and touch pages.
    Acl acl;
    acl.Add(AclEntry{u.person, "CSR", AccessModes::RWE()});
    const std::string home = std::string(">udd>CSR>") + u.person;
    auto entry = walker.CreateSegment(*ctx, home + ">draft", acl, Label::SystemLow());
    if (!entry.ok()) {
      continue;
    }
    auto segno = kernel.gates().Initiate(*ctx, *entry);

    // Link the editor through the search rules (first user snaps, later
    // users resolve from their own linkage).
    linker.AddSearchDir(*pid, ">lib");
    (void)linker.Snap(*ctx, "ed_");

    std::vector<UserOp> program;
    for (uint32_t n = 0; n < 60; ++n) {
      program.push_back(UserOp::Write(*segno, (n % 8) * kPageWords + n, n));
      program.push_back(UserOp::Compute(30));
      if (n % 10 == 9) {
        program.push_back(UserOp::Read(*segno, ((n + 3) % 8) * kPageWords));
      }
    }
    (void)kernel.processes().SetProgram(*pid, std::move(program));
  }

  std::printf("running %zu sessions over %u virtual processors...\n", sessions.size(),
              kernel.vprocs().vp_count());
  Status ran = kernel.processes().RunUntilQuiescent(1000000);
  std::printf("scheduler: %s; simulated time %llu cycles\n", ran.ToString().c_str(),
              (unsigned long long)kernel.clock().now());

  for (ProcessId pid : sessions) {
    auto bill = service.BillFor(pid);
    if (bill.ok()) {
      std::printf("  pid %-4u cpu=%-9llu ops=%-5llu connect=%llu\n", pid.value,
                  (unsigned long long)bill->cpu_cycles, (unsigned long long)bill->ops,
                  (unsigned long long)bill->connect_time);
    }
    (void)service.Logout(pid);
  }
  std::printf("\n%s\n", service.AccountingReport().c_str());
  std::printf("dispatches=%llu link_snaps=%llu page_faults=%llu\n",
              (unsigned long long)kernel.metrics().Get("vproc.dispatches"),
              (unsigned long long)kernel.metrics().Get("linker.snaps"),
              (unsigned long long)kernel.metrics().Get("pfm.faults_serviced"));
  return 0;
}
