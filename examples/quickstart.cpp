// Quickstart: boot the kernel, log a user in, build a small hierarchy, write
// and read a segment, look at quota and the audit trail.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
#include <cstdio>

#include "src/fs/path_walker.h"
#include "src/kernel/kernel.h"

int main() {
  using namespace mks;

  // 1. Boot a kernel.  Every knob has a sensible default; here we take a
  //    small machine so the numbers are easy to read.
  KernelConfig config;
  config.memory_frames = 256;
  Kernel kernel{config};
  Status booted = kernel.Boot();
  if (!booted.ok()) {
    std::printf("boot failed: %s\n", booted.ToString().c_str());
    return 1;
  }
  std::printf("booted: %u vps, %u pageable frames, %zu packs\n",
              kernel.vprocs().vp_count(), kernel.page_frames().total_frames(),
              kernel.ctx().volumes.pack_count());

  // 2. Create a process for a user subject.
  Subject jones{Principal{"Jones", "Projx"}, Label::SystemLow(), /*ring=*/4};
  auto pid = kernel.processes().CreateProcess(jones);
  if (!pid.ok()) {
    std::printf("process creation failed: %s\n", pid.status().ToString().c_str());
    return 1;
  }
  ProcContext* ctx = kernel.processes().Context(*pid);

  // 3. Build >udd>Projx>Jones>notes with the user-ring path walker (tree-name
  //    expansion is NOT a kernel function; only single-directory search is).
  PathWalker walker(&kernel.gates());
  Acl acl;
  acl.Add(AclEntry{"Jones", "Projx", AccessModes::RWE()});
  acl.Add(AclEntry{"*", "*", AccessModes::R()});
  auto entry = walker.CreateSegment(*ctx, ">udd>Projx>Jones>notes", acl, Label::SystemLow());
  if (!entry.ok()) {
    std::printf("create failed: %s\n", entry.status().ToString().c_str());
    return 1;
  }

  // 4. Initiate it (bind a segment number) and touch it.  The writes below
  //    grow the segment page by page: each first touch of a page raises a
  //    quota exception that the kernel resolves against the static quota
  //    cell, allocates a disk record for, and retries transparently.
  auto segno = kernel.gates().Initiate(*ctx, *entry);
  for (uint32_t p = 0; p < 5; ++p) {
    (void)kernel.gates().Write(*ctx, *segno, p * kPageWords, 1000 + p);
  }
  auto word = kernel.gates().Read(*ctx, *segno, 3 * kPageWords);
  std::printf("wrote 5 pages; page 3 word 0 reads back %llu\n",
              (unsigned long long)*word);

  // 5. Storage accounting: the root quota cell was charged for the pages.
  auto quota = kernel.gates().GetQuota(*ctx, kernel.gates().RootId());
  std::printf("root quota: %llu of %llu pages in use\n", (unsigned long long)quota->count,
              (unsigned long long)quota->limit);

  // 6. A few interesting counters.
  std::printf("\ncounters:\n");
  for (const char* key : {"ksm.quota_exceptions", "pfm.pages_added", "dir.searches",
                          "seg.activations", "hw.translations"}) {
    std::printf("  %-24s %llu\n", key, (unsigned long long)kernel.metrics().Get(key));
  }

  // 7. The audit trail records every gate decision.
  const auto& audit = kernel.ctx().monitor.audit_log();
  std::printf("\naudit: %llu decisions, %llu denials\n",
              (unsigned long long)audit.total_count(),
              (unsigned long long)audit.denial_count());
  return 0;
}
