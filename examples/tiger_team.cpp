// The tiger team: the fourth prong of the paper's verification plan ("a
// tiger team can be assigned the task of breaking into the system").  Each
// attack is a small scripted attempt against the kernel's protection
// machinery; the run reports what was blocked, what leaked, and what the
// audit trail saw.
//
//   ./build/examples/example_tiger_team
#include <cstdio>
#include <functional>
#include <vector>

#include "src/answering/service.h"
#include "src/fs/path_walker.h"

namespace {

struct AttackResult {
  bool blocked;
  std::string note;
};

}  // namespace

int main() {
  using namespace mks;

  Kernel kernel{KernelConfig{}};
  if (!kernel.Boot().ok()) {
    return 1;
  }
  Authenticator auth(&kernel);
  (void)auth.Init();
  (void)auth.Enroll(Principal{"General", "Army"}, "west-point", Label(3, 0));

  KernelGates& gates = kernel.gates();
  PathWalker walker(&gates);

  // The defender sets up: an owner-only directory holding one open and one
  // private file, plus a secret-labelled report.
  Subject owner{Principal{"Owner", "Ops"}, Label::SystemLow(), 4};
  auto owner_pid = kernel.processes().CreateProcess(owner);
  ProcContext* own = kernel.processes().Context(*owner_pid);
  Acl owner_only;
  owner_only.Add(AclEntry{"Owner", "Ops", AccessModes::RWE()});
  Acl world;
  world.Add(AclEntry{"*", "*", AccessModes::RWE()});
  auto vault = gates.CreateDirectory(*own, gates.RootId(), "vault", owner_only,
                                     Label::SystemLow());
  (void)gates.CreateSegment(*own, *vault, "open_memo", world, Label::SystemLow());
  (void)gates.CreateSegment(*own, *vault, "battle_plan", owner_only, Label::SystemLow());
  auto upgraded =
      gates.CreateDirectory(*own, gates.RootId(), "level3", world, Label(3, 0));
  (void)kernel.processes().DestroyProcess(*owner_pid);  // owner logs off

  // The attacker: an ordinary low-labelled user.
  Subject mallory{Principal{"Mallory", "Visitors"}, Label::SystemLow(), 4};
  auto mallory_pid = kernel.processes().CreateProcess(mallory);
  ProcContext* mal = kernel.processes().Context(*mallory_pid);

  std::vector<std::pair<std::string, AttackResult>> report;
  auto record = [&](const std::string& name, bool blocked, std::string note) {
    report.emplace_back(name, AttackResult{blocked, std::move(note)});
  };

  // Attack 1: enumerate a protected directory.
  {
    std::vector<std::string> names;
    Status st = gates.ListNames(*mal, *vault, &names);
    record("list the vault's names", !st.ok(), st.ToString());
  }

  // Attack 2: probe for file existence through the inaccessible directory.
  // Bratt's primitive answers every probe; only the final initiate
  // discriminates, and it says the same thing for real and mythical targets.
  {
    auto probe_real = gates.Search(*mal, *vault, "battle_plan");
    auto probe_fake = gates.Search(*mal, *vault, "retreat_plan");
    const Code real_outcome = gates.Initiate(*mal, *probe_real).code();
    const Code fake_outcome = gates.Initiate(*mal, *probe_fake).code();
    const bool indistinguishable =
        probe_real.ok() && probe_fake.ok() && real_outcome == fake_outcome;
    record("distinguish real vs mythical names", indistinguishable,
           std::string("both probes answered; both initiates say ") +
               std::string(CodeName(real_outcome)));
  }

  // Attack 3: but a world-accessible file INSIDE the closed directory is
  // reachable by exact name — access is the file's ACL, not the path's.
  {
    auto segno = walker.Initiate(*mal, ">vault>open_memo");
    record("reach a world-readable file by exact name", false,
           segno.ok() ? "allowed (by design: access is the file's own ACL)"
                      : segno.status().ToString());
  }

  // Attack 4: read up.  A secret session deposits a report in the upgraded
  // directory; low Mallory tries to read it.
  {
    auto high = kernel.processes().CreateProcess(Subject{Principal{"General", "Army"},
                                                         Label(3, 0), 4});
    ProcContext* gen = kernel.processes().Context(*high);
    auto entry = gates.CreateSegment(*gen, *upgraded, "report", world, Label(3, 0));
    if (entry.ok()) {
      auto gsegno = gates.Initiate(*gen, *entry);
      (void)gates.Write(*gen, *gsegno, 0, 0xa77ac4);
    }
    // Initiating for write-UP is legal under BLP; the read itself must fail.
    auto probe = walker.Initiate(*mal, ">level3>report");
    Status read_up = probe.ok() ? kernel.gates().Read(*mal, *probe, 0).status()
                                : probe.status();
    record("read up into a secret report", !read_up.ok(), read_up.ToString());

    // Attack 5: write down.  The secret session tries to leave a note in a
    // low directory for Mallory.
    auto leak = gates.CreateSegment(*gen, gates.RootId(), "dead_drop", world,
                                    Label::SystemLow());
    record("write down a dead drop from the secret session", !leak.ok(),
           leak.status().ToString());
  }

  // Attack 6: guess passwords.
  {
    int failures = 0;
    for (const char* guess : {"password", "letmein", "mulder", "WEST-POINT"}) {
      if (!auth.Authenticate(Principal{"General", "Army"}, guess, Label(0, 0)).ok()) {
        ++failures;
      }
    }
    record("guess the General's password", failures == 4,
           std::to_string(failures) + "/4 guesses rejected");
  }

  // Attack 7: request a session above clearance.
  {
    auto session = auth.Authenticate(Principal{"General", "Army"}, "west-point", Label(7, 0));
    record("log in above clearance", !session.ok(), session.status().ToString());
  }

  // Attack 8: the zero-page covert channel (expected to LEAK in the default
  // configuration; the paper's point is that it exists).
  {
    auto dir = gates.CreateDirectory(*mal, gates.RootId(), "chan", world, Label::SystemLow());
    (void)gates.SetQuota(*mal, *dir, 50);
    auto seg = gates.CreateSegment(*mal, *dir, "medium", world, Label::SystemLow());
    auto segno = gates.Initiate(*mal, *seg);
    (void)gates.Write(*mal, *segno, 0, 1);
    (void)gates.Write(*mal, *segno, 0, 0);
    kernel.address_spaces().DisconnectEverywhere(SegmentUid(seg->value));
    (void)kernel.segments().Deactivate(kernel.segments().FindIndex(SegmentUid(seg->value)));
    auto before = gates.GetQuota(*mal, *dir);
    auto high = kernel.processes().CreateProcess(Subject{Principal{"General", "Army"},
                                                         Label(3, 0), 4});
    ProcContext* gen = kernel.processes().Context(*high);
    auto hsegno = gates.Initiate(*gen, *seg);
    (void)gates.Read(*gen, *hsegno, 0);  // the covert "1"
    auto after = gates.GetQuota(*mal, *dir);
    const bool leaked = before.ok() && after.ok() && after->count != before->count;
    record("zero-page quota covert channel", !leaked,
           leaked ? "LEAKED: quota count moved on a mere read (paper's confinement finding;"
                    " see KernelConfig::close_zero_page_channel)"
                  : "closed");
  }

  std::printf("=== tiger team report ===\n\n");
  int blocked = 0;
  for (const auto& [name, result] : report) {
    std::printf("%-46s %-8s %s\n", name.c_str(), result.blocked ? "BLOCKED" : "OPEN",
                result.note.c_str());
    blocked += result.blocked ? 1 : 0;
  }
  const auto& audit = kernel.ctx().monitor.audit_log();
  std::printf("\n%d/%zu attacks blocked; audit saw %llu denials.\n", blocked, report.size(),
              (unsigned long long)audit.denial_count());
  std::printf("(the covert channel is expected OPEN by default — run with\n"
              " close_zero_page_channel to trade storage charging for confinement)\n");
  return 0;
}
