
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aim_test.cc" "tests/CMakeFiles/mks_tests.dir/aim_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/aim_test.cc.o.d"
  "/root/repo/tests/answering_test.cc" "tests/CMakeFiles/mks_tests.dir/answering_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/answering_test.cc.o.d"
  "/root/repo/tests/baseline_services_test.cc" "tests/CMakeFiles/mks_tests.dir/baseline_services_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/baseline_services_test.cc.o.d"
  "/root/repo/tests/baseline_test.cc" "tests/CMakeFiles/mks_tests.dir/baseline_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/baseline_test.cc.o.d"
  "/root/repo/tests/census_test.cc" "tests/CMakeFiles/mks_tests.dir/census_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/census_test.cc.o.d"
  "/root/repo/tests/confinement_test.cc" "tests/CMakeFiles/mks_tests.dir/confinement_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/confinement_test.cc.o.d"
  "/root/repo/tests/core_segment_test.cc" "tests/CMakeFiles/mks_tests.dir/core_segment_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/core_segment_test.cc.o.d"
  "/root/repo/tests/deps_graph_test.cc" "tests/CMakeFiles/mks_tests.dir/deps_graph_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/deps_graph_test.cc.o.d"
  "/root/repo/tests/directory_test.cc" "tests/CMakeFiles/mks_tests.dir/directory_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/directory_test.cc.o.d"
  "/root/repo/tests/disk_test.cc" "tests/CMakeFiles/mks_tests.dir/disk_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/disk_test.cc.o.d"
  "/root/repo/tests/flow_model_test.cc" "tests/CMakeFiles/mks_tests.dir/flow_model_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/flow_model_test.cc.o.d"
  "/root/repo/tests/fs_user_ring_test.cc" "tests/CMakeFiles/mks_tests.dir/fs_user_ring_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/fs_user_ring_test.cc.o.d"
  "/root/repo/tests/fullpack_test.cc" "tests/CMakeFiles/mks_tests.dir/fullpack_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/fullpack_test.cc.o.d"
  "/root/repo/tests/hw_test.cc" "tests/CMakeFiles/mks_tests.dir/hw_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/hw_test.cc.o.d"
  "/root/repo/tests/ipc_test.cc" "tests/CMakeFiles/mks_tests.dir/ipc_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/ipc_test.cc.o.d"
  "/root/repo/tests/kernel_boot_test.cc" "tests/CMakeFiles/mks_tests.dir/kernel_boot_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/kernel_boot_test.cc.o.d"
  "/root/repo/tests/lock_protocol_test.cc" "tests/CMakeFiles/mks_tests.dir/lock_protocol_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/lock_protocol_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/mks_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/page_frame_test.cc" "tests/CMakeFiles/mks_tests.dir/page_frame_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/page_frame_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/mks_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/quota_test.cc" "tests/CMakeFiles/mks_tests.dir/quota_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/quota_test.cc.o.d"
  "/root/repo/tests/rng_hash_test.cc" "tests/CMakeFiles/mks_tests.dir/rng_hash_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/rng_hash_test.cc.o.d"
  "/root/repo/tests/segment_manager_test.cc" "tests/CMakeFiles/mks_tests.dir/segment_manager_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/segment_manager_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/mks_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/mks_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/sync_test.cc" "tests/CMakeFiles/mks_tests.dir/sync_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/sync_test.cc.o.d"
  "/root/repo/tests/uproc_test.cc" "tests/CMakeFiles/mks_tests.dir/uproc_test.cc.o" "gcc" "tests/CMakeFiles/mks_tests.dir/uproc_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mks.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
