# Empty dependencies file for mks_tests.
# This may be replaced when dependencies are built.
