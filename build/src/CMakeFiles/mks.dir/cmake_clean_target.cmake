file(REMOVE_RECURSE
  "libmks.a"
)
