# Empty compiler generated dependencies file for mks.
# This may be replaced when dependencies are built.
