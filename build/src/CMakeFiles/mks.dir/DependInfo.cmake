
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aim/monitor.cc" "src/CMakeFiles/mks.dir/aim/monitor.cc.o" "gcc" "src/CMakeFiles/mks.dir/aim/monitor.cc.o.d"
  "/root/repo/src/answering/auth.cc" "src/CMakeFiles/mks.dir/answering/auth.cc.o" "gcc" "src/CMakeFiles/mks.dir/answering/auth.cc.o.d"
  "/root/repo/src/answering/service.cc" "src/CMakeFiles/mks.dir/answering/service.cc.o" "gcc" "src/CMakeFiles/mks.dir/answering/service.cc.o.d"
  "/root/repo/src/baseline/supervisor.cc" "src/CMakeFiles/mks.dir/baseline/supervisor.cc.o" "gcc" "src/CMakeFiles/mks.dir/baseline/supervisor.cc.o.d"
  "/root/repo/src/census/census.cc" "src/CMakeFiles/mks.dir/census/census.cc.o" "gcc" "src/CMakeFiles/mks.dir/census/census.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/mks.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/mks.dir/common/hash.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/mks.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/mks.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/mks.dir/common/status.cc.o" "gcc" "src/CMakeFiles/mks.dir/common/status.cc.o.d"
  "/root/repo/src/deps/graph.cc" "src/CMakeFiles/mks.dir/deps/graph.cc.o" "gcc" "src/CMakeFiles/mks.dir/deps/graph.cc.o.d"
  "/root/repo/src/deps/tracker.cc" "src/CMakeFiles/mks.dir/deps/tracker.cc.o" "gcc" "src/CMakeFiles/mks.dir/deps/tracker.cc.o.d"
  "/root/repo/src/disk/pack.cc" "src/CMakeFiles/mks.dir/disk/pack.cc.o" "gcc" "src/CMakeFiles/mks.dir/disk/pack.cc.o.d"
  "/root/repo/src/fs/linker.cc" "src/CMakeFiles/mks.dir/fs/linker.cc.o" "gcc" "src/CMakeFiles/mks.dir/fs/linker.cc.o.d"
  "/root/repo/src/fs/path_walker.cc" "src/CMakeFiles/mks.dir/fs/path_walker.cc.o" "gcc" "src/CMakeFiles/mks.dir/fs/path_walker.cc.o.d"
  "/root/repo/src/fs/ref_name.cc" "src/CMakeFiles/mks.dir/fs/ref_name.cc.o" "gcc" "src/CMakeFiles/mks.dir/fs/ref_name.cc.o.d"
  "/root/repo/src/hw/machine.cc" "src/CMakeFiles/mks.dir/hw/machine.cc.o" "gcc" "src/CMakeFiles/mks.dir/hw/machine.cc.o.d"
  "/root/repo/src/kernel/address_space.cc" "src/CMakeFiles/mks.dir/kernel/address_space.cc.o" "gcc" "src/CMakeFiles/mks.dir/kernel/address_space.cc.o.d"
  "/root/repo/src/kernel/core_segment.cc" "src/CMakeFiles/mks.dir/kernel/core_segment.cc.o" "gcc" "src/CMakeFiles/mks.dir/kernel/core_segment.cc.o.d"
  "/root/repo/src/kernel/directory.cc" "src/CMakeFiles/mks.dir/kernel/directory.cc.o" "gcc" "src/CMakeFiles/mks.dir/kernel/directory.cc.o.d"
  "/root/repo/src/kernel/gates.cc" "src/CMakeFiles/mks.dir/kernel/gates.cc.o" "gcc" "src/CMakeFiles/mks.dir/kernel/gates.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/CMakeFiles/mks.dir/kernel/kernel.cc.o" "gcc" "src/CMakeFiles/mks.dir/kernel/kernel.cc.o.d"
  "/root/repo/src/kernel/known_segment.cc" "src/CMakeFiles/mks.dir/kernel/known_segment.cc.o" "gcc" "src/CMakeFiles/mks.dir/kernel/known_segment.cc.o.d"
  "/root/repo/src/kernel/page_frame.cc" "src/CMakeFiles/mks.dir/kernel/page_frame.cc.o" "gcc" "src/CMakeFiles/mks.dir/kernel/page_frame.cc.o.d"
  "/root/repo/src/kernel/quota_cell.cc" "src/CMakeFiles/mks.dir/kernel/quota_cell.cc.o" "gcc" "src/CMakeFiles/mks.dir/kernel/quota_cell.cc.o.d"
  "/root/repo/src/kernel/segment.cc" "src/CMakeFiles/mks.dir/kernel/segment.cc.o" "gcc" "src/CMakeFiles/mks.dir/kernel/segment.cc.o.d"
  "/root/repo/src/kernel/uproc.cc" "src/CMakeFiles/mks.dir/kernel/uproc.cc.o" "gcc" "src/CMakeFiles/mks.dir/kernel/uproc.cc.o.d"
  "/root/repo/src/kernel/vproc.cc" "src/CMakeFiles/mks.dir/kernel/vproc.cc.o" "gcc" "src/CMakeFiles/mks.dir/kernel/vproc.cc.o.d"
  "/root/repo/src/net/demux.cc" "src/CMakeFiles/mks.dir/net/demux.cc.o" "gcc" "src/CMakeFiles/mks.dir/net/demux.cc.o.d"
  "/root/repo/src/net/kernel_stack.cc" "src/CMakeFiles/mks.dir/net/kernel_stack.cc.o" "gcc" "src/CMakeFiles/mks.dir/net/kernel_stack.cc.o.d"
  "/root/repo/src/sync/eventcount.cc" "src/CMakeFiles/mks.dir/sync/eventcount.cc.o" "gcc" "src/CMakeFiles/mks.dir/sync/eventcount.cc.o.d"
  "/root/repo/src/sync/message_queue.cc" "src/CMakeFiles/mks.dir/sync/message_queue.cc.o" "gcc" "src/CMakeFiles/mks.dir/sync/message_queue.cc.o.d"
  "/root/repo/src/verify/flow_model.cc" "src/CMakeFiles/mks.dir/verify/flow_model.cc.o" "gcc" "src/CMakeFiles/mks.dir/verify/flow_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
