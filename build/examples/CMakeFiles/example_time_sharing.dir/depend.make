# Empty dependencies file for example_time_sharing.
# This may be replaced when dependencies are built.
