file(REMOVE_RECURSE
  "CMakeFiles/example_time_sharing.dir/time_sharing.cpp.o"
  "CMakeFiles/example_time_sharing.dir/time_sharing.cpp.o.d"
  "example_time_sharing"
  "example_time_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_time_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
