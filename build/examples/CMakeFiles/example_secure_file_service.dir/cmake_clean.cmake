file(REMOVE_RECURSE
  "CMakeFiles/example_secure_file_service.dir/secure_file_service.cpp.o"
  "CMakeFiles/example_secure_file_service.dir/secure_file_service.cpp.o.d"
  "example_secure_file_service"
  "example_secure_file_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_secure_file_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
