# Empty compiler generated dependencies file for example_secure_file_service.
# This may be replaced when dependencies are built.
