# Empty dependencies file for example_tiger_team.
# This may be replaced when dependencies are built.
