file(REMOVE_RECURSE
  "CMakeFiles/example_tiger_team.dir/tiger_team.cpp.o"
  "CMakeFiles/example_tiger_team.dir/tiger_team.cpp.o.d"
  "example_tiger_team"
  "example_tiger_team.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tiger_team.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
