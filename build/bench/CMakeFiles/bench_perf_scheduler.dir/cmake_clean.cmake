file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_scheduler.dir/bench_perf_scheduler.cc.o"
  "CMakeFiles/bench_perf_scheduler.dir/bench_perf_scheduler.cc.o.d"
  "bench_perf_scheduler"
  "bench_perf_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
