# Empty compiler generated dependencies file for bench_perf_scheduler.
# This may be replaced when dependencies are built.
