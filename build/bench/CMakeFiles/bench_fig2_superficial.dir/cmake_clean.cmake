file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_superficial.dir/bench_fig2_superficial.cc.o"
  "CMakeFiles/bench_fig2_superficial.dir/bench_fig2_superficial.cc.o.d"
  "bench_fig2_superficial"
  "bench_fig2_superficial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_superficial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
