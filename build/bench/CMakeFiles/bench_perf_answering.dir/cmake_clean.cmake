file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_answering.dir/bench_perf_answering.cc.o"
  "CMakeFiles/bench_perf_answering.dir/bench_perf_answering.cc.o.d"
  "bench_perf_answering"
  "bench_perf_answering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_answering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
