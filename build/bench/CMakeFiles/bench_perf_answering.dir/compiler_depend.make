# Empty compiler generated dependencies file for bench_perf_answering.
# This may be replaced when dependencies are built.
