file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_confinement.dir/bench_ablation_confinement.cc.o"
  "CMakeFiles/bench_ablation_confinement.dir/bench_ablation_confinement.cc.o.d"
  "bench_ablation_confinement"
  "bench_ablation_confinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_confinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
