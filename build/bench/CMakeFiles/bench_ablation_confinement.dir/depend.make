# Empty dependencies file for bench_ablation_confinement.
# This may be replaced when dependencies are built.
