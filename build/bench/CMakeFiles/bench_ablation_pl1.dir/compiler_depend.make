# Empty compiler generated dependencies file for bench_ablation_pl1.
# This may be replaced when dependencies are built.
