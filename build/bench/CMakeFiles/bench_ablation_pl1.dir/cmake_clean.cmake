file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pl1.dir/bench_ablation_pl1.cc.o"
  "CMakeFiles/bench_ablation_pl1.dir/bench_ablation_pl1.cc.o.d"
  "bench_ablation_pl1"
  "bench_ablation_pl1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pl1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
