file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_quota.dir/bench_perf_quota.cc.o"
  "CMakeFiles/bench_perf_quota.dir/bench_perf_quota.cc.o.d"
  "bench_perf_quota"
  "bench_perf_quota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_quota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
