# Empty compiler generated dependencies file for bench_perf_quota.
# This may be replaced when dependencies are built.
