file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_eventcounts.dir/bench_perf_eventcounts.cc.o"
  "CMakeFiles/bench_perf_eventcounts.dir/bench_perf_eventcounts.cc.o.d"
  "bench_perf_eventcounts"
  "bench_perf_eventcounts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_eventcounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
