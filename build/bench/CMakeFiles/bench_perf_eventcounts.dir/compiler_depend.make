# Empty compiler generated dependencies file for bench_perf_eventcounts.
# This may be replaced when dependencies are built.
