file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vp_pool.dir/bench_ablation_vp_pool.cc.o"
  "CMakeFiles/bench_ablation_vp_pool.dir/bench_ablation_vp_pool.cc.o.d"
  "bench_ablation_vp_pool"
  "bench_ablation_vp_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vp_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
