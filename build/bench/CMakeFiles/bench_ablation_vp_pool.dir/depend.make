# Empty dependencies file for bench_ablation_vp_pool.
# This may be replaced when dependencies are built.
