# Empty dependencies file for bench_perf_linker.
# This may be replaced when dependencies are built.
