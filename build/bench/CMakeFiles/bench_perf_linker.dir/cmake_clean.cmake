file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_linker.dir/bench_perf_linker.cc.o"
  "CMakeFiles/bench_perf_linker.dir/bench_perf_linker.cc.o.d"
  "bench_perf_linker"
  "bench_perf_linker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
