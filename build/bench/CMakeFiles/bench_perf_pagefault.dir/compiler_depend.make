# Empty compiler generated dependencies file for bench_perf_pagefault.
# This may be replaced when dependencies are built.
