file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_pagefault.dir/bench_perf_pagefault.cc.o"
  "CMakeFiles/bench_perf_pagefault.dir/bench_perf_pagefault.cc.o.d"
  "bench_perf_pagefault"
  "bench_perf_pagefault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_pagefault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
