file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_kernel_size.dir/bench_table1_kernel_size.cc.o"
  "CMakeFiles/bench_table1_kernel_size.dir/bench_table1_kernel_size.cc.o.d"
  "bench_table1_kernel_size"
  "bench_table1_kernel_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_kernel_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
