# Empty compiler generated dependencies file for bench_table1_kernel_size.
# This may be replaced when dependencies are built.
