# Empty compiler generated dependencies file for bench_perf_name_manager.
# This may be replaced when dependencies are built.
