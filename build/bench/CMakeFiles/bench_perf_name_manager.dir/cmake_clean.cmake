file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_name_manager.dir/bench_perf_name_manager.cc.o"
  "CMakeFiles/bench_perf_name_manager.dir/bench_perf_name_manager.cc.o.d"
  "bench_perf_name_manager"
  "bench_perf_name_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_name_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
