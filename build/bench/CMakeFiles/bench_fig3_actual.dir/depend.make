# Empty dependencies file for bench_fig3_actual.
# This may be replaced when dependencies are built.
