file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_actual.dir/bench_fig3_actual.cc.o"
  "CMakeFiles/bench_fig3_actual.dir/bench_fig3_actual.cc.o.d"
  "bench_fig3_actual"
  "bench_fig3_actual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_actual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
