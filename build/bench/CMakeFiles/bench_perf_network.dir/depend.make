# Empty dependencies file for bench_perf_network.
# This may be replaced when dependencies are built.
