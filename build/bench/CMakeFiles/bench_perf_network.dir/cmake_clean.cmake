file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_network.dir/bench_perf_network.cc.o"
  "CMakeFiles/bench_perf_network.dir/bench_perf_network.cc.o.d"
  "bench_perf_network"
  "bench_perf_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
