file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_kernel.dir/bench_fig4_kernel.cc.o"
  "CMakeFiles/bench_fig4_kernel.dir/bench_fig4_kernel.cc.o.d"
  "bench_fig4_kernel"
  "bench_fig4_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
