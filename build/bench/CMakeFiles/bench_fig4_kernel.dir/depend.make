# Empty dependencies file for bench_fig4_kernel.
# This may be replaced when dependencies are built.
