file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_memory_mgmt.dir/bench_perf_memory_mgmt.cc.o"
  "CMakeFiles/bench_perf_memory_mgmt.dir/bench_perf_memory_mgmt.cc.o.d"
  "bench_perf_memory_mgmt"
  "bench_perf_memory_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_memory_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
