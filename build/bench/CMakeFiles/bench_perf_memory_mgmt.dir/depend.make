# Empty dependencies file for bench_perf_memory_mgmt.
# This may be replaced when dependencies are built.
