// The formal-specification stand-in: the MITRE model [Bell and LaPadula,
// 1973] as an independent, executable specification, plus an exhaustive
// checker that the kernel's reference monitor implements it.
//
// The paper's plan (boxes 4 and 6 of Figure 1) pairs the reimplementation
// with "a set of formal specifications traceable to the MITRE security
// model" and then certifies compliance.  Full program verification was (and
// is) out of reach for the whole kernel, but the *security model* itself is
// small enough to state independently and check exhaustively: the label
// space of 8 levels x 18 compartments is finite, and every (subject label,
// object label, operation) triple can be enumerated over compartment
// subsets of any chosen width.
//
// ModelDecision computes what the Bell-LaPadula rules say, from first
// principles and WITHOUT consulting the kernel's Label/monitor code (it
// works on raw level/compartment integers).  VerifyMonitorAgainstModel then
// sweeps the cross product and reports every divergence between the model
// and the live ReferenceMonitor.
#ifndef MKS_VERIFY_FLOW_MODEL_H_
#define MKS_VERIFY_FLOW_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/aim/monitor.h"

namespace mks {

struct ModelLabel {
  int level = 0;            // 0..7
  uint32_t categories = 0;  // bit set of compartment categories
};

enum class ModelOp : uint8_t { kObserve, kModify };

// The specification, stated directly from the model's two rules:
//   simple security: S may observe O  iff  level(S) >= level(O)
//                    and categories(S) superset-of categories(O);
//   *-property:      S may modify O   iff  level(O) >= level(S)
//                    and categories(O) superset-of categories(S).
bool ModelDecision(const ModelLabel& subject, const ModelLabel& object, ModelOp op);

// Information-flow statement of the same rules: information may flow from A
// to B iff B dominates A.  Observe moves information object->subject; modify
// moves it subject->object.  Used as a second, differently-phrased statement
// of the specification that must agree with ModelDecision.
bool ModelFlowPermitted(const ModelLabel& from, const ModelLabel& to);

struct ModelDivergence {
  ModelLabel subject;
  ModelLabel object;
  ModelOp op;
  bool model_allows = false;
  bool monitor_allows = false;

  std::string ToString() const;
};

// Exhaustively sweeps every (subject, object) pair over all 8 levels and all
// subsets of `category_width` compartment categories (category_width <= 18;
// the sweep is 64 * 4^width decisions), comparing the live monitor with the
// model for both operations.  Returns every divergence; empty = compliant.
std::vector<ModelDivergence> VerifyMonitorAgainstModel(ReferenceMonitor* monitor,
                                                       int category_width);

// Cross-checks the two phrasings of the specification against each other
// over the same space; any disagreement means the specification itself is
// inconsistent.  Returns the number of disagreements (0 expected).
int CheckSpecificationSelfConsistency(int category_width);

}  // namespace mks

#endif  // MKS_VERIFY_FLOW_MODEL_H_
