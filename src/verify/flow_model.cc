#include "src/verify/flow_model.h"

#include <sstream>

namespace mks {

bool ModelDecision(const ModelLabel& subject, const ModelLabel& object, ModelOp op) {
  if (op == ModelOp::kObserve) {
    return subject.level >= object.level &&
           (subject.categories & object.categories) == object.categories;
  }
  return object.level >= subject.level &&
         (object.categories & subject.categories) == subject.categories;
}

bool ModelFlowPermitted(const ModelLabel& from, const ModelLabel& to) {
  return to.level >= from.level && (to.categories & from.categories) == from.categories;
}

std::string ModelDivergence::ToString() const {
  std::ostringstream out;
  out << (op == ModelOp::kObserve ? "observe" : "modify") << " S=L" << subject.level << "/"
      << subject.categories << " O=L" << object.level << "/" << object.categories
      << ": model=" << (model_allows ? "allow" : "deny")
      << " monitor=" << (monitor_allows ? "allow" : "deny");
  return out.str();
}

std::vector<ModelDivergence> VerifyMonitorAgainstModel(ReferenceMonitor* monitor,
                                                       int category_width) {
  std::vector<ModelDivergence> divergences;
  const uint32_t category_space = 1u << category_width;
  for (int subject_level = 0; subject_level <= 7; ++subject_level) {
    for (int object_level = 0; object_level <= 7; ++object_level) {
      for (uint32_t subject_cats = 0; subject_cats < category_space; ++subject_cats) {
        for (uint32_t object_cats = 0; object_cats < category_space; ++object_cats) {
          const ModelLabel ms{subject_level, subject_cats};
          const ModelLabel mo{object_level, object_cats};
          const Subject subject{Principal{"model", "check"},
                                Label(static_cast<uint8_t>(subject_level), subject_cats), 4};
          const Label object(static_cast<uint8_t>(object_level), object_cats);
          for (ModelOp op : {ModelOp::kObserve, ModelOp::kModify}) {
            const bool model_allows = ModelDecision(ms, mo, op);
            const bool monitor_allows =
                monitor
                    ->CheckFlow(subject, object,
                                op == ModelOp::kObserve ? FlowDirection::kObserve
                                                        : FlowDirection::kModify)
                    .ok();
            if (model_allows != monitor_allows) {
              divergences.push_back(ModelDivergence{ms, mo, op, model_allows, monitor_allows});
            }
          }
        }
      }
    }
  }
  return divergences;
}

int CheckSpecificationSelfConsistency(int category_width) {
  int disagreements = 0;
  const uint32_t category_space = 1u << category_width;
  for (int subject_level = 0; subject_level <= 7; ++subject_level) {
    for (int object_level = 0; object_level <= 7; ++object_level) {
      for (uint32_t subject_cats = 0; subject_cats < category_space; ++subject_cats) {
        for (uint32_t object_cats = 0; object_cats < category_space; ++object_cats) {
          const ModelLabel subject{subject_level, subject_cats};
          const ModelLabel object{object_level, object_cats};
          // observe: information flows object -> subject.
          if (ModelDecision(subject, object, ModelOp::kObserve) !=
              ModelFlowPermitted(object, subject)) {
            ++disagreements;
          }
          // modify: information flows subject -> object.
          if (ModelDecision(subject, object, ModelOp::kModify) !=
              ModelFlowPermitted(subject, object)) {
            ++disagreements;
          }
        }
      }
    }
  }
  return disagreements;
}

}  // namespace mks
