// The kernel-resident sliver of the answering service [Montgomery, 1976].
//
// Montgomery's study showed that of the answering service's 10,000 lines,
// fewer than 1,000 need kernel protection: the password image store, the
// one-way transformation, and the clearance check that bounds the label a
// login may request.  That sliver is this class.  Password images are salted
// SHA-256 digests (standing in for the historical one-way transformation)
// persisted, four words of digest at a time, in a ring-0-only segment.
#ifndef MKS_ANSWERING_AUTH_H_
#define MKS_ANSWERING_AUTH_H_

#include <map>
#include <string>

#include "src/common/hash.h"
#include "src/kernel/kernel.h"

namespace mks {

class Authenticator {
 public:
  explicit Authenticator(Kernel* kernel)
      : kernel_(kernel),
        id_enrollments_(kernel->metrics().Intern("auth.enrollments")),
        id_failures_(kernel->metrics().Intern("auth.failures")),
        id_clearance_denials_(kernel->metrics().Intern("auth.clearance_denials")),
        id_successes_(kernel->metrics().Intern("auth.successes")) {}

  // One-time setup: the protected segment holding password images.
  Status Init();

  Status Enroll(const Principal& who, const std::string& password, Label clearance);
  Status ChangePassword(const Principal& who, const std::string& old_password,
                        const std::string& new_password);

  // Verifies the password and that the requested label is within the user's
  // clearance; returns the subject a login session runs as.
  Result<Subject> Authenticate(const Principal& who, const std::string& password,
                               Label requested);

  uint64_t failed_attempts() const { return failed_attempts_; }

 private:
  struct Record {
    Sha256::Digest digest;
    uint64_t salt = 0;
    Label clearance;
    uint32_t store_offset = 0;  // where the digest words live in the store
  };

  Sha256::Digest Image(const std::string& password, uint64_t salt) const;
  Status PersistDigest(const Record& record);

  Kernel* kernel_;
  MetricId id_enrollments_;
  MetricId id_failures_;
  MetricId id_clearance_denials_;
  MetricId id_successes_;
  ProcContext store_ctx_;  // ring-0 context owning the image store
  Segno store_segno_{};
  bool initialized_ = false;
  uint32_t next_offset_ = 0;
  std::map<std::string, Record> records_;
  uint64_t salt_counter_ = 0x5a17;
  uint64_t failed_attempts_ = 0;
};

}  // namespace mks

#endif  // MKS_ANSWERING_AUTH_H_
