#include "src/answering/auth.h"

#include <cstring>

namespace mks {

Status Authenticator::Init() {
  if (initialized_) {
    return Status(Code::kAlreadyExists, "authenticator initialized");
  }
  // The image store runs as a ring-0 system daemon; the segment's ring
  // bracket is 0, so no user-ring subject can ever map it.
  Subject daemon{Principal{"Initializer", "SysDaemon"}, Label::SystemLow(), /*ring=*/0};
  MKS_ASSIGN_OR_RETURN(ProcessId pid, kernel_->processes().CreateProcess(daemon));
  store_ctx_ = *kernel_->processes().Context(pid);

  Acl acl;
  acl.Add(AclEntry{"*", "SysDaemon", AccessModes::RW()});
  KernelGates& gates = kernel_->gates();
  MKS_ASSIGN_OR_RETURN(EntryId sys_dir, [&]() -> Result<EntryId> {
    auto existing = gates.Search(store_ctx_, gates.RootId(), "system");
    if (existing.ok()) {
      return existing;
    }
    return gates.CreateDirectory(store_ctx_, gates.RootId(), "system", acl,
                                 Label::SystemLow());
  }());
  MKS_ASSIGN_OR_RETURN(EntryId store, gates.CreateSegment(store_ctx_, sys_dir,
                                                          "password_images", acl,
                                                          Label::SystemHigh()));
  MKS_ASSIGN_OR_RETURN(store_segno_, gates.Initiate(store_ctx_, store));
  initialized_ = true;
  return Status::Ok();
}

Sha256::Digest Authenticator::Image(const std::string& password, uint64_t salt) const {
  Sha256 hasher;
  char salt_bytes[8];
  std::memcpy(salt_bytes, &salt, sizeof(salt));
  hasher.Update(std::string_view(salt_bytes, sizeof(salt_bytes)));
  hasher.Update(password);
  return hasher.Finish();
}

Status Authenticator::PersistDigest(const Record& record) {
  // Four digest words plus the salt, written through the paging machinery.
  KernelGates& gates = kernel_->gates();
  for (int w = 0; w < 4; ++w) {
    Word word = 0;
    for (int b = 0; b < 8; ++b) {
      word = (word << 8) | record.digest[8 * w + b];
    }
    MKS_RETURN_IF_ERROR(gates.Write(store_ctx_, store_segno_, record.store_offset + w, word));
  }
  return gates.Write(store_ctx_, store_segno_, record.store_offset + 4, record.salt);
}

Status Authenticator::Enroll(const Principal& who, const std::string& password,
                             Label clearance) {
  if (!initialized_) {
    return Status(Code::kFailedPrecondition, "authenticator not initialized");
  }
  const std::string key = who.ToString();
  if (records_.count(key) != 0) {
    return Status(Code::kAlreadyExists, key);
  }
  Record record;
  record.salt = ++salt_counter_ * 0x9e3779b97f4a7c15ULL;
  record.digest = Image(password, record.salt);
  record.clearance = clearance;
  record.store_offset = next_offset_;
  next_offset_ += 5;
  MKS_RETURN_IF_ERROR(PersistDigest(record));
  records_.emplace(key, record);
  kernel_->metrics().Inc(id_enrollments_);
  return Status::Ok();
}

Status Authenticator::ChangePassword(const Principal& who, const std::string& old_password,
                                     const std::string& new_password) {
  auto it = records_.find(who.ToString());
  if (it == records_.end()) {
    return Status(Code::kNotFound, who.ToString());
  }
  if (Image(old_password, it->second.salt) != it->second.digest) {
    ++failed_attempts_;
    return Status(Code::kAuthenticationFailed, "bad password");
  }
  it->second.salt = ++salt_counter_ * 0x9e3779b97f4a7c15ULL;
  it->second.digest = Image(new_password, it->second.salt);
  return PersistDigest(it->second);
}

Result<Subject> Authenticator::Authenticate(const Principal& who, const std::string& password,
                                            Label requested) {
  kernel_->ctx().cost.Charge(CodeStyle::kStructured, Costs::kGateCall);
  auto it = records_.find(who.ToString());
  if (it == records_.end()) {
    ++failed_attempts_;
    kernel_->metrics().Inc(id_failures_);
    // Indistinguishable from a wrong password: do the hash work anyway.
    (void)Image(password, 0);
    return Status(Code::kAuthenticationFailed, "bad user or password");
  }
  if (Image(password, it->second.salt) != it->second.digest) {
    ++failed_attempts_;
    kernel_->metrics().Inc(id_failures_);
    return Status(Code::kAuthenticationFailed, "bad user or password");
  }
  // The mandatory clearance bound: a session label must be within clearance.
  if (!it->second.clearance.Dominates(requested)) {
    kernel_->metrics().Inc(id_clearance_denials_);
    return Status(Code::kNoAccess, "requested label exceeds clearance");
  }
  kernel_->metrics().Inc(id_successes_);
  return Subject{who, requested, /*ring=*/4};
}

}  // namespace mks
