#include "src/answering/service.h"

#include <algorithm>
#include <sstream>

#include "src/common/hash.h"

namespace mks {

AnsweringService::AnsweringService(Kernel* kernel, Authenticator* auth, ServiceDomain domain,
                                   const AnsweringConfig& config)
    : kernel_(kernel),
      auth_(auth),
      id_logins_(kernel->metrics().Intern("answering.logins")),
      id_logouts_(kernel->metrics().Intern("answering.logouts")),
      id_table_spin_cycles_(kernel->metrics().Intern("answering.session_lock_spin_cycles")),
      id_skel_hits_(kernel->metrics().Intern("answering.skel_hits")),
      id_skel_misses_(kernel->metrics().Intern("answering.skel_misses")),
      id_phase_auth_(kernel->metrics().Intern("answering.phase_auth_cycles")),
      id_phase_process_(kernel->metrics().Intern("answering.phase_process_cycles")),
      id_phase_homedir_(kernel->metrics().Intern("answering.phase_homedir_cycles")),
      id_phase_accounting_(kernel->metrics().Intern("answering.phase_accounting_cycles")),
      ev_login_(kernel->ctx().trace.InternEvent("answering.login")),
      ev_logout_(kernel->ctx().trace.InternEvent("answering.logout")),
      hist_login_(kernel->metrics().InternHistogram("answering.login_cycles")),
      hist_logout_(kernel->metrics().InternHistogram("answering.logout_cycles")),
      domain_(domain),
      cfg_(config),
      walker_(&kernel->gates()) {
  size_t shard_count = 1;
  if (cfg_.table_mode == SessionTableMode::kSharded) {
    shard_count = cfg_.shards != 0 ? cfg_.shards : kernel->ctx().smp.count();
  }
  const LockPolicyConfig table_policy{
      cfg_.table_lock_policy, cfg_.table_line_transfer_cost,
      cfg_.table_anderson_slots != 0 ? cfg_.table_anderson_slots
                                     : kernel->ctx().smp.count()};
  for (size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    if (cfg_.table_lock_policy != LockPolicy::kTestAndSet) {
      shard->lock.Configure(table_policy);
    }
    shards_.push_back(std::move(shard));
  }
  skel_rmi_.Init(&kernel->ctx(), "answering.skel", ProfDomain::kSessionSetup,
                 ProfDomain::kSessionSetup);
  skel_lock_.Configure(cfg_.cache_lock);
}

void AnsweringService::ChargeDialogStep(int gate_calls) const {
  CostModel& cost = kernel_->ctx().cost;
  // The same logical work either way: parsing the dialog, consulting the
  // user registry, writing the log.  The user-domain version pays gate
  // crossings and the structured-code factor; the in-kernel version ran as
  // trusted optimized code with direct access to kernel tables.
  constexpr Cycles kDialogWork = 220;
  if (domain_ == ServiceDomain::kUserDomain) {
    cost.Charge(CodeStyle::kStructured, kDialogWork / 2);
    cost.Charge(CodeStyle::kOptimized, kDialogWork / 2);
    cost.Charge(CodeStyle::kOptimized, static_cast<Cycles>(gate_calls) * Costs::kGateCall);
  } else {
    cost.Charge(CodeStyle::kOptimized, kDialogWork);
  }
}

void AnsweringService::ChargeTableWork() const {
  // Hash, probe, and update one session-table entry: registry bookkeeping
  // the serial service folded into its dialog work.
  constexpr Cycles kSessionTableWork = 120;
  CostModel& cost = kernel_->ctx().cost;
  if (domain_ == ServiceDomain::kUserDomain) {
    cost.Charge(CodeStyle::kStructured, kSessionTableWork);
  } else {
    cost.Charge(CodeStyle::kOptimized, kSessionTableWork);
  }
}

AnsweringService::LockWindow AnsweringService::LockTable(SimSpinLock& lock) {
  // Same accounting as every scheduler-lock site: acquire at the executing
  // CPU's local virtual time; split the wait into the gap to the holder's
  // release (lock-spin) and the grant's coherence traffic (lock-handoff).
  LockWindow window;
  KernelContext& kctx = kernel_->ctx();
  window.lnow = kctx.LocalNow();
  window.spin = lock.Acquire(window.lnow, kctx.current_cpu);
  if (window.spin > 0) {
    const Cycles handoff = std::min(lock.last_acquire_handoff(), window.spin);
    if (window.spin > handoff) {
      Prof::Scope wait(&kctx.prof, ProfDomain::kLockSpin);
      kctx.cost.Charge(CodeStyle::kOptimized, window.spin - handoff);
    }
    if (handoff > 0) {
      Prof::Scope grant(&kctx.prof, ProfDomain::kLockHandoff);
      kctx.cost.Charge(CodeStyle::kOptimized, handoff);
    }
    kctx.metrics.Inc(id_table_spin_cycles_, window.spin);
  }
  window.locked = true;
  return window;
}

void AnsweringService::UnlockTable(SimSpinLock& lock, const LockWindow& window, Cycles held) {
  if (!window.locked) {
    return;
  }
  lock.Release(window.lnow + window.spin + held);
}

AnsweringService::Shard& AnsweringService::ShardForPid(ProcessId pid) {
  return *shards_[pid.value % shards_.size()];
}

AnsweringService::Shard& AnsweringService::ShardForWho(const std::string& who) {
  return *shards_[Fnv1a64(who) % shards_.size()];
}

Status AnsweringService::EnsureDaemon() {
  if (daemon_ready_) {
    return Status::Ok();
  }
  Subject daemon{Principal{"Answering", "SysDaemon"}, Label::SystemLow(), /*ring=*/4};
  MKS_ASSIGN_OR_RETURN(ProcessId pid, kernel_->processes().CreateProcess(daemon));
  daemon_ctx_ = *kernel_->processes().Context(pid);
  daemon_ready_ = true;
  return Status::Ok();
}

Result<EntryId> AnsweringService::EnsureHome(const Principal& who, const Acl& home_acl,
                                             Label session_label) {
  KernelContext& kctx = kernel_->ctx();
  const std::string home_key = who.project + ">" + who.person;
  EntryId project_dir{};
  bool have_project = false;
  if (cfg_.skeleton_cache) {
    // One read section probes both cache levels: a remembered home answers
    // outright; a remembered project directory skips the >udd>Project walk.
    SharedSection section(&skel_lock_, &kctx, SharedSection::Kind::kRead, skel_rmi_);
    auto home_it = skel_homes_.find(home_key);
    if (home_it != skel_homes_.end()) {
      kctx.metrics.Inc(id_skel_hits_);
      return home_it->second;
    }
    auto project_it = skel_projects_.find(who.project);
    if (project_it != skel_projects_.end()) {
      project_dir = project_it->second;
      have_project = true;
    }
  }
  if (!have_project) {
    MKS_ASSIGN_OR_RETURN(project_dir,
                         walker_.CreateDirectories(daemon_ctx_, ">udd>" + who.project,
                                                   home_acl, Label::SystemLow()));
  }
  EntryId home{};
  auto existing = kernel_->gates().Search(daemon_ctx_, project_dir, who.person);
  if (existing.ok()) {
    home = *existing;
  } else {
    MKS_ASSIGN_OR_RETURN(home, kernel_->gates().CreateDirectory(daemon_ctx_, project_dir,
                                                                who.person, home_acl,
                                                                session_label));
  }
  if (cfg_.skeleton_cache) {
    SharedSection section(&skel_lock_, &kctx, SharedSection::Kind::kWrite, skel_rmi_);
    skel_projects_.emplace(who.project, project_dir);
    skel_homes_.emplace(home_key, home);
    kctx.metrics.Inc(id_skel_misses_);
  }
  return home;
}

Result<ProcessId> AnsweringService::Login(const Principal& who, const std::string& password,
                                          Label label) {
  KernelContext& kctx = kernel_->ctx();
  Prof::Scope setup(&kctx.prof, ProfDomain::kSessionSetup);
  const Cycles t_start = kctx.clock.now();
  // kCoarse is the minimal concurrency-safe table: ONE lock held across the
  // whole login transaction, every session serializing behind it.
  LockWindow coarse{};
  Cycles coarse_t0 = 0;
  if (cfg_.table_mode == SessionTableMode::kCoarse) {
    coarse = LockTable(shards_[0]->lock);
    coarse_t0 = kctx.clock.now();
  }
  Result<ProcessId> result = LoginInner(who, password, label);
  if (coarse.locked) {
    UnlockTable(shards_[0]->lock, coarse, kctx.clock.now() - coarse_t0);
  }
  if (result.ok()) {
    kctx.trace.CloseSpan(t_start, ev_login_, (*result).value, kctx.current_cpu, hist_login_);
  }
  return result;
}

Result<ProcessId> AnsweringService::LoginInner(const Principal& who, const std::string& password,
                                               Label label) {
  KernelContext& kctx = kernel_->ctx();
  const Cycles t0 = kctx.clock.now();
  // The bulk of the answering service — dialog parsing, the user registry,
  // device tables, the message-of-the-day, the log — is IDENTICAL code in
  // both configurations; only the privilege-sensitive sliver differs.  That
  // is why the measured slowdown of the extraction is small.
  constexpr Cycles kCommonLoginWork = 12000;
  kctx.cost.Charge(CodeStyle::kOptimized, kCommonLoginWork);
  ChargeDialogStep(/*gate_calls=*/2);  // greeting + registry consultation
  MKS_RETURN_IF_ERROR(EnsureDaemon());
  MKS_ASSIGN_OR_RETURN(Subject subject, auth_->Authenticate(who, password, label));
  const Cycles t_auth = kctx.clock.now();
  kctx.metrics.Inc(id_phase_auth_, t_auth - t0);

  // Create the user process (a protected operation in both configurations).
  MKS_ASSIGN_OR_RETURN(ProcessId pid, kernel_->processes().CreateProcess(subject));
  const Cycles t_proc = kctx.clock.now();
  kctx.metrics.Inc(id_phase_process_, t_proc - t_auth);

  // Ensure the home directory exists: >udd>Project>person.  The skeleton is
  // system-low and built by the service; the home itself carries the session
  // label (an upgraded directory when the session runs high).
  ChargeDialogStep(/*gate_calls=*/3);
  Acl home_acl;
  home_acl.Add(AclEntry{who.person, who.project, AccessModes::RWE()});
  home_acl.Add(AclEntry{"*", "SysDaemon", AccessModes::RW()});
  auto home = EnsureHome(who, home_acl, subject.label);
  if (!home.ok()) {
    (void)kernel_->processes().DestroyProcess(pid);
    return home.status();
  }
  const Cycles t_home = kctx.clock.now();
  kctx.metrics.Inc(id_phase_homedir_, t_home - t_proc);

  Session session;
  session.who = who;
  session.pid = pid;
  session.login_time = kctx.clock.now();
  session.home = *home;
  Shard& shard = ShardForPid(pid);
  if (cfg_.table_mode == SessionTableMode::kSharded) {
    LockWindow window = LockTable(shard.lock);
    const Cycles held0 = kctx.clock.now();
    ChargeTableWork();
    shard.sessions.emplace(pid, session);
    UnlockTable(shard.lock, window, kctx.clock.now() - held0);
  } else {
    if (cfg_.table_mode == SessionTableMode::kCoarse) {
      ChargeTableWork();
    }
    shard.sessions.emplace(pid, session);
  }
  ++active_;
  kctx.metrics.Inc(id_phase_accounting_, kctx.clock.now() - t_home);
  kctx.metrics.Inc(id_logins_);
  return pid;
}

Status AnsweringService::Logout(ProcessId pid) {
  KernelContext& kctx = kernel_->ctx();
  Prof::Scope setup(&kctx.prof, ProfDomain::kSessionSetup);
  const Cycles t_start = kctx.clock.now();
  LockWindow coarse{};
  Cycles coarse_t0 = 0;
  if (cfg_.table_mode == SessionTableMode::kCoarse) {
    coarse = LockTable(shards_[0]->lock);
    coarse_t0 = kctx.clock.now();
  }
  Status result = LogoutInner(pid);
  if (coarse.locked) {
    UnlockTable(shards_[0]->lock, coarse, kctx.clock.now() - coarse_t0);
  }
  if (result.ok()) {
    kctx.trace.CloseSpan(t_start, ev_logout_, pid.value, kctx.current_cpu, hist_logout_);
  }
  return result;
}

Status AnsweringService::LogoutInner(ProcessId pid) {
  KernelContext& kctx = kernel_->ctx();
  Shard& shard = ShardForPid(pid);
  // Look up the session (modelled under the shard lock in sharded mode; the
  // iterator itself stays valid — virtual CPUs interleave, they do not
  // preempt host execution).
  LockWindow lookup{};
  Cycles lookup_t0 = 0;
  if (cfg_.table_mode == SessionTableMode::kSharded) {
    lookup = LockTable(shard.lock);
    lookup_t0 = kctx.clock.now();
  }
  auto it = shard.sessions.find(pid);
  if (it == shard.sessions.end()) {
    if (lookup.locked) {
      UnlockTable(shard.lock, lookup, kctx.clock.now() - lookup_t0);
    }
    return Status(Code::kNotFound, "no session");
  }
  if (cfg_.table_mode != SessionTableMode::kSerial) {
    ChargeTableWork();
  }
  if (lookup.locked) {
    UnlockTable(shard.lock, lookup, kctx.clock.now() - lookup_t0);
  }
  constexpr Cycles kCommonLogoutWork = 2000;
  kctx.cost.Charge(CodeStyle::kOptimized, kCommonLogoutWork);
  ChargeDialogStep(/*gate_calls=*/1);
  const Cycles t_bill = kctx.clock.now();
  const std::string who = it->second.who.ToString();
  const ProcessStats& stats = kernel_->processes().stats(pid);
  Shard& bill_shard = ShardForWho(who);
  {
    LockWindow window{};
    Cycles held0 = 0;
    if (cfg_.table_mode == SessionTableMode::kSharded) {
      window = LockTable(bill_shard.lock);
      held0 = kctx.clock.now();
    }
    SessionBill& bill = bill_shard.totals[who];
    bill.cpu_cycles += stats.cpu_cycles;
    bill.ops += stats.ops_executed;
    bill.connect_time += kctx.clock.now() - it->second.login_time;
    if (window.locked) {
      UnlockTable(bill_shard.lock, window, kctx.clock.now() - held0);
    }
  }
  const Cycles t_destroy = kctx.clock.now();
  kctx.metrics.Inc(id_phase_accounting_, t_destroy - t_bill);
  MKS_RETURN_IF_ERROR(kernel_->processes().DestroyProcess(pid));
  kctx.metrics.Inc(id_phase_process_, kctx.clock.now() - t_destroy);
  // Remove the session (its own tenure in sharded mode: lookup and removal
  // bracket the un-serializable middle of the transaction).
  LockWindow erase_w{};
  Cycles erase_t0 = 0;
  if (cfg_.table_mode == SessionTableMode::kSharded) {
    erase_w = LockTable(shard.lock);
    erase_t0 = kctx.clock.now();
    ChargeTableWork();
  }
  shard.sessions.erase(it);
  if (erase_w.locked) {
    UnlockTable(shard.lock, erase_w, kctx.clock.now() - erase_t0);
  }
  --active_;
  kctx.metrics.Inc(id_logouts_);
  return Status::Ok();
}

Result<SessionBill> AnsweringService::BillFor(ProcessId pid) const {
  const Shard& shard = *shards_[pid.value % shards_.size()];
  auto it = shard.sessions.find(pid);
  if (it == shard.sessions.end()) {
    return Status(Code::kNotFound, "no session");
  }
  const ProcessStats& stats = kernel_->processes().stats(pid);
  SessionBill bill;
  bill.cpu_cycles = stats.cpu_cycles;
  bill.ops = stats.ops_executed;
  bill.connect_time = kernel_->clock().now() - it->second.login_time;
  return bill;
}

std::string AnsweringService::AccountingReport() const {
  // Merge the per-shard totals; with one shard (the serial and coarse
  // configurations) this is an identity copy, so the report is byte-for-byte
  // the seed table's.
  std::map<std::string, SessionBill> merged;
  for (const auto& shard : shards_) {
    for (const auto& [who, bill] : shard->totals) {
      SessionBill& sum = merged[who];
      sum.cpu_cycles += bill.cpu_cycles;
      sum.ops += bill.ops;
      sum.connect_time += bill.connect_time;
    }
  }
  std::ostringstream out;
  out << "principal                cpu_cycles        ops   connect\n";
  for (const auto& [who, bill] : merged) {
    out << who;
    for (size_t pad = who.size(); pad < 24; ++pad) {
      out << ' ';
    }
    out << bill.cpu_cycles << "  " << bill.ops << "  " << bill.connect_time << "\n";
  }
  return out.str();
}

}  // namespace mks
