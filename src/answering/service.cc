#include "src/answering/service.h"

#include <sstream>

namespace mks {

AnsweringService::AnsweringService(Kernel* kernel, Authenticator* auth, ServiceDomain domain)
    : kernel_(kernel),
      auth_(auth),
      id_logins_(kernel->metrics().Intern("answering.logins")),
      id_logouts_(kernel->metrics().Intern("answering.logouts")),
      domain_(domain),
      walker_(&kernel->gates()) {}

void AnsweringService::ChargeDialogStep(int gate_calls) const {
  CostModel& cost = kernel_->ctx().cost;
  // The same logical work either way: parsing the dialog, consulting the
  // user registry, writing the log.  The user-domain version pays gate
  // crossings and the structured-code factor; the in-kernel version ran as
  // trusted optimized code with direct access to kernel tables.
  constexpr Cycles kDialogWork = 220;
  if (domain_ == ServiceDomain::kUserDomain) {
    cost.Charge(CodeStyle::kStructured, kDialogWork / 2);
    cost.Charge(CodeStyle::kOptimized, kDialogWork / 2);
    cost.Charge(CodeStyle::kOptimized, static_cast<Cycles>(gate_calls) * Costs::kGateCall);
  } else {
    cost.Charge(CodeStyle::kOptimized, kDialogWork);
  }
}

Status AnsweringService::EnsureDaemon() {
  if (daemon_ready_) {
    return Status::Ok();
  }
  Subject daemon{Principal{"Answering", "SysDaemon"}, Label::SystemLow(), /*ring=*/4};
  MKS_ASSIGN_OR_RETURN(ProcessId pid, kernel_->processes().CreateProcess(daemon));
  daemon_ctx_ = *kernel_->processes().Context(pid);
  daemon_ready_ = true;
  return Status::Ok();
}

Result<ProcessId> AnsweringService::Login(const Principal& who, const std::string& password,
                                          Label label) {
  // The bulk of the answering service — dialog parsing, the user registry,
  // device tables, the message-of-the-day, the log — is IDENTICAL code in
  // both configurations; only the privilege-sensitive sliver differs.  That
  // is why the measured slowdown of the extraction is small.
  constexpr Cycles kCommonLoginWork = 12000;
  kernel_->ctx().cost.Charge(CodeStyle::kOptimized, kCommonLoginWork);
  ChargeDialogStep(/*gate_calls=*/2);  // greeting + registry consultation
  MKS_RETURN_IF_ERROR(EnsureDaemon());
  MKS_ASSIGN_OR_RETURN(Subject subject, auth_->Authenticate(who, password, label));

  // Create the user process (a protected operation in both configurations).
  MKS_ASSIGN_OR_RETURN(ProcessId pid, kernel_->processes().CreateProcess(subject));

  // Ensure the home directory exists: >udd>Project>person.  The skeleton is
  // system-low and built by the service; the home itself carries the session
  // label (an upgraded directory when the session runs high).
  ChargeDialogStep(/*gate_calls=*/3);
  Acl home_acl;
  home_acl.Add(AclEntry{who.person, who.project, AccessModes::RWE()});
  home_acl.Add(AclEntry{"*", "SysDaemon", AccessModes::RW()});
  auto home = [&]() -> Result<EntryId> {
    MKS_ASSIGN_OR_RETURN(EntryId project_dir,
                         walker_.CreateDirectories(daemon_ctx_, ">udd>" + who.project,
                                                   home_acl, Label::SystemLow()));
    auto existing = kernel_->gates().Search(daemon_ctx_, project_dir, who.person);
    if (existing.ok()) {
      return existing;
    }
    return kernel_->gates().CreateDirectory(daemon_ctx_, project_dir, who.person, home_acl,
                                            subject.label);
  }();
  if (!home.ok()) {
    (void)kernel_->processes().DestroyProcess(pid);
    return home.status();
  }

  Session session;
  session.who = who;
  session.pid = pid;
  session.login_time = kernel_->clock().now();
  session.home = home.ok() ? *home : EntryId{};
  sessions_.emplace(pid, session);
  kernel_->metrics().Inc(id_logins_);
  return pid;
}

Status AnsweringService::Logout(ProcessId pid) {
  auto it = sessions_.find(pid);
  if (it == sessions_.end()) {
    return Status(Code::kNotFound, "no session");
  }
  constexpr Cycles kCommonLogoutWork = 2000;
  kernel_->ctx().cost.Charge(CodeStyle::kOptimized, kCommonLogoutWork);
  ChargeDialogStep(/*gate_calls=*/1);
  const ProcessStats& stats = kernel_->processes().stats(pid);
  SessionBill& bill = totals_[it->second.who.ToString()];
  bill.cpu_cycles += stats.cpu_cycles;
  bill.ops += stats.ops_executed;
  bill.connect_time += kernel_->clock().now() - it->second.login_time;
  MKS_RETURN_IF_ERROR(kernel_->processes().DestroyProcess(pid));
  sessions_.erase(it);
  kernel_->metrics().Inc(id_logouts_);
  return Status::Ok();
}

Result<SessionBill> AnsweringService::BillFor(ProcessId pid) const {
  auto it = sessions_.find(pid);
  if (it == sessions_.end()) {
    return Status(Code::kNotFound, "no session");
  }
  const ProcessStats& stats = kernel_->processes().stats(pid);
  SessionBill bill;
  bill.cpu_cycles = stats.cpu_cycles;
  bill.ops = stats.ops_executed;
  bill.connect_time = kernel_->clock().now() - it->second.login_time;
  return bill;
}

std::string AnsweringService::AccountingReport() const {
  std::ostringstream out;
  out << "principal                cpu_cycles        ops   connect\n";
  for (const auto& [who, bill] : totals_) {
    out << who;
    for (size_t pad = who.size(); pad < 24; ++pad) {
      out << ' ';
    }
    out << bill.cpu_cycles << "  " << bill.ops << "  " << bill.connect_time << "\n";
  }
  return out.str();
}

}  // namespace mks
