// The answering service: login, session management, and accounting.
//
// Historically 10,000 lines of trusted in-kernel code regulating every login
// and all system accounting; Montgomery's redesign moved all but the
// authentication sliver (src/answering/auth.h) into an unprivileged
// user-domain process.  The `domain` knob reproduces both configurations for
// the performance comparison: the user-domain version performs its work
// through kernel gates and structured code, which is where the measured
// "about 3% slower" comes from.
#ifndef MKS_ANSWERING_SERVICE_H_
#define MKS_ANSWERING_SERVICE_H_

#include <map>
#include <string>
#include <vector>

#include "src/answering/auth.h"
#include "src/fs/path_walker.h"

namespace mks {

enum class ServiceDomain : uint8_t {
  kInKernel,    // the 1973 configuration: trusted, ring-0, optimized code
  kUserDomain,  // the redesign: unprivileged, gate calls, structured code
};

struct SessionBill {
  Cycles cpu_cycles = 0;
  uint64_t ops = 0;
  Cycles connect_time = 0;
};

class AnsweringService {
 public:
  AnsweringService(Kernel* kernel, Authenticator* auth,
                   ServiceDomain domain = ServiceDomain::kUserDomain);

  // Authenticates, creates the user process, and ensures the home directory
  // (>udd>Project>person) exists.
  Result<ProcessId> Login(const Principal& who, const std::string& password, Label label);
  Status Logout(ProcessId pid);

  Result<SessionBill> BillFor(ProcessId pid) const;
  // Aggregate accounting report: one line per principal.
  std::string AccountingReport() const;

  size_t active_sessions() const { return sessions_.size(); }
  ServiceDomain domain() const { return domain_; }

 private:
  struct Session {
    Principal who;
    ProcessId pid{};
    Cycles login_time = 0;
    EntryId home{};
  };

  // Charges the bookkeeping work of one dialog step in the configured domain.
  void ChargeDialogStep(int gate_calls) const;
  // The service's own (system-low) context; home-directory skeletons are
  // built by the service, not by the (possibly high-labelled) session, which
  // the *-property would forbid from writing into low directories.
  Status EnsureDaemon();

  Kernel* kernel_;
  Authenticator* auth_;
  MetricId id_logins_;
  MetricId id_logouts_;
  ServiceDomain domain_;
  PathWalker walker_;
  bool daemon_ready_ = false;
  ProcContext daemon_ctx_;
  std::map<ProcessId, Session> sessions_;
  std::map<std::string, SessionBill> totals_;  // by principal
};

}  // namespace mks

#endif  // MKS_ANSWERING_SERVICE_H_
