// The answering service: login, session management, and accounting.
//
// Historically 10,000 lines of trusted in-kernel code regulating every login
// and all system accounting; Montgomery's redesign moved all but the
// authentication sliver (src/answering/auth.h) into an unprivileged
// user-domain process.  The `domain` knob reproduces both configurations for
// the performance comparison: the user-domain version performs its work
// through kernel gates and structured code, which is where the measured
// "about 3% slower" comes from.
//
// The login-storm refactor makes session establishment a parallel hot path.
// Three independently-gated mechanisms, all default-off and byte-identical
// to the serial service when off:
//
//   * session-table modes — kSerial is the seed table (no lock, single
//     logical thread of control); kCoarse is the minimal concurrency-safe
//     form, ONE SimSpinLock held across the whole login/logout transaction
//     (every session serializes behind it, the baseline every sharded
//     design is measured against); kSharded hashes sessions and accounting
//     totals across lock-per-shard tables, holding each lock only for the
//     table operation itself.
//   * skeleton cache — per-project home-directory skeletons (>udd>Project
//     and >udd>Project>person) are remembered behind a read-mostly
//     SimSharedLock, so repeat logins skip the directory-creation walk.
//   * slab process slots — a kernel-side knob (KernelConfig::slab_processes)
//     the storm bench pairs with these; not owned here.
#ifndef MKS_ANSWERING_SERVICE_H_
#define MKS_ANSWERING_SERVICE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/answering/auth.h"
#include "src/fs/path_walker.h"
#include "src/kernel/shared_section.h"

namespace mks {

enum class ServiceDomain : uint8_t {
  kInKernel,    // the 1973 configuration: trusted, ring-0, optimized code
  kUserDomain,  // the redesign: unprivileged, gate calls, structured code
};

// How the session and accounting tables are guarded against concurrent
// logins (see the file comment).
enum class SessionTableMode : uint8_t { kSerial, kCoarse, kSharded };

struct AnsweringConfig {
  SessionTableMode table_mode = SessionTableMode::kSerial;
  // kSharded: number of table shards; 0 = the kernel's cpu_count.
  uint16_t shards = 0;
  // Handoff-traffic policy for the table locks, same pricing scheme as the
  // scheduler locks (contended handoffs in units of line transfers).
  LockPolicy table_lock_policy = LockPolicy::kTestAndSet;
  Cycles table_line_transfer_cost = 0;
  uint16_t table_anderson_slots = 0;  // kAnderson array size; 0 = cpu_count
  // Remember home-directory skeletons across logins.
  bool skeleton_cache = false;
  // Read-mostly policy for the skeleton cache's lock; the default
  // (ReadPolicy::kOff) leaves its sections inert.
  SharedLockConfig cache_lock;
};

struct SessionBill {
  Cycles cpu_cycles = 0;
  uint64_t ops = 0;
  Cycles connect_time = 0;
};

class AnsweringService {
 public:
  AnsweringService(Kernel* kernel, Authenticator* auth,
                   ServiceDomain domain = ServiceDomain::kUserDomain,
                   const AnsweringConfig& config = AnsweringConfig{});

  // Authenticates, creates the user process, and ensures the home directory
  // (>udd>Project>person) exists.
  Result<ProcessId> Login(const Principal& who, const std::string& password, Label label);
  Status Logout(ProcessId pid);

  Result<SessionBill> BillFor(ProcessId pid) const;
  // Aggregate accounting report: one line per principal.
  std::string AccountingReport() const;

  size_t active_sessions() const { return active_; }
  ServiceDomain domain() const { return domain_; }

  // Instrument readback for benches and tests.
  size_t shard_count() const { return shards_.size(); }
  const SimSpinLock& shard_lock(size_t i) const { return shards_[i]->lock; }
  const SimSharedLock& skeleton_lock() const { return skel_lock_; }

 private:
  struct Session {
    Principal who;
    ProcessId pid{};
    Cycles login_time = 0;
    EntryId home{};
  };

  // One table shard: its lock, the sessions hashed to it (by pid), and the
  // accounting totals hashed to it (by principal).  kSerial/kCoarse run with
  // exactly one shard, which keeps AccountingReport's merge an identity.
  struct Shard {
    SimSpinLock lock;
    std::map<ProcessId, Session> sessions;
    std::map<std::string, SessionBill> totals;
  };

  // One virtual-time lock tenure over a shard's lock: acquired at the
  // executing CPU's local time (spin charged and attributed, TouchReadyList
  // style), released at acquire + spin + the work charged while held.
  // kSerial mode never locks and never charges.
  struct LockWindow {
    Cycles lnow = 0;
    Cycles spin = 0;
    bool locked = false;
  };
  LockWindow LockTable(SimSpinLock& lock);
  void UnlockTable(SimSpinLock& lock, const LockWindow& window, Cycles held);

  Shard& ShardForPid(ProcessId pid);
  Shard& ShardForWho(const std::string& who);

  // The transaction bodies; Login/Logout wrap them in the coarse-mode lock
  // tenure and the login-latency trace span.
  Result<ProcessId> LoginInner(const Principal& who, const std::string& password, Label label);
  Status LogoutInner(ProcessId pid);
  // The modelled cost of one session-table operation (only charged in the
  // concurrency-safe modes; kSerial stays byte-identical to the seed).
  void ChargeTableWork() const;

  // Charges the bookkeeping work of one dialog step in the configured domain.
  void ChargeDialogStep(int gate_calls) const;
  // The service's own (system-low) context; home-directory skeletons are
  // built by the service, not by the (possibly high-labelled) session, which
  // the *-property would forbid from writing into low directories.
  Status EnsureDaemon();
  // The home-directory walk, with the skeleton cache in front of it when
  // enabled: a remembered home skips the walk entirely; a remembered project
  // directory skips the >udd>Project portion.
  Result<EntryId> EnsureHome(const Principal& who, const Acl& home_acl, Label session_label);

  Kernel* kernel_;
  Authenticator* auth_;
  MetricId id_logins_;
  MetricId id_logouts_;
  MetricId id_table_spin_cycles_;
  MetricId id_skel_hits_;
  MetricId id_skel_misses_;
  // Per-phase cycle accounting (always on; counters only, never charges).
  MetricId id_phase_auth_;
  MetricId id_phase_process_;
  MetricId id_phase_homedir_;
  MetricId id_phase_accounting_;
  TraceEventId ev_login_;
  TraceEventId ev_logout_;
  HistId hist_login_;
  HistId hist_logout_;
  ServiceDomain domain_;
  AnsweringConfig cfg_;
  PathWalker walker_;
  bool daemon_ready_ = false;
  ProcContext daemon_ctx_;
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t active_ = 0;
  // The skeleton cache: project path -> directory, and project>person ->
  // home, behind one read-mostly lock.
  mutable SimSharedLock skel_lock_;
  ReadMostlyInstruments skel_rmi_;
  std::unordered_map<std::string, EntryId> skel_projects_;
  std::unordered_map<std::string, EntryId> skel_homes_;
};

}  // namespace mks

#endif  // MKS_ANSWERING_SERVICE_H_
