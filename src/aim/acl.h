// Access control lists in the Multics style.
//
// Principals are "person.project" names; an ACL entry matches a principal
// pattern (either component may be "*") and grants some subset of
// read/write/execute (for segments) or status/modify/append (for
// directories, collapsed onto the same three mode bits).  Access to an
// object is determined entirely by the ACL of that object — the simplifying
// rule whose interaction with naming the paper analyzes at length.
#ifndef MKS_AIM_ACL_H_
#define MKS_AIM_ACL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mks {

struct Principal {
  std::string person;
  std::string project;

  std::string ToString() const { return person + "." + project; }

  friend bool operator==(const Principal& a, const Principal& b) {
    return a.person == b.person && a.project == b.project;
  }
};

struct AccessModes {
  bool read = false;
  bool write = false;
  bool execute = false;

  static AccessModes RW() { return AccessModes{true, true, false}; }
  static AccessModes RWE() { return AccessModes{true, true, true}; }
  static AccessModes R() { return AccessModes{true, false, false}; }
  static AccessModes None() { return AccessModes{}; }

  bool any() const { return read || write || execute; }
  std::string ToString() const;
};

struct AclEntry {
  std::string person_pattern;   // exact name or "*"
  std::string project_pattern;  // exact name or "*"
  AccessModes modes;

  bool Matches(const Principal& p) const {
    const bool person_ok = person_pattern == "*" || person_pattern == p.person;
    const bool project_ok = project_pattern == "*" || project_pattern == p.project;
    return person_ok && project_ok;
  }
};

class Acl {
 public:
  void Add(AclEntry entry) { entries_.push_back(std::move(entry)); }
  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }
  const std::vector<AclEntry>& entries() const { return entries_; }

  // First matching entry wins, in the Multics style (more specific entries
  // are conventionally placed first by the caller).
  AccessModes ModesFor(const Principal& p) const {
    for (const AclEntry& e : entries_) {
      if (e.Matches(p)) {
        return e.modes;
      }
    }
    return AccessModes::None();
  }

 private:
  std::vector<AclEntry> entries_;
};

}  // namespace mks

#endif  // MKS_AIM_ACL_H_
