#include "src/aim/monitor.h"

#include <sstream>

namespace mks {

std::string Label::ToString() const {
  std::ostringstream out;
  out << "L" << static_cast<int>(level_) << "{";
  bool first = true;
  for (int i = 0; i < kCompartments; ++i) {
    if (compartments_ & (1u << i)) {
      if (!first) {
        out << ",";
      }
      out << i;
      first = false;
    }
  }
  out << "}";
  return out.str();
}

std::string AccessModes::ToString() const {
  std::string s;
  s += read ? 'r' : '-';
  s += write ? 'w' : '-';
  s += execute ? 'e' : '-';
  return s;
}

void AuditLog::Append(AuditRecord record) {
  ++total_;
  if (record.outcome != Code::kOk) {
    ++denials_;
  }
  records_.push_back(std::move(record));
  if (records_.size() > capacity_) {
    records_.pop_front();
  }
}

Status ReferenceMonitor::CheckFlow(const Subject& subject, const Label& object_label,
                                   FlowDirection dir) {
  metrics_->Inc(id_flow_checks_);
  if (dir == FlowDirection::kObserve) {
    // Simple security: no read up.
    if (!subject.label.Dominates(object_label)) {
      metrics_->Inc(id_flow_denials_);
      return Status(Code::kNoAccess, "simple-security violation");
    }
  } else {
    // *-property: no write down.
    if (!object_label.Dominates(subject.label)) {
      metrics_->Inc(id_flow_denials_);
      return Status(Code::kNoAccess, "*-property violation");
    }
  }
  return Status::Ok();
}

Status ReferenceMonitor::CheckAccess(const Subject& subject, const Acl& acl,
                                     const Label& object_label, FlowDirection dir,
                                     bool need_read, bool need_write, bool need_execute,
                                     const std::string& operation, const std::string& target) {
  Status status = Status::Ok();
  const AccessModes modes = acl.ModesFor(subject.principal);
  if ((need_read && !modes.read) || (need_write && !modes.write) ||
      (need_execute && !modes.execute)) {
    status = Status(Code::kNoAccess, "acl denies " + operation);
  } else {
    status = CheckFlow(subject, object_label, dir);
    if (status.ok() && need_write && dir == FlowDirection::kObserve) {
      // A combined observe+modify request must satisfy both properties.
      status = CheckFlow(subject, object_label, FlowDirection::kModify);
    }
  }
  Audit(subject, operation, target, status.code());
  return status;
}

void ReferenceMonitor::Audit(const Subject& subject, const std::string& operation,
                             const std::string& target, Code outcome) {
  audit_.Append(AuditRecord{clock_->now(), subject.principal.ToString(), operation, target,
                            outcome});
}

}  // namespace mks
