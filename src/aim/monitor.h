// The reference monitor: every kernel gate consults it before touching an
// object on behalf of a subject.
//
// A decision combines discretionary access (the object's ACL) with the
// mandatory AIM checks (simple security for observation, the *-property for
// modification).  Every denial is recorded in the audit log, which is what an
// integrity auditor — or the tiger-team example — reads afterwards.
#ifndef MKS_AIM_MONITOR_H_
#define MKS_AIM_MONITOR_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/aim/acl.h"
#include "src/aim/label.h"
#include "src/common/status.h"
#include "src/sim/clock.h"
#include "src/sim/metrics.h"

namespace mks {

struct Subject {
  Principal principal;
  Label label;
  uint8_t ring = 4;  // user ring; ring 0 is the kernel
};

struct AuditRecord {
  Cycles time = 0;
  std::string subject;
  std::string operation;
  std::string target;
  Code outcome = Code::kOk;
};

class AuditLog {
 public:
  explicit AuditLog(size_t capacity = 4096) : capacity_(capacity) {}

  void Append(AuditRecord record);
  const std::deque<AuditRecord>& records() const { return records_; }
  uint64_t denial_count() const { return denials_; }
  uint64_t total_count() const { return total_; }

 private:
  size_t capacity_;
  std::deque<AuditRecord> records_;
  uint64_t denials_ = 0;
  uint64_t total_ = 0;
};

enum class FlowDirection : uint8_t {
  kObserve,  // information flows object -> subject (read, execute, list)
  kModify,   // information flows subject -> object (write, append, delete)
};

class ReferenceMonitor {
 public:
  ReferenceMonitor(Clock* clock, Metrics* metrics)
      : clock_(clock),
        metrics_(metrics),
        id_flow_checks_(metrics->Intern("aim.flow_checks")),
        id_flow_denials_(metrics->Intern("aim.flow_denials")) {}

  // Mandatory (AIM) check only.
  Status CheckFlow(const Subject& subject, const Label& object_label, FlowDirection dir);

  // Full decision: discretionary ACL modes plus the mandatory check.
  // `operation`/`target` feed the audit trail.
  Status CheckAccess(const Subject& subject, const Acl& acl, const Label& object_label,
                     FlowDirection dir, bool need_read, bool need_write, bool need_execute,
                     const std::string& operation, const std::string& target);

  // Records an access decision made elsewhere (e.g. hardware access bits).
  void Audit(const Subject& subject, const std::string& operation, const std::string& target,
             Code outcome);

  const AuditLog& audit_log() const { return audit_; }

 private:
  Clock* clock_;
  Metrics* metrics_;
  MetricId id_flow_checks_;
  MetricId id_flow_denials_;
  AuditLog audit_;
};

}  // namespace mks

#endif  // MKS_AIM_MONITOR_H_
