// Access Isolation Mechanism (AIM) labels: the MITRE model of sensitivity
// levels and compartments [Bell and LaPadula, 1973] as fielded in Multics.
//
// Every segment, directory, and process carries a Label.  Information may
// flow from object to subject only when the subject's label dominates the
// object's (simple security), and from subject to object only when the
// object's label dominates the subject's (the *-property).  Historical AIM
// provided 8 sensitivity levels and 18 compartment categories; we use the
// same sizes.
#ifndef MKS_AIM_LABEL_H_
#define MKS_AIM_LABEL_H_

#include <cstdint>
#include <string>

namespace mks {

class Label {
 public:
  static constexpr uint8_t kMaxLevel = 7;
  static constexpr int kCompartments = 18;
  static constexpr uint32_t kCompartmentMask = (1u << kCompartments) - 1;

  constexpr Label() = default;
  constexpr Label(uint8_t level, uint32_t compartments)
      : level_(level > kMaxLevel ? kMaxLevel : level),
        compartments_(compartments & kCompartmentMask) {}

  static constexpr Label SystemLow() { return Label(0, 0); }
  static constexpr Label SystemHigh() { return Label(kMaxLevel, kCompartmentMask); }

  uint8_t level() const { return level_; }
  uint32_t compartments() const { return compartments_; }

  // a.Dominates(b): a's level >= b's and a's compartment set contains b's.
  bool Dominates(const Label& other) const {
    return level_ >= other.level_ &&
           (compartments_ & other.compartments_) == other.compartments_;
  }

  bool Comparable(const Label& other) const {
    return Dominates(other) || other.Dominates(*this);
  }

  static Label Lub(const Label& a, const Label& b) {
    return Label(a.level_ > b.level_ ? a.level_ : b.level_, a.compartments_ | b.compartments_);
  }
  static Label Glb(const Label& a, const Label& b) {
    return Label(a.level_ < b.level_ ? a.level_ : b.level_, a.compartments_ & b.compartments_);
  }

  friend bool operator==(const Label& a, const Label& b) {
    return a.level_ == b.level_ && a.compartments_ == b.compartments_;
  }

  // "L3{0,5,17}" rendering.
  std::string ToString() const;

 private:
  uint8_t level_ = 0;
  uint32_t compartments_ = 0;
};

}  // namespace mks

#endif  // MKS_AIM_LABEL_H_
