// Runtime inter-module call tracking.
//
// The paper stresses that "inside an operating system careful analysis is
// required to identify all intermodule dependencies" — loops hide in
// exception paths and resource controls added last.  CallTracker makes that
// analysis executable: every object-manager operation opens a Scope naming
// its module; nested scopes record observed caller->callee edges.  Tests then
// assert that the observed call structure of the new kernel is a subset of
// its declared lattice, and that the baseline supervisor's observed structure
// really contains the loops of Figure 3.
#ifndef MKS_DEPS_TRACKER_H_
#define MKS_DEPS_TRACKER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/deps/graph.h"

namespace mks {

class CallTracker {
 public:
  // Registers (or finds) a module in the observed graph.
  ModuleId Register(std::string_view name) { return observed_.AddModule(name); }

  // RAII call scope.  Constructing a Scope while another module's scope is
  // active records an observed edge from the active module to this one.
  class Scope {
   public:
    Scope(CallTracker* tracker, ModuleId callee) : tracker_(tracker) {
      if (tracker_ != nullptr) {
        tracker_->Enter(callee);
      }
    }
    ~Scope() {
      if (tracker_ != nullptr) {
        tracker_->Exit();
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    CallTracker* tracker_;
  };

  // Models the paper's two mechanisms for crossing the lattice without
  // creating a dependency: a hardware exception entering the system afresh,
  // and the software signal that "transfers control and arguments to a higher
  // level module without leaving behind any procedure activation records".
  // While a SignalScope is alive the caller stack is suspended, so calls made
  // inside it are observed as fresh top-level entries, not as edges from the
  // signalling module.
  class SignalScope {
   public:
    explicit SignalScope(CallTracker* tracker) : tracker_(tracker) {
      if (tracker_ != nullptr) {
        saved_.swap(tracker_->stack_);
      }
    }
    ~SignalScope() {
      if (tracker_ != nullptr) {
        tracker_->stack_.swap(saved_);
      }
    }
    SignalScope(const SignalScope&) = delete;
    SignalScope& operator=(const SignalScope&) = delete;

   private:
    CallTracker* tracker_;
    std::vector<ModuleId> saved_;
  };

  const DependencyGraph& observed() const { return observed_; }

  // Observed edges absent from `declared` (matched by module name; the
  // dependency kind of a call edge is a design annotation, so any declared
  // kind legitimizes the call).  An empty result means the implementation
  // conforms to its declared dependency structure.
  std::vector<std::string> UndeclaredEdges(const DependencyGraph& declared) const;

  void Reset();

 private:
  void Enter(ModuleId callee);
  void Exit();

  DependencyGraph observed_;
  std::vector<ModuleId> stack_;
};

}  // namespace mks

#endif  // MKS_DEPS_TRACKER_H_
