#include "src/deps/tracker.h"

namespace mks {

void CallTracker::Enter(ModuleId callee) {
  if (!stack_.empty() && !(stack_.back() == callee)) {
    observed_.AddEdge(stack_.back(), callee, DepKind::kComponent);
  }
  stack_.push_back(callee);
}

void CallTracker::Exit() { stack_.pop_back(); }

std::vector<std::string> CallTracker::UndeclaredEdges(const DependencyGraph& declared) const {
  std::vector<std::string> undeclared;
  for (const DepEdge& e : observed_.edges()) {
    const std::string& from = observed_.name(e.from);
    const std::string& to = observed_.name(e.to);
    if (!declared.HasModule(from) || !declared.HasModule(to)) {
      undeclared.push_back(from + " -> " + to + " (module not declared)");
      continue;
    }
    if (!declared.HasEdge(declared.FindModule(from), declared.FindModule(to))) {
      undeclared.push_back(from + " -> " + to);
    }
  }
  return undeclared;
}

void CallTracker::Reset() {
  observed_ = DependencyGraph();
  stack_.clear();
}

}  // namespace mks
