// Dependency-structure analysis, the analytical heart of the paper.
//
// The paper classifies every way one object-manager module can depend on
// another into five kinds (component, map, program, address-space,
// interpreter) and requires that the "depends on" relation form a loop-free
// structure so that system correctness can be established one module at a
// time.  DependencyGraph represents a declared (or observed) structure,
// finds strongly connected components (Tarjan), computes the layering when
// the structure is loop-free, and renders DOT for the paper's figures.
#ifndef MKS_DEPS_GRAPH_H_
#define MKS_DEPS_GRAPH_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/ids.h"

namespace mks {

enum class DepKind : uint8_t {
  kComponent,     // M's objects are represented by the other manager's objects
  kMap,           // M's object-name map is stored in the other manager's objects
  kProgram,       // M's code and temporary storage live in the other's objects
  kAddressSpace,  // the address space M executes in is the other's object
  kInterpreter,   // the virtual processor interpreting M is the other's object
};
inline constexpr size_t kDepKindCount = 5;

std::string_view DepKindName(DepKind kind);

struct DepEdge {
  ModuleId from;
  ModuleId to;
  DepKind kind;

  friend bool operator<(const DepEdge& a, const DepEdge& b) {
    if (a.from != b.from) {
      return a.from < b.from;
    }
    if (a.to != b.to) {
      return a.to < b.to;
    }
    return static_cast<uint8_t>(a.kind) < static_cast<uint8_t>(b.kind);
  }
  friend bool operator==(const DepEdge& a, const DepEdge& b) {
    return a.from == b.from && a.to == b.to && a.kind == b.kind;
  }
};

class DependencyGraph {
 public:
  // Adds a module node; returns its id.  Adding an existing name returns the
  // existing id.
  ModuleId AddModule(std::string_view name);

  // Declares that `from` depends on `to` with the given kind.  Self-edges are
  // permitted in the data model (they are trivially loops).
  void AddEdge(ModuleId from, ModuleId to, DepKind kind);
  void AddEdge(std::string_view from, std::string_view to, DepKind kind);

  bool HasEdge(ModuleId from, ModuleId to) const;
  bool HasModule(std::string_view name) const;
  ModuleId FindModule(std::string_view name) const;  // dies if missing

  size_t module_count() const { return names_.size(); }
  size_t edge_count() const { return edges_.size(); }
  const std::string& name(ModuleId id) const { return names_[id.value]; }
  const std::set<DepEdge>& edges() const { return edges_; }

  // Strongly connected components in reverse-topological order.  Every
  // component of size > 1 (or with a self-edge) is a dependency loop.
  std::vector<std::vector<ModuleId>> Sccs() const;

  // All loops (SCCs that are genuine cycles).
  std::vector<std::vector<ModuleId>> Loops() const;

  // True iff the "depends on" relation is loop-free, i.e. correctness can be
  // established iteratively, one module at a time.
  bool IsLoopFree() const;

  // Layer assignment for a loop-free graph: layer(m) = 1 + max layer of the
  // modules m depends on; modules with no dependencies are layer 0.
  // Returns an empty map when the graph has loops.
  std::map<ModuleId, int> Layers() const;

  // Modules in a valid verification order (dependencies first).  Empty when
  // the graph has loops.
  std::vector<ModuleId> VerificationOrder() const;

  // Graphviz rendering, edges labelled by dependency kind.
  std::string ToDot(std::string_view title) const;

  // Plain-text rendering for benches: one line per edge.
  std::string ToText() const;

 private:
  // Rebuilds the seen-edge bitmap for the current module count.
  void GrowSeen();

  std::vector<std::string> names_;
  std::map<std::string, ModuleId, std::less<>> ids_;
  std::set<DepEdge> edges_;
  // Adjacency cache: from -> set of to (any kind).
  std::map<ModuleId, std::set<ModuleId>> adj_;
  // Dedupe filter in front of the ordered containers: the observed graph is
  // fed one edge per cross-module call, almost all repeats, and a bit test is
  // far cheaper than two tree inserts.  Bit ((from * kinds + kind) * n + to)
  // is set iff the edge is already present; rebuilt when modules are added.
  std::vector<uint64_t> seen_bits_;
  size_t seen_modules_ = 0;
};

}  // namespace mks

#endif  // MKS_DEPS_GRAPH_H_
