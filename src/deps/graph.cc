#include "src/deps/graph.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <sstream>

namespace mks {

std::string_view DepKindName(DepKind kind) {
  switch (kind) {
    case DepKind::kComponent:
      return "component";
    case DepKind::kMap:
      return "map";
    case DepKind::kProgram:
      return "program";
    case DepKind::kAddressSpace:
      return "address_space";
    case DepKind::kInterpreter:
      return "interpreter";
  }
  return "unknown";
}

ModuleId DependencyGraph::AddModule(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) {
    return it->second;
  }
  ModuleId id(static_cast<uint16_t>(names_.size()));
  names_.emplace_back(name);
  ids_.emplace(std::string(name), id);
  return id;
}

void DependencyGraph::AddEdge(ModuleId from, ModuleId to, DepKind kind) {
  assert(from.value < names_.size() && to.value < names_.size());
  if (seen_modules_ != names_.size()) {
    GrowSeen();
  }
  const size_t bit =
      (static_cast<size_t>(from.value) * kDepKindCount + static_cast<size_t>(kind)) *
          seen_modules_ +
      to.value;
  const uint64_t mask = uint64_t{1} << (bit & 63);
  if ((seen_bits_[bit >> 6] & mask) != 0) {
    return;  // already recorded; skip the tree inserts
  }
  seen_bits_[bit >> 6] |= mask;
  edges_.insert(DepEdge{from, to, kind});
  adj_[from].insert(to);
}

void DependencyGraph::GrowSeen() {
  seen_modules_ = names_.size();
  seen_bits_.assign((seen_modules_ * kDepKindCount * seen_modules_ + 63) / 64, 0);
  for (const DepEdge& e : edges_) {
    const size_t bit =
        (static_cast<size_t>(e.from.value) * kDepKindCount + static_cast<size_t>(e.kind)) *
            seen_modules_ +
        e.to.value;
    seen_bits_[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
}

void DependencyGraph::AddEdge(std::string_view from, std::string_view to, DepKind kind) {
  AddEdge(AddModule(from), AddModule(to), kind);
}

bool DependencyGraph::HasEdge(ModuleId from, ModuleId to) const {
  auto it = adj_.find(from);
  return it != adj_.end() && it->second.count(to) > 0;
}

bool DependencyGraph::HasModule(std::string_view name) const { return ids_.count(name) > 0; }

ModuleId DependencyGraph::FindModule(std::string_view name) const {
  auto it = ids_.find(name);
  assert(it != ids_.end());
  return it->second;
}

std::vector<std::vector<ModuleId>> DependencyGraph::Sccs() const {
  // Iterative Tarjan to avoid recursion limits on large graphs.
  const size_t n = names_.size();
  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint16_t> stack;
  std::vector<std::vector<ModuleId>> sccs;
  int next_index = 0;

  struct Frame {
    uint16_t node;
    std::set<ModuleId>::const_iterator it;
    std::set<ModuleId>::const_iterator end;
  };
  static const std::set<ModuleId> kEmpty;

  for (uint16_t start = 0; start < n; ++start) {
    if (index[start] != -1) {
      continue;
    }
    std::vector<Frame> frames;
    auto push_node = [&](uint16_t v) {
      index[v] = lowlink[v] = next_index++;
      stack.push_back(v);
      on_stack[v] = true;
      auto it = adj_.find(ModuleId(v));
      const std::set<ModuleId>& succ = it == adj_.end() ? kEmpty : it->second;
      frames.push_back(Frame{v, succ.begin(), succ.end()});
    };
    push_node(start);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.it != f.end) {
        const uint16_t w = f.it->value;
        ++f.it;
        if (index[w] == -1) {
          push_node(w);
        } else if (on_stack[w]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[w]);
        }
      } else {
        const uint16_t v = f.node;
        if (lowlink[v] == index[v]) {
          std::vector<ModuleId> scc;
          uint16_t w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(ModuleId(w));
          } while (w != v);
          std::sort(scc.begin(), scc.end());
          sccs.push_back(std::move(scc));
        }
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().node] = std::min(lowlink[frames.back().node], lowlink[v]);
        }
      }
    }
  }
  return sccs;
}

std::vector<std::vector<ModuleId>> DependencyGraph::Loops() const {
  std::vector<std::vector<ModuleId>> loops;
  for (auto& scc : Sccs()) {
    if (scc.size() > 1) {
      loops.push_back(scc);
    } else if (HasEdge(scc[0], scc[0])) {
      loops.push_back(scc);
    }
  }
  return loops;
}

bool DependencyGraph::IsLoopFree() const { return Loops().empty(); }

std::map<ModuleId, int> DependencyGraph::Layers() const {
  if (!IsLoopFree()) {
    return {};
  }
  std::map<ModuleId, int> layers;
  std::function<int(ModuleId)> layer_of = [&](ModuleId m) -> int {
    auto it = layers.find(m);
    if (it != layers.end()) {
      return it->second;
    }
    int layer = 0;
    auto adj_it = adj_.find(m);
    if (adj_it != adj_.end()) {
      for (ModuleId dep : adj_it->second) {
        layer = std::max(layer, layer_of(dep) + 1);
      }
    }
    layers[m] = layer;
    return layer;
  };
  for (uint16_t i = 0; i < names_.size(); ++i) {
    layer_of(ModuleId(i));
  }
  return layers;
}

std::vector<ModuleId> DependencyGraph::VerificationOrder() const {
  auto layers = Layers();
  if (layers.empty() && !names_.empty()) {
    return {};
  }
  std::vector<ModuleId> order;
  order.reserve(names_.size());
  for (uint16_t i = 0; i < names_.size(); ++i) {
    order.push_back(ModuleId(i));
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](ModuleId a, ModuleId b) { return layers[a] < layers[b]; });
  return order;
}

std::string DependencyGraph::ToDot(std::string_view title) const {
  std::ostringstream out;
  out << "digraph \"" << title << "\" {\n";
  out << "  rankdir=BT;\n";
  for (size_t i = 0; i < names_.size(); ++i) {
    out << "  n" << i << " [label=\"" << names_[i] << "\",shape=box];\n";
  }
  for (const DepEdge& e : edges_) {
    out << "  n" << e.from.value << " -> n" << e.to.value << " [label=\"" << DepKindName(e.kind)
        << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

std::string DependencyGraph::ToText() const {
  std::ostringstream out;
  for (const DepEdge& e : edges_) {
    out << names_[e.from.value] << " --" << DepKindName(e.kind) << "--> " << names_[e.to.value]
        << "\n";
  }
  return out.str();
}

}  // namespace mks
