// The reference name manager, extracted from the kernel [Bratt, 1975].
//
// Reference names are per-process bindings from short names to segment
// numbers, consulted by the dynamic linker's search rules.  In the old
// supervisor this table lived in ring zero and every lookup crossed the
// gate; extracted to the user ring the table is ordinary user data — the
// paper reports the extracted version "ran somewhat faster" (no ring
// crossing) and that the algorithm shrank by a factor of four once freed
// from kernel packaging.
#ifndef MKS_FS_REF_NAME_H_
#define MKS_FS_REF_NAME_H_

#include <map>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"

namespace mks {

class ReferenceNameManager {
 public:
  explicit ReferenceNameManager(KernelContext* ctx)
      : ctx_(ctx),
        id_binds_(ctx->metrics.Intern("refname.binds")),
        id_lookups_(ctx->metrics.Intern("refname.lookups")) {}

  Status Bind(ProcessId pid, const std::string& name, Segno segno);
  Result<Segno> Resolve(ProcessId pid, const std::string& name);
  Status Unbind(ProcessId pid, const std::string& name);
  std::vector<std::string> Names(ProcessId pid) const;

 private:
  // User-ring data: no gate crossing, just the (structured-code) search.
  KernelContext* ctx_;
  MetricId id_binds_;
  MetricId id_lookups_;
  std::map<ProcessId, std::map<std::string, Segno>> tables_;
};

}  // namespace mks

#endif  // MKS_FS_REF_NAME_H_
