#include "src/fs/path_walker.h"

#include <sstream>

namespace mks {

static_assert(GateOpIsRead(GateOp::kSearch), "path resolution is read-side");
static_assert(!GateOpIsRead(GateOp::kCreateDirectory) && !GateOpIsRead(GateOp::kCreateSegment) &&
                  !GateOpIsRead(GateOp::kInitiate),
              "creation and initiation are write-side");

std::vector<std::string> PathWalker::Split(const std::string& path) {
  std::vector<std::string> components;
  std::istringstream stream(path);
  std::string component;
  while (std::getline(stream, component, '>')) {
    if (!component.empty()) {
      components.push_back(component);
    }
  }
  return components;
}

Result<EntryId> PathWalker::Walk(ProcContext& ctx, const std::string& path) {
  EntryId current = gates_->RootId();
  for (const std::string& component : Split(path)) {
    Count(GateOp::kSearch);
    auto next = gates_->Search(ctx, current, component);
    if (!next.ok()) {
      return next.status();  // only an accessible directory says kNoEntry
    }
    current = *next;
  }
  return current;
}

Result<Segno> PathWalker::Initiate(ProcContext& ctx, const std::string& path) {
  MKS_ASSIGN_OR_RETURN(EntryId target, Walk(ctx, path));
  Count(GateOp::kInitiate);
  return gates_->Initiate(ctx, target);
}

Result<EntryId> PathWalker::CreateDirectories(ProcContext& ctx, const std::string& path,
                                              Acl acl, Label label) {
  EntryId current = gates_->RootId();
  for (const std::string& component : Split(path)) {
    Count(GateOp::kSearch);
    auto next = gates_->Search(ctx, current, component);
    if (next.ok()) {
      current = *next;
      continue;
    }
    if (next.code() != Code::kNoEntry) {
      return next.status();
    }
    Count(GateOp::kCreateDirectory);
    MKS_ASSIGN_OR_RETURN(current, gates_->CreateDirectory(ctx, current, component, acl, label));
  }
  return current;
}

Result<EntryId> PathWalker::CreateSegment(ProcContext& ctx, const std::string& path, Acl acl,
                                          Label label) {
  auto components = Split(path);
  if (components.empty()) {
    return Status(Code::kInvalidArgument, "empty path");
  }
  const std::string leaf = components.back();
  std::string dir_path;
  for (size_t i = 0; i + 1 < components.size(); ++i) {
    dir_path += ">" + components[i];
  }
  MKS_ASSIGN_OR_RETURN(EntryId dir, CreateDirectories(ctx, dir_path, acl, label));
  Count(GateOp::kCreateSegment);
  return gates_->CreateSegment(ctx, dir, leaf, acl, label);
}

}  // namespace mks
