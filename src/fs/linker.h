// The dynamic linker, extracted from the kernel [Janson, 1974].
//
// Link snapping resolves a symbolic reference ("seg$entry") to a segment
// number the first time it is used, caching the result in the process's
// linkage section.  Removing it from ring zero eliminated 5% of the kernel's
// object code but 11% of the user-domain entry points into the kernel; the
// extracted version runs "somewhat slower" because a first-reference snap
// now performs its directory searches through kernel gates (ring crossings)
// instead of from inside ring zero.  Both effects are measurable here.
//
// Search rules follow the Multics convention: reference names first, then a
// list of search directories.
#ifndef MKS_FS_LINKER_H_
#define MKS_FS_LINKER_H_

#include <map>
#include <string>
#include <vector>

#include "src/fs/path_walker.h"
#include "src/fs/ref_name.h"

namespace mks {

class DynamicLinker {
 public:
  DynamicLinker(KernelContext* ctx, KernelGates* gates, PathWalker* walker,
                ReferenceNameManager* names)
      : ctx_(ctx),
        gates_(gates),
        walker_(walker),
        names_(names),
        id_link_faults_(ctx->metrics.Intern("linker.link_faults")),
        id_snaps_(ctx->metrics.Intern("linker.snaps")) {}

  // Adds a directory to the tail of a process's search rules.
  void AddSearchDir(ProcessId pid, const std::string& dir_path);

  // Resolves `symbol` (a segment reference name) for the process: first the
  // linkage section (snapped links), then reference names, then the search
  // directories.  On success the link is snapped.
  Result<Segno> Snap(ProcContext& ctx, const std::string& symbol);

  // Drops every snapped link for the process (e.g. on a new command level).
  void ResetLinkage(ProcessId pid);

  uint64_t snaps() const { return snaps_; }
  uint64_t fast_hits() const { return fast_hits_; }

 private:
  KernelContext* ctx_;
  KernelGates* gates_;
  PathWalker* walker_;
  ReferenceNameManager* names_;
  MetricId id_link_faults_;
  MetricId id_snaps_;
  std::map<ProcessId, std::map<std::string, Segno>> linkage_;
  std::map<ProcessId, std::vector<std::string>> search_rules_;
  uint64_t snaps_ = 0;
  uint64_t fast_hits_ = 0;
};

}  // namespace mks

#endif  // MKS_FS_LINKER_H_
