// The user-ring path walker.
//
// "The general operation of following path names did not need to be a
// protected mechanism": given the kernel's single-directory search primitive
// (with Bratt's mythical-identifier semantics), tree-name expansion runs
// entirely in the user ring.  The walker cannot tell whether the identifiers
// it holds for inaccessible intermediate directories are real or mythical;
// only the final initiate decides — with a bare "no access" either way.
#ifndef MKS_FS_PATH_WALKER_H_
#define MKS_FS_PATH_WALKER_H_

#include <string>
#include <vector>

#include "src/kernel/kernel.h"

namespace mks {

class PathWalker {
 public:
  explicit PathWalker(KernelGates* gates) : gates_(gates) {}

  // Splits ">a>b>c" into components.
  static std::vector<std::string> Split(const std::string& path);

  // Expands the tree name one component at a time.  Always yields an
  // identifier for syntactically valid paths, except when an accessible
  // directory definitively reports kNoEntry.
  Result<EntryId> Walk(ProcContext& ctx, const std::string& path);

  // Walks the containing directory, then walks+initiates the leaf.
  Result<Segno> Initiate(ProcContext& ctx, const std::string& path);

  // User-domain conveniences built from kernel gates: create missing
  // directories along the path, then the leaf object.
  Result<EntryId> CreateSegment(ProcContext& ctx, const std::string& path, Acl acl, Label label);
  Result<EntryId> CreateDirectories(ProcContext& ctx, const std::string& path, Acl acl,
                                    Label label);

 private:
  KernelGates* gates_;
};

}  // namespace mks

#endif  // MKS_FS_PATH_WALKER_H_
