// The user-ring path walker.
//
// "The general operation of following path names did not need to be a
// protected mechanism": given the kernel's single-directory search primitive
// (with Bratt's mythical-identifier semantics), tree-name expansion runs
// entirely in the user ring.  The walker cannot tell whether the identifiers
// it holds for inaccessible intermediate directories are real or mythical;
// only the final initiate decides — with a bare "no access" either way.
#ifndef MKS_FS_PATH_WALKER_H_
#define MKS_FS_PATH_WALKER_H_

#include <string>
#include <vector>

#include "src/kernel/kernel.h"

namespace mks {

class PathWalker {
 public:
  // Read/write attribution of the walker's gate crossings, classified with
  // GateOpIsRead: every Search a walk issues is a read-side crossing, every
  // create/initiate is write-side.  This is the user-ring half of the
  // read-mostly split — a resolution is reads all the way down, so the
  // 1000:1 mixes the kernel's naming locks see start here.
  struct GateMix {
    uint64_t read_calls = 0;
    uint64_t write_calls = 0;
  };

  explicit PathWalker(KernelGates* gates) : gates_(gates) {}

  const GateMix& gate_mix() const { return mix_; }

  // Splits ">a>b>c" into components.
  static std::vector<std::string> Split(const std::string& path);

  // Expands the tree name one component at a time.  Always yields an
  // identifier for syntactically valid paths, except when an accessible
  // directory definitively reports kNoEntry.
  Result<EntryId> Walk(ProcContext& ctx, const std::string& path);

  // Walks the containing directory, then walks+initiates the leaf.
  Result<Segno> Initiate(ProcContext& ctx, const std::string& path);

  // User-domain conveniences built from kernel gates: create missing
  // directories along the path, then the leaf object.
  Result<EntryId> CreateSegment(ProcContext& ctx, const std::string& path, Acl acl, Label label);
  Result<EntryId> CreateDirectories(ProcContext& ctx, const std::string& path, Acl acl,
                                    Label label);

 private:
  void Count(GateOp op) { (GateOpIsRead(op) ? mix_.read_calls : mix_.write_calls)++; }

  KernelGates* gates_;
  GateMix mix_;
};

}  // namespace mks

#endif  // MKS_FS_PATH_WALKER_H_
