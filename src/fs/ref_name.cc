#include "src/fs/ref_name.h"

namespace mks {

Status ReferenceNameManager::Bind(ProcessId pid, const std::string& name, Segno segno) {
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kProcedureCall * 2);
  tables_[pid][name] = segno;
  ctx_->metrics.Inc(id_binds_);
  return Status::Ok();
}

Result<Segno> ReferenceNameManager::Resolve(ProcessId pid, const std::string& name) {
  // The whole point of the extraction: a lookup is a user-ring procedure
  // call into a per-process table, not a trip through a kernel gate.
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kProcedureCall * 2);
  ctx_->metrics.Inc(id_lookups_);
  auto table = tables_.find(pid);
  if (table == tables_.end()) {
    return Status(Code::kNotFound, name);
  }
  auto it = table->second.find(name);
  if (it == table->second.end()) {
    return Status(Code::kNotFound, name);
  }
  return it->second;
}

Status ReferenceNameManager::Unbind(ProcessId pid, const std::string& name) {
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kProcedureCall * 2);
  auto table = tables_.find(pid);
  if (table == tables_.end() || table->second.erase(name) == 0) {
    return Status(Code::kNotFound, name);
  }
  return Status::Ok();
}

std::vector<std::string> ReferenceNameManager::Names(ProcessId pid) const {
  std::vector<std::string> names;
  auto table = tables_.find(pid);
  if (table != tables_.end()) {
    for (const auto& [name, segno] : table->second) {
      names.push_back(name);
    }
  }
  return names;
}

}  // namespace mks
