#include "src/fs/linker.h"

namespace mks {

void DynamicLinker::AddSearchDir(ProcessId pid, const std::string& dir_path) {
  search_rules_[pid].push_back(dir_path);
}

Result<Segno> DynamicLinker::Snap(ProcContext& ctx, const std::string& symbol) {
  // Snapped already?  A user-ring table lookup, the common fast path.
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kProcedureCall);
  auto& links = linkage_[ctx.pid];
  auto snapped = links.find(symbol);
  if (snapped != links.end()) {
    ++fast_hits_;
    return snapped->second;
  }

  // Linkage fault: run the search rules.  Every probe is now a gate call
  // from the user ring — the cost the extraction added.
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kFaultEntry);
  ctx_->metrics.Inc(id_link_faults_);

  // Rule 1: already-initiated reference names.
  auto by_name = names_->Resolve(ctx.pid, symbol);
  if (by_name.ok()) {
    links[symbol] = *by_name;
    ++snaps_;
    return *by_name;
  }

  // Rule 2: search directories, in order.
  auto rules = search_rules_.find(ctx.pid);
  if (rules != search_rules_.end()) {
    for (const std::string& dir_path : rules->second) {
      auto dir = walker_->Walk(ctx, dir_path);
      if (!dir.ok()) {
        continue;
      }
      auto entry = gates_->Search(ctx, *dir, symbol);
      if (!entry.ok()) {
        continue;
      }
      auto segno = gates_->Initiate(ctx, *entry);
      if (!segno.ok()) {
        continue;  // mythical or inaccessible: keep searching
      }
      (void)names_->Bind(ctx.pid, symbol, *segno);
      links[symbol] = *segno;
      ++snaps_;
      ctx_->metrics.Inc(id_snaps_);
      return *segno;
    }
  }
  return Status(Code::kNotFound, "linkage fault unresolved: " + symbol);
}

void DynamicLinker::ResetLinkage(ProcessId pid) { linkage_[pid].clear(); }

}  // namespace mks
