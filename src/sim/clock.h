// Simulated time base and instruction-cost model.
//
// Every component of the simulated machine charges cycles to a shared Clock.
// The CostModel distinguishes "optimized" code (the baseline supervisor's
// hand-coded assembly paths) from "structured" code (the kernel's PL/I-style
// reimplementation).  The paper reports that recoding assembly in PL/I
// roughly doubled the generated instruction count [Huber, 1976]; the model
// makes that factor an explicit, benchmarkable parameter.
#ifndef MKS_SIM_CLOCK_H_
#define MKS_SIM_CLOCK_H_

#include <cstdint>

namespace mks {

using Cycles = uint64_t;

class Clock {
 public:
  Cycles now() const { return now_; }
  void Advance(Cycles n) {
    now_ += n;
    total_advanced_ += n;
  }
  void Reset() { now_ = 0; }

  // Process-wide tally of cycles advanced on every Clock instance, for host
  // throughput reporting (simulated cycles per host second).  Monotonic:
  // Reset() rewinds a clock's reading, not the work already simulated.
  static Cycles total_advanced() { return total_advanced_; }

 private:
  static inline Cycles total_advanced_ = 0;
  Cycles now_{0};
};

enum class CodeStyle : uint8_t {
  kOptimized,   // hand-tuned assembly-language path
  kStructured,  // PL/I-style, auditable reimplementation
};

class CostModel {
 public:
  explicit CostModel(Clock* clock) : clock_(clock) {}

  // The paper's observed PL/I-vs-assembly expansion factor ("slightly more
  // than a factor of two" in generated instructions).
  static constexpr double kDefaultStructuredFactor = 2.1;

  void set_structured_factor(double f) { structured_factor_ = f; }
  double structured_factor() const { return structured_factor_; }

  // Charge `base` optimized-equivalent cycles of code written in `style`.
  void Charge(CodeStyle style, Cycles base) {
    if (style == CodeStyle::kStructured) {
      base = static_cast<Cycles>(static_cast<double>(base) * structured_factor_);
    }
    clock_->Advance(base);
  }

  Clock* clock() const { return clock_; }

 private:
  Clock* clock_;
  double structured_factor_{kDefaultStructuredFactor};
};

// Nominal cycle charges for common machine operations.  The absolute values
// are arbitrary; only the ratios matter for experiment shape.
struct Costs {
  static constexpr Cycles kMemoryReference = 1;
  static constexpr Cycles kAddressTranslation = 2;
  // With the associative memory modelled, a translation that misses it pays
  // two explicit descriptor fetches from core (SDW, then PTW) on top of the
  // translation logic; a hit pays only the associative search.
  static constexpr Cycles kDescriptorFetch = 1;
  static constexpr Cycles kAssocSearch = 1;
  static constexpr Cycles kFaultEntry = 30;          // trap + state save
  static constexpr Cycles kGateCall = 20;            // ring crossing
  static constexpr Cycles kProcedureCall = 5;
  static constexpr Cycles kProcessSwitch = 150;      // user process dispatch
  static constexpr Cycles kVpSwitch = 60;            // virtual processor dispatch
  static constexpr Cycles kDiskReadLatency = 30000;  // one record transfer
  static constexpr Cycles kDiskWriteLatency = 30000;
  // Batched I/O (the anticipatory paging pipeline): a dispatch round sorts
  // queued requests by record index and sweeps the arm once, so only the
  // first record pays the full seek+rotation latency; every further record
  // coalesced into the same sweep pays just its transfer time.
  static constexpr Cycles kDiskBatchedTransfer = 3000;
  static constexpr Cycles kPageScanPerWord = 1;      // zero-detection sweep
};

}  // namespace mks

#endif  // MKS_SIM_CLOCK_H_
