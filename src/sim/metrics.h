// Named counters collected during a simulation run.
//
// Managers increment counters ("page_faults", "quota_checks", ...) and
// benches/tests read them back.  Keeping counters centralized lets the
// benchmark harness report the same event rates the paper discusses without
// threading bookkeeping through every interface.
#ifndef MKS_SIM_METRICS_H_
#define MKS_SIM_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace mks {

class Metrics {
 public:
  void Inc(std::string_view name, uint64_t by = 1) { counters_[std::string(name)] += by; }

  uint64_t Get(std::string_view name) const {
    auto it = counters_.find(std::string(name));
    return it == counters_.end() ? 0 : it->second;
  }

  void Reset() { counters_.clear(); }

  const std::map<std::string, uint64_t>& counters() const { return counters_; }

 private:
  std::map<std::string, uint64_t> counters_;
};

}  // namespace mks

#endif  // MKS_SIM_METRICS_H_
