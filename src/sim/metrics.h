// Named counters collected during a simulation run.
//
// Managers increment counters ("page_faults", "quota_checks", ...) and
// benches/tests read them back.  Keeping counters centralized lets the
// benchmark harness report the same event rates the paper discusses without
// threading bookkeeping through every interface.
//
// Two APIs share one value store:
//
//  * the handle API: a manager calls Intern(name) once at construction and
//    Inc(MetricId) on the hot path — a plain array increment, no hashing, no
//    string materialization.  Every per-reference counter in the system uses
//    this form.
//  * the string API: benches and tests read (and occasionally bump) counters
//    by name.  Lookups are heterogeneous (std::less<>), so a string_view
//    never allocates a temporary std::string; only the first Intern of a new
//    name allocates.
//
// Alongside the flat counters, Metrics keeps log2-bucket histograms for
// latency distributions (fault service time, gate crossings, lock spin).
// Histograms follow the same discipline: InternHistogram at construction,
// Observe on the record path (one array increment, no hashing), and
// percentile readback by name for benches.  Histograms live in a separate
// store, so counters() — the snapshot the determinism tests compare — is
// unaffected by interning them.
#ifndef MKS_SIM_METRICS_H_
#define MKS_SIM_METRICS_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mks {

// A stable handle for one counter; valid for the lifetime of the Metrics
// instance that issued it.
using MetricId = uint32_t;

// A stable handle for one histogram, same lifetime contract as MetricId.
using HistId = uint32_t;
inline constexpr HistId kNoHist = UINT32_MAX;

class Metrics {
 public:
  // Returns the handle for `name`, creating the counter (at zero) on first
  // use.  The only allocating operation; call it at manager construction,
  // never on a per-reference path.
  MetricId Intern(std::string_view name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) {
      return it->second;
    }
    const MetricId id = static_cast<MetricId>(values_.size());
    values_.push_back(0);
    ids_.emplace(std::string(name), id);
    return id;
  }

  // Hot path: one array increment.  Both handle forms assert the same bounds
  // contract: a stale or foreign MetricId is a caller bug, not a silent zero
  // (Get) or silent corruption (Inc).
  void Inc(MetricId id, uint64_t by = 1) {
    assert(id < values_.size());
    values_[id] += by;
  }
  uint64_t Get(MetricId id) const {
    assert(id < values_.size());
    return values_[id];
  }

  // String-keyed readback/bump for benches and tests.
  void Inc(std::string_view name, uint64_t by = 1) { values_[Intern(name)] += by; }

  uint64_t Get(std::string_view name) const {
    auto it = ids_.find(name);
    return it == ids_.end() ? 0 : values_[it->second];
  }

  // Zeroes every counter and histogram.  Interned handles stay valid (names
  // are retained), so managers keep their handles across a Reset.
  void Reset() {
    std::fill(values_.begin(), values_.end(), 0);
    for (auto& h : hists_) {
      h.buckets.fill(0);
      h.count = 0;
    }
  }

  // Snapshot of every counter by name, for reporting.
  std::map<std::string, uint64_t, std::less<>> counters() const {
    std::map<std::string, uint64_t, std::less<>> out;
    for (const auto& [name, id] : ids_) {
      out.emplace(name, values_[id]);
    }
    return out;
  }

  // --- Histograms -----------------------------------------------------------
  //
  // Log2 buckets: bucket 0 holds the value 0; bucket b >= 1 holds values in
  // [2^(b-1), 2^b - 1].  65 buckets cover the full uint64_t range.  Percentile
  // readback returns the inclusive upper bound of the bucket containing the
  // requested rank — an overestimate by at most 2x, which is plenty for the
  // order-of-magnitude latency comparisons the benches make.

  static constexpr size_t kHistBuckets = 65;

  HistId InternHistogram(std::string_view name) {
    auto it = hist_ids_.find(name);
    if (it != hist_ids_.end()) {
      return it->second;
    }
    const HistId id = static_cast<HistId>(hists_.size());
    hists_.emplace_back();
    hist_ids_.emplace(std::string(name), id);
    return id;
  }

  // Hot path: one array increment.
  void Observe(HistId id, uint64_t value) {
    Hist& h = hists_[id];
    h.buckets[BucketOf(value)]++;
    h.count++;
  }

  uint64_t HistCount(std::string_view name) const {
    const HistId id = FindHistogram(name);
    return id == kNoHist ? 0 : hists_[id].count;
  }

  // Upper bound of the bucket holding the p-th percentile observation
  // (p in [0, 1]); 0 if the histogram is empty or unknown.
  uint64_t HistPercentile(std::string_view name, double p) const {
    const HistId id = FindHistogram(name);
    if (id == kNoHist || hists_[id].count == 0) {
      return 0;
    }
    const Hist& h = hists_[id];
    const uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::ceil(p * static_cast<double>(h.count))));
    uint64_t seen = 0;
    for (size_t b = 0; b < kHistBuckets; ++b) {
      seen += h.buckets[b];
      if (seen >= rank) {
        return BucketUpper(b);
      }
    }
    return BucketUpper(kHistBuckets - 1);
  }

  // Names of every interned histogram with at least one observation, for
  // report emitters that don't know the taxonomy.
  std::vector<std::string> histogram_names() const {
    std::vector<std::string> out;
    for (const auto& [name, id] : hist_ids_) {
      if (hists_[id].count > 0) {
        out.push_back(name);
      }
    }
    return out;
  }

  // Bucket index for a value: 0 for 0, else 1 + floor(log2(v)).
  static size_t BucketOf(uint64_t value) {
    return static_cast<size_t>(std::bit_width(value));
  }

  // Inclusive upper bound of bucket b.
  static uint64_t BucketUpper(size_t b) {
    if (b == 0) {
      return 0;
    }
    if (b >= 64) {
      return UINT64_MAX;
    }
    return (uint64_t{1} << b) - 1;
  }

 private:
  struct Hist {
    std::array<uint64_t, kHistBuckets> buckets{};
    uint64_t count = 0;
  };

  HistId FindHistogram(std::string_view name) const {
    auto it = hist_ids_.find(name);
    return it == hist_ids_.end() ? kNoHist : it->second;
  }

  std::map<std::string, MetricId, std::less<>> ids_;
  std::vector<uint64_t> values_;
  std::map<std::string, HistId, std::less<>> hist_ids_;
  std::vector<Hist> hists_;
};

}  // namespace mks

#endif  // MKS_SIM_METRICS_H_
