// Named counters collected during a simulation run.
//
// Managers increment counters ("page_faults", "quota_checks", ...) and
// benches/tests read them back.  Keeping counters centralized lets the
// benchmark harness report the same event rates the paper discusses without
// threading bookkeeping through every interface.
//
// Two APIs share one value store:
//
//  * the handle API: a manager calls Intern(name) once at construction and
//    Inc(MetricId) on the hot path — a plain array increment, no hashing, no
//    string materialization.  Every per-reference counter in the system uses
//    this form.
//  * the string API: benches and tests read (and occasionally bump) counters
//    by name.  Lookups are heterogeneous (std::less<>), so a string_view
//    never allocates a temporary std::string; only the first Intern of a new
//    name allocates.
#ifndef MKS_SIM_METRICS_H_
#define MKS_SIM_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mks {

// A stable handle for one counter; valid for the lifetime of the Metrics
// instance that issued it.
using MetricId = uint32_t;

class Metrics {
 public:
  // Returns the handle for `name`, creating the counter (at zero) on first
  // use.  The only allocating operation; call it at manager construction,
  // never on a per-reference path.
  MetricId Intern(std::string_view name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) {
      return it->second;
    }
    const MetricId id = static_cast<MetricId>(values_.size());
    values_.push_back(0);
    ids_.emplace(std::string(name), id);
    return id;
  }

  // Hot path: one array increment.
  void Inc(MetricId id, uint64_t by = 1) { values_[id] += by; }
  uint64_t Get(MetricId id) const { return id < values_.size() ? values_[id] : 0; }

  // String-keyed readback/bump for benches and tests.
  void Inc(std::string_view name, uint64_t by = 1) { values_[Intern(name)] += by; }

  uint64_t Get(std::string_view name) const {
    auto it = ids_.find(name);
    return it == ids_.end() ? 0 : values_[it->second];
  }

  // Zeroes every counter.  Interned handles stay valid (names are retained),
  // so managers keep their handles across a Reset.
  void Reset() { std::fill(values_.begin(), values_.end(), 0); }

  // Snapshot of every counter by name, for reporting.
  std::map<std::string, uint64_t, std::less<>> counters() const {
    std::map<std::string, uint64_t, std::less<>> out;
    for (const auto& [name, id] : ids_) {
      out.emplace(name, values_[id]);
    }
    return out;
  }

 private:
  std::map<std::string, MetricId, std::less<>> ids_;
  std::vector<uint64_t> values_;
};

}  // namespace mks

#endif  // MKS_SIM_METRICS_H_
