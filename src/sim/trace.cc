#include "src/sim/trace.h"

#include <cstdio>

namespace mks {
namespace {

// Minimal JSON string escape for event names (ASCII identifiers in practice,
// but keep the exporter honest).
void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  *out += buf;
}

}  // namespace

std::string TraceExporter::Export(const Tracer& tracer) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&out, &first] {
    if (!first) {
      out += ',';
    }
    first = false;
  };
  for (uint16_t cpu = 0; cpu < tracer.cpu_count(); ++cpu) {
    comma();
    out += "{\"ph\":\"M\",\"pid\":0,\"tid\":";
    AppendU64(&out, cpu);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"cpu";
    AppendU64(&out, cpu);
    out += "\"}}";
  }
  for (uint16_t cpu = 0; cpu < tracer.cpu_count(); ++cpu) {
    for (const TraceRecord& rec : tracer.Snapshot(cpu)) {
      comma();
      if (rec.dur > 0) {
        out += "{\"ph\":\"X\",\"pid\":0,\"tid\":";
        AppendU64(&out, rec.cpu);
        out += ",\"ts\":";
        AppendU64(&out, rec.ts);
        out += ",\"dur\":";
        AppendU64(&out, rec.dur);
      } else {
        out += "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":";
        AppendU64(&out, rec.cpu);
        out += ",\"ts\":";
        AppendU64(&out, rec.ts);
      }
      out += ",\"name\":\"";
      AppendEscaped(&out, tracer.EventName(rec.event));
      out += "\",\"args\":{\"proc\":";
      AppendU64(&out, rec.proc);
      out += ",\"arg\":";
      AppendU64(&out, rec.arg);
      out += "}}";
    }
  }
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

bool TraceExporter::WriteFile(const Tracer& tracer, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = Export(tracer);
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

}  // namespace mks
