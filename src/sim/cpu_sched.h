// Deterministic quantum interleaving across a simulated CPU pool.
//
// Host execution is single-threaded: exactly one CPU runs at a time, and all
// charged work lands on the one global Clock (which therefore remains the
// *serialized* total, unchanged from the uniprocessor model).  Concurrency is
// an accounting overlay: each CPU carries a local virtual clock, the
// scheduler gives the next quantum to the CPU whose local clock is furthest
// behind (lowest index on ties), and the global-clock delta of that quantum
// is accrued to the chosen CPU.  The result is a fixed-quantum round
// interleaving that is a function of the workload alone — no host threads, no
// races, bit-identical across runs — while simulated time is genuinely
// concurrent: the furthest-ahead local clock (`Makespan`) is the parallel
// completion time, and two CPUs whose quanta overlap in virtual time really
// do contend for locks and descriptors.
//
// Per-CPU counters are interned at construction (smp.cpuK.busy_cycles,
// smp.cpuK.quanta); Accrue on the stepped path is handle-based only.
#ifndef MKS_SIM_CPU_SCHED_H_
#define MKS_SIM_CPU_SCHED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/metrics.h"

namespace mks {

class CpuInterleave {
 public:
  CpuInterleave(uint16_t cpu_count, Metrics* metrics) : metrics_(metrics) {
    if (cpu_count == 0) {
      cpu_count = 1;
    }
    cpus_.reserve(cpu_count);
    for (uint16_t k = 0; k < cpu_count; ++k) {
      const std::string prefix = "smp.cpu" + std::to_string(k);
      cpus_.push_back(PerCpu{0, metrics->Intern(prefix + ".busy_cycles"),
                             metrics->Intern(prefix + ".quanta")});
    }
  }

  uint16_t count() const { return static_cast<uint16_t>(cpus_.size()); }

  // The CPU whose local clock is furthest behind runs the next quantum.
  uint16_t NextCpu() const {
    uint16_t best = 0;
    for (uint16_t k = 1; k < count(); ++k) {
      if (cpus_[k].local < cpus_[best].local) {
        best = k;
      }
    }
    return best;
  }

  // Charges one quantum's worth of busy cycles to `cpu`'s local clock.
  void Accrue(uint16_t cpu, Cycles delta) {
    cpus_[cpu].local += delta;
    metrics_->Inc(cpus_[cpu].id_busy_cycles, delta);
    metrics_->Inc(cpus_[cpu].id_quanta);
  }

  // Idles the whole pool forward together (every process blocked on a device
  // completion: wall time passes on all CPUs, busy time on none).
  void AdvanceAll(Cycles delta) {
    for (PerCpu& c : cpus_) {
      c.local += delta;
    }
  }

  // Aligns every local clock to the furthest-ahead one: a synchronization
  // barrier (e.g. the start of a measured region — earlier CPUs idle until
  // the last one arrives).  Busy-cycle metrics are not affected.
  void AlignAll() {
    const Cycles m = Makespan();
    for (PerCpu& c : cpus_) {
      c.local = m;
    }
  }

  Cycles local_now(uint16_t cpu) const { return cpus_[cpu].local; }

  // Simulated-parallel completion time: the furthest-ahead local clock.
  Cycles Makespan() const {
    Cycles m = 0;
    for (const PerCpu& c : cpus_) {
      if (c.local > m) {
        m = c.local;
      }
    }
    return m;
  }

 private:
  struct PerCpu {
    Cycles local = 0;
    MetricId id_busy_cycles = 0;
    MetricId id_quanta = 0;
  };
  std::vector<PerCpu> cpus_;
  Metrics* metrics_;
};

}  // namespace mks

#endif  // MKS_SIM_CPU_SCHED_H_
