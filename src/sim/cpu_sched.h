// Deterministic quantum interleaving across a simulated CPU pool.
//
// Host execution is single-threaded: exactly one CPU runs at a time, and all
// charged work lands on the one global Clock (which therefore remains the
// *serialized* total, unchanged from the uniprocessor model).  Concurrency is
// an accounting overlay: each CPU carries a local virtual clock, the
// scheduler gives the next quantum to the CPU whose local clock is furthest
// behind (lowest index on ties), and the global-clock delta of that quantum
// is accrued to the chosen CPU.  The result is a fixed-quantum round
// interleaving that is a function of the workload alone — no host threads, no
// races, bit-identical across runs — while simulated time is genuinely
// concurrent: the furthest-ahead local clock (`Makespan`) is the parallel
// completion time, and two CPUs whose quanta overlap in virtual time really
// do contend for locks and descriptors.
//
// Per-CPU counters are interned at construction (smp.cpuK.busy_cycles,
// smp.cpuK.quanta); Accrue on the stepped path is handle-based only.
//
// Selection is O(1): a tournament (winner) tree over the local clocks keeps
// the least-behind CPU at the root, repaired along one leaf-to-root path on
// each Accrue.  The tree compares a left child before its right sibling, so
// equal clocks resolve to the lowest index — exactly the tie-break of the
// original linear scan.  AdvanceAll shifts a shared base offset instead of
// every local clock (a uniform delta cannot reorder the pool), and Makespan
// is a cached running maximum (local clocks never move backward).
#ifndef MKS_SIM_CPU_SCHED_H_
#define MKS_SIM_CPU_SCHED_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/metrics.h"
#include "src/sim/prof.h"
#include "src/sim/trace.h"
#include "src/sync/spinlock.h"

namespace mks {

class CpuInterleave {
 public:
  CpuInterleave(uint16_t cpu_count, Metrics* metrics) : metrics_(metrics) {
    if (cpu_count == 0) {
      cpu_count = 1;
    }
    cpus_.reserve(cpu_count);
    for (uint16_t k = 0; k < cpu_count; ++k) {
      const std::string prefix = "smp.cpu" + std::to_string(k);
      cpus_.push_back(PerCpu{0, metrics->Intern(prefix + ".busy_cycles"),
                             metrics->Intern(prefix + ".quanta")});
    }
    leaf_base_ = std::bit_ceil(static_cast<size_t>(cpu_count));
    tree_.assign(2 * leaf_base_, kNoLeaf);
    RebuildTree();
  }

  uint16_t count() const { return static_cast<uint16_t>(cpus_.size()); }

  // Attaches the cycle-accounting profiler.  Local clocks move only through
  // Accrue/AdvanceAll/AlignAll, so hooking these three keeps the profiler's
  // accrued side exactly equal to each CPU's local clock advance.
  void set_prof(Prof* prof) { prof_ = prof; }

  // The CPU whose local clock is furthest behind runs the next quantum
  // (ties: lowest index).  O(1): the tournament root.
  uint16_t NextCpu() const { return tree_[1]; }

  // Least-behind CPU among those whose bit is set in `mask` (affinity
  // dispatch).  The mask must intersect the pool; bit k = CPU k.  Iterates
  // only the set bits, ascending, so ties resolve to the lowest index.
  uint16_t NextCpuIn(uint32_t mask) const {
    uint32_t candidates = mask & PoolMask();
    if (candidates == 0) {
      std::fprintf(stderr,
                   "CpuInterleave::NextCpuIn: affinity mask %#x selects no CPU "
                   "in a pool of %u\n",
                   mask, static_cast<unsigned>(count()));
      std::abort();
    }
    uint16_t best = static_cast<uint16_t>(std::countr_zero(candidates));
    candidates &= candidates - 1;
    while (candidates != 0) {
      const uint16_t k = static_cast<uint16_t>(std::countr_zero(candidates));
      candidates &= candidates - 1;
      if (cpus_[k].local < cpus_[best].local) {
        best = k;
      }
    }
    return best;
  }

  // Charges one quantum's worth of busy cycles to `cpu`'s local clock.
  void Accrue(uint16_t cpu, Cycles delta) {
    PerCpu& c = cpus_[cpu];
    c.local += delta;
    if (c.local > max_local_) {
      max_local_ = c.local;
    }
    RepairFromLeaf(cpu);
    metrics_->Inc(c.id_busy_cycles, delta);
    metrics_->Inc(c.id_quanta);
    if (prof_ != nullptr) {
      prof_->NoteAccrue(cpu, delta);
    }
  }

  // Idles the whole pool forward together (every process blocked on a device
  // completion: wall time passes on all CPUs, busy time on none).  A uniform
  // shift preserves the pool order, so only the shared base moves.
  void AdvanceAll(Cycles delta) {
    base_ += delta;
    if (prof_ != nullptr) {
      prof_->NoteAdvanceAll(delta);
    }
  }

  // Aligns every local clock to the furthest-ahead one: a synchronization
  // barrier (e.g. the start of a measured region — earlier CPUs idle until
  // the last one arrives).  Busy-cycle metrics are not affected.
  void AlignAll() {
    for (uint16_t k = 0; k < count(); ++k) {
      PerCpu& c = cpus_[k];
      if (prof_ != nullptr && max_local_ > c.local) {
        prof_->NoteAlign(k, max_local_ - c.local);
      }
      c.local = max_local_;
    }
    RebuildTree();
  }

  Cycles local_now(uint16_t cpu) const { return cpus_[cpu].local + base_; }

  // Simulated-parallel completion time: the furthest-ahead local clock.
  Cycles Makespan() const { return max_local_ + base_; }

 private:
  static constexpr uint16_t kNoLeaf = UINT16_MAX;

  struct PerCpu {
    Cycles local = 0;  // excludes base_; comparisons never need the offset
    MetricId id_busy_cycles = 0;
    MetricId id_quanta = 0;
  };

  uint32_t PoolMask() const {
    return count() >= 32 ? ~0u : (1u << count()) - 1u;
  }

  // Winner of two leaves: the smaller local clock, the left (lower) index on
  // ties.  `a` is always the left child, so `<=` encodes the tie-break.
  uint16_t Winner(uint16_t a, uint16_t b) const {
    if (b == kNoLeaf) {
      return a;
    }
    if (a == kNoLeaf) {
      return b;
    }
    return cpus_[a].local <= cpus_[b].local ? a : b;
  }

  void RepairFromLeaf(uint16_t cpu) {
    for (size_t i = (leaf_base_ + cpu) >> 1; i >= 1; i >>= 1) {
      tree_[i] = Winner(tree_[2 * i], tree_[2 * i + 1]);
    }
  }

  void RebuildTree() {
    for (size_t k = 0; k < leaf_base_; ++k) {
      tree_[leaf_base_ + k] = k < cpus_.size() ? static_cast<uint16_t>(k) : kNoLeaf;
    }
    for (size_t i = leaf_base_ - 1; i >= 1; --i) {
      tree_[i] = Winner(tree_[2 * i], tree_[2 * i + 1]);
    }
  }

  std::vector<PerCpu> cpus_;
  Metrics* metrics_;
  Prof* prof_ = nullptr;
  Cycles base_ = 0;       // shared idle offset added to every local clock
  Cycles max_local_ = 0;  // running maximum of the stored locals
  size_t leaf_base_ = 1;  // leaves live at tree_[leaf_base_ + k]
  std::vector<uint16_t> tree_;
};

// Sharded per-CPU run queues with deterministic work stealing.
//
// Each CPU owns one FIFO of dispatchable item ids, guarded by its own
// SimSpinLock, plus a "cache line" owner: the CPU that last touched the
// queue's shared state.  Every queue operation from a CPU other than the
// line owner pays `connect_cost` cycles — the connect-signal / cache-line
// transfer of a real interconnect — so cross-CPU scheduling traffic is
// charged work, while a CPU working its own queue runs transfer-free.  With
// `connect_cost` 0 the queues carry no charges at all (lock spin excepted,
// and that is structurally zero when queue touches never overlap in virtual
// time), so the sharded layout can be ablated against the charged model.
//
// Stealing is deterministic: when a CPU's own queue is empty it scans
// victims in fixed ascending order (cpu+1, cpu+2, ... mod count) and takes
// the first affinity-compatible item from the front of the first non-empty
// queue.  A steal pays the victim queue's lock plus one connect transfer,
// and is recorded as a `runq.steal` trace span (proc = stolen id,
// arg = victim CPU).
//
// Items carry an affinity mask (bit k = may run on CPU k; 0 = any).  Enqueue
// places an item on the shortest allowed queue, preferring the hint CPU on
// ties (locality: a quantum-expired process re-queues where it just ran), so
// an item's home queue always admits it — only steals need a mask check.
class RunQueueSet {
 public:
  static constexpr uint16_t kNoCpu = UINT16_MAX;

  RunQueueSet(uint16_t cpu_count, bool steal, Cycles connect_cost, CostModel* cost,
              Metrics* metrics, Tracer* trace,
              const LockPolicyConfig& lock_policy = LockPolicyConfig{},
              Prof* prof = nullptr)
      : steal_(steal),
        prof_(prof),
        connect_cost_(connect_cost),
        cost_(cost),
        metrics_(metrics),
        trace_(trace),
        ev_steal_(trace->InternEvent("runq.steal")),
        ev_lock_spin_(trace->InternEvent("runq.lock_spin")),
        id_steals_(metrics->Intern("runq.steals")),
        id_steal_cycles_(metrics->Intern("runq.steal_cycles")),
        id_transfers_(metrics->Intern("runq.transfers")),
        id_transfer_cycles_(metrics->Intern("runq.transfer_cycles")),
        id_lock_spins_(metrics->Intern("runq.lock_spins")),
        id_lock_spin_cycles_(metrics->Intern("runq.lock_spin_cycles")) {
    if (cpu_count == 0) {
      cpu_count = 1;
    }
    shards_.reserve(cpu_count);
    for (uint16_t k = 0; k < cpu_count; ++k) {
      const std::string prefix = "runq.cpu" + std::to_string(k);
      Shard s;
      s.id_pushes = metrics->Intern(prefix + ".pushes");
      s.id_pops = metrics->Intern(prefix + ".pops");
      s.id_lock_spin_cycles = metrics->Intern(prefix + ".lock_spin_cycles");
      s.hist_depth = metrics->InternHistogram(prefix + ".depth");
      s.lock.Configure(lock_policy);
      shards_.push_back(std::move(s));
    }
  }

  // Shard-lock counters summed across the set, for policy-sweep reporting.
  struct LockTotals {
    uint64_t acquisitions = 0;
    uint64_t contended = 0;
    Cycles spin_cycles = 0;
    uint64_t handoffs = 0;
    Cycles handoff_cycles = 0;
    uint64_t max_queue_depth = 0;
  };
  LockTotals AggregateLockTotals() const {
    LockTotals t;
    for (const Shard& s : shards_) {
      t.acquisitions += s.lock.acquisitions();
      t.contended += s.lock.contended();
      t.spin_cycles += s.lock.total_spin();
      t.handoffs += s.lock.handoffs();
      t.handoff_cycles += s.lock.handoff_cycles();
      t.max_queue_depth = std::max(t.max_queue_depth, s.lock.max_queue_depth());
    }
    return t;
  }

  struct Popped {
    bool ok = false;
    bool stolen = false;
    uint32_t id = 0;
    uint32_t mask = 0;
    uint16_t victim = kNoCpu;
  };

  uint16_t count() const { return static_cast<uint16_t>(shards_.size()); }
  bool steal_enabled() const { return steal_; }
  size_t depth(uint16_t cpu) const { return shards_[cpu].items.size(); }
  uint16_t line_owner(uint16_t cpu) const { return shards_[cpu].line_owner; }
  const SimSpinLock& shard_lock(uint16_t cpu) const { return shards_[cpu].lock; }

  bool AnyQueued() const {
    for (const Shard& s : shards_) {
      if (!s.items.empty()) {
        return true;
      }
    }
    return false;
  }

  size_t TotalQueued() const {
    size_t n = 0;
    for (const Shard& s : shards_) {
      n += s.items.size();
    }
    return n;
  }

  // True when CPU `cpu` may run an item with `mask` (0 = any CPU).
  bool Allowed(uint32_t mask, uint16_t cpu) const {
    return mask == 0 || ((mask >> cpu) & 1u) != 0;
  }

  // Places `id` on the shortest allowed queue (ties: `hint_cpu` if allowed
  // and tied, else lowest index).  `from_cpu` is the enqueuing CPU — a push
  // onto a queue last touched by another CPU pays one connect transfer.
  void Enqueue(uint32_t id, uint32_t mask, uint16_t from_cpu, uint16_t hint_cpu, Cycles lnow) {
    uint16_t home = kNoCpu;
    for (uint16_t k = 0; k < count(); ++k) {
      if (!Allowed(mask, k)) {
        continue;
      }
      if (home == kNoCpu || shards_[k].items.size() < shards_[home].items.size()) {
        home = k;
      }
    }
    if (home == kNoCpu) {
      home = 0;  // unsatisfiable mask; callers validate, this is a backstop
    }
    if (hint_cpu < count() && Allowed(mask, hint_cpu) &&
        shards_[hint_cpu].items.size() == shards_[home].items.size()) {
      home = hint_cpu;
    }
    Shard& s = shards_[home];
    const Cycles held = TouchShard(s, from_cpu, lnow);
    s.items.push_back(Item{id, mask});
    metrics_->Inc(s.id_pushes);
    metrics_->Observe(s.hist_depth, s.items.size());
    s.lock.Release(lnow + held);
  }

  // Takes the front of `cpu`'s own queue; when empty and stealing is on,
  // scans victims in fixed ascending order for the first item `cpu` may run.
  Popped Dequeue(uint16_t cpu, Cycles lnow) {
    Popped out;
    Shard& own = shards_[cpu];
    if (!own.items.empty()) {
      const Cycles held = TouchShard(own, cpu, lnow);
      out.ok = true;
      out.id = own.items.front().id;
      out.mask = own.items.front().mask;
      out.victim = cpu;
      own.items.pop_front();
      metrics_->Inc(own.id_pops);
      own.lock.Release(lnow + held);
      return out;
    }
    if (!steal_) {
      return out;
    }
    Prof::Scope steal_scope(prof_, ProfDomain::kSteal);
    for (uint16_t d = 1; d < count(); ++d) {
      const uint16_t v = static_cast<uint16_t>((cpu + d) % count());
      Shard& victim = shards_[v];
      if (victim.items.empty()) {
        continue;
      }
      const Cycles steal_begin = trace_->Begin();
      Cycles held = TouchShard(victim, cpu, lnow);
      bool found = false;
      for (auto it = victim.items.begin(); it != victim.items.end(); ++it) {
        if (!Allowed(it->mask, cpu)) {
          continue;
        }
        out.ok = true;
        out.stolen = true;
        out.id = it->id;
        out.mask = it->mask;
        out.victim = v;
        victim.items.erase(it);
        found = true;
        break;
      }
      if (found) {
        // The stolen item's state migrates to the thief: one more transfer
        // on top of the queue-line bounce TouchShard already charged.
        if (connect_cost_ > 0) {
          cost_->Charge(CodeStyle::kOptimized, connect_cost_);
          held += connect_cost_;
        }
        metrics_->Inc(id_steals_);
        metrics_->Inc(id_steal_cycles_, held);
        metrics_->Inc(victim.id_pops);
        victim.lock.Release(lnow + held);
        trace_->CloseSpan(steal_begin, ev_steal_, out.id, v);
        return out;
      }
      victim.lock.Release(lnow + held);  // nothing affinity-compatible here
    }
    return out;
  }

  // Returns an item to the front of `cpu`'s own queue (dispatch could not
  // complete — vp pool exhausted).  Pure bookkeeping: the undo path charges
  // nothing, mirroring how the legacy scheduler's exhaustion break is free.
  void PushFront(uint32_t id, uint32_t mask, uint16_t cpu) {
    shards_[cpu].items.push_front(Item{id, mask});
  }

  // Drops a queued item (process destruction).  Teardown path: uncharged.
  bool Remove(uint32_t id) {
    for (Shard& s : shards_) {
      for (auto it = s.items.begin(); it != s.items.end(); ++it) {
        if (it->id == id) {
          s.items.erase(it);
          return true;
        }
      }
    }
    return false;
  }

 private:
  struct Item {
    uint32_t id = 0;
    uint32_t mask = 0;
  };
  struct Shard {
    std::deque<Item> items;
    SimSpinLock lock;
    uint16_t line_owner = kNoCpu;
    MetricId id_pushes = 0;
    MetricId id_pops = 0;
    MetricId id_lock_spin_cycles = 0;
    HistId hist_depth = 0;
  };

  // Acquires a shard's lock from `from_cpu` at local time `lnow`, charging
  // spin and (when the queue's line lives on another CPU) one connect
  // transfer.  Returns the cycles charged so far under the lock; the caller
  // must Release at `lnow + held`.
  Cycles TouchShard(Shard& s, uint16_t from_cpu, Cycles lnow) {
    const Cycles spin_begin = trace_->Begin();
    const Cycles spin = s.lock.Acquire(lnow, from_cpu);
    Cycles held = spin;
    if (spin > 0) {
      // For attribution the wait splits into the gap to the holder's release
      // (lock-spin) and the grant's coherence traffic (lock-handoff); the two
      // optimized charges advance the clock exactly as the single one did.
      const Cycles handoff = std::min(s.lock.last_acquire_handoff(), spin);
      if (spin > handoff) {
        Prof::Scope wait(prof_, ProfDomain::kLockSpin);
        cost_->Charge(CodeStyle::kOptimized, spin - handoff);
      }
      if (handoff > 0) {
        Prof::Scope grant(prof_, ProfDomain::kLockHandoff);
        cost_->Charge(CodeStyle::kOptimized, handoff);
      }
      metrics_->Inc(id_lock_spins_);
      metrics_->Inc(id_lock_spin_cycles_, spin);
      metrics_->Inc(s.id_lock_spin_cycles, spin);
      trace_->CloseSpan(spin_begin, ev_lock_spin_, from_cpu);
    }
    if (connect_cost_ > 0 && s.line_owner != from_cpu && s.line_owner != kNoCpu) {
      Prof::Scope bounce(prof_, ProfDomain::kLockHandoff);
      cost_->Charge(CodeStyle::kOptimized, connect_cost_);
      held += connect_cost_;
      metrics_->Inc(id_transfers_);
      metrics_->Inc(id_transfer_cycles_, connect_cost_);
    }
    s.line_owner = from_cpu;
    return held;
  }

  bool steal_;
  Prof* prof_;
  Cycles connect_cost_;
  CostModel* cost_;
  Metrics* metrics_;
  Tracer* trace_;
  TraceEventId ev_steal_;
  TraceEventId ev_lock_spin_;
  MetricId id_steals_;
  MetricId id_steal_cycles_;
  MetricId id_transfers_;
  MetricId id_transfer_cycles_;
  MetricId id_lock_spins_;
  MetricId id_lock_spin_cycles_;
  std::vector<Shard> shards_;
};

}  // namespace mks

#endif  // MKS_SIM_CPU_SCHED_H_
