// Per-CPU hierarchical cycle-accounting profiler with a stall watchdog.
//
// The simulator answers the paper's central question — *where does the
// kernel spend its mechanism?* — exactly, not statistically: every cycle is
// a deterministic Charge on the shared Clock, so attribution can be a
// bookkeeping overlay with zero sampling error.  The profiler keeps one
// domain tree per simulated CPU; a RAII `Prof::Scope(domain)` pushes a
// domain and the virtual-clock delta since the previous push/pop is charged
// to whatever domain was innermost when the cycles were spent.
//
// The hard invariant (asserted in tests/prof_test.cc): per CPU,
//
//     attributed cycles  ==  that CPU's local clock advance
//
// Local clocks move in exactly three ways — CpuInterleave::Accrue (a
// dispatch window's global-clock delta is charged to one CPU),
// AdvanceAll (pool-wide idle to the next event), and AlignAll (per-CPU
// catch-up gaps to the makespan).  The profiler hooks all three:
//
//  * A `Prof::Window` brackets each accrual window (opened where the kernel
//    calls KernelContext::AnchorWindow, closed after the matching Accrue).
//    While a window is open, scope pushes/pops attribute every global-clock
//    delta to the innermost domain; with no window open, scopes are inert,
//    so construction-time work — charged to the clock but never accrued to
//    any CPU — never pollutes the per-CPU trees.
//  * AdvanceAll and AlignAll deltas are charged to the `idle` domain on
//    both sides of the ledger.
//
// With `ProfConfig::enabled == false` every entry point early-returns on one
// branch and no state is touched — the tracer's byte-identical-when-off
// discipline.
//
// The stall watchdog is independent of attribution (it works with the
// profiler disabled, so benches arm it without perturbing output): the
// scheduler reports a monotonic progress stamp (quanta run + device
// completions + wakeups) once per dispatch round, and when the stamp freezes
// for `stall_rounds` consecutive rounds the caller is told to dump its
// flight recorder and abort.  The stamp — not the raw clock — is the frozen
// quantity in every reachable hang: per-round bookkeeping (vp state stores)
// always advances the clock a few cycles, so a component that claims work
// while doing none livelocks with the clock creeping and only the progress
// stamp pinned.  The watchdog turns that silent burn of the pass budget into
// an actionable dump at the first `stall_rounds` barren rounds.
#ifndef MKS_SIM_PROF_H_
#define MKS_SIM_PROF_H_

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/clock.h"

namespace mks {

// Attribution domains.  KST sections ride the directory domains: the known
// segment table is the per-process face of the naming surface, and P16-style
// analysis wants "naming, read side" as one number.
enum class ProfDomain : uint8_t {
  kDispatch = 0,    // scheduler passes, vp switches, queue surgery
  kUprocQuantum,    // user-process op execution inside a quantum
  kFaultService,    // segment/page/quota fault handling
  kPagingIo,        // disk reads/writes, daemon steps, pool replenish
  kDirectoryRead,   // classified read sections (dir.* and ksm.*)
  kDirectoryWrite,  // classified write sections (dir.* and ksm.*)
  kGate,            // ring-crossing entries and user-ring references
  kLockSpin,        // waiting for a holder to release (the gap)
  kLockHandoff,     // coherence traffic of a contended grant
  kSteal,           // cross-CPU work-stealing scans and migrations
  kSessionSetup,    // answering-service login/logout transactions
  kIdle,            // local clock advanced with no work on this CPU
};

inline constexpr size_t kProfDomainCount = 12;

inline const char* ProfDomainName(ProfDomain d) {
  static constexpr const char* kNames[kProfDomainCount] = {
      "dispatch",    "uproc-quantum",   "fault-service", "paging-io",
      "directory-read", "directory-write", "gate",       "lock-spin",
      "lock-handoff", "steal",          "session-setup", "idle",
  };
  return kNames[static_cast<size_t>(d)];
}

struct ProfConfig {
  bool enabled = false;
  // Consecutive dispatch rounds tolerated with a frozen progress stamp
  // before the stall watchdog fires.  0 disables the watchdog.  Independent
  // of `enabled`: arming only the watchdog never changes a run's output.
  uint64_t stall_rounds = 0;
};

class Prof {
 public:
  explicit Prof(const Clock* clock) : clock_(clock) {}
  Prof(const Prof&) = delete;
  Prof& operator=(const Prof&) = delete;

  // Call once, before the kernel starts charging; sizes one lane per CPU.
  void Enable(uint16_t cpu_count, const ProfConfig& config) {
    enabled_ = config.enabled;
    stall_rounds_ = config.stall_rounds;
    lanes_.clear();
    if (enabled_) {
      lanes_.resize(cpu_count == 0 ? 1 : cpu_count);
      for (Lane& lane : lanes_) {
        lane.nodes.push_back(Node{});  // synthetic per-CPU root, index 0
      }
    }
  }

  bool enabled() const { return enabled_; }
  uint16_t cpu_count() const { return static_cast<uint16_t>(lanes_.size()); }

  // ---- accrual windows -----------------------------------------------

  // Brackets one accrual window on `cpu`: open where the dispatcher anchors
  // the window (KernelContext::AnchorWindow), destroy after the matching
  // CpuInterleave::Accrue.  Everything charged to the global clock in
  // between is attributed — to `root` by default, to the innermost Scope
  // when instrumented code pushed one.
  class Window {
   public:
    Window(Prof* prof, uint16_t cpu, ProfDomain root) : prof_(prof) {
      if (prof_ == nullptr || !prof_->enabled_) {
        prof_ = nullptr;
        return;
      }
      prof_->OpenWindow(cpu, root);
    }
    // Idempotent early close, for windows that end mid-scope.
    void Close() {
      if (prof_ != nullptr) {
        prof_->CloseWindow();
        prof_ = nullptr;
      }
    }
    ~Window() { Close(); }
    Window(const Window&) = delete;
    Window& operator=(const Window&) = delete;

   private:
    Prof* prof_;
  };

  // RAII domain push.  Inert (one branch) when profiling is off, when no
  // window is open, or when `prof` is null (sim-layer components that may
  // run without a kernel pass nullptr).
  class Scope {
   public:
    Scope(Prof* prof, ProfDomain domain) : prof_(prof) {
      if (prof_ == nullptr || !prof_->InWindow()) {
        prof_ = nullptr;
        return;
      }
      prof_->PushScope(domain);
    }
    ~Scope() {
      if (prof_ != nullptr) {
        prof_->PopScope();
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Prof* prof_;
  };

  bool InWindow() const { return enabled_ && !stack_.empty(); }

  // ---- CpuInterleave hooks -------------------------------------------

  // A dispatch window's delta was accrued to `cpu`'s local clock.
  void NoteAccrue(uint16_t cpu, Cycles delta) {
    if (!enabled_ || cpu >= lanes_.size()) {
      return;
    }
    lanes_[cpu].accrued += delta;
  }

  // Pool-wide idle: every local clock advanced by `delta`.
  void NoteAdvanceAll(Cycles delta) {
    if (!enabled_) {
      return;
    }
    for (uint16_t cpu = 0; cpu < lanes_.size(); ++cpu) {
      ChargeIdle(cpu, delta);
    }
  }

  // AlignAll catch-up: `cpu` jumped forward by `delta` to the makespan.
  void NoteAlign(uint16_t cpu, Cycles delta) {
    if (!enabled_ || cpu >= lanes_.size()) {
      return;
    }
    ChargeIdle(cpu, delta);
  }

  // ---- stall watchdog ------------------------------------------------

  // The scheduler calls this once per dispatch round with its monotonic
  // progress stamp (quanta run + completions + wakeups).  Returns true when
  // the stamp has been frozen for `stall_rounds` consecutive rounds — the
  // caller should dump its flight recorder and abort.  Works with the
  // profiler disabled.
  bool NoteDispatchRound(uint64_t stamp) {
    if (stall_rounds_ == 0) {
      return false;
    }
    if (stamp != last_round_stamp_) {
      last_round_stamp_ = stamp;
      stalled_rounds_ = 0;
      return false;
    }
    return ++stalled_rounds_ >= stall_rounds_;
  }

  uint64_t stall_rounds() const { return stall_rounds_; }
  uint64_t stalled_rounds() const { return stalled_rounds_; }

  // ---- readback ------------------------------------------------------

  // The two sides of the per-CPU ledger; equal whenever no window is open.
  Cycles attributed(uint16_t cpu) const {
    return cpu < lanes_.size() ? lanes_[cpu].attributed : 0;
  }
  Cycles accrued(uint16_t cpu) const {
    return cpu < lanes_.size() ? lanes_[cpu].accrued : 0;
  }

  // Self-cycles summed per domain across all CPUs.
  std::array<Cycles, kProfDomainCount> DomainTotals() const;

  // Collapsed-stack flamegraph text: one line per tree node with nonzero
  // self time, "cpu0;dispatch;lock-spin 1234\n" (flamegraph.pl format).
  std::string CollapsedStacks() const;

  // Human-readable per-CPU domain trees (the stall dump's first section).
  void DumpTree(FILE* out) const;

 private:
  static constexpr uint32_t kNoNode = 0xffffffffu;

  struct Node {
    ProfDomain domain = ProfDomain::kIdle;  // unused on the synthetic root
    uint32_t parent = kNoNode;
    uint32_t first_child = kNoNode;
    uint32_t next_sibling = kNoNode;
    Cycles self = 0;
  };

  struct Lane {
    std::vector<Node> nodes;  // nodes[0] is the synthetic root
    Cycles attributed = 0;
    Cycles accrued = 0;
    uint32_t idle = kNoNode;  // cached root-level idle node
  };

  // Attributes the global-clock delta since the last attribution event to
  // the innermost open domain.  Only called with a window open.
  void Attribute() {
    const Cycles now = clock_->now();
    if (now > mark_) {
      Lane& lane = lanes_[lane_cpu_];
      lane.nodes[stack_.back()].self += now - mark_;
      lane.attributed += now - mark_;
    }
    mark_ = now;
  }

  uint32_t FindOrAddChild(Lane& lane, uint32_t parent, ProfDomain domain) {
    for (uint32_t n = lane.nodes[parent].first_child; n != kNoNode;
         n = lane.nodes[n].next_sibling) {
      if (lane.nodes[n].domain == domain) {
        return n;
      }
    }
    const uint32_t idx = static_cast<uint32_t>(lane.nodes.size());
    lane.nodes.push_back(Node{domain, parent, kNoNode, kNoNode, 0});
    // Append at the tail so sibling order is first-seen — deterministic.
    uint32_t* link = &lane.nodes[parent].first_child;
    while (*link != kNoNode) {
      link = &lane.nodes[*link].next_sibling;
    }
    *link = idx;
    return idx;
  }

  void OpenWindow(uint16_t cpu, ProfDomain root) {
    if (cpu >= lanes_.size()) {
      cpu = 0;
    }
    // Windows never nest: each accrual window closes before the next opens
    // (the host interleaving is serialized).
    stack_.clear();
    lane_cpu_ = cpu;
    stack_.push_back(FindOrAddChild(lanes_[cpu], 0, root));
    mark_ = clock_->now();
  }

  void CloseWindow() {
    Attribute();
    stack_.clear();
  }

  void PushScope(ProfDomain domain) {
    Attribute();
    const uint32_t top = stack_.back();
    Lane& lane = lanes_[lane_cpu_];
    // Same-domain self-nesting collapses onto the current node, so
    // recursive sections (e.g. nested SharedSections) don't grow chains.
    stack_.push_back(lane.nodes[top].domain == domain && top != 0
                         ? top
                         : FindOrAddChild(lane, top, domain));
  }

  void PopScope() {
    Attribute();
    stack_.pop_back();
  }

  void ChargeIdle(uint16_t cpu, Cycles delta) {
    Lane& lane = lanes_[cpu];
    if (lane.idle == kNoNode) {
      lane.idle = FindOrAddChild(lane, 0, ProfDomain::kIdle);
    }
    lane.nodes[lane.idle].self += delta;
    lane.attributed += delta;
    lane.accrued += delta;
  }

  const Clock* clock_;
  bool enabled_ = false;
  std::vector<Lane> lanes_;

  // Current window (at most one open at a time; host is single-threaded).
  uint16_t lane_cpu_ = 0;
  Cycles mark_ = 0;
  std::vector<uint32_t> stack_;  // node indices into lanes_[lane_cpu_]

  // Watchdog.
  uint64_t stall_rounds_ = 0;
  uint64_t stalled_rounds_ = 0;
  uint64_t last_round_stamp_ = ~uint64_t{0};
};

}  // namespace mks

#endif  // MKS_SIM_PROF_H_
