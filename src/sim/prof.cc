#include "src/sim/prof.h"

#include <algorithm>
#include <string>

namespace mks {

std::array<Cycles, kProfDomainCount> Prof::DomainTotals() const {
  std::array<Cycles, kProfDomainCount> totals{};
  for (const Lane& lane : lanes_) {
    for (const Node& node : lane.nodes) {
      if (node.parent == kNoNode) {
        continue;  // synthetic root
      }
      totals[static_cast<size_t>(node.domain)] += node.self;
    }
  }
  return totals;
}

namespace {

// Depth-first walk emitting one collapsed-stack line per node with self
// time.  The stack prefix is rebuilt on the way down; sibling order is
// first-seen (deterministic), so two identical runs export identical text.
void FoldNode(const std::vector<std::string>& prefix, std::string* out) {
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (i != 0) {
      out->push_back(';');
    }
    out->append(prefix[i]);
  }
}

}  // namespace

std::string Prof::CollapsedStacks() const {
  std::string out;
  std::vector<std::string> prefix;
  for (uint16_t cpu = 0; cpu < lanes_.size(); ++cpu) {
    const Lane& lane = lanes_[cpu];
    prefix.clear();
    prefix.push_back("cpu" + std::to_string(cpu));
    // Iterative DFS over (node, depth); children pushed in reverse sibling
    // order so they pop first-seen-first.
    std::vector<std::pair<uint32_t, size_t>> work;
    std::vector<uint32_t> kids;
    for (uint32_t n = lane.nodes[0].first_child; n != kNoNode;
         n = lane.nodes[n].next_sibling) {
      kids.push_back(n);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      work.emplace_back(*it, 1);
    }
    while (!work.empty()) {
      const auto [idx, depth] = work.back();
      work.pop_back();
      prefix.resize(depth);
      prefix.push_back(ProfDomainName(lane.nodes[idx].domain));
      if (lane.nodes[idx].self > 0) {
        FoldNode(prefix, &out);
        out.push_back(' ');
        out.append(std::to_string(lane.nodes[idx].self));
        out.push_back('\n');
      }
      kids.clear();
      for (uint32_t n = lane.nodes[idx].first_child; n != kNoNode;
           n = lane.nodes[n].next_sibling) {
        kids.push_back(n);
      }
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        work.emplace_back(*it, depth + 1);
      }
    }
  }
  return out;
}

void Prof::DumpTree(FILE* out) const {
  if (!enabled_) {
    std::fprintf(out,
                 "  profiler disabled (set KernelConfig::profile.enabled "
                 "for domain trees)\n");
    return;
  }
  for (uint16_t cpu = 0; cpu < lanes_.size(); ++cpu) {
    const Lane& lane = lanes_[cpu];
    std::fprintf(out, "  cpu %u: attributed %llu / accrued %llu cycles\n", cpu,
                 static_cast<unsigned long long>(lane.attributed),
                 static_cast<unsigned long long>(lane.accrued));
    // Recursive print via explicit stack, preserving first-seen order.
    std::vector<std::pair<uint32_t, int>> work;
    std::vector<uint32_t> kids;
    for (uint32_t n = lane.nodes[0].first_child; n != kNoNode;
         n = lane.nodes[n].next_sibling) {
      kids.push_back(n);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      work.emplace_back(*it, 1);
    }
    while (!work.empty()) {
      const auto [idx, depth] = work.back();
      work.pop_back();
      const Node& node = lane.nodes[idx];
      const double share =
          lane.attributed > 0
              ? 100.0 * static_cast<double>(node.self) /
                    static_cast<double>(lane.attributed)
              : 0.0;
      std::fprintf(out, "  %*s%-16s %12llu  (%5.1f%% self)\n", depth * 2, "",
                   ProfDomainName(node.domain),
                   static_cast<unsigned long long>(node.self), share);
      kids.clear();
      for (uint32_t n = node.first_child; n != kNoNode;
           n = lane.nodes[n].next_sibling) {
        kids.push_back(n);
      }
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        work.emplace_back(*it, depth + 1);
      }
    }
  }
}

}  // namespace mks
