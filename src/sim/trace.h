// Virtual-time kernel tracer: per-CPU bounded event rings with a scoped-span
// API, plus a Chrome trace-event exporter.
//
// Every record is stamped with the *global* virtual clock — the one total
// order all simulated work already shares — rather than the per-CPU local
// clocks of CpuInterleave.  Two consequences the design leans on:
//
//  * Reproducibility.  The global clock is advanced only by deterministic
//    cycle charges, so two runs of the same workload produce byte-identical
//    traces (tests/trace_test.cc asserts exactly that at 4 CPUs).
//  * Honest lanes.  In the Chrome view each simulated CPU is a thread lane;
//    with global stamps, a lane shows activity only during that CPU's quanta,
//    so the interleaving (and any lock-spin serialization) is visible as gaps.
//
// Tracing never charges cycles and never touches the Metrics counter store:
// event names are interned in the Tracer's own table, and latency histograms
// live in Metrics' separate histogram store.  With the knob off, every
// instrumented path is byte-identical to an untraced build — all record
// entry points early-return on a single branch.
//
// Ring semantics: each CPU has a bounded circular buffer.  When full, the
// oldest record is overwritten (drop-oldest) and a per-CPU dropped counter
// advances; Snapshot() returns the surviving records oldest-first.
#ifndef MKS_SIM_TRACE_H_
#define MKS_SIM_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/metrics.h"

namespace mks {

// Stable handle for one event name; valid for the lifetime of the Tracer.
using TraceEventId = uint32_t;

struct TraceConfig {
  bool enabled = false;
  // Records retained per CPU before drop-oldest kicks in.
  uint32_t ring_capacity = 4096;
};

// One trace record.  dur == 0 marks an instant event; dur > 0 a span whose
// start was `ts` and whose end was `ts + dur` (both on the global clock).
struct TraceRecord {
  Cycles ts = 0;
  Cycles dur = 0;
  TraceEventId event = 0;
  uint32_t proc = 0;  // vproc/uproc/pack id — whatever the site tracks
  uint32_t arg = 0;   // event-specific detail (gate op, broadcast kind, ...)
  uint16_t cpu = 0;
};

class Tracer {
 public:
  Tracer(const Clock* clock, Metrics* metrics)
      : clock_(clock), metrics_(metrics) {}

  // Turns tracing on for `cpu_count` lanes.  Call once, before any manager
  // interns events; managers intern unconditionally (interning is cheap and
  // keeps their construction branch-free), but records are only kept while
  // enabled.
  void Enable(uint16_t cpu_count, const TraceConfig& config) {
    enabled_ = config.enabled;
    capacity_ = config.ring_capacity == 0 ? 1 : config.ring_capacity;
    rings_.assign(cpu_count == 0 ? 1 : cpu_count, Ring{});
    if (enabled_) {
      // Preallocate every ring so Push is a store + wrap-increment, never a
      // push_back; record j (ever pushed) lives at slot j % capacity.
      for (Ring& r : rings_) {
        r.slots.assign(capacity_, TraceRecord{});
      }
    }
    RefreshLane();
  }

  bool enabled() const { return enabled_; }
  const Clock* clock() const { return clock_; }

  // Registers an event name; construction-time only (allocates on first use).
  TraceEventId InternEvent(std::string_view name) {
    for (TraceEventId i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) {
        return i;
      }
    }
    names_.emplace_back(name);
    return static_cast<TraceEventId>(names_.size() - 1);
  }

  std::string_view EventName(TraceEventId id) const { return names_[id]; }

  // The scheduler reports which simulated CPU subsequent records belong to
  // (the sim layer cannot see KernelContext::current_cpu — layering).  The
  // lane pointer is resolved here, once per quantum, not per record.
  void SetCpu(uint16_t cpu) {
    cpu_ = cpu;
    RefreshLane();
  }
  uint16_t cpu() const { return cpu_; }

  // Point event at the current virtual time on the current CPU.
  void Instant(TraceEventId event, uint32_t proc = 0, uint32_t arg = 0) {
    if (!enabled_) {
      return;
    }
    Push(TraceRecord{clock_->now(), 0, event, proc, arg, cpu_});
  }

  // Closes a span opened at `begin` (callers capture clock->now() — or
  // Tracer::Begin() — before the work).  When `hist` is given, the duration
  // also lands in that Metrics histogram, so percentile readback works even
  // after the ring has wrapped.
  void CloseSpan(Cycles begin, TraceEventId event, uint32_t proc = 0,
                 uint32_t arg = 0, HistId hist = kNoHist) {
    if (!enabled_) {
      return;
    }
    const Cycles end = clock_->now();
    const Cycles dur = end > begin ? end - begin : 0;
    if (hist != kNoHist) {
      metrics_->Observe(hist, dur);
    }
    Push(TraceRecord{begin, dur, event, proc, arg, cpu_});
  }

  // Span start stamp; 0 when disabled so dead stamps cost one branch.
  Cycles Begin() const { return enabled_ ? clock_->now() : 0; }

  // RAII span: records on destruction with the duration since construction.
  class Span {
   public:
    Span(Tracer* tracer, TraceEventId event, uint32_t proc = 0,
         uint32_t arg = 0, HistId hist = kNoHist)
        : tracer_(tracer), begin_(tracer->Begin()), event_(event), proc_(proc),
          arg_(arg), hist_(hist) {}
    ~Span() { tracer_->CloseSpan(begin_, event_, proc_, arg_, hist_); }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    Tracer* tracer_;
    Cycles begin_;
    TraceEventId event_;
    uint32_t proc_;
    uint32_t arg_;
    HistId hist_;
  };

  uint16_t cpu_count() const { return static_cast<uint16_t>(rings_.size()); }

  // Records surviving in `cpu`'s ring, oldest first.
  std::vector<TraceRecord> Snapshot(uint16_t cpu) const {
    std::vector<TraceRecord> out;
    if (cpu >= rings_.size()) {
      return out;
    }
    const Ring& r = rings_[cpu];
    const uint64_t kept = r.total < capacity_ ? r.total : capacity_;
    out.reserve(kept);
    const uint64_t start = r.total - kept;
    for (uint64_t i = 0; i < kept; ++i) {
      out.push_back(r.slots[(start + i) % capacity_]);
    }
    return out;
  }

  // Records overwritten by drop-oldest on `cpu`'s ring.
  uint64_t dropped(uint16_t cpu) const {
    if (cpu >= rings_.size()) {
      return 0;
    }
    const Ring& r = rings_[cpu];
    return r.total > capacity_ ? r.total - capacity_ : 0;
  }

 private:
  struct Ring {
    std::vector<TraceRecord> slots;
    uint64_t total = 0;  // records ever pushed; total - kept = dropped
    uint32_t head = 0;   // next write index == total % capacity
  };

  void RefreshLane() {
    lane_ = rings_.empty() ? nullptr : &rings_[cpu_ < rings_.size() ? cpu_ : 0];
  }

  // Only reached while enabled_ (every record entry point gates on it), so
  // the ring is preallocated and the lane pointer resolved.
  void Push(const TraceRecord& rec) {
    Ring& r = *lane_;
    r.slots[r.head] = rec;
    if (++r.head == capacity_) {
      r.head = 0;
    }
    r.total++;
  }

  const Clock* clock_;
  Metrics* metrics_;
  bool enabled_ = false;
  uint32_t capacity_ = 4096;
  uint16_t cpu_ = 0;
  Ring* lane_ = nullptr;  // rings_[cpu_], cached by SetCpu/Enable
  std::vector<std::string> names_;
  std::vector<Ring> rings_;
};

// Serializes a Tracer's rings as Chrome trace-event (catapult) JSON — the
// format chrome://tracing and Perfetto load.  pid 0 is the simulated
// machine; each simulated CPU is a tid with a thread_name metadata record.
// Timestamps are virtual cycles (the viewer displays them as microseconds;
// only relative spacing matters).
class TraceExporter {
 public:
  static std::string Export(const Tracer& tracer);
  static bool WriteFile(const Tracer& tracer, const std::string& path);
};

}  // namespace mks

#endif  // MKS_SIM_TRACE_H_
