// Deferred-completion event queue for the discrete simulation.
//
// Asynchronous device activity (disk transfers) is modelled by scheduling a
// completion closure at a future simulated time.  The scheduler runs due
// events as the clock advances, and can fast-forward the clock to the next
// due time when every process is blocked (the machine would be idle).
//
// Scheduling is allocation-free in steady state: the heap is an explicit
// 4-ary array of POD (due, seq, slot) entries, and closures live in pooled
// slots with inline small-buffer storage (a disk-completion capture is a few
// pointers; only an oversized closure falls back to the heap).  Slots are
// kept in fixed-size slabs so their addresses are stable — a closure may
// Schedule further events while it runs without invalidating itself.  Events
// with equal due times run in Schedule order (the seq tie-break), identical
// to the previous std::priority_queue implementation.
#ifndef MKS_SIM_EVENT_QUEUE_H_
#define MKS_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/clock.h"

namespace mks {

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  ~EventQueue() {
    for (const Entry& e : heap_) {
      Slot* s = SlotPtr(e.slot);
      s->destroy(s);
    }
  }

  template <typename F>
  void Schedule(Cycles due, F&& fn) {
    const uint32_t slot = AllocSlot();
    Construct(SlotPtr(slot), std::forward<F>(fn));
    HeapPush(Entry{due, next_seq_++, slot});
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Earliest due time; only valid when not empty.
  Cycles next_due() const { return heap_[0].due; }

  // Runs every event due at or before `now`; returns the number run.
  size_t RunDue(Cycles now) {
    size_t ran = 0;
    while (!heap_.empty() && heap_[0].due <= now) {
      // The closure may schedule further events, so pop first.  The slot is
      // released only after the call returns: a re-entrant Schedule can never
      // be handed the storage of the closure still running.
      const uint32_t slot = heap_[0].slot;
      HeapPop();
      Slot* s = SlotPtr(slot);
      s->run(s);
      free_.push_back(slot);
      ++ran;
    }
    return ran;
  }

 private:
  // Inline closure storage: the hot site (a disk completion) captures a
  // manager pointer plus two small ids; 48 bytes also fits a std::function
  // handed in by tests.
  static constexpr size_t kInlineBytes = 48;
  static constexpr size_t kSlabSlots = 64;

  struct Slot {
    void (*run)(Slot*) = nullptr;      // invoke, then destroy the closure
    void (*destroy)(Slot*) = nullptr;  // destroy without invoking (teardown)
    void* heap_obj = nullptr;          // oversized-closure fallback
    alignas(std::max_align_t) unsigned char buf[kInlineBytes];
  };

  struct Entry {
    Cycles due;
    uint64_t seq;  // FIFO tie-break for determinism
    uint32_t slot;

    bool Before(const Entry& o) const {
      return due != o.due ? due < o.due : seq < o.seq;
    }
  };

  template <typename F>
  static void Construct(Slot* s, F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(s->buf)) Fn(std::forward<F>(fn));
      s->run = [](Slot* slot) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(slot->buf));
        (*f)();
        f->~Fn();
      };
      s->destroy = [](Slot* slot) {
        std::launder(reinterpret_cast<Fn*>(slot->buf))->~Fn();
      };
    } else {
      s->heap_obj = new Fn(std::forward<F>(fn));
      s->run = [](Slot* slot) {
        Fn* f = static_cast<Fn*>(slot->heap_obj);
        (*f)();
        delete f;
        slot->heap_obj = nullptr;
      };
      s->destroy = [](Slot* slot) {
        delete static_cast<Fn*>(slot->heap_obj);
        slot->heap_obj = nullptr;
      };
    }
  }

  Slot* SlotPtr(uint32_t id) { return &slabs_[id / kSlabSlots][id % kSlabSlots]; }

  uint32_t AllocSlot() {
    if (free_.empty()) {
      const uint32_t base = static_cast<uint32_t>(slabs_.size() * kSlabSlots);
      slabs_.push_back(std::make_unique<Slot[]>(kSlabSlots));
      free_.reserve(free_.size() + kSlabSlots);
      for (uint32_t i = 0; i < kSlabSlots; ++i) {
        free_.push_back(base + i);
      }
    }
    const uint32_t id = free_.back();
    free_.pop_back();
    return id;
  }

  // 4-ary min-heap on (due, seq): shallower than binary for the same size,
  // and the POD entries move with plain stores.
  void HeapPush(Entry e) {
    size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const size_t parent = (i - 1) / 4;
      if (!e.Before(heap_[parent])) {
        break;
      }
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void HeapPop() {
    const Entry last = heap_.back();
    heap_.pop_back();
    const size_t n = heap_.size();
    if (n == 0) {
      return;
    }
    size_t i = 0;
    for (;;) {
      const size_t first_child = 4 * i + 1;
      if (first_child >= n) {
        break;
      }
      size_t best = first_child;
      const size_t end = first_child + 4 < n ? first_child + 4 : n;
      for (size_t c = first_child + 1; c < end; ++c) {
        if (heap_[c].Before(heap_[best])) {
          best = c;
        }
      }
      if (!heap_[best].Before(last)) {
        break;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }

  std::vector<Entry> heap_;
  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::vector<uint32_t> free_;
  uint64_t next_seq_ = 0;
};

}  // namespace mks

#endif  // MKS_SIM_EVENT_QUEUE_H_
