// Deferred-completion event queue for the discrete simulation.
//
// Asynchronous device activity (disk transfers) is modelled by scheduling a
// completion closure at a future simulated time.  The scheduler runs due
// events as the clock advances, and can fast-forward the clock to the next
// due time when every process is blocked (the machine would be idle).
#ifndef MKS_SIM_EVENT_QUEUE_H_
#define MKS_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/clock.h"

namespace mks {

class EventQueue {
 public:
  void Schedule(Cycles due, std::function<void()> fn) {
    heap_.push(Event{due, next_seq_++, std::move(fn)});
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Earliest due time; only valid when not empty.
  Cycles next_due() const { return heap_.top().due; }

  // Runs every event due at or before `now`; returns the number run.
  size_t RunDue(Cycles now) {
    size_t ran = 0;
    while (!heap_.empty() && heap_.top().due <= now) {
      // The closure may schedule further events, so pop first.
      auto fn = std::move(heap_.top().fn);
      heap_.pop();
      fn();
      ++ran;
    }
    return ran;
  }

 private:
  struct Event {
    Cycles due;
    uint64_t seq;  // FIFO tie-break for determinism
    mutable std::function<void()> fn;

    friend bool operator>(const Event& a, const Event& b) {
      if (a.due != b.due) {
        return a.due > b.due;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace mks

#endif  // MKS_SIM_EVENT_QUEUE_H_
