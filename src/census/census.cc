#include "src/census/census.h"

#include <sstream>

namespace mks {

KernelCensus KernelCensus::Paper1973() {
  KernelCensus census;
  // Ring zero: 28,000 PL/I + 16,000 assembly source lines = 44,000 source
  // (36,000 PL/I-equivalent, the assembly recoding to PL/I shrinking source
  // by slightly more than a factor of two).
  census.Add({"dynamic_linker", Language::kPl1, 2000, 0, 0, "Linker", false});
  census.Add({"name_manager", Language::kPl1, 1000, 0, 0, "Name Manager", false});
  census.Add({"network_io", Language::kPl1, 7000, 0, 1000, "Network I/O", false});
  census.Add({"initialization", Language::kPl1, 2000, 0, 0, "Initialization", false});
  census.Add({"segment_control", Language::kPl1, 5000, 0, 5000, "", false});
  census.Add({"directory_control", Language::kPl1, 6000, 0, 6000, "", false});
  census.Add({"address_space_control", Language::kPl1, 3000, 0, 3000, "", true});
  census.Add({"process_control", Language::kPl1, 2000, 0, 2000, "", true});
  census.Add({"page_control", Language::kAssembly, 6000, 0, 3000, "Exclusive use of PL/I",
              false});
  census.Add({"interrupt_and_fault", Language::kAssembly, 4000, 0, 2000,
              "Exclusive use of PL/I", false});
  census.Add({"core_management", Language::kAssembly, 6000, 0, 3000, "Exclusive use of PL/I",
              false});
  // The largest non-ring-zero kernel component.
  census.Add({"answering_service", Language::kPl1, 10000, 1, 1000, "Answering Service", false});
  return census;
}

int KernelCensus::Pl1Equivalent(const CensusComponent& component) {
  return component.language == Language::kAssembly ? component.source_lines / 2
                                                   : component.source_lines;
}

int KernelCensus::StartTotal() const {
  int total = 0;
  for (const CensusComponent& c : components_) {
    total += c.source_lines;
  }
  return total;
}

SizeTable KernelCensus::ComputeTable() const {
  SizeTable table;
  std::map<std::string, int> by_project;
  for (const CensusComponent& c : components_) {
    if (c.ring == 0) {
      table.start_ring0 += c.source_lines;
    } else {
      table.start_answering += c.source_lines;
    }
    if (!c.project.empty()) {
      by_project[c.project] += c.source_lines - c.lines_after;
    }
  }
  table.start_total = table.start_ring0 + table.start_answering;
  // Preserve the paper's presentation order.
  for (const char* project : {"Linker", "Name Manager", "Answering Service", "Network I/O",
                              "Initialization", "Exclusive use of PL/I"}) {
    auto it = by_project.find(project);
    if (it != by_project.end()) {
      table.reductions.emplace_back(it->first, it->second);
      table.total_reduction += it->second;
    }
  }
  table.final_total = table.start_total - table.total_reduction;
  return table;
}

EntryPointStats KernelCensus::EntryPoints() const {
  EntryPointStats stats;
  stats.internal_entries = 1200;
  stats.user_gates = 157;
  stats.linker_object_code_share = 0.05;
  stats.linker_internal_entry_share = 0.025;
  stats.linker_user_gate_share = 0.11;
  return stats;
}

KernelCensus::Specialization KernelCensus::FileStoreSpecialization() const {
  Specialization result;
  result.final_total = ComputeTable().final_total;
  int deletable = 0;
  for (const CensusComponent& c : components_) {
    if (c.file_store_deletable) {
      deletable += c.lines_after;
    }
  }
  result.after_specialization = result.final_total - deletable;
  result.percent_removed =
      100.0 * static_cast<double>(deletable) / static_cast<double>(result.final_total);
  return result;
}

namespace {
std::string Pad(const std::string& text, size_t width) {
  std::string out = text;
  while (out.size() < width) {
    out.push_back(' ');
  }
  return out;
}
std::string K(int lines) {
  std::ostringstream out;
  out << lines / 1000 << "K";
  return out.str();
}
}  // namespace

std::string KernelCensus::Render() const {
  const SizeTable table = ComputeTable();
  std::ostringstream out;
  out << "Kernel Size, Start of Project        Reductions\n";
  out << "  " << Pad(K(table.start_ring0) + " ring 0", 35);
  out << "\n  " << Pad(K(table.start_answering) + " Answering Service", 35) << "\n  "
      << Pad(K(table.start_total) + " TOTAL", 35) << "\n\n";
  for (const auto& [project, saved] : table.reductions) {
    out << "  " << Pad(project, 28) << Pad(K(saved), 6) << "\n";
  }
  out << "  " << Pad("TOTAL", 28) << K(table.total_reduction) << "\n\n";
  out << "  Final kernel size: " << K(table.final_total) << " (paper: \"cut ... roughly in half\")\n";

  const EntryPointStats eps = EntryPoints();
  out << "\nEntry points: " << eps.internal_entries << " internal, " << eps.user_gates
      << " user gates.\n";
  out << "Linker extraction: " << 100 * eps.linker_object_code_share << "% of object code, "
      << 100 * eps.linker_internal_entry_share << "% of internal entries, "
      << 100 * eps.linker_user_gate_share << "% of user gates.\n";

  const Specialization spec = FileStoreSpecialization();
  out << "File-store specialization: " << K(spec.final_total) << " -> "
      << K(spec.after_specialization) << " (" << spec.percent_removed
      << "% removed; paper estimate: 15-25%)\n";
  return out.str();
}

}  // namespace mks
