// The kernel-size census: the paper's evaluation table as executable data.
//
// The paper's consistent measure is "the number of source lines that would
// exist had the system been coded uniformly in PL/I".  This module carries
// the component inventory of the 1973 kernel, tags each component with the
// redesign project that removes or shrinks it, and recomputes the paper's
// accounting:
//
//     Kernel size, start of project      Reductions
//       44K ring 0                         Linker            2K
//       10K Answering Service              Name Manager      1K
//       --                                 Answering Service 9K
//       54K TOTAL                          Network I/O       6K
//                                          Initialization    2K
//                                          Exclusive PL/I    8K
//                                          TOTAL            28K
//
// plus the entry-point statistics of the linker extraction (5% of object
// code, 2.5% of internal entries, 11% of user gates) and the estimate for a
// file-store-only specialization (a further 15-25%).
#ifndef MKS_CENSUS_CENSUS_H_
#define MKS_CENSUS_CENSUS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mks {

enum class Language : uint8_t { kPl1, kAssembly };

// One body of code in the 1973 supervisor.
struct CensusComponent {
  std::string name;
  Language language = Language::kPl1;
  // Source lines at the start of the project.
  int source_lines = 0;
  int ring = 0;  // 0 = ring zero, 1 = outer supervisor rings / trusted process
  // Lines remaining inside the kernel after the named project (equal to
  // source_lines when no project touches it).
  int lines_after = 0;
  std::string project;  // "" when untouched
  // Would a file-storage-only specialization delete it?
  bool file_store_deletable = false;
};

struct SizeTable {
  int start_ring0 = 0;
  int start_answering = 0;
  int start_total = 0;
  std::vector<std::pair<std::string, int>> reductions;  // project -> lines saved
  int total_reduction = 0;
  int final_total = 0;
};

struct EntryPointStats {
  int internal_entries = 0;
  int user_gates = 0;
  // Effects of the linker extraction.
  double linker_object_code_share = 0.0;
  double linker_internal_entry_share = 0.0;
  double linker_user_gate_share = 0.0;
};

class KernelCensus {
 public:
  // The historical inventory, calibrated so its sums reproduce the paper's
  // numbers exactly.
  static KernelCensus Paper1973();

  const std::vector<CensusComponent>& components() const { return components_; }
  void Add(CensusComponent component) { components_.push_back(std::move(component)); }

  // PL/I-equivalent lines (assembly counts as source/2, per the observed
  // "slightly more than a factor of two" expansion).
  static int Pl1Equivalent(const CensusComponent& component);

  int StartTotal() const;
  SizeTable ComputeTable() const;
  EntryPointStats EntryPoints() const;

  // The paper's what-if: specializing to a network-connected file store
  // deletes the deletable components; returns {low, high} percentage bounds
  // around the computed point estimate.
  struct Specialization {
    int final_total = 0;
    int after_specialization = 0;
    double percent_removed = 0.0;
  };
  Specialization FileStoreSpecialization() const;

  // Renders the table side by side with the paper's reported values.
  std::string Render() const;

 private:
  std::vector<CensusComponent> components_;
};

}  // namespace mks

#endif  // MKS_CENSUS_CENSUS_H_
