// The baseline (1973) network configuration: one complete protocol handler
// per attached network, all inside the kernel.
//
// "At the start of the project, approximately 7,000 lines of PL/I were
// dedicated to handling these multiplexed lines, about 20% of ring zero...
// If a third network were to be connected to Multics, the original strategy
// would require that yet a third handler be added."  ArpanetHandler and
// FrontEndHandler are two deliberately separate code bodies that duplicate
// the demultiplexing skeleton; attaching another network means writing
// another one (AttachGenericNetwork clones the pattern to make the linear
// growth measurable).
#ifndef MKS_NET_KERNEL_STACK_H_
#define MKS_NET_KERNEL_STACK_H_

#include <map>
#include <memory>

#include "src/net/channel.h"
#include "src/sim/clock.h"
#include "src/sim/metrics.h"

namespace mks {

// Per-subchannel protocol state shared by the toy NCP.
struct NcpConnection {
  bool open = false;
  uint32_t next_seq = 0;
  std::deque<Frame> delivered;  // to the (in-kernel) consumer interface
  uint64_t out_of_order = 0;
};

struct TerminalLine {
  std::string partial_line;
  std::deque<std::string> lines;  // assembled input lines
  uint64_t echoes = 0;
};

class InKernelNetworkStack {
 public:
  InKernelNetworkStack(CostModel* cost, Metrics* metrics)
      : cost_(cost),
        metrics_(metrics),
        id_out_of_order_(metrics->Intern("net.out_of_order")),
        id_kernel_frames_(metrics->Intern("net.kernel_frames")) {}

  void AttachArpanet(MultiplexedChannel* channel) { arpanet_ = channel; }
  void AttachFrontEnd(MultiplexedChannel* channel) { front_end_ = channel; }
  // The third network: a verbatim copy of the handler pattern.
  void AttachGenericNetwork(MultiplexedChannel* channel) { extra_nets_.push_back(channel); }

  // Drains every attached channel, running the full protocol in the kernel.
  // Returns the number of frames processed.
  uint64_t PumpAll();

  // The in-kernel consumer interfaces.
  std::optional<Frame> ReceiveArpanet(SubchannelId sub);
  std::optional<std::string> ReadTerminalLine(SubchannelId line);

  const std::deque<Frame>& acks_sent() const { return acks_; }
  size_t attached_networks() const {
    return (arpanet_ != nullptr ? 1 : 0) + (front_end_ != nullptr ? 1 : 0) + extra_nets_.size();
  }

 private:
  uint64_t PumpArpanetFrame(const Frame& frame);
  uint64_t PumpFrontEndFrame(const Frame& frame);

  CostModel* cost_;
  Metrics* metrics_;
  MetricId id_out_of_order_;
  MetricId id_kernel_frames_;
  MultiplexedChannel* arpanet_ = nullptr;
  MultiplexedChannel* front_end_ = nullptr;
  std::vector<MultiplexedChannel*> extra_nets_;
  std::map<SubchannelId, NcpConnection> connections_;
  std::map<SubchannelId, TerminalLine> lines_;
  std::map<SubchannelId, NcpConnection> extra_connections_;
  std::deque<Frame> acks_;
};

}  // namespace mks

#endif  // MKS_NET_KERNEL_STACK_H_
