// The redesigned network configuration [Ciccarelli, 1977]: a small,
// network-independent demultiplexer is all that remains in the kernel; the
// protocol interpretation (NCP, terminal canonicalization/echo) moves to
// unprivileged user-domain modules.
//
// The kernel part only routes: frame in, bounded per-subchannel queue out.
// It neither parses payloads nor knows what an "ACK" is, so attaching a new
// network adds a channel registration, not a code body — the kernel "only
// grows slightly as new networks are attached".
#ifndef MKS_NET_DEMUX_H_
#define MKS_NET_DEMUX_H_

#include <map>

#include "src/net/kernel_stack.h"

namespace mks {

// --- the kernel-resident part ---
class GenericDemux {
 public:
  GenericDemux(CostModel* cost, Metrics* metrics, size_t queue_capacity = 64)
      : cost_(cost),
        metrics_(metrics),
        id_demux_drops_(metrics->Intern("net.demux_drops")),
        id_demux_frames_(metrics->Intern("net.demux_frames")),
        queue_capacity_(queue_capacity) {}

  void AttachChannel(MultiplexedChannel* channel) { channels_.push_back(channel); }

  // Routes every pending frame to its subchannel queue.  Returns frames
  // routed; overflowing queues count drops (backpressure is the user
  // module's problem, not the kernel's).
  uint64_t Pump();

  // The single gate user-domain protocol modules call.
  std::optional<Frame> ReadSubchannel(ChannelId channel, SubchannelId sub);

  uint64_t dropped() const { return dropped_; }
  size_t attached_networks() const { return channels_.size(); }

 private:
  CostModel* cost_;
  Metrics* metrics_;
  MetricId id_demux_drops_;
  MetricId id_demux_frames_;
  size_t queue_capacity_;
  std::vector<MultiplexedChannel*> channels_;
  std::map<std::pair<uint16_t, uint16_t>, std::deque<Frame>> queues_;
  uint64_t dropped_ = 0;
};

// --- user-domain protocol modules ---

class NcpProtocolUser {
 public:
  NcpProtocolUser(CostModel* cost, Metrics* metrics, GenericDemux* demux, ChannelId channel)
      : cost_(cost),
        metrics_(metrics),
        id_out_of_order_(metrics->Intern("net.out_of_order")),
        id_user_frames_(metrics->Intern("net.user_frames")),
        demux_(demux),
        channel_(channel) {}

  // Drains one subchannel through the kernel gate, running the same NCP
  // logic as the baseline handler — but in the user domain.
  uint64_t PumpSubchannel(SubchannelId sub);

  std::optional<Frame> Receive(SubchannelId sub);
  const std::deque<Frame>& acks_sent() const { return acks_; }

 private:
  CostModel* cost_;
  Metrics* metrics_;
  MetricId id_out_of_order_;
  MetricId id_user_frames_;
  GenericDemux* demux_;
  ChannelId channel_;
  std::map<SubchannelId, NcpConnection> connections_;
  std::deque<Frame> acks_;
};

class TerminalProtocolUser {
 public:
  TerminalProtocolUser(CostModel* cost, Metrics* metrics, GenericDemux* demux, ChannelId channel)
      : cost_(cost),
        metrics_(metrics),
        id_user_frames_(metrics->Intern("net.user_frames")),
        demux_(demux),
        channel_(channel) {}

  uint64_t PumpLine(SubchannelId line);
  std::optional<std::string> ReadLine(SubchannelId line);

 private:
  CostModel* cost_;
  Metrics* metrics_;
  MetricId id_user_frames_;
  GenericDemux* demux_;
  ChannelId channel_;
  std::map<SubchannelId, TerminalLine> lines_;
};

}  // namespace mks

#endif  // MKS_NET_DEMUX_H_
