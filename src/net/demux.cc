#include "src/net/demux.h"

namespace mks {

namespace {
constexpr Cycles kRouteCost = 3;  // the kernel's entire per-frame work
constexpr Cycles kParseCost = 12;
constexpr Cycles kDeliverCost = 6;
constexpr Cycles kAckCost = 8;
}  // namespace

uint64_t GenericDemux::Pump() {
  uint64_t routed = 0;
  for (MultiplexedChannel* channel : channels_) {
    while (auto frame = channel->Poll()) {
      // Structured (auditable) code, but tiny: route by (channel, sub).
      cost_->Charge(CodeStyle::kStructured, kRouteCost);
      auto& queue = queues_[{channel->id().value, frame->subchannel.value}];
      if (queue.size() >= queue_capacity_) {
        ++dropped_;
        metrics_->Inc(id_demux_drops_);
        continue;
      }
      queue.push_back(std::move(*frame));
      metrics_->Inc(id_demux_frames_);
      ++routed;
    }
  }
  return routed;
}

std::optional<Frame> GenericDemux::ReadSubchannel(ChannelId channel, SubchannelId sub) {
  // A gate crossing: the user-domain protocol module calling into the
  // kernel's one remaining network entry point.
  cost_->Charge(CodeStyle::kOptimized, Costs::kGateCall);
  auto it = queues_.find({channel.value, sub.value});
  if (it == queues_.end() || it->second.empty()) {
    return std::nullopt;
  }
  Frame f = std::move(it->second.front());
  it->second.pop_front();
  return f;
}

uint64_t NcpProtocolUser::PumpSubchannel(SubchannelId sub) {
  uint64_t processed = 0;
  while (auto frame = demux_->ReadSubchannel(channel_, sub)) {
    // The identical protocol logic as the in-kernel handler, now charged as
    // user-domain structured code.
    cost_->Charge(CodeStyle::kStructured, kParseCost);
    NcpConnection& conn = connections_[sub];
    switch (frame->type) {
      case frame_type::kOpen:
        conn.open = true;
        conn.next_seq = 0;
        break;
      case frame_type::kClose:
        conn.open = false;
        break;
      case frame_type::kData: {
        if (!conn.open) {
          conn.open = true;
        }
        if (frame->seq != conn.next_seq) {
          ++conn.out_of_order;
          metrics_->Inc(id_out_of_order_);
          break;
        }
        ++conn.next_seq;
        cost_->Charge(CodeStyle::kStructured, kDeliverCost);
        conn.delivered.push_back(*frame);
        Frame ack;
        ack.subchannel = sub;
        ack.type = frame_type::kAck;
        ack.seq = frame->seq;
        cost_->Charge(CodeStyle::kStructured, kAckCost);
        acks_.push_back(std::move(ack));
        break;
      }
      default:
        break;
    }
    metrics_->Inc(id_user_frames_);
    ++processed;
  }
  return processed;
}

std::optional<Frame> NcpProtocolUser::Receive(SubchannelId sub) {
  auto it = connections_.find(sub);
  if (it == connections_.end() || it->second.delivered.empty()) {
    return std::nullopt;
  }
  Frame f = std::move(it->second.delivered.front());
  it->second.delivered.pop_front();
  return f;
}

uint64_t TerminalProtocolUser::PumpLine(SubchannelId line_id) {
  uint64_t processed = 0;
  while (auto frame = demux_->ReadSubchannel(channel_, line_id)) {
    cost_->Charge(CodeStyle::kStructured, kParseCost);
    TerminalLine& line = lines_[line_id];
    for (Word w : frame->payload) {
      const char c = static_cast<char>(w & 0x7f);
      cost_->Charge(CodeStyle::kStructured, 1);
      ++line.echoes;
      if (c == '\n') {
        line.lines.push_back(line.partial_line);
        line.partial_line.clear();
      } else {
        line.partial_line.push_back(c);
      }
    }
    metrics_->Inc(id_user_frames_);
    ++processed;
  }
  return processed;
}

std::optional<std::string> TerminalProtocolUser::ReadLine(SubchannelId line_id) {
  auto it = lines_.find(line_id);
  if (it == lines_.end() || it->second.lines.empty()) {
    return std::nullopt;
  }
  std::string line = std::move(it->second.lines.front());
  it->second.lines.pop_front();
  return line;
}

}  // namespace mks
