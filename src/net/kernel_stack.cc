#include "src/net/kernel_stack.h"

namespace mks {

Frame TrafficGenerator::NextFrame() {
  Frame frame;
  frame.subchannel = SubchannelId(static_cast<uint16_t>(rng_.NextBelow(subchannels_)));
  const double kind = rng_.NextDouble();
  if (kind < 0.05) {
    frame.type = frame_type::kOpen;
  } else if (kind < 0.07) {
    frame.type = frame_type::kClose;
  } else {
    frame.type = frame_type::kData;
    frame.seq = next_seq_[frame.subchannel.value]++;
    const uint32_t words = static_cast<uint32_t>(1 + rng_.NextBelow(8));
    frame.payload.reserve(words);
    for (uint32_t i = 0; i < words; ++i) {
      frame.payload.push_back(rng_.Next() & 0x7f7f7f7fULL);
    }
  }
  return frame;
}

namespace {
// Per-frame protocol work, in optimized-equivalent cycles.
constexpr Cycles kParseCost = 12;
constexpr Cycles kDeliverCost = 6;
constexpr Cycles kAckCost = 8;
}  // namespace

uint64_t InKernelNetworkStack::PumpArpanetFrame(const Frame& frame) {
  // Full NCP-style handling, inside the kernel, as optimized code.
  cost_->Charge(CodeStyle::kOptimized, kParseCost);
  NcpConnection& conn = connections_[frame.subchannel];
  switch (frame.type) {
    case frame_type::kOpen:
      conn.open = true;
      conn.next_seq = 0;
      break;
    case frame_type::kClose:
      conn.open = false;
      break;
    case frame_type::kData: {
      if (!conn.open) {
        conn.open = true;  // implicit open, as the historical NCP tolerated
      }
      if (frame.seq != conn.next_seq) {
        ++conn.out_of_order;
        metrics_->Inc(id_out_of_order_);
        return 1;
      }
      ++conn.next_seq;
      cost_->Charge(CodeStyle::kOptimized, kDeliverCost);
      conn.delivered.push_back(frame);
      Frame ack;
      ack.subchannel = frame.subchannel;
      ack.type = frame_type::kAck;
      ack.seq = frame.seq;
      cost_->Charge(CodeStyle::kOptimized, kAckCost);
      acks_.push_back(std::move(ack));
      break;
    }
    default:
      break;
  }
  return 1;
}

uint64_t InKernelNetworkStack::PumpFrontEndFrame(const Frame& frame) {
  cost_->Charge(CodeStyle::kOptimized, kParseCost);
  TerminalLine& line = lines_[frame.subchannel];
  for (Word w : frame.payload) {
    const char c = static_cast<char>(w & 0x7f);
    cost_->Charge(CodeStyle::kOptimized, 1);  // per-character canonicalization
    ++line.echoes;                            // full-duplex echo from the kernel
    if (c == '\n') {
      line.lines.push_back(line.partial_line);
      line.partial_line.clear();
    } else {
      line.partial_line.push_back(c);
    }
  }
  return 1;
}

uint64_t InKernelNetworkStack::PumpAll() {
  uint64_t processed = 0;
  if (arpanet_ != nullptr) {
    while (auto frame = arpanet_->Poll()) {
      processed += PumpArpanetFrame(*frame);
      metrics_->Inc(id_kernel_frames_);
    }
  }
  if (front_end_ != nullptr) {
    while (auto frame = front_end_->Poll()) {
      processed += PumpFrontEndFrame(*frame);
      metrics_->Inc(id_kernel_frames_);
    }
  }
  for (MultiplexedChannel* channel : extra_nets_) {
    while (auto frame = channel->Poll()) {
      // The copied handler pattern: same parse/deliver skeleton again.
      cost_->Charge(CodeStyle::kOptimized, kParseCost);
      NcpConnection& conn = extra_connections_[frame->subchannel];
      if (frame->type == frame_type::kData && frame->seq == conn.next_seq) {
        ++conn.next_seq;
        cost_->Charge(CodeStyle::kOptimized, kDeliverCost);
        conn.delivered.push_back(*frame);
      }
      metrics_->Inc(id_kernel_frames_);
      ++processed;
    }
  }
  return processed;
}

std::optional<Frame> InKernelNetworkStack::ReceiveArpanet(SubchannelId sub) {
  auto it = connections_.find(sub);
  if (it == connections_.end() || it->second.delivered.empty()) {
    return std::nullopt;
  }
  Frame f = std::move(it->second.delivered.front());
  it->second.delivered.pop_front();
  return f;
}

std::optional<std::string> InKernelNetworkStack::ReadTerminalLine(SubchannelId line_id) {
  auto it = lines_.find(line_id);
  if (it == lines_.end() || it->second.lines.empty()) {
    return std::nullopt;
  }
  std::string line = std::move(it->second.lines.front());
  it->second.lines.pop_front();
  return line;
}

}  // namespace mks
