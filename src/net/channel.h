// The multiplexed-communication substrate.
//
// Two multiplexed streams were attached to historical Multics — the ARPANET
// and the local front-end processor with its terminals.  A channel delivers
// frames tagged with a subchannel (host connection or terminal line); the
// protocol machinery above decides what a frame means.
#ifndef MKS_NET_CHANNEL_H_
#define MKS_NET_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/hw/machine.h"

namespace mks {

struct Frame {
  SubchannelId subchannel{};
  uint16_t type = 0;  // protocol-specific: data / ack / control
  uint32_t seq = 0;
  std::vector<Word> payload;
};

// Frame types shared by the toy protocols.
namespace frame_type {
inline constexpr uint16_t kData = 0;
inline constexpr uint16_t kAck = 1;
inline constexpr uint16_t kOpen = 2;
inline constexpr uint16_t kClose = 3;
}  // namespace frame_type

class MultiplexedChannel {
 public:
  explicit MultiplexedChannel(ChannelId id, std::string name)
      : id_(id), name_(std::move(name)) {}

  ChannelId id() const { return id_; }
  const std::string& name() const { return name_; }

  void Inject(Frame frame) { wire_.push_back(std::move(frame)); }
  std::optional<Frame> Poll() {
    if (wire_.empty()) {
      return std::nullopt;
    }
    Frame f = std::move(wire_.front());
    wire_.pop_front();
    return f;
  }
  size_t pending() const { return wire_.size(); }

 private:
  ChannelId id_;
  std::string name_;
  std::deque<Frame> wire_;
};

// Synthesizes a plausible frame mix for a channel: ordered data on a set of
// subchannels with occasional control frames.
class TrafficGenerator {
 public:
  TrafficGenerator(uint64_t seed, uint16_t subchannels) : rng_(seed), subchannels_(subchannels) {
    next_seq_.assign(subchannels, 0);
  }

  Frame NextFrame();

 private:
  Rng rng_;
  uint16_t subchannels_;
  std::vector<uint32_t> next_seq_;
};

}  // namespace mks

#endif  // MKS_NET_CHANNEL_H_
