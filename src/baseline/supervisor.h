// The baseline: a compact model of the 1973 Multics supervisor, with the
// paper's dependency loops deliberately intact.
//
// This is the "before" system of every comparison in the paper:
//
//  * page control, on a growth fault, walks UP segment control's active
//    segment table along the shape of the directory hierarchy to find the
//    nearest superior quota directory (the quota loop);
//  * segment control never deactivates a directory with active inferiors
//    (the hierarchy-shape constraint on the AST);
//  * a full pack is handled by page control invoking segment control, which
//    reads address-space control's data to find — and directly update — the
//    directory entry (the full-pack loop);
//  * the missing-page race is closed by a global lock plus interpretive
//    retranslation of the faulting address against segment control's and
//    address-space control's tables (no descriptor lock bit in the hardware);
//  * process states live in pageable segments and there is ONE level of
//    process multiplexing, so dispatching a process can itself page-fault
//    (the interpreter loop), handled by bounded recursion;
//  * tree-name expansion, the dynamic linker, and reference-name management
//    all run inside the supervisor ("buried ... inside the supervisor"),
//    with the two-response rule: "file found" or "no access".
//
// Code paths are charged at CodeStyle::kOptimized: the historical supervisor
// was heavily assembly-coded, which is the baseline of the PL/I-recoding
// performance comparison.
#ifndef MKS_BASELINE_SUPERVISOR_H_
#define MKS_BASELINE_SUPERVISOR_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/aim/monitor.h"
#include "src/common/rng.h"
#include "src/deps/tracker.h"
#include "src/disk/pack.h"
#include "src/hw/machine.h"
#include "src/sim/clock.h"
#include "src/sim/cpu_sched.h"
#include "src/sim/metrics.h"
#include "src/sim/trace.h"
#include "src/sync/spinlock.h"

namespace mks {

struct BaselineConfig {
  uint32_t memory_frames = 512;
  uint16_t pack_count = 2;
  uint32_t records_per_pack = 4096;
  uint32_t vtoc_slots_per_pack = 512;
  uint32_t ast_slots = 64;
  // Probability that the address translation tables changed between a
  // missing-page fault and capture of the global lock, forcing the
  // interpretive retranslation to detect a conflict and retry.
  double retranslate_conflict_rate = 0.02;
  // Entries in the descriptor associative memory.  The historical 1973
  // configuration had none on this path (0); nonzero models retrofitting the
  // 6180's associative memory under the monolithic supervisor for comparison
  // with the kernel design.
  uint16_t associative_entries = 0;
  // Simulated processors.  With more than one, process quanta interleave
  // deterministically across the pool and every missing-page fault contends
  // for the one global lock — each extra processor also raises the chance
  // that the translation tables changed under a fault in flight (the
  // retranslation conflict rate scales with cpu_count - 1).
  uint16_t cpu_count = 1;
  uint64_t root_quota = 1u << 20;
  uint64_t seed = 1977;
  // Virtual-time tracer (default off; same byte-identical contract as the
  // kernel's KernelConfig::trace knob).
  TraceConfig trace;
  // Ticket-ordered (FIFO) global lock.  The serialized simulation already
  // grants the lock in a total order, so fairness does not change who runs;
  // what the ticket discipline costs is the mandatory cache-line handoff to
  // the next waiting ticket holder on every contended release.  Default off:
  // byte-identical to the plain test-and-set model.
  bool ticket_lock = false;
  Cycles ticket_handoff_cost = 48;
  // Handoff-traffic policy for the global lock (see src/sync/spinlock.h):
  // kTestAndSet reproduces the historical free-for-all byte-for-byte;
  // kTicket charges each waiter one line transfer per handoff it observed
  // (the O(waiters) now-serving broadcast); kAnderson/kMcs charge exactly
  // one transfer per contended handoff (per-waiter spin lines).  When set,
  // this supersedes the legacy ticket_lock knob.
  LockPolicy lock_policy = LockPolicy::kTestAndSet;
  // Cycles per cache-line transfer for the policy charges (the baseline has
  // no interconnect model of its own, so the lock carries its own price).
  Cycles lock_transfer_cost = 48;
  // kAnderson's spin-array size; 0 = cpu_count.  More distinct CPUs than
  // slots aborts loudly rather than wrapping.
  uint16_t anderson_slots = 0;
};

// Baseline module names (the six boxes of Figure 2).
namespace baseline_modules {
inline constexpr const char* kDiskControl = "disk_volume_control";
inline constexpr const char* kDirectoryControl = "file_system_directory_control";
inline constexpr const char* kAddressSpaceControl = "address_space_control";
inline constexpr const char* kSegmentControl = "segment_control";
inline constexpr const char* kPageControl = "page_control";
inline constexpr const char* kProcessControl = "process_control";
}  // namespace baseline_modules

class MonolithicSupervisor {
 public:
  explicit MonolithicSupervisor(const BaselineConfig& config);
  ~MonolithicSupervisor();

  Status Boot();

  // --- the in-kernel file system interface (tree names resolved inside) ---
  // Creates every missing directory along the path, then the segment.
  Result<SegmentUid> CreatePath(const std::string& path);
  Status CreateDirectoryPath(const std::string& path);
  // The historical two-response interface: the identifier, or "no access".
  Result<SegmentUid> FileFound(const std::string& path);
  Status SetQuota(const std::string& dir_path, uint64_t limit);
  Result<uint64_t> QuotaUsed(const std::string& dir_path);

  // --- memory references (all fault handling inline, under the global lock) ---
  Result<Word> Read(SegmentUid uid, uint32_t offset);
  Status Write(SegmentUid uid, uint32_t offset, Word value);

  // --- one-level process control ---
  struct BaselineOp {
    enum class Kind : uint8_t { kRead, kWrite, kCompute } kind = Kind::kCompute;
    SegmentUid uid{};
    uint32_t offset = 0;
    Word value = 0;
    Cycles compute = 0;
  };
  Result<ProcessId> CreateProcess();
  Status SetProgram(ProcessId pid, std::vector<BaselineOp> program);
  // Runs every process to completion, round-robin, one quantum at a time.
  Status RunUntilQuiescent(uint64_t max_passes);

  // --- in-kernel services extracted by the redesign projects ---
  // The dynamic linker: resolves `symbol` against the per-process linkage
  // table, snapping the link on first use (all inside the kernel).
  Result<SegmentUid> LinkSnap(ProcessId pid, const std::string& symbol,
                              const std::string& target_path);
  // The reference name manager: in-kernel name -> segment bindings.
  Status NameBind(ProcessId pid, const std::string& name, SegmentUid uid);
  Result<SegmentUid> NameLookup(ProcessId pid, const std::string& name);

  // --- the figures ---
  // Figure 2: the superficial, almost linear structure (one obvious loop).
  static DependencyGraph SuperficialStructure();
  // Figure 3: the actual structure once maps, programs, address spaces, and
  // the exception paths are taken into account.
  static DependencyGraph ActualStructure();

  Clock& clock() { return clock_; }
  Metrics& metrics() { return metrics_; }
  Tracer& trace() { return trace_; }
  CallTracker& tracker() { return tracker_; }
  CostModel& cost() { return cost_; }
  uint64_t global_lock_acquisitions() const { return lock_acquisitions_; }
  uint64_t global_lock_contended() const { return global_lock_.contended(); }
  Cycles global_lock_spin_cycles() const { return global_lock_.total_spin(); }
  uint64_t global_lock_handoffs() const { return global_lock_.handoffs(); }
  Cycles global_lock_handoff_cycles() const { return global_lock_.handoff_cycles(); }
  Cycles global_lock_max_spin() const { return global_lock_.max_spin(); }
  uint64_t global_lock_max_queue_depth() const { return global_lock_.max_queue_depth(); }

  // Simulated-parallel completion time across the pool (equals clock() time
  // elapsed since construction when cpu_count is 1).
  Cycles Makespan();
  // Synchronization barrier: every CPU's local clock jumps to the furthest-
  // ahead one.  Call before a measured region so single-CPU setup work does
  // not skew the interleaving.
  void AlignCpus();

 private:
  struct BAstEntry {
    bool in_use = false;
    SegmentUid uid{};
    PackId pack{};
    VtocIndex vtoc{};
    PageTable page_table;
    bool is_directory = false;
    // Quota lives INSIDE the AST for directories, and page control follows
    // these parent links upward at every growth fault.
    uint32_t parent_ast = UINT32_MAX;
    bool quota_directory = false;
    uint64_t quota_limit = 0;
    uint64_t quota_count = 0;
    uint32_t active_inferiors = 0;
    uint32_t connections = 0;
    uint64_t lru_stamp = 0;
  };

  struct BNode {  // a directory-tree node held in directory control's data
    bool is_directory = false;
    SegmentUid uid{};
    PackId pack{};
    VtocIndex vtoc{};
    bool quota_directory = false;
    uint64_t quota_limit = 0;
    std::map<std::string, std::unique_ptr<BNode>> children;
    BNode* parent = nullptr;
    std::string name;
  };

  struct BProcess {
    ProcessId pid{};
    SegmentUid state_segment{};
    std::vector<BaselineOp> program;
    size_t pc = 0;
    bool done = false;
    std::map<std::string, SegmentUid> linkage;  // snapped links
    std::map<std::string, SegmentUid> names;    // reference names
  };

  // -- directory control --
  Result<BNode*> ResolveNode(const std::string& path);
  BNode* FindNodeByUid(SegmentUid uid);
  BNode* FindNodeByUidIn(BNode* node, SegmentUid uid);

  // -- segment control --
  Result<uint32_t> Activate(BNode* node);
  Status Deactivate(uint32_t ast);
  Result<uint32_t> EnsureActive(BNode* node);
  Result<uint32_t> AstOf(SegmentUid uid);

  // -- page control --
  void AcquireGlobalLock();
  void ReleaseGlobalLock();
  Status HandleMissingPage(uint32_t ast, uint32_t page);
  Status GrowPage(uint32_t ast, uint32_t page);
  // The quota walk: follow AST parent links to the nearest quota directory.
  Result<uint32_t> FindQuotaAst(uint32_t ast);
  Status HandleFullPack(uint32_t ast, uint32_t page);
  Result<FrameIndex> AcquireFrame();
  Status CleanAndRelease(FrameIndex frame);

  // -- process control --
  Status TouchStateSegment(BProcess& proc, int depth);

  // -- the simulated CPU pool --
  // The running CPU's local virtual time: its accrued quanta plus the global
  // clock's progress since it last resumed.  Continuous and monotone per CPU,
  // so with one CPU it equals the global clock and the lock never contends.
  Cycles LocalNow() const {
    return interleave_.local_now(current_cpu_) + (clock_.now() - cpu_epoch_);
  }
  // Accrues the outgoing CPU's elapsed work and resumes on `cpu`.
  void SwitchCpu(uint16_t cpu);

  Status ReferenceInternal(SegmentUid uid, uint32_t offset, AccessMode mode, Word* out, Word in,
                           int depth);

  BaselineConfig config_;
  Clock clock_;
  CostModel cost_{&clock_};
  Metrics metrics_;
  CallTracker tracker_;
  Tracer trace_{&clock_, &metrics_};
  Rng rng_;
  // Keyed by (AST slot, page): the supervisor translates through AST slots,
  // so a slot reused for a different segment must be invalidated.
  AssociativeMemory assoc_;
  CpuInterleave interleave_;
  SimSpinLock global_lock_;
  uint16_t current_cpu_ = 0;
  Cycles cpu_epoch_ = 0;  // global-clock value when current_cpu_ last resumed
  double effective_conflict_rate_ = 0;
  std::unique_ptr<PrimaryMemory> memory_;
  VolumeControl volumes_{&cost_, &metrics_, &trace_};
  ModuleId m_disk_, m_dir_, m_as_, m_seg_, m_page_, m_proc_;

  BNode root_;
  std::unordered_map<SegmentUid, BNode*> nodes_by_uid_;
  std::vector<BAstEntry> ast_;
  std::unordered_map<SegmentUid, uint32_t> ast_by_uid_;
  uint64_t lru_counter_ = 0;

  struct FrameInfo {
    bool in_use = false;
    uint32_t ast = UINT32_MAX;
    uint32_t page = 0;
  };
  std::vector<FrameInfo> frames_;
  std::vector<FrameIndex> free_list_;
  uint32_t clock_hand_ = 0;

  MetricId id_path_components_;
  MetricId id_segments_created_;
  MetricId id_deactivation_blocked_by_hierarchy_;
  MetricId id_activations_;
  MetricId id_deactivations_;
  MetricId id_evictions_;
  MetricId id_zero_reclaims_;
  MetricId id_writebacks_;
  MetricId id_quota_walk_hops_;
  MetricId id_growth_faults_;
  MetricId id_quota_overflows_;
  MetricId id_full_pack_moves_;
  MetricId id_page_faults_;
  MetricId id_retranslations_;
  MetricId id_retranslation_conflicts_;
  MetricId id_zero_page_reallocations_;
  MetricId id_state_load_failures_;
  MetricId id_state_loads_;
  MetricId id_aborted_processes_;
  MetricId id_links_snapped_;
  MetricId id_assoc_hits_;
  MetricId id_assoc_misses_;
  MetricId id_assoc_flushes_;
  MetricId id_lock_spin_cycles_;
  MetricId id_lock_contended_;
  TraceEventId ev_lock_spin_ = 0;
  TraceEventId ev_fault_service_ = 0;
  HistId hist_lock_spin_ = kNoHist;
  HistId hist_fault_service_ = kNoHist;

  bool global_lock_held_ = false;
  uint64_t lock_acquisitions_ = 0;
  uint64_t uid_counter_ = 1;
  std::unordered_map<ProcessId, BProcess> procs_;
  uint32_t next_pid_ = 1;
};

}  // namespace mks

#endif  // MKS_BASELINE_SUPERVISOR_H_
