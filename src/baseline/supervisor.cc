#include "src/baseline/supervisor.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace mks {

using namespace baseline_modules;

namespace {
// Cost of the software walk of the translation tables performed under the
// global lock ("page control interpretively retranslates the virtual
// address").
constexpr Cycles kRetranslationCost = 12;
constexpr Cycles kGlobalLockCost = 8;
constexpr int kMaxFaultDepth = 8;
}  // namespace

MonolithicSupervisor::MonolithicSupervisor(const BaselineConfig& config)
    : config_(config),
      rng_(config.seed),
      assoc_(config.associative_entries),
      interleave_(config.cpu_count, &metrics_),
      // Each extra processor is another writer that can alter the translation
      // tables between a fault and capture of the global lock.
      effective_conflict_rate_(std::min(
          1.0, config.retranslate_conflict_rate *
                   (config.cpu_count > 1 ? config.cpu_count - 1 : 1))),
      id_path_components_(metrics_.Intern("baseline.path_components")),
      id_segments_created_(metrics_.Intern("baseline.segments_created")),
      id_deactivation_blocked_by_hierarchy_(
          metrics_.Intern("baseline.deactivation_blocked_by_hierarchy")),
      id_activations_(metrics_.Intern("baseline.activations")),
      id_deactivations_(metrics_.Intern("baseline.deactivations")),
      id_evictions_(metrics_.Intern("baseline.evictions")),
      id_zero_reclaims_(metrics_.Intern("baseline.zero_reclaims")),
      id_writebacks_(metrics_.Intern("baseline.writebacks")),
      id_quota_walk_hops_(metrics_.Intern("baseline.quota_walk_hops")),
      id_growth_faults_(metrics_.Intern("baseline.growth_faults")),
      id_quota_overflows_(metrics_.Intern("baseline.quota_overflows")),
      id_full_pack_moves_(metrics_.Intern("baseline.full_pack_moves")),
      id_page_faults_(metrics_.Intern("baseline.page_faults")),
      id_retranslations_(metrics_.Intern("baseline.retranslations")),
      id_retranslation_conflicts_(metrics_.Intern("baseline.retranslation_conflicts")),
      id_zero_page_reallocations_(metrics_.Intern("baseline.zero_page_reallocations")),
      id_state_load_failures_(metrics_.Intern("baseline.state_load_failures")),
      id_state_loads_(metrics_.Intern("baseline.state_loads")),
      id_aborted_processes_(metrics_.Intern("baseline.aborted_processes")),
      id_links_snapped_(metrics_.Intern("baseline.links_snapped")),
      id_assoc_hits_(metrics_.Intern("baseline.assoc_hits")),
      id_assoc_misses_(metrics_.Intern("baseline.assoc_misses")),
      id_assoc_flushes_(metrics_.Intern("baseline.assoc_flushes")),
      id_lock_spin_cycles_(metrics_.Intern("baseline.lock_spin_cycles")),
      id_lock_contended_(metrics_.Intern("baseline.lock_contended")) {
  trace_.Enable(config.cpu_count, config.trace);
  global_lock_.ConfigureTicket(config.ticket_lock, config.ticket_handoff_cost);
  if (config.lock_policy != LockPolicy::kTestAndSet) {
    global_lock_.Configure(
        {config.lock_policy, config.lock_transfer_cost,
         config.anderson_slots != 0 ? config.anderson_slots : config.cpu_count});
  }
  ev_lock_spin_ = trace_.InternEvent("lock.spin");
  ev_fault_service_ = trace_.InternEvent("fault.page_service");
  hist_lock_spin_ = metrics_.InternHistogram("lock.spin_cycles");
  hist_fault_service_ = metrics_.InternHistogram("fault.service_cycles");
  m_disk_ = tracker_.Register(kDiskControl);
  m_dir_ = tracker_.Register(kDirectoryControl);
  m_as_ = tracker_.Register(kAddressSpaceControl);
  m_seg_ = tracker_.Register(kSegmentControl);
  m_page_ = tracker_.Register(kPageControl);
  m_proc_ = tracker_.Register(kProcessControl);
}

MonolithicSupervisor::~MonolithicSupervisor() = default;

Status MonolithicSupervisor::Boot() {
  memory_ = std::make_unique<PrimaryMemory>(config_.memory_frames, &cost_, &metrics_);
  for (uint16_t p = 0; p < config_.pack_count; ++p) {
    volumes_.AddPack(config_.records_per_pack, config_.vtoc_slots_per_pack);
  }
  ast_.assign(config_.ast_slots, BAstEntry{});
  frames_.assign(config_.memory_frames, FrameInfo{});
  free_list_.clear();
  for (uint32_t f = config_.memory_frames; f > 0; --f) {
    free_list_.push_back(FrameIndex(f - 1));
  }
  // The root directory: the permanent quota directory.
  MKS_ASSIGN_OR_RETURN(PackId pack, volumes_.ChoosePack());
  root_.is_directory = true;
  root_.uid = SegmentUid(uid_counter_++);
  root_.quota_directory = true;
  root_.quota_limit = config_.root_quota;
  root_.parent = nullptr;
  MKS_ASSIGN_OR_RETURN(VtocIndex vtoc, volumes_.pack(pack)->AllocateVtoc(root_.uid, true));
  root_.pack = pack;
  root_.vtoc = vtoc;
  nodes_by_uid_[root_.uid] = &root_;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Directory control: whole tree names are expanded inside the supervisor.
// ---------------------------------------------------------------------------

Result<MonolithicSupervisor::BNode*> MonolithicSupervisor::ResolveNode(const std::string& path) {
  CallTracker::Scope scope(&tracker_, m_dir_);
  BNode* node = &root_;
  std::istringstream stream(path);
  std::string component;
  while (std::getline(stream, component, '>')) {
    if (component.empty()) {
      continue;
    }
    cost_.Charge(CodeStyle::kOptimized, Costs::kProcedureCall * 3);  // per-component search
    metrics_.Inc(id_path_components_);
    auto it = node->children.find(component);
    if (it == node->children.end()) {
      return Status(Code::kNoEntry, component);
    }
    node = it->second.get();
  }
  return node;
}

MonolithicSupervisor::BNode* MonolithicSupervisor::FindNodeByUid(SegmentUid uid) {
  auto it = nodes_by_uid_.find(uid);
  return it == nodes_by_uid_.end() ? nullptr : it->second;
}

MonolithicSupervisor::BNode* MonolithicSupervisor::FindNodeByUidIn(BNode* node, SegmentUid uid) {
  if (node->uid == uid) {
    return node;
  }
  for (auto& [name, child] : node->children) {
    if (BNode* found = FindNodeByUidIn(child.get(), uid)) {
      return found;
    }
  }
  return nullptr;
}

Result<SegmentUid> MonolithicSupervisor::CreatePath(const std::string& path) {
  CallTracker::Scope scope(&tracker_, m_dir_);
  const size_t cut = path.find_last_of('>');
  const std::string dir_path = cut == std::string::npos ? "" : path.substr(0, cut);
  const std::string leaf = cut == std::string::npos ? path : path.substr(cut + 1);
  if (leaf.empty()) {
    return Status(Code::kInvalidArgument, "empty leaf name");
  }
  MKS_RETURN_IF_ERROR(CreateDirectoryPath(dir_path));
  auto parent = ResolveNode(dir_path);
  if (!parent.ok()) {
    return parent.status();
  }
  BNode* dir = *parent;
  if (dir->children.count(leaf) != 0) {
    return Status(Code::kNameDuplication, leaf);
  }
  MKS_ASSIGN_OR_RETURN(PackId pack, volumes_.ChoosePack());
  auto node = std::make_unique<BNode>();
  node->is_directory = false;
  node->uid = SegmentUid(uid_counter_++);
  node->parent = dir;
  node->name = leaf;
  MKS_ASSIGN_OR_RETURN(VtocIndex vtoc, volumes_.pack(pack)->AllocateVtoc(node->uid, false));
  node->pack = pack;
  node->vtoc = vtoc;
  const SegmentUid uid = node->uid;
  nodes_by_uid_[uid] = node.get();
  dir->children.emplace(leaf, std::move(node));
  metrics_.Inc(id_segments_created_);
  return uid;
}

Status MonolithicSupervisor::CreateDirectoryPath(const std::string& path) {
  CallTracker::Scope scope(&tracker_, m_dir_);
  BNode* node = &root_;
  std::istringstream stream(path);
  std::string component;
  while (std::getline(stream, component, '>')) {
    if (component.empty()) {
      continue;
    }
    auto it = node->children.find(component);
    if (it != node->children.end()) {
      if (!it->second->is_directory) {
        return Status(Code::kNotADirectory, component);
      }
      node = it->second.get();
      continue;
    }
    MKS_ASSIGN_OR_RETURN(PackId pack, volumes_.ChoosePack());
    auto child = std::make_unique<BNode>();
    child->is_directory = true;
    child->uid = SegmentUid(uid_counter_++);
    child->parent = node;
    child->name = component;
    MKS_ASSIGN_OR_RETURN(VtocIndex vtoc, volumes_.pack(pack)->AllocateVtoc(child->uid, true));
    child->pack = pack;
    child->vtoc = vtoc;
    nodes_by_uid_[child->uid] = child.get();
    BNode* raw = child.get();
    node->children.emplace(component, std::move(child));
    node = raw;
  }
  return Status::Ok();
}

Result<SegmentUid> MonolithicSupervisor::FileFound(const std::string& path) {
  auto node = ResolveNode(path);
  if (!node.ok()) {
    // The historical two-response rule: never confirm or deny intermediate
    // names; everything that fails is "no access".
    return Status(Code::kNoAccess, "no access");
  }
  return (*node)->uid;
}

Status MonolithicSupervisor::SetQuota(const std::string& dir_path, uint64_t limit) {
  CallTracker::Scope scope(&tracker_, m_dir_);
  MKS_ASSIGN_OR_RETURN(BNode * node, ResolveNode(dir_path));
  if (!node->is_directory) {
    return Status(Code::kNotADirectory, dir_path);
  }
  // The 1973 semantics: ANY directory may be designated dynamically, children
  // or not — which is exactly what forces the AST walk below.
  node->quota_directory = true;
  node->quota_limit = limit;
  const uint32_t ast = ast_by_uid_.count(node->uid) ? ast_by_uid_[node->uid] : UINT32_MAX;
  if (ast != UINT32_MAX) {
    ast_[ast].quota_directory = true;
    ast_[ast].quota_limit = limit;
  }
  return Status::Ok();
}

Result<uint64_t> MonolithicSupervisor::QuotaUsed(const std::string& dir_path) {
  MKS_ASSIGN_OR_RETURN(BNode * node, ResolveNode(dir_path));
  auto ast = EnsureActive(node);
  if (!ast.ok()) {
    return ast.status();
  }
  return ast_[*ast].quota_count;
}

// ---------------------------------------------------------------------------
// Segment control: the AST, constrained by the shape of the hierarchy.
// ---------------------------------------------------------------------------

Result<uint32_t> MonolithicSupervisor::AstOf(SegmentUid uid) {
  auto it = ast_by_uid_.find(uid);
  if (it == ast_by_uid_.end()) {
    return Status(Code::kNotFound, "not active");
  }
  return it->second;
}

Result<uint32_t> MonolithicSupervisor::EnsureActive(BNode* node) {
  auto it = ast_by_uid_.find(node->uid);
  if (it != ast_by_uid_.end()) {
    ast_[it->second].lru_stamp = ++lru_counter_;
    return it->second;
  }
  return Activate(node);
}

Result<uint32_t> MonolithicSupervisor::Activate(BNode* node) {
  CallTracker::Scope scope(&tracker_, m_seg_);
  cost_.Charge(CodeStyle::kOptimized, Costs::kProcedureCall * 4);
  // The parent directory must be active first, so the quota walk can follow
  // AST links — segment control's table is forced to mirror the hierarchy.
  uint32_t parent_ast = UINT32_MAX;
  if (node->parent != nullptr) {
    MKS_ASSIGN_OR_RETURN(parent_ast, EnsureActive(node->parent));
  }
  // Find a free slot, or evict the LRU entry that the hierarchy constraint
  // permits us to deactivate.
  uint32_t slot = UINT32_MAX;
  for (uint32_t i = 0; i < ast_.size(); ++i) {
    if (!ast_[i].in_use) {
      slot = i;
      break;
    }
  }
  if (slot == UINT32_MAX) {
    uint32_t victim = UINT32_MAX;
    for (uint32_t i = 0; i < ast_.size(); ++i) {
      const BAstEntry& e = ast_[i];
      if (e.connections != 0) {
        continue;
      }
      if (e.is_directory && e.active_inferiors != 0) {
        metrics_.Inc(id_deactivation_blocked_by_hierarchy_);
        continue;  // the constraint in action
      }
      if (victim == UINT32_MAX || e.lru_stamp < ast_[victim].lru_stamp) {
        victim = i;
      }
    }
    if (victim == UINT32_MAX) {
      return Status(Code::kResourceExhausted, "AST wedged by the hierarchy constraint");
    }
    MKS_RETURN_IF_ERROR(Deactivate(victim));
    slot = victim;
  }
  VtocEntry* entry = volumes_.pack(node->pack)->GetVtoc(node->vtoc);
  if (entry == nullptr) {
    return Status(Code::kInternal, "node without VTOC entry");
  }
  BAstEntry& ast = ast_[slot];
  ast.in_use = true;
  ast.uid = node->uid;
  ast.pack = node->pack;
  ast.vtoc = node->vtoc;
  ast.is_directory = node->is_directory;
  ast.parent_ast = parent_ast;
  ast.quota_directory = node->quota_directory;
  ast.quota_limit = node->quota_limit;
  ast.lru_stamp = ++lru_counter_;
  ast.page_table.owner = node->uid;
  ast.page_table.ptws.assign(entry->max_length_pages, Ptw{});
  for (uint32_t p = 0; p < entry->max_length_pages; ++p) {
    const FileMapEntry& fm = entry->file_map[p];
    Ptw& ptw = ast.page_table.ptws[p];
    ptw.unallocated = !(fm.allocated || fm.zero);
  }
  // Rebuild the cached quota count from the subtree's record usage is too
  // expensive; the count is persisted in the VTOC quota store.
  ast.quota_count = entry->quota.count;
  if (parent_ast != UINT32_MAX) {
    ++ast_[parent_ast].active_inferiors;
  }
  ast_by_uid_[node->uid] = slot;
  metrics_.Inc(id_activations_);
  return slot;
}

Status MonolithicSupervisor::Deactivate(uint32_t slot) {
  CallTracker::Scope scope(&tracker_, m_seg_);
  BAstEntry& ast = ast_[slot];
  if (!ast.in_use) {
    return Status(Code::kInvalidArgument, "bad AST slot");
  }
  if (ast.is_directory && ast.active_inferiors != 0) {
    return Status(Code::kFailedPrecondition, "directory has active inferiors");
  }
  for (uint32_t p = 0; p < ast.page_table.ptws.size(); ++p) {
    if (ast.page_table.ptws[p].in_core) {
      MKS_RETURN_IF_ERROR(CleanAndRelease(FrameIndex(ast.page_table.ptws[p].frame)));
    }
  }
  VtocEntry* entry = volumes_.pack(ast.pack)->GetVtoc(ast.vtoc);
  if (entry != nullptr) {
    entry->quota.count = ast.quota_count;
  }
  if (ast.parent_ast != UINT32_MAX && ast_[ast.parent_ast].in_use) {
    --ast_[ast.parent_ast].active_inferiors;
  }
  ast_by_uid_.erase(ast.uid);
  // The slot's page-table storage dies with the entry; drop every cached
  // translation through it before a reused slot can alias the old key.
  if (assoc_.InvalidateTag(slot) > 0) {
    metrics_.Inc(id_assoc_flushes_);
  }
  ast = BAstEntry{};
  metrics_.Inc(id_deactivations_);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Page control: global lock, interpretive retranslation, the quota walk, and
// the full-pack path reaching all the way back into directory control.
// ---------------------------------------------------------------------------

void MonolithicSupervisor::AcquireGlobalLock() {
  // If the lock was last freed at a virtual time this CPU has not reached
  // yet, the CPU busy-waits the difference away — real cycles, charged.
  // Structurally zero with one CPU (local time is globally monotone).
  const Cycles spin_begin = trace_.Begin();
  const Cycles spin = global_lock_.Acquire(LocalNow(), current_cpu_);
  if (spin > 0) {
    cost_.Charge(CodeStyle::kOptimized, spin);
    metrics_.Inc(id_lock_spin_cycles_, spin);
    metrics_.Inc(id_lock_contended_);
    trace_.CloseSpan(spin_begin, ev_lock_spin_, current_cpu_, 0, hist_lock_spin_);
  }
  cost_.Charge(CodeStyle::kOptimized, kGlobalLockCost);
  global_lock_held_ = true;
  ++lock_acquisitions_;
}

void MonolithicSupervisor::ReleaseGlobalLock() {
  global_lock_.Release(LocalNow());
  global_lock_held_ = false;
}

void MonolithicSupervisor::SwitchCpu(uint16_t cpu) {
  const Cycles elapsed = clock_.now() - cpu_epoch_;
  if (elapsed > 0) {
    interleave_.Accrue(current_cpu_, elapsed);
  }
  cpu_epoch_ = clock_.now();
  current_cpu_ = cpu;
  trace_.SetCpu(cpu);
}

Cycles MonolithicSupervisor::Makespan() {
  SwitchCpu(current_cpu_);  // fold in the tail of the running quantum
  return interleave_.Makespan();
}

void MonolithicSupervisor::AlignCpus() {
  SwitchCpu(current_cpu_);
  interleave_.AlignAll();
}

Result<FrameIndex> MonolithicSupervisor::AcquireFrame() {
  if (!free_list_.empty()) {
    FrameIndex f = free_list_.back();
    free_list_.pop_back();
    frames_[f.value].in_use = true;
    return f;
  }
  const uint32_t n = static_cast<uint32_t>(frames_.size());
  for (uint32_t step = 0; step < 2 * n; ++step) {
    const uint32_t slot = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    FrameInfo& fi = frames_[slot];
    if (!fi.in_use || fi.ast == UINT32_MAX) {
      continue;
    }
    Ptw& ptw = ast_[fi.ast].page_table.ptws[fi.page];
    if (ptw.used) {
      ptw.used = false;
      continue;
    }
    metrics_.Inc(id_evictions_);
    MKS_RETURN_IF_ERROR(CleanAndRelease(FrameIndex(slot)));
    FrameIndex f = free_list_.back();
    free_list_.pop_back();
    frames_[f.value].in_use = true;
    return f;
  }
  return Status(Code::kResourceExhausted, "no evictable frame");
}

Status MonolithicSupervisor::CleanAndRelease(FrameIndex frame) {
  FrameInfo& fi = frames_[frame.value];
  BAstEntry& ast = ast_[fi.ast];
  Ptw& ptw = ast.page_table.ptws[fi.page];
  VtocEntry* entry = volumes_.pack(ast.pack)->GetVtoc(ast.vtoc);
  if (entry == nullptr) {
    return Status(Code::kInternal, "resident page without VTOC entry");
  }
  FileMapEntry& fm = entry->file_map[fi.page];
  if (ptw.modified) {
    const bool zero = memory_->FrameIsZero(frame);
    if (zero) {
      if (fm.allocated) {
        volumes_.pack(ast.pack)->FreeRecord(fm.record);
        fm.allocated = false;
      }
      fm.zero = true;
      // The quota walk AGAIN, to refund the page — page control reaching
      // upward through segment control's data one more time.
      auto quota_ast = FindQuotaAst(fi.ast);
      if (quota_ast.ok() && ast_[*quota_ast].quota_count > 0) {
        --ast_[*quota_ast].quota_count;
      }
      metrics_.Inc(id_zero_reclaims_);
    } else {
      assert(fm.allocated);
      fm.zero = false;
      volumes_.pack(ast.pack)->WriteRecord(fm.record, memory_->FrameSpan(frame));
      metrics_.Inc(id_writebacks_);
    }
  }
  ptw.in_core = false;
  ptw.used = false;
  ptw.modified = false;
  if (assoc_.InvalidatePtw(&ptw) > 0) {
    metrics_.Inc(id_assoc_flushes_);
  }
  fi = FrameInfo{};
  free_list_.push_back(frame);
  return Status::Ok();
}

Result<uint32_t> MonolithicSupervisor::FindQuotaAst(uint32_t ast) {
  // Page control following segment control's AST links upward along the
  // directory hierarchy — the dependency the new design eliminates.
  CallTracker::Scope scope(&tracker_, m_seg_);
  uint32_t current = ast;
  for (int hops = 0; hops < 64; ++hops) {
    cost_.Charge(CodeStyle::kOptimized, Costs::kProcedureCall);
    metrics_.Inc(id_quota_walk_hops_);
    if (ast_[current].quota_directory) {
      return current;
    }
    if (ast_[current].parent_ast == UINT32_MAX) {
      return current;  // the root is always a quota directory
    }
    current = ast_[current].parent_ast;
  }
  return Status(Code::kInternal, "quota walk did not terminate");
}

Status MonolithicSupervisor::GrowPage(uint32_t ast_index, uint32_t page) {
  CallTracker::Scope scope(&tracker_, m_page_);
  metrics_.Inc(id_growth_faults_);
  MKS_ASSIGN_OR_RETURN(uint32_t quota_ast, FindQuotaAst(ast_index));
  BAstEntry& quota_entry = ast_[quota_ast];
  if (quota_entry.quota_count + 1 > quota_entry.quota_limit) {
    metrics_.Inc(id_quota_overflows_);
    return Status(Code::kQuotaOverflow, "quota");
  }
  BAstEntry& ast = ast_[ast_index];
  auto record = volumes_.pack(ast.pack)->AllocateRecord();
  if (record.code() == Code::kPackFull) {
    MKS_RETURN_IF_ERROR(HandleFullPack(ast_index, page));
    record = volumes_.pack(ast_[ast_index].pack)->AllocateRecord();
  }
  if (!record.ok()) {
    return record.status();
  }
  ++quota_entry.quota_count;
  VtocEntry* entry = volumes_.pack(ast.pack)->GetVtoc(ast.vtoc);
  FileMapEntry& fm = entry->file_map[page];
  fm.allocated = true;
  fm.zero = false;
  fm.record = *record;
  MKS_ASSIGN_OR_RETURN(FrameIndex frame, AcquireFrame());
  frames_[frame.value] = FrameInfo{true, ast_index, page};
  memory_->ZeroFrame(frame);
  Ptw& ptw = ast.page_table.ptws[page];
  ptw.frame = frame.value;
  ptw.in_core = true;
  ptw.unallocated = false;
  ptw.used = true;
  return Status::Ok();
}

Status MonolithicSupervisor::HandleFullPack(uint32_t ast_index, uint32_t page) {
  // Page control invokes segment control, which reads address space
  // control's data base to find the directory entry — and then updates the
  // entry directly.  Three modules deep in each other's pockets.
  CallTracker::Scope seg_scope(&tracker_, m_seg_);
  metrics_.Inc(id_full_pack_moves_);
  (void)page;
  BAstEntry& ast = ast_[ast_index];
  // Flush resident pages home.
  for (uint32_t p = 0; p < ast.page_table.ptws.size(); ++p) {
    if (ast.page_table.ptws[p].in_core) {
      MKS_RETURN_IF_ERROR(CleanAndRelease(FrameIndex(ast.page_table.ptws[p].frame)));
    }
  }
  DiskPack* old_pack = volumes_.pack(ast.pack);
  VtocEntry* old_entry = old_pack->GetVtoc(ast.vtoc);
  const uint32_t needed = old_entry->RecordsUsed() + 1;
  MKS_ASSIGN_OR_RETURN(PackId new_pack_id, volumes_.ChoosePackExcluding(ast.pack, needed));
  DiskPack* new_pack = volumes_.pack(new_pack_id);
  MKS_ASSIGN_OR_RETURN(VtocIndex new_vtoc,
                       new_pack->AllocateVtoc(ast.uid, old_entry->is_directory));
  VtocEntry* new_entry = new_pack->GetVtoc(new_vtoc);
  new_entry->max_length_pages = old_entry->max_length_pages;
  new_entry->quota = old_entry->quota;
  std::vector<Word> buffer(kPageWords);
  for (uint32_t p = 0; p < old_entry->file_map.size(); ++p) {
    const FileMapEntry& old_fm = old_entry->file_map[p];
    FileMapEntry& new_fm = new_entry->file_map[p];
    new_fm.zero = old_fm.zero;
    if (old_fm.allocated) {
      MKS_ASSIGN_OR_RETURN(RecordIndex rec, new_pack->AllocateRecord());
      old_pack->CopyRecord(old_fm.record, buffer);
      new_pack->StoreRecord(rec, buffer);
      cost_.Charge(CodeStyle::kOptimized, Costs::kDiskReadLatency + Costs::kDiskWriteLatency);
      new_fm.allocated = true;
      new_fm.record = rec;
    }
  }
  old_pack->FreeVtoc(ast.vtoc);
  ast.pack = new_pack_id;
  ast.vtoc = new_vtoc;
  {
    // Address space control consulted for the entry location, then the
    // directory entry rewritten in place, from DOWN here.
    CallTracker::Scope as_scope(&tracker_, m_as_);
    CallTracker::Scope dir_scope(&tracker_, m_dir_);
    BNode* node = FindNodeByUid(ast.uid);
    if (node == nullptr) {
      return Status(Code::kInternal, "moved segment has no tree node");
    }
    node->pack = new_pack_id;
    node->vtoc = new_vtoc;
  }
  return Status::Ok();
}

Status MonolithicSupervisor::HandleMissingPage(uint32_t ast_index, uint32_t page) {
  CallTracker::Scope scope(&tracker_, m_page_);
  Tracer::Span fault_span(&trace_, ev_fault_service_, ast_index, page,
                          hist_fault_service_);
  cost_.Charge(CodeStyle::kOptimized, Costs::kFaultEntry);
  metrics_.Inc(id_page_faults_);
  AcquireGlobalLock();
  // Interpretive retranslation: without a descriptor lock bit, page control
  // must re-walk segment control's and address space control's translation
  // tables to see whether the descriptor changed before the lock was won.
  {
    CallTracker::Scope seg_scope(&tracker_, m_seg_);
    CallTracker::Scope as_scope(&tracker_, m_as_);
    cost_.Charge(CodeStyle::kOptimized, kRetranslationCost);
    metrics_.Inc(id_retranslations_);
    if (rng_.NextBool(effective_conflict_rate_)) {
      // Another processor altered the tables; the descriptor is no longer
      // the one that faulted.  Drop the lock and let the reference retry.
      metrics_.Inc(id_retranslation_conflicts_);
      ReleaseGlobalLock();
      return Status::Ok();
    }
  }
  BAstEntry& ast = ast_[ast_index];
  Ptw& ptw = ast.page_table.ptws[page];
  if (ptw.in_core) {
    ReleaseGlobalLock();
    return Status::Ok();
  }
  Status result = Status::Ok();
  if (ptw.unallocated) {
    result = GrowPage(ast_index, page);
  } else {
    VtocEntry* entry = volumes_.pack(ast.pack)->GetVtoc(ast.vtoc);
    FileMapEntry& fm = entry->file_map[page];
    auto frame = AcquireFrame();
    if (!frame.ok()) {
      result = frame.status();
    } else {
      frames_[frame->value] = FrameInfo{true, ast_index, page};
      if (fm.zero && !fm.allocated) {
        // Reading a zero page: allocate and charge, the confinement leak.
        memory_->ZeroFrame(*frame);
        auto quota_ast = FindQuotaAst(ast_index);
        if (quota_ast.ok()) {
          ++ast_[*quota_ast].quota_count;
        }
        auto rec = volumes_.pack(ast.pack)->AllocateRecord();
        if (rec.ok()) {
          fm.allocated = true;
          fm.record = *rec;
          fm.zero = false;
          ptw.modified = true;
        }
        metrics_.Inc(id_zero_page_reallocations_);
      } else {
        volumes_.ReadRecordLazy(ast.pack, fm.record, memory_.get(), *frame);
      }
      ptw.frame = frame->value;
      ptw.in_core = true;
    }
  }
  ReleaseGlobalLock();
  // In the one-level design the faulting process gives the processor away —
  // page control calling process control.
  {
    CallTracker::Scope proc_scope(&tracker_, m_proc_);
    cost_.Charge(CodeStyle::kOptimized, Costs::kProcedureCall);
  }
  return result;
}

Status MonolithicSupervisor::ReferenceInternal(SegmentUid uid, uint32_t offset, AccessMode mode,
                                               Word* out, Word in, int depth) {
  if (depth > kMaxFaultDepth) {
    return Status(Code::kInternal, "fault recursion too deep");
  }
  BNode* node = FindNodeByUid(uid);
  if (node == nullptr) {
    return Status(Code::kNoAccess, "no access");
  }
  MKS_ASSIGN_OR_RETURN(uint32_t ast_index, EnsureActive(node));
  const uint32_t page = offset / kPageWords;
  if (page >= ast_[ast_index].page_table.ptws.size()) {
    return Status(Code::kOutOfBounds, "beyond maximum length");
  }
  const uint64_t assoc_key = AssociativeMemory::MakeKey(ast_index, page);
  for (int attempt = 0; attempt < kMaxFaultDepth; ++attempt) {
    // The retrofit associative memory: a hit is served only when the live PTW
    // is plainly resident, so faults still come from exactly the code below.
    if (assoc_.enabled()) {
      if (AssociativeMemory::Entry* cached = assoc_.Lookup(assoc_key)) {
        Ptw* aptw = cached->ptw;
        if (aptw->in_core && !aptw->unallocated && !aptw->locked) {
          cost_.Charge(CodeStyle::kOptimized, Costs::kAssocSearch);
          metrics_.Inc(id_assoc_hits_);
          const uint64_t abs =
              static_cast<uint64_t>(aptw->frame) * kPageWords + offset % kPageWords;
          aptw->used = true;
          if (mode == AccessMode::kRead) {
            *out = memory_->ReadWord(abs);
          } else {
            memory_->WriteWord(abs, in);
            aptw->modified = true;
          }
          return Status::Ok();
        }
        assoc_.InvalidateEntry(cached);
      }
      metrics_.Inc(id_assoc_misses_);
      cost_.Charge(CodeStyle::kOptimized, 2 * Costs::kDescriptorFetch);
    }
    cost_.Charge(CodeStyle::kOptimized, Costs::kAddressTranslation);
    // Re-look-up each attempt: the retranslation conflict path may have
    // changed nothing, or eviction may race us.
    Ptw& ptw = ast_[ast_index].page_table.ptws[page];
    if (ptw.in_core && !ptw.unallocated) {
      const uint64_t abs = static_cast<uint64_t>(ptw.frame) * kPageWords + offset % kPageWords;
      ptw.used = true;
      if (mode == AccessMode::kRead) {
        *out = memory_->ReadWord(abs);
      } else {
        memory_->WriteWord(abs, in);
        ptw.modified = true;
      }
      if (assoc_.enabled()) {
        assoc_.Insert(assoc_key, &ptw, true, true, true, 7);
      }
      return Status::Ok();
    }
    MKS_RETURN_IF_ERROR(HandleMissingPage(ast_index, page));
  }
  return Status(Code::kInternal, "reference did not settle");
}

Result<Word> MonolithicSupervisor::Read(SegmentUid uid, uint32_t offset) {
  Word value = 0;
  MKS_RETURN_IF_ERROR(ReferenceInternal(uid, offset, AccessMode::kRead, &value, 0, 0));
  return value;
}

Status MonolithicSupervisor::Write(SegmentUid uid, uint32_t offset, Word value) {
  return ReferenceInternal(uid, offset, AccessMode::kWrite, nullptr, value, 0);
}

// ---------------------------------------------------------------------------
// Process control: one level, states in pageable segments.
// ---------------------------------------------------------------------------

Result<ProcessId> MonolithicSupervisor::CreateProcess() {
  CallTracker::Scope scope(&tracker_, m_proc_);
  const ProcessId pid(next_pid_++);
  // The state segment lives in the hierarchy like any other segment.
  MKS_ASSIGN_OR_RETURN(SegmentUid state,
                       CreatePath(">system>processes>p" + std::to_string(pid.value)));
  BProcess proc;
  proc.pid = pid;
  proc.state_segment = state;
  procs_.emplace(pid, std::move(proc));
  return pid;
}

Status MonolithicSupervisor::SetProgram(ProcessId pid, std::vector<BaselineOp> program) {
  auto it = procs_.find(pid);
  if (it == procs_.end()) {
    return Status(Code::kNotFound, "no process");
  }
  it->second.program = std::move(program);
  it->second.pc = 0;
  it->second.done = false;
  return Status::Ok();
}

Status MonolithicSupervisor::TouchStateSegment(BProcess& proc, int depth) {
  // Process control depends on segment control to store process states; the
  // load itself may fault, which re-enters page control — the loop the
  // two-level design breaks.
  CallTracker::Scope scope(&tracker_, m_proc_);
  Word dummy = 0;
  Status st =
      ReferenceInternal(proc.state_segment, 0, AccessMode::kWrite, &dummy, proc.pc, depth);
  if (!st.ok()) {
    metrics_.Inc(id_state_load_failures_);
  } else {
    metrics_.Inc(id_state_loads_);
  }
  return st;
}

Status MonolithicSupervisor::RunUntilQuiescent(uint64_t max_passes) {
  constexpr uint32_t kQuantum = 16;
  for (uint64_t pass = 0; pass < max_passes; ++pass) {
    bool all_done = true;
    bool progressed = false;
    for (auto& [pid, proc] : procs_) {
      if (proc.done) {
        continue;
      }
      all_done = false;
      // This quantum runs on the CPU whose local clock is furthest behind —
      // the same deterministic interleaving the kernel scheduler uses.
      SwitchCpu(interleave_.NextCpu());
      {
        CallTracker::Scope scope(&tracker_, m_proc_);
        cost_.Charge(CodeStyle::kOptimized, Costs::kProcessSwitch);
      }
      MKS_RETURN_IF_ERROR(TouchStateSegment(proc, 1));
      for (uint32_t n = 0; n < kQuantum && proc.pc < proc.program.size(); ++n) {
        const BaselineOp& op = proc.program[proc.pc];
        Status st = Status::Ok();
        switch (op.kind) {
          case BaselineOp::Kind::kRead: {
            Word v = 0;
            st = ReferenceInternal(op.uid, op.offset, AccessMode::kRead, &v, 0, 0);
            break;
          }
          case BaselineOp::Kind::kWrite:
            st = ReferenceInternal(op.uid, op.offset, AccessMode::kWrite, nullptr, op.value, 0);
            break;
          case BaselineOp::Kind::kCompute:
            cost_.Charge(CodeStyle::kOptimized, op.compute);
            break;
        }
        if (!st.ok()) {
          proc.done = true;
          metrics_.Inc(id_aborted_processes_);
          break;
        }
        ++proc.pc;
        progressed = true;
      }
      if (proc.pc >= proc.program.size()) {
        proc.done = true;
      }
    }
    if (all_done) {
      return Status::Ok();
    }
    if (!progressed) {
      return Status(Code::kFailedPrecondition, "no progress");
    }
  }
  return Status(Code::kResourceExhausted, "pass budget exhausted");
}

// ---------------------------------------------------------------------------
// In-kernel services later extracted by the redesign projects.
// ---------------------------------------------------------------------------

Result<SegmentUid> MonolithicSupervisor::LinkSnap(ProcessId pid, const std::string& symbol,
                                                  const std::string& target_path) {
  auto it = procs_.find(pid);
  if (it == procs_.end()) {
    return Status(Code::kNotFound, "no process");
  }
  auto linked = it->second.linkage.find(symbol);
  if (linked != it->second.linkage.end()) {
    cost_.Charge(CodeStyle::kOptimized, Costs::kProcedureCall);  // snapped: fast path
    return linked->second;
  }
  // First reference: the whole search happens inside the supervisor.
  cost_.Charge(CodeStyle::kOptimized, Costs::kFaultEntry);  // linkage fault
  MKS_ASSIGN_OR_RETURN(SegmentUid uid, FileFound(target_path));
  it->second.linkage[symbol] = uid;
  metrics_.Inc(id_links_snapped_);
  return uid;
}

Status MonolithicSupervisor::NameBind(ProcessId pid, const std::string& name, SegmentUid uid) {
  auto it = procs_.find(pid);
  if (it == procs_.end()) {
    return Status(Code::kNotFound, "no process");
  }
  cost_.Charge(CodeStyle::kOptimized, Costs::kGateCall + Costs::kProcedureCall * 2);
  it->second.names[name] = uid;
  return Status::Ok();
}

Result<SegmentUid> MonolithicSupervisor::NameLookup(ProcessId pid, const std::string& name) {
  auto it = procs_.find(pid);
  if (it == procs_.end()) {
    return Status(Code::kNotFound, "no process");
  }
  // In-kernel lookup: a gate crossing plus a search of a kernel-resident
  // table grown large with every process's names.
  cost_.Charge(CodeStyle::kOptimized, Costs::kGateCall + Costs::kProcedureCall * 3);
  auto name_it = it->second.names.find(name);
  if (name_it == it->second.names.end()) {
    return Status(Code::kNotFound, name);
  }
  return name_it->second;
}

// ---------------------------------------------------------------------------
// The figures.
// ---------------------------------------------------------------------------

DependencyGraph MonolithicSupervisor::SuperficialStructure() {
  DependencyGraph g;
  g.AddModule(kDiskControl);
  g.AddModule(kDirectoryControl);
  g.AddModule(kAddressSpaceControl);
  g.AddModule(kSegmentControl);
  g.AddModule(kPageControl);
  g.AddModule(kProcessControl);
  // The almost-linear view.
  g.AddEdge(kDirectoryControl, kSegmentControl, DepKind::kComponent);
  g.AddEdge(kDirectoryControl, kDiskControl, DepKind::kMap);
  g.AddEdge(kAddressSpaceControl, kSegmentControl, DepKind::kComponent);
  g.AddEdge(kSegmentControl, kPageControl, DepKind::kComponent);
  g.AddEdge(kSegmentControl, kDiskControl, DepKind::kMap);
  g.AddEdge(kPageControl, kDiskControl, DepKind::kComponent);
  // The one obvious loop: page control gives the processor away on a fault;
  // process control stores inactive states in segments.
  g.AddEdge(kPageControl, kProcessControl, DepKind::kInterpreter);
  g.AddEdge(kProcessControl, kSegmentControl, DepKind::kComponent);
  return g;
}

DependencyGraph MonolithicSupervisor::ActualStructure() {
  DependencyGraph g = SuperficialStructure();
  // Maps, programs, and address spaces stored above their users.
  g.AddEdge(kPageControl, kSegmentControl, DepKind::kProgram);  // page control code in segments
  g.AddEdge(kPageControl, kAddressSpaceControl, DepKind::kAddressSpace);
  g.AddEdge(kSegmentControl, kAddressSpaceControl, DepKind::kMap);
  // The subtle exception-path loops the paper dissects:
  // (a) interpretive retranslation reads the translation tables.
  g.AddEdge(kPageControl, kSegmentControl, DepKind::kMap);
  g.AddEdge(kPageControl, kAddressSpaceControl, DepKind::kMap);
  // (b) the quota walk follows AST links shaped by the hierarchy.
  g.AddEdge(kPageControl, kSegmentControl, DepKind::kComponent);
  g.AddEdge(kSegmentControl, kDirectoryControl, DepKind::kMap);
  // (c) the full-pack path updates the directory entry from below.
  g.AddEdge(kSegmentControl, kDirectoryControl, DepKind::kComponent);
  return g;
}

}  // namespace mks
