// Disk volume control: demountable packs, record allocation, and the volume
// table of contents (VTOC).
//
// A directory entry in Multics names a segment by the identifier of its
// containing pack plus an index into that pack's table of contents; for
// robustness and demountability, all pages of a segment live on the same
// pack.  Growing a segment can therefore raise a full-pack exception, which
// forces relocation of the entire segment to an emptier pack and an update of
// the directory entry — the exception path whose dependency-loop cure the
// paper describes in detail.
//
// File maps record a zero flag per page: page-sized blocks of zeros are
// implemented by flags rather than stored records, the storage-charging
// feature whose confinement consequences the paper analyzes.
#ifndef MKS_DISK_PACK_H_
#define MKS_DISK_PACK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/hw/machine.h"
#include "src/sim/clock.h"
#include "src/sim/metrics.h"
#include "src/sim/trace.h"

namespace mks {

struct FileMapEntry {
  bool allocated = false;  // a disk record backs this page
  bool zero = false;       // page is all zeros; no record is consumed
  RecordIndex record{};
};

// Persistent image of a quota cell, stored in the VTOC entry of the
// associated quota directory (the new design's explicit home for quota).
struct QuotaCellStore {
  bool present = false;
  uint64_t limit = 0;
  uint64_t count = 0;
};

struct VtocEntry {
  bool in_use = false;
  SegmentUid uid{};
  bool is_directory = false;
  uint32_t max_length_pages = kMaxSegmentPages;
  std::vector<FileMapEntry> file_map;
  QuotaCellStore quota;

  // Number of pages that consume actual disk records (the storage charge).
  uint32_t RecordsUsed() const;
};

class DiskPack {
 public:
  DiskPack(PackId id, uint32_t record_count, uint32_t vtoc_slots, CostModel* cost,
           Metrics* metrics, Tracer* trace = nullptr);

  PackId id() const { return id_; }
  uint32_t record_count() const { return record_count_; }
  uint32_t free_records() const { return free_records_; }
  double FreeFraction() const {
    return static_cast<double>(free_records_) / static_cast<double>(record_count_);
  }

  Result<RecordIndex> AllocateRecord();
  void FreeRecord(RecordIndex record);

  // Record I/O; charges transfer latency to the clock.
  void ReadRecord(RecordIndex record, std::span<Word> out);
  void WriteRecord(RecordIndex record, std::span<const Word> in);
  // The accounting half of ReadRecord alone (latency charge + read metric),
  // for lazy fills whose data copy is deferred to first touch.
  void ChargeRead(RecordIndex record);

  // ---- Batched request queue (the anticipatory paging pipeline) ----
  //
  // Callers (the page daemons) post read/write requests and later dispatch
  // them in rounds.  A round pops up to `max_batch` requests, sorts them by
  // record index, and charges the arm-sweep cost model: the first record pays
  // the full latency, every further record in the sorted sweep pays only
  // kDiskBatchedTransfer.  Writes staged their data at queue time, so the
  // source frame may be reused immediately; completed read cookies are
  // returned for the caller to CopyRecord into the destination frame (the
  // transfer latency was charged here, so the copy itself is free).
  void QueueRead(RecordIndex record, uint64_t cookie);
  void QueueWrite(RecordIndex record, std::span<const Word> in, uint64_t cookie);
  size_t queued_io() const { return io_queue_.size(); }
  // Returns the number of requests dispatched (0 when the queue is empty).
  size_t DispatchBatch(size_t max_batch, std::vector<uint64_t>* completed_reads);
  // Data copy without a latency charge, for transfers whose simulated time
  // was accounted elsewhere (asynchronous completions, pack-to-pack moves).
  void CopyRecord(RecordIndex record, std::span<Word> out) const;
  void StoreRecord(RecordIndex record, std::span<const Word> in);
  // One word of a record without a copy or a charge (lazy-fill read-through).
  Word PeekWord(RecordIndex record, size_t index) const {
    const std::vector<Word>& data = record_data_[record.value];
    return index < data.size() ? data[index] : 0;
  }

  Result<VtocIndex> AllocateVtoc(SegmentUid uid, bool is_directory);
  // Frees the VTOC slot and every record its file map holds.
  void FreeVtoc(VtocIndex index);
  VtocEntry* GetVtoc(VtocIndex index);
  const VtocEntry* GetVtoc(VtocIndex index) const;
  uint32_t vtoc_slots() const { return static_cast<uint32_t>(vtoc_.size()); }
  uint32_t vtoc_in_use() const;

 private:
  struct IoRequest {
    bool write = false;
    RecordIndex record{};
    uint64_t cookie = 0;
    std::vector<Word> data;  // staged at queue time for writes
  };

  PackId id_;
  uint32_t record_count_;
  uint32_t free_records_;
  uint32_t alloc_cursor_ = 0;
  std::vector<bool> record_used_;
  std::vector<std::vector<Word>> record_data_;  // lazily sized per record
  std::vector<VtocEntry> vtoc_;
  std::vector<IoRequest> io_queue_;
  CostModel* cost_;
  Metrics* metrics_;
  Tracer* trace_;
  TraceEventId ev_batch_round_ = 0;
  MetricId id_pack_full_;
  MetricId id_records_allocated_;
  MetricId id_records_freed_;
  MetricId id_reads_;
  MetricId id_writes_;
  MetricId id_vtoc_allocated_;
  MetricId id_batch_dispatches_;
  MetricId id_batched_records_;
};

// The set of mounted packs plus placement policy.
//
// VolumeControl (not DiskPack) is the PageSource for lazy page fills: packs_
// may reallocate as packs are mounted, so a stable owner decodes the
// (pack, record) cookie at materialization time.
class VolumeControl : public PageSource {
 public:
  VolumeControl(CostModel* cost, Metrics* metrics, Tracer* trace = nullptr)
      : cost_(cost), metrics_(metrics), trace_(trace) {}

  PackId AddPack(uint32_t record_count, uint32_t vtoc_slots);
  DiskPack* pack(PackId id);
  const DiskPack* pack(PackId id) const;
  size_t pack_count() const { return packs_.size(); }

  // ReadRecord with the data copy deferred: charges the transfer now (the
  // simulated cost is position-dependent) and binds the frame to fill from
  // this record on first touch.
  void ReadRecordLazy(PackId id, RecordIndex record, PrimaryMemory* memory, FrameIndex frame);
  void FillPage(uint64_t cookie, std::span<Word> out) const override;
  Word ReadWordAt(uint64_t cookie, size_t index) const override {
    return packs_[static_cast<uint16_t>(cookie >> 32)].PeekWord(
        RecordIndex(static_cast<uint32_t>(cookie)), index);
  }

  // Placement for a new segment: the pack with the most free records that
  // still has a VTOC slot.  kPackFull when no pack has space.
  Result<PackId> ChoosePack() const;
  // Relocation target for a segment being moved off `exclude`: the emptiest
  // other pack with at least `needed_records` free.
  Result<PackId> ChoosePackExcluding(PackId exclude, uint32_t needed_records) const;

 private:
  std::vector<DiskPack> packs_;
  CostModel* cost_;
  Metrics* metrics_;
  Tracer* trace_ = nullptr;
};

}  // namespace mks

#endif  // MKS_DISK_PACK_H_
