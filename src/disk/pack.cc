#include "src/disk/pack.h"

#include <algorithm>
#include <cassert>

namespace mks {

uint32_t VtocEntry::RecordsUsed() const {
  uint32_t used = 0;
  for (const FileMapEntry& fm : file_map) {
    if (fm.allocated) {
      ++used;
    }
  }
  return used;
}

DiskPack::DiskPack(PackId id, uint32_t record_count, uint32_t vtoc_slots, CostModel* cost,
                   Metrics* metrics, Tracer* trace)
    : id_(id),
      record_count_(record_count),
      free_records_(record_count),
      record_used_(record_count, false),
      record_data_(record_count),
      vtoc_(vtoc_slots),
      cost_(cost),
      metrics_(metrics),
      trace_(trace),
      ev_batch_round_(trace != nullptr ? trace->InternEvent("disk.batch_round") : 0),
      id_pack_full_(metrics->Intern("disk.pack_full")),
      id_records_allocated_(metrics->Intern("disk.records_allocated")),
      id_records_freed_(metrics->Intern("disk.records_freed")),
      id_reads_(metrics->Intern("disk.reads")),
      id_writes_(metrics->Intern("disk.writes")),
      id_vtoc_allocated_(metrics->Intern("disk.vtoc_allocated")),
      id_batch_dispatches_(metrics->Intern("disk.batch_dispatches")),
      id_batched_records_(metrics->Intern("disk.batched_records")) {}

Result<RecordIndex> DiskPack::AllocateRecord() {
  if (free_records_ == 0) {
    metrics_->Inc(id_pack_full_);
    return Status(Code::kPackFull, "pack " + std::to_string(id_.value));
  }
  for (uint32_t i = 0; i < record_count_; ++i) {
    const uint32_t candidate = (alloc_cursor_ + i) % record_count_;
    if (!record_used_[candidate]) {
      record_used_[candidate] = true;
      alloc_cursor_ = candidate + 1;
      --free_records_;
      metrics_->Inc(id_records_allocated_);
      return RecordIndex(candidate);
    }
  }
  metrics_->Inc(id_pack_full_);
  return Status(Code::kPackFull, "pack " + std::to_string(id_.value));
}

void DiskPack::FreeRecord(RecordIndex record) {
  assert(record.value < record_count_ && record_used_[record.value]);
  record_used_[record.value] = false;
  record_data_[record.value].clear();
  record_data_[record.value].shrink_to_fit();
  ++free_records_;
  metrics_->Inc(id_records_freed_);
}

void DiskPack::ReadRecord(RecordIndex record, std::span<Word> out) {
  ChargeRead(record);
  CopyRecord(record, out);
}

void DiskPack::ChargeRead(RecordIndex record) {
  assert(record.value < record_count_);
  (void)record;
  cost_->Charge(CodeStyle::kOptimized, Costs::kDiskReadLatency);
  metrics_->Inc(id_reads_);
}

void DiskPack::WriteRecord(RecordIndex record, std::span<const Word> in) {
  assert(record.value < record_count_ && in.size() == kPageWords);
  cost_->Charge(CodeStyle::kOptimized, Costs::kDiskWriteLatency);
  metrics_->Inc(id_writes_);
  record_data_[record.value].assign(in.begin(), in.end());
}

void DiskPack::CopyRecord(RecordIndex record, std::span<Word> out) const {
  assert(record.value < record_count_ && out.size() == kPageWords);
  const std::vector<Word>& data = record_data_[record.value];
  const size_t have = std::min(data.size(), static_cast<size_t>(kPageWords));
  std::copy_n(data.begin(), have, out.begin());
  std::fill(out.begin() + have, out.end(), 0);
}

void DiskPack::StoreRecord(RecordIndex record, std::span<const Word> in) {
  assert(record.value < record_count_ && in.size() == kPageWords);
  record_data_[record.value].assign(in.begin(), in.end());
}

void DiskPack::QueueRead(RecordIndex record, uint64_t cookie) {
  assert(record.value < record_count_);
  io_queue_.push_back(IoRequest{false, record, cookie, {}});
}

void DiskPack::QueueWrite(RecordIndex record, std::span<const Word> in, uint64_t cookie) {
  assert(record.value < record_count_ && in.size() == kPageWords);
  IoRequest req{true, record, cookie, {}};
  req.data.assign(in.begin(), in.end());
  io_queue_.push_back(std::move(req));
}

size_t DiskPack::DispatchBatch(size_t max_batch, std::vector<uint64_t>* completed_reads) {
  if (io_queue_.empty() || max_batch == 0) {
    return 0;
  }
  const size_t take = io_queue_.size() < max_batch ? io_queue_.size() : max_batch;
  const Cycles trace_begin = trace_ != nullptr ? trace_->Begin() : 0;
  std::vector<IoRequest> round(std::make_move_iterator(io_queue_.begin()),
                               std::make_move_iterator(io_queue_.begin() + take));
  io_queue_.erase(io_queue_.begin(), io_queue_.begin() + take);
  // One arm sweep per round: service in record order so every request after
  // the first rides the same seek.
  std::sort(round.begin(), round.end(),
            [](const IoRequest& a, const IoRequest& b) { return a.record.value < b.record.value; });
  metrics_->Inc(id_batch_dispatches_);
  bool first = true;
  for (IoRequest& req : round) {
    if (first) {
      cost_->Charge(CodeStyle::kOptimized,
                    req.write ? Costs::kDiskWriteLatency : Costs::kDiskReadLatency);
      first = false;
    } else {
      cost_->Charge(CodeStyle::kOptimized, Costs::kDiskBatchedTransfer);
      metrics_->Inc(id_batched_records_);
    }
    if (req.write) {
      metrics_->Inc(id_writes_);
      record_data_[req.record.value] = std::move(req.data);
    } else {
      metrics_->Inc(id_reads_);
      if (completed_reads != nullptr) {
        completed_reads->push_back(req.cookie);
      }
    }
  }
  if (trace_ != nullptr) {
    trace_->CloseSpan(trace_begin, ev_batch_round_, id_.value,
                      static_cast<uint32_t>(take));
  }
  return take;
}

Result<VtocIndex> DiskPack::AllocateVtoc(SegmentUid uid, bool is_directory) {
  for (uint32_t i = 0; i < vtoc_.size(); ++i) {
    if (!vtoc_[i].in_use) {
      vtoc_[i] = VtocEntry{};
      vtoc_[i].in_use = true;
      vtoc_[i].uid = uid;
      vtoc_[i].is_directory = is_directory;
      vtoc_[i].file_map.resize(kMaxSegmentPages);
      metrics_->Inc(id_vtoc_allocated_);
      return VtocIndex(i);
    }
  }
  return Status(Code::kNoVtocSlot, "pack " + std::to_string(id_.value));
}

void DiskPack::FreeVtoc(VtocIndex index) {
  assert(index.value < vtoc_.size() && vtoc_[index.value].in_use);
  VtocEntry& entry = vtoc_[index.value];
  for (FileMapEntry& fm : entry.file_map) {
    if (fm.allocated) {
      FreeRecord(fm.record);
      fm.allocated = false;
    }
  }
  entry = VtocEntry{};
}

VtocEntry* DiskPack::GetVtoc(VtocIndex index) {
  if (index.value >= vtoc_.size() || !vtoc_[index.value].in_use) {
    return nullptr;
  }
  return &vtoc_[index.value];
}

const VtocEntry* DiskPack::GetVtoc(VtocIndex index) const {
  if (index.value >= vtoc_.size() || !vtoc_[index.value].in_use) {
    return nullptr;
  }
  return &vtoc_[index.value];
}

uint32_t DiskPack::vtoc_in_use() const {
  uint32_t used = 0;
  for (const VtocEntry& e : vtoc_) {
    if (e.in_use) {
      ++used;
    }
  }
  return used;
}

void VolumeControl::ReadRecordLazy(PackId id, RecordIndex record, PrimaryMemory* memory,
                                   FrameIndex frame) {
  pack(id)->ChargeRead(record);
  memory->BindPending(frame, this, (static_cast<uint64_t>(id.value) << 32) | record.value);
}

void VolumeControl::FillPage(uint64_t cookie, std::span<Word> out) const {
  const PackId id(static_cast<uint16_t>(cookie >> 32));
  const RecordIndex record(static_cast<uint32_t>(cookie));
  pack(id)->CopyRecord(record, out);
}

PackId VolumeControl::AddPack(uint32_t record_count, uint32_t vtoc_slots) {
  PackId id(static_cast<uint16_t>(packs_.size()));
  packs_.emplace_back(id, record_count, vtoc_slots, cost_, metrics_, trace_);
  return id;
}

DiskPack* VolumeControl::pack(PackId id) {
  assert(id.value < packs_.size());
  return &packs_[id.value];
}

const DiskPack* VolumeControl::pack(PackId id) const {
  assert(id.value < packs_.size());
  return &packs_[id.value];
}

Result<PackId> VolumeControl::ChoosePack() const {
  const DiskPack* best = nullptr;
  for (const DiskPack& p : packs_) {
    if (p.free_records() == 0 || p.vtoc_in_use() == p.vtoc_slots()) {
      continue;
    }
    if (best == nullptr || p.free_records() > best->free_records()) {
      best = &p;
    }
  }
  if (best == nullptr) {
    return Status(Code::kPackFull, "no pack with free space");
  }
  return best->id();
}

Result<PackId> VolumeControl::ChoosePackExcluding(PackId exclude,
                                                  uint32_t needed_records) const {
  const DiskPack* best = nullptr;
  for (const DiskPack& p : packs_) {
    if (p.id() == exclude || p.free_records() < needed_records ||
        p.vtoc_in_use() == p.vtoc_slots()) {
      continue;
    }
    if (best == nullptr || p.free_records() > best->free_records()) {
      best = &p;
    }
  }
  if (best == nullptr) {
    return Status(Code::kPackFull, "no relocation target");
  }
  return best->id();
}

}  // namespace mks
