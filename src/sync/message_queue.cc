#include "src/sync/message_queue.h"

#include <cassert>

namespace mks {

RealMemoryQueue::RealMemoryQueue(std::span<uint64_t> storage) : storage_(storage) {
  assert(storage.size() >= kHeaderWords + kSlotWords);
  capacity_ = (storage.size() - kHeaderWords) / kSlotWords;
  head() = 0;
  tail() = 0;
}

size_t RealMemoryQueue::size() const {
  return static_cast<size_t>(tail_value() - head_value());
}

Status RealMemoryQueue::Push(const UpwardMessage& msg) {
  if (size() >= capacity_) {
    ++dropped_;
    return Status(Code::kResourceExhausted, "real-memory queue full");
  }
  const size_t slot = kHeaderWords + (tail_value() % capacity_) * kSlotWords;
  storage_[slot] = msg.dest.value;
  storage_[slot + 1] = msg.code;
  storage_[slot + 2] = msg.payload;
  ++tail();
  return Status::Ok();
}

std::optional<UpwardMessage> RealMemoryQueue::Pop() {
  if (empty()) {
    return std::nullopt;
  }
  const size_t slot = kHeaderWords + (head_value() % capacity_) * kSlotWords;
  UpwardMessage msg;
  msg.dest = ProcessId(static_cast<uint32_t>(storage_[slot]));
  msg.code = storage_[slot + 1];
  msg.payload = storage_[slot + 2];
  ++head();
  return msg;
}

}  // namespace mks
