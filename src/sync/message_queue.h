// Reed's real-memory message queue [Reed, 1976].
//
// The key complicating factor of two-level process implementations: events
// discovered by low-level virtual processors must be signalled to user-level
// processes whose states are NOT guaranteed to be in real memory.  The fix is
// a fixed-size message queue placed in permanently-resident storage between
// the two processor multiplexers.  The level-1 side pushes (never blocking,
// never touching pageable storage); the level-2 scheduler drains.
//
// The queue is backed by a caller-supplied span of words — in the kernel this
// span comes from a core segment, so the residency claim is honest: every
// enqueue/dequeue is a read/write of permanently-resident words.
//
// Layout: word 0 = head (dequeue cursor), word 1 = tail (enqueue cursor),
// then capacity slots of kSlotWords words each.
#ifndef MKS_SYNC_MESSAGE_QUEUE_H_
#define MKS_SYNC_MESSAGE_QUEUE_H_

#include <cstdint>
#include <optional>
#include <span>

#include "src/common/ids.h"
#include "src/common/status.h"

namespace mks {

struct UpwardMessage {
  ProcessId dest{};    // the user process the event concerns
  uint64_t code = 0;   // event class (page-arrived, quota-settled, ...)
  uint64_t payload = 0;
};

class RealMemoryQueue {
 public:
  static constexpr size_t kHeaderWords = 2;
  static constexpr size_t kSlotWords = 3;

  // storage.size() must be at least kHeaderWords + kSlotWords.
  explicit RealMemoryQueue(std::span<uint64_t> storage);

  size_t capacity() const { return capacity_; }
  size_t size() const;
  bool empty() const { return size() == 0; }

  // kResourceExhausted when the queue is full: the fixed size is the design's
  // deliberate bound; callers at level 1 must treat overflow as a reportable
  // (counted) condition, never by blocking.
  Status Push(const UpwardMessage& msg);

  std::optional<UpwardMessage> Pop();

  uint64_t dropped() const { return dropped_; }
  void CountDrop() { ++dropped_; }

 private:
  uint64_t& head() { return storage_[0]; }
  uint64_t& tail() { return storage_[1]; }
  uint64_t head_value() const { return storage_[0]; }
  uint64_t tail_value() const { return storage_[1]; }

  std::span<uint64_t> storage_;
  size_t capacity_;
  uint64_t dropped_ = 0;
};

}  // namespace mks

#endif  // MKS_SYNC_MESSAGE_QUEUE_H_
