// A reader-writer lock in simulated time, with pluggable read-side policies.
//
// The naming surface (directory hierarchy, known segment tables) is
// read-mostly: the paper's traffic analysis has lookups dominating
// supervisor entries by orders of magnitude over mutations.  SimSharedLock
// models what that asymmetry is worth.  Like SimSpinLock, it never blocks a
// host thread — the simulation is serialized, so "contention" is computed
// from the acquirers' local virtual clocks and returned as spin cycles for
// the caller to charge to the cost model.
//
// ReadPolicy selects the read-side protocol:
//
//   kOff — the lock is un-modeled: every Acquire returns 0 and no counter
//     moves.  Default; byte-identical to the pre-lock naming paths, the same
//     default-off discipline every knob in this repo follows.
//   kExclusive — one lock word, readers and writers alike: an acquirer whose
//     local clock trails the last release point burns the gap, exactly
//     SimSpinLock's waiting-time arithmetic (kTestAndSet: gap only, no
//     handoff traffic).  This is the "every lookup serializes like a write"
//     baseline the read-mostly policies are measured against.
//   kPassiveRw — a passive reader-writer lock in the prwlock style
//     [Liu et al., USENIX ATC 2014]: each CPU holds a private read token, so
//     a contended read acquisition costs NO line transfers (it waits only
//     for an in-flight writer's critical section to end).  A writer must
//     revoke every outstanding token: it drains the token holders' read
//     sections and pays line_transfer_cost per *remote* reader CPU revoked
//     — the consensus messages of the real lock, priced on our interconnect.
//   kEpoch — epoch-based (RCU-style) lookups [Clements et al., ASPLOS 2012]:
//     a reader pins the current epoch for free — zero spin, zero traffic,
//     even while a writer is in flight (it reads the prior version).  A
//     writer serializes with other writers, publishes the new version as one
//     broadcast (line_transfer_cost to every other CPU — the same pricing as
//     a ProcessorPool connect broadcast), then waits out the grace period:
//     every read section that began before the publish must end (drain to
//     max read_until), plus epoch_grace_cost for the quiescence machinery.
//
// Grant order never changes across policies — the serialized simulation
// already orders every section — so a policy sweep runs the identical
// schedule and differs only in what waiting and traffic cost, the same
// apples-to-apples contract SimSpinLock's handoff policies keep.
//
// Reentrancy: one manager's public entry points nest (DeleteEntry calls
// RemoveQuota; HandleQuotaException calls RelocateUid), so the lock carries
// a section-depth counter and the RAII wrapper (src/kernel/shared_section.h)
// makes nested sections inert instead of self-deadlocking on the model.
#ifndef MKS_SYNC_SHARED_LOCK_H_
#define MKS_SYNC_SHARED_LOCK_H_

#include <cstdint>
#include <vector>

#include "src/sim/clock.h"

namespace mks {

enum class ReadPolicy : uint8_t { kOff, kExclusive, kPassiveRw, kEpoch };

inline const char* ReadPolicyName(ReadPolicy policy) {
  switch (policy) {
    case ReadPolicy::kOff:
      return "off";
    case ReadPolicy::kExclusive:
      return "exclusive";
    case ReadPolicy::kPassiveRw:
      return "passive_rw";
    case ReadPolicy::kEpoch:
      return "epoch";
  }
  return "?";
}

struct SharedLockConfig {
  ReadPolicy policy = ReadPolicy::kOff;
  // Cycles for one cache-line transfer across the interconnect (the same
  // quantity KernelConfig::connect_cost prices elsewhere).  0 makes token
  // revocation and epoch publication free.
  Cycles line_transfer_cost = 0;
  // kEpoch only: cycles a writer spends on quiescence detection after the
  // publish, on top of draining the read sections already in flight.
  Cycles epoch_grace_cost = 0;
  // CPUs that may touch the lock; sizes the per-CPU read state and the
  // epoch publish broadcast (cpu_count - 1 remote lines).
  uint16_t cpu_count = 1;
};

class SimSharedLock {
 public:
  // What one write acquisition cost, itemized so the caller can attribute
  // revocation traffic and grace waits to metrics and trace events.
  struct WriteGrant {
    Cycles total = 0;          // spin + traffic + grace: charge this
    uint16_t revoked_cpus = 0;  // kPassiveRw: remote read tokens revoked
    Cycles revocation_cycles = 0;
    Cycles publish_cycles = 0;  // kEpoch: the new-version broadcast
    Cycles grace_cycles = 0;    // kEpoch: drain + epoch_grace_cost
  };

  // Call before first use.  kOff keeps the lock fully inert.
  void Configure(const SharedLockConfig& config) {
    policy_ = config.policy;
    line_transfer_cost_ = config.line_transfer_cost;
    epoch_grace_cost_ = config.epoch_grace_cost;
    cpu_count_ = config.cpu_count == 0 ? 1 : config.cpu_count;
    read_until_.assign(cpu_count_, 0);
  }

  bool modeled() const { return policy_ != ReadPolicy::kOff; }
  ReadPolicy policy() const { return policy_; }

  // Begins a read section at local virtual time `local_now` on `cpu`;
  // returns the spin cycles the reader burns before its section may start.
  Cycles AcquireRead(Cycles local_now, uint16_t cpu) {
    if (policy_ == ReadPolicy::kOff) {
      return 0;
    }
    ++read_grants_;
    Cycles spin = 0;
    switch (policy_) {
      case ReadPolicy::kOff:
        break;
      case ReadPolicy::kExclusive:
        // One lock word for everyone: a read waits exactly like a write.
        if (excl_free_at_ > local_now) {
          spin = excl_free_at_ - local_now;
        }
        break;
      case ReadPolicy::kPassiveRw:
        // The token is CPU-private: no line moves.  Only an in-flight
        // writer's critical section holds the reader up.
        if (write_free_at_ > local_now) {
          spin = write_free_at_ - local_now;
        }
        tokens_ |= Bit(cpu);
        break;
      case ReadPolicy::kEpoch:
        // Pinning the epoch is free even against an in-flight writer: the
        // reader dereferences the prior version.
        break;
    }
    if (spin > 0) {
      ++contended_reads_;
      read_spin_cycles_ += spin;
    }
    return spin;
  }

  // Ends a read section at local virtual time `local_end` on `cpu` (as seen
  // by the reader after all work done inside the section).
  void ReleaseRead(Cycles local_end, uint16_t cpu) {
    switch (policy_) {
      case ReadPolicy::kOff:
        return;
      case ReadPolicy::kExclusive:
        if (local_end > excl_free_at_) {
          excl_free_at_ = local_end;
        }
        return;
      case ReadPolicy::kPassiveRw:
      case ReadPolicy::kEpoch:
        // What writers must drain: the latest read section this CPU ended.
        if (local_end > read_until_[cpu]) {
          read_until_[cpu] = local_end;
        }
        return;
    }
  }

  // Begins a write section at local virtual time `local_now` on `cpu`.
  WriteGrant AcquireWrite(Cycles local_now, uint16_t cpu) {
    WriteGrant grant;
    if (policy_ == ReadPolicy::kOff) {
      return grant;
    }
    ++write_grants_;
    Cycles start = local_now;
    switch (policy_) {
      case ReadPolicy::kOff:
        break;
      case ReadPolicy::kExclusive:
        if (excl_free_at_ > start) {
          start = excl_free_at_;
        }
        break;
      case ReadPolicy::kPassiveRw: {
        // Serialize behind the previous writer, drain every token holder's
        // read sections, then pay one line transfer per remote token
        // revoked.  The writer's own token dies locally for free.
        if (write_free_at_ > start) {
          start = write_free_at_;
        }
        for (uint16_t c = 0; c < cpu_count_; ++c) {
          if ((tokens_ & Bit(c)) == 0) {
            continue;
          }
          if (read_until_[c] > start) {
            start = read_until_[c];
          }
          if (c != cpu) {
            ++grant.revoked_cpus;
          }
        }
        tokens_ = 0;
        grant.revocation_cycles =
            static_cast<Cycles>(grant.revoked_cpus) * line_transfer_cost_;
        revoked_cpus_ += grant.revoked_cpus;
        revocation_cycles_ += grant.revocation_cycles;
        break;
      }
      case ReadPolicy::kEpoch: {
        // Serialize behind the previous writer, broadcast the new version
        // (one line to every other CPU), then wait out the grace period:
        // readers that pinned the old epoch must finish.
        if (write_free_at_ > start) {
          start = write_free_at_;
        }
        grant.publish_cycles =
            static_cast<Cycles>(cpu_count_ - 1) * line_transfer_cost_;
        publish_cycles_ += grant.publish_cycles;
        Cycles drained = start;
        for (uint16_t c = 0; c < cpu_count_; ++c) {
          if (read_until_[c] > drained) {
            drained = read_until_[c];
          }
        }
        grant.grace_cycles = (drained - start) + epoch_grace_cost_;
        if (grant.grace_cycles > 0) {
          ++grace_waits_;
          grace_cycles_ += grant.grace_cycles;
        }
        break;
      }
    }
    grant.total = (start - local_now) + grant.revocation_cycles +
                  grant.publish_cycles + grant.grace_cycles;
    if (grant.total > 0) {
      ++contended_writes_;
      write_spin_cycles_ += grant.total;
    }
    return grant;
  }

  // Ends a write section at local virtual time `local_end` (as seen by the
  // writer after all work done inside the section).
  void ReleaseWrite(Cycles local_end) {
    switch (policy_) {
      case ReadPolicy::kOff:
        return;
      case ReadPolicy::kExclusive:
        if (local_end > excl_free_at_) {
          excl_free_at_ = local_end;
        }
        return;
      case ReadPolicy::kPassiveRw:
      case ReadPolicy::kEpoch:
        if (local_end > write_free_at_) {
          write_free_at_ = local_end;
        }
        return;
    }
  }

  // Section-depth bookkeeping for the reentrant public entry points; see the
  // header comment.  EnterSection returns the depth before entry, so 0 means
  // "outermost — really acquire".
  uint32_t EnterSection() { return section_depth_++; }
  void ExitSection() { --section_depth_; }

  uint64_t read_grants() const { return read_grants_; }
  uint64_t contended_reads() const { return contended_reads_; }
  Cycles read_spin_cycles() const { return read_spin_cycles_; }
  uint64_t write_grants() const { return write_grants_; }
  uint64_t contended_writes() const { return contended_writes_; }
  Cycles write_spin_cycles() const { return write_spin_cycles_; }
  uint64_t revoked_cpus() const { return revoked_cpus_; }
  Cycles revocation_cycles() const { return revocation_cycles_; }
  Cycles publish_cycles() const { return publish_cycles_; }
  uint64_t grace_waits() const { return grace_waits_; }
  Cycles grace_cycles() const { return grace_cycles_; }

 private:
  static uint64_t Bit(uint16_t cpu) { return 1ull << (cpu & 63); }

  ReadPolicy policy_ = ReadPolicy::kOff;
  Cycles line_transfer_cost_ = 0;
  Cycles epoch_grace_cost_ = 0;
  uint16_t cpu_count_ = 1;
  uint32_t section_depth_ = 0;

  Cycles excl_free_at_ = 0;         // kExclusive: the one lock word
  Cycles write_free_at_ = 0;        // kPassiveRw/kEpoch: writer serialization
  uint64_t tokens_ = 0;             // kPassiveRw: CPUs holding a read token
  std::vector<Cycles> read_until_;  // per-CPU last read-section end

  uint64_t read_grants_ = 0;
  uint64_t contended_reads_ = 0;
  Cycles read_spin_cycles_ = 0;
  uint64_t write_grants_ = 0;
  uint64_t contended_writes_ = 0;
  Cycles write_spin_cycles_ = 0;
  uint64_t revoked_cpus_ = 0;
  Cycles revocation_cycles_ = 0;
  Cycles publish_cycles_ = 0;
  uint64_t grace_waits_ = 0;
  Cycles grace_cycles_ = 0;
};

}  // namespace mks

#endif  // MKS_SYNC_SHARED_LOCK_H_
