#include "src/sync/eventcount.h"

#include <algorithm>
#include <cassert>

namespace mks {

EventcountId EventcountTable::Create(std::string name) {
  EventcountId id(static_cast<uint32_t>(cells_.size()));
  cells_.push_back(Cell{std::move(name), 0, {}});
  return id;
}

uint64_t EventcountTable::Read(EventcountId ec) const {
  assert(ec.value < cells_.size());
  return cells_[ec.value].value;
}

std::vector<VpId> EventcountTable::Advance(EventcountId ec) {
  assert(ec.value < cells_.size());
  Cell& cell = cells_[ec.value];
  ++cell.value;
  metrics_->Inc(id_advances_);
  std::vector<VpId> woken;
  auto it = cell.waiters.begin();
  while (it != cell.waiters.end()) {
    if (it->target <= cell.value) {
      woken.push_back(it->vp);
      it = cell.waiters.erase(it);
    } else {
      ++it;
    }
  }
  metrics_->Inc(id_wakeups_, woken.size());
  return woken;
}

bool EventcountTable::AwaitOrEnqueue(EventcountId ec, uint64_t target, VpId waiter) {
  assert(ec.value < cells_.size());
  Cell& cell = cells_[ec.value];
  if (cell.value >= target) {
    return true;
  }
  cell.waiters.push_back(Waiter{waiter, target});
  metrics_->Inc(id_waits_);
  return false;
}

void EventcountTable::CancelWait(EventcountId ec, VpId waiter) {
  assert(ec.value < cells_.size());
  Cell& cell = cells_[ec.value];
  cell.waiters.erase(std::remove_if(cell.waiters.begin(), cell.waiters.end(),
                                    [&](const Waiter& w) { return w.vp == waiter; }),
                     cell.waiters.end());
}

size_t EventcountTable::WaiterCount(EventcountId ec) const {
  assert(ec.value < cells_.size());
  return cells_[ec.value].waiters.size();
}

const std::string& EventcountTable::Name(EventcountId ec) const {
  assert(ec.value < cells_.size());
  return cells_[ec.value].name;
}

}  // namespace mks
