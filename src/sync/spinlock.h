// A spin lock in simulated time, with pluggable waiter-handoff policies.
//
// The baseline supervisor has no descriptor lock bit, so colliding
// processors busy-wait at one global lock.  Under deterministic interleaving
// the CPUs never race on the host; contention is computed from their local
// virtual clocks instead: the lock remembers the virtual time its last holder
// released it (`free_at_`), and an acquirer whose local clock is still behind
// that point burns the difference as spin.  The caller charges those cycles
// to the cost model, so spinning is real simulated work — this is the
// mechanism by which the global lock serializes the pool and the baseline's
// speedup collapses as CPUs are added.
//
// With one CPU, local time is globally monotone, so an acquire can never
// observe `free_at_` in its future and the spin is structurally zero — the
// uniprocessor cost sequence is untouched.
//
// On top of that waiting-time model sits a *handoff traffic* model, selected
// by LockPolicy (the Mellor-Crummey & Scott progression).  Who runs next is
// unchanged — the serialized simulation already grants the lock in a total
// (FIFO) order — what differs between policies is the interconnect traffic a
// contended handoff generates, charged as extra cycles on top of the gap:
//
//   kTestAndSet — the traffic-blind model every prior PR measured against:
//     the gap is charged, line bouncing is not.  Default; byte-identical to
//     the pre-policy lock.
//   kTicket — all waiters spin on one `now_serving` word, so every release
//     invalidates the line in EVERY waiter's cache.  A waiter that sat
//     through k handoffs re-fetched the line k times: its acquire pays
//     k line transfers.  Summed over waiters this is the classic
//     O(waiters)-per-handoff broadcast.
//   kAnderson — an array lock: each waiter spins on its own slot, and the
//     releasing holder writes exactly one successor slot, so a contended
//     acquire pays exactly one line transfer regardless of queue depth.
//     The array is statically sized; more distinct CPUs than slots is a
//     hard error (the real lock would silently wrap and corrupt), so the
//     lock aborts loudly instead.
//   kMcs — a queue lock: each waiter spins on its own queue node and the
//     holder writes its successor's node.  Same O(1) handoff charge as
//     Anderson, but the queue is built from per-CPU nodes, so there is no
//     array bound.
//
// Grant (handoff) order is the arrival order of quanta in every policy —
// already a total order here — so switching policy never changes who runs
// next, only what the handoff costs.  That keeps the sweep apples-to-apples:
// one knob, identical schedules, different interconnect bills.
//
// ConfigureTicket is the PR 5 legacy ticket model (one fixed handoff charge
// per contended grant, used by BaselineConfig::ticket_lock); it is preserved
// byte-for-byte.  Configure(LockPolicyConfig) is the policy suite and takes
// precedence when both are set.
#ifndef MKS_SYNC_SPINLOCK_H_
#define MKS_SYNC_SPINLOCK_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>

#include "src/sim/clock.h"

namespace mks {

enum class LockPolicy : uint8_t { kTestAndSet, kTicket, kAnderson, kMcs };

inline const char* LockPolicyName(LockPolicy policy) {
  switch (policy) {
    case LockPolicy::kTestAndSet:
      return "tas";
    case LockPolicy::kTicket:
      return "ticket";
    case LockPolicy::kAnderson:
      return "anderson";
    case LockPolicy::kMcs:
      return "mcs";
  }
  return "?";
}

struct LockPolicyConfig {
  LockPolicy policy = LockPolicy::kTestAndSet;
  // Cycles for one cache-line transfer across the interconnect (the same
  // quantity KernelConfig::connect_cost prices elsewhere).  0 makes every
  // policy cost-free — useful for schedule-equivalence checks.
  Cycles line_transfer_cost = 0;
  // kAnderson only: slots in the spin array.  Must be >= the number of
  // distinct CPUs that will ever touch the lock; callers resolve 0 to the
  // pool size before configuring.
  uint16_t anderson_slots = 0;
};

class SimSpinLock {
 public:
  // Selects the handoff-traffic policy.  Call before first use; takes
  // precedence over ConfigureTicket.  kAnderson requires anderson_slots > 0.
  void Configure(const LockPolicyConfig& config) {
    policy_ = config.policy;
    line_transfer_cost_ = config.line_transfer_cost;
    anderson_slots_ = config.anderson_slots;
    if (policy_ == LockPolicy::kAnderson && anderson_slots_ == 0) {
      std::fprintf(stderr, "SimSpinLock: Anderson policy needs anderson_slots > 0\n");
      std::abort();
    }
    if (policy_ != LockPolicy::kTestAndSet) {
      ticket_ = false;  // the policy suite replaces the legacy ticket model
    }
  }

  // Legacy (PR 5) ticket mode: every contended acquisition additionally pays
  // a fixed `handoff_cost` cycles for the line transfer to the next ticket
  // holder.  Call before first use.  Kept byte-identical for
  // BaselineConfig::ticket_lock; the policy suite's kTicket instead charges
  // per observed handoff (the O(waiters) broadcast).
  void ConfigureTicket(bool enabled, Cycles handoff_cost) {
    ticket_ = enabled;
    handoff_cost_ = handoff_cost;
  }

  // Acquires at local virtual time `local_now` from CPU `cpu`; returns the
  // spin cycles the acquiring CPU burns before the lock comes free plus the
  // policy's handoff-traffic charge (0 when uncontended: the line is already
  // resident and no handoff happened).
  Cycles Acquire(Cycles local_now, uint16_t cpu = 0) {
    ++acquisitions_;
    last_acquire_handoff_ = 0;
    if (policy_ == LockPolicy::kAnderson) {
      NoteAndersonCpu(cpu);
    }
    Cycles spin = 0;
    if (free_at_ > local_now) {
      spin = free_at_ - local_now;
      ++contended_;
      if (ticket_) {
        spin += handoff_cost_;
        handoff_cycles_ += handoff_cost_;
        last_acquire_handoff_ = handoff_cost_;
        ++handoffs_;
      } else if (policy_ != LockPolicy::kTestAndSet) {
        // Handoffs this waiter sat through: recorded releases inside its
        // wait window (local_now, free_at_] — at least one, the grant to us.
        const uint64_t observed = GrantsSince(local_now);
        if (observed + 1 > max_queue_depth_) {
          max_queue_depth_ = observed + 1;
        }
        Cycles transfer = 0;
        if (policy_ == LockPolicy::kTicket) {
          // Every observed release invalidated our copy of now_serving; we
          // re-fetched the line each time.
          transfer = static_cast<Cycles>(observed) * line_transfer_cost_;
          handoffs_ += observed;
        } else {
          // Anderson/MCS: the releasing holder wrote our private slot/node —
          // exactly one line moved, however deep the queue was.
          transfer = line_transfer_cost_;
          ++handoffs_;
        }
        spin += transfer;
        handoff_cycles_ += transfer;
        last_acquire_handoff_ = transfer;
      }
      total_spin_ += spin;
      if (spin > max_spin_) {
        max_spin_ = spin;
      }
    }
    held_ = true;
    return spin;
  }

  // Releases at local virtual time `local_now` (as seen by the holder, after
  // all work done under the lock).
  void Release(Cycles local_now) {
    held_ = false;
    if (local_now > free_at_) {
      free_at_ = local_now;
    }
    if (policy_ != LockPolicy::kTestAndSet) {
      // The grant log the policies read: release points, monotone because
      // free_at_ never moves backward.  Bounded; a waiter whose window
      // reaches past the oldest kept entry undercounts (saturates), which
      // only ever under-charges the ticket broadcast.
      grants_.push_back(free_at_);
      if (grants_.size() > kGrantHistory) {
        grants_.pop_front();
      }
    }
  }

  bool held() const { return held_; }
  LockPolicy policy() const { return policy_; }
  uint64_t acquisitions() const { return acquisitions_; }
  uint64_t contended() const { return contended_; }
  Cycles total_spin() const { return total_spin_; }
  Cycles max_spin() const { return max_spin_; }
  uint64_t handoffs() const { return handoffs_; }
  Cycles handoff_cycles() const { return handoff_cycles_; }
  // Handoff-traffic portion of the most recent Acquire's return value, so
  // callers can attribute waiting (the gap) and coherence traffic (the
  // handoff) to different profiler domains without changing the total.
  Cycles last_acquire_handoff() const { return last_acquire_handoff_; }
  // Deepest observed wait queue (holder + waiters serviced inside one wait
  // window).  Can exceed the CPU count: a far-behind waiter's window spans
  // re-acquisitions by CPUs that cycled through more than once.
  uint64_t max_queue_depth() const { return max_queue_depth_; }

 private:
  static constexpr size_t kGrantHistory = 4096;

  uint64_t GrantsSince(Cycles since) const {
    return static_cast<uint64_t>(
        grants_.end() - std::upper_bound(grants_.begin(), grants_.end(), since));
  }

  // Anderson's static array admits one slot per CPU; a new CPU beyond the
  // array is the over-subscription bug class the real lock hits by silently
  // wrapping its index.  Fail loudly instead.
  void NoteAndersonCpu(uint16_t cpu) {
    const uint64_t bit = 1ull << (cpu & 63);
    if ((anderson_cpus_ & bit) == 0) {
      anderson_cpus_ |= bit;
      if (++anderson_cpu_count_ > anderson_slots_) {
        std::fprintf(stderr,
                     "SimSpinLock: Anderson array over-subscribed: CPU %u is the "
                     "%u-th distinct CPU on a %u-slot array\n",
                     static_cast<unsigned>(cpu),
                     static_cast<unsigned>(anderson_cpu_count_),
                     static_cast<unsigned>(anderson_slots_));
        std::abort();
      }
    }
  }

  Cycles free_at_ = 0;
  bool held_ = false;
  bool ticket_ = false;  // legacy fixed-handoff ticket mode (PR 5)
  LockPolicy policy_ = LockPolicy::kTestAndSet;
  Cycles handoff_cost_ = 0;
  Cycles line_transfer_cost_ = 0;
  uint16_t anderson_slots_ = 0;
  uint16_t anderson_cpu_count_ = 0;
  uint64_t anderson_cpus_ = 0;
  uint64_t acquisitions_ = 0;
  uint64_t contended_ = 0;
  Cycles total_spin_ = 0;
  Cycles max_spin_ = 0;
  uint64_t handoffs_ = 0;
  Cycles handoff_cycles_ = 0;
  Cycles last_acquire_handoff_ = 0;
  uint64_t max_queue_depth_ = 0;
  std::deque<Cycles> grants_;
};

}  // namespace mks

#endif  // MKS_SYNC_SPINLOCK_H_
