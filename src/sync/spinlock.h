// A spin lock in simulated time, for the baseline's global page-table lock.
//
// The baseline supervisor has no descriptor lock bit, so colliding
// processors busy-wait at one global lock.  Under deterministic interleaving
// the CPUs never race on the host; contention is computed from their local
// virtual clocks instead: the lock remembers the virtual time its last holder
// released it (`free_at_`), and an acquirer whose local clock is still behind
// that point burns the difference as spin.  The caller charges those cycles
// to the cost model, so spinning is real simulated work — this is the
// mechanism by which the global lock serializes the pool and the baseline's
// speedup collapses as CPUs are added.
//
// With one CPU, local time is globally monotone, so an acquire can never
// observe `free_at_` in its future and the spin is structurally zero — the
// uniprocessor cost sequence is untouched.
//
// The kernel side deliberately has no counterpart: colliding references hit
// the descriptor lock bit and park on the page's eventcount via the
// lock-address register, giving the processor away instead of spinning.
#ifndef MKS_SYNC_SPINLOCK_H_
#define MKS_SYNC_SPINLOCK_H_

#include <cstdint>

#include "src/sim/clock.h"

namespace mks {

class SimSpinLock {
 public:
  // Acquires at local virtual time `local_now`; returns the spin cycles the
  // acquiring CPU burns before the lock comes free (0 when uncontended).
  Cycles Acquire(Cycles local_now) {
    ++acquisitions_;
    Cycles spin = 0;
    if (free_at_ > local_now) {
      spin = free_at_ - local_now;
      ++contended_;
      total_spin_ += spin;
    }
    held_ = true;
    return spin;
  }

  // Releases at local virtual time `local_now` (as seen by the holder, after
  // all work done under the lock).
  void Release(Cycles local_now) {
    held_ = false;
    if (local_now > free_at_) {
      free_at_ = local_now;
    }
  }

  bool held() const { return held_; }
  uint64_t acquisitions() const { return acquisitions_; }
  uint64_t contended() const { return contended_; }
  Cycles total_spin() const { return total_spin_; }

 private:
  Cycles free_at_ = 0;
  bool held_ = false;
  uint64_t acquisitions_ = 0;
  uint64_t contended_ = 0;
  Cycles total_spin_ = 0;
};

}  // namespace mks

#endif  // MKS_SYNC_SPINLOCK_H_
