// A spin lock in simulated time, for the baseline's global page-table lock.
//
// The baseline supervisor has no descriptor lock bit, so colliding
// processors busy-wait at one global lock.  Under deterministic interleaving
// the CPUs never race on the host; contention is computed from their local
// virtual clocks instead: the lock remembers the virtual time its last holder
// released it (`free_at_`), and an acquirer whose local clock is still behind
// that point burns the difference as spin.  The caller charges those cycles
// to the cost model, so spinning is real simulated work — this is the
// mechanism by which the global lock serializes the pool and the baseline's
// speedup collapses as CPUs are added.
//
// With one CPU, local time is globally monotone, so an acquire can never
// observe `free_at_` in its future and the spin is structurally zero — the
// uniprocessor cost sequence is untouched.
//
// Ticket mode: the default grant order is the arrival order of quanta, which
// in this simulator is already a total order — the serialized dispatch means
// spinners are granted one at a time and can never overtake each other, so a
// FIFO ticket lock grants in the *same* order.  What a ticket lock changes on
// real hardware is the cost per handoff: the lock word migrates to exactly
// one waiter's cache per release (instead of a free-for-all), so every
// contended grant pays one cache-line transfer before the new holder
// proceeds.  ConfigureTicket models that: each contended acquisition adds a
// fixed handoff cost to the returned spin, and the handoffs are counted
// separately so fairness traffic is visible next to raw spin.  Uncontended
// acquisitions are unchanged — the line is already resident.
//
// The kernel side deliberately has no counterpart: colliding references hit
// the descriptor lock bit and park on the page's eventcount via the
// lock-address register, giving the processor away instead of spinning.
#ifndef MKS_SYNC_SPINLOCK_H_
#define MKS_SYNC_SPINLOCK_H_

#include <cstdint>

#include "src/sim/clock.h"

namespace mks {

class SimSpinLock {
 public:
  // Switches the lock to ticket (FIFO handoff) mode: every contended
  // acquisition additionally pays `handoff_cost` cycles for the line
  // transfer to the next ticket holder.  Call before first use.
  void ConfigureTicket(bool enabled, Cycles handoff_cost) {
    ticket_ = enabled;
    handoff_cost_ = handoff_cost;
  }

  // Acquires at local virtual time `local_now`; returns the spin cycles the
  // acquiring CPU burns before the lock comes free (0 when uncontended).
  Cycles Acquire(Cycles local_now) {
    ++acquisitions_;
    Cycles spin = 0;
    if (free_at_ > local_now) {
      spin = free_at_ - local_now;
      ++contended_;
      if (ticket_) {
        spin += handoff_cost_;
        handoff_cycles_ += handoff_cost_;
        ++handoffs_;
      }
      total_spin_ += spin;
      if (spin > max_spin_) {
        max_spin_ = spin;
      }
    }
    held_ = true;
    return spin;
  }

  // Releases at local virtual time `local_now` (as seen by the holder, after
  // all work done under the lock).
  void Release(Cycles local_now) {
    held_ = false;
    if (local_now > free_at_) {
      free_at_ = local_now;
    }
  }

  bool held() const { return held_; }
  uint64_t acquisitions() const { return acquisitions_; }
  uint64_t contended() const { return contended_; }
  Cycles total_spin() const { return total_spin_; }
  Cycles max_spin() const { return max_spin_; }
  uint64_t handoffs() const { return handoffs_; }
  Cycles handoff_cycles() const { return handoff_cycles_; }

 private:
  Cycles free_at_ = 0;
  bool held_ = false;
  bool ticket_ = false;
  Cycles handoff_cost_ = 0;
  uint64_t acquisitions_ = 0;
  uint64_t contended_ = 0;
  Cycles total_spin_ = 0;
  Cycles max_spin_ = 0;
  uint64_t handoffs_ = 0;
  Cycles handoff_cycles_ = 0;
};

}  // namespace mks

#endif  // MKS_SYNC_SPINLOCK_H_
