// Eventcounts and sequencers [Reed and Kanodia, 1977].
//
// The kernel design's synchronization primitive: an eventcount is a
// monotonically increasing counter; await(ec, t) suspends the caller until
// read(ec) >= t; advance(ec) signals the next event.  Crucially, the
// discoverer of an event need not know the identity of the processes
// awaiting it, which is what lets a low-level virtual processor signal
// upward without acquiring a dependency on the user-process implementation.
// Sequencers provide the total ordering (ticket) half of the pair.
#ifndef MKS_SYNC_EVENTCOUNT_H_
#define MKS_SYNC_EVENTCOUNT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/sim/metrics.h"

namespace mks {

class EventcountTable {
 public:
  explicit EventcountTable(Metrics* metrics)
      : metrics_(metrics),
        id_advances_(metrics->Intern("sync.advances")),
        id_wakeups_(metrics->Intern("sync.wakeups")),
        id_waits_(metrics->Intern("sync.waits")) {}

  EventcountId Create(std::string name);

  uint64_t Read(EventcountId ec) const;

  // Increments the count and removes (returning) every virtual processor
  // whose awaited target is now satisfied.
  std::vector<VpId> Advance(EventcountId ec);

  // If the count already satisfies `target`, returns true (caller proceeds).
  // Otherwise registers the caller and returns false (caller suspends).
  bool AwaitOrEnqueue(EventcountId ec, uint64_t target, VpId waiter);

  // Removes a registered waiter (used when a wakeup-waiting switch catches a
  // notification racing the wait primitive).
  void CancelWait(EventcountId ec, VpId waiter);

  size_t WaiterCount(EventcountId ec) const;
  const std::string& Name(EventcountId ec) const;
  size_t count() const { return cells_.size(); }

 private:
  struct Waiter {
    VpId vp;
    uint64_t target;
  };
  struct Cell {
    std::string name;
    uint64_t value = 0;
    std::vector<Waiter> waiters;
  };

  std::vector<Cell> cells_;
  Metrics* metrics_;
  MetricId id_advances_;
  MetricId id_wakeups_;
  MetricId id_waits_;
};

// A sequencer: issues strictly increasing tickets, pairing with eventcounts
// to build mutual exclusion and ordered services.
class Sequencer {
 public:
  uint64_t Ticket() { return next_++; }
  uint64_t next() const { return next_; }

 private:
  uint64_t next_ = 0;
};

}  // namespace mks

#endif  // MKS_SYNC_EVENTCOUNT_H_
