// The known segment manager: per-process segment-number bindings and the
// downward dispatch of segment, page, and quota exceptions.
//
// A "known" segment is one a process has initiated: the known segment table
// (KST) maps the process's segment numbers to segment unique identifiers,
// the segment's home (pack, VTOC index), the access modes granted at
// initiation, and — the quota redesign's key datum — the *static* name of
// the governing quota cell, supplied once by the directory layer.
//
// Exceptions reported by the hardware arrive here carrying only (process,
// segment number, page number); this manager owns the translation to a
// segment identity and initiates the chain of calls DOWN the dependency
// structure.  A full-pack exception discovered at the bottom is carried back
// up as a status and converted into a MoveSignal: a non-returning upward
// signal for the directory manager, delivered by the gate layer's trampoline
// with no activation records left pending below.
#ifndef MKS_KERNEL_KNOWN_SEGMENT_H_
#define MKS_KERNEL_KNOWN_SEGMENT_H_

#include <unordered_map>
#include <vector>

#include "src/kernel/address_space.h"
#include "src/kernel/shared_section.h"

namespace mks {

// Everything the layers above must supply to make a segment known.
struct SegmentHome {
  SegmentUid uid{};
  PackId pack{};
  VtocIndex vtoc{};
  QuotaCellId quota_cell = kNoQuotaCell;  // static governing-cell name
  bool is_directory = false;
};

struct KstEntry {
  bool valid = false;
  SegmentHome home;
  AccessModes modes;
  uint8_t ring_bracket = 4;
};

// The upward signal produced when a quota exception uncovered a full pack:
// the directory entry for `uid` must be rewritten to (new_pack, new_vtoc).
struct MoveSignal {
  bool valid = false;
  SegmentUid uid{};
  PackId new_pack{};
  VtocIndex new_vtoc{};
};

// Read/write classification of the KST surface (the read-mostly refactor):
//
//   reads  — Lookup, SegnoOf, HandleSegmentFault, HandleMissingPage: they
//            read a process's bindings and act through lower-level managers,
//            which keep their own serialization.
//   writes — CreateKst, DestroyKst, Initiate, Terminate, RelocateUid,
//            HandleQuotaException: they mutate KST entries or the table set.
//
// Each public entry point runs inside a SharedSection over one SimSharedLock
// shared by every KST; with ReadPolicy::kOff (the default) the sections are
// inert and the manager is byte-identical to its pre-lock behaviour.
class KnownSegmentManager {
 public:
  KnownSegmentManager(KernelContext* ctx, SegmentManager* segs, AddressSpaceManager* spaces);

  // Selects the read-mostly policy for the KST lock (called by Kernel).
  void ConfigureReadMostly(const SharedLockConfig& config) { rml_.Configure(config); }
  const SimSharedLock& kst_lock() const { return rml_; }

  Status CreateKst(ProcessId pid);
  Status DestroyKst(ProcessId pid);

  // Clears every binding except `keep` (the process-state segment), leaving
  // the KST itself allocated — the slab-pooling fast path for process-slot
  // reuse.  One write section; present SDWs are disconnected first so the
  // recycled slot cannot reference the prior occupant's segments.
  Status ResetKst(ProcessId pid, Segno keep);

  // Assigns the lowest free user segment number and records the binding.
  // Connection to the address space is lazy (via the segment fault path).
  Result<Segno> Initiate(ProcessId pid, const SegmentHome& home, AccessModes modes,
                         uint8_t ring_bracket);
  Status Terminate(ProcessId pid, Segno segno);

  const KstEntry* Lookup(ProcessId pid, Segno segno) const;
  // Finds the segno a process has bound to `uid`, if any.
  Result<Segno> SegnoOf(ProcessId pid, SegmentUid uid) const;

  // After a relocation, rewrites every process's KST binding for `uid` to
  // the new home — the write side of the KST surface.  Public so the
  // relocation chain (and tests) can drive it against concurrent Lookups;
  // HandleQuotaException invokes it on the full-pack path.
  void RelocateUid(SegmentUid uid, PackId pack, VtocIndex vtoc);

  // --- exception dispatch (invoked by the gate layer's fault loop) ---

  // Missing segment: activate if necessary and connect the SDW.
  Status HandleSegmentFault(ProcessId pid, Segno segno);

  // Missing page: resolve to the active segment and delegate downward.
  Status HandleMissingPage(ProcessId pid, Segno segno, uint32_t page, WaitSpec* wait);

  // Quota exception (a reference to a never-before-used page).  Translates
  // the segment number, finds the governing quota cell by its static name,
  // and drives the grow chain.  On a full pack: disconnects every address
  // space, directs relocation, retries the growth on the new pack, and fills
  // *signal for the upward trampoline.
  Status HandleQuotaException(ProcessId pid, Segno segno, uint32_t page, MoveSignal* signal,
                              WaitSpec* wait);

 private:
  struct Kst {
    std::vector<KstEntry> entries;  // indexed by segno - kSystemSegnoLimit
  };

  KstEntry* Find(ProcessId pid, Segno segno);

  KernelContext* ctx_;
  ModuleId self_;
  SegmentManager* segs_;
  AddressSpaceManager* spaces_;
  // The KST lock and its instruments; mutable because the read side
  // (Lookup, SegnoOf) is const.
  mutable SimSharedLock rml_;
  ReadMostlyInstruments rmi_;
  MetricId id_initiates_;
  MetricId id_terminates_;
  MetricId id_segment_faults_;
  MetricId id_quota_exceptions_;
  MetricId id_full_pack_moves_;
  MetricId id_kst_resets_;
  uint16_t kst_size_ = 0;
  std::unordered_map<ProcessId, Kst> ksts_;
};

}  // namespace mks

#endif  // MKS_KERNEL_KNOWN_SEGMENT_H_
