// The gate keeper: the ring-0 interface of the kernel, and the fault
// dispatcher.
//
// Every operation a user-domain program may request of the kernel enters
// here; the reference monitor is consulted inside the managers, and the
// fault dispatcher below turns hardware exceptions into the downward call
// chains of the new design.  Two paper mechanisms live here:
//
//  * the fault loop — a memory reference retries after each serviced
//    exception (missing segment, missing page, quota), up to a bound;
//  * the upward-signal trampoline — when the quota chain reports that a
//    segment was moved to a new pack, the dispatcher (not the modules below)
//    transfers control to the directory manager to rewrite the entry, with
//    no kernel activation records pending underneath.
//
// A memory reference that must wait (asynchronous paging) returns kBlocked
// and records what to await in the caller's ProcContext; the user process
// manager parks the process and the real-memory message queue wakes it.
#ifndef MKS_KERNEL_GATES_H_
#define MKS_KERNEL_GATES_H_

#include <string>
#include <vector>

#include "src/kernel/directory.h"

namespace mks {

// Per-request context: who is asking, and (after a kBlocked return) what the
// caller must await before retrying.
struct ProcContext {
  ProcessId pid{};  // ProcessId{0} denotes kernel-internal references
  Subject subject;
  WaitSpec pending_wait;
};

// `arg` values of the gate.call trace instant — which gate was crossed.
enum class GateOp : uint32_t {
  kSearch = 0,
  kCreateSegment,
  kCreateDirectory,
  kDelete,
  kRename,
  kSetAcl,
  kListNames,
  kSetQuota,
  kRemoveQuota,
  kGetQuota,
  kInitiate,
  kTerminate,
  kCreateEventcount,
  kAdvanceEventcount,
  kReadEventcount,
  kAwaitEventcount,
};

// Read/write classification of the gate surface, shared by the kernel's
// read-mostly tagging and the user-ring walker's attribution: a read-class
// gate observes naming or eventcount state; everything else mutates it.
// (Await is an observe — the mandatory-policy direction the gates enforce —
// and touches no naming structure.)
constexpr bool GateOpIsRead(GateOp op) {
  switch (op) {
    case GateOp::kSearch:
    case GateOp::kListNames:
    case GateOp::kGetQuota:
    case GateOp::kReadEventcount:
    case GateOp::kAwaitEventcount:
      return true;
    default:
      return false;
  }
}

class KernelGates {
 public:
  KernelGates(KernelContext* ctx, VirtualProcessorManager* vpm, PageFrameManager* pfm,
              SegmentManager* segs, AddressSpaceManager* spaces, KnownSegmentManager* ksm,
              DirectoryManager* dirs);

  // --- naming gates ---
  EntryId RootId() const { return dirs_->RootId(); }
  Result<EntryId> Search(ProcContext& ctx, EntryId dir, std::string_view name);
  Result<EntryId> CreateSegment(ProcContext& ctx, EntryId dir, std::string name, Acl acl,
                                Label label);
  Result<EntryId> CreateDirectory(ProcContext& ctx, EntryId dir, std::string name, Acl acl,
                                  Label label);
  Status Delete(ProcContext& ctx, EntryId dir, std::string_view name);
  Status Rename(ProcContext& ctx, EntryId dir, std::string_view old_name, std::string new_name);
  Status SetAcl(ProcContext& ctx, EntryId dir, std::string_view name, Acl acl);
  Status ListNames(ProcContext& ctx, EntryId dir, std::vector<std::string>* out);
  Status SetQuota(ProcContext& ctx, EntryId dir, uint64_t limit);
  Status RemoveQuota(ProcContext& ctx, EntryId dir);
  Result<QuotaStatus> GetQuota(ProcContext& ctx, EntryId dir);

  // --- address space gates ---
  Result<Segno> Initiate(ProcContext& ctx, EntryId target);
  Status Terminate(ProcContext& ctx, Segno segno);

  // --- memory references (enter the fault dispatcher) ---
  Result<Word> Read(ProcContext& ctx, Segno segno, uint32_t offset);
  Status Write(ProcContext& ctx, Segno segno, uint32_t offset, Word value);

  // --- user-visible eventcounts [Reed and Kanodia, 1977] ---
  // Overt inter-process communication with mandatory-policy checks: an
  // advance is a modify (the eventcount's label must dominate the
  // advancer's), a read/await is an observe (the subject must dominate the
  // eventcount's label), so signalling cannot move information downward.
  Result<EventcountId> CreateEventcount(ProcContext& ctx, Label label);
  Status AdvanceEventcount(ProcContext& ctx, EventcountId ec);
  Result<uint64_t> ReadEventcount(ProcContext& ctx, EventcountId ec);
  // kBlocked (with ctx.pending_wait filled) when the target lies ahead.
  Status AwaitEventcount(ProcContext& ctx, EventcountId ec, uint64_t target);

  // Number of fault-loop iterations tolerated before declaring the reference
  // wedged (diagnostic bound, not a real-machine artifact).
  static constexpr int kMaxFaultIterations = 64;

  // Read/write tagging of gate crossings (on when a read-mostly policy is
  // selected): each gate call additionally lands on a gate.read/gate.write
  // counter and trace event, so the tracer can attribute read-side vs
  // write-side cycles.  Off (default) keeps TraceGate byte-identical.
  void EnableReadWriteTagging(bool on) { classify_gate_ops_ = on; }

 private:
  Status Reference(ProcContext& ctx, Segno segno, uint32_t offset, AccessMode mode, Word* out,
                   Word in);

  // Records a ring crossing as a gate.call instant (proc = pid, arg = op),
  // plus its read/write classification when tagging is enabled.
  void TraceGate(const ProcContext& ctx, GateOp op) {
    ctx_->trace.Instant(ev_gate_call_, ctx.pid.value, static_cast<uint32_t>(op));
    if (classify_gate_ops_) {
      const bool read = GateOpIsRead(op);
      ctx_->metrics.Inc(read ? id_read_gate_ops_ : id_write_gate_ops_);
      ctx_->trace.Instant(read ? ev_gate_read_ : ev_gate_write_, ctx.pid.value,
                          static_cast<uint32_t>(op));
    }
  }

  struct UserEventcount {
    bool valid = false;
    Label label;
  };

  KernelContext* ctx_;
  ModuleId self_;
  std::vector<UserEventcount> user_eventcounts_;  // indexed by EventcountId
  VirtualProcessorManager* vpm_;
  PageFrameManager* pfm_;
  SegmentManager* segs_;
  AddressSpaceManager* spaces_;
  KnownSegmentManager* ksm_;
  DirectoryManager* dirs_;
  MetricId id_user_advances_;
  MetricId id_user_awaits_;
  MetricId id_upward_signals_;
  MetricId id_locked_descriptor_waits_;
  MetricId id_read_gate_ops_;
  MetricId id_write_gate_ops_;
  TraceEventId ev_gate_call_;
  TraceEventId ev_gate_read_;
  TraceEventId ev_gate_write_;
  TraceEventId ev_reference_;
  TraceEventId ev_locked_park_;
  HistId hist_reference_;
  bool classify_gate_ops_ = false;
};

}  // namespace mks

#endif  // MKS_KERNEL_GATES_H_
