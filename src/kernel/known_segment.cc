#include "src/kernel/known_segment.h"

namespace mks {

KnownSegmentManager::KnownSegmentManager(KernelContext* ctx, SegmentManager* segs,
                                         AddressSpaceManager* spaces)
    : ctx_(ctx),
      self_(ctx->tracker.Register(module_names::kKnownSegment)),
      segs_(segs),
      spaces_(spaces),
      id_initiates_(ctx->metrics.Intern("ksm.initiates")),
      id_terminates_(ctx->metrics.Intern("ksm.terminates")),
      id_segment_faults_(ctx->metrics.Intern("ksm.segment_faults")),
      id_quota_exceptions_(ctx->metrics.Intern("ksm.quota_exceptions")),
      id_full_pack_moves_(ctx->metrics.Intern("ksm.full_pack_moves")),
      id_kst_resets_(ctx->metrics.Intern("ksm.kst_resets")) {
  // The KST rides the directory domains: it is the per-process face of the
  // naming surface, and the profiler wants "naming, read side" as one number.
  rmi_.Init(ctx, "ksm", ProfDomain::kDirectoryRead, ProfDomain::kDirectoryWrite);
}

Status KnownSegmentManager::CreateKst(ProcessId pid) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kWrite, rmi_);
  if (ksts_.count(pid) != 0) {
    return Status(Code::kAlreadyExists, "KST exists");
  }
  MKS_RETURN_IF_ERROR(spaces_->CreateSpace(pid));
  DescriptorSegment* ds = spaces_->Space(pid);
  kst_size_ = static_cast<uint16_t>(ds->sdws.size());
  Kst kst;
  kst.entries.assign(kst_size_, KstEntry{});
  ksts_.emplace(pid, std::move(kst));
  return Status::Ok();
}

Status KnownSegmentManager::DestroyKst(ProcessId pid) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kWrite, rmi_);
  auto it = ksts_.find(pid);
  if (it == ksts_.end()) {
    return Status(Code::kNotFound, "no KST");
  }
  MKS_RETURN_IF_ERROR(spaces_->DestroySpace(pid));
  ksts_.erase(it);
  return Status::Ok();
}

Status KnownSegmentManager::ResetKst(ProcessId pid, Segno keep) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kProcedureCall * 2);
  // Check-then-clear: scan under a read section first, and only pay the
  // write side when a binding actually needs clearing.  A process that
  // initiated nothing beyond its state record — the common slab-reuse case —
  // resets without excluding the naming surface's readers.
  bool dirty = false;
  {
    SharedSection section(&rml_, ctx_, SharedSection::Kind::kRead, rmi_);
    auto it = ksts_.find(pid);
    if (it == ksts_.end()) {
      return Status(Code::kNotFound, "no KST");
    }
    for (uint16_t i = 0; i < it->second.entries.size(); ++i) {
      const uint16_t segno = static_cast<uint16_t>(kSystemSegnoLimit + i);
      if (it->second.entries[i].valid && segno != keep.value) {
        dirty = true;
        break;
      }
    }
  }
  ctx_->metrics.Inc(id_kst_resets_);
  if (!dirty) {
    return Status::Ok();
  }
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kWrite, rmi_);
  auto it = ksts_.find(pid);
  DescriptorSegment* ds = spaces_->Space(pid);
  Kst& kst = it->second;
  for (uint16_t i = 0; i < kst.entries.size(); ++i) {
    const Segno segno(static_cast<uint16_t>(kSystemSegnoLimit + i));
    if (!kst.entries[i].valid || segno.value == keep.value) {
      continue;
    }
    if (ds != nullptr && ds->sdws[i].present) {
      MKS_RETURN_IF_ERROR(spaces_->Disconnect(pid, segno));
    }
    kst.entries[i] = KstEntry{};
    ctx_->metrics.Inc(id_terminates_);
  }
  return Status::Ok();
}

Result<Segno> KnownSegmentManager::Initiate(ProcessId pid, const SegmentHome& home,
                                            AccessModes modes, uint8_t ring_bracket) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kWrite, rmi_);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kProcedureCall * 2);
  auto it = ksts_.find(pid);
  if (it == ksts_.end()) {
    return Status(Code::kNotFound, "no KST for process");
  }
  Kst& kst = it->second;
  // Re-initiating the same segment returns the existing binding.
  for (uint16_t i = 0; i < kst.entries.size(); ++i) {
    if (kst.entries[i].valid && kst.entries[i].home.uid == home.uid) {
      return Segno(static_cast<uint16_t>(kSystemSegnoLimit + i));
    }
  }
  for (uint16_t i = 0; i < kst.entries.size(); ++i) {
    if (!kst.entries[i].valid) {
      kst.entries[i] = KstEntry{true, home, modes, ring_bracket};
      ctx_->metrics.Inc(id_initiates_);
      return Segno(static_cast<uint16_t>(kSystemSegnoLimit + i));
    }
  }
  return Status(Code::kResourceExhausted, "known segment table full");
}

Status KnownSegmentManager::Terminate(ProcessId pid, Segno segno) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kWrite, rmi_);
  KstEntry* entry = Find(pid, segno);
  if (entry == nullptr || !entry->valid) {
    return Status(Code::kInvalidSegno, "segment not known");
  }
  DescriptorSegment* ds = spaces_->Space(pid);
  const uint16_t index = static_cast<uint16_t>(segno.value - kSystemSegnoLimit);
  if (ds != nullptr && ds->sdws[index].present) {
    MKS_RETURN_IF_ERROR(spaces_->Disconnect(pid, segno));
  }
  *entry = KstEntry{};
  ctx_->metrics.Inc(id_terminates_);
  return Status::Ok();
}

const KstEntry* KnownSegmentManager::Lookup(ProcessId pid, Segno segno) const {
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kRead, rmi_);
  auto it = ksts_.find(pid);
  if (it == ksts_.end() || segno.value < kSystemSegnoLimit) {
    return nullptr;
  }
  const uint16_t index = static_cast<uint16_t>(segno.value - kSystemSegnoLimit);
  if (index >= it->second.entries.size() || !it->second.entries[index].valid) {
    return nullptr;
  }
  return &it->second.entries[index];
}

Result<Segno> KnownSegmentManager::SegnoOf(ProcessId pid, SegmentUid uid) const {
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kRead, rmi_);
  auto it = ksts_.find(pid);
  if (it == ksts_.end()) {
    return Status(Code::kNotFound, "no KST");
  }
  for (uint16_t i = 0; i < it->second.entries.size(); ++i) {
    if (it->second.entries[i].valid && it->second.entries[i].home.uid == uid) {
      return Segno(static_cast<uint16_t>(kSystemSegnoLimit + i));
    }
  }
  return Status(Code::kNotFound, "segment not known to process");
}

KstEntry* KnownSegmentManager::Find(ProcessId pid, Segno segno) {
  auto it = ksts_.find(pid);
  if (it == ksts_.end() || segno.value < kSystemSegnoLimit) {
    return nullptr;
  }
  const uint16_t index = static_cast<uint16_t>(segno.value - kSystemSegnoLimit);
  if (index >= it->second.entries.size()) {
    return nullptr;
  }
  return &it->second.entries[index];
}

Status KnownSegmentManager::HandleSegmentFault(ProcessId pid, Segno segno) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kRead, rmi_);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kFaultEntry);
  KstEntry* entry = Find(pid, segno);
  if (entry == nullptr || !entry->valid) {
    return Status(Code::kInvalidSegno, "segment fault on unknown segment");
  }
  const SegmentHome& home = entry->home;
  MKS_ASSIGN_OR_RETURN(uint32_t ast,
                       segs_->EnsureActive(home.uid, home.pack, home.vtoc, home.quota_cell));
  MKS_RETURN_IF_ERROR(spaces_->Connect(pid, segno, ast, entry->modes, entry->ring_bracket));
  ctx_->metrics.Inc(id_segment_faults_);
  return Status::Ok();
}

Status KnownSegmentManager::HandleMissingPage(ProcessId pid, Segno segno, uint32_t page,
                                              WaitSpec* wait) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kRead, rmi_);
  KstEntry* entry = Find(pid, segno);
  if (entry == nullptr || !entry->valid) {
    return Status(Code::kInvalidSegno, "page fault on unknown segment");
  }
  const uint32_t ast = segs_->FindIndex(entry->home.uid);
  if (ast == kNoAst) {
    // The segment was deactivated between the SDW check and now; the caller
    // will re-fault as a missing segment.
    return HandleSegmentFault(pid, segno);
  }
  return segs_->ServiceMissingPage(ast, page, pid, wait);
}

void KnownSegmentManager::RelocateUid(SegmentUid uid, PackId pack, VtocIndex vtoc) {
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kWrite, rmi_);
  for (auto& [pid, kst] : ksts_) {
    for (KstEntry& entry : kst.entries) {
      if (entry.valid && entry.home.uid == uid) {
        entry.home.pack = pack;
        entry.home.vtoc = vtoc;
      }
    }
  }
}

Status KnownSegmentManager::HandleQuotaException(ProcessId pid, Segno segno, uint32_t page,
                                                 MoveSignal* signal, WaitSpec* wait) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kWrite, rmi_);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kFaultEntry);
  ctx_->metrics.Inc(id_quota_exceptions_);
  (void)wait;
  KstEntry* entry = Find(pid, segno);
  if (entry == nullptr || !entry->valid) {
    return Status(Code::kInvalidSegno, "quota exception on unknown segment");
  }
  SegmentHome& home = entry->home;
  MKS_ASSIGN_OR_RETURN(uint32_t ast,
                       segs_->EnsureActive(home.uid, home.pack, home.vtoc, home.quota_cell));
  Status grown = segs_->GrowSegment(ast, page);
  if (grown.ok()) {
    return Status::Ok();
  }
  if (grown.code() != Code::kPackFull) {
    return grown;  // e.g. quota_overflow, reported to the user
  }

  // Full pack: sever every address space, direct the move, retry the growth
  // on the new pack, and hand the new home upward for the directory update.
  ctx_->metrics.Inc(id_full_pack_moves_);
  spaces_->DisconnectEverywhere(home.uid);
  MKS_ASSIGN_OR_RETURN(SegmentManager::NewHome new_home, segs_->Relocate(ast));
  RelocateUid(home.uid, new_home.pack, new_home.vtoc);
  MKS_RETURN_IF_ERROR(segs_->GrowSegment(ast, page));
  if (signal != nullptr) {
    signal->valid = true;
    signal->uid = home.uid;
    signal->new_pack = new_home.pack;
    signal->new_vtoc = new_home.vtoc;
  }
  return Status::Ok();
}

}  // namespace mks
