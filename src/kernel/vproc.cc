#include "src/kernel/vproc.h"

#include <cassert>

namespace mks {

namespace {
// State-record layout in the core segment: a full processor state (register
// frame, descriptor-base values, a small kernel stack) per vp.  The size is
// what makes "every vp state permanently in the fastest memory" a real cost.
constexpr uint32_t kStateRecordWords = 256;
}  // namespace

VirtualProcessorManager::VirtualProcessorManager(KernelContext* ctx,
                                                 CoreSegmentManager* core_segs)
    : ctx_(ctx),
      self_(ctx->tracker.Register(module_names::kVproc)),
      core_segs_(core_segs),
      id_pool_size_(ctx->metrics.Intern("vproc.pool_size")),
      id_dispatches_(ctx->metrics.Intern("vproc.dispatches")),
      id_vp_migrations_(ctx->metrics.Intern("vproc.vp_migrations")),
      id_vp_migration_cycles_(ctx->metrics.Intern("vproc.vp_migration_cycles")),
      ev_ec_advance_(ctx->trace.InternEvent("ec.advance")),
      ev_vp_dispatch_(ctx->trace.InternEvent("vp.dispatch")),
      ev_kernel_task_(ctx->trace.InternEvent("vp.kernel_task")) {}

Status VirtualProcessorManager::Init(uint16_t vp_count) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  const uint32_t words = vp_count * kStateRecordWords;
  const uint32_t pages = (words + kPageWords - 1) / kPageWords;
  auto seg = core_segs_->Allocate("vp_states", pages == 0 ? 1 : pages);
  if (!seg.ok()) {
    return seg.status();
  }
  state_seg_ = *seg;
  vps_.assign(vp_count, Vp{});
  for (uint16_t i = 0; i < vp_count; ++i) {
    StoreState(VpId(i));
  }
  ctx_->metrics.Inc(id_pool_size_, vp_count);
  return Status::Ok();
}

void VirtualProcessorManager::StoreState(VpId vp) {
  // The state record lives in permanently-resident core; writing it can
  // never fault.  This is the property that breaks the interpreter loop.
  const Vp& v = vps_[vp.value];
  const uint32_t base = vp.value * kStateRecordWords;
  (void)core_segs_->WriteWord(state_seg_, base, static_cast<Word>(v.state));
  (void)core_segs_->WriteWord(state_seg_, base + 1, v.kernel_bound ? 1 : 0);
}

Result<VpId> VirtualProcessorManager::BindKernelTask(std::string name, KernelTask task) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  for (uint16_t i = 0; i < vps_.size(); ++i) {
    Vp& v = vps_[i];
    if (!v.kernel_bound && v.state == VpState::kIdle) {
      v.kernel_bound = true;
      v.name = std::move(name);
      v.task = std::move(task);
      v.state = VpState::kReady;
      StoreState(VpId(i));
      return VpId(i);
    }
  }
  return Status(Code::kResourceExhausted, "virtual processor pool exhausted");
}

std::vector<VpId> VirtualProcessorManager::UserPool() const {
  std::vector<VpId> pool;
  for (uint16_t i = 0; i < vps_.size(); ++i) {
    if (!vps_[i].kernel_bound) {
      pool.push_back(VpId(i));
    }
  }
  return pool;
}

Result<VpId> VirtualProcessorManager::TakeUserVp(uint16_t i) {
  Vp& v = vps_[i];
  acquire_cursor_ = static_cast<uint16_t>((i + 1) % vps_.size());
  v.state = VpState::kRunning;
  StoreState(VpId(i));
  // Vp switch and state-record migration are dispatch overhead, whatever the
  // caller is doing; keep them off the quantum/fault domains.
  Prof::Scope sw(&ctx_->prof, ProfDomain::kDispatch);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kVpSwitch);
  // Loading a state record last resident in another CPU's cache pays one
  // interconnect transfer.  Free at connect cost 0 (the legacy model) and
  // structurally free with one CPU (last_cpu can never differ).
  if (connect_cost_ > 0 && v.last_cpu != ctx_->current_cpu) {
    ctx_->cost.Charge(CodeStyle::kOptimized, connect_cost_);
    ctx_->metrics.Inc(id_vp_migrations_);
    ctx_->metrics.Inc(id_vp_migration_cycles_, connect_cost_);
  }
  v.last_cpu = ctx_->current_cpu;
  ctx_->metrics.Inc(id_dispatches_);
  ctx_->trace.Instant(ev_vp_dispatch_, i, 0);
  return VpId(i);
}

Result<VpId> VirtualProcessorManager::AcquireIdleUserVp() {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  const uint16_t n = static_cast<uint16_t>(vps_.size());
  for (uint16_t step = 0; step < n; ++step) {
    const uint16_t i = static_cast<uint16_t>((acquire_cursor_ + step) % n);
    Vp& v = vps_[i];
    if (!v.kernel_bound && v.state == VpState::kIdle) {
      return TakeUserVp(i);
    }
  }
  return Status(Code::kResourceExhausted, "no idle virtual processor");
}

Result<VpId> VirtualProcessorManager::AcquireIdleUserVp(uint16_t prefer_cpu) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  const uint16_t n = static_cast<uint16_t>(vps_.size());
  // First choice: an idle vp already warm on the preferred CPU, scanned in
  // fixed index order for determinism.
  for (uint16_t i = 0; i < n; ++i) {
    Vp& v = vps_[i];
    if (!v.kernel_bound && v.state == VpState::kIdle && v.last_cpu == prefer_cpu) {
      return TakeUserVp(i);
    }
  }
  // Otherwise the rotating cursor, as the non-affine path does.
  for (uint16_t step = 0; step < n; ++step) {
    const uint16_t i = static_cast<uint16_t>((acquire_cursor_ + step) % n);
    Vp& v = vps_[i];
    if (!v.kernel_bound && v.state == VpState::kIdle) {
      return TakeUserVp(i);
    }
  }
  return Status(Code::kResourceExhausted, "no idle virtual processor");
}

void VirtualProcessorManager::ReleaseUserVp(VpId vp) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Vp& v = vps_[vp.value];
  assert(!v.kernel_bound);
  v.state = VpState::kIdle;
  StoreState(vp);
}

bool VirtualProcessorManager::Await(VpId vp, EventcountId ec, uint64_t target) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  if (ctx_->eventcounts.AwaitOrEnqueue(ec, target, vp)) {
    return true;
  }
  vps_[vp.value].state = VpState::kWaiting;
  StoreState(vp);
  return false;
}

void VirtualProcessorManager::Advance(EventcountId ec) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  uint32_t woken = 0;
  for (VpId vp : ctx_->eventcounts.Advance(ec)) {
    Vp& v = vps_[vp.value];
    v.state = v.kernel_bound ? VpState::kReady : VpState::kIdle;
    StoreState(vp);
    ++woken;
  }
  ctx_->trace.Instant(ev_ec_advance_, ec.value, woken);
}

bool VirtualProcessorManager::RunKernelTasks() {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  bool any_work = false;
  for (uint16_t i = 0; i < vps_.size(); ++i) {
    Vp& v = vps_[i];
    if (v.kernel_bound && v.state == VpState::kReady) {
      v.state = VpState::kRunning;
      {
        Prof::Scope sw(&ctx_->prof, ProfDomain::kDispatch);
        ctx_->cost.Charge(CodeStyle::kStructured, Costs::kVpSwitch);
      }
      const Cycles task_begin = ctx_->trace.Begin();
      const bool did_work = v.task();
      ctx_->trace.CloseSpan(task_begin, ev_kernel_task_, i, did_work ? 1 : 0);
      any_work = any_work || did_work;
      if (v.state == VpState::kRunning) {
        v.state = VpState::kReady;
      }
      StoreState(VpId(i));
    }
  }
  return any_work;
}

bool VirtualProcessorManager::RunKernelTask(std::string_view name) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  for (uint16_t i = 0; i < vps_.size(); ++i) {
    Vp& v = vps_[i];
    if (!v.kernel_bound || v.name != name || v.state != VpState::kReady) {
      continue;
    }
    v.state = VpState::kRunning;
    {
      Prof::Scope sw(&ctx_->prof, ProfDomain::kDispatch);
      ctx_->cost.Charge(CodeStyle::kStructured, Costs::kVpSwitch);
    }
    const Cycles task_begin = ctx_->trace.Begin();
    const bool did_work = v.task();
    ctx_->trace.CloseSpan(task_begin, ev_kernel_task_, i, did_work ? 1 : 0);
    if (v.state == VpState::kRunning) {
      v.state = VpState::kReady;
    }
    StoreState(VpId(i));
    return did_work;
  }
  return false;
}

VpState VirtualProcessorManager::state(VpId vp) const { return vps_[vp.value].state; }

const std::string& VirtualProcessorManager::task_name(VpId vp) const {
  return vps_[vp.value].name;
}

bool VirtualProcessorManager::IsKernelVp(VpId vp) const { return vps_[vp.value].kernel_bound; }

void VirtualProcessorManager::AccrueBusy(VpId vp, Cycles cycles) {
  vps_[vp.value].busy += cycles;
}

Cycles VirtualProcessorManager::busy(VpId vp) const { return vps_[vp.value].busy; }

Cycles VirtualProcessorManager::MaxBusy() const {
  Cycles max_busy = 0;
  for (const Vp& vp : vps_) {
    max_busy = vp.busy > max_busy ? vp.busy : max_busy;
  }
  return max_busy;
}

}  // namespace mks
