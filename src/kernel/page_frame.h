// The page frame manager ("page control" reborn as an object manager).
//
// Manages the pageable region of primary memory: services missing-page
// exceptions, runs clock replacement, performs the zero-page storage
// optimization, and implements the descriptor-lock wait/notify protocol of
// the new hardware.  Its position in the lattice is low: it depends on the
// core segment manager (its maps), disk volume control (its components),
// the quota cell manager (storage-use accounting by static cell name — never
// an upward search of the directory hierarchy), and the virtual processor
// manager (its interpreter, and the wait primitive).
//
// Unlike the old page control, it never reaches into segment control's or
// directory control's data: growth arrives from above (the segment manager)
// with every needed name already in hand, and a full pack is reported back
// up as a status, not by reaching around the dependency structure.
//
// Two execution modes:
//  * synchronous — disk latency is charged and the fault completes inline
//    (used by tests, examples, and most benches);
//  * asynchronous — reads are posted to the simulated device and completed
//    by the page-I/O daemon (a kernel task on its own virtual processor);
//    the faulting user process parks and is re-awakened through the
//    real-memory message queue, exercising the full two-level protocol.
#ifndef MKS_KERNEL_PAGE_FRAME_H_
#define MKS_KERNEL_PAGE_FRAME_H_

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "src/kernel/quota_cell.h"
#include "src/kernel/vproc.h"
#include "src/sync/message_queue.h"

namespace mks {

// Filled when an operation must wait: the eventcount/target pair the caller
// should await before retrying the reference.
struct WaitSpec {
  bool valid = false;
  EventcountId ec{};
  uint64_t target = 0;
};

// Knobs for the anticipatory paging pipeline.  Every knob defaults off, and
// with all three off the fault path is byte-for-byte the pre-pipeline code.
// They are independent so the ablation benches can isolate each effect:
//
//  * precleaning — the page-writer daemon keeps the free pool between the
//    watermarks by running the clock and cleaning victims ahead of demand;
//    a fault pays an inline eviction only when the pool is truly dry
//    (counted in pfm.inline_evictions).
//  * batched_io — daemon writebacks and prefetch reads go through the
//    per-pack request queues and dispatch in record-sorted rounds of up to
//    io_batch_size, amortizing the seek: the first record of a round pays
//    the full latency, coalesced neighbors only kDiskBatchedTransfer.
//  * readahead — a forward-sequential fault pattern per segment posts reads
//    for the next readahead_depth pages through the async path; prefetched
//    frames come only from the free pool above the low watermark, so
//    anticipation can never force the inline eviction it exists to avoid.
struct PagingPipeline {
  bool precleaning = false;
  uint32_t low_watermark = 8;
  uint32_t high_watermark = 24;
  bool batched_io = false;
  uint32_t io_batch_size = 8;
  bool readahead = false;
  uint32_t readahead_depth = 8;

  static PagingPipeline Full() {
    PagingPipeline p;
    p.precleaning = true;
    p.batched_io = true;
    p.readahead = true;
    return p;
  }
};

class PageFrameManager {
 public:
  PageFrameManager(KernelContext* ctx, CoreSegmentManager* core_segs, QuotaCellManager* quota,
                   VirtualProcessorManager* vpm);

  // Takes ownership of every frame above the core segments.
  Status Init();

  // Wires the upward-signalling path for asynchronous mode.  The queue lives
  // in a core segment; the manager only ever writes resident words, so this
  // creates no upward dependency.
  void SetUpwardQueue(RealMemoryQueue* queue) { upward_queue_ = queue; }
  void set_async(bool async) { async_ = async; }
  bool async() const { return async_; }
  // When true, a page found all-zero at eviction keeps its disk record and
  // its quota charge: this closes the zero-page covert channel the paper
  // identifies (a read can no longer cause an accounting write) at the price
  // of charging for zero pages.
  void set_retain_zero_records(bool retain) { retain_zero_records_ = retain; }
  void set_pipeline(const PagingPipeline& pipeline) { pipeline_ = pipeline; }
  const PagingPipeline& pipeline() const { return pipeline_; }

  // Services a missing-page exception for `page` of the segment whose home is
  // (pack, vtoc).  `seg_ec` is the segment's page-arrival eventcount;
  // `initiator` identifies the user process (for the upward message), and is
  // ProcessId{0} for kernel-internal references.
  // Sync mode: completes inline.  Async mode: returns kBlocked and fills
  // *wait; the caller parks until seg_ec reaches wait->target, then retries.
  Status ServiceMissingPage(PageTable* pt, uint32_t page, PackId pack, VtocIndex vtoc,
                            QuotaCellId cell, EventcountId seg_ec, ProcessId initiator,
                            WaitSpec* wait);

  // Adds a never-before-used page to a segment.  Quota has already been
  // charged by the segment manager; this allocates the disk record eagerly —
  // so a full pack is detected here, at the bottom of the call chain, and
  // reported upward as kPackFull.
  Status AddPage(PageTable* pt, uint32_t page, PackId pack, VtocIndex vtoc, QuotaCellId cell,
                 EventcountId seg_ec);

  // Evicts one page (used at deactivation): writes back if modified, runs
  // zero detection, updates the file map and quota.
  Status EvictPage(PageTable* pt, uint32_t page, PackId pack, VtocIndex vtoc, QuotaCellId cell,
                   EventcountId seg_ec);

  // The page-I/O daemon body (bound to a kernel virtual processor in async
  // mode): completes posted reads, unlocks descriptors, advances segment
  // eventcounts, and pushes upward messages.  Returns true if work was done.
  bool PageIoDaemonStep();

  // The page-writer daemon body: cleans up to `max_writes` modified resident
  // pages so that replacement finds clean victims.  With precleaning on it
  // first replenishes the free pool to the high watermark by running the
  // clock and releasing victims ahead of demand.  Runs at low priority
  // (idle time); returns true if work was done.
  bool PageWriterStep(size_t max_writes);

  // Integrity audit: checks frame-table / page-table cross-consistency and
  // frame accounting; appends one line per finding.  An empty result is what
  // the paper's code auditors are trying to establish.
  void AuditIntegrity(std::vector<std::string>* findings) const;

  uint32_t free_frames() const { return static_cast<uint32_t>(free_list_.size()); }
  uint32_t total_frames() const { return frame_limit_ - first_frame_; }
  uint64_t pending_io() const { return pending_reads_; }

 private:
  enum class FrameState : uint8_t { kFree, kInUse, kIoInProgress };

  struct FrameInfo {
    FrameState state = FrameState::kFree;
    PageTable* pt = nullptr;
    uint32_t page = 0;
    PackId pack{};
    VtocIndex vtoc{};
    QuotaCellId cell{};
    EventcountId seg_ec{};
    bool prefetched = false;  // arrived by readahead, not yet known referenced
    // A prefetched page lands with used=false (the scan has not reached it),
    // which would make it the clock's first choice; this grants it one full
    // sweep of protection before it becomes evictable as waste.
    bool prefetch_grace = false;
    // Virtual time the demand fault posted this frame's read (async mode);
    // the daemon closes the fault.page_service span from this stamp, so the
    // histogram sees the full fault -> park -> I/O -> wakeup latency.
    Cycles posted_at = 0;
  };

  struct Completion {
    FrameIndex frame{};
    ProcessId initiator{};
  };

  // Obtains a frame, evicting via the clock algorithm if necessary.
  Result<FrameIndex> AcquireFrame();
  // One full second-chance pass: returns the victim slot, or UINT32_MAX when
  // nothing is evictable.  Shared by the fault path and the pre-cleaner so
  // replacement order is one policy regardless of who runs it.
  uint32_t ClockSelectVictim();
  // Writes back (if needed) and releases `frame`; runs zero detection.  With
  // `queue_writeback` the write is staged on the pack's request queue (data
  // copied now, latency charged at dispatch) instead of paid inline.
  Status CleanAndRelease(FrameIndex frame, bool queue_writeback = false);
  // Pre-cleaning: refills the free list to the high watermark.
  bool ReplenishFreePool();
  // Sequential-readahead policy, run after each serviced demand fault.
  void MaybeReadahead(PageTable* pt, uint32_t page, PackId pack, VtocIndex vtoc,
                      QuotaCellId cell, EventcountId seg_ec);
  // Dispatches one round of `pack`'s request queue and completes any posted
  // reads; returns the number of requests dispatched.
  size_t DispatchPackQueue(PackId pack);
  void CompletePostedRead(FrameIndex frame);
  FrameInfo& info(FrameIndex frame) { return frames_[frame.value - first_frame_]; }

  KernelContext* ctx_;
  ModuleId self_;
  CoreSegmentManager* core_segs_;
  QuotaCellManager* quota_;
  VirtualProcessorManager* vpm_;
  RealMemoryQueue* upward_queue_ = nullptr;

  // Hot-path counters, interned once at construction.
  MetricId id_evictions_;
  MetricId id_no_evictable_frame_;
  MetricId id_zero_reclaims_;
  MetricId id_zero_retained_;
  MetricId id_writebacks_;
  MetricId id_faults_serviced_;
  MetricId id_zero_page_reallocations_;
  MetricId id_async_reads_;
  MetricId id_io_completions_;
  MetricId id_pages_added_;
  MetricId id_daemon_writes_;
  MetricId id_inline_evictions_;
  MetricId id_precleaned_frames_;
  MetricId id_queued_writebacks_;
  MetricId id_prefetch_issued_;
  MetricId id_prefetch_hits_;
  MetricId id_prefetch_waste_;

  TraceEventId ev_fault_service_;
  TraceEventId ev_fault_posted_;
  TraceEventId ev_io_complete_;
  HistId hist_fault_service_;

  uint32_t first_frame_ = 0;
  uint32_t frame_limit_ = 0;
  std::vector<FrameInfo> frames_;
  std::vector<FrameIndex> free_list_;
  uint32_t clock_hand_ = 0;
  bool async_ = false;
  bool retain_zero_records_ = false;
  PagingPipeline pipeline_;
  uint64_t pending_reads_ = 0;
  std::deque<Completion> completions_;
};

}  // namespace mks

#endif  // MKS_KERNEL_PAGE_FRAME_H_
