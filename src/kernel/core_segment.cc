#include "src/kernel/core_segment.h"

namespace mks {

CoreSegmentManager::CoreSegmentManager(KernelContext* ctx)
    : ctx_(ctx),
      self_(ctx->tracker.Register(module_names::kCoreSegment)),
      id_allocated_pages_(ctx->metrics.Intern("core_seg.allocated_pages")) {}

Result<CoreSegId> CoreSegmentManager::Allocate(std::string name, uint32_t pages) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  if (sealed_) {
    return Status(Code::kFailedPrecondition, "core segments are fixed after initialization");
  }
  // Keep at least half of primary memory for the paging pool.
  const uint32_t budget = ctx_->memory.frame_count() / 2;
  if (next_frame_ + pages > budget) {
    return Status(Code::kResourceExhausted, "core segment budget exhausted: " + name);
  }
  CoreSegId id(static_cast<uint16_t>(segments_.size()));
  segments_.push_back(CoreSeg{std::move(name), next_frame_, pages});
  for (uint32_t i = 0; i < pages; ++i) {
    ctx_->memory.ZeroFrame(FrameIndex(next_frame_ + i));
  }
  next_frame_ += pages;
  ctx_->metrics.Inc(id_allocated_pages_, pages);
  return id;
}

Result<Word> CoreSegmentManager::ReadWord(CoreSegId seg, uint32_t offset) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  if (seg.value >= segments_.size()) {
    return Status(Code::kInvalidArgument, "bad core segment id");
  }
  const CoreSeg& cs = segments_[seg.value];
  if (offset >= cs.pages * kPageWords) {
    return Status(Code::kOutOfBounds, "core segment " + cs.name);
  }
  return ctx_->memory.ReadWord(static_cast<uint64_t>(cs.first_frame) * kPageWords + offset);
}

Status CoreSegmentManager::WriteWord(CoreSegId seg, uint32_t offset, Word value) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  if (seg.value >= segments_.size()) {
    return Status(Code::kInvalidArgument, "bad core segment id");
  }
  const CoreSeg& cs = segments_[seg.value];
  if (offset >= cs.pages * kPageWords) {
    return Status(Code::kOutOfBounds, "core segment " + cs.name);
  }
  ctx_->memory.WriteWord(static_cast<uint64_t>(cs.first_frame) * kPageWords + offset, value);
  return Status::Ok();
}

std::span<Word> CoreSegmentManager::RawSpan(CoreSegId seg) {
  const CoreSeg& cs = segments_[seg.value];
  std::span<Word> first = ctx_->memory.FrameSpan(FrameIndex(cs.first_frame));
  // Core segment frames are contiguous by construction.
  return std::span<Word>(first.data(), static_cast<size_t>(cs.pages) * kPageWords);
}

uint32_t CoreSegmentManager::SizeWords(CoreSegId seg) const {
  return segments_[seg.value].pages * kPageWords;
}

const std::string& CoreSegmentManager::Name(CoreSegId seg) const {
  return segments_[seg.value].name;
}

}  // namespace mks
