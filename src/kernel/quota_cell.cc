#include "src/kernel/quota_cell.h"

namespace mks {

namespace {
constexpr uint32_t kSlotWords = 4;  // limit, count, pack, vtoc
}  // namespace

QuotaCellManager::QuotaCellManager(KernelContext* ctx, CoreSegmentManager* core_segs)
    : ctx_(ctx),
      self_(ctx->tracker.Register(module_names::kQuotaCell)),
      core_segs_(core_segs),
      id_cells_loaded_(ctx->metrics.Intern("quota.cells_loaded")),
      id_checks_(ctx->metrics.Intern("quota.checks")),
      id_overflows_(ctx->metrics.Intern("quota.overflows")),
      id_refunds_(ctx->metrics.Intern("quota.refunds")) {}

Status QuotaCellManager::Init(uint32_t slots) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  const uint32_t words = slots * kSlotWords;
  const uint32_t pages = (words + kPageWords - 1) / kPageWords;
  auto seg = core_segs_->Allocate("quota_cell_table", pages == 0 ? 1 : pages);
  if (!seg.ok()) {
    return seg.status();
  }
  table_seg_ = *seg;
  slots_.assign(slots, Slot{});
  return Status::Ok();
}

void QuotaCellManager::StoreThrough(QuotaCellId cell) {
  const Slot& slot = slots_[cell.value];
  const uint32_t base = cell.value * kSlotWords;
  (void)core_segs_->WriteWord(table_seg_, base, slot.info.limit);
  (void)core_segs_->WriteWord(table_seg_, base + 1, slot.info.count);
  (void)core_segs_->WriteWord(table_seg_, base + 2, slot.info.home_pack.value);
  (void)core_segs_->WriteWord(table_seg_, base + 3, slot.info.home_vtoc.value);
}

Result<QuotaCellId> QuotaCellManager::CreateCell(PackId pack, VtocIndex vtoc, uint64_t limit) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  VtocEntry* entry = ctx_->volumes.pack(pack)->GetVtoc(vtoc);
  if (entry == nullptr) {
    return Status(Code::kInvalidArgument, "no such VTOC entry");
  }
  if (entry->quota.present) {
    return Status(Code::kAlreadyExists, "quota cell already present");
  }
  entry->quota.present = true;
  entry->quota.limit = limit;
  entry->quota.count = 0;
  return LoadCell(pack, vtoc);
}

Result<QuotaCellId> QuotaCellManager::LoadCell(PackId pack, VtocIndex vtoc) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[i];
    if (slot.in_use && slot.info.home_pack == pack && slot.info.home_vtoc == vtoc) {
      return QuotaCellId(i);
    }
  }
  const VtocEntry* entry = ctx_->volumes.pack(pack)->GetVtoc(vtoc);
  if (entry == nullptr || !entry->quota.present) {
    return Status(Code::kInvalidArgument, "no quota cell stored in VTOC entry");
  }
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].in_use) {
      slots_[i].in_use = true;
      slots_[i].info = QuotaCellInfo{entry->quota.limit, entry->quota.count, pack, vtoc};
      StoreThrough(QuotaCellId(i));
      ctx_->metrics.Inc(id_cells_loaded_);
      return QuotaCellId(i);
    }
  }
  return Status(Code::kResourceExhausted, "quota cell table full");
}

Status QuotaCellManager::FlushCell(QuotaCellId cell) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  if (cell.value >= slots_.size() || !slots_[cell.value].in_use) {
    return Status(Code::kInvalidArgument, "bad quota cell id");
  }
  const QuotaCellInfo& info = slots_[cell.value].info;
  VtocEntry* entry = ctx_->volumes.pack(info.home_pack)->GetVtoc(info.home_vtoc);
  if (entry == nullptr) {
    return Status(Code::kInternal, "quota cell home vanished");
  }
  entry->quota.limit = info.limit;
  entry->quota.count = info.count;
  return Status::Ok();
}

Status QuotaCellManager::DestroyCell(QuotaCellId cell) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  if (cell.value >= slots_.size() || !slots_[cell.value].in_use) {
    return Status(Code::kInvalidArgument, "bad quota cell id");
  }
  Slot& slot = slots_[cell.value];
  if (slot.info.count != 0) {
    return Status(Code::kNonEmpty, "quota cell still has charged storage");
  }
  VtocEntry* entry = ctx_->volumes.pack(slot.info.home_pack)->GetVtoc(slot.info.home_vtoc);
  if (entry != nullptr) {
    entry->quota = QuotaCellStore{};
  }
  slot = Slot{};
  StoreThrough(cell);
  return Status::Ok();
}

Status QuotaCellManager::Charge(QuotaCellId cell, uint64_t pages) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kProcedureCall);
  if (cell.value >= slots_.size() || !slots_[cell.value].in_use) {
    return Status(Code::kInvalidArgument, "bad quota cell id");
  }
  Slot& slot = slots_[cell.value];
  ctx_->metrics.Inc(id_checks_);
  if (slot.info.count + pages > slot.info.limit) {
    ctx_->metrics.Inc(id_overflows_);
    return Status(Code::kQuotaOverflow, "quota cell limit reached");
  }
  slot.info.count += pages;
  StoreThrough(cell);
  return Status::Ok();
}

Status QuotaCellManager::Refund(QuotaCellId cell, uint64_t pages) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  if (cell.value >= slots_.size() || !slots_[cell.value].in_use) {
    return Status(Code::kInvalidArgument, "bad quota cell id");
  }
  Slot& slot = slots_[cell.value];
  slot.info.count = slot.info.count >= pages ? slot.info.count - pages : 0;
  StoreThrough(cell);
  ctx_->metrics.Inc(id_refunds_);
  return Status::Ok();
}

Status QuotaCellManager::SetLimit(QuotaCellId cell, uint64_t limit) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  if (cell.value >= slots_.size() || !slots_[cell.value].in_use) {
    return Status(Code::kInvalidArgument, "bad quota cell id");
  }
  slots_[cell.value].info.limit = limit;
  StoreThrough(cell);
  return Status::Ok();
}

Result<QuotaCellInfo> QuotaCellManager::Info(QuotaCellId cell) const {
  if (cell.value >= slots_.size() || !slots_[cell.value].in_use) {
    return Status(Code::kInvalidArgument, "bad quota cell id");
  }
  return slots_[cell.value].info;
}

uint32_t QuotaCellManager::cached_count() const {
  uint32_t n = 0;
  for (const Slot& s : slots_) {
    if (s.in_use) {
      ++n;
    }
  }
  return n;
}

}  // namespace mks
