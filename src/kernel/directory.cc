#include "src/kernel/directory.h"

#include "src/common/hash.h"

namespace mks {

DirectoryManager::DirectoryManager(KernelContext* ctx, QuotaCellManager* quota,
                                   SegmentManager* segs, AddressSpaceManager* spaces)
    : ctx_(ctx),
      self_(ctx->tracker.Register(module_names::kDirectory)),
      quota_(quota),
      segs_(segs),
      spaces_(spaces),
      id_searches_(ctx->metrics.Intern("dir.searches")),
      id_mythical_results_(ctx->metrics.Intern("dir.mythical_results")),
      id_entries_created_(ctx->metrics.Intern("dir.entries_created")),
      id_entries_deleted_(ctx->metrics.Intern("dir.entries_deleted")),
      id_renames_(ctx->metrics.Intern("dir.renames")),
      id_quota_designations_(ctx->metrics.Intern("dir.quota_designations")),
      id_moves_completed_(ctx->metrics.Intern("dir.moves_completed")) {
  rmi_.Init(ctx, "dir", ProfDomain::kDirectoryRead, ProfDomain::kDirectoryWrite);
}

SegmentUid DirectoryManager::NewUid() {
  // Unique identifiers are unguessable values drawn from a keyed hash so
  // that real and mythical identifiers share a distribution.
  SegmentUid uid(Fnv1a64Mix(ctx_->secret ^ 0x9e3779b97f4a7c15ULL, uid_counter_++));
  while (uid.value == 0 || dirs_.count(uid) != 0 || parent_of_.count(uid) != 0) {
    uid = SegmentUid(Fnv1a64Mix(ctx_->secret ^ 0x9e3779b97f4a7c15ULL, uid_counter_++));
  }
  return uid;
}

EntryId DirectoryManager::MythicalId(EntryId dir, std::string_view name) const {
  uint64_t h = Fnv1a64Mix(ctx_->secret, dir.value);
  h = Fnv1a64(name, h);
  return EntryId(h == 0 ? 1 : h);
}

DirectoryManager::DirectoryRec* DirectoryManager::FindDir(EntryId id) {
  auto it = dirs_.find(SegmentUid(id.value));
  return it == dirs_.end() ? nullptr : &it->second;
}

bool DirectoryManager::CanObserveDir(const Subject& subject, const DirectoryRec& dir) const {
  if (!dir.acl.ModesFor(subject.principal).read) {
    return false;
  }
  return subject.label.Dominates(dir.label);
}

Status DirectoryManager::CheckModifyDir(const Subject& subject, DirectoryRec& dir,
                                        const std::string& op) {
  return ctx_->monitor.CheckAccess(subject, dir.acl, dir.label, FlowDirection::kModify,
                                   /*need_read=*/false, /*need_write=*/true,
                                   /*need_execute=*/false, op, ">" + dir.name);
}

Status DirectoryManager::InitRoot(Label label, Acl acl, uint64_t quota_limit) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kWrite, rmi_);
  if (root_.value != 0) {
    return Status(Code::kAlreadyExists, "root exists");
  }
  MKS_ASSIGN_OR_RETURN(PackId pack, ctx_->volumes.ChoosePack());
  const SegmentUid uid = NewUid();
  MKS_ASSIGN_OR_RETURN(VtocIndex vtoc,
                       ctx_->volumes.pack(pack)->AllocateVtoc(uid, /*is_directory=*/true));
  MKS_ASSIGN_OR_RETURN(QuotaCellId cell, quota_->CreateCell(pack, vtoc, quota_limit));

  DirectoryRec root;
  root.uid = uid;
  root.parent = uid;
  root.name = "";
  root.pack = pack;
  root.vtoc = vtoc;
  root.acl = std::move(acl);
  root.label = label;
  root.quota_designated = true;
  root.governing_dir = uid;
  root_ = uid;
  dirs_.emplace(uid, std::move(root));

  // The root's first backing page, charged to its own cell.
  MKS_ASSIGN_OR_RETURN(uint32_t ast, segs_->EnsureActive(uid, pack, vtoc, cell));
  MKS_RETURN_IF_ERROR(segs_->GrowSegment(ast, 0));
  return Status::Ok();
}

Result<EntryId> DirectoryManager::Search(const Subject& subject, EntryId dir_id,
                                         std::string_view name) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kRead, rmi_);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kProcedureCall * 2);
  ctx_->metrics.Inc(id_searches_);
  DirectoryRec* dir = FindDir(dir_id);
  if (dir == nullptr) {
    // Nonexistent or mythical directory: always "find" the name.
    ctx_->metrics.Inc(id_mythical_results_);
    return MythicalId(dir_id, name);
  }
  const bool observable = CanObserveDir(subject, *dir);
  auto it = dir->entries.find(std::string(name));
  if (observable) {
    ctx_->monitor.Audit(subject, "search", dir->name + ">" + std::string(name), Code::kOk);
    if (it == dir->entries.end()) {
      return Status(Code::kNoEntry, std::string(name));
    }
    return EntryId(it->second.uid.value);
  }
  // Inaccessible directory: if the name exists, return the REAL identifier so
  // a path through it can still reach an accessible object; otherwise return
  // a mythical identifier.  The requester cannot tell which happened.
  ctx_->monitor.Audit(subject, "search(opaque)", std::string(name), Code::kOk);
  if (it != dir->entries.end()) {
    return EntryId(it->second.uid.value);
  }
  ctx_->metrics.Inc(id_mythical_results_);
  return MythicalId(dir_id, name);
}

Result<QuotaCellId> DirectoryManager::GoverningCell(const DirectoryRec& dir) {
  auto it = dirs_.find(dir.governing_dir);
  if (it == dirs_.end()) {
    return Status(Code::kInternal, "governing quota directory vanished");
  }
  return quota_->LoadCell(it->second.pack, it->second.vtoc);
}

Status DirectoryManager::AccountDirectoryGrowth(DirectoryRec& dir) {
  const uint32_t needed =
      1 + static_cast<uint32_t>(dir.entries.size()) / static_cast<uint32_t>(kEntriesPerPage);
  if (needed <= dir.pages) {
    return Status::Ok();
  }
  MKS_ASSIGN_OR_RETURN(QuotaCellId cell, GoverningCell(dir));
  MKS_ASSIGN_OR_RETURN(uint32_t ast, segs_->EnsureActive(dir.uid, dir.pack, dir.vtoc, cell));
  for (uint32_t p = dir.pages; p < needed; ++p) {
    MKS_RETURN_IF_ERROR(segs_->GrowSegment(ast, p));
  }
  dir.pages = needed;
  return Status::Ok();
}

Status DirectoryManager::CreateEntryCommon(const Subject& subject, EntryId dir_id,
                                           std::string name, Acl acl, Label label,
                                           bool is_directory, DirEntryRec** out,
                                           DirectoryRec** parent_out) {
  DirectoryRec* dir = FindDir(dir_id);
  if (dir == nullptr) {
    return Status(Code::kNoAccess, "create in unresolvable directory");
  }
  MKS_RETURN_IF_ERROR(CheckModifyDir(subject, *dir, "create \"" + name + "\""));
  if (!label.Dominates(dir->label)) {
    return Status(Code::kInvalidArgument, "entry label must dominate directory label");
  }
  if (!label.Dominates(subject.label)) {
    return Status(Code::kNoAccess, "*-property: new object must dominate creator");
  }
  if (dir->entries.count(name) != 0) {
    return Status(Code::kNameDuplication, name);
  }
  MKS_ASSIGN_OR_RETURN(PackId pack, ctx_->volumes.ChoosePack());
  const SegmentUid uid = NewUid();
  MKS_ASSIGN_OR_RETURN(VtocIndex vtoc, ctx_->volumes.pack(pack)->AllocateVtoc(uid, is_directory));

  DirEntryRec entry;
  entry.name = name;
  entry.uid = uid;
  entry.is_directory = is_directory;
  entry.pack = pack;
  entry.vtoc = vtoc;
  entry.acl = std::move(acl);
  entry.label = label;
  auto [it, inserted] = dir->entries.emplace(std::move(name), std::move(entry));
  parent_of_[uid] = dir->uid;
  Status grown = AccountDirectoryGrowth(*dir);
  if (!grown.ok()) {
    ctx_->volumes.pack(pack)->FreeVtoc(vtoc);
    parent_of_.erase(uid);
    dir->entries.erase(it);
    return grown;
  }
  *out = &it->second;
  *parent_out = dir;
  ctx_->metrics.Inc(id_entries_created_);
  return Status::Ok();
}

Result<EntryId> DirectoryManager::CreateSegmentEntry(const Subject& subject, EntryId dir,
                                                     std::string name, Acl acl, Label label) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kWrite, rmi_);
  DirEntryRec* entry = nullptr;
  DirectoryRec* parent = nullptr;
  MKS_RETURN_IF_ERROR(CreateEntryCommon(subject, dir, std::move(name), std::move(acl), label,
                                        /*is_directory=*/false, &entry, &parent));
  return EntryId(entry->uid.value);
}

Result<EntryId> DirectoryManager::CreateDirectoryEntry(const Subject& subject, EntryId dir,
                                                       std::string name, Acl acl, Label label) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kWrite, rmi_);
  DirEntryRec* entry = nullptr;
  DirectoryRec* parent = nullptr;
  MKS_RETURN_IF_ERROR(CreateEntryCommon(subject, dir, std::move(name), std::move(acl), label,
                                        /*is_directory=*/true, &entry, &parent));
  DirectoryRec rec;
  rec.uid = entry->uid;
  rec.parent = parent->uid;
  rec.name = entry->name;
  rec.pack = entry->pack;
  rec.vtoc = entry->vtoc;
  rec.acl = entry->acl;
  rec.label = entry->label;
  rec.quota_designated = false;
  rec.governing_dir = parent->quota_designated ? parent->uid : parent->governing_dir;
  const SegmentUid uid = rec.uid;
  dirs_.emplace(uid, std::move(rec));

  // The new directory's first backing page.
  DirectoryRec& stored = dirs_.at(uid);
  MKS_ASSIGN_OR_RETURN(QuotaCellId cell, GoverningCell(stored));
  MKS_ASSIGN_OR_RETURN(uint32_t ast,
                       segs_->EnsureActive(stored.uid, stored.pack, stored.vtoc, cell));
  MKS_RETURN_IF_ERROR(segs_->GrowSegment(ast, 0));
  return EntryId(uid.value);
}

Status DirectoryManager::DeleteEntry(const Subject& subject, EntryId dir_id,
                                     std::string_view name) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kWrite, rmi_);
  DirectoryRec* dir = FindDir(dir_id);
  if (dir == nullptr) {
    return Status(Code::kNoAccess, "delete in unresolvable directory");
  }
  MKS_RETURN_IF_ERROR(CheckModifyDir(subject, *dir, "delete \"" + std::string(name) + "\""));
  auto it = dir->entries.find(std::string(name));
  if (it == dir->entries.end()) {
    return Status(Code::kNoEntry, std::string(name));
  }
  DirEntryRec& entry = it->second;
  if (entry.is_directory) {
    auto child_it = dirs_.find(entry.uid);
    if (child_it == dirs_.end()) {
      return Status(Code::kInternal, "directory entry without directory record");
    }
    if (!child_it->second.entries.empty()) {
      return Status(Code::kNonEmpty, std::string(name));
    }
    if (child_it->second.quota_designated) {
      MKS_RETURN_IF_ERROR(RemoveQuota(subject, EntryId(entry.uid.value)));
    }
    dirs_.erase(child_it);
  }
  // Sever every use, deactivate, refund the storage, release the VTOC entry.
  spaces_->DisconnectEverywhere(entry.uid);
  const uint32_t ast = segs_->FindIndex(entry.uid);
  if (ast != kNoAst) {
    MKS_RETURN_IF_ERROR(segs_->Deactivate(ast));
  }
  VtocEntry* vtoc_entry = ctx_->volumes.pack(entry.pack)->GetVtoc(entry.vtoc);
  if (vtoc_entry != nullptr) {
    const uint32_t records = vtoc_entry->RecordsUsed();
    if (records > 0) {
      MKS_ASSIGN_OR_RETURN(QuotaCellId cell, GoverningCell(*dir));
      (void)quota_->Refund(cell, records);
    }
    ctx_->volumes.pack(entry.pack)->FreeVtoc(entry.vtoc);
  }
  parent_of_.erase(entry.uid);
  dir->entries.erase(it);
  ctx_->metrics.Inc(id_entries_deleted_);
  return Status::Ok();
}

Status DirectoryManager::RenameEntry(const Subject& subject, EntryId dir_id,
                                     std::string_view old_name, std::string new_name) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kWrite, rmi_);
  DirectoryRec* dir = FindDir(dir_id);
  if (dir == nullptr) {
    return Status(Code::kNoAccess, "rename in unresolvable directory");
  }
  MKS_RETURN_IF_ERROR(CheckModifyDir(subject, *dir, "rename \"" + std::string(old_name) + "\""));
  if (new_name.empty()) {
    return Status(Code::kInvalidArgument, "empty name");
  }
  auto it = dir->entries.find(std::string(old_name));
  if (it == dir->entries.end()) {
    return Status(Code::kNoEntry, std::string(old_name));
  }
  if (dir->entries.count(new_name) != 0) {
    return Status(Code::kNameDuplication, new_name);
  }
  DirEntryRec entry = std::move(it->second);
  dir->entries.erase(it);
  entry.name = new_name;
  if (entry.is_directory) {
    auto child = dirs_.find(entry.uid);
    if (child != dirs_.end()) {
      child->second.name = new_name;
    }
  }
  dir->entries.emplace(std::move(new_name), std::move(entry));
  ctx_->metrics.Inc(id_renames_);
  return Status::Ok();
}

Status DirectoryManager::SetAcl(const Subject& subject, EntryId dir_id, std::string_view name,
                                Acl acl) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kWrite, rmi_);
  DirectoryRec* dir = FindDir(dir_id);
  if (dir == nullptr) {
    return Status(Code::kNoAccess, "setacl in unresolvable directory");
  }
  MKS_RETURN_IF_ERROR(CheckModifyDir(subject, *dir, "setacl \"" + std::string(name) + "\""));
  auto it = dir->entries.find(std::string(name));
  if (it == dir->entries.end()) {
    return Status(Code::kNoEntry, std::string(name));
  }
  it->second.acl = std::move(acl);
  if (it->second.is_directory) {
    auto child = dirs_.find(it->second.uid);
    if (child != dirs_.end()) {
      child->second.acl = it->second.acl;
    }
  }
  return Status::Ok();
}

Status DirectoryManager::ListNames(const Subject& subject, EntryId dir_id,
                                   std::vector<std::string>* out) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kRead, rmi_);
  DirectoryRec* dir = FindDir(dir_id);
  if (dir == nullptr || !CanObserveDir(subject, *dir)) {
    ctx_->monitor.Audit(subject, "list", "?", Code::kNoAccess);
    return Status(Code::kNoAccess, "list");
  }
  ctx_->monitor.Audit(subject, "list", ">" + dir->name, Code::kOk);
  out->clear();
  for (const auto& [name, entry] : dir->entries) {
    out->push_back(name);
  }
  return Status::Ok();
}

Status DirectoryManager::SetQuota(const Subject& subject, EntryId dir_id, uint64_t limit) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kWrite, rmi_);
  DirectoryRec* dir = FindDir(dir_id);
  if (dir == nullptr) {
    return Status(Code::kNoAccess, "setquota on unresolvable directory");
  }
  MKS_RETURN_IF_ERROR(CheckModifyDir(subject, *dir, "setquota"));
  if (dir->quota_designated) {
    MKS_ASSIGN_OR_RETURN(QuotaCellId cell, quota_->LoadCell(dir->pack, dir->vtoc));
    return quota_->SetLimit(cell, limit);
  }
  // The semantics change: designation only while childless, making the
  // segment-to-quota-cell binding static.
  if (!dir->entries.empty()) {
    return Status(Code::kNonEmpty, "quota designation requires a childless directory");
  }
  // Move the directory's own backing pages from the old governing cell to
  // the new cell.
  MKS_ASSIGN_OR_RETURN(QuotaCellId old_cell, GoverningCell(*dir));
  MKS_ASSIGN_OR_RETURN(QuotaCellId cell, quota_->CreateCell(dir->pack, dir->vtoc, limit));
  MKS_RETURN_IF_ERROR(quota_->Charge(cell, dir->pages));
  (void)quota_->Refund(old_cell, dir->pages);
  dir->quota_designated = true;
  dir->governing_dir = dir->uid;
  // If the directory's backing segment is active, its AST entry still names
  // the OLD governing cell; growth through the stale binding would charge
  // the wrong books.  Designation is childless-only, so the directory's own
  // backing is the only active binding to re-home.
  const uint32_t ast = segs_->FindIndex(dir->uid);
  if (ast != kNoAst) {
    segs_->Get(ast)->quota_cell = cell;
  }
  ctx_->metrics.Inc(id_quota_designations_);
  return Status::Ok();
}

Status DirectoryManager::RemoveQuota(const Subject& subject, EntryId dir_id) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kWrite, rmi_);
  DirectoryRec* dir = FindDir(dir_id);
  if (dir == nullptr) {
    return Status(Code::kNoAccess, "removequota on unresolvable directory");
  }
  MKS_RETURN_IF_ERROR(CheckModifyDir(subject, *dir, "removequota"));
  if (!dir->quota_designated) {
    return Status(Code::kFailedPrecondition, "not a quota directory");
  }
  if (dir->uid == root_) {
    return Status(Code::kInvalidArgument, "the root quota cell is permanent");
  }
  if (!dir->entries.empty()) {
    return Status(Code::kNonEmpty, "quota removal requires a childless directory");
  }
  // Hand the backing-page charge back to the parent's governing cell.
  auto parent = dirs_.find(dir->parent);
  if (parent == dirs_.end()) {
    return Status(Code::kInternal, "orphan directory");
  }
  MKS_ASSIGN_OR_RETURN(QuotaCellId parent_cell, GoverningCell(parent->second));
  MKS_RETURN_IF_ERROR(quota_->Charge(parent_cell, dir->pages));
  MKS_ASSIGN_OR_RETURN(QuotaCellId cell, quota_->LoadCell(dir->pack, dir->vtoc));
  (void)quota_->Refund(cell, dir->pages);
  MKS_RETURN_IF_ERROR(quota_->DestroyCell(cell));
  dir->quota_designated = false;
  dir->governing_dir =
      parent->second.quota_designated ? parent->second.uid : parent->second.governing_dir;
  // Re-home the active binding onto the inherited governing cell.
  const uint32_t ast = segs_->FindIndex(dir->uid);
  if (ast != kNoAst) {
    segs_->Get(ast)->quota_cell = parent_cell;
  }
  return Status::Ok();
}

Result<QuotaStatus> DirectoryManager::GetQuota(const Subject& subject, EntryId dir_id) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kRead, rmi_);
  DirectoryRec* dir = FindDir(dir_id);
  if (dir == nullptr || !CanObserveDir(subject, *dir)) {
    return Status(Code::kNoAccess, "getquota");
  }
  QuotaStatus status;
  status.designated = dir->quota_designated;
  MKS_ASSIGN_OR_RETURN(QuotaCellId cell, GoverningCell(*dir));
  MKS_ASSIGN_OR_RETURN(QuotaCellInfo info, quota_->Info(cell));
  status.limit = info.limit;
  status.count = info.count;
  return status;
}

Result<EntryInfo> DirectoryManager::ResolveForInitiate(const Subject& subject, EntryId target) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kRead, rmi_);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kProcedureCall * 2);
  const SegmentUid uid(target.value);
  auto parent_it = parent_of_.find(uid);
  if (parent_it == parent_of_.end()) {
    // Mythical, stale, or the root itself: "no access", indistinguishable
    // from a real object the subject cannot touch.
    ctx_->monitor.Audit(subject, "initiate", "?", Code::kNoAccess);
    return Status(Code::kNoAccess, "initiate");
  }
  auto dir_it = dirs_.find(parent_it->second);
  if (dir_it == dirs_.end()) {
    return Status(Code::kInternal, "entry with no containing directory");
  }
  const DirEntryRec* entry = nullptr;
  for (const auto& [name, rec] : dir_it->second.entries) {
    if (rec.uid == uid) {
      entry = &rec;
      break;
    }
  }
  if (entry == nullptr) {
    return Status(Code::kInternal, "parent index out of step with directory");
  }
  // Effective modes: the ACL masked by the mandatory properties.  Access is
  // determined entirely by the object's own ACL and label.
  AccessModes modes = entry->acl.ModesFor(subject.principal);
  if (!subject.label.Dominates(entry->label)) {
    modes.read = false;
    modes.execute = false;
  }
  if (!entry->label.Dominates(subject.label)) {
    modes.write = false;
  }
  if (!modes.any()) {
    ctx_->monitor.Audit(subject, "initiate", entry->name, Code::kNoAccess);
    return Status(Code::kNoAccess, "initiate " + entry->name);
  }
  ctx_->monitor.Audit(subject, "initiate", entry->name, Code::kOk);

  // The static quota binding handed downward at initiation.
  const DirectoryRec& dir = dir_it->second;
  const SegmentUid governing = dir.quota_designated ? dir.uid : dir.governing_dir;
  auto gov_it = dirs_.find(governing);
  if (gov_it == dirs_.end()) {
    return Status(Code::kInternal, "governing quota directory vanished");
  }
  MKS_ASSIGN_OR_RETURN(QuotaCellId cell,
                       quota_->LoadCell(gov_it->second.pack, gov_it->second.vtoc));

  EntryInfo info;
  info.home = SegmentHome{entry->uid, entry->pack, entry->vtoc, cell, entry->is_directory};
  info.modes = modes;
  info.label = entry->label;
  return info;
}

void DirectoryManager::AuditQuotaIntegrity(std::vector<std::string>* findings) {
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kRead, rmi_);
  // Recompute, from the packs' tables of contents, the records actually used
  // by every object each quota cell governs, and compare with the cached
  // counts.  Storage charged but not used (or used but not charged) is
  // exactly the kind of books-out-of-balance defect an auditor hunts.
  std::unordered_map<SegmentUid, uint64_t> expected;  // quota dir uid -> records
  auto governing_of = [&](const DirectoryRec& dir) {
    return dir.quota_designated ? dir.uid : dir.governing_dir;
  };
  for (const auto& [uid, dir] : dirs_) {
    // The directory's own backing storage.
    const VtocEntry* self_entry = ctx_->volumes.pack(dir.pack)->GetVtoc(dir.vtoc);
    if (self_entry != nullptr) {
      expected[governing_of(dir)] += self_entry->RecordsUsed();
    } else {
      findings->push_back("directory " + dir.name + " lost its VTOC entry");
    }
    // Its non-directory entries (child directories account for themselves).
    for (const auto& [name, rec] : dir.entries) {
      if (rec.is_directory) {
        continue;
      }
      const VtocEntry* entry = ctx_->volumes.pack(rec.pack)->GetVtoc(rec.vtoc);
      if (entry == nullptr) {
        findings->push_back("entry " + name + " lost its VTOC entry");
        continue;
      }
      expected[governing_of(dir)] += entry->RecordsUsed();
    }
  }
  for (const auto& [quota_dir_uid, records] : expected) {
    auto it = dirs_.find(quota_dir_uid);
    if (it == dirs_.end()) {
      findings->push_back("governing quota directory vanished");
      continue;
    }
    auto cell = quota_->LoadCell(it->second.pack, it->second.vtoc);
    if (!cell.ok()) {
      findings->push_back("quota cell for >" + it->second.name + " unloadable: " +
                          cell.status().ToString());
      continue;
    }
    auto info = quota_->Info(*cell);
    if (info.ok() && info->count != records) {
      findings->push_back("quota cell for >" + it->second.name + ": count " +
                          std::to_string(info->count) + " but records used " +
                          std::to_string(records));
    }
  }
}

Status DirectoryManager::CompleteSegmentMove(SegmentUid uid, PackId new_pack,
                                             VtocIndex new_vtoc) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  SharedSection section(&rml_, ctx_, SharedSection::Kind::kWrite, rmi_);
  auto parent_it = parent_of_.find(uid);
  if (parent_it == parent_of_.end()) {
    return Status(Code::kNotFound, "moved segment has no directory entry");
  }
  auto dir_it = dirs_.find(parent_it->second);
  if (dir_it == dirs_.end()) {
    return Status(Code::kInternal, "entry with no containing directory");
  }
  for (auto& [name, rec] : dir_it->second.entries) {
    if (rec.uid == uid) {
      rec.pack = new_pack;
      rec.vtoc = new_vtoc;
      ctx_->metrics.Inc(id_moves_completed_);
      return Status::Ok();
    }
  }
  return Status(Code::kInternal, "parent index out of step with directory");
}

}  // namespace mks
