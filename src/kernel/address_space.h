// The address space manager: descriptor segments as objects.
//
// Each user process executes in an address space defined by a descriptor
// segment; the hardware's *second* descriptor-base register points at a
// per-processor system descriptor segment, built once at initialization,
// whose descriptors refer only to permanently-resident core segments.  All
// segment numbers below kSystemSegnoLimit translate through the system space,
// so system modules can never acquire an address-space dependency on the
// machinery that implements user virtual memory — the cure for one whole
// family of dependency loops.
#ifndef MKS_KERNEL_ADDRESS_SPACE_H_
#define MKS_KERNEL_ADDRESS_SPACE_H_

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/aim/acl.h"
#include "src/kernel/segment.h"

namespace mks {

class AddressSpaceManager {
 public:
  AddressSpaceManager(KernelContext* ctx, CoreSegmentManager* core_segs, SegmentManager* segs);

  // Builds the system descriptor segment: one resident descriptor per core
  // segment, installed on the service processor.
  Status Init(uint16_t user_sdw_count);

  Status CreateSpace(ProcessId pid);
  Status DestroySpace(ProcessId pid);
  DescriptorSegment* Space(ProcessId pid);

  // Connects `segno` (>= kSystemSegnoLimit) of `pid`'s space to the active
  // segment at AST index `ast` with the given modes.
  Status Connect(ProcessId pid, Segno segno, uint32_t ast, AccessModes modes,
                 uint8_t ring_bracket);
  Status Disconnect(ProcessId pid, Segno segno);

  // Severs every SDW referring to `uid` in every address space (the prelude
  // to segment relocation).  The affected processes will take ordinary
  // missing-segment faults and reconnect through the standard machinery.
  uint32_t DisconnectEverywhere(SegmentUid uid);

  // Installs `pid`'s descriptor segment as the processor's user space.
  void BindToProcessor(Processor* processor, ProcessId pid);

  size_t space_count() const { return spaces_.size(); }

  // Integrity audit: every connected SDW must point at the page table of the
  // AST entry it is recorded against, and per-entry connection counts must
  // equal the number of SDWs naming them.
  void AuditIntegrity(std::vector<std::string>* findings) const;

 private:
  struct SpaceRec {
    DescriptorSegment ds;
    // segno-index -> AST slot (kNoAst when unconnected).
    std::vector<uint32_t> ast_of;
  };

  KernelContext* ctx_;
  ModuleId self_;
  CoreSegmentManager* core_segs_;
  SegmentManager* segs_;
  uint16_t user_sdw_count_ = 0;
  MetricId id_spaces_created_;
  MetricId id_connects_;
  MetricId id_disconnect_everywhere_;
  DescriptorSegment system_ds_;
  std::vector<std::unique_ptr<PageTable>> system_page_tables_;
  std::unordered_map<ProcessId, SpaceRec> spaces_;
};

}  // namespace mks

#endif  // MKS_KERNEL_ADDRESS_SPACE_H_
