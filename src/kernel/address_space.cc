#include "src/kernel/address_space.h"

namespace mks {

AddressSpaceManager::AddressSpaceManager(KernelContext* ctx, CoreSegmentManager* core_segs,
                                         SegmentManager* segs)
    : ctx_(ctx),
      self_(ctx->tracker.Register(module_names::kAddressSpace)),
      core_segs_(core_segs),
      segs_(segs),
      id_spaces_created_(ctx->metrics.Intern("asm.spaces_created")),
      id_connects_(ctx->metrics.Intern("asm.connects")),
      id_disconnect_everywhere_(ctx->metrics.Intern("asm.disconnect_everywhere")) {}

Status AddressSpaceManager::Init(uint16_t user_sdw_count) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  user_sdw_count_ = user_sdw_count;
  // One resident descriptor per core segment: the system address space.
  system_ds_.sdws.assign(kSystemSegnoLimit, Sdw{});
  for (uint16_t i = 0; i < core_segs_->count() && i < kSystemSegnoLimit; ++i) {
    const CoreSegId seg(i);
    const uint32_t pages = core_segs_->SizeWords(seg) / kPageWords;
    auto pt = std::make_unique<PageTable>();
    pt->ptws.assign(pages, Ptw{});
    // Core segments are carved contiguously from frame 0 upward; reconstruct
    // the frame numbers from the span.
    auto span = core_segs_->RawSpan(seg);
    const uint32_t first_frame =
        static_cast<uint32_t>((span.data() - ctx_->memory.FrameSpan(FrameIndex(0)).data()) /
                              kPageWords);
    for (uint32_t p = 0; p < pages; ++p) {
      Ptw& ptw = pt->ptws[p];
      ptw.in_core = true;
      ptw.unallocated = false;
      ptw.frame = first_frame + p;
    }
    Sdw& sdw = system_ds_.sdws[i];
    sdw.present = true;
    sdw.page_table = pt.get();
    sdw.bound_pages = pages;
    sdw.read = true;
    sdw.write = true;
    sdw.execute = true;
    sdw.ring_bracket = 0;  // kernel-only
    system_page_tables_.push_back(std::move(pt));
  }
  ctx_->cpus.SetSystemDs(&system_ds_);
  return Status::Ok();
}

Status AddressSpaceManager::CreateSpace(ProcessId pid) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  if (spaces_.count(pid) != 0) {
    return Status(Code::kAlreadyExists, "address space exists");
  }
  SpaceRec space;
  space.ds.sdws.assign(user_sdw_count_, Sdw{});
  space.ast_of.assign(user_sdw_count_, kNoAst);
  spaces_.emplace(pid, std::move(space));
  ctx_->metrics.Inc(id_spaces_created_);
  return Status::Ok();
}

Status AddressSpaceManager::DestroySpace(ProcessId pid) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  auto it = spaces_.find(pid);
  if (it == spaces_.end()) {
    return Status(Code::kNotFound, "no address space");
  }
  for (uint16_t i = 0; i < user_sdw_count_; ++i) {
    if (it->second.ast_of[i] != kNoAst) {
      segs_->NoteDisconnect(it->second.ast_of[i]);
    }
  }
  // Any processor still pointing at the dying descriptor segment unbinds.
  ctx_->cpus.DropUserDs(&it->second.ds);
  spaces_.erase(it);
  return Status::Ok();
}

DescriptorSegment* AddressSpaceManager::Space(ProcessId pid) {
  auto it = spaces_.find(pid);
  return it == spaces_.end() ? nullptr : &it->second.ds;
}

Status AddressSpaceManager::Connect(ProcessId pid, Segno segno, uint32_t ast,
                                    AccessModes modes, uint8_t ring_bracket) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  auto it = spaces_.find(pid);
  if (it == spaces_.end()) {
    return Status(Code::kNotFound, "no address space");
  }
  if (segno.value < kSystemSegnoLimit ||
      segno.value >= kSystemSegnoLimit + user_sdw_count_) {
    return Status(Code::kInvalidSegno, "segno outside the user range");
  }
  AstEntry* entry = segs_->Get(ast);
  if (entry == nullptr) {
    return Status(Code::kInvalidArgument, "bad AST index");
  }
  const uint16_t index = static_cast<uint16_t>(segno.value - kSystemSegnoLimit);
  SpaceRec& space = it->second;
  if (space.ds.sdws[index].present) {
    return Status(Code::kAlreadyExists, "segno already connected");
  }
  Sdw& sdw = space.ds.sdws[index];
  sdw.present = true;
  sdw.page_table = &entry->page_table;
  sdw.bound_pages = entry->max_pages;
  sdw.read = modes.read;
  sdw.write = modes.write;
  sdw.execute = modes.execute;
  sdw.ring_bracket = ring_bracket;
  space.ast_of[index] = ast;
  segs_->NoteConnect(ast);
  ctx_->metrics.Inc(id_connects_);
  return Status::Ok();
}

Status AddressSpaceManager::Disconnect(ProcessId pid, Segno segno) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  auto it = spaces_.find(pid);
  if (it == spaces_.end()) {
    return Status(Code::kNotFound, "no address space");
  }
  const uint16_t index = static_cast<uint16_t>(segno.value - kSystemSegnoLimit);
  SpaceRec& space = it->second;
  if (index >= user_sdw_count_ || !space.ds.sdws[index].present) {
    return Status(Code::kInvalidSegno, "segno not connected");
  }
  segs_->NoteDisconnect(space.ast_of[index]);
  space.ds.sdws[index] = Sdw{};
  space.ast_of[index] = kNoAst;
  // The segno may be reconnected to a different segment; no translation
  // cached under it may survive the disconnect.
  ctx_->cpus.ClearAssociative(segno);
  return Status::Ok();
}

uint32_t AddressSpaceManager::DisconnectEverywhere(SegmentUid uid) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  uint32_t severed = 0;
  for (auto& [pid, space] : spaces_) {
    for (uint16_t i = 0; i < user_sdw_count_; ++i) {
      const uint32_t ast = space.ast_of[i];
      if (ast == kNoAst) {
        continue;
      }
      AstEntry* entry = segs_->Get(ast);
      if (entry != nullptr && entry->uid == uid) {
        segs_->NoteDisconnect(ast);
        space.ds.sdws[i] = Sdw{};
        space.ast_of[i] = kNoAst;
        ctx_->cpus.ClearAssociative(Segno(static_cast<uint16_t>(kSystemSegnoLimit + i)));
        ++severed;
      }
    }
  }
  ctx_->metrics.Inc(id_disconnect_everywhere_, severed);
  return severed;
}

void AddressSpaceManager::AuditIntegrity(std::vector<std::string>* findings) const {
  std::unordered_map<uint32_t, uint32_t> sdw_counts;
  for (const auto& [pid, space] : spaces_) {
    for (uint16_t i = 0; i < user_sdw_count_; ++i) {
      const uint32_t ast = space.ast_of[i];
      const Sdw& sdw = space.ds.sdws[i];
      if (ast == kNoAst) {
        if (sdw.present) {
          findings->push_back("process " + std::to_string(pid.value) + " segno index " +
                              std::to_string(i) + ": SDW present with no AST record");
        }
        continue;
      }
      ++sdw_counts[ast];
      AstEntry* entry = segs_->Get(ast);
      if (entry == nullptr) {
        findings->push_back("process " + std::to_string(pid.value) +
                            ": SDW names a dead AST slot " + std::to_string(ast));
        continue;
      }
      if (sdw.page_table != &entry->page_table) {
        findings->push_back("process " + std::to_string(pid.value) +
                            ": SDW page-table pointer out of step with AST " +
                            std::to_string(ast));
      }
    }
  }
  for (uint32_t slot = 0; slot < segs_->ast_slots(); ++slot) {
    AstEntry* entry = segs_->Get(slot);
    if (entry == nullptr) {
      continue;
    }
    const uint32_t counted = sdw_counts.count(slot) ? sdw_counts[slot] : 0;
    if (counted != entry->connections) {
      findings->push_back("AST " + std::to_string(slot) + ": connections " +
                          std::to_string(entry->connections) + " but " +
                          std::to_string(counted) + " SDWs observed");
    }
  }
}

void AddressSpaceManager::BindToProcessor(Processor* processor, ProcessId pid) {
  processor->set_user_ds(Space(pid));
}

}  // namespace mks
