// The quota cell manager: explicit objects for storage resource control.
//
// In the old supervisor, quota limits and counts lived inside the active
// segment table, and finding "the nearest superior quota directory" required
// page control to walk segment control's data upward along the shape of the
// directory hierarchy — one of the subtlest dependency loops the paper
// dissects.  The new design makes quota cells first-class objects: a cell is
// stored in the disk-pack table-of-contents entry of its quota directory and
// cached, while the directory is active, in a table kept in a core segment.
// Because the binding of segment to quota cell is static (quota directories
// may be designated or undesignated only while childless), charging quota
// never requires an upward search.
#ifndef MKS_KERNEL_QUOTA_CELL_H_
#define MKS_KERNEL_QUOTA_CELL_H_

#include <optional>
#include <vector>

#include "src/kernel/core_segment.h"

namespace mks {

struct QuotaCellInfo {
  uint64_t limit = 0;
  uint64_t count = 0;
  PackId home_pack{};
  VtocIndex home_vtoc{};
};

class QuotaCellManager {
 public:
  QuotaCellManager(KernelContext* ctx, CoreSegmentManager* core_segs);

  // Allocates the cache table in a core segment; `slots` bounds the number of
  // simultaneously-cached cells (one per active quota directory).
  Status Init(uint32_t slots);

  // Creates a brand-new cell persisted in the quota directory's VTOC entry.
  Result<QuotaCellId> CreateCell(PackId pack, VtocIndex vtoc, uint64_t limit);

  // Caches the cell stored in the given VTOC entry (directory activation).
  // Idempotent: re-loading an already-cached cell returns the same id.
  Result<QuotaCellId> LoadCell(PackId pack, VtocIndex vtoc);

  // Writes the cell back to its VTOC home (directory deactivation); the cache
  // slot remains valid.
  Status FlushCell(QuotaCellId cell);

  // Flushes, removes from the cache, and erases the persistent cell.  The
  // count must be zero (nothing charged below), mirroring the childless rule.
  Status DestroyCell(QuotaCellId cell);

  // Charge / refund `pages` of storage; kQuotaOverflow when the limit would
  // be exceeded.
  Status Charge(QuotaCellId cell, uint64_t pages);
  Status Refund(QuotaCellId cell, uint64_t pages);

  Status SetLimit(QuotaCellId cell, uint64_t limit);
  Result<QuotaCellInfo> Info(QuotaCellId cell) const;

  uint32_t cached_count() const;

 private:
  struct Slot {
    bool in_use = false;
    QuotaCellInfo info;
  };

  void StoreThrough(QuotaCellId cell);  // mirrors limit/count into the core segment table

  KernelContext* ctx_;
  ModuleId self_;
  CoreSegmentManager* core_segs_;
  MetricId id_cells_loaded_;
  MetricId id_checks_;
  MetricId id_overflows_;
  MetricId id_refunds_;
  CoreSegId table_seg_{};
  std::vector<Slot> slots_;
};

}  // namespace mks

#endif  // MKS_KERNEL_QUOTA_CELL_H_
