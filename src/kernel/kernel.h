// The assembled kernel: configuration, staged initialization, and the
// declared dependency lattice of the new design (the paper's Figure 4).
//
// Kernel owns every object manager and wires them bottom-up.  Initialization
// is staged the way the certifiable-initialization redesign proposed: each
// stage uses only managers initialized by earlier stages, so the boot order
// IS a topological order of the lattice.
#ifndef MKS_KERNEL_KERNEL_H_
#define MKS_KERNEL_KERNEL_H_

#include <memory>

#include "src/kernel/uproc.h"

namespace mks {

struct KernelConfig {
  // Machine shape.
  uint32_t memory_frames = 512;
  // Simulated processors, interleaved deterministically at quantum
  // granularity.  1 reproduces the uniprocessor behaviour exactly.
  uint16_t cpu_count = 1;
  uint16_t vp_count = 8;
  uint16_t user_sdw_count = 128;
  uint32_t ast_slots = 64;
  uint32_t quota_cell_slots = 64;
  // Disk shape.
  uint16_t pack_count = 2;
  uint32_t records_per_pack = 4096;
  uint32_t vtoc_slots_per_pack = 512;
  // Policy.
  HwFeatures features = HwFeatures::KernelDesign();
  double structured_factor = CostModel::kDefaultStructuredFactor;
  bool async_paging = false;
  bool close_zero_page_channel = false;
  // Anticipatory paging pipeline (all knobs default off — demand paging with
  // inline evictions, exactly the pre-pipeline behaviour).
  PagingPipeline paging_pipeline;
  // Virtual-time tracer (default off — with it off every instrumented path
  // is byte-identical to an untraced build; same pattern as the pipeline).
  TraceConfig trace;
  // Per-CPU cycle-accounting profiler + stall watchdog (default off — same
  // byte-identical-when-off discipline as the tracer).  profile.stall_rounds
  // arms the watchdog independently of profile.enabled: arming it never
  // changes a run's output, it only turns a frozen-clock livelock into a
  // flight-recorder dump and abort.
  ProfConfig profile;
  // Dispatch sharding (all default off — the legacy single ready list with
  // free cross-CPU traffic, byte-identical to the pre-sharding scheduler).
  // sharded_runqueues: per-CPU run queues, each behind its own SimSpinLock.
  // steal: deterministic work stealing between sharded queues (inert unless
  // sharded_runqueues is also set).
  bool sharded_runqueues = false;
  bool steal = false;
  // connect_cost: virtual cycles per cross-CPU interconnect transfer.  Makes
  // shared-line traffic real work: associative-memory broadcasts charge it
  // per remote CPU, and the scheduler charges it whenever ready-list state,
  // a vp state record, or a process's working set migrates between CPUs.
  // 0 keeps all of that free (the legacy model).
  Cycles connect_cost = 0;
  // Handoff-traffic policy for the scheduler locks (global ready-list lock
  // and each sharded run-queue lock): how much interconnect traffic one
  // contended lock handoff generates, priced in connect_cost line transfers.
  // kTestAndSet (default) charges nothing — byte-identical to the
  // pre-policy lock; kTicket charges each waiter one transfer per handoff it
  // sat through (the O(waiters) now-serving broadcast); kAnderson and kMcs
  // charge exactly one transfer per handoff (per-waiter spin lines).
  LockPolicy lock_policy = LockPolicy::kTestAndSet;
  // kAnderson's spin-array size; 0 = cpu_count.  More distinct CPUs than
  // slots aborts loudly (the real lock would wrap its index silently).
  uint16_t anderson_slots = 0;
  // Read-mostly synchronization for the naming surface: the directory
  // hierarchy and the known segment tables each sit behind one SimSharedLock
  // whose read-side protocol this selects.  kOff (default) leaves the naming
  // paths un-modeled — byte-identical to every prior PR.  kExclusive guards
  // every naming operation, read or write, with one exclusive lock
  // (SimSpinLock's waiting-time arithmetic): the "every lookup serializes
  // like a write" baseline.  kPassiveRw gives each CPU a passive read token
  // (contended reads free of line transfers; writers revoke at connect_cost
  // per remote reader CPU).  kEpoch gives readers a zero-cost epoch pin
  // (writers publish one broadcast and wait out the grace period).
  ReadPolicy read_policy = ReadPolicy::kOff;
  // kEpoch only: cycles a writer spends on quiescence detection after its
  // publish, on top of draining the read sections in flight.
  Cycles epoch_grace_cost = 0;
  // Slab pooling of process slots: DestroyProcess parks the slot (pid, KST
  // allocation, state segment) on a free list and CreateProcess reuses it,
  // skipping the rebuild-from-scratch chain.  Off (default) is
  // byte-identical to tearing every process down; Shutdown drains parked
  // slots either way, so the on-disk image leaks nothing.
  bool slab_processes = false;
  uint64_t root_quota = 1u << 20;
  Label root_label = Label::SystemLow();
  // Default: world-usable root, so examples/tests can build a hierarchy.
  // A hardened installation narrows this (see examples/secure_file_service).
  Acl root_acl = [] {
    Acl acl;
    acl.Add(AclEntry{"*", "*", AccessModes::RW()});
    return acl;
  }();
  uint64_t secret = 0x6d756c74696373ULL;  // per-boot secret for mythical ids
};

class Kernel {
 public:
  explicit Kernel(const KernelConfig& config);
  ~Kernel();

  // Staged bring-up: core segments -> virtual processors -> disk -> paging ->
  // quota -> segments/address spaces -> directories -> user processes.
  Status Boot();
  bool booted() const { return booted_; }

  // The declared dependency structure of the new design, with every edge
  // annotated by its kind.  Tests check it is loop-free and that the runtime
  // call structure stays inside it.
  static DependencyGraph DeclaredLattice();

  // The integrity auditor: a machine-checkable slice of the paper's
  // "two or more small, expert teams of programmers can be assigned to be
  // auditors" prong.  Sweeps the kernel's cross-module data structures for
  // inconsistencies; an empty report is the expected (audited) state at
  // quiescence.
  std::vector<std::string> AuditIntegrity();

  // Orderly shutdown: severs every address space, deactivates every segment
  // (flushing resident pages home), and writes every cached quota cell back
  // to its pack, so the on-disk image is self-consistent.
  Status Shutdown();

  // Makes a gate-call context for a user-domain subject.
  ProcContext MakeContext(ProcessId pid, const Subject& subject) const;

  const KernelConfig& config() const { return config_; }
  KernelContext& ctx() { return *ctx_; }
  Metrics& metrics() { return ctx_->metrics; }
  Clock& clock() { return ctx_->clock; }
  CallTracker& tracker() { return ctx_->tracker; }

  CoreSegmentManager& core_segments() { return *core_segs_; }
  VirtualProcessorManager& vprocs() { return *vpm_; }
  PageFrameManager& page_frames() { return *pfm_; }
  QuotaCellManager& quota_cells() { return *quota_; }
  SegmentManager& segments() { return *segs_; }
  AddressSpaceManager& address_spaces() { return *spaces_; }
  KnownSegmentManager& known_segments() { return *ksm_; }
  DirectoryManager& directories() { return *dirs_; }
  UserProcessManager& processes() { return *uproc_; }
  KernelGates& gates() { return *gates_; }

 private:
  KernelConfig config_;
  std::unique_ptr<KernelContext> ctx_;
  MetricId id_shutdowns_ = 0;
  std::unique_ptr<CoreSegmentManager> core_segs_;
  std::unique_ptr<VirtualProcessorManager> vpm_;
  std::unique_ptr<QuotaCellManager> quota_;
  std::unique_ptr<PageFrameManager> pfm_;
  std::unique_ptr<SegmentManager> segs_;
  std::unique_ptr<AddressSpaceManager> spaces_;
  std::unique_ptr<KnownSegmentManager> ksm_;
  std::unique_ptr<DirectoryManager> dirs_;
  std::unique_ptr<KernelGates> gates_;
  std::unique_ptr<UserProcessManager> uproc_;
  bool booted_ = false;
};

}  // namespace mks

#endif  // MKS_KERNEL_KERNEL_H_
