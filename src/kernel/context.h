// Shared substrate bundle for the kernel's object managers.
//
// Every manager receives a KernelContext*: the simulated clock/cost model,
// metrics, the deferred-completion event queue, the runtime dependency
// tracker, the eventcount table, the reference monitor, primary memory, the
// disk volumes, and the service processor.  The context owns no policy; it is
// the "machine room" the managers are built over.
#ifndef MKS_KERNEL_CONTEXT_H_
#define MKS_KERNEL_CONTEXT_H_

#include <cstdint>

#include "src/aim/monitor.h"
#include "src/deps/tracker.h"
#include "src/disk/pack.h"
#include "src/hw/machine.h"
#include "src/sim/clock.h"
#include "src/sim/cpu_sched.h"
#include "src/sim/event_queue.h"
#include "src/sim/metrics.h"
#include "src/sim/prof.h"
#include "src/sim/trace.h"
#include "src/sync/eventcount.h"

namespace mks {

struct KernelContext {
  KernelContext(uint32_t memory_frames, HwFeatures features, double structured_factor,
                uint64_t secret_seed, uint16_t cpu_count = 1, Cycles connect_cost = 0)
      : cost(&clock),
        trace(&clock, &metrics),
        prof(&clock),
        eventcounts(&metrics),
        monitor(&clock, &metrics),
        memory(memory_frames, &cost, &metrics),
        volumes(&cost, &metrics, &trace),
        cpus(cpu_count, features, &cost, &metrics, &trace),
        smp(cpu_count, &metrics),
        secret(secret_seed) {
    cost.set_structured_factor(structured_factor);
    cpus.set_connect_cost(connect_cost);
    smp.set_prof(&prof);
  }

  Clock clock;
  CostModel cost;
  Metrics metrics;
  Tracer trace;  // virtual-time event rings; inert until Enable()d
  Prof prof;     // per-CPU cycle attribution + stall watchdog; inert until Enable()d
  EventQueue events;
  CallTracker tracker;
  EventcountTable eventcounts;
  ReferenceMonitor monitor;
  PrimaryMemory memory;
  VolumeControl volumes;
  ProcessorPool cpus;    // the machine's service processors
  CpuInterleave smp;     // deterministic quantum interleaving + per-CPU accounting
  uint16_t current_cpu = 0;  // CPU executing the current computation
  uint64_t secret;       // per-boot secret keying Bratt mythical identifiers

  // The processor the current computation runs on.  Code that handles the
  // in-flight reference (fault dispatch, wakeup-waiting, DSBR binding) uses
  // this; descriptor mutations use the broadcast forms on `cpus`.
  Processor& cpu() { return cpus.cpu(current_cpu); }

  // The current work window's virtual-time anchor.  Per-CPU local clocks
  // (smp) only advance when a window's charges are accrued at its end, so
  // mid-window code cannot read its own local "now" from smp alone.  The
  // dispatcher calls AnchorWindow() when it selects a CPU; LocalNow() is
  // then the CPU's local clock at window start plus the global-clock
  // progress charged since — the local time the in-flight computation has
  // actually reached.  With the default anchor (0, 0), LocalNow() equals the
  // global clock: correct for directly driven work, where one computation
  // runs at a time and the clock is globally monotone.
  Cycles window_anchor_local = 0;
  Cycles window_anchor_global = 0;
  void AnchorWindow() {
    window_anchor_local = smp.local_now(current_cpu);
    window_anchor_global = clock.now();
  }
  Cycles LocalNow() const { return window_anchor_local + (clock.now() - window_anchor_global); }
};

// Canonical module names used in both the declared lattice and the runtime
// tracker.  Matching the names exactly is what lets tests compare them.
namespace module_names {
inline constexpr const char* kCoreSegment = "core_segment_manager";
inline constexpr const char* kVproc = "virtual_processor_manager";
inline constexpr const char* kDiskVolume = "disk_volume_control";
inline constexpr const char* kQuotaCell = "quota_cell_manager";
inline constexpr const char* kPageFrame = "page_frame_manager";
inline constexpr const char* kSegment = "segment_manager";
inline constexpr const char* kAddressSpace = "address_space_manager";
inline constexpr const char* kKnownSegment = "known_segment_manager";
inline constexpr const char* kDirectory = "directory_manager";
inline constexpr const char* kUserProcess = "user_process_manager";
inline constexpr const char* kGates = "gate_keeper";
}  // namespace module_names

}  // namespace mks

#endif  // MKS_KERNEL_CONTEXT_H_
