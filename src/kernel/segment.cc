#include "src/kernel/segment.h"

#include <cassert>

namespace mks {

SegmentManager::SegmentManager(KernelContext* ctx, CoreSegmentManager* core_segs,
                               QuotaCellManager* quota, PageFrameManager* pfm)
    : ctx_(ctx),
      self_(ctx->tracker.Register(module_names::kSegment)),
      core_segs_(core_segs),
      quota_(quota),
      pfm_(pfm),
      id_ast_replacements_(ctx->metrics.Intern("seg.ast_replacements")),
      id_activations_(ctx->metrics.Intern("seg.activations")),
      id_deactivations_(ctx->metrics.Intern("seg.deactivations")),
      id_growths_(ctx->metrics.Intern("seg.growths")),
      id_relocations_(ctx->metrics.Intern("seg.relocations")),
      ev_activate_(ctx->trace.InternEvent("seg.activate")),
      ev_deactivate_(ctx->trace.InternEvent("seg.deactivate")) {}

Status SegmentManager::Init(uint32_t ast_slots) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  // Budget the AST region: one page-table's worth of words per slot plus
  // entry overhead, held in permanently resident core.
  const uint64_t words = static_cast<uint64_t>(ast_slots) * (kMaxSegmentPages + 16);
  const uint32_t pages = static_cast<uint32_t>((words + kPageWords - 1) / kPageWords);
  auto seg = core_segs_->Allocate("ast_area", pages == 0 ? 1 : pages);
  if (!seg.ok()) {
    return seg.status();
  }
  ast_area_ = *seg;
  ast_.assign(ast_slots, AstEntry{});
  for (uint32_t i = 0; i < ast_slots; ++i) {
    ast_[i].page_ec = ctx_->eventcounts.Create("ast_page_arrival_" + std::to_string(i));
  }
  return Status::Ok();
}

Result<uint32_t> SegmentManager::AllocateSlot() {
  // Prefer a free slot; otherwise deactivate the least recently used
  // unconnected entry.  Deactivation is NOT constrained by the directory
  // hierarchy: any unconnected segment, directory or not, is a candidate.
  for (uint32_t i = 0; i < ast_.size(); ++i) {
    if (!ast_[i].in_use) {
      return i;
    }
  }
  uint32_t victim = kNoAst;
  for (uint32_t i = 0; i < ast_.size(); ++i) {
    if (ast_[i].connections == 0 &&
        (victim == kNoAst || ast_[i].lru_stamp < ast_[victim].lru_stamp)) {
      victim = i;
    }
  }
  if (victim == kNoAst) {
    return Status(Code::kResourceExhausted, "active segment table full of connected segments");
  }
  ctx_->metrics.Inc(id_ast_replacements_);
  MKS_RETURN_IF_ERROR(Deactivate(victim));
  return victim;
}

Result<uint32_t> SegmentManager::Activate(SegmentUid uid, PackId pack, VtocIndex vtoc,
                                          QuotaCellId cell) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kProcedureCall * 4);
  if (by_uid_.count(uid) != 0) {
    return Status(Code::kAlreadyExists, "segment already active");
  }
  VtocEntry* entry = ctx_->volumes.pack(pack)->GetVtoc(vtoc);
  if (entry == nullptr || !(entry->uid == uid)) {
    return Status(Code::kInvalidArgument, "VTOC entry does not match segment uid");
  }
  MKS_ASSIGN_OR_RETURN(uint32_t slot, AllocateSlot());
  AstEntry& ast = ast_[slot];
  ast.in_use = true;
  ast.uid = uid;
  ast.pack = pack;
  ast.vtoc = vtoc;
  ast.quota_cell = cell;
  ast.connections = 0;
  ast.is_directory = entry->is_directory;
  ast.max_pages = entry->max_length_pages;
  ast.lru_stamp = ++lru_counter_;
  ast.page_table.owner = uid;
  ast.page_table.ptws.assign(ast.max_pages, Ptw{});
  for (uint32_t p = 0; p < ast.max_pages; ++p) {
    const FileMapEntry& fm = entry->file_map[p];
    Ptw& ptw = ast.page_table.ptws[p];
    if (fm.allocated || fm.zero) {
      ptw.unallocated = false;
      ptw.in_core = false;
    } else {
      ptw.unallocated = true;  // never-before-used: the quota-exception bit
    }
  }
  // Account the page table words against the resident AST area.
  (void)core_segs_->WriteWord(ast_area_, slot, uid.value);
  by_uid_[uid] = slot;
  ctx_->metrics.Inc(id_activations_);
  ctx_->trace.Instant(ev_activate_, slot, static_cast<uint32_t>(uid.value));
  return slot;
}

Result<uint32_t> SegmentManager::EnsureActive(SegmentUid uid, PackId pack, VtocIndex vtoc,
                                              QuotaCellId cell) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  auto it = by_uid_.find(uid);
  if (it != by_uid_.end()) {
    ast_[it->second].lru_stamp = ++lru_counter_;
    return it->second;
  }
  return Activate(uid, pack, vtoc, cell);
}

Status SegmentManager::Deactivate(uint32_t slot) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  if (slot >= ast_.size() || !ast_[slot].in_use) {
    return Status(Code::kInvalidArgument, "bad AST index");
  }
  AstEntry& ast = ast_[slot];
  if (ast.connections != 0) {
    return Status(Code::kFailedPrecondition, "segment still connected to address spaces");
  }
  // The slot's page-table storage is about to describe a different segment;
  // no cached translation through it may survive.
  ctx_->cpus.InvalidateAssociative(&ast.page_table);
  for (uint32_t p = 0; p < ast.max_pages; ++p) {
    if (ast.page_table.ptws[p].in_core) {
      MKS_RETURN_IF_ERROR(
          pfm_->EvictPage(&ast.page_table, p, ast.pack, ast.vtoc, ast.quota_cell, ast.page_ec));
    }
  }
  (void)core_segs_->WriteWord(ast_area_, slot, 0);
  by_uid_.erase(ast.uid);
  const EventcountId ec = ast.page_ec;
  ast = AstEntry{};
  ast.page_ec = ec;  // eventcounts are per-slot and reusable
  ctx_->metrics.Inc(id_deactivations_);
  ctx_->trace.Instant(ev_deactivate_, slot, 0);
  return Status::Ok();
}

AstEntry* SegmentManager::Find(SegmentUid uid) {
  auto it = by_uid_.find(uid);
  return it == by_uid_.end() ? nullptr : &ast_[it->second];
}

AstEntry* SegmentManager::Get(uint32_t ast) {
  if (ast >= ast_.size() || !ast_[ast].in_use) {
    return nullptr;
  }
  return &ast_[ast];
}

uint32_t SegmentManager::FindIndex(SegmentUid uid) const {
  auto it = by_uid_.find(uid);
  return it == by_uid_.end() ? kNoAst : it->second;
}

Status SegmentManager::GrowSegment(uint32_t slot, uint32_t page) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kProcedureCall * 2);
  AstEntry* ast = Get(slot);
  if (ast == nullptr) {
    return Status(Code::kInvalidArgument, "bad AST index");
  }
  if (page >= ast->max_pages) {
    return Status(Code::kOutOfBounds, "growth beyond maximum length");
  }
  // The quota cell name is static — no upward search of the hierarchy.
  if (ast->quota_cell.value != kNoQuotaCell.value) {
    MKS_RETURN_IF_ERROR(quota_->Charge(ast->quota_cell, 1));
  }
  Status added = pfm_->AddPage(&ast->page_table, page, ast->pack, ast->vtoc, ast->quota_cell,
                               ast->page_ec);
  if (!added.ok()) {
    if (ast->quota_cell.value != kNoQuotaCell.value) {
      (void)quota_->Refund(ast->quota_cell, 1);
    }
    return added;
  }
  ctx_->metrics.Inc(id_growths_);
  return Status::Ok();
}

Status SegmentManager::ServiceMissingPage(uint32_t slot, uint32_t page, ProcessId initiator,
                                          WaitSpec* wait) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  AstEntry* ast = Get(slot);
  if (ast == nullptr) {
    return Status(Code::kInvalidArgument, "bad AST index");
  }
  ast->lru_stamp = ++lru_counter_;
  return pfm_->ServiceMissingPage(&ast->page_table, page, ast->pack, ast->vtoc, ast->quota_cell,
                                  ast->page_ec, initiator, wait);
}

Result<SegmentManager::NewHome> SegmentManager::Relocate(uint32_t slot) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  AstEntry* ast = Get(slot);
  if (ast == nullptr) {
    return Status(Code::kInvalidArgument, "bad AST index");
  }
  if (ast->connections != 0) {
    return Status(Code::kFailedPrecondition, "disconnect all address spaces before relocation");
  }
  // Flush every resident page home first so the records are authoritative.
  for (uint32_t p = 0; p < ast->max_pages; ++p) {
    if (ast->page_table.ptws[p].in_core) {
      MKS_RETURN_IF_ERROR(
          pfm_->EvictPage(&ast->page_table, p, ast->pack, ast->vtoc, ast->quota_cell,
                          ast->page_ec));
    }
  }
  DiskPack* old_pack = ctx_->volumes.pack(ast->pack);
  VtocEntry* old_entry = old_pack->GetVtoc(ast->vtoc);
  if (old_entry == nullptr) {
    return Status(Code::kInternal, "segment lost its VTOC entry");
  }
  const uint32_t needed = old_entry->RecordsUsed() + 1;  // headroom for the pending growth
  MKS_ASSIGN_OR_RETURN(PackId new_pack_id, ctx_->volumes.ChoosePackExcluding(ast->pack, needed));
  DiskPack* new_pack = ctx_->volumes.pack(new_pack_id);
  MKS_ASSIGN_OR_RETURN(VtocIndex new_vtoc,
                       new_pack->AllocateVtoc(ast->uid, old_entry->is_directory));
  VtocEntry* new_entry = new_pack->GetVtoc(new_vtoc);
  new_entry->max_length_pages = old_entry->max_length_pages;
  new_entry->quota = old_entry->quota;

  std::vector<Word> buffer(kPageWords);
  for (uint32_t p = 0; p < old_entry->file_map.size(); ++p) {
    const FileMapEntry& old_fm = old_entry->file_map[p];
    FileMapEntry& new_fm = new_entry->file_map[p];
    new_fm.zero = old_fm.zero;
    if (old_fm.allocated) {
      auto rec = new_pack->AllocateRecord();
      if (!rec.ok()) {
        return rec.status();  // target filled up mid-move; caller retries
      }
      old_pack->CopyRecord(old_fm.record, buffer);
      new_pack->StoreRecord(*rec, buffer);
      // One read + one write of real transfer time per record moved.
      ctx_->cost.Charge(CodeStyle::kOptimized,
                        Costs::kDiskReadLatency + Costs::kDiskWriteLatency);
      new_fm.allocated = true;
      new_fm.record = *rec;
    }
  }
  old_pack->FreeVtoc(ast->vtoc);
  ast->pack = new_pack_id;
  ast->vtoc = new_vtoc;
  ctx_->metrics.Inc(id_relocations_);
  return NewHome{new_pack_id, new_vtoc};
}

void SegmentManager::NoteConnect(uint32_t slot) {
  AstEntry* ast = Get(slot);
  assert(ast != nullptr);
  ++ast->connections;
}

void SegmentManager::NoteDisconnect(uint32_t slot) {
  AstEntry* ast = Get(slot);
  assert(ast != nullptr && ast->connections > 0);
  --ast->connections;
}

uint32_t SegmentManager::active_count() const {
  uint32_t n = 0;
  for (const AstEntry& a : ast_) {
    if (a.in_use) {
      ++n;
    }
  }
  return n;
}

}  // namespace mks
