#include "src/kernel/gates.h"

namespace mks {

KernelGates::KernelGates(KernelContext* ctx, VirtualProcessorManager* vpm,
                         PageFrameManager* pfm, SegmentManager* segs,
                         AddressSpaceManager* spaces, KnownSegmentManager* ksm,
                         DirectoryManager* dirs)
    : ctx_(ctx),
      self_(ctx->tracker.Register(module_names::kGates)),
      vpm_(vpm),
      pfm_(pfm),
      segs_(segs),
      spaces_(spaces),
      ksm_(ksm),
      dirs_(dirs),
      id_user_advances_(ctx->metrics.Intern("gates.user_advances")),
      id_user_awaits_(ctx->metrics.Intern("gates.user_awaits")),
      id_upward_signals_(ctx->metrics.Intern("gates.upward_signals")),
      id_locked_descriptor_waits_(ctx->metrics.Intern("gates.locked_descriptor_waits")),
      id_read_gate_ops_(ctx->metrics.Intern("gates.read_ops")),
      id_write_gate_ops_(ctx->metrics.Intern("gates.write_ops")),
      ev_gate_call_(ctx->trace.InternEvent("gate.call")),
      ev_gate_read_(ctx->trace.InternEvent("gate.read")),
      ev_gate_write_(ctx->trace.InternEvent("gate.write")),
      ev_reference_(ctx->trace.InternEvent("gate.reference")),
      ev_locked_park_(ctx->trace.InternEvent("fault.locked_park")),
      hist_reference_(ctx->metrics.InternHistogram("gate.reference_cycles")) {}

Result<EntryId> KernelGates::Search(ProcContext& ctx, EntryId dir, std::string_view name) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Prof::Scope gate(&ctx_->prof, ProfDomain::kGate);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kGateCall);
  TraceGate(ctx, GateOp::kSearch);
  return dirs_->Search(ctx.subject, dir, name);
}

Result<EntryId> KernelGates::CreateSegment(ProcContext& ctx, EntryId dir, std::string name,
                                           Acl acl, Label label) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Prof::Scope gate(&ctx_->prof, ProfDomain::kGate);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kGateCall);
  TraceGate(ctx, GateOp::kCreateSegment);
  return dirs_->CreateSegmentEntry(ctx.subject, dir, std::move(name), std::move(acl), label);
}

Result<EntryId> KernelGates::CreateDirectory(ProcContext& ctx, EntryId dir, std::string name,
                                             Acl acl, Label label) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Prof::Scope gate(&ctx_->prof, ProfDomain::kGate);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kGateCall);
  TraceGate(ctx, GateOp::kCreateDirectory);
  return dirs_->CreateDirectoryEntry(ctx.subject, dir, std::move(name), std::move(acl), label);
}

Status KernelGates::Delete(ProcContext& ctx, EntryId dir, std::string_view name) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Prof::Scope gate(&ctx_->prof, ProfDomain::kGate);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kGateCall);
  TraceGate(ctx, GateOp::kDelete);
  return dirs_->DeleteEntry(ctx.subject, dir, name);
}

Status KernelGates::Rename(ProcContext& ctx, EntryId dir, std::string_view old_name,
                           std::string new_name) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Prof::Scope gate(&ctx_->prof, ProfDomain::kGate);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kGateCall);
  TraceGate(ctx, GateOp::kRename);
  return dirs_->RenameEntry(ctx.subject, dir, old_name, std::move(new_name));
}

Status KernelGates::SetAcl(ProcContext& ctx, EntryId dir, std::string_view name, Acl acl) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Prof::Scope gate(&ctx_->prof, ProfDomain::kGate);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kGateCall);
  TraceGate(ctx, GateOp::kSetAcl);
  return dirs_->SetAcl(ctx.subject, dir, name, std::move(acl));
}

Status KernelGates::ListNames(ProcContext& ctx, EntryId dir, std::vector<std::string>* out) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Prof::Scope gate(&ctx_->prof, ProfDomain::kGate);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kGateCall);
  TraceGate(ctx, GateOp::kListNames);
  return dirs_->ListNames(ctx.subject, dir, out);
}

Status KernelGates::SetQuota(ProcContext& ctx, EntryId dir, uint64_t limit) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Prof::Scope gate(&ctx_->prof, ProfDomain::kGate);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kGateCall);
  TraceGate(ctx, GateOp::kSetQuota);
  return dirs_->SetQuota(ctx.subject, dir, limit);
}

Status KernelGates::RemoveQuota(ProcContext& ctx, EntryId dir) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Prof::Scope gate(&ctx_->prof, ProfDomain::kGate);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kGateCall);
  TraceGate(ctx, GateOp::kRemoveQuota);
  return dirs_->RemoveQuota(ctx.subject, dir);
}

Result<QuotaStatus> KernelGates::GetQuota(ProcContext& ctx, EntryId dir) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Prof::Scope gate(&ctx_->prof, ProfDomain::kGate);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kGateCall);
  TraceGate(ctx, GateOp::kGetQuota);
  return dirs_->GetQuota(ctx.subject, dir);
}

Result<Segno> KernelGates::Initiate(ProcContext& ctx, EntryId target) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Prof::Scope gate(&ctx_->prof, ProfDomain::kGate);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kGateCall);
  TraceGate(ctx, GateOp::kInitiate);
  MKS_ASSIGN_OR_RETURN(EntryInfo info, dirs_->ResolveForInitiate(ctx.subject, target));
  // Ring bracket: a user segment is usable from the subject's ring.
  return ksm_->Initiate(ctx.pid, info.home, info.modes, ctx.subject.ring);
}

Status KernelGates::Terminate(ProcContext& ctx, Segno segno) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Prof::Scope gate(&ctx_->prof, ProfDomain::kGate);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kGateCall);
  TraceGate(ctx, GateOp::kTerminate);
  return ksm_->Terminate(ctx.pid, segno);
}

Result<EventcountId> KernelGates::CreateEventcount(ProcContext& ctx, Label label) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Prof::Scope gate(&ctx_->prof, ProfDomain::kGate);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kGateCall);
  TraceGate(ctx, GateOp::kCreateEventcount);
  if (!label.Dominates(ctx.subject.label)) {
    return Status(Code::kNoAccess, "*-property: eventcount must dominate creator");
  }
  const EventcountId ec = ctx_->eventcounts.Create("user_ec");
  if (ec.value >= user_eventcounts_.size()) {
    user_eventcounts_.resize(ec.value + 1);
  }
  user_eventcounts_[ec.value] = UserEventcount{true, label};
  return ec;
}

Status KernelGates::AdvanceEventcount(ProcContext& ctx, EventcountId ec) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Prof::Scope gate(&ctx_->prof, ProfDomain::kGate);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kGateCall);
  TraceGate(ctx, GateOp::kAdvanceEventcount);
  if (ec.value >= user_eventcounts_.size() || !user_eventcounts_[ec.value].valid) {
    return Status(Code::kNotFound, "no such eventcount");
  }
  MKS_RETURN_IF_ERROR(ctx_->monitor.CheckFlow(ctx.subject, user_eventcounts_[ec.value].label,
                                              FlowDirection::kModify));
  vpm_->Advance(ec);
  ctx_->metrics.Inc(id_user_advances_);
  return Status::Ok();
}

Result<uint64_t> KernelGates::ReadEventcount(ProcContext& ctx, EventcountId ec) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Prof::Scope gate(&ctx_->prof, ProfDomain::kGate);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kGateCall);
  TraceGate(ctx, GateOp::kReadEventcount);
  if (ec.value >= user_eventcounts_.size() || !user_eventcounts_[ec.value].valid) {
    return Status(Code::kNotFound, "no such eventcount");
  }
  MKS_RETURN_IF_ERROR(ctx_->monitor.CheckFlow(ctx.subject, user_eventcounts_[ec.value].label,
                                              FlowDirection::kObserve));
  return ctx_->eventcounts.Read(ec);
}

Status KernelGates::AwaitEventcount(ProcContext& ctx, EventcountId ec, uint64_t target) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Prof::Scope gate(&ctx_->prof, ProfDomain::kGate);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kGateCall);
  TraceGate(ctx, GateOp::kAwaitEventcount);
  if (ec.value >= user_eventcounts_.size() || !user_eventcounts_[ec.value].valid) {
    return Status(Code::kNotFound, "no such eventcount");
  }
  MKS_RETURN_IF_ERROR(ctx_->monitor.CheckFlow(ctx.subject, user_eventcounts_[ec.value].label,
                                              FlowDirection::kObserve));
  if (ctx_->eventcounts.Read(ec) >= target) {
    return Status::Ok();
  }
  ctx.pending_wait.valid = true;
  ctx.pending_wait.ec = ec;
  ctx.pending_wait.target = target;
  ctx_->metrics.Inc(id_user_awaits_);
  return Status(Code::kBlocked, "awaiting eventcount");
}

Result<Word> KernelGates::Read(ProcContext& ctx, Segno segno, uint32_t offset) {
  Word value = 0;
  MKS_RETURN_IF_ERROR(Reference(ctx, segno, offset, AccessMode::kRead, &value, 0));
  return value;
}

Status KernelGates::Write(ProcContext& ctx, Segno segno, uint32_t offset, Word value) {
  return Reference(ctx, segno, offset, AccessMode::kWrite, nullptr, value);
}

Status KernelGates::Reference(ProcContext& ctx, Segno segno, uint32_t offset, AccessMode mode,
                              Word* out, Word in) {
  // Span over the whole fault loop; the duration is the latency the user
  // program observes for this reference (fast path: a few cycles).
  Tracer::Span span(&ctx_->trace, ev_reference_, ctx.pid.value, segno.value,
                    hist_reference_);
  ctx.pending_wait = WaitSpec{};
  spaces_->BindToProcessor(&ctx_->cpu(), ctx.pid);
  for (int iteration = 0; iteration < kMaxFaultIterations; ++iteration) {
    const AccessResult access = ctx_->cpu().Access(segno, offset, mode, ctx.subject.ring);
    if (access.ok) {
      if (mode == AccessMode::kRead) {
        *out = ctx_->memory.ReadWord(access.abs_addr);
      } else {
        ctx_->memory.WriteWord(access.abs_addr, in);
      }
      return Status::Ok();
    }
    // A hardware exception enters the supervisor afresh: no caller stack is
    // carried across the fault boundary.
    CallTracker::SignalScope fresh_entry(&ctx_->tracker);
    // Everything from here to retry is fault service; the paging and naming
    // layers open their own domains underneath.
    Prof::Scope fault(&ctx_->prof, ProfDomain::kFaultService);
    switch (access.fault.kind) {
      case FaultKind::kMissingSegment: {
        MKS_RETURN_IF_ERROR(ksm_->HandleSegmentFault(ctx.pid, segno));
        break;
      }
      case FaultKind::kMissingPage: {
        WaitSpec wait;
        Status serviced = ksm_->HandleMissingPage(ctx.pid, segno, access.fault.page, &wait);
        if (serviced.code() == Code::kBlocked) {
          ctx.pending_wait = wait;
          return serviced;
        }
        MKS_RETURN_IF_ERROR(serviced);
        break;
      }
      case FaultKind::kQuotaException: {
        MoveSignal signal;
        WaitSpec wait;
        Status grown =
            ksm_->HandleQuotaException(ctx.pid, segno, access.fault.page, &signal, &wait);
        if (signal.valid) {
          // The upward software signal: the dispatcher — with nothing pending
          // below — transfers the new home to the directory manager.
          ctx_->metrics.Inc(id_upward_signals_);
          MKS_RETURN_IF_ERROR(
              dirs_->CompleteSegmentMove(signal.uid, signal.new_pack, signal.new_vtoc));
        }
        MKS_RETURN_IF_ERROR(grown);
        break;
      }
      case FaultKind::kLockedDescriptor: {
        // Another processor's fault service holds the descriptor.  Arm the
        // wakeup-waiting switch and await the segment's page-arrival event.
        ctx_->cpu().ArmWakeupWaiting();
        const KstEntry* entry = ksm_->Lookup(ctx.pid, segno);
        if (entry == nullptr) {
          return Status(Code::kInvalidSegno, "locked descriptor on unknown segment");
        }
        AstEntry* ast = segs_->Find(entry->home.uid);
        if (ast == nullptr) {
          return Status(Code::kInternal, "locked descriptor for inactive segment");
        }
        ctx.pending_wait.valid = true;
        ctx.pending_wait.ec = ast->page_ec;
        ctx.pending_wait.target = ctx_->eventcounts.Read(ast->page_ec) + 1;
        ctx_->metrics.Inc(id_locked_descriptor_waits_);
        ctx_->trace.Instant(ev_locked_park_, ctx.pid.value, segno.value);
        return Status(Code::kBlocked, "descriptor locked");
      }
      case FaultKind::kOutOfBounds:
        return Status(Code::kOutOfBounds, "beyond maximum segment length");
      case FaultKind::kAccessViolation:
        return Status(Code::kNoAccess, "hardware access violation");
      case FaultKind::kRingViolation:
        return Status(Code::kRingViolation, "ring bracket violation");
      case FaultKind::kNone:
        return Status(Code::kInternal, "faultless failure");
    }
  }
  return Status(Code::kInternal, "reference did not settle");
}

}  // namespace mks
