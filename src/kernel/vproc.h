// The virtual processor manager: level 1 of the two-level process
// implementation.
//
// A fixed number of virtual processors is created at initialization, with
// their state records permanently resident in a core segment — so this layer
// never uses the virtual memory and can serve as the interpreter for every
// module above it, including the virtual-memory modules themselves.  Some
// virtual processors are permanently bound to kernel tasks (the page-I/O
// daemon, the user-process scheduler); the rest form the pool multiplexed
// among user processes by level 2.
//
// Fixing the number of processors buys the simplifications Brinch Hansen
// argued for [Brinch Hansen, 1975]; the price — reserving the fastest memory
// for every processor state — is kept small precisely because the pool is a
// small, fixed subset rather than one slot per user process.
#ifndef MKS_KERNEL_VPROC_H_
#define MKS_KERNEL_VPROC_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/kernel/core_segment.h"

namespace mks {

enum class VpState : uint8_t {
  kIdle = 0,     // in the user pool, unbound
  kReady = 1,    // bound kernel task with work pending, or woken from a wait
  kRunning = 2,  // dispatched
  kWaiting = 3,  // suspended on an eventcount
};

// A kernel task bound to a virtual processor.  Invoked on every scheduler
// pass; returns true if it performed work (used to detect quiescence).
using KernelTask = std::function<bool()>;

class VirtualProcessorManager {
 public:
  VirtualProcessorManager(KernelContext* ctx, CoreSegmentManager* core_segs);

  // Creates the fixed pool.  The state records are backed by a dedicated
  // core segment allocated here (an address-space/map dependency on the core
  // segment manager only).
  Status Init(uint16_t vp_count);

  uint16_t vp_count() const { return static_cast<uint16_t>(vps_.size()); }

  // Permanently binds `task` to a vp.  kResourceExhausted when every vp is
  // bound — the fixed pool is a real limit, not a soft one.
  Result<VpId> BindKernelTask(std::string name, KernelTask task);

  // Unbound vps available for multiplexing user processes (level 2).
  std::vector<VpId> UserPool() const;
  Result<VpId> AcquireIdleUserVp();
  // CPU-affine acquisition (sharded dispatch): prefers an idle vp whose
  // state record was last loaded on `prefer_cpu`, falling back to the
  // rotating cursor.  With a connect cost configured, loading a vp state
  // last touched by another CPU charges one interconnect transfer.
  Result<VpId> AcquireIdleUserVp(uint16_t prefer_cpu);
  void ReleaseUserVp(VpId vp);

  // Virtual cycles to migrate a vp state record between CPUs (0 = free, the
  // legacy model).  Wired from KernelConfig::connect_cost at construction of
  // the kernel; charges only materialize with a multi-CPU pool.
  void set_connect_cost(Cycles cost) { connect_cost_ = cost; }

  // Eventcount interface.  Await returns true when the target is already
  // satisfied; otherwise the vp is marked waiting and false is returned.
  bool Await(VpId vp, EventcountId ec, uint64_t target);
  // Advances the eventcount and readies every woken vp.
  void Advance(EventcountId ec);

  // Runs each ready kernel-task vp once; true if any task reported work.
  bool RunKernelTasks();

  // Runs one bound kernel task by name (benches and tests pump a single
  // daemon without a full scheduler pass); true if it reported work, false
  // when idle or no such task is bound.
  bool RunKernelTask(std::string_view name);

  VpState state(VpId vp) const;
  const std::string& task_name(VpId vp) const;
  bool IsKernelVp(VpId vp) const;

  // Busy-time accounting: the level-2 scheduler attributes each quantum's
  // cycles to the vp that executed it.  MaxBusy() estimates the parallel
  // makespan a multiprocessor configuration would see (the simulator itself
  // charges a single global clock).
  void AccrueBusy(VpId vp, Cycles cycles);
  Cycles busy(VpId vp) const;
  Cycles MaxBusy() const;

 private:
  void StoreState(VpId vp);  // writes the state record through the core segment
  // Shared tail of both acquisition paths: marks vp `i` running, charges the
  // switch (and the migration transfer when its state last ran elsewhere).
  Result<VpId> TakeUserVp(uint16_t i);

  struct Vp {
    VpState state = VpState::kIdle;
    bool kernel_bound = false;
    std::string name;
    KernelTask task;
    Cycles busy = 0;
    uint16_t last_cpu = 0;  // CPU that last loaded this vp's state record
  };

  KernelContext* ctx_;
  ModuleId self_;
  CoreSegmentManager* core_segs_;
  Cycles connect_cost_ = 0;
  MetricId id_pool_size_;
  MetricId id_dispatches_;
  MetricId id_vp_migrations_;
  MetricId id_vp_migration_cycles_;
  TraceEventId ev_ec_advance_;
  TraceEventId ev_vp_dispatch_;
  TraceEventId ev_kernel_task_;
  CoreSegId state_seg_{};
  std::vector<Vp> vps_;
  uint16_t acquire_cursor_ = 0;  // rotate dispatch across the pool
};

}  // namespace mks

#endif  // MKS_KERNEL_VPROC_H_
