#include "src/kernel/page_frame.h"

#include <cassert>

namespace mks {

PageFrameManager::PageFrameManager(KernelContext* ctx, CoreSegmentManager* core_segs,
                                   QuotaCellManager* quota, VirtualProcessorManager* vpm)
    : ctx_(ctx),
      self_(ctx->tracker.Register(module_names::kPageFrame)),
      core_segs_(core_segs),
      quota_(quota),
      vpm_(vpm),
      id_evictions_(ctx->metrics.Intern("pfm.evictions")),
      id_no_evictable_frame_(ctx->metrics.Intern("pfm.no_evictable_frame")),
      id_zero_reclaims_(ctx->metrics.Intern("pfm.zero_reclaims")),
      id_zero_retained_(ctx->metrics.Intern("pfm.zero_retained")),
      id_writebacks_(ctx->metrics.Intern("pfm.writebacks")),
      id_faults_serviced_(ctx->metrics.Intern("pfm.faults_serviced")),
      id_zero_page_reallocations_(ctx->metrics.Intern("pfm.zero_page_reallocations")),
      id_async_reads_(ctx->metrics.Intern("pfm.async_reads")),
      id_io_completions_(ctx->metrics.Intern("pfm.io_completions")),
      id_pages_added_(ctx->metrics.Intern("pfm.pages_added")),
      id_daemon_writes_(ctx->metrics.Intern("pfm.daemon_writes")),
      id_inline_evictions_(ctx->metrics.Intern("pfm.inline_evictions")),
      id_precleaned_frames_(ctx->metrics.Intern("pfm.precleaned_frames")),
      id_queued_writebacks_(ctx->metrics.Intern("pfm.queued_writebacks")),
      id_prefetch_issued_(ctx->metrics.Intern("pfm.prefetch_issued")),
      id_prefetch_hits_(ctx->metrics.Intern("pfm.prefetch_hits")),
      id_prefetch_waste_(ctx->metrics.Intern("pfm.prefetch_waste")),
      ev_fault_service_(ctx->trace.InternEvent("fault.page_service")),
      ev_fault_posted_(ctx->trace.InternEvent("fault.page_posted")),
      ev_io_complete_(ctx->trace.InternEvent("io.complete")),
      hist_fault_service_(ctx->metrics.InternHistogram("fault.service_cycles")) {}

Status PageFrameManager::Init() {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  first_frame_ = core_segs_->FirstPageableFrame();
  frame_limit_ = ctx_->memory.frame_count();
  if (first_frame_ >= frame_limit_) {
    return Status(Code::kResourceExhausted, "no pageable frames left");
  }
  frames_.assign(frame_limit_ - first_frame_, FrameInfo{});
  free_list_.clear();
  for (uint32_t f = frame_limit_; f > first_frame_; --f) {
    free_list_.push_back(FrameIndex(f - 1));
  }
  return Status::Ok();
}

uint32_t PageFrameManager::ClockSelectVictim() {
  // Clock replacement over the pageable region.
  const uint32_t n = static_cast<uint32_t>(frames_.size());
  for (uint32_t step = 0; step < 2 * n; ++step) {
    const uint32_t slot = clock_hand_;
    ++clock_hand_;
    if (clock_hand_ == n) {
      clock_hand_ = 0;
    }
    FrameInfo& fi = frames_[slot];
    if (fi.state != FrameState::kInUse || fi.pt == nullptr) {
      continue;
    }
    Ptw& ptw = fi.pt->ptws[fi.page];
    if (ptw.locked) {
      continue;  // a fault is in service on this page
    }
    if (ptw.used) {
      if (fi.prefetched) {
        // First evidence the anticipated page was actually referenced.
        fi.prefetched = false;
        ctx_->metrics.Inc(id_prefetch_hits_);
      }
      ptw.used = false;  // second chance
      fi.prefetch_grace = false;
      continue;
    }
    if (fi.prefetch_grace) {
      fi.prefetch_grace = false;  // one sweep of grace for an unread prefetch
      continue;
    }
    return slot;
  }
  return UINT32_MAX;
}

Result<FrameIndex> PageFrameManager::AcquireFrame() {
  // Frame supply is paging I/O: the inline-eviction fallback pays a disk
  // writeback right here on the fault path.
  Prof::Scope io(&ctx_->prof, ProfDomain::kPagingIo);
  if (!free_list_.empty()) {
    FrameIndex frame = free_list_.back();
    free_list_.pop_back();
    info(frame).state = FrameState::kInUse;
    return frame;
  }
  const uint32_t slot = ClockSelectVictim();
  if (slot == UINT32_MAX) {
    ctx_->metrics.Inc(id_no_evictable_frame_);
    return Status(Code::kResourceExhausted, "no evictable page frame");
  }
  // The pool is dry: the fault path pays the eviction inline — the fallback
  // the pre-cleaner exists to make rare.
  const FrameIndex victim(first_frame_ + slot);
  ctx_->metrics.Inc(id_evictions_);
  ctx_->metrics.Inc(id_inline_evictions_);
  MKS_RETURN_IF_ERROR(CleanAndRelease(victim));
  FrameIndex frame = free_list_.back();
  free_list_.pop_back();
  info(frame).state = FrameState::kInUse;
  return frame;
}

Status PageFrameManager::CleanAndRelease(FrameIndex frame, bool queue_writeback) {
  FrameInfo& fi = info(frame);
  assert(fi.state == FrameState::kInUse && fi.pt != nullptr);
  Ptw& ptw = fi.pt->ptws[fi.page];
  VtocEntry* entry = ctx_->volumes.pack(fi.pack)->GetVtoc(fi.vtoc);
  if (entry == nullptr) {
    return Status(Code::kInternal, "VTOC entry vanished under a resident page");
  }
  FileMapEntry& fm = entry->file_map[fi.page];
  if (fi.prefetched) {
    // Final verdict on an anticipated page that the clock never re-examined.
    ctx_->metrics.Inc(ptw.used ? id_prefetch_hits_ : id_prefetch_waste_);
    fi.prefetched = false;
  }

  if (ptw.modified) {
    // The page-removal algorithm must scan the page for the zero-page
    // optimization — the (otherwise unnecessary) access to all data the
    // paper calls out.
    const bool zero = ctx_->memory.FrameIsZero(frame);
    if (zero && !retain_zero_records_) {
      if (fm.allocated) {
        ctx_->volumes.pack(fi.pack)->FreeRecord(fm.record);
        fm.allocated = false;
      }
      fm.zero = true;
      if (fi.cell.value != UINT32_MAX) {
        // The accounting write a mere read may ultimately have caused.
        (void)quota_->Refund(fi.cell, 1);
      }
      ctx_->metrics.Inc(id_zero_reclaims_);
    } else if (zero && retain_zero_records_) {
      // Channel-closed mode: keep the record and the charge; remember the
      // zero content so re-touch avoids the disk read.
      fm.zero = true;
      ctx_->metrics.Inc(id_zero_retained_);
    } else {
      assert(fm.allocated);
      fm.zero = false;
      if (queue_writeback) {
        // Staged on the pack's request queue: the data is copied now, so the
        // frame is immediately reusable; the (batched) latency is charged
        // when the daemon dispatches the round.
        ctx_->volumes.pack(fi.pack)->QueueWrite(fm.record, ctx_->memory.FrameSpan(frame), 0);
        ctx_->metrics.Inc(id_queued_writebacks_);
      } else {
        ctx_->volumes.pack(fi.pack)->WriteRecord(fm.record, ctx_->memory.FrameSpan(frame));
      }
      ctx_->metrics.Inc(id_writebacks_);
    }
  }
  ptw.in_core = false;
  ptw.used = false;
  ptw.modified = false;
  // The page's descriptor no longer resolves to a frame: any associative
  // memory entry pairing it with the old frame must go before the frame is
  // reused.
  ctx_->cpus.InvalidateAssociative(&ptw);
  fi = FrameInfo{};
  free_list_.push_back(frame);
  return Status::Ok();
}

Status PageFrameManager::ServiceMissingPage(PageTable* pt, uint32_t page, PackId pack,
                                            VtocIndex vtoc, QuotaCellId cell,
                                            EventcountId seg_ec, ProcessId initiator,
                                            WaitSpec* wait) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Prof::Scope fault(&ctx_->prof, ProfDomain::kFaultService);
  const Cycles fault_begin = ctx_->trace.Begin();
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kFaultEntry);
  ctx_->metrics.Inc(id_faults_serviced_);
  Ptw& ptw = pt->ptws[page];
  if (ptw.in_core && !ptw.locked) {
    return Status::Ok();  // another processor already serviced the page
  }
  // Note on locked descriptors: with the lock bit the hardware locks the PTW
  // as part of raising this very fault, so `ptw.locked` here normally means
  // "locked by the fault now being serviced".  A page with a *posted*
  // transfer (async demand read or a readahead) faults as kLockedDescriptor
  // instead — the processor sees the already-locked PTW — and the gate layer
  // parks the toucher on the segment's page-arrival eventcount; such faults
  // never reach this routine.  Synchronous mode leaves no locked windows at
  // all: the anticipatory sweep drains the request queue before returning.
  VtocEntry* entry = ctx_->volumes.pack(pack)->GetVtoc(vtoc);
  if (entry == nullptr) {
    return Status(Code::kInternal, "missing page for a segment with no VTOC entry");
  }
  FileMapEntry& fm = entry->file_map[page];
  if (!fm.allocated && !fm.zero) {
    return Status(Code::kInternal, "missing page fault on a never-used page");
  }

  MKS_ASSIGN_OR_RETURN(FrameIndex frame, AcquireFrame());
  FrameInfo& fi = info(frame);
  fi.pt = pt;
  fi.page = page;
  fi.pack = pack;
  fi.vtoc = vtoc;
  fi.cell = cell;
  fi.seg_ec = seg_ec;

  if (fm.zero) {
    // Zero page: no disk read.  If its record was reclaimed, reading it
    // implicitly writes — a record must be allocated and the quota count
    // updated, "perhaps on the other side of a protection boundary".
    ctx_->memory.ZeroFrame(frame);
    if (!fm.allocated) {
      if (cell.value != UINT32_MAX) {
        Status charged = quota_->Charge(cell, 1);
        if (!charged.ok()) {
          fi = FrameInfo{};
          fi.state = FrameState::kFree;
          free_list_.push_back(frame);
          return charged;
        }
      }
      auto record = ctx_->volumes.pack(pack)->AllocateRecord();
      if (!record.ok()) {
        if (cell.value != UINT32_MAX) {
          (void)quota_->Refund(cell, 1);
        }
        fi = FrameInfo{};
        fi.state = FrameState::kFree;
        free_list_.push_back(frame);
        return record.status();
      }
      fm.allocated = true;
      fm.record = *record;
      ctx_->metrics.Inc(id_zero_page_reallocations_);
    }
    fm.zero = false;
    ptw.frame = frame.value;
    ptw.in_core = true;
    ptw.locked = false;
    ptw.modified = true;  // core copy now diverges from the reclaimed record
    vpm_->Advance(seg_ec);
    if (pipeline_.readahead) {
      MaybeReadahead(pt, page, pack, vtoc, cell, seg_ec);
    }
    ctx_->trace.CloseSpan(fault_begin, ev_fault_service_, initiator.value, page,
                          hist_fault_service_);
    return Status::Ok();
  }

  if (!async_) {
    {
      Prof::Scope io(&ctx_->prof, ProfDomain::kPagingIo);
      ctx_->volumes.ReadRecordLazy(pack, fm.record, &ctx_->memory, frame);
    }
    ptw.frame = frame.value;
    ptw.in_core = true;
    ptw.locked = false;
    vpm_->Advance(seg_ec);
    if (pipeline_.readahead) {
      MaybeReadahead(pt, page, pack, vtoc, cell, seg_ec);
    }
    ctx_->trace.CloseSpan(fault_begin, ev_fault_service_, initiator.value, page,
                          hist_fault_service_);
    return Status::Ok();
  }

  // Asynchronous read: leave the descriptor locked, post the transfer, and
  // tell the caller what to await.
  ptw.locked = true;
  fi.state = FrameState::kIoInProgress;
  fi.posted_at = fault_begin;
  ctx_->trace.Instant(ev_fault_posted_, initiator.value, page);
  ++pending_reads_;
  const RecordIndex record = fm.record;
  ctx_->events.Schedule(ctx_->clock.now() + Costs::kDiskReadLatency,
                        [this, frame, initiator]() {
                          completions_.push_back(Completion{frame, initiator});
                        });
  ctx_->metrics.Inc(id_async_reads_);
  (void)record;
  if (pipeline_.readahead) {
    MaybeReadahead(pt, page, pack, vtoc, cell, seg_ec);
  }
  if (wait != nullptr) {
    wait->valid = true;
    wait->ec = seg_ec;
    wait->target = ctx_->eventcounts.Read(seg_ec) + 1;
  }
  return Status(Code::kBlocked, "page read posted");
}

void PageFrameManager::MaybeReadahead(PageTable* pt, uint32_t page, PackId pack,
                                      VtocIndex vtoc, QuotaCellId cell, EventcountId seg_ec) {
  // Forward-sequential detection: the fault either extends the last demand
  // fault by one, or lands on the frontier of the last anticipatory window
  // (the first page NOT prefetched — the scan ran off the end of it).
  const bool sequential =
      (pt->last_fault_page != UINT32_MAX && page == pt->last_fault_page + 1) ||
      (pt->prefetch_until != 0 && page == pt->prefetch_until);
  pt->last_fault_page = page;
  if (!sequential) {
    return;
  }
  DiskPack* dp = ctx_->volumes.pack(pack);
  VtocEntry* entry = dp->GetVtoc(vtoc);
  if (entry == nullptr) {
    return;
  }
  // Start right after the faulting page: pages of a still-live window are
  // in core (or locked in flight) and stop the loop below, so a stale
  // `prefetch_until` from an earlier pass needs no special casing.
  const uint32_t stop = page + 1 + pipeline_.readahead_depth;
  uint32_t posted = 0;
  for (uint32_t q = page + 1; q < stop; ++q) {
    if (q >= pt->ptws.size() || q >= entry->file_map.size()) {
      break;
    }
    // Anticipation draws only on the pool above the low watermark, so it can
    // never push a demand fault into the inline-eviction fallback.
    if (free_list_.size() <= pipeline_.low_watermark) {
      break;
    }
    const FileMapEntry& fm = entry->file_map[q];
    if (!fm.allocated || fm.zero) {
      break;  // zero pages carry charge semantics; never prefetch them
    }
    Ptw& qptw = pt->ptws[q];
    if (qptw.in_core || qptw.locked || qptw.unallocated) {
      break;
    }
    const FrameIndex frame = free_list_.back();
    free_list_.pop_back();
    FrameInfo& fi = info(frame);
    fi.state = FrameState::kIoInProgress;
    fi.pt = pt;
    fi.page = q;
    fi.pack = pack;
    fi.vtoc = vtoc;
    fi.cell = cell;
    fi.seg_ec = seg_ec;
    fi.prefetched = true;
    fi.prefetch_grace = true;
    qptw.locked = true;  // colliding references wait on the page's eventcount
    dp->QueueRead(fm.record, frame.value);
    ctx_->metrics.Inc(id_prefetch_issued_);
    pt->prefetch_until = q + 1;
    ++posted;
  }
  if (posted > 0 && !async_) {
    // Synchronous mode has no daemon running between faults: the
    // anticipatory sweep completes before the fault returns, leaving no
    // locked window behind.
    Prof::Scope io(&ctx_->prof, ProfDomain::kPagingIo);
    while (dp->queued_io() > 0) {
      DispatchPackQueue(pack);
    }
  }
}

size_t PageFrameManager::DispatchPackQueue(PackId pack) {
  const size_t batch = pipeline_.batched_io ? pipeline_.io_batch_size : 1;
  std::vector<uint64_t> completed;
  const size_t dispatched = ctx_->volumes.pack(pack)->DispatchBatch(batch, &completed);
  for (uint64_t cookie : completed) {
    CompletePostedRead(FrameIndex(static_cast<uint32_t>(cookie)));
  }
  return dispatched;
}

void PageFrameManager::CompletePostedRead(FrameIndex frame) {
  FrameInfo& fi = info(frame);
  if (fi.state != FrameState::kIoInProgress || fi.pt == nullptr) {
    return;  // the segment was deactivated while the read was queued
  }
  VtocEntry* entry = ctx_->volumes.pack(fi.pack)->GetVtoc(fi.vtoc);
  if (entry != nullptr) {
    // The transfer latency was charged by the dispatch round; the copy is
    // free, like an asynchronous completion.
    const FileMapEntry& fm = entry->file_map[fi.page];
    ctx_->volumes.pack(fi.pack)->CopyRecord(fm.record,
                                            ctx_->memory.FrameSpanForOverwrite(frame));
  }
  Ptw& ptw = fi.pt->ptws[fi.page];
  ptw.frame = frame.value;
  ptw.in_core = true;
  ptw.locked = false;
  ptw.used = false;  // unreferenced until the scan actually arrives
  ptw.modified = false;
  fi.state = FrameState::kInUse;
  vpm_->Advance(fi.seg_ec);
  ctx_->metrics.Inc(id_io_completions_);
  ctx_->trace.Instant(ev_io_complete_, 0, fi.page);
}

bool PageFrameManager::PageIoDaemonStep() {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Prof::Scope io(&ctx_->prof, ProfDomain::kPagingIo);
  bool did_work = false;
  while (!completions_.empty()) {
    const Completion completion = completions_.front();
    completions_.pop_front();
    --pending_reads_;
    FrameInfo& fi = info(completion.frame);
    if (fi.state != FrameState::kIoInProgress || fi.pt == nullptr) {
      continue;  // the segment was deactivated while the read was in flight
    }
    VtocEntry* entry = ctx_->volumes.pack(fi.pack)->GetVtoc(fi.vtoc);
    if (entry != nullptr) {
      // The transfer latency already elapsed in simulated time; copy the
      // data without re-charging it.
      const FileMapEntry& fm = entry->file_map[fi.page];
      auto span = ctx_->memory.FrameSpanForOverwrite(completion.frame);
      ctx_->volumes.pack(fi.pack)->CopyRecord(fm.record, span);
    }
    Ptw& ptw = fi.pt->ptws[fi.page];
    ptw.frame = completion.frame.value;
    ptw.in_core = true;
    ptw.locked = false;  // unlock the descriptor
    fi.state = FrameState::kInUse;
    ctx_->cost.Charge(CodeStyle::kStructured, Costs::kProcedureCall);
    // Notify every waiter: level-1 vps via the eventcount, the parked user
    // process via the real-memory queue.
    vpm_->Advance(fi.seg_ec);
    if (upward_queue_ != nullptr && completion.initiator.value != 0) {
      (void)upward_queue_->Push(
          UpwardMessage{completion.initiator, /*code=*/1, /*payload=*/fi.page});
    }
    ctx_->metrics.Inc(id_io_completions_);
    // Close the fault.page_service span opened when the read was posted: the
    // histogram gets the full fault -> park -> I/O -> wakeup latency.
    ctx_->trace.CloseSpan(fi.posted_at, ev_fault_service_, completion.initiator.value,
                          fi.page, hist_fault_service_);
    fi.posted_at = 0;
    did_work = true;
  }
  // Dispatch the per-pack request queues: prefetch reads and batched daemon
  // writebacks complete here, one record-sorted round per pack per step.
  for (uint16_t p = 0; p < ctx_->volumes.pack_count(); ++p) {
    if (DispatchPackQueue(PackId(p)) > 0) {
      did_work = true;
    }
  }
  return did_work;
}

bool PageFrameManager::ReplenishFreePool() {
  if (free_list_.size() >= pipeline_.low_watermark) {
    return false;
  }
  bool any = false;
  while (free_list_.size() < pipeline_.high_watermark) {
    const uint32_t slot = ClockSelectVictim();
    if (slot == UINT32_MAX) {
      break;  // nothing evictable; the fault path will report exhaustion
    }
    const FrameIndex victim(first_frame_ + slot);
    ctx_->metrics.Inc(id_evictions_);
    ctx_->metrics.Inc(id_precleaned_frames_);
    if (!CleanAndRelease(victim, pipeline_.batched_io).ok()) {
      break;
    }
    any = true;
  }
  if (pipeline_.batched_io && any) {
    // Flush the staged writebacks in record-sorted rounds — the amortization
    // inline eviction can never have.
    for (uint16_t p = 0; p < ctx_->volumes.pack_count(); ++p) {
      while (ctx_->volumes.pack(PackId(p))->queued_io() > 0) {
        DispatchPackQueue(PackId(p));
      }
    }
  }
  return any;
}

Status PageFrameManager::AddPage(PageTable* pt, uint32_t page, PackId pack, VtocIndex vtoc,
                                 QuotaCellId cell, EventcountId seg_ec) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kProcedureCall);
  VtocEntry* entry = ctx_->volumes.pack(pack)->GetVtoc(vtoc);
  if (entry == nullptr) {
    return Status(Code::kInvalidArgument, "no VTOC entry for segment");
  }
  if (page >= entry->file_map.size()) {
    return Status(Code::kOutOfBounds, "page beyond maximum segment length");
  }
  FileMapEntry& fm = entry->file_map[page];
  if (fm.allocated || fm.zero) {
    return Status(Code::kFailedPrecondition, "page already exists");
  }
  // Allocate the record eagerly: the full-pack exception is detected here,
  // "at the end of this call chain", and reported back up as a status.
  MKS_ASSIGN_OR_RETURN(RecordIndex record, ctx_->volumes.pack(pack)->AllocateRecord());
  MKS_ASSIGN_OR_RETURN(FrameIndex frame, AcquireFrame());
  fm.allocated = true;
  fm.zero = false;
  fm.record = record;

  FrameInfo& fi = info(frame);
  fi.pt = pt;
  fi.page = page;
  fi.pack = pack;
  fi.vtoc = vtoc;
  // The governing cell rides along so a later zero-page reclaim of this page
  // refunds the same books that were charged for its growth.
  fi.cell = cell;
  fi.seg_ec = seg_ec;

  ctx_->memory.ZeroFrame(frame);
  Ptw& ptw = pt->ptws[page];
  ptw.frame = frame.value;
  ptw.in_core = true;
  ptw.unallocated = false;
  ptw.locked = false;
  ptw.used = true;
  ptw.modified = false;
  ctx_->metrics.Inc(id_pages_added_);
  return Status::Ok();
}

Status PageFrameManager::EvictPage(PageTable* pt, uint32_t page, PackId pack, VtocIndex vtoc,
                                   QuotaCellId cell, EventcountId seg_ec) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Ptw& ptw = pt->ptws[page];
  if (!ptw.in_core) {
    return Status::Ok();
  }
  if (ptw.locked) {
    return Status(Code::kFailedPrecondition, "page is in fault service");
  }
  const FrameIndex frame(ptw.frame);
  FrameInfo& fi = info(frame);
  // Refresh home coordinates (the caller is authoritative).
  fi.pack = pack;
  fi.vtoc = vtoc;
  fi.cell = cell;
  fi.seg_ec = seg_ec;
  return CleanAndRelease(frame);
}

void PageFrameManager::AuditIntegrity(std::vector<std::string>* findings) const {
  size_t in_use = 0;
  size_t in_io = 0;
  for (size_t slot = 0; slot < frames_.size(); ++slot) {
    const FrameInfo& fi = frames_[slot];
    const uint32_t frame = first_frame_ + static_cast<uint32_t>(slot);
    if (fi.state == FrameState::kFree) {
      continue;
    }
    if (fi.state == FrameState::kInUse) {
      ++in_use;
    } else {
      ++in_io;
    }
    if (fi.pt == nullptr) {
      // An in-use frame between AcquireFrame and installation is transient;
      // seeing one at audit time (quiescence) is a leak.
      findings->push_back("frame " + std::to_string(frame) + " in use with no page table");
      continue;
    }
    if (fi.state == FrameState::kInUse) {
      const Ptw& ptw = fi.pt->ptws[fi.page];
      if (!ptw.in_core) {
        findings->push_back("frame " + std::to_string(frame) +
                            " claims a page whose PTW is not in core");
      } else if (ptw.frame != frame) {
        findings->push_back("frame " + std::to_string(frame) + " vs PTW frame " +
                            std::to_string(ptw.frame) + ": cross-link broken");
      }
    }
  }
  const size_t total = frames_.size();
  if (free_list_.size() + in_use + in_io != total) {
    findings->push_back("frame accounting: free " + std::to_string(free_list_.size()) +
                        " + used " + std::to_string(in_use) + " + io " + std::to_string(in_io) +
                        " != total " + std::to_string(total));
  }
}

bool PageFrameManager::PageWriterStep(size_t max_writes) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  Prof::Scope io(&ctx_->prof, ProfDomain::kPagingIo);
  bool replenished = false;
  if (pipeline_.precleaning) {
    replenished = ReplenishFreePool();
  }
  size_t written = 0;
  bool queued = false;
  for (size_t slot = 0; slot < frames_.size() && written < max_writes; ++slot) {
    FrameInfo& fi = frames_[slot];
    if (fi.state != FrameState::kInUse || fi.pt == nullptr) {
      continue;
    }
    Ptw& ptw = fi.pt->ptws[fi.page];
    if (!ptw.modified || ptw.locked || ptw.used) {
      continue;  // clean, busy, or recently referenced
    }
    VtocEntry* entry = ctx_->volumes.pack(fi.pack)->GetVtoc(fi.vtoc);
    if (entry == nullptr) {
      continue;
    }
    FileMapEntry& fm = entry->file_map[fi.page];
    if (!fm.allocated) {
      continue;  // zero page without a record; leave for eviction-time logic
    }
    const FrameIndex frame(first_frame_ + static_cast<uint32_t>(slot));
    // Zero detection rides the write transfer for free (staging the data
    // reads every word anyway).  An all-zero page is NOT cleaned here: it
    // stays modified so the eviction path makes the reclaim-vs-retain
    // accounting decision — cleaning it would silently keep a record and a
    // quota charge the missing-page semantics say must be given back.
    const std::span<const Word> span = ctx_->memory.FrameSpan(frame);
    bool all_zero = true;
    for (const Word w : span) {
      if (w != 0) {
        all_zero = false;
        break;
      }
    }
    if (all_zero) {
      continue;
    }
    if (pipeline_.batched_io) {
      ctx_->volumes.pack(fi.pack)->QueueWrite(fm.record, ctx_->memory.FrameSpan(frame), 0);
      ctx_->metrics.Inc(id_queued_writebacks_);
      queued = true;
    } else {
      ctx_->volumes.pack(fi.pack)->WriteRecord(fm.record, ctx_->memory.FrameSpan(frame));
    }
    ptw.modified = false;
    ctx_->metrics.Inc(id_daemon_writes_);
    ++written;
  }
  if (queued) {
    for (uint16_t p = 0; p < ctx_->volumes.pack_count(); ++p) {
      while (ctx_->volumes.pack(PackId(p))->queued_io() > 0) {
        DispatchPackQueue(PackId(p));
      }
    }
  }
  return replenished || written > 0;
}

}  // namespace mks
