// The user process manager: level 2 of the two-level process implementation.
//
// An arbitrary number of user processes is multiplexed over the fixed pool of
// virtual processors.  Process state records live in ordinary segments — in
// virtual memory, which is exactly why level 1 cannot signal them directly:
// the state of the receiving process is not guaranteed to be in real memory.
// Reed's cure is wired through here: the page-I/O daemon (level 1) pushes a
// message into the real-memory queue, and this scheduler drains the queue,
// re-readies the parked process, and re-dispatches it.
//
// Simulated user programs are op-lists (read/write/compute).  An op that
// faults re-enters through the gate layer's dispatcher; a kBlocked result
// parks the process and frees its virtual processor for another process.
#ifndef MKS_KERNEL_UPROC_H_
#define MKS_KERNEL_UPROC_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/kernel/gates.h"
#include "src/sync/message_queue.h"

namespace mks {

struct UserOp {
  enum class Kind : uint8_t { kRead, kWrite, kCompute, kAdvance, kAwait };
  Kind kind = Kind::kCompute;
  Segno segno{};
  uint32_t offset = 0;
  Word value = 0;
  Cycles compute = 0;
  EventcountId ec{};

  static UserOp Read(Segno segno, uint32_t offset) {
    return UserOp{Kind::kRead, segno, offset, 0, 0, {}};
  }
  static UserOp Write(Segno segno, uint32_t offset, Word value) {
    return UserOp{Kind::kWrite, segno, offset, value, 0, {}};
  }
  static UserOp Compute(Cycles cycles) {
    return UserOp{Kind::kCompute, Segno{}, 0, 0, cycles, {}};
  }
  static UserOp Advance(EventcountId ec) {
    return UserOp{Kind::kAdvance, Segno{}, 0, 0, 0, ec};
  }
  // Await the eventcount reaching `value`.
  static UserOp Await(EventcountId ec, uint64_t target) {
    return UserOp{Kind::kAwait, Segno{}, 0, target, 0, ec};
  }
};

enum class ProcState : uint8_t { kReady, kRunning, kBlocked, kDone, kAborted };

struct ProcessStats {
  Cycles cpu_cycles = 0;
  uint64_t ops_executed = 0;
  uint64_t blocks = 0;
  uint64_t dispatches = 0;
  Status last_error;
};

// Dispatch-path configuration (mirrors the KernelConfig knobs; all defaults
// reproduce the legacy single-ready-list scheduler byte-for-byte).
struct DispatchConfig {
  bool sharded_runqueues = false;
  bool steal = false;
  Cycles connect_cost = 0;
  // Handoff-traffic policy for every scheduler lock (the global ready-list
  // lock and, in sharded mode, each run-queue shard's lock); contended
  // handoffs are priced in units of connect_cost line transfers.
  LockPolicy lock_policy = LockPolicy::kTestAndSet;
  uint16_t anderson_slots = 0;  // kAnderson array size; 0 = cpu_count
};

class UserProcessManager {
 public:
  UserProcessManager(KernelContext* ctx, CoreSegmentManager* core_segs,
                     VirtualProcessorManager* vpm, PageFrameManager* pfm, SegmentManager* segs,
                     KnownSegmentManager* ksm, KernelGates* gates);

  // Latches the dispatch knobs; with sharded_runqueues set, builds the
  // per-CPU run queues.  Called once at kernel construction, before any
  // process exists.
  void ConfigureDispatch(const DispatchConfig& config);

  // Builds the real-memory message queue in a core segment and hands it to
  // the page frame manager's level-1 side.
  Status Init();

  Result<ProcessId> CreateProcess(const Subject& subject);
  Status DestroyProcess(ProcessId pid);

  // Slab pooling of process slots (the login-storm fast path).  With the
  // knob on, DestroyProcess parks the slot — pid, KST allocation, and state
  // segment — on a free list instead of tearing it down, and CreateProcess
  // pops a parked slot instead of rebuilding from scratch.  Off (default)
  // is byte-identical to the build/tear-down-every-time path.
  void set_slab_processes(bool on) { slab_ = on; }
  size_t slab_free() const { return free_slots_.size(); }
  // Full teardown of every parked slot (KST, state segment, VTOC entry);
  // called at kernel shutdown so the on-disk image leaks nothing.
  Status DrainSlabs();

  Status SetProgram(ProcessId pid, std::vector<UserOp> program);
  // Restricts `pid` to the CPUs whose bits are set (bit k = CPU k); 0 — the
  // default — allows any CPU.  The mask must intersect the pool.  Takes
  // effect at the process's next (re-)enqueue and dispatch.
  Status SetAffinity(ProcessId pid, uint32_t cpu_mask);
  uint32_t affinity(ProcessId pid) const;
  ProcContext* Context(ProcessId pid);
  ProcState state(ProcessId pid) const;
  const ProcessStats& stats(ProcessId pid) const;

  // Ops each dispatched process may run before being preempted.
  void set_quantum(uint32_t quantum) { quantum_ = quantum; }

  // The sharded run queues, or nullptr in legacy (global-list) mode.
  const RunQueueSet* run_queues() const { return rq_.get(); }

  // The modelled global ready-list lock (contended only in legacy dispatch
  // mode with interconnect costs on), for lock-policy sweeps.
  const SimSpinLock& list_lock() const { return list_lock_; }

  // Runs the two-level scheduler until every process is done/aborted or
  // `max_passes` scheduler passes elapse.  Returns kOk on quiescence.
  Status RunUntilQuiescent(uint64_t max_passes);
  bool AllDone() const;

  RealMemoryQueue* queue() { return queue_.get(); }
  size_t process_count() const { return procs_.size(); }

 private:
  static constexpr uint16_t kNoCpu = UINT16_MAX;

  struct Process {
    ProcessId pid{};
    ProcContext ctx;
    ProcState state = ProcState::kReady;
    std::vector<UserOp> program;
    size_t pc = 0;
    VpId vp{};
    bool bound = false;
    Segno state_segno{};
    ProcessStats stats;
    uint32_t affinity = 0;      // allowed-CPU mask; 0 = any
    uint16_t last_cpu = kNoCpu; // CPU of the most recent dispatch
    bool queued = false;        // present in the sharded run queues
  };

  enum class DispatchOutcome : uint8_t { kRan, kNoVp };

  // A parked process slot awaiting reuse: the pid keeps its KST and its
  // state segment's storage; everything else was reset at park time.
  struct FreeSlot {
    ProcessId pid{};
    Segno state_segno{};
  };

  // One scheduler pass: kernel tasks, message drain, dispatch, execution.
  bool SchedulerPass();
  // The two dispatch bodies SchedulerPass selects between: the legacy scan
  // of the global ready list, and the sharded per-CPU queues.
  bool DispatchGlobal();
  bool DispatchSharded();
  // One quantum on `cpu`, windowed from `dispatch_start`: vp acquisition
  // (CPU-affine when `affine_vp`), process switch, state swap-in, the op
  // loop, and the quantum's accrual.  kNoVp = vp pool exhausted, nothing
  // charged or accrued yet.
  DispatchOutcome RunQuantumOn(Process& proc, uint16_t cpu, Cycles dispatch_start,
                               bool affine_vp);
  // Readies `proc` for dispatch: sharded mode enqueues it; legacy mode with
  // interconnect costs on touches the (modelled) global ready-list line.
  void EnqueueReady(Process& proc, uint16_t from_cpu, Cycles lnow);
  // The global ready list as a shared cache line: lock it from `cpu`,
  // paying spin and a transfer when another CPU touched it last.
  void TouchReadyList(uint16_t cpu, Cycles lnow);
  // proc.affinity clipped to the pool (0 = any CPU).
  uint32_t EffectiveMask(const Process& proc) const;
  // Cross-CPU scheduling charges only exist with a configured connect cost
  // and more than one CPU to cross between.
  bool sched_costs_on() const {
    return dcfg_.connect_cost > 0 && ctx_->smp.count() > 1;
  }
  // Accrues charges made outside a quantum window (queue ops) to `cpu`.
  void AccrueOutside(uint16_t cpu, Cycles since);
  // The stall watchdog's flight-recorder dump: profiler domain trees, tracer
  // ring tails, scheduler-lock owners, run-queue depths, and process states,
  // to stderr; then abort().
  [[noreturn]] void DumpStallAndAbort(uint64_t pass);
  void Park(Process& proc);
  void Finish(Process& proc, ProcState state, Status why);
  Status ExecOneOp(Process& proc);
  // Saves/restores the process state record through the paging machinery —
  // the honest "states live in virtual memory" dependency.
  Status SwapStateIn(Process& proc);
  void SwapStateOut(Process& proc);
  // Full teardown of a slot's kernel state: KST destroy, state-segment
  // deactivation, VTOC release.  Shared by DestroyProcess (slab off) and
  // DrainSlabs.
  Status ReleaseSlot(ProcessId pid, Segno state_segno);

  KernelContext* ctx_;
  ModuleId self_;
  CoreSegmentManager* core_segs_;
  VirtualProcessorManager* vpm_;
  PageFrameManager* pfm_;
  SegmentManager* segs_;
  KnownSegmentManager* ksm_;
  KernelGates* gates_;
  MetricId id_processes_created_;
  MetricId id_idle_cycles_;
  MetricId id_list_transfers_;
  MetricId id_list_transfer_cycles_;
  MetricId id_list_lock_spin_cycles_;
  MetricId id_proc_migrations_;
  MetricId id_proc_migration_cycles_;
  MetricId id_slab_reuses_;
  MetricId id_slab_parks_;
  TraceEventId ev_quantum_;
  TraceEventId ev_level1_;
  TraceEventId ev_park_;
  TraceEventId ev_wake_;
  HistId hist_quantum_;
  std::unique_ptr<RealMemoryQueue> queue_;
  std::unordered_map<ProcessId, Process> procs_;
  DispatchConfig dcfg_;
  std::unique_ptr<RunQueueSet> rq_;
  SimSpinLock list_lock_;        // the modelled global ready-list lock
  uint16_t list_owner_ = kNoCpu; // CPU that last touched the list's line
  bool slab_ = false;
  std::vector<FreeSlot> free_slots_;
  uint32_t next_pid_ = 1;
  uint32_t quantum_ = 16;
  uint64_t state_uid_counter_ = 0;
  // Monotonic scheduler-progress stamp for the stall watchdog: quanta run,
  // device completions, and wakeups.  Kernel tasks claiming work do NOT
  // advance it — a task's progress must show up as one of those effects, so
  // a task that reports work while doing none reads as a stall.
  uint64_t sched_progress_ = 0;
};

}  // namespace mks

#endif  // MKS_KERNEL_UPROC_H_
