// RAII read/write sections over a SimSharedLock, coupled to the kernel's
// virtual-time substrate.
//
// A manager wraps each classified public entry point in a SharedSection: the
// constructor acquires at the executing CPU's local virtual time (charging
// any spin, revocation traffic, and grace waits to the cost model and
// attributing them to metrics and trace events), and the destructor releases
// at acquire-time plus everything the section charged to the global clock —
// so the critical section's virtual length is exactly the work done inside
// it, the same accounting SimSpinLock call sites use.
//
// Local virtual time mid-computation comes from KernelContext::LocalNow():
// the dispatcher anchors each work window (local clock and global clock at
// window start), and LocalNow adds the global-clock progress since.  With the
// default anchor (0, 0) local time IS global time — correct for directly
// driven single-CPU use, where the clock is globally monotone.
//
// Sections nest (DeleteEntry -> RemoveQuota, HandleQuotaException ->
// RelocateUid): only the outermost section acquires; inner ones are inert.
// With the lock un-modeled (ReadPolicy::kOff) the whole wrapper is inert —
// no charge, no counter, no trace record — preserving byte-identity.
#ifndef MKS_KERNEL_SHARED_SECTION_H_
#define MKS_KERNEL_SHARED_SECTION_H_

#include <algorithm>
#include <string>

#include "src/kernel/context.h"
#include "src/sync/shared_lock.h"

namespace mks {

// The per-manager instrument bundle: metric and trace handles for read-side
// vs write-side attribution, interned once at manager construction (interning
// is unconditional and inert — the same discipline every manager follows).
struct ReadMostlyInstruments {
  // `read_domain`/`write_domain` classify the manager's sections for the
  // cycle profiler.  The KST rides the directory domains: it is the
  // per-process face of the naming surface, and P16-style analysis wants
  // "naming, read side" as one number.
  void Init(KernelContext* ctx, const char* prefix,
            ProfDomain read = ProfDomain::kDirectoryRead,
            ProfDomain write = ProfDomain::kDirectoryWrite) {
    read_domain = read;
    write_domain = write;
    const std::string p(prefix);
    id_read_sections = ctx->metrics.Intern(p + ".read_sections");
    id_read_section_cycles = ctx->metrics.Intern(p + ".read_section_cycles");
    id_read_spin_cycles = ctx->metrics.Intern(p + ".read_spin_cycles");
    id_write_sections = ctx->metrics.Intern(p + ".write_sections");
    id_write_section_cycles = ctx->metrics.Intern(p + ".write_section_cycles");
    id_write_spin_cycles = ctx->metrics.Intern(p + ".write_spin_cycles");
    id_revoked_cpus = ctx->metrics.Intern(p + ".reader_cpus_revoked");
    id_revocation_cycles = ctx->metrics.Intern(p + ".revocation_cycles");
    id_publish_cycles = ctx->metrics.Intern(p + ".publish_cycles");
    id_grace_waits = ctx->metrics.Intern(p + ".grace_waits");
    id_grace_cycles = ctx->metrics.Intern(p + ".grace_cycles");
    ev_read_grant = ctx->trace.InternEvent(p + ".read_grant");
    ev_revoke = ctx->trace.InternEvent(p + ".revoke");
    ev_grace = ctx->trace.InternEvent(p + ".grace_wait");
  }

  ProfDomain read_domain = ProfDomain::kDirectoryRead;
  ProfDomain write_domain = ProfDomain::kDirectoryWrite;
  MetricId id_read_sections = 0;
  MetricId id_read_section_cycles = 0;
  MetricId id_read_spin_cycles = 0;
  MetricId id_write_sections = 0;
  MetricId id_write_section_cycles = 0;
  MetricId id_write_spin_cycles = 0;
  MetricId id_revoked_cpus = 0;
  MetricId id_revocation_cycles = 0;
  MetricId id_publish_cycles = 0;
  MetricId id_grace_waits = 0;
  MetricId id_grace_cycles = 0;
  TraceEventId ev_read_grant = 0;
  TraceEventId ev_revoke = 0;
  TraceEventId ev_grace = 0;
};

class SharedSection {
 public:
  enum class Kind : uint8_t { kRead, kWrite };

  SharedSection(SimSharedLock* lock, KernelContext* ctx, Kind kind,
                const ReadMostlyInstruments& ins)
      : ctx_(ctx), ins_(ins), kind_(kind),
        prof_scope_(&ctx->prof, kind == Kind::kRead ? ins.read_domain
                                                    : ins.write_domain) {
    if (!lock->modeled()) {
      return;
    }
    lock_ = lock;
    if (lock->EnterSection() > 0) {
      nested_ = true;
      return;
    }
    cpu_ = ctx->current_cpu;
    lnow_ = ctx->LocalNow();
    if (kind == Kind::kRead) {
      spin_ = lock->AcquireRead(lnow_, cpu_);
      ctx->metrics.Inc(ins.id_read_sections);
      if (spin_ > 0) {
        Prof::Scope wait(&ctx->prof, ProfDomain::kLockSpin);
        ctx->cost.Charge(CodeStyle::kOptimized, spin_);
        ctx->metrics.Inc(ins.id_read_spin_cycles, spin_);
      }
      ctx->trace.Instant(ins.ev_read_grant, cpu_, static_cast<uint32_t>(spin_));
    } else {
      const SimSharedLock::WriteGrant grant = lock->AcquireWrite(lnow_, cpu_);
      spin_ = grant.total;
      ctx->metrics.Inc(ins.id_write_sections);
      if (grant.total > 0) {
        // Attribution splits the grant: the gap to the last reader/writer is
        // lock-spin, the revocation/publish/grace traffic is lock-handoff.
        // The two optimized charges sum to grant.total exactly.
        const Cycles traffic =
            std::min(grant.total, grant.revocation_cycles +
                                      grant.publish_cycles + grant.grace_cycles);
        if (grant.total > traffic) {
          Prof::Scope wait(&ctx->prof, ProfDomain::kLockSpin);
          ctx->cost.Charge(CodeStyle::kOptimized, grant.total - traffic);
        }
        if (traffic > 0) {
          Prof::Scope drain(&ctx->prof, ProfDomain::kLockHandoff);
          ctx->cost.Charge(CodeStyle::kOptimized, traffic);
        }
        ctx->metrics.Inc(ins.id_write_spin_cycles, grant.total);
      }
      if (grant.revoked_cpus > 0) {
        ctx->metrics.Inc(ins.id_revoked_cpus, grant.revoked_cpus);
        ctx->metrics.Inc(ins.id_revocation_cycles, grant.revocation_cycles);
        ctx->trace.Instant(ins.ev_revoke, cpu_, grant.revoked_cpus);
      }
      if (grant.publish_cycles > 0) {
        ctx->metrics.Inc(ins.id_publish_cycles, grant.publish_cycles);
      }
      if (grant.grace_cycles > 0) {
        ctx->metrics.Inc(ins.id_grace_waits);
        ctx->metrics.Inc(ins.id_grace_cycles, grant.grace_cycles);
        ctx->trace.Instant(ins.ev_grace, cpu_, static_cast<uint32_t>(grant.grace_cycles));
      }
    }
    t0_ = ctx->clock.now();
  }

  ~SharedSection() {
    if (lock_ == nullptr) {
      return;
    }
    lock_->ExitSection();
    if (nested_) {
      return;
    }
    // The section held the lock for exactly the global-clock progress its
    // body charged; release at acquire + spin + that work.
    const Cycles work = ctx_->clock.now() - t0_;
    const Cycles end = lnow_ + spin_ + work;
    if (kind_ == Kind::kRead) {
      lock_->ReleaseRead(end, cpu_);
      ctx_->metrics.Inc(ins_.id_read_section_cycles, work);
    } else {
      lock_->ReleaseWrite(end);
      ctx_->metrics.Inc(ins_.id_write_section_cycles, work);
    }
  }

  SharedSection(const SharedSection&) = delete;
  SharedSection& operator=(const SharedSection&) = delete;

 private:
  KernelContext* ctx_;
  const ReadMostlyInstruments& ins_;
  Kind kind_;
  // Spans the whole section (acquire, body, release), so everything charged
  // inside lands under the manager's read/write domain.
  Prof::Scope prof_scope_;
  SimSharedLock* lock_ = nullptr;  // null: un-modeled, fully inert
  bool nested_ = false;
  uint16_t cpu_ = 0;
  Cycles lnow_ = 0;
  Cycles spin_ = 0;
  Cycles t0_ = 0;
};

}  // namespace mks

#endif  // MKS_KERNEL_SHARED_SECTION_H_
