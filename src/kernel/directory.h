// The directory manager: the naming hierarchy, ACLs, quota designation, and
// the protection/naming interaction the paper analyzes.
//
// Key behaviours reproduced from the paper:
//
//  * Access to an object is determined entirely by that object's ACL; the
//    kernel provides only a SINGLE-directory search primitive, and tree-name
//    expansion lives outside the kernel (src/fs/path_walker).  To keep an
//    inaccessible intermediate directory from leaking name information, the
//    primitive uses Bratt's scheme [Bratt, 1975]: a search of an inaccessible
//    (or nonexistent, or mythical) directory ALWAYS returns a matching
//    identifier.  If the path ultimately reaches an accessible object every
//    returned identifier was real; otherwise the requester cannot decide
//    whether the identifiers were real or mythical.
//
//  * Quota directories are explicit: designation and un-designation are
//    permitted only while the directory has no children (the slight
//    semantics change), which makes each segment's governing quota cell a
//    static name handed to the layers below at initiation.
//
//  * The full-pack upward signal terminates here: CompleteSegmentMove
//    rewrites the directory entry with the segment's new home.  It is invoked
//    by the gate layer's trampoline with no kernel activation records
//    pending below this manager.
//
// Directory representations are stored in segments (each directory owns a
// backing VTOC entry and grows real pages as entries accumulate) — the
// paper's example of a component dependency of directory control on segment
// control.
#ifndef MKS_KERNEL_DIRECTORY_H_
#define MKS_KERNEL_DIRECTORY_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/kernel/known_segment.h"

namespace mks {

struct DirEntryRec {
  std::string name;
  SegmentUid uid{};
  bool is_directory = false;
  PackId pack{};
  VtocIndex vtoc{};
  Acl acl;
  Label label;
};

struct QuotaStatus {
  bool designated = false;
  uint64_t limit = 0;
  uint64_t count = 0;
};

// What the gate layer needs to initiate a segment for a process.
struct EntryInfo {
  SegmentHome home;
  AccessModes modes;  // effective modes: ACL masked by the AIM properties
  Label label;
};

// Read/write classification of the directory surface (the read-mostly
// refactor):
//
//   reads  — Search, ListNames, GetQuota, ResolveForInitiate,
//            AuditQuotaIntegrity: walks and status observations.
//   writes — InitRoot, CreateSegmentEntry, CreateDirectoryEntry, DeleteEntry,
//            RenameEntry, SetAcl, SetQuota, RemoveQuota, CompleteSegmentMove:
//            they mutate entries, ACLs, or the quota designation.
//
// Each public entry point runs inside a SharedSection over the hierarchy's
// SimSharedLock; with ReadPolicy::kOff (the default) the sections are inert
// and the manager is byte-identical to its pre-lock behaviour.
// IsRealDirectory stays an unlocked snapshot read (a single map probe).
class DirectoryManager {
 public:
  static constexpr int kEntriesPerPage = 16;

  DirectoryManager(KernelContext* ctx, QuotaCellManager* quota, SegmentManager* segs,
                   AddressSpaceManager* spaces);

  // Selects the read-mostly policy for the hierarchy lock (called by Kernel).
  void ConfigureReadMostly(const SharedLockConfig& config) { rml_.Configure(config); }
  const SimSharedLock& naming_lock() const { return rml_; }

  // Creates the root directory (">") with the given quota limit; the root is
  // always a quota directory.
  Status InitRoot(Label label, Acl acl, uint64_t quota_limit);
  EntryId RootId() const { return EntryId(root_.value); }

  // --- the kernel search primitive (Bratt semantics) ---
  // Returns kNoEntry ONLY when the caller has status permission on a real
  // directory; every other combination yields an identifier.
  Result<EntryId> Search(const Subject& subject, EntryId dir, std::string_view name);

  // --- entry creation / deletion ---
  Result<EntryId> CreateSegmentEntry(const Subject& subject, EntryId dir, std::string name,
                                     Acl acl, Label label);
  Result<EntryId> CreateDirectoryEntry(const Subject& subject, EntryId dir, std::string name,
                                       Acl acl, Label label);
  Status DeleteEntry(const Subject& subject, EntryId dir, std::string_view name);
  // Renames an entry within its directory (a modify of the directory only;
  // the object, its ACL, and its unique identifier are untouched).
  Status RenameEntry(const Subject& subject, EntryId dir, std::string_view old_name,
                     std::string new_name);

  // --- attribute operations ---
  Status SetAcl(const Subject& subject, EntryId dir, std::string_view name, Acl acl);
  Status ListNames(const Subject& subject, EntryId dir, std::vector<std::string>* out);

  // --- quota (the childless rule) ---
  Status SetQuota(const Subject& subject, EntryId dir, uint64_t limit);
  Status RemoveQuota(const Subject& subject, EntryId dir);
  Result<QuotaStatus> GetQuota(const Subject& subject, EntryId dir);

  // --- support for initiation ---
  // Resolves an identifier (as returned by Search) to the data needed to
  // initiate it.  kNoAccess for mythical identifiers and for objects whose
  // ACL/label grant the subject nothing — indistinguishably.
  Result<EntryInfo> ResolveForInitiate(const Subject& subject, EntryId target);

  // --- the upward signal terminal ---
  Status CompleteSegmentMove(SegmentUid uid, PackId new_pack, VtocIndex new_vtoc);

  bool IsRealDirectory(EntryId id) const { return dirs_.count(SegmentUid(id.value)) != 0; }

  // Integrity audit of the resource-control books: for every quota cell,
  // the cached count must equal the disk records actually used by the
  // objects the cell governs (entries' segments plus governed directories'
  // own backing storage).
  void AuditQuotaIntegrity(std::vector<std::string>* findings);

 private:
  struct DirectoryRec {
    SegmentUid uid{};
    SegmentUid parent{};  // root: itself
    std::string name;
    PackId pack{};
    VtocIndex vtoc{};
    Acl acl;
    Label label;
    bool quota_designated = false;
    SegmentUid governing_dir{};  // nearest superior quota directory (static)
    std::map<std::string, DirEntryRec> entries;
    uint32_t pages = 1;  // backing segment length
  };

  SegmentUid NewUid();
  EntryId MythicalId(EntryId dir, std::string_view name) const;
  DirectoryRec* FindDir(EntryId id);
  // Status (observe) permission on a directory: ACL read + simple security.
  bool CanObserveDir(const Subject& subject, const DirectoryRec& dir) const;
  // Modify permission: ACL write + the *-property.
  Status CheckModifyDir(const Subject& subject, DirectoryRec& dir, const std::string& op);
  // The governing quota cell of `dir`, loaded into the cache.
  Result<QuotaCellId> GoverningCell(const DirectoryRec& dir);
  // Grows the directory's backing segment when the entry count crosses a
  // page boundary; charges the governing cell.
  Status AccountDirectoryGrowth(DirectoryRec& dir);
  Status CreateEntryCommon(const Subject& subject, EntryId dir_id, std::string name, Acl acl,
                           Label label, bool is_directory, DirEntryRec** out,
                           DirectoryRec** parent_out);

  KernelContext* ctx_;
  ModuleId self_;
  QuotaCellManager* quota_;
  SegmentManager* segs_;
  AddressSpaceManager* spaces_;
  // The hierarchy lock and its instruments; mutable so const status reads
  // could join the protocol without shedding their constness.
  mutable SimSharedLock rml_;
  ReadMostlyInstruments rmi_;
  MetricId id_searches_;
  MetricId id_mythical_results_;
  MetricId id_entries_created_;
  MetricId id_entries_deleted_;
  MetricId id_renames_;
  MetricId id_quota_designations_;
  MetricId id_moves_completed_;
  SegmentUid root_{};
  uint64_t uid_counter_ = 1;
  std::unordered_map<SegmentUid, DirectoryRec> dirs_;
  // Object uid -> containing directory uid (for resolve-by-uid and moves).
  std::unordered_map<SegmentUid, SegmentUid> parent_of_;
};

}  // namespace mks

#endif  // MKS_KERNEL_DIRECTORY_H_
