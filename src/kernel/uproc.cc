#include "src/kernel/uproc.h"

#include "src/common/hash.h"

namespace mks {

UserProcessManager::UserProcessManager(KernelContext* ctx, CoreSegmentManager* core_segs,
                                       VirtualProcessorManager* vpm, PageFrameManager* pfm,
                                       SegmentManager* segs, KnownSegmentManager* ksm,
                                       KernelGates* gates)
    : ctx_(ctx),
      self_(ctx->tracker.Register(module_names::kUserProcess)),
      core_segs_(core_segs),
      vpm_(vpm),
      pfm_(pfm),
      segs_(segs),
      ksm_(ksm),
      gates_(gates),
      id_processes_created_(ctx->metrics.Intern("uproc.processes_created")),
      id_idle_cycles_(ctx->metrics.Intern("uproc.idle_cycles")),
      ev_quantum_(ctx->trace.InternEvent("uproc.quantum")),
      ev_level1_(ctx->trace.InternEvent("uproc.level1")),
      ev_park_(ctx->trace.InternEvent("uproc.park")),
      ev_wake_(ctx->trace.InternEvent("uproc.wake")),
      hist_quantum_(ctx->metrics.InternHistogram("uproc.quantum_cycles")) {}

Status UserProcessManager::Init() {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  auto seg = core_segs_->Allocate("upward_message_queue", 1);
  if (!seg.ok()) {
    return seg.status();
  }
  queue_ = std::make_unique<RealMemoryQueue>(core_segs_->RawSpan(*seg));
  pfm_->SetUpwardQueue(queue_.get());
  return Status::Ok();
}

Result<ProcessId> UserProcessManager::CreateProcess(const Subject& subject) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kProcedureCall * 4);
  const ProcessId pid(next_pid_++);
  MKS_RETURN_IF_ERROR(ksm_->CreateKst(pid));

  Process proc;
  proc.pid = pid;
  proc.ctx.pid = pid;
  proc.ctx.subject = subject;

  // The process state record lives in an ordinary (pageable) segment outside
  // the naming hierarchy, initiated ring-0-only in the process's own address
  // space.
  const SegmentUid state_uid(
      Fnv1a64Mix(ctx_->secret ^ 0x70726f63ULL, ++state_uid_counter_) | 1);
  MKS_ASSIGN_OR_RETURN(PackId pack, ctx_->volumes.ChoosePack());
  MKS_ASSIGN_OR_RETURN(VtocIndex vtoc,
                       ctx_->volumes.pack(pack)->AllocateVtoc(state_uid, false));
  SegmentHome home{state_uid, pack, vtoc, kNoQuotaCell, false};
  MKS_ASSIGN_OR_RETURN(Segno segno,
                       ksm_->Initiate(pid, home, AccessModes::RW(), /*ring_bracket=*/0));
  proc.state_segno = segno;

  procs_.emplace(pid, std::move(proc));
  ctx_->metrics.Inc(id_processes_created_);
  return pid;
}

Status UserProcessManager::DestroyProcess(ProcessId pid) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  auto it = procs_.find(pid);
  if (it == procs_.end()) {
    return Status(Code::kNotFound, "no such process");
  }
  if (it->second.bound) {
    vpm_->ReleaseUserVp(it->second.vp);
  }
  // Free the state segment's storage: sever its uses, deactivate, and
  // release the VTOC entry.
  const KstEntry* entry = ksm_->Lookup(pid, it->second.state_segno);
  if (entry != nullptr) {
    const SegmentHome home = entry->home;
    MKS_RETURN_IF_ERROR(ksm_->DestroyKst(pid));
    const uint32_t ast = segs_->FindIndex(home.uid);
    if (ast != kNoAst) {
      MKS_RETURN_IF_ERROR(segs_->Deactivate(ast));
    }
    ctx_->volumes.pack(home.pack)->FreeVtoc(home.vtoc);
  } else {
    MKS_RETURN_IF_ERROR(ksm_->DestroyKst(pid));
  }
  procs_.erase(it);
  return Status::Ok();
}

Status UserProcessManager::SetProgram(ProcessId pid, std::vector<UserOp> program) {
  auto it = procs_.find(pid);
  if (it == procs_.end()) {
    return Status(Code::kNotFound, "no such process");
  }
  it->second.program = std::move(program);
  it->second.pc = 0;
  it->second.state = ProcState::kReady;
  return Status::Ok();
}

ProcContext* UserProcessManager::Context(ProcessId pid) {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : &it->second.ctx;
}

ProcState UserProcessManager::state(ProcessId pid) const {
  auto it = procs_.find(pid);
  return it == procs_.end() ? ProcState::kAborted : it->second.state;
}

const ProcessStats& UserProcessManager::stats(ProcessId pid) const {
  static const ProcessStats kEmpty;
  auto it = procs_.find(pid);
  return it == procs_.end() ? kEmpty : it->second.stats;
}

Status UserProcessManager::SwapStateIn(Process& proc) {
  // Touch the state record: it may have been paged out, in which case this
  // faults like any other reference.  The dispatcher runs in ring 0; the
  // state segment's bracket keeps the user program itself away from it.
  ProcContext ring0 = proc.ctx;
  ring0.subject.ring = 0;
  auto word = gates_->Read(ring0, proc.state_segno, 0);
  proc.ctx.pending_wait = ring0.pending_wait;
  if (!word.ok()) {
    return word.status();
  }
  return Status::Ok();
}

void UserProcessManager::SwapStateOut(Process& proc) {
  // Record the program counter in the state segment.  A block here is
  // tolerable: the authoritative pc is re-written at the next save.
  ProcContext ring0 = proc.ctx;
  ring0.subject.ring = 0;
  (void)gates_->Write(ring0, proc.state_segno, 0, proc.pc);
  (void)gates_->Write(ring0, proc.state_segno, 1, static_cast<Word>(proc.state));
}

Status UserProcessManager::ExecOneOp(Process& proc) {
  const UserOp& op = proc.program[proc.pc];
  switch (op.kind) {
    case UserOp::Kind::kRead: {
      auto value = gates_->Read(proc.ctx, op.segno, op.offset);
      return value.status();
    }
    case UserOp::Kind::kWrite:
      return gates_->Write(proc.ctx, op.segno, op.offset, op.value);
    case UserOp::Kind::kCompute:
      ctx_->cost.Charge(CodeStyle::kOptimized, op.compute);
      return Status::Ok();
    case UserOp::Kind::kAdvance:
      return gates_->AdvanceEventcount(proc.ctx, op.ec);
    case UserOp::Kind::kAwait:
      return gates_->AwaitEventcount(proc.ctx, op.ec, op.value);
  }
  return Status(Code::kInternal, "bad op");
}

void UserProcessManager::Park(Process& proc) {
  proc.state = ProcState::kBlocked;
  ++proc.stats.blocks;
  ctx_->trace.Instant(ev_park_, proc.pid.value, 0);
  if (proc.bound) {
    SwapStateOut(proc);
    vpm_->ReleaseUserVp(proc.vp);
    proc.bound = false;
  }
}

void UserProcessManager::Finish(Process& proc, ProcState state, Status why) {
  proc.state = state;
  proc.stats.last_error = why;
  if (proc.bound) {
    vpm_->ReleaseUserVp(proc.vp);
    proc.bound = false;
  }
}

bool UserProcessManager::SchedulerPass() {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  bool did_work = false;

  // Level-1 activity first: device completions, daemons.  System tasks run
  // on the bootload CPU, as on the real machine.
  ctx_->current_cpu = 0;
  ctx_->trace.SetCpu(0);
  const Cycles level1_start = ctx_->clock.now();
  ctx_->events.RunDue(ctx_->clock.now());
  if (vpm_->RunKernelTasks()) {
    did_work = true;
  }

  // Drain the real-memory queue: wake parked processes.
  if (queue_ != nullptr) {
    while (auto msg = queue_->Pop()) {
      auto it = procs_.find(msg->dest);
      if (it != procs_.end() && it->second.state == ProcState::kBlocked) {
        it->second.state = ProcState::kReady;
        ctx_->trace.Instant(ev_wake_, it->second.pid.value, 1);
        did_work = true;
      }
    }
  }
  // Also honor eventcounts that advanced synchronously (no message posted).
  for (auto& [pid, proc] : procs_) {
    if (proc.state == ProcState::kBlocked && proc.ctx.pending_wait.valid &&
        ctx_->eventcounts.Read(proc.ctx.pending_wait.ec) >= proc.ctx.pending_wait.target) {
      proc.state = ProcState::kReady;
      ctx_->trace.Instant(ev_wake_, proc.pid.value, 0);
      did_work = true;
    }
  }

  if (const Cycles level1 = ctx_->clock.now() - level1_start; level1 > 0) {
    ctx_->smp.Accrue(0, level1);
    ctx_->trace.CloseSpan(level1_start, ev_level1_, 0, 0);
  }

  // Dispatch ready processes onto idle virtual processors and run a quantum.
  for (auto& [pid, proc] : procs_) {
    if (proc.state != ProcState::kReady) {
      continue;
    }
    // Quantum interleaving: this dispatch runs on the CPU whose local clock
    // is furthest behind, and everything it charges — the vp acquisition,
    // the switch, the state swap-in, the ops, their fault services — accrues
    // to that CPU.
    const uint16_t cpu = ctx_->smp.NextCpu();
    ctx_->current_cpu = cpu;
    ctx_->trace.SetCpu(cpu);
    const Cycles dispatch_start = ctx_->clock.now();
    auto accrue_quantum = [&] {
      if (const Cycles d = ctx_->clock.now() - dispatch_start; d > 0) {
        ctx_->smp.Accrue(cpu, d);
        ctx_->trace.CloseSpan(dispatch_start, ev_quantum_, pid.value, cpu,
                              hist_quantum_);
      }
    };
    auto vp = vpm_->AcquireIdleUserVp();
    if (!vp.ok()) {
      break;  // pool exhausted this pass
    }
    proc.vp = *vp;
    proc.bound = true;
    proc.state = ProcState::kRunning;
    ++proc.stats.dispatches;
    ctx_->cost.Charge(CodeStyle::kStructured, Costs::kProcessSwitch);
    did_work = true;

    Status in = SwapStateIn(proc);
    if (in.code() == Code::kBlocked) {
      Park(proc);
      accrue_quantum();
      continue;
    }
    if (!in.ok()) {
      Finish(proc, ProcState::kAborted, in);
      accrue_quantum();
      continue;
    }

    const VpId vp_used = proc.vp;
    const Cycles start = ctx_->clock.now();
    for (uint32_t n = 0; n < quantum_ && proc.pc < proc.program.size(); ++n) {
      // User code runs in the user domain; its references enter the kernel
      // afresh through the fault dispatcher.
      CallTracker::SignalScope user_domain(&ctx_->tracker);
      Status st = ExecOneOp(proc);
      if (st.ok()) {
        ++proc.pc;
        ++proc.stats.ops_executed;
        continue;
      }
      if (st.code() == Code::kBlocked) {
        break;  // pending_wait already recorded in the context
      }
      Finish(proc, ProcState::kAborted, st);
      break;
    }
    proc.stats.cpu_cycles += ctx_->clock.now() - start;
    vpm_->AccrueBusy(vp_used, ctx_->clock.now() - start);

    if (proc.state != ProcState::kRunning) {
      accrue_quantum();
      continue;  // aborted above
    }
    if (proc.pc >= proc.program.size()) {
      Finish(proc, ProcState::kDone, Status::Ok());
    } else if (proc.ctx.pending_wait.valid &&
               ctx_->eventcounts.Read(proc.ctx.pending_wait.ec) < proc.ctx.pending_wait.target) {
      Park(proc);
    } else {
      // Quantum expired (or the wait already resolved): back to ready.
      proc.state = ProcState::kReady;
      SwapStateOut(proc);
      vpm_->ReleaseUserVp(proc.vp);
      proc.bound = false;
    }
    accrue_quantum();
  }
  return did_work;
}

Status UserProcessManager::RunUntilQuiescent(uint64_t max_passes) {
  for (uint64_t pass = 0; pass < max_passes; ++pass) {
    if (AllDone()) {
      return Status::Ok();
    }
    const bool did_work = SchedulerPass();
    if (!did_work) {
      if (!ctx_->events.empty()) {
        // Every process is blocked on the device: the machine idles forward.
        const Cycles due = ctx_->events.next_due();
        if (due > ctx_->clock.now()) {
          const Cycles idle = due - ctx_->clock.now();
          ctx_->metrics.Inc(id_idle_cycles_, idle);
          ctx_->clock.Advance(idle);
          // The whole pool idles forward together waiting on the device.
          ctx_->smp.AdvanceAll(idle);
        }
        // Completion handlers are level-1 work on the bootload CPU.
        ctx_->current_cpu = 0;
        ctx_->trace.SetCpu(0);
        const Cycles completion_start = ctx_->clock.now();
        ctx_->events.RunDue(ctx_->clock.now());
        if (const Cycles d = ctx_->clock.now() - completion_start; d > 0) {
          ctx_->smp.Accrue(0, d);
        }
        continue;
      }
      if (AllDone()) {
        return Status::Ok();
      }
      return Status(Code::kFailedPrecondition, "scheduler quiesced with runnable work pending");
    }
  }
  return AllDone() ? Status::Ok()
                   : Status(Code::kResourceExhausted, "scheduler pass budget exhausted");
}

bool UserProcessManager::AllDone() const {
  for (const auto& [pid, proc] : procs_) {
    if (proc.state != ProcState::kDone && proc.state != ProcState::kAborted) {
      return false;
    }
  }
  return true;
}

}  // namespace mks
