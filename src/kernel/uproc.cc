#include "src/kernel/uproc.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/common/hash.h"

namespace mks {

UserProcessManager::UserProcessManager(KernelContext* ctx, CoreSegmentManager* core_segs,
                                       VirtualProcessorManager* vpm, PageFrameManager* pfm,
                                       SegmentManager* segs, KnownSegmentManager* ksm,
                                       KernelGates* gates)
    : ctx_(ctx),
      self_(ctx->tracker.Register(module_names::kUserProcess)),
      core_segs_(core_segs),
      vpm_(vpm),
      pfm_(pfm),
      segs_(segs),
      ksm_(ksm),
      gates_(gates),
      id_processes_created_(ctx->metrics.Intern("uproc.processes_created")),
      id_idle_cycles_(ctx->metrics.Intern("uproc.idle_cycles")),
      id_list_transfers_(ctx->metrics.Intern("sched.list_transfers")),
      id_list_transfer_cycles_(ctx->metrics.Intern("sched.list_transfer_cycles")),
      id_list_lock_spin_cycles_(ctx->metrics.Intern("sched.list_lock_spin_cycles")),
      id_proc_migrations_(ctx->metrics.Intern("sched.proc_migrations")),
      id_proc_migration_cycles_(ctx->metrics.Intern("sched.proc_migration_cycles")),
      id_slab_reuses_(ctx->metrics.Intern("uproc.slab_reuses")),
      id_slab_parks_(ctx->metrics.Intern("uproc.slab_parks")),
      ev_quantum_(ctx->trace.InternEvent("uproc.quantum")),
      ev_level1_(ctx->trace.InternEvent("uproc.level1")),
      ev_park_(ctx->trace.InternEvent("uproc.park")),
      ev_wake_(ctx->trace.InternEvent("uproc.wake")),
      hist_quantum_(ctx->metrics.InternHistogram("uproc.quantum_cycles")) {}

void UserProcessManager::ConfigureDispatch(const DispatchConfig& config) {
  dcfg_ = config;
  // One policy knob covers every scheduler lock: the handoff charge is one
  // (Anderson/MCS) or one-per-waiter (ticket) line transfers at connect_cost.
  const LockPolicyConfig lock_policy{
      dcfg_.lock_policy, dcfg_.connect_cost,
      dcfg_.anderson_slots != 0 ? dcfg_.anderson_slots : ctx_->smp.count()};
  if (dcfg_.lock_policy != LockPolicy::kTestAndSet) {
    list_lock_.Configure(lock_policy);
  }
  if (dcfg_.sharded_runqueues) {
    rq_ = std::make_unique<RunQueueSet>(ctx_->smp.count(), dcfg_.steal, dcfg_.connect_cost,
                                        &ctx_->cost, &ctx_->metrics, &ctx_->trace,
                                        lock_policy, &ctx_->prof);
  }
}

Status UserProcessManager::Init() {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  auto seg = core_segs_->Allocate("upward_message_queue", 1);
  if (!seg.ok()) {
    return seg.status();
  }
  queue_ = std::make_unique<RealMemoryQueue>(core_segs_->RawSpan(*seg));
  pfm_->SetUpwardQueue(queue_.get());
  return Status::Ok();
}

Result<ProcessId> UserProcessManager::CreateProcess(const Subject& subject) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  if (slab_ && !free_slots_.empty()) {
    // Slab fast path: the parked slot already owns a KST and a state
    // segment; only the slot bookkeeping is rebuilt — one call's worth of
    // work instead of the full KST/VTOC/initiate chain.
    const FreeSlot slot = free_slots_.back();
    free_slots_.pop_back();
    ctx_->cost.Charge(CodeStyle::kStructured, Costs::kProcedureCall);
    Process proc;
    proc.pid = slot.pid;
    proc.ctx.pid = slot.pid;
    proc.ctx.subject = subject;
    proc.state_segno = slot.state_segno;
    procs_.emplace(slot.pid, std::move(proc));
    ctx_->metrics.Inc(id_processes_created_);
    ctx_->metrics.Inc(id_slab_reuses_);
    return slot.pid;
  }
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kProcedureCall * 4);
  const ProcessId pid(next_pid_++);
  MKS_RETURN_IF_ERROR(ksm_->CreateKst(pid));

  Process proc;
  proc.pid = pid;
  proc.ctx.pid = pid;
  proc.ctx.subject = subject;

  // The process state record lives in an ordinary (pageable) segment outside
  // the naming hierarchy, initiated ring-0-only in the process's own address
  // space.
  const SegmentUid state_uid(
      Fnv1a64Mix(ctx_->secret ^ 0x70726f63ULL, ++state_uid_counter_) | 1);
  MKS_ASSIGN_OR_RETURN(PackId pack, ctx_->volumes.ChoosePack());
  MKS_ASSIGN_OR_RETURN(VtocIndex vtoc,
                       ctx_->volumes.pack(pack)->AllocateVtoc(state_uid, false));
  SegmentHome home{state_uid, pack, vtoc, kNoQuotaCell, false};
  MKS_ASSIGN_OR_RETURN(Segno segno,
                       ksm_->Initiate(pid, home, AccessModes::RW(), /*ring_bracket=*/0));
  proc.state_segno = segno;

  procs_.emplace(pid, std::move(proc));
  ctx_->metrics.Inc(id_processes_created_);
  return pid;
}

Status UserProcessManager::DestroyProcess(ProcessId pid) {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  auto it = procs_.find(pid);
  if (it == procs_.end()) {
    return Status(Code::kNotFound, "no such process");
  }
  if (it->second.bound) {
    vpm_->ReleaseUserVp(it->second.vp);
  }
  if (it->second.queued && rq_ != nullptr) {
    rq_->Remove(pid.value);
  }
  if (slab_) {
    // Slab park: clear every binding except the state segment's, keep the
    // KST allocation and the state segment's storage, and stash the slot
    // for the next CreateProcess.
    const Segno state_segno = it->second.state_segno;
    MKS_RETURN_IF_ERROR(ksm_->ResetKst(pid, state_segno));
    procs_.erase(it);
    free_slots_.push_back(FreeSlot{pid, state_segno});
    ctx_->metrics.Inc(id_slab_parks_);
    return Status::Ok();
  }
  const Segno state_segno = it->second.state_segno;
  procs_.erase(it);
  return ReleaseSlot(pid, state_segno);
}

Status UserProcessManager::ReleaseSlot(ProcessId pid, Segno state_segno) {
  // Free the state segment's storage: sever its uses, deactivate, and
  // release the VTOC entry.
  const KstEntry* entry = ksm_->Lookup(pid, state_segno);
  if (entry != nullptr) {
    const SegmentHome home = entry->home;
    MKS_RETURN_IF_ERROR(ksm_->DestroyKst(pid));
    const uint32_t ast = segs_->FindIndex(home.uid);
    if (ast != kNoAst) {
      MKS_RETURN_IF_ERROR(segs_->Deactivate(ast));
    }
    ctx_->volumes.pack(home.pack)->FreeVtoc(home.vtoc);
  } else {
    MKS_RETURN_IF_ERROR(ksm_->DestroyKst(pid));
  }
  return Status::Ok();
}

Status UserProcessManager::DrainSlabs() {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  while (!free_slots_.empty()) {
    const FreeSlot slot = free_slots_.back();
    free_slots_.pop_back();
    MKS_RETURN_IF_ERROR(ReleaseSlot(slot.pid, slot.state_segno));
  }
  return Status::Ok();
}

Status UserProcessManager::SetProgram(ProcessId pid, std::vector<UserOp> program) {
  auto it = procs_.find(pid);
  if (it == procs_.end()) {
    return Status(Code::kNotFound, "no such process");
  }
  it->second.program = std::move(program);
  it->second.pc = 0;
  it->second.state = ProcState::kReady;
  if (rq_ != nullptr && !it->second.queued) {
    it->second.queued = true;
    rq_->Enqueue(pid.value, EffectiveMask(it->second), ctx_->current_cpu, RunQueueSet::kNoCpu,
                 ctx_->smp.local_now(ctx_->current_cpu));
  }
  return Status::Ok();
}

Status UserProcessManager::SetAffinity(ProcessId pid, uint32_t cpu_mask) {
  auto it = procs_.find(pid);
  if (it == procs_.end()) {
    return Status(Code::kNotFound, "no such process");
  }
  if (cpu_mask != 0) {
    const uint16_t n = ctx_->smp.count();
    const uint32_t pool = n >= 32 ? ~0u : ((1u << n) - 1);
    if ((cpu_mask & pool) == 0) {
      return Status(Code::kInvalidArgument, "affinity mask excludes every CPU");
    }
  }
  it->second.affinity = cpu_mask;
  if (it->second.queued && rq_ != nullptr) {
    // Re-home the queued entry so the new mask governs immediately.
    rq_->Remove(pid.value);
    rq_->Enqueue(pid.value, EffectiveMask(it->second), ctx_->current_cpu, RunQueueSet::kNoCpu,
                 ctx_->smp.local_now(ctx_->current_cpu));
  }
  return Status::Ok();
}

uint32_t UserProcessManager::affinity(ProcessId pid) const {
  auto it = procs_.find(pid);
  return it == procs_.end() ? 0 : it->second.affinity;
}

uint32_t UserProcessManager::EffectiveMask(const Process& proc) const {
  if (proc.affinity == 0) {
    return 0;
  }
  const uint16_t n = ctx_->smp.count();
  const uint32_t pool = n >= 32 ? ~0u : ((1u << n) - 1);
  return proc.affinity & pool;
}

ProcContext* UserProcessManager::Context(ProcessId pid) {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : &it->second.ctx;
}

ProcState UserProcessManager::state(ProcessId pid) const {
  auto it = procs_.find(pid);
  return it == procs_.end() ? ProcState::kAborted : it->second.state;
}

const ProcessStats& UserProcessManager::stats(ProcessId pid) const {
  static const ProcessStats kEmpty;
  auto it = procs_.find(pid);
  return it == procs_.end() ? kEmpty : it->second.stats;
}

Status UserProcessManager::SwapStateIn(Process& proc) {
  // Touch the state record: it may have been paged out, in which case this
  // faults like any other reference.  The dispatcher runs in ring 0; the
  // state segment's bracket keeps the user program itself away from it.
  ProcContext ring0 = proc.ctx;
  ring0.subject.ring = 0;
  auto word = gates_->Read(ring0, proc.state_segno, 0);
  proc.ctx.pending_wait = ring0.pending_wait;
  if (!word.ok()) {
    return word.status();
  }
  return Status::Ok();
}

void UserProcessManager::SwapStateOut(Process& proc) {
  // Record the program counter in the state segment.  A block here is
  // tolerable: the authoritative pc is re-written at the next save.
  ProcContext ring0 = proc.ctx;
  ring0.subject.ring = 0;
  (void)gates_->Write(ring0, proc.state_segno, 0, proc.pc);
  (void)gates_->Write(ring0, proc.state_segno, 1, static_cast<Word>(proc.state));
}

Status UserProcessManager::ExecOneOp(Process& proc) {
  const UserOp& op = proc.program[proc.pc];
  switch (op.kind) {
    case UserOp::Kind::kRead: {
      auto value = gates_->Read(proc.ctx, op.segno, op.offset);
      return value.status();
    }
    case UserOp::Kind::kWrite:
      return gates_->Write(proc.ctx, op.segno, op.offset, op.value);
    case UserOp::Kind::kCompute:
      ctx_->cost.Charge(CodeStyle::kOptimized, op.compute);
      return Status::Ok();
    case UserOp::Kind::kAdvance:
      return gates_->AdvanceEventcount(proc.ctx, op.ec);
    case UserOp::Kind::kAwait:
      return gates_->AwaitEventcount(proc.ctx, op.ec, op.value);
  }
  return Status(Code::kInternal, "bad op");
}

void UserProcessManager::Park(Process& proc) {
  proc.state = ProcState::kBlocked;
  ++proc.stats.blocks;
  ctx_->trace.Instant(ev_park_, proc.pid.value, 0);
  if (proc.bound) {
    SwapStateOut(proc);
    vpm_->ReleaseUserVp(proc.vp);
    proc.bound = false;
  }
}

void UserProcessManager::Finish(Process& proc, ProcState state, Status why) {
  proc.state = state;
  proc.stats.last_error = why;
  if (proc.bound) {
    vpm_->ReleaseUserVp(proc.vp);
    proc.bound = false;
  }
}

void UserProcessManager::AccrueOutside(uint16_t cpu, Cycles since) {
  if (const Cycles d = ctx_->clock.now() - since; d > 0) {
    ctx_->smp.Accrue(cpu, d);
  }
}

void UserProcessManager::TouchReadyList(uint16_t cpu, Cycles lnow) {
  // The global ready list modelled as one shared cache line under one lock —
  // the traffic-controller picture.  Spin is real charged work (as in the
  // baseline's global lock), and a touch from a CPU other than the last
  // toucher bounces the line: one connect transfer.  The lock is held for
  // the dispatch decision and queue manipulation (kDispatchHold), which is
  // what serializes dispatch-rate-bound workloads.
  constexpr Cycles kDispatchHold = 440;  // ~ (kVpSwitch + kProcessSwitch) structured
  const Cycles spin = list_lock_.Acquire(lnow, cpu);
  Cycles held = spin;
  if (spin > 0) {
    // Attribution splits the wait into the gap to the holder's release
    // (lock-spin) and the grant's coherence traffic (lock-handoff); the two
    // optimized charges advance the clock exactly as the single one did.
    const Cycles handoff = std::min(list_lock_.last_acquire_handoff(), spin);
    if (spin > handoff) {
      Prof::Scope wait(&ctx_->prof, ProfDomain::kLockSpin);
      ctx_->cost.Charge(CodeStyle::kOptimized, spin - handoff);
    }
    if (handoff > 0) {
      Prof::Scope grant(&ctx_->prof, ProfDomain::kLockHandoff);
      ctx_->cost.Charge(CodeStyle::kOptimized, handoff);
    }
    ctx_->metrics.Inc(id_list_lock_spin_cycles_, spin);
  }
  if (dcfg_.connect_cost > 0 && list_owner_ != cpu && list_owner_ != kNoCpu) {
    Prof::Scope bounce(&ctx_->prof, ProfDomain::kLockHandoff);
    ctx_->cost.Charge(CodeStyle::kOptimized, dcfg_.connect_cost);
    held += dcfg_.connect_cost;
    ctx_->metrics.Inc(id_list_transfers_);
    ctx_->metrics.Inc(id_list_transfer_cycles_, dcfg_.connect_cost);
  }
  list_owner_ = cpu;
  list_lock_.Release(lnow + held + kDispatchHold);
}

void UserProcessManager::EnqueueReady(Process& proc, uint16_t from_cpu, Cycles lnow) {
  if (rq_ != nullptr) {
    if (proc.queued) {
      return;
    }
    proc.queued = true;
    rq_->Enqueue(proc.pid.value, EffectiveMask(proc), from_cpu,
                 proc.last_cpu == kNoCpu ? RunQueueSet::kNoCpu : proc.last_cpu, lnow);
  } else if (sched_costs_on()) {
    // Global-list mode with interconnect costs: readying a process is a
    // write to the shared ready list from `from_cpu`.
    TouchReadyList(from_cpu, lnow);
  }
}

UserProcessManager::DispatchOutcome UserProcessManager::RunQuantumOn(Process& proc,
                                                                     uint16_t cpu,
                                                                     Cycles dispatch_start,
                                                                     bool affine_vp) {
  auto accrue_quantum = [&] {
    if (const Cycles d = ctx_->clock.now() - dispatch_start; d > 0) {
      ctx_->smp.Accrue(cpu, d);
      ctx_->trace.CloseSpan(dispatch_start, ev_quantum_, proc.pid.value, cpu,
                            hist_quantum_);
    }
  };
  auto vp = affine_vp ? vpm_->AcquireIdleUserVp(cpu) : vpm_->AcquireIdleUserVp();
  if (!vp.ok()) {
    return DispatchOutcome::kNoVp;  // pool exhausted this pass
  }
  proc.vp = *vp;
  proc.bound = true;
  proc.state = ProcState::kRunning;
  ++proc.stats.dispatches;
  ctx_->cost.Charge(CodeStyle::kStructured, Costs::kProcessSwitch);
  // Running on a different CPU than last time drags the process's cached
  // working state across the interconnect (free at connect cost 0).
  if (sched_costs_on() && proc.last_cpu != kNoCpu && proc.last_cpu != cpu) {
    ctx_->cost.Charge(CodeStyle::kOptimized, dcfg_.connect_cost);
    ctx_->metrics.Inc(id_proc_migrations_);
    ctx_->metrics.Inc(id_proc_migration_cycles_, dcfg_.connect_cost);
  }
  proc.last_cpu = cpu;

  // The quantum proper: state swap-in, the op loop, and the requeue tail.
  // Deeper domains (gate, fault-service, naming sections) nest inside; the
  // vp/process-switch charges above stay on the window's dispatch root.
  Prof::Scope quantum_scope(&ctx_->prof, ProfDomain::kUprocQuantum);

  Status in = SwapStateIn(proc);
  if (in.code() == Code::kBlocked) {
    Park(proc);
    accrue_quantum();
    return DispatchOutcome::kRan;
  }
  if (!in.ok()) {
    Finish(proc, ProcState::kAborted, in);
    accrue_quantum();
    return DispatchOutcome::kRan;
  }

  const VpId vp_used = proc.vp;
  const Cycles start = ctx_->clock.now();
  for (uint32_t n = 0; n < quantum_ && proc.pc < proc.program.size(); ++n) {
    // User code runs in the user domain; its references enter the kernel
    // afresh through the fault dispatcher.
    CallTracker::SignalScope user_domain(&ctx_->tracker);
    Status st = ExecOneOp(proc);
    if (st.ok()) {
      ++proc.pc;
      ++proc.stats.ops_executed;
      continue;
    }
    if (st.code() == Code::kBlocked) {
      break;  // pending_wait already recorded in the context
    }
    Finish(proc, ProcState::kAborted, st);
    break;
  }
  proc.stats.cpu_cycles += ctx_->clock.now() - start;
  vpm_->AccrueBusy(vp_used, ctx_->clock.now() - start);

  if (proc.state != ProcState::kRunning) {
    accrue_quantum();
    return DispatchOutcome::kRan;  // aborted above
  }
  if (proc.pc >= proc.program.size()) {
    Finish(proc, ProcState::kDone, Status::Ok());
  } else if (proc.ctx.pending_wait.valid &&
             ctx_->eventcounts.Read(proc.ctx.pending_wait.ec) < proc.ctx.pending_wait.target) {
    Park(proc);
  } else {
    // Quantum expired (or the wait already resolved): back to ready.
    proc.state = ProcState::kReady;
    SwapStateOut(proc);
    vpm_->ReleaseUserVp(proc.vp);
    proc.bound = false;
  }
  accrue_quantum();
  return DispatchOutcome::kRan;
}

bool UserProcessManager::DispatchGlobal() {
  // The legacy path: scan the one ready list, giving each ready process a
  // quantum on the least-behind CPU.  With interconnect costs on, every
  // dispatch locks and bounces the shared list line first.
  bool did_work = false;
  for (auto& [pid, proc] : procs_) {
    if (proc.state != ProcState::kReady) {
      continue;
    }
    // Quantum interleaving: this dispatch runs on the CPU whose local clock
    // is furthest behind, and everything it charges — the vp acquisition,
    // the switch, the state swap-in, the ops, their fault services — accrues
    // to that CPU.
    const uint32_t mask = EffectiveMask(proc);
    const uint16_t cpu = mask == 0 ? ctx_->smp.NextCpu() : ctx_->smp.NextCpuIn(mask);
    ctx_->current_cpu = cpu;
    ctx_->trace.SetCpu(cpu);
    ctx_->AnchorWindow();
    Prof::Window window(&ctx_->prof, cpu, ProfDomain::kDispatch);
    const Cycles dispatch_start = ctx_->clock.now();
    if (sched_costs_on()) {
      TouchReadyList(cpu, ctx_->smp.local_now(cpu));
    }
    if (RunQuantumOn(proc, cpu, dispatch_start, /*affine_vp=*/false) ==
        DispatchOutcome::kNoVp) {
      AccrueOutside(cpu, dispatch_start);  // the list touch, if any
      break;  // pool exhausted this pass
    }
    did_work = true;
    ++sched_progress_;
  }
  return did_work;
}

bool UserProcessManager::DispatchSharded() {
  // Sharded dispatch: the least-behind CPU pops its own queue (stealing in
  // fixed victim order when empty and stealing is on) and runs one quantum;
  // repeat until no CPU can obtain work.  Queue charges land inside the
  // quantum window, so lock spin, line transfers, and steals all accrue to
  // the dispatching CPU.
  bool did_work = false;
  const uint16_t n = ctx_->smp.count();
  while (rq_->AnyQueued()) {
    // CPUs in least-behind order (ties: lowest index), recomputed after
    // every quantum so the interleave matches the legacy dispatch discipline.
    std::vector<uint16_t> order(n);
    for (uint16_t k = 0; k < n; ++k) {
      order[k] = k;
    }
    std::sort(order.begin(), order.end(), [&](uint16_t a, uint16_t b) {
      const Cycles la = ctx_->smp.local_now(a);
      const Cycles lb = ctx_->smp.local_now(b);
      return la != lb ? la < lb : a < b;
    });
    bool ran = false;
    for (uint16_t cpu : order) {
      ctx_->current_cpu = cpu;
      ctx_->trace.SetCpu(cpu);
      ctx_->AnchorWindow();
      Prof::Window window(&ctx_->prof, cpu, ProfDomain::kDispatch);
      const Cycles dispatch_start = ctx_->clock.now();
      const RunQueueSet::Popped pop = rq_->Dequeue(cpu, ctx_->smp.local_now(cpu));
      if (!pop.ok) {
        AccrueOutside(cpu, dispatch_start);  // fruitless steal scans charge
        continue;
      }
      auto it = procs_.find(ProcessId(pop.id));
      if (it == procs_.end()) {
        AccrueOutside(cpu, dispatch_start);
        continue;  // destroyed while queued (Remove is the normal path)
      }
      Process& proc = it->second;
      proc.queued = false;
      if (proc.state != ProcState::kReady) {
        AccrueOutside(cpu, dispatch_start);
        continue;
      }
      if (RunQuantumOn(proc, cpu, dispatch_start, /*affine_vp=*/true) ==
          DispatchOutcome::kNoVp) {
        // Pool exhausted: put the item back where the thief found work and
        // end the pass; the next pass retries with vps released.
        proc.queued = true;
        rq_->PushFront(pop.id, pop.mask, cpu);
        AccrueOutside(cpu, dispatch_start);
        return did_work;
      }
      did_work = true;
      ran = true;
      ++sched_progress_;
      if (proc.state == ProcState::kReady) {
        // Quantum expired: requeue with this CPU as the locality hint.
        const Cycles t0 = ctx_->clock.now();
        EnqueueReady(proc, cpu, ctx_->smp.local_now(cpu));
        AccrueOutside(cpu, t0);
      }
      break;  // recompute the least-behind order
    }
    if (!ran) {
      break;  // queued work exists but no CPU may run it this pass
    }
  }
  return did_work;
}

bool UserProcessManager::SchedulerPass() {
  CallTracker::Scope scope(&ctx_->tracker, self_);
  bool did_work = false;

  // Level-1 activity first: device completions, daemons.  System tasks run
  // on the bootload CPU, as on the real machine.
  ctx_->current_cpu = 0;
  ctx_->trace.SetCpu(0);
  ctx_->AnchorWindow();
  Prof::Window level1_window(&ctx_->prof, 0, ProfDomain::kDispatch);
  const Cycles level1_start = ctx_->clock.now();
  sched_progress_ += ctx_->events.RunDue(ctx_->clock.now());
  if (vpm_->RunKernelTasks()) {
    did_work = true;
  }

  // The bootload CPU's local time during level-1 work (its accrued clock
  // plus this window's progress) — what wake-path queue touches charge at.
  auto level1_lnow = [&] {
    return ctx_->smp.local_now(0) + (ctx_->clock.now() - level1_start);
  };

  // Drain the real-memory queue: wake parked processes.
  if (queue_ != nullptr) {
    while (auto msg = queue_->Pop()) {
      auto it = procs_.find(msg->dest);
      if (it != procs_.end() && it->second.state == ProcState::kBlocked) {
        it->second.state = ProcState::kReady;
        ctx_->trace.Instant(ev_wake_, it->second.pid.value, 1);
        EnqueueReady(it->second, 0, level1_lnow());
        did_work = true;
        ++sched_progress_;
      }
    }
  }
  // Also honor eventcounts that advanced synchronously (no message posted).
  for (auto& [pid, proc] : procs_) {
    if (proc.state == ProcState::kBlocked && proc.ctx.pending_wait.valid &&
        ctx_->eventcounts.Read(proc.ctx.pending_wait.ec) >= proc.ctx.pending_wait.target) {
      proc.state = ProcState::kReady;
      ctx_->trace.Instant(ev_wake_, proc.pid.value, 0);
      EnqueueReady(proc, 0, level1_lnow());
      did_work = true;
      ++sched_progress_;
    }
  }

  if (const Cycles level1 = ctx_->clock.now() - level1_start; level1 > 0) {
    ctx_->smp.Accrue(0, level1);
    ctx_->trace.CloseSpan(level1_start, ev_level1_, 0, 0);
  }
  level1_window.Close();

  // Dispatch ready processes onto idle virtual processors and run quanta.
  if (rq_ != nullptr ? DispatchSharded() : DispatchGlobal()) {
    did_work = true;
  }
  return did_work;
}

Status UserProcessManager::RunUntilQuiescent(uint64_t max_passes) {
  for (uint64_t pass = 0; pass < max_passes; ++pass) {
    if (AllDone()) {
      return Status::Ok();
    }
    const bool did_work = SchedulerPass();
    // Stall watchdog: a scheduler that keeps claiming work while no quantum
    // runs, no completion lands, and no process wakes is livelocked (e.g. a
    // kernel task reporting work it never does).  Dump the flight recorder
    // instead of silently burning the pass budget.
    if (ctx_->prof.NoteDispatchRound(sched_progress_)) {
      DumpStallAndAbort(pass);
    }
    if (!did_work) {
      if (!ctx_->events.empty()) {
        // Every process is blocked on the device: the machine idles forward.
        const Cycles due = ctx_->events.next_due();
        if (due > ctx_->clock.now()) {
          const Cycles idle = due - ctx_->clock.now();
          ctx_->metrics.Inc(id_idle_cycles_, idle);
          ctx_->clock.Advance(idle);
          // The whole pool idles forward together waiting on the device.
          ctx_->smp.AdvanceAll(idle);
        }
        // Completion handlers are level-1 work on the bootload CPU.
        ctx_->current_cpu = 0;
        ctx_->trace.SetCpu(0);
        ctx_->AnchorWindow();
        Prof::Window window(&ctx_->prof, 0, ProfDomain::kDispatch);
        const Cycles completion_start = ctx_->clock.now();
        sched_progress_ += ctx_->events.RunDue(ctx_->clock.now());
        if (const Cycles d = ctx_->clock.now() - completion_start; d > 0) {
          ctx_->smp.Accrue(0, d);
        }
        continue;
      }
      if (AllDone()) {
        return Status::Ok();
      }
      return Status(Code::kFailedPrecondition, "scheduler quiesced with runnable work pending");
    }
  }
  return AllDone() ? Status::Ok()
                   : Status(Code::kResourceExhausted, "scheduler pass budget exhausted");
}

void UserProcessManager::DumpStallAndAbort(uint64_t pass) {
  std::fprintf(stderr,
               "==== STALL WATCHDOG: no scheduler progress for %llu rounds "
               "(progress stamp %llu, virtual clock %llu, scheduler pass %llu) ====\n",
               static_cast<unsigned long long>(ctx_->prof.stalled_rounds()),
               static_cast<unsigned long long>(sched_progress_),
               static_cast<unsigned long long>(ctx_->clock.now()),
               static_cast<unsigned long long>(pass));

  std::fprintf(stderr, "---- profiler domain trees ----\n");
  ctx_->prof.DumpTree(stderr);

  std::fprintf(stderr, "---- scheduler locks ----\n");
  std::fprintf(stderr, "ready-list lock: %s, line owner cpu %d\n",
               list_lock_.held() ? "HELD" : "free",
               list_owner_ == kNoCpu ? -1 : static_cast<int>(list_owner_));
  if (rq_ != nullptr) {
    for (uint16_t k = 0; k < rq_->count(); ++k) {
      const uint16_t owner = rq_->line_owner(k);
      std::fprintf(stderr, "run queue %u: depth %zu, lock %s, line owner cpu %d\n",
                   k, rq_->depth(k), rq_->shard_lock(k).held() ? "HELD" : "free",
                   owner == UINT16_MAX ? -1 : static_cast<int>(owner));
    }
  }

  std::fprintf(stderr, "---- processes ----\n");
  static constexpr const char* kStateNames[] = {"ready", "running", "blocked",
                                                "done", "aborted"};
  for (const auto& [pid, proc] : procs_) {
    std::fprintf(stderr,
                 "pid %u: %s, pc %zu/%zu, last cpu %d, queued %d, "
                 "dispatches %llu\n",
                 pid.value, kStateNames[static_cast<size_t>(proc.state)],
                 proc.pc, proc.program.size(),
                 proc.last_cpu == kNoCpu ? -1 : static_cast<int>(proc.last_cpu),
                 proc.queued ? 1 : 0,
                 static_cast<unsigned long long>(proc.stats.dispatches));
  }

  std::fprintf(stderr, "---- tracer ring tails ----\n");
  if (ctx_->trace.enabled()) {
    constexpr size_t kTail = 12;
    for (uint16_t cpu = 0; cpu < ctx_->trace.cpu_count(); ++cpu) {
      const std::vector<TraceRecord> records = ctx_->trace.Snapshot(cpu);
      std::fprintf(stderr, "cpu %u (%zu records, %llu dropped):\n", cpu,
                   records.size(),
                   static_cast<unsigned long long>(ctx_->trace.dropped(cpu)));
      const size_t first = records.size() > kTail ? records.size() - kTail : 0;
      for (size_t i = first; i < records.size(); ++i) {
        const TraceRecord& r = records[i];
        const std::string_view name = ctx_->trace.EventName(r.event);
        std::fprintf(stderr, "  @%llu +%llu %.*s proc=%u\n",
                     static_cast<unsigned long long>(r.ts),
                     static_cast<unsigned long long>(r.dur),
                     static_cast<int>(name.size()), name.data(), r.proc);
      }
    }
  } else {
    std::fprintf(stderr,
                 "tracer disabled (set KernelConfig::trace.enabled for ring tails)\n");
  }

  std::fflush(stderr);
  std::abort();
}

bool UserProcessManager::AllDone() const {
  for (const auto& [pid, proc] : procs_) {
    if (proc.state != ProcState::kDone && proc.state != ProcState::kAborted) {
      return false;
    }
  }
  return true;
}

}  // namespace mks
