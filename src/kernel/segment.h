// The segment manager: active segments as objects.
//
// An active segment is a segment whose page table is built in the (fixed,
// permanently resident) active segment table area, ready for the hardware to
// translate through.  Activation is driven from above by the known segment
// manager, which supplies the segment's home (pack, VTOC index) *and the
// static name of its governing quota cell* — the crucial change that frees
// this manager from knowing the shape of the directory hierarchy.  As a
// result, deactivation is constrained only by connection counts, never by
// which directories have active inferiors (the old supervisor's constraint,
// reproduced in src/baseline for contrast).
//
// Growth charges the quota cell, then asks the page frame manager to add the
// page; a full pack propagates back up this call chain as kPackFull, and the
// relocation of the whole segment to an emptier pack is directed here —
// after the layers above have disconnected every address space.
#ifndef MKS_KERNEL_SEGMENT_H_
#define MKS_KERNEL_SEGMENT_H_

#include <unordered_map>
#include <vector>

#include "src/kernel/page_frame.h"

namespace mks {

inline constexpr QuotaCellId kNoQuotaCell{UINT32_MAX};
inline constexpr uint32_t kNoAst = UINT32_MAX;

struct AstEntry {
  bool in_use = false;
  SegmentUid uid{};
  PackId pack{};
  VtocIndex vtoc{};
  PageTable page_table;
  uint32_t max_pages = 0;
  QuotaCellId quota_cell = kNoQuotaCell;
  EventcountId page_ec{};      // page-arrival eventcount for this segment
  uint32_t connections = 0;    // address-space connections (SDWs pointing here)
  bool is_directory = false;
  uint64_t lru_stamp = 0;
};

class SegmentManager {
 public:
  SegmentManager(KernelContext* ctx, CoreSegmentManager* core_segs, QuotaCellManager* quota,
                 PageFrameManager* pfm);

  // `ast_slots` fixes the size of the active segment table; the table and
  // the page tables it holds are charged against a core segment allocated
  // here (a map dependency on the core segment manager).
  Status Init(uint32_t ast_slots);

  // Builds the page table from the on-pack file map.  kResourceExhausted when
  // the AST is full of connected segments.
  Result<uint32_t> Activate(SegmentUid uid, PackId pack, VtocIndex vtoc, QuotaCellId cell);

  // Finds an existing activation or performs one (deactivating the
  // least-recently-used unconnected entry if the table is full).
  Result<uint32_t> EnsureActive(SegmentUid uid, PackId pack, VtocIndex vtoc, QuotaCellId cell);

  // Evicts all resident pages, writes the file map home, frees the slot.
  // kFailedPrecondition while address spaces are still connected.
  Status Deactivate(uint32_t ast);

  AstEntry* Find(SegmentUid uid);
  AstEntry* Get(uint32_t ast);
  uint32_t FindIndex(SegmentUid uid) const;  // kNoAst when inactive

  // Grows the segment by `page`: checks and charges the (statically named)
  // quota cell, then adds the page.  kQuotaOverflow and kPackFull surface
  // here; on kPackFull the quota charge is refunded.
  Status GrowSegment(uint32_t ast, uint32_t page);

  // Ordinary missing page: delegates to the page frame manager with every
  // name it needs.
  Status ServiceMissingPage(uint32_t ast, uint32_t page, ProcessId initiator, WaitSpec* wait);

  struct NewHome {
    PackId pack{};
    VtocIndex vtoc{};
  };
  // Moves the segment to the emptiest other pack with room for its records
  // plus one page of growth headroom.  Requires connections == 0 (the layers
  // above disconnect all address spaces first).  Updates the AST entry's home
  // and returns it for the upward signal to the directory manager.
  Result<NewHome> Relocate(uint32_t ast);

  // Connection bookkeeping, called by the address-space layer above.
  void NoteConnect(uint32_t ast);
  void NoteDisconnect(uint32_t ast);

  uint32_t active_count() const;
  uint32_t ast_slots() const { return static_cast<uint32_t>(ast_.size()); }

 private:
  Result<uint32_t> AllocateSlot();

  KernelContext* ctx_;
  ModuleId self_;
  CoreSegmentManager* core_segs_;
  QuotaCellManager* quota_;
  PageFrameManager* pfm_;
  CoreSegId ast_area_{};
  std::vector<AstEntry> ast_;
  std::unordered_map<SegmentUid, uint32_t> by_uid_;
  uint64_t lru_counter_ = 0;

  MetricId id_ast_replacements_;
  MetricId id_activations_;
  MetricId id_deactivations_;
  MetricId id_growths_;
  MetricId id_relocations_;
  TraceEventId ev_activate_;
  TraceEventId ev_deactivate_;
};

}  // namespace mks

#endif  // MKS_KERNEL_SEGMENT_H_
