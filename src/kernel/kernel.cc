#include "src/kernel/kernel.h"

namespace mks {

Kernel::Kernel(const KernelConfig& config)
    : config_(config),
      ctx_(std::make_unique<KernelContext>(config.memory_frames, config.features,
                                           config.structured_factor, config.secret,
                                           config.cpu_count, config.connect_cost)),
      id_shutdowns_(ctx_->metrics.Intern("kernel.shutdowns")) {
  // Before any manager interns events or records: size the per-CPU rings and
  // latch the knob.  With trace.enabled false the tracer stays inert and no
  // instrumented path diverges from an untraced build.
  ctx_->trace.Enable(config.cpu_count, config.trace);
  // Same staging for the profiler: lanes sized before the first charge, so
  // every accrual window from boot onward is attributable.
  ctx_->prof.Enable(config.cpu_count, config.profile);
  core_segs_ = std::make_unique<CoreSegmentManager>(ctx_.get());
  vpm_ = std::make_unique<VirtualProcessorManager>(ctx_.get(), core_segs_.get());
  vpm_->set_connect_cost(config.connect_cost);
  quota_ = std::make_unique<QuotaCellManager>(ctx_.get(), core_segs_.get());
  pfm_ = std::make_unique<PageFrameManager>(ctx_.get(), core_segs_.get(), quota_.get(),
                                            vpm_.get());
  segs_ = std::make_unique<SegmentManager>(ctx_.get(), core_segs_.get(), quota_.get(),
                                           pfm_.get());
  spaces_ = std::make_unique<AddressSpaceManager>(ctx_.get(), core_segs_.get(), segs_.get());
  ksm_ = std::make_unique<KnownSegmentManager>(ctx_.get(), segs_.get(), spaces_.get());
  dirs_ = std::make_unique<DirectoryManager>(ctx_.get(), quota_.get(), segs_.get(),
                                             spaces_.get());
  gates_ = std::make_unique<KernelGates>(ctx_.get(), vpm_.get(), pfm_.get(), segs_.get(),
                                         spaces_.get(), ksm_.get(), dirs_.get());
  uproc_ = std::make_unique<UserProcessManager>(ctx_.get(), core_segs_.get(), vpm_.get(),
                                                pfm_.get(), segs_.get(), ksm_.get(),
                                                gates_.get());
  uproc_->ConfigureDispatch({config.sharded_runqueues, config.steal, config.connect_cost,
                             config.lock_policy, config.anderson_slots});
  uproc_->set_slab_processes(config.slab_processes);
  // The read-mostly naming locks: one per manager, same policy and pricing.
  // Cross-CPU traffic (token revocation, epoch publish) is priced at
  // connect_cost, the interconnect's line-transfer figure everywhere else.
  const SharedLockConfig read_mostly{config.read_policy, config.connect_cost,
                                     config.epoch_grace_cost, config.cpu_count};
  dirs_->ConfigureReadMostly(read_mostly);
  ksm_->ConfigureReadMostly(read_mostly);
  gates_->EnableReadWriteTagging(config.read_policy != ReadPolicy::kOff);
}

Kernel::~Kernel() = default;

Status Kernel::Boot() {
  if (booted_) {
    return Status(Code::kFailedPrecondition, "already booted");
  }
  // Stage 1: the fixed pool of virtual processors, states wired in core.
  MKS_RETURN_IF_ERROR(vpm_->Init(config_.vp_count));
  // Stage 2: mount the packs.
  for (uint16_t p = 0; p < config_.pack_count; ++p) {
    ctx_->volumes.AddPack(config_.records_per_pack, config_.vtoc_slots_per_pack);
  }
  // Stage 3: resource-control and paging substrate.
  MKS_RETURN_IF_ERROR(quota_->Init(config_.quota_cell_slots));
  MKS_RETURN_IF_ERROR(segs_->Init(config_.ast_slots));
  MKS_RETURN_IF_ERROR(spaces_->Init(config_.user_sdw_count));
  // Stage 4: the user process layer's real-memory queue (a core segment).
  MKS_RETURN_IF_ERROR(uproc_->Init());
  // Stage 5: the paging pool takes every frame left after the core segments;
  // core segment allocation is now frozen.
  MKS_RETURN_IF_ERROR(pfm_->Init());
  core_segs_->Seal();
  pfm_->set_async(config_.async_paging);
  pfm_->set_retain_zero_records(config_.close_zero_page_channel);
  pfm_->set_pipeline(config_.paging_pipeline);
  // Stage 6: permanently bind the kernel daemons to virtual processors.  The
  // daemons run for asynchronous paging and for any pipeline knob: the
  // pre-cleaner needs the page-writer's idle-time pump, and batched queues
  // need the page-I/O daemon to dispatch rounds.
  const PagingPipeline& pp = config_.paging_pipeline;
  if (config_.async_paging || pp.precleaning || pp.batched_io || pp.readahead) {
    MKS_RETURN_IF_ERROR(
        vpm_->BindKernelTask("page_io_daemon", [this]() { return pfm_->PageIoDaemonStep(); })
            .status());
    MKS_RETURN_IF_ERROR(
        vpm_->BindKernelTask("page_writer", [this]() { return pfm_->PageWriterStep(4); })
            .status());
  }
  // Stage 7: the naming hierarchy.
  MKS_RETURN_IF_ERROR(dirs_->InitRoot(config_.root_label, config_.root_acl, config_.root_quota));
  booted_ = true;
  return Status::Ok();
}

Status Kernel::Shutdown() {
  if (!booted_) {
    return Status(Code::kFailedPrecondition, "not booted");
  }
  // Sever every user binding, then drain the active segment table.
  while (uproc_->process_count() > 0) {
    // Destroy in discovery order; DestroyProcess handles vp release and the
    // state segment's storage.
    bool destroyed = false;
    for (uint32_t pid = 1; pid < 4096; ++pid) {
      if (uproc_->Context(ProcessId(pid)) != nullptr) {
        MKS_RETURN_IF_ERROR(uproc_->DestroyProcess(ProcessId(pid)));
        destroyed = true;
        break;
      }
    }
    if (!destroyed) {
      return Status(Code::kInternal, "process table would not drain");
    }
  }
  // Slab-parked slots still own KSTs, state segments, and VTOC entries;
  // tear them down for real so the on-disk image leaks nothing.
  MKS_RETURN_IF_ERROR(uproc_->DrainSlabs());
  for (uint32_t slot = 0; slot < segs_->ast_slots(); ++slot) {
    if (segs_->Get(slot) != nullptr) {
      MKS_RETURN_IF_ERROR(segs_->Deactivate(slot));
    }
  }
  for (uint32_t cell = 0; cell < config_.quota_cell_slots; ++cell) {
    Status flushed = quota_->FlushCell(QuotaCellId(cell));
    if (!flushed.ok() && flushed.code() != Code::kInvalidArgument) {
      return flushed;
    }
  }
  booted_ = false;
  ctx_->metrics.Inc(id_shutdowns_);
  return Status::Ok();
}

std::vector<std::string> Kernel::AuditIntegrity() {
  std::vector<std::string> findings;
  pfm_->AuditIntegrity(&findings);
  spaces_->AuditIntegrity(&findings);
  dirs_->AuditQuotaIntegrity(&findings);
  return findings;
}

ProcContext Kernel::MakeContext(ProcessId pid, const Subject& subject) const {
  ProcContext ctx;
  ctx.pid = pid;
  ctx.subject = subject;
  return ctx;
}

DependencyGraph Kernel::DeclaredLattice() {
  using namespace module_names;
  DependencyGraph g;
  // Modules, bottom-up.
  g.AddModule(kCoreSegment);
  g.AddModule(kVproc);
  g.AddModule(kDiskVolume);
  g.AddModule(kQuotaCell);
  g.AddModule(kPageFrame);
  g.AddModule(kSegment);
  g.AddModule(kAddressSpace);
  g.AddModule(kKnownSegment);
  g.AddModule(kDirectory);
  g.AddModule(kUserProcess);
  g.AddModule(kGates);

  // Program and address-space dependencies: every module keeps its code,
  // temporary storage, and (for kernel modules) its address space in core
  // segments.
  for (const char* m : {kVproc, kDiskVolume, kQuotaCell, kPageFrame, kSegment, kAddressSpace,
                        kKnownSegment, kDirectory, kUserProcess, kGates}) {
    g.AddEdge(m, kCoreSegment, DepKind::kProgram);
    g.AddEdge(m, kCoreSegment, DepKind::kAddressSpace);
  }
  // Interpreter dependencies: everything above level 1 executes on a virtual
  // processor.
  for (const char* m : {kDiskVolume, kQuotaCell, kPageFrame, kSegment, kAddressSpace,
                        kKnownSegment, kDirectory, kUserProcess, kGates}) {
    g.AddEdge(m, kVproc, DepKind::kInterpreter);
  }

  // Component and map dependencies of the design.
  g.AddEdge(kQuotaCell, kDiskVolume, DepKind::kComponent);  // cells persist in VTOC entries
  g.AddEdge(kPageFrame, kDiskVolume, DepKind::kComponent);  // pages are disk records
  g.AddEdge(kPageFrame, kQuotaCell, DepKind::kMap);         // storage-use accounting
  g.AddEdge(kSegment, kPageFrame, DepKind::kComponent);     // segments are sets of pages
  g.AddEdge(kSegment, kDiskVolume, DepKind::kMap);          // file maps live on the pack
  g.AddEdge(kSegment, kQuotaCell, DepKind::kMap);           // growth charges the static cell
  g.AddEdge(kAddressSpace, kSegment, DepKind::kComponent);  // SDWs name active segments
  g.AddEdge(kKnownSegment, kSegment, DepKind::kComponent);  // KST entries name segments
  g.AddEdge(kKnownSegment, kAddressSpace, DepKind::kComponent);
  g.AddEdge(kDirectory, kSegment, DepKind::kComponent);  // directories stored in segments
  g.AddEdge(kDirectory, kQuotaCell, DepKind::kMap);      // quota designation
  g.AddEdge(kDirectory, kAddressSpace, DepKind::kComponent);  // severs SDWs before a move
  g.AddEdge(kDirectory, kDiskVolume, DepKind::kMap);          // entry names (pack, vtoc)
  g.AddEdge(kUserProcess, kKnownSegment, DepKind::kComponent);  // process state segments
  g.AddEdge(kUserProcess, kSegment, DepKind::kMap);
  g.AddEdge(kUserProcess, kPageFrame, DepKind::kMap);  // the real-memory queue contract
  g.AddEdge(kUserProcess, kDiskVolume, DepKind::kMap);

  // The gate keeper sits on top of everything.
  for (const char* m : {kDiskVolume, kQuotaCell, kPageFrame, kSegment, kAddressSpace,
                        kKnownSegment, kDirectory, kUserProcess}) {
    g.AddEdge(kGates, m, DepKind::kComponent);
  }
  return g;
}

}  // namespace mks
