// The core segment manager: the bottom of the dependency lattice.
//
// Core segments are fixed-size, permanently-resident regions of primary
// memory allocated once, by system initialization, after which the only
// available operations are processor read and write.  Any kernel module may
// keep its maps, programs, and temporary storage in a core segment without
// creating a dependency loop — at the price that the number of core segments
// is fixed, their sizes cannot change, and they permanently occupy primary
// memory.  The manager is "implemented by system initialization code and by
// the processor hardware"; it depends on nothing above it.
#ifndef MKS_KERNEL_CORE_SEGMENT_H_
#define MKS_KERNEL_CORE_SEGMENT_H_

#include <span>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/kernel/context.h"

namespace mks {

class CoreSegmentManager {
 public:
  explicit CoreSegmentManager(KernelContext* ctx);

  // Initialization-time only: carves `pages` frames from the bottom of
  // primary memory.  Fails with kFailedPrecondition once sealed and with
  // kResourceExhausted when primary memory cannot spare the frames (a budget
  // keeps at least half of memory available for paging).
  Result<CoreSegId> Allocate(std::string name, uint32_t pages);

  // Ends initialization; all further Allocate calls fail.
  void Seal() { sealed_ = true; }
  bool sealed() const { return sealed_; }

  Result<Word> ReadWord(CoreSegId seg, uint32_t offset);
  Status WriteWord(CoreSegId seg, uint32_t offset, Word value);

  // Direct span access for structures that live inside a core segment
  // (virtual-processor state records, the real-memory message queue, quota
  // cell table).  The span aliases primary memory.
  std::span<Word> RawSpan(CoreSegId seg);

  uint32_t SizeWords(CoreSegId seg) const;
  const std::string& Name(CoreSegId seg) const;
  size_t count() const { return segments_.size(); }

  // Frames [0, FirstPageableFrame) hold core segments; the page frame manager
  // owns the rest.
  uint32_t FirstPageableFrame() const { return next_frame_; }

 private:
  struct CoreSeg {
    std::string name;
    uint32_t first_frame;
    uint32_t pages;
  };

  KernelContext* ctx_;
  ModuleId self_;
  MetricId id_allocated_pages_;
  std::vector<CoreSeg> segments_;
  uint32_t next_frame_ = 0;
  bool sealed_ = false;
};

}  // namespace mks

#endif  // MKS_KERNEL_CORE_SEGMENT_H_
