#include "src/common/status.h"

namespace mks {

std::string_view CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "ok";
    case Code::kNoAccess:
      return "no_access";
    case Code::kRingViolation:
      return "ring_violation";
    case Code::kNoEntry:
      return "no_entry";
    case Code::kNameDuplication:
      return "name_duplication";
    case Code::kNotADirectory:
      return "not_a_directory";
    case Code::kNotASegment:
      return "not_a_segment";
    case Code::kQuotaOverflow:
      return "quota_overflow";
    case Code::kPackFull:
      return "pack_full";
    case Code::kNoVtocSlot:
      return "no_vtoc_slot";
    case Code::kNonEmpty:
      return "non_empty";
    case Code::kOutOfBounds:
      return "out_of_bounds";
    case Code::kInvalidSegno:
      return "invalid_segno";
    case Code::kInvalidArgument:
      return "invalid_argument";
    case Code::kBlocked:
      return "blocked";
    case Code::kResourceExhausted:
      return "resource_exhausted";
    case Code::kFailedPrecondition:
      return "failed_precondition";
    case Code::kAuthenticationFailed:
      return "authentication_failed";
    case Code::kNotFound:
      return "not_found";
    case Code::kAlreadyExists:
      return "already_exists";
    case Code::kUnimplemented:
      return "unimplemented";
    case Code::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  std::string out(CodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mks
