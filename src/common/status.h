// Status / Result error model for the Multics kernel simulator.
//
// The kernel is built without exceptions, in the style of real supervisor
// code: every fallible operation returns a Status or a Result<T>.  The error
// codes mirror the condition names of the historical Multics supervisor
// (no_access, no_entry, quota_overflow, pack_full, ...) so that tests and
// examples read like the paper.
#ifndef MKS_COMMON_STATUS_H_
#define MKS_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace mks {

enum class Code : uint8_t {
  kOk = 0,
  // Protection conditions.
  kNoAccess,        // reference monitor or ACL denied the operation
  kRingViolation,   // caller's ring outside the gate's bracket
  // Naming conditions.
  kNoEntry,          // name not found in the searched directory
  kNameDuplication,  // name already present in the directory
  kNotADirectory,    // a segment identifier was used where a directory is needed
  kNotASegment,      // a directory identifier was used where a segment is needed
  // Resource-control conditions.
  kQuotaOverflow,  // growing the segment would exceed the quota cell limit
  kPackFull,       // the containing disk pack has no free records
  kNoVtocSlot,     // the pack's table of contents is exhausted
  kNonEmpty,       // directory delete / quota change attempted with children
  // Addressing conditions.
  kOutOfBounds,     // offset beyond the segment's maximum length
  kInvalidSegno,    // segment number not bound in the address space
  kInvalidArgument, // malformed request
  // Multiplexing conditions.
  kBlocked,             // the operation must wait on an eventcount
  kResourceExhausted,   // fixed table (vp pool, AST area, core segment) full
  kFailedPrecondition,  // object in the wrong state for the operation
  kAuthenticationFailed,
  kNotFound,
  kAlreadyExists,
  kUnimplemented,
  kInternal,
};

// Returns the historical-style condition name, e.g. "quota_overflow".
std::string_view CodeName(Code code);

// A lightweight status word.  Ok statuses carry no message; error statuses
// carry the code and an optional context string.
class Status {
 public:
  Status() : code_(Code::kOk) {}
  explicit Status(Code code) : code_(code) {}
  Status(Code code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable rendering: "quota_overflow: segment >foo>bar".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  Code code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.ToString(); }

// Result<T>: either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : var_(std::move(status)) {}  // NOLINT(google-explicit-constructor)
  Result(Code code) : var_(Status(code)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(var_); }
  const T& value() const { return std::get<T>(var_); }
  T& value() { return std::get<T>(var_); }
  T value_or(T fallback) const { return ok() ? value() : std::move(fallback); }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(var_);
  }
  Code code() const { return ok() ? Code::kOk : std::get<Status>(var_).code(); }

  const T& operator*() const { return value(); }
  T& operator*() { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> var_;
};

// Propagation helpers in the usual supervisor idiom.
#define MKS_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::mks::Status mks_status_tmp_ = (expr);         \
    if (!mks_status_tmp_.ok()) {                    \
      return mks_status_tmp_;                       \
    }                                               \
  } while (0)

#define MKS_CONCAT_INNER_(a, b) a##b
#define MKS_CONCAT_(a, b) MKS_CONCAT_INNER_(a, b)
#define MKS_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                               \
  if (!var.ok()) {                                 \
    return var.status();                           \
  }                                                \
  lhs = std::move(*var)
#define MKS_ASSIGN_OR_RETURN(lhs, expr) \
  MKS_ASSIGN_OR_RETURN_IMPL_(MKS_CONCAT_(mks_result_, __LINE__), lhs, expr)

}  // namespace mks

#endif  // MKS_COMMON_STATUS_H_
