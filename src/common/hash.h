// Hashing utilities.
//
// Fnv1a64 is used for fast non-cryptographic identifiers (e.g. Bratt
// "mythical" entry identifiers, keyed with a per-boot secret).  Sha256 is a
// from-scratch implementation used by the answering service to store one-way
// images of passwords, standing in for the historical Multics one-way
// password transformation.
#ifndef MKS_COMMON_HASH_H_
#define MKS_COMMON_HASH_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace mks {

// 64-bit FNV-1a over bytes.
uint64_t Fnv1a64(std::string_view data, uint64_t seed = 0xcbf29ce484222325ULL);

// FNV-1a folding in a 64-bit value (for composing ids into a hash).
uint64_t Fnv1a64Mix(uint64_t hash, uint64_t value);

// SHA-256 digest.
class Sha256 {
 public:
  using Digest = std::array<uint8_t, 32>;

  Sha256();

  void Update(const uint8_t* data, size_t len);
  void Update(std::string_view data);
  Digest Finish();

  // One-shot convenience.
  static Digest Hash(std::string_view data);
  // Lowercase-hex rendering of a digest.
  static std::string ToHex(const Digest& digest);

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t total_len_{0};
  uint8_t buffer_[64];
  size_t buffer_len_{0};
};

}  // namespace mks

#endif  // MKS_COMMON_HASH_H_
