#include "src/common/rng.h"

#include <cmath>

namespace mks {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Modulo bias is irrelevant for workload generation.
  return Next() % bound;
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) { return lo + NextBelow(hi - lo + 1); }

double Rng::NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

bool Rng::NextBool(double p) { return NextDouble() < p; }

uint32_t Rng::NextBurst(double p, uint32_t cap) {
  uint32_t n = 1;
  while (n < cap && NextBool(p)) {
    ++n;
  }
  return n;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  // Rejection-inversion sampling (Hörmann & Derflinger).  Falls back to a
  // uniform draw for degenerate parameters.
  if (n <= 1 || s <= 0.0) {
    return n == 0 ? 0 : NextBelow(n);
  }
  const double q = s;
  auto h = [&](double x) {
    if (q == 1.0) {
      return std::log(x);
    }
    return (std::pow(x, 1.0 - q) - 1.0) / (1.0 - q);
  };
  auto h_inv = [&](double x) {
    if (q == 1.0) {
      return std::exp(x);
    }
    return std::pow(1.0 + x * (1.0 - q), 1.0 / (1.0 - q));
  };
  const double h_x0 = h(0.5) - 1.0;
  const double h_n = h(static_cast<double>(n) + 0.5);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double u = h_x0 + NextDouble() * (h_n - h_x0);
    const double x = h_inv(u);
    const uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1 || k > n) {
      continue;
    }
    const double ratio =
        std::pow(static_cast<double>(k), -q) /
        (h(static_cast<double>(k) + 0.5) - h(static_cast<double>(k) - 0.5));
    if (NextDouble() * ratio <= std::pow(static_cast<double>(k), -q)) {
      return k - 1;  // 0-based rank
    }
  }
  return NextBelow(n);
}

}  // namespace mks
