// Strongly-typed identifiers used throughout the simulator.
//
// Each identifier is a distinct type so that a pack identifier can never be
// passed where a segment number is expected.  Identifiers are cheap value
// types with hashing support so they can key hash tables.
#ifndef MKS_COMMON_IDS_H_
#define MKS_COMMON_IDS_H_

#include <cstdint>
#include <functional>
#include <ostream>

namespace mks {

// Generic strongly-typed integer id.  Tag is an empty struct naming the
// id space; Rep is the underlying representation.
template <typename Tag, typename Rep = uint32_t>
struct Id {
  using rep_type = Rep;

  Rep value{0};

  constexpr Id() = default;
  constexpr explicit Id(Rep v) : value(v) {}

  friend constexpr bool operator==(Id a, Id b) { return a.value == b.value; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value != b.value; }
  friend constexpr bool operator<(Id a, Id b) { return a.value < b.value; }

  friend std::ostream& operator<<(std::ostream& os, Id id) { return os << id.value; }
};

// Disk objects.
struct PackIdTag {};
struct VtocIndexTag {};
struct RecordIndexTag {};
using PackId = Id<PackIdTag, uint16_t>;
using VtocIndex = Id<VtocIndexTag, uint32_t>;
using RecordIndex = Id<RecordIndexTag, uint32_t>;

// Memory objects.
struct FrameIndexTag {};
struct CoreSegIdTag {};
using FrameIndex = Id<FrameIndexTag, uint32_t>;
using CoreSegId = Id<CoreSegIdTag, uint16_t>;

// Segment naming.  SegmentUid is the system-wide unique identifier recorded
// in directory entries; Segno is a per-address-space segment number.
struct SegmentUidTag {};
struct SegnoTag {};
using SegmentUid = Id<SegmentUidTag, uint64_t>;
using Segno = Id<SegnoTag, uint16_t>;

// Directory-search results: real unique identifiers or Bratt "mythical"
// identifiers, indistinguishable to the caller.
struct EntryIdTag {};
using EntryId = Id<EntryIdTag, uint64_t>;

// Processes and processors.
struct VpIdTag {};
struct ProcessIdTag {};
using VpId = Id<VpIdTag, uint16_t>;
using ProcessId = Id<ProcessIdTag, uint32_t>;

// Synchronization.
struct EventcountIdTag {};
using EventcountId = Id<EventcountIdTag, uint32_t>;

// Resource control.
struct QuotaCellIdTag {};
using QuotaCellId = Id<QuotaCellIdTag, uint32_t>;

// Dependency analysis.
struct ModuleIdTag {};
using ModuleId = Id<ModuleIdTag, uint16_t>;

// Networking.
struct ChannelIdTag {};
struct SubchannelIdTag {};
using ChannelId = Id<ChannelIdTag, uint16_t>;
using SubchannelId = Id<SubchannelIdTag, uint16_t>;

}  // namespace mks

namespace std {
template <typename Tag, typename Rep>
struct hash<mks::Id<Tag, Rep>> {
  size_t operator()(mks::Id<Tag, Rep> id) const noexcept { return std::hash<Rep>{}(id.value); }
};
}  // namespace std

#endif  // MKS_COMMON_IDS_H_
