// Deterministic pseudo-random number generation for workload synthesis.
//
// All simulator randomness flows through Rng so that every experiment is
// reproducible from a seed.  The generator is xoshiro256** seeded through
// splitmix64, which is more than adequate for workload generation.
#ifndef MKS_COMMON_RNG_H_
#define MKS_COMMON_RNG_H_

#include <cstdint>

namespace mks {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform value in [0, bound).  bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform value in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli draw with probability p of true.
  bool NextBool(double p);

  // Geometric-ish draw used for locality bursts: number of repeats with
  // continuation probability p, capped at cap.
  uint32_t NextBurst(double p, uint32_t cap);

  // Zipf-distributed rank in [0, n) with exponent s (s > 0).  Used for
  // skewed file/page popularity.  O(1) via rejection-inversion.
  uint64_t NextZipf(uint64_t n, double s);

 private:
  uint64_t s_[4];
};

}  // namespace mks

#endif  // MKS_COMMON_RNG_H_
