// Simulated Multics-class hardware: primary memory, segment/page descriptor
// words, descriptor segments, and processors.
//
// The machine is word-addressed with 1024-word pages.  A processor translates
// (segment number, offset) through a descriptor segment (array of SDWs) to a
// page table (array of PTWs) to an absolute address, reporting typed faults
// instead of trapping.  Two descriptor-base registers are modelled, per the
// kernel design: segment numbers below kSystemSegnoLimit translate through a
// per-processor *system* descriptor segment whose descriptors refer only to
// permanently-resident storage, so system modules cannot depend on the user
// virtual-memory machinery.
//
// HwFeatures gates the paper's proposed processor additions (descriptor lock
// bit, quota-exception bit, wakeup-waiting switch, lock-address register) so
// the same substrate serves the baseline supervisor (features off) and the
// new kernel (features on), making the paper's "minor hardware adjustments
// make a significant difference" conclusion an ablation knob.
#ifndef MKS_HW_MACHINE_H_
#define MKS_HW_MACHINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/sim/clock.h"
#include "src/sim/metrics.h"

namespace mks {

using Word = uint64_t;

inline constexpr uint32_t kPageWords = 1024;
// Maximum segment length: 256 pages (the historical 6180 limit of 256K words,
// scaled down to 1024-word pages to keep simulations small).
inline constexpr uint32_t kMaxSegmentPages = 256;
// Segment numbers below this bound translate through the per-processor system
// descriptor segment (the second descriptor-base register of the new design).
inline constexpr uint16_t kSystemSegnoLimit = 64;

enum class AccessMode : uint8_t { kRead, kWrite, kExecute };

// Page table word.  `unallocated` marks a never-before-used page of a
// segment; with HwFeatures::quota_exception_bit the hardware converts a
// reference to such a page into a distinct quota exception, otherwise it
// surfaces as an ordinary missing page that software must re-diagnose.
struct Ptw {
  uint32_t frame = 0;
  bool in_core = false;
  bool unallocated = true;
  bool locked = false;    // descriptor lock bit (new hardware)
  bool used = false;
  bool modified = false;
};

// A segment's page table.  In the real system page tables live in the active
// segment table region of permanently-resident core; here the container is a
// C++ vector and residency is accounted by the core-segment manager.
struct PageTable {
  SegmentUid owner{};
  std::vector<Ptw> ptws;
};

// Segment descriptor word.
struct Sdw {
  bool present = false;
  PageTable* page_table = nullptr;
  uint32_t bound_pages = 0;  // addressable length in pages
  bool read = false;
  bool write = false;
  bool execute = false;
  uint8_t ring_bracket = 7;  // highest ring permitted to use this descriptor
};

// An address space: an array of SDWs indexed by segment number (relative to
// the space's base segno).
struct DescriptorSegment {
  std::vector<Sdw> sdws;

  Sdw* Get(uint16_t index) {
    return index < sdws.size() ? &sdws[index] : nullptr;
  }
};

struct HwFeatures {
  bool descriptor_lock_bit = false;
  bool quota_exception_bit = false;
  bool wakeup_waiting_switch = false;
  bool second_dsbr = false;

  static HwFeatures Baseline() { return HwFeatures{}; }
  static HwFeatures KernelDesign() {
    return HwFeatures{.descriptor_lock_bit = true,
                      .quota_exception_bit = true,
                      .wakeup_waiting_switch = true,
                      .second_dsbr = true};
  }
};

enum class FaultKind : uint8_t {
  kNone = 0,
  kMissingSegment,
  kMissingPage,
  kLockedDescriptor,  // only with descriptor_lock_bit
  kQuotaException,    // only with quota_exception_bit
  kOutOfBounds,
  kAccessViolation,
  kRingViolation,
};

std::string_view FaultKindName(FaultKind kind);

struct Fault {
  FaultKind kind = FaultKind::kNone;
  Segno segno{};
  uint32_t page = 0;
  Ptw* ptw = nullptr;  // absolute descriptor address (identity) for retranslation checks
};

struct AccessResult {
  bool ok = false;
  uint64_t abs_addr = 0;
  Fault fault;
};

// Primary (core) memory: an array of page frames.
class PrimaryMemory {
 public:
  PrimaryMemory(uint32_t frame_count, CostModel* cost, Metrics* metrics);

  uint32_t frame_count() const { return frame_count_; }
  uint64_t size_words() const { return words_.size(); }

  Word ReadWord(uint64_t abs_addr);
  void WriteWord(uint64_t abs_addr, Word value);

  std::span<Word> FrameSpan(FrameIndex frame);
  void ZeroFrame(FrameIndex frame);
  // Scans the frame for the zero-page optimization; charges one cycle per
  // word scanned, which is the cost the paper notes the removal algorithm
  // must pay ("searching the contents of pages about to be removed").
  bool FrameIsZero(FrameIndex frame);

 private:
  uint32_t frame_count_;
  std::vector<Word> words_;
  CostModel* cost_;
  Metrics* metrics_;
};

// A simulated processor.
class Processor {
 public:
  Processor(HwFeatures features, CostModel* cost, Metrics* metrics)
      : features_(features), cost_(cost), metrics_(metrics) {}

  void set_user_ds(DescriptorSegment* ds) { user_ds_ = ds; }
  void set_system_ds(DescriptorSegment* ds) { system_ds_ = ds; }
  DescriptorSegment* user_ds() const { return user_ds_; }
  DescriptorSegment* system_ds() const { return system_ds_; }
  const HwFeatures& features() const { return features_; }

  // Translates and access-checks one reference.  On success returns the
  // absolute address and marks the PTW used/modified.  On failure returns a
  // typed fault; with the descriptor lock bit enabled, a missing page also
  // locks the offending descriptor and latches its address in the
  // lock-address register.
  AccessResult Access(Segno segno, uint32_t offset, AccessMode mode, uint8_t ring);

  // Wakeup-waiting switch (new hardware): armed before a vp decides to wait;
  // a notification between the locked-descriptor fault and the wait primitive
  // flips it so the notification is not lost.
  void ArmWakeupWaiting() { wakeup_waiting_ = false; }
  void SetWakeupWaiting() { wakeup_waiting_ = true; }
  bool wakeup_waiting() const { return wakeup_waiting_; }
  const Ptw* lock_address_register() const { return lock_address_register_; }

 private:
  HwFeatures features_;
  CostModel* cost_;
  Metrics* metrics_;
  DescriptorSegment* user_ds_ = nullptr;
  DescriptorSegment* system_ds_ = nullptr;
  bool wakeup_waiting_ = false;
  const Ptw* lock_address_register_ = nullptr;
};

}  // namespace mks

#endif  // MKS_HW_MACHINE_H_
