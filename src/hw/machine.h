// Simulated Multics-class hardware: primary memory, segment/page descriptor
// words, descriptor segments, and processors.
//
// The machine is word-addressed with 1024-word pages.  A processor translates
// (segment number, offset) through a descriptor segment (array of SDWs) to a
// page table (array of PTWs) to an absolute address, reporting typed faults
// instead of trapping.  Two descriptor-base registers are modelled, per the
// kernel design: segment numbers below kSystemSegnoLimit translate through a
// per-processor *system* descriptor segment whose descriptors refer only to
// permanently-resident storage, so system modules cannot depend on the user
// virtual-memory machinery.
//
// HwFeatures gates the paper's proposed processor additions (descriptor lock
// bit, quota-exception bit, wakeup-waiting switch, lock-address register) so
// the same substrate serves the baseline supervisor (features off) and the
// new kernel (features on), making the paper's "minor hardware adjustments
// make a significant difference" conclusion an ablation knob.
#ifndef MKS_HW_MACHINE_H_
#define MKS_HW_MACHINE_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/sim/clock.h"
#include "src/sim/metrics.h"
#include "src/sim/trace.h"

namespace mks {

using Word = uint64_t;

inline constexpr uint32_t kPageWords = 1024;
// Maximum segment length: 256 pages (the historical 6180 limit of 256K words,
// scaled down to 1024-word pages to keep simulations small).
inline constexpr uint32_t kMaxSegmentPages = 256;
// Segment numbers below this bound translate through the per-processor system
// descriptor segment (the second descriptor-base register of the new design).
inline constexpr uint16_t kSystemSegnoLimit = 64;

enum class AccessMode : uint8_t { kRead, kWrite, kExecute };

// Page table word.  `unallocated` marks a never-before-used page of a
// segment; with HwFeatures::quota_exception_bit the hardware converts a
// reference to such a page into a distinct quota exception, otherwise it
// surfaces as an ordinary missing page that software must re-diagnose.
struct Ptw {
  uint32_t frame = 0;
  bool in_core = false;
  bool unallocated = true;
  bool locked = false;    // descriptor lock bit (new hardware)
  bool used = false;
  bool modified = false;
  // Number of associative-memory entries (across every CPU) currently caching
  // this PTW.  Maintained by AssociativeMemory; lets a broadcast invalidation
  // skip caches once every cached pairing is gone.  Pure host-side
  // bookkeeping — never charged, never traced.
  uint16_t assoc_refs = 0;
};

// A segment's page table.  In the real system page tables live in the active
// segment table region of permanently-resident core; here the container is a
// C++ vector and residency is accounted by the core-segment manager.
//
// The readahead fields are page control's per-segment sequentiality hints,
// kept beside the PTWs exactly because the page table is the one structure
// already in hand at fault time: `last_fault_page` records the most recent
// demand fault and `prefetch_until` the end of the last anticipatory window,
// so a fault at either frontier is recognized as a continuing forward scan.
struct PageTable {
  SegmentUid owner{};
  std::vector<Ptw> ptws;
  uint32_t last_fault_page = UINT32_MAX;  // UINT32_MAX: no fault seen yet
  uint32_t prefetch_until = 0;            // exclusive end of the last window
};

// Segment descriptor word.
struct Sdw {
  bool present = false;
  PageTable* page_table = nullptr;
  uint32_t bound_pages = 0;  // addressable length in pages
  bool read = false;
  bool write = false;
  bool execute = false;
  uint8_t ring_bracket = 7;  // highest ring permitted to use this descriptor
};

// An address space: an array of SDWs indexed by segment number (relative to
// the space's base segno).
struct DescriptorSegment {
  std::vector<Sdw> sdws;

  Sdw* Get(uint16_t index) {
    return index < sdws.size() ? &sdws[index] : nullptr;
  }
};

struct HwFeatures {
  bool descriptor_lock_bit = false;
  bool quota_exception_bit = false;
  bool wakeup_waiting_switch = false;
  bool second_dsbr = false;
  // Associative memory: a small set-associative cache of recently resolved
  // (segno, page) translations, like the 6180's SDW/PTW associative memory.
  // Modelled as an HwFeatures knob (like the descriptor lock bit) so benches
  // can ablate it.  When the flag is off, translation keeps the legacy
  // abstract charge (kAddressTranslation); when on, a miss additionally pays
  // the two descriptor fetches the cache exists to avoid, and a hit pays
  // only the associative search.
  bool associative_memory = false;
  uint16_t associative_entries = 16;  // total entries; 0 disables the cache

  static HwFeatures Baseline() { return HwFeatures{}; }
  static HwFeatures KernelDesign() {
    return HwFeatures{.descriptor_lock_bit = true,
                      .quota_exception_bit = true,
                      .wakeup_waiting_switch = true,
                      .second_dsbr = true,
                      .associative_memory = true};
  }
};

enum class FaultKind : uint8_t {
  kNone = 0,
  kMissingSegment,
  kMissingPage,
  kLockedDescriptor,  // only with descriptor_lock_bit
  kQuotaException,    // only with quota_exception_bit
  kOutOfBounds,
  kAccessViolation,
  kRingViolation,
};

std::string_view FaultKindName(FaultKind kind);

struct Fault {
  FaultKind kind = FaultKind::kNone;
  Segno segno{};
  uint32_t page = 0;
  Ptw* ptw = nullptr;  // absolute descriptor address (identity) for retranslation checks
};

struct AccessResult {
  bool ok = false;
  uint64_t abs_addr = 0;
  Fault fault;
};

// The descriptor associative memory: a small set-associative cache of
// resolved translations, keyed by an opaque 64-bit tag the owner composes
// (the Processor uses (segno, page); the baseline supervisor uses
// (AST slot, page)).  An entry caches the PTW address plus the access bits
// of the SDW it was resolved through.  The cache is a pure accelerator: it
// only ever serves translations that the full descriptor walk would resolve
// identically, and the owner must invalidate on every descriptor mutation
// (page eviction, deactivation, SDW disconnect/re-bound, DSBR reload) so a
// stale pairing is never consulted.
class AssociativeMemory {
 public:
  static constexpr uint16_t kWays = 4;

  struct Entry {
    bool valid = false;
    uint64_t key = 0;
    Ptw* ptw = nullptr;
    bool read = false;
    bool write = false;
    bool execute = false;
    uint8_t ring_bracket = 0;
    uint64_t stamp = 0;  // LRU within the set
  };

  // `entries` is the total capacity; rounded down to a whole number of
  // kWays-wide sets (a power of two).  0 leaves the cache disabled.
  explicit AssociativeMemory(uint16_t entries);

  bool enabled() const { return set_count_ != 0; }
  uint16_t capacity() const { return static_cast<uint16_t>(slots_.size()); }

  // Returns the valid entry for `key`, or nullptr.  Refreshes LRU.
  Entry* Lookup(uint64_t key);
  // Installs (or refreshes) the translation for `key`, evicting the set's
  // LRU entry if needed.
  void Insert(uint64_t key, Ptw* ptw, bool read, bool write, bool execute,
              uint8_t ring_bracket);

  // Invalidation protocol.  All are O(capacity); invalidation events are
  // orders of magnitude rarer than lookups.  Every path that drops a valid
  // entry gives back its PTW presence count, so `Ptw::assoc_refs == 0` is an
  // exact "no cache anywhere holds this PTW" test.
  void InvalidateEntry(Entry* entry) {
    if (entry->valid) {
      entry->valid = false;
      ReleasePtw(entry->ptw);
    }
  }
  // Drops every entry whose key's high 32 bits equal `tag` (a segno for the
  // Processor, an AST slot for the baseline).  Returns entries dropped.
  uint32_t InvalidateTag(uint32_t tag);
  // Drops every entry caching `ptw` (page eviction).
  uint32_t InvalidatePtw(const Ptw* ptw);
  // Drops every entry whose PTW lies inside `pt`'s table (deactivation: the
  // slot's PTW storage is about to be reused by another segment).
  uint32_t InvalidatePageTable(const PageTable* pt);
  void Flush();

  static uint64_t MakeKey(uint32_t tag, uint32_t page) {
    return (static_cast<uint64_t>(tag) << 32) | page;
  }

 private:
  size_t SetBase(uint64_t key) const;

  static void ReleasePtw(Ptw* ptw) {
    assert(ptw != nullptr && ptw->assoc_refs > 0);
    --ptw->assoc_refs;
  }

  std::vector<Entry> slots_;  // set_count_ sets of kWays consecutive entries
  size_t set_count_ = 0;
  uint64_t stamp_ = 0;
};

// Backing store a pending page frame fills from on first touch (the disk
// volume layer implements it).  FillPage copies the page image behind
// `cookie` into `out`; ReadWordAt fetches one word of it without the copy —
// both host-side data movement only, never a cycle charge: the simulated
// transfer was charged when the frame was bound.
class PageSource {
 public:
  virtual ~PageSource() = default;
  virtual void FillPage(uint64_t cookie, std::span<Word> out) const = 0;
  virtual Word ReadWordAt(uint64_t cookie, size_t index) const = 0;
};

// Primary (core) memory: an array of page frames.
//
// A frame may carry a *pending fill*: its contents are defined (a page
// source's record image, or zeros) but not yet copied in.  The copy happens
// on first touch — a word access, a span request, a zero scan.  This is a
// pure host-side optimization: a fault that never leads to a touch (the
// common case in a storm, where pages bounce in and out of core) never pays
// the 8KB copy, while every simulated charge is made exactly where it always
// was (the bind site charges the transfer; word accesses charge references).
class PrimaryMemory {
 public:
  PrimaryMemory(uint32_t frame_count, CostModel* cost, Metrics* metrics);

  uint32_t frame_count() const { return frame_count_; }
  uint64_t size_words() const { return words_.size(); }

  Word ReadWord(uint64_t abs_addr) {
    assert(abs_addr < words_.size());
    cost_->Charge(CodeStyle::kOptimized, Costs::kMemoryReference);
    const uint32_t frame = static_cast<uint32_t>(abs_addr / kPageWords);
    uint8_t& pf = pending_flag_[frame];
    if (pf != 0) {
      // Read through the source for the first few touches: a page that is
      // faulted in, read once, and evicted never pays the full-page copy.
      // Past the cap the frame is clearly live; copy once and read directly.
      if (pf < kReadThroughCap) {
        ++pf;
        const PendingFill& fill = pending_[frame];
        return fill.src != nullptr ? fill.src->ReadWordAt(fill.cookie, abs_addr % kPageWords)
                                   : 0;
      }
      Materialize(frame);
    }
    return words_[abs_addr];
  }

  void WriteWord(uint64_t abs_addr, Word value) {
    assert(abs_addr < words_.size());
    cost_->Charge(CodeStyle::kOptimized, Costs::kMemoryReference);
    const uint32_t frame = static_cast<uint32_t>(abs_addr / kPageWords);
    if (pending_flag_[frame] != 0) {
      Materialize(frame);
    }
    words_[abs_addr] = value;
  }

  // Defers `frame`'s fill to first touch: from `src` (BindPending) or zeros
  // (BindPendingZero).  Replaces any previous binding.
  void BindPending(FrameIndex frame, const PageSource* src, uint64_t cookie);
  void BindPendingZero(FrameIndex frame);

  // Span of the frame's words, fill applied.
  std::span<Word> FrameSpan(FrameIndex frame);
  // Span for callers that overwrite every word (a device copy-in): any
  // pending fill is cancelled instead of applied.
  std::span<Word> FrameSpanForOverwrite(FrameIndex frame);
  void ZeroFrame(FrameIndex frame);
  // Scans the frame for the zero-page optimization; charges one cycle per
  // word scanned, which is the cost the paper notes the removal algorithm
  // must pay ("searching the contents of pages about to be removed").
  bool FrameIsZero(FrameIndex frame);

 private:
  // pending_flag_ doubles as a touch counter: 0 = no pending fill, else the
  // frame is pending and the value counts word reads served through the
  // source; reaching the cap (or any write / span request) materializes.
  static constexpr uint8_t kReadThroughCap = 9;

  struct PendingFill {
    const PageSource* src = nullptr;  // nullptr: fill with zeros
    uint64_t cookie = 0;
  };

  void Materialize(uint32_t frame);

  uint32_t frame_count_;
  std::vector<Word> words_;
  std::vector<uint8_t> pending_flag_;  // hot one-byte "has a pending fill"
  std::vector<PendingFill> pending_;
  CostModel* cost_;
  Metrics* metrics_;
  MetricId id_zero_scans_;
};

// A simulated processor.
class Processor {
 public:
  Processor(HwFeatures features, CostModel* cost, Metrics* metrics);

  // Loading a descriptor-base register clears the associative memory, as on
  // the real hardware: cached translations belong to the outgoing space.
  void set_user_ds(DescriptorSegment* ds) {
    if (ds != user_ds_) {
      FlushAssociative();
    }
    user_ds_ = ds;
  }
  void set_system_ds(DescriptorSegment* ds) { system_ds_ = ds; }
  DescriptorSegment* user_ds() const { return user_ds_; }
  DescriptorSegment* system_ds() const { return system_ds_; }
  const HwFeatures& features() const { return features_; }

  // Translates and access-checks one reference.  On success returns the
  // absolute address and marks the PTW used/modified.  On failure returns a
  // typed fault; with the descriptor lock bit enabled, a missing page also
  // locks the offending descriptor and latches its address in the
  // lock-address register.
  AccessResult Access(Segno segno, uint32_t offset, AccessMode mode, uint8_t ring);

  // Associative-memory invalidation protocol, called by the kernel at every
  // descriptor-mutation site.  Each counts toward hw.assoc_flushes.
  // Drops cached translations for one segment number (SDW disconnect or
  // re-bound).
  void ClearAssociative(Segno segno);
  // Drops cached translations through one PTW (page eviction).
  void InvalidateAssociative(const Ptw* ptw);
  // Drops cached translations into one page table (segment deactivation:
  // the table's storage is about to describe a different segment).
  void InvalidateAssociative(const PageTable* pt);
  // Drops everything (address-space teardown, DSBR reload).
  void FlushAssociative();

  const AssociativeMemory& associative() const { return assoc_; }

  // Wakeup-waiting switch (new hardware): armed before a vp decides to wait;
  // a notification between the locked-descriptor fault and the wait primitive
  // flips it so the notification is not lost.
  void ArmWakeupWaiting() { wakeup_waiting_ = false; }
  void SetWakeupWaiting() { wakeup_waiting_ = true; }
  bool wakeup_waiting() const { return wakeup_waiting_; }
  const Ptw* lock_address_register() const { return lock_address_register_; }

 private:
  HwFeatures features_;
  CostModel* cost_;
  Metrics* metrics_;
  DescriptorSegment* user_ds_ = nullptr;
  DescriptorSegment* system_ds_ = nullptr;
  bool wakeup_waiting_ = false;
  const Ptw* lock_address_register_ = nullptr;
  AssociativeMemory assoc_;
  MetricId id_translations_;
  MetricId id_assoc_hits_;
  MetricId id_assoc_misses_;
  MetricId id_assoc_flushes_;
  MetricId id_locked_descriptor_faults_;
  MetricId id_quota_exceptions_;
  MetricId id_missing_page_faults_;
};

// The machine's processor pool.  The 6180 was a multiprocessor; modelling the
// pool at the hardware layer makes the per-processor state of the new design
// (associative memory, the two descriptor-base registers, the wakeup-waiting
// switch, the lock-address register) *actually* per-processor.  Host
// execution stays single-threaded — the simulation loop interleaves the CPUs
// deterministically — so the pool is a vector, not threads.
//
// All CPUs share one Metrics instance and intern the same hw.* counter names
// (Intern is idempotent), so aggregate hardware counters are independent of
// pool size.
//
// The broadcast invalidations exist because a descriptor mutation made while
// running on one CPU (page eviction, deactivation, SDW disconnect) leaves
// stale translations cached in *every other* CPU's associative memory; on the
// real hardware this was the connect ("clear associative memory") signal sent
// to all processors.
class ProcessorPool {
 public:
  // `trace`, when given, records each broadcast as an `hw.connect` instant
  // (arg = broadcast kind) — invalidation storms show up in the trace lanes.
  ProcessorPool(uint16_t cpu_count, HwFeatures features, CostModel* cost, Metrics* metrics,
                Tracer* trace = nullptr);

  uint16_t count() const { return static_cast<uint16_t>(cpus_.size()); }
  Processor& cpu(uint16_t k) { return cpus_[k]; }
  const Processor& cpu(uint16_t k) const { return cpus_[k]; }

  // Virtual cycles one connect signal costs the broadcasting CPU per
  // *remote* processor (count - 1 of them).  0 — the default — keeps
  // broadcasts free, the pre-interconnect-model behaviour; nonzero makes
  // invalidation storms real work on whichever CPU mutates descriptors.
  void set_connect_cost(Cycles cost) { connect_cost_ = cost; }
  Cycles connect_cost() const { return connect_cost_; }

  // Broadcast forms of the Processor invalidation protocol: every CPU drops
  // the affected translations.
  void ClearAssociative(Segno segno);
  void InvalidateAssociative(const Ptw* ptw);
  void InvalidateAssociative(const PageTable* pt);
  void FlushAssociative();

  // Loads the system descriptor-base register of every CPU (boot).
  void SetSystemDs(DescriptorSegment* ds);
  // A dying address space's descriptor segment must not stay latched in any
  // CPU's user DSBR.
  void DropUserDs(const DescriptorSegment* ds);

 private:
  // Charges the broadcast's connect cost and bumps the hw.connect_* counters;
  // no-op at cost 0 or with a single CPU (there is nobody to signal).
  void ChargeConnect();

  std::vector<Processor> cpus_;
  CostModel* cost_;
  Metrics* metrics_;
  Tracer* trace_;
  TraceEventId ev_connect_ = 0;
  Cycles connect_cost_ = 0;
  MetricId id_connect_signals_ = 0;
  MetricId id_connect_cycles_ = 0;
};

// `arg` values of the hw.connect trace instant — which broadcast form fired.
enum class ConnectKind : uint32_t {
  kClearSegno = 0,
  kInvalidatePtw = 1,
  kInvalidatePageTable = 2,
  kFlush = 3,
};

}  // namespace mks

#endif  // MKS_HW_MACHINE_H_
