#include "src/hw/machine.h"

#include <algorithm>
#include <cassert>

namespace mks {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kMissingSegment:
      return "missing_segment";
    case FaultKind::kMissingPage:
      return "missing_page";
    case FaultKind::kLockedDescriptor:
      return "locked_descriptor";
    case FaultKind::kQuotaException:
      return "quota_exception";
    case FaultKind::kOutOfBounds:
      return "out_of_bounds";
    case FaultKind::kAccessViolation:
      return "access_violation";
    case FaultKind::kRingViolation:
      return "ring_violation";
  }
  return "unknown";
}

AssociativeMemory::AssociativeMemory(uint16_t entries) {
  // Round down to a power-of-two number of kWays-wide sets; fewer than one
  // full set degenerates to a single direct set of `entries` ways.
  if (entries == 0) {
    return;
  }
  if (entries < kWays) {
    set_count_ = 1;
    slots_.assign(entries, Entry{});
    return;
  }
  size_t sets = 1;
  while (sets * 2 * kWays <= entries) {
    sets *= 2;
  }
  set_count_ = sets;
  slots_.assign(sets * kWays, Entry{});
}

size_t AssociativeMemory::SetBase(uint64_t key) const {
  // Mix segno and page so consecutive pages of one segment spread over sets.
  uint64_t h = key * 0x9e3779b97f4a7c15ULL;
  return static_cast<size_t>((h >> 32) & (set_count_ - 1)) * kWays;
}

AssociativeMemory::Entry* AssociativeMemory::Lookup(uint64_t key) {
  if (set_count_ == 0) {
    return nullptr;
  }
  const size_t base = SetBase(key);
  const size_t ways = std::min(slots_.size() - base, static_cast<size_t>(kWays));
  for (size_t w = 0; w < ways; ++w) {
    Entry& e = slots_[base + w];
    if (e.valid && e.key == key) {
      e.stamp = ++stamp_;
      return &e;
    }
  }
  return nullptr;
}

void AssociativeMemory::Insert(uint64_t key, Ptw* ptw, bool read, bool write, bool execute,
                               uint8_t ring_bracket) {
  if (set_count_ == 0) {
    return;
  }
  const size_t base = SetBase(key);
  const size_t ways = std::min(slots_.size() - base, static_cast<size_t>(kWays));
  Entry* victim = &slots_[base];
  for (size_t w = 0; w < ways; ++w) {
    Entry& e = slots_[base + w];
    if (e.valid && e.key == key) {
      victim = &e;  // refresh in place
      break;
    }
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (e.stamp < victim->stamp || !victim->valid) {
      victim = &e;
    }
  }
  if (victim->valid) {
    ReleasePtw(victim->ptw);
  }
  ++ptw->assoc_refs;
  *victim = Entry{true, key, ptw, read, write, execute, ring_bracket, ++stamp_};
}

uint32_t AssociativeMemory::InvalidateTag(uint32_t tag) {
  uint32_t dropped = 0;
  for (Entry& e : slots_) {
    if (e.valid && static_cast<uint32_t>(e.key >> 32) == tag) {
      e.valid = false;
      ReleasePtw(e.ptw);
      ++dropped;
    }
  }
  return dropped;
}

uint32_t AssociativeMemory::InvalidatePtw(const Ptw* ptw) {
  uint32_t dropped = 0;
  for (Entry& e : slots_) {
    if (e.valid && e.ptw == ptw) {
      e.valid = false;
      ReleasePtw(e.ptw);
      ++dropped;
      if (ptw->assoc_refs == 0) {
        break;  // no cache anywhere still holds this PTW
      }
    }
  }
  return dropped;
}

uint32_t AssociativeMemory::InvalidatePageTable(const PageTable* pt) {
  if (pt->ptws.empty()) {
    return 0;
  }
  const Ptw* first = pt->ptws.data();
  const Ptw* last = first + pt->ptws.size();
  uint32_t dropped = 0;
  for (Entry& e : slots_) {
    if (e.valid && e.ptw >= first && e.ptw < last) {
      e.valid = false;
      ReleasePtw(e.ptw);
      ++dropped;
    }
  }
  return dropped;
}

void AssociativeMemory::Flush() {
  for (Entry& e : slots_) {
    if (e.valid) {
      e.valid = false;
      ReleasePtw(e.ptw);
    }
  }
}

PrimaryMemory::PrimaryMemory(uint32_t frame_count, CostModel* cost, Metrics* metrics)
    : frame_count_(frame_count),
      words_(static_cast<size_t>(frame_count) * kPageWords, 0),
      pending_flag_(frame_count, 0),
      pending_(frame_count),
      cost_(cost),
      metrics_(metrics),
      id_zero_scans_(metrics->Intern("hw.zero_scans")) {}

void PrimaryMemory::BindPending(FrameIndex frame, const PageSource* src, uint64_t cookie) {
  assert(frame.value < frame_count_);
  pending_flag_[frame.value] = 1;
  pending_[frame.value] = PendingFill{src, cookie};
}

void PrimaryMemory::BindPendingZero(FrameIndex frame) {
  assert(frame.value < frame_count_);
  pending_flag_[frame.value] = 1;
  pending_[frame.value] = PendingFill{};
}

void PrimaryMemory::Materialize(uint32_t frame) {
  pending_flag_[frame] = 0;
  const PendingFill fill = pending_[frame];
  std::span<Word> span(words_.data() + static_cast<size_t>(frame) * kPageWords, kPageWords);
  if (fill.src != nullptr) {
    fill.src->FillPage(fill.cookie, span);
  } else {
    std::fill(span.begin(), span.end(), 0);
  }
}

std::span<Word> PrimaryMemory::FrameSpan(FrameIndex frame) {
  assert(frame.value < frame_count_);
  if (pending_flag_[frame.value] != 0) {
    Materialize(frame.value);
  }
  return std::span<Word>(words_.data() + static_cast<size_t>(frame.value) * kPageWords,
                         kPageWords);
}

std::span<Word> PrimaryMemory::FrameSpanForOverwrite(FrameIndex frame) {
  assert(frame.value < frame_count_);
  pending_flag_[frame.value] = 0;  // every word is about to be written
  return std::span<Word>(words_.data() + static_cast<size_t>(frame.value) * kPageWords,
                         kPageWords);
}

void PrimaryMemory::ZeroFrame(FrameIndex frame) { BindPendingZero(frame); }

bool PrimaryMemory::FrameIsZero(FrameIndex frame) {
  assert(frame.value < frame_count_);
  cost_->Charge(CodeStyle::kOptimized, Costs::kPageScanPerWord * kPageWords);
  metrics_->Inc(id_zero_scans_);
  if (pending_flag_[frame.value] != 0 && pending_[frame.value].src == nullptr) {
    return true;  // pending zero fill: the scan's answer without the scan
  }
  auto span = FrameSpan(frame);
  return std::all_of(span.begin(), span.end(), [](Word w) { return w == 0; });
}

Processor::Processor(HwFeatures features, CostModel* cost, Metrics* metrics)
    : features_(features),
      cost_(cost),
      metrics_(metrics),
      assoc_(features.associative_memory ? features.associative_entries : 0),
      id_translations_(metrics->Intern("hw.translations")),
      id_assoc_hits_(metrics->Intern("hw.assoc_hits")),
      id_assoc_misses_(metrics->Intern("hw.assoc_misses")),
      id_assoc_flushes_(metrics->Intern("hw.assoc_flushes")),
      id_locked_descriptor_faults_(metrics->Intern("hw.locked_descriptor_faults")),
      id_quota_exceptions_(metrics->Intern("hw.quota_exceptions")),
      id_missing_page_faults_(metrics->Intern("hw.missing_page_faults")) {}

void Processor::ClearAssociative(Segno segno) {
  if (assoc_.InvalidateTag(segno.value) > 0) {
    metrics_->Inc(id_assoc_flushes_);
  }
}

void Processor::InvalidateAssociative(const Ptw* ptw) {
  if (assoc_.InvalidatePtw(ptw) > 0) {
    metrics_->Inc(id_assoc_flushes_);
  }
}

void Processor::InvalidateAssociative(const PageTable* pt) {
  if (assoc_.InvalidatePageTable(pt) > 0) {
    metrics_->Inc(id_assoc_flushes_);
  }
}

void Processor::FlushAssociative() {
  if (assoc_.enabled()) {
    assoc_.Flush();
    metrics_->Inc(id_assoc_flushes_);
  }
}

AccessResult Processor::Access(Segno segno, uint32_t offset, AccessMode mode, uint8_t ring) {
  metrics_->Inc(id_translations_);
  const uint32_t ref_page = offset / kPageWords;

  // Fast path: the associative memory.  A hit is served only when the cached
  // SDW bits admit the access and the (live) PTW is plainly resident — any
  // other state falls through to the full walk, so every fault is generated
  // by exactly the same code whether or not the cache is present.  With the
  // feature on, a miss pays the two descriptor fetches from core explicitly;
  // zero entries therefore models the pre-associative hardware where every
  // reference makes both fetches.
  if (features_.associative_memory) {
    const uint64_t key = AssociativeMemory::MakeKey(segno.value, ref_page);
    if (AssociativeMemory::Entry* entry = assoc_.Lookup(key)) {
      Ptw* ptw = entry->ptw;
      const bool permitted = (mode == AccessMode::kRead && entry->read) ||
                             (mode == AccessMode::kWrite && entry->write) ||
                             (mode == AccessMode::kExecute && entry->execute);
      if (permitted && ring <= entry->ring_bracket && !ptw->locked && !ptw->unallocated &&
          ptw->in_core) {
        cost_->Charge(CodeStyle::kOptimized, Costs::kAssocSearch);
        metrics_->Inc(id_assoc_hits_);
        ptw->used = true;
        if (mode == AccessMode::kWrite) {
          ptw->modified = true;
        }
        AccessResult result;
        result.ok = true;
        result.abs_addr = static_cast<uint64_t>(ptw->frame) * kPageWords + offset % kPageWords;
        result.fault.segno = segno;
        result.fault.page = ref_page;
        result.fault.ptw = ptw;
        return result;
      }
      // The cached pairing no longer resolves cleanly; drop it and re-walk.
      assoc_.InvalidateEntry(entry);
    }
    metrics_->Inc(id_assoc_misses_);
    cost_->Charge(CodeStyle::kOptimized, 2 * Costs::kDescriptorFetch);
  }
  cost_->Charge(CodeStyle::kOptimized, Costs::kAddressTranslation);

  // Select the address space.  With the second descriptor-base register,
  // low segment numbers translate through the per-processor system space.
  DescriptorSegment* ds = user_ds_;
  uint16_t index = segno.value;
  if (features_.second_dsbr && segno.value < kSystemSegnoLimit) {
    ds = system_ds_;
  } else if (features_.second_dsbr) {
    index = static_cast<uint16_t>(segno.value - kSystemSegnoLimit);
  }

  AccessResult result;
  result.fault.segno = segno;
  result.fault.page = offset / kPageWords;

  Sdw* sdw = ds == nullptr ? nullptr : ds->Get(index);
  if (sdw == nullptr || !sdw->present) {
    result.fault.kind = FaultKind::kMissingSegment;
    return result;
  }
  if (ring > sdw->ring_bracket) {
    result.fault.kind = FaultKind::kRingViolation;
    return result;
  }
  const bool permitted = (mode == AccessMode::kRead && sdw->read) ||
                         (mode == AccessMode::kWrite && sdw->write) ||
                         (mode == AccessMode::kExecute && sdw->execute);
  if (!permitted) {
    result.fault.kind = FaultKind::kAccessViolation;
    return result;
  }
  const uint32_t page = offset / kPageWords;
  if (page >= sdw->bound_pages || sdw->page_table == nullptr ||
      page >= sdw->page_table->ptws.size()) {
    result.fault.kind = FaultKind::kOutOfBounds;
    return result;
  }

  Ptw* ptw = &sdw->page_table->ptws[page];
  result.fault.ptw = ptw;

  if (ptw->locked) {
    // Only generated by the new hardware; without the lock bit PTWs are
    // never locked.
    result.fault.kind = FaultKind::kLockedDescriptor;
    metrics_->Inc(id_locked_descriptor_faults_);
    return result;
  }
  if (ptw->unallocated) {
    if (features_.quota_exception_bit) {
      result.fault.kind = FaultKind::kQuotaException;
      metrics_->Inc(id_quota_exceptions_);
    } else {
      // Baseline hardware cannot distinguish growth from an ordinary missing
      // page; software must re-diagnose it.
      result.fault.kind = FaultKind::kMissingPage;
      metrics_->Inc(id_missing_page_faults_);
    }
    return result;
  }
  if (!ptw->in_core) {
    if (features_.descriptor_lock_bit) {
      ptw->locked = true;
      lock_address_register_ = ptw;
    }
    result.fault.kind = FaultKind::kMissingPage;
    metrics_->Inc(id_missing_page_faults_);
    return result;
  }

  ptw->used = true;
  if (mode == AccessMode::kWrite) {
    ptw->modified = true;
  }
  result.ok = true;
  result.abs_addr = static_cast<uint64_t>(ptw->frame) * kPageWords + offset % kPageWords;
  result.fault.kind = FaultKind::kNone;
  if (features_.associative_memory) {
    assoc_.Insert(AssociativeMemory::MakeKey(segno.value, ref_page), ptw, sdw->read, sdw->write,
                  sdw->execute, sdw->ring_bracket);
  }
  return result;
}

ProcessorPool::ProcessorPool(uint16_t cpu_count, HwFeatures features, CostModel* cost,
                             Metrics* metrics, Tracer* trace)
    : cost_(cost),
      metrics_(metrics),
      trace_(trace),
      id_connect_signals_(metrics->Intern("hw.connect_signals")),
      id_connect_cycles_(metrics->Intern("hw.connect_cycles")) {
  if (cpu_count == 0) {
    cpu_count = 1;
  }
  cpus_.reserve(cpu_count);
  for (uint16_t k = 0; k < cpu_count; ++k) {
    cpus_.emplace_back(features, cost, metrics);
  }
  if (trace_ != nullptr) {
    ev_connect_ = trace_->InternEvent("hw.connect");
  }
}

void ProcessorPool::ChargeConnect() {
  if (connect_cost_ == 0 || cpus_.size() < 2) {
    return;
  }
  const uint64_t remote = cpus_.size() - 1;
  const Cycles total = connect_cost_ * remote;
  cost_->Charge(CodeStyle::kOptimized, total);
  metrics_->Inc(id_connect_signals_, remote);
  metrics_->Inc(id_connect_cycles_, total);
}

void ProcessorPool::ClearAssociative(Segno segno) {
  for (Processor& p : cpus_) {
    p.ClearAssociative(segno);
  }
  ChargeConnect();
  if (trace_ != nullptr) {
    trace_->Instant(ev_connect_, segno.value,
                    static_cast<uint32_t>(ConnectKind::kClearSegno));
  }
}

void ProcessorPool::InvalidateAssociative(const Ptw* ptw) {
  // The connect is broadcast regardless (the sender cannot know remote cache
  // contents), but the host-side scan of each cache is skipped once the
  // presence count says no copies remain.
  if (ptw->assoc_refs != 0) {
    for (Processor& p : cpus_) {
      p.InvalidateAssociative(ptw);
      if (ptw->assoc_refs == 0) {
        break;
      }
    }
  }
  ChargeConnect();
  if (trace_ != nullptr) {
    trace_->Instant(ev_connect_, 0, static_cast<uint32_t>(ConnectKind::kInvalidatePtw));
  }
}

void ProcessorPool::InvalidateAssociative(const PageTable* pt) {
  for (Processor& p : cpus_) {
    p.InvalidateAssociative(pt);
  }
  ChargeConnect();
  if (trace_ != nullptr) {
    trace_->Instant(ev_connect_, 0,
                    static_cast<uint32_t>(ConnectKind::kInvalidatePageTable));
  }
}

void ProcessorPool::FlushAssociative() {
  for (Processor& p : cpus_) {
    p.FlushAssociative();
  }
  ChargeConnect();
  if (trace_ != nullptr) {
    trace_->Instant(ev_connect_, 0, static_cast<uint32_t>(ConnectKind::kFlush));
  }
}

void ProcessorPool::SetSystemDs(DescriptorSegment* ds) {
  for (Processor& p : cpus_) {
    p.set_system_ds(ds);
  }
}

void ProcessorPool::DropUserDs(const DescriptorSegment* ds) {
  for (Processor& p : cpus_) {
    if (p.user_ds() == ds) {
      p.set_user_ds(nullptr);
    }
  }
}

}  // namespace mks
