// Figure 2 — the superficial dependency structure of the 1973 Multics
// supervisor: six large modules, almost linear, with the one obvious loop
// between processor multiplexing and the virtual memory.
#include <cstdio>

#include "src/baseline/supervisor.h"

int main() {
  using namespace mks;
  const DependencyGraph g = MonolithicSupervisor::SuperficialStructure();

  std::printf("=== Figure 2: Superficial Dependency Structure in Multics ===\n\n");
  std::printf("%s\n", g.ToText().c_str());

  const auto loops = g.Loops();
  std::printf("modules: %zu, declared edges: %zu, loops: %zu\n", g.module_count(),
              g.edge_count(), loops.size());
  for (const auto& scc : loops) {
    std::printf("  loop:");
    for (ModuleId m : scc) {
      std::printf(" %s", g.name(m).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper: \"The obvious exception to a linear structure is the circular\n"
      "dependency of the processor multiplexing facilities and the virtual\n"
      "memory mechanism.\"  -> expected exactly 1 loop: %s\n",
      loops.size() == 1 ? "REPRODUCED" : "MISMATCH");

  std::printf("\nDOT rendering:\n%s\n", g.ToDot("figure2_superficial").c_str());
  return loops.size() == 1 ? 0 : 1;
}
