// P7 — eventcount synchronization [Reed and Kanodia, 1977], the substrate
// that lets a low-level discoverer of an event signal upward without knowing
// the identity of the waiting processes.  Host-time microbenchmarks of the
// primitive operations, plus waiter-count scaling for Advance.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"
#include "src/sync/eventcount.h"

namespace mks {
namespace {

void BM_Advance_NoWaiters(benchmark::State& state) {
  Metrics metrics;
  EventcountTable table(&metrics);
  const EventcountId ec = table.Create("x");
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Advance(ec));
  }
}
BENCHMARK(BM_Advance_NoWaiters);

void BM_Read(benchmark::State& state) {
  Metrics metrics;
  EventcountTable table(&metrics);
  const EventcountId ec = table.Create("x");
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Read(ec));
  }
}
BENCHMARK(BM_Read);

void BM_AwaitSatisfied(benchmark::State& state) {
  Metrics metrics;
  EventcountTable table(&metrics);
  const EventcountId ec = table.Create("x");
  table.Advance(ec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.AwaitOrEnqueue(ec, 1, VpId(0)));
  }
}
BENCHMARK(BM_AwaitSatisfied);

// Advance with N waiters, all satisfied at once (the broadcast the
// page-arrival protocol relies on).
void BM_AdvanceBroadcast(benchmark::State& state) {
  Metrics metrics;
  EventcountTable table(&metrics);
  const EventcountId ec = table.Create("x");
  const int waiters = static_cast<int>(state.range(0));
  uint64_t target = 1;
  for (auto _ : state) {
    state.PauseTiming();
    for (int w = 0; w < waiters; ++w) {
      table.AwaitOrEnqueue(ec, target, VpId(static_cast<uint16_t>(w)));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(table.Advance(ec));
    ++target;
  }
  state.counters["waiters"] = waiters;
}
BENCHMARK(BM_AdvanceBroadcast)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_SequencerTicket(benchmark::State& state) {
  Sequencer seq;
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq.Ticket());
  }
}
BENCHMARK(BM_SequencerTicket);

// These primitives never touch the simulated clock (they are the host-level
// substrate), so the JSON line reports host nanoseconds per operation from a
// single fixed-count run.
template <typename Fn>
double HostNsPerOp(int iters, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    fn();
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() / iters;
}

}  // namespace
}  // namespace mks

int main(int argc, char** argv) {
  using namespace mks;
  std::printf(
      "P7 -- eventcounts and sequencers: the discoverer of an event needs no\n"
      "knowledge of the waiting processes' identities; advance is O(waiters)\n"
      "only when waiters exist.\n\n");
  {
    constexpr int kIters = 100000;
    Metrics metrics;
    EventcountTable table(&metrics);
    const EventcountId ec = table.Create("x");
    const double advance_ns = HostNsPerOp(kIters, [&] { table.Advance(ec); });
    const double read_ns = HostNsPerOp(kIters, [&] { (void)table.Read(ec); });
    uint64_t target = table.Read(ec) + 1;
    const double broadcast16_ns = HostNsPerOp(2000, [&] {
      for (int w = 0; w < 16; ++w) {
        table.AwaitOrEnqueue(ec, target, VpId(static_cast<uint16_t>(w)));
      }
      table.Advance(ec);
      ++target;
    });
    Sequencer seq;
    const double ticket_ns = HostNsPerOp(kIters, [&] { (void)seq.Ticket(); });
    EmitJson(JsonLine("eventcounts")
                 .Field("advance_no_waiters_ns", advance_ns)
                 .Field("read_ns", read_ns)
                 .Field("broadcast_16_waiters_ns", broadcast16_ns)
                 .Field("sequencer_ticket_ns", ticket_ns));
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
