// P12 — the shared-segment fault storm (ROADMAP open item).  Every process
// initiates the SAME segment, so all CPUs race on one AST entry and one page
// table.  With async paging on, a posted demand read leaves the page's PTW
// locked until the I/O daemon completes it; a second CPU touching that page
// while the transfer is in flight takes a kLockedDescriptor fault and parks
// on the lock-address register — the paper's descriptor lock bit doing its
// job without any global page-table lock.
//
// The working set (one segment, `kSharedPages` pages) exceeds memory_frames,
// so the storm faults continuously, and staggered start offsets make the
// collisions happen mid-transfer rather than in lockstep.
//
// The tracer is on by default here (this bench exists to exercise it): JSON
// lines carry fault-service p50/p95/p99, and the 4-CPU run is exported as
// bench_perf_shared_storm.trace.json — open it in Perfetto and the
// fault.page_service spans on different lanes visibly overlap on the same
// page while gate.reference spans park behind the locked descriptor.
//
// Usage: bench_perf_shared_storm [--smoke]
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/fs/path_walker.h"
#include "src/kernel/kernel.h"

namespace mks {
namespace {

constexpr uint32_t kSharedPages = 96;  // > memory_frames: every sweep faults
constexpr uint32_t kProcesses = 6;

struct StormResult {
  Cycles total = 0;
  Cycles makespan = 0;
  uint64_t locked_waits = 0;
  uint64_t fault_count = 0;
  uint64_t fault_p50 = 0;
  uint64_t fault_p95 = 0;
  uint64_t fault_p99 = 0;
  uint64_t trace_dropped = 0;
  bool ok = false;
};

StormResult RunStorm(uint16_t cpus, uint32_t rounds, const char* trace_path) {
  StormResult out;
  KernelConfig config;
  config.memory_frames = 64;
  config.records_per_pack = 8192;
  config.cpu_count = cpus;
  config.vp_count = 6;
  config.async_paging = true;  // in-flight transfers keep PTWs locked
  config.trace.enabled = true;
  Kernel kernel{ArmWatchdog(config)};
  if (!kernel.Boot().ok()) {
    return out;
  }
  Subject user{Principal{"Bench", "Proj"}, Label::SystemLow(), 4};
  PathWalker walker(&kernel.gates());
  const Acl acl = BenchWorldAcl();

  // One process authors the shared segment; everyone initiates the same
  // branch, so all address spaces map the same AST entry and page table.
  std::vector<ProcessId> pids;
  std::vector<ProcContext*> ctxs;
  for (uint32_t i = 0; i < kProcesses; ++i) {
    auto pid = kernel.processes().CreateProcess(user);
    if (!pid.ok()) {
      return out;
    }
    pids.push_back(*pid);
    ctxs.push_back(kernel.processes().Context(*pid));
  }
  auto entry = walker.CreateSegment(*ctxs[0], ">work>shared", acl, Label::SystemLow());
  if (!entry.ok()) {
    return out;
  }
  for (uint32_t i = 0; i < kProcesses; ++i) {
    auto segno = kernel.gates().Initiate(*ctxs[i], *entry);
    if (!segno.ok()) {
      return out;
    }
    if (i == 0) {  // populate once; later sweeps fault the pages back in
      for (uint32_t p = 0; p < kSharedPages; ++p) {
        (void)kernel.gates().Write(*ctxs[0], *segno, p * kPageWords, p + 1);
      }
    }
    // Staggered cyclic sweep: process i starts kSharedPages/kProcesses pages
    // ahead of process i-1, so touches collide on in-flight pages.
    std::vector<UserOp> program;
    const uint32_t start = i * (kSharedPages / kProcesses);
    for (uint32_t r = 0; r < rounds; ++r) {
      for (uint32_t p = 0; p < kSharedPages; ++p) {
        const uint32_t page = (start + p) % kSharedPages;
        program.push_back(UserOp::Read(*segno, page * kPageWords));
      }
    }
    (void)kernel.processes().SetProgram(pids[i], std::move(program));
  }

  const Cycles before = kernel.clock().now();
  kernel.ctx().smp.AlignAll();
  const Cycles m0 = kernel.ctx().smp.Makespan();
  if (!kernel.processes().RunUntilQuiescent(4000000).ok()) {
    return out;
  }
  out.total = kernel.clock().now() - before;
  out.makespan = kernel.ctx().smp.Makespan() - m0;
  out.locked_waits = kernel.metrics().Get("gates.locked_descriptor_waits");
  out.fault_count = kernel.metrics().HistCount("fault.service_cycles");
  if (out.fault_count > 0) {
    out.fault_p50 = kernel.metrics().HistPercentile("fault.service_cycles", 0.50);
    out.fault_p95 = kernel.metrics().HistPercentile("fault.service_cycles", 0.95);
    out.fault_p99 = kernel.metrics().HistPercentile("fault.service_cycles", 0.99);
  }
  out.trace_dropped = TraceDroppedTotal(kernel.ctx().trace);
  if (trace_path != nullptr) {
    if (!TraceExporter::WriteFile(kernel.ctx().trace, trace_path)) {
      std::fprintf(stderr, "trace export failed: %s\n", trace_path);
    } else {
      std::printf("trace written: %s\n", trace_path);
    }
  }
  out.ok = true;
  return out;
}

}  // namespace
}  // namespace mks

int main(int argc, char** argv) {
  using namespace mks;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const uint32_t rounds = smoke ? 1u : 4u;
  const std::vector<uint16_t> cpu_counts =
      smoke ? std::vector<uint16_t>{1, 4} : std::vector<uint16_t>{1, 2, 4};

  std::printf("=== P12: shared-segment fault storm (one AST entry, %u CPUs max) ===\n\n",
              (unsigned)cpu_counts.back());
  std::printf("%6s %12s %12s %10s %14s %10s %10s %10s\n", "cpus", "makespan", "total",
              "speedup", "locked waits", "p50", "p95", "p99");
  Cycles m1 = 0;
  uint64_t waits_at_max = 0;
  bool scaled = true;
  for (uint16_t cpus : cpu_counts) {
    const bool want_export = cpus == cpu_counts.back();
    const StormResult r =
        RunStorm(cpus, rounds, want_export ? "bench_perf_shared_storm.trace.json" : nullptr);
    if (!r.ok) {
      std::fprintf(stderr, "run failed (%u cpus)\n", cpus);
      return 1;
    }
    if (cpus == 1) {
      m1 = r.makespan;
    }
    const double speedup = static_cast<double>(m1) / r.makespan;
    std::printf("%6u %12llu %12llu %9.2fx %14llu %10llu %10llu %10llu\n", cpus,
                (unsigned long long)r.makespan, (unsigned long long)r.total, speedup,
                (unsigned long long)r.locked_waits, (unsigned long long)r.fault_p50,
                (unsigned long long)r.fault_p95, (unsigned long long)r.fault_p99);
    JsonLine line("shared_storm");
    line.Field("cpus", uint64_t{cpus})
        .Field("makespan", r.makespan)
        .Field("total_cycles", r.total)
        .Field("speedup_vs_1cpu", speedup)
        .Field("locked_descriptor_waits", r.locked_waits)
        .Field("fault_count", r.fault_count)
        .Field("fault_service_p50", r.fault_p50)
        .Field("fault_service_p95", r.fault_p95)
        .Field("fault_service_p99", r.fault_p99)
        .Field("trace_dropped", r.trace_dropped);
    EmitJson(line);
    if (cpus == cpu_counts.back()) {
      waits_at_max = r.locked_waits;
      if (r.makespan >= m1) {
        scaled = false;
      }
    }
  }

  if (smoke) {
    std::printf("\nsmoke run complete\n");
    return 0;
  }
  // The shape this bench exists to show: CPUs really do collide on the shared
  // page table (locked-descriptor parks happen), yet the storm still scales —
  // the descriptor lock bit serializes per-page, not globally.
  const bool collided = waits_at_max > 0;
  std::printf("\nlocked-descriptor parks at %u CPUs: %llu (%s)\n",
              (unsigned)cpu_counts.back(), (unsigned long long)waits_at_max,
              collided ? "collisions observed" : "NO COLLISIONS");
  std::printf("makespan improves at %u CPUs: %s\n", (unsigned)cpu_counts.back(),
              scaled ? "yes" : "NO");
  std::printf("\npaper: per-descriptor locking lets a shared working set page in\n"
              "parallel without a global page-table lock -> %s\n",
              collided && scaled ? "REPRODUCED" : "MISMATCH");
  return collided && scaled ? 0 : 1;
}
