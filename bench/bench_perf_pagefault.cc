// P9 — the missing-page race.  Baseline hardware offers no descriptor lock
// bit, so page control must take a global lock and interpretively
// retranslate the faulting virtual address against segment control's and
// address space control's tables — and occasionally discovers a conflict and
// retries.  The new hardware locks the offending descriptor at fault time:
// no retranslation, no global lock, and colliding references wait on the
// page's eventcount.
//
// The bench measures the simulated cost of the full missing-page service
// path under both designs, sweeping the baseline's conflict rate.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/supervisor.h"
#include "src/fs/path_walker.h"
#include "src/kernel/kernel.h"

namespace mks {
namespace {

constexpr uint32_t kPages = 96;   // working set larger than memory
constexpr uint32_t kRounds = 6;

// Cyclic sweep over more pages than memory holds: every touch faults.
double BaselineFaultCost(double conflict_rate, uint64_t* retries) {
  BaselineConfig config;
  config.memory_frames = 64;
  config.records_per_pack = 8192;
  config.retranslate_conflict_rate = conflict_rate;
  MonolithicSupervisor sup{config};
  if (!sup.Boot().ok()) {
    return -1;
  }
  auto uid = sup.CreatePath(">big");
  if (!uid.ok()) {
    return -1;
  }
  for (uint32_t p = 0; p < kPages; ++p) {
    (void)sup.Write(*uid, p * kPageWords, p + 1);
  }
  const Cycles before = sup.clock().now();
  for (uint32_t r = 0; r < kRounds; ++r) {
    for (uint32_t p = 0; p < kPages; ++p) {
      (void)sup.Read(*uid, p * kPageWords);
    }
  }
  *retries = sup.metrics().Get("baseline.retranslation_conflicts");
  return static_cast<double>(sup.clock().now() - before) /
         static_cast<double>(kRounds * kPages);
}

struct AssocStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t flushes = 0;
};

double KernelFaultCost(uint64_t* locked_waits, AssocStats* assoc) {
  KernelConfig config;
  config.memory_frames = 64;
  config.records_per_pack = 8192;
  Kernel kernel{ArmWatchdog(config)};
  if (!kernel.Boot().ok()) {
    return -1;
  }
  Subject user{Principal{"Bench", "Proj"}, Label::SystemLow(), 4};
  auto pid = kernel.processes().CreateProcess(user);
  ProcContext* ctx = kernel.processes().Context(*pid);
  PathWalker walker(&kernel.gates());
  Acl acl;
  acl.Add(AclEntry{"*", "*", AccessModes::RWE()});
  auto entry = walker.CreateSegment(*ctx, ">big", acl, Label::SystemLow());
  if (!entry.ok()) {
    return -1;
  }
  auto segno = kernel.gates().Initiate(*ctx, *entry);
  for (uint32_t p = 0; p < kPages; ++p) {
    (void)kernel.gates().Write(*ctx, *segno, p * kPageWords, p + 1);
  }
  const Cycles before = kernel.clock().now();
  for (uint32_t r = 0; r < kRounds; ++r) {
    for (uint32_t p = 0; p < kPages; ++p) {
      (void)kernel.gates().Read(*ctx, *segno, p * kPageWords);
    }
  }
  *locked_waits = kernel.metrics().Get("gates.locked_descriptor_waits");
  assoc->hits = kernel.metrics().Get("hw.assoc_hits");
  assoc->misses = kernel.metrics().Get("hw.assoc_misses");
  assoc->flushes = kernel.metrics().Get("hw.assoc_flushes");
  return static_cast<double>(kernel.clock().now() - before) /
         static_cast<double>(kRounds * kPages);
}

}  // namespace
}  // namespace mks

int main() {
  using namespace mks;
  std::printf("=== P9: Missing-page service path ===\n\n");
  std::printf("(disk latency dominates both; the interesting part is the overhead)\n\n");
  std::printf("%-44s %14s %12s\n", "configuration", "cyc/reference", "conflicts");
  double baseline_clean = 0;
  for (double rate : {0.0, 0.02, 0.10, 0.25}) {
    uint64_t retries = 0;
    const double cost = BaselineFaultCost(rate, &retries);
    if (rate == 0.0) {
      baseline_clean = cost;
    }
    std::printf("baseline, global lock, conflict rate %4.0f%%   %14.0f %12llu\n", rate * 100,
                cost, (unsigned long long)retries);
    EmitJson(JsonLine("pagefault")
                 .Field("config", "baseline")
                 .Field("conflict_rate", rate)
                 .Field("cyc_per_ref", cost)
                 .Field("conflicts", retries));
  }
  uint64_t locked_waits = 0;
  AssocStats assoc;
  const double kernel_cost = KernelFaultCost(&locked_waits, &assoc);
  std::printf("%-44s %14.0f %12llu\n", "new design, descriptor lock bit", kernel_cost,
              (unsigned long long)locked_waits);
  EmitJson(JsonLine("pagefault")
               .Field("config", "kernel_lock_bit")
               .Field("cyc_per_ref", kernel_cost)
               .Field("locked_waits", locked_waits)
               .Field("assoc_hits", assoc.hits)
               .Field("assoc_misses", assoc.misses)
               .Field("assoc_flushes", assoc.flushes)
               .Field("delta_vs_clean_baseline", baseline_clean - kernel_cost)
               .Field("reproduced", locked_waits == 0 ? "yes" : "no"));
  std::printf("\nassociative memory on the kernel run: %llu hits / %llu misses / %llu flushes\n"
              "(the cyclic sweep defeats it by design: every page is evicted and\n"
              "invalidated before its next touch)\n",
              (unsigned long long)assoc.hits, (unsigned long long)assoc.misses,
              (unsigned long long)assoc.flushes);

  std::printf(
      "\nThe baseline pays the global lock + interpretive retranslation on every\n"
      "fault and re-faults on conflicts, so its per-reference cost RISES with\n"
      "the conflict rate.  The descriptor lock bit removes that machinery\n"
      "entirely (conflicts column is structurally zero); the handler's own\n"
      "instructions are costlier (PL/I factor), which is P4's finding, not a\n"
      "regression of the hardware change.\n");
  std::printf("baseline(0%%) vs kernel delta: %+0.0f cycles/reference\n",
              baseline_clean - kernel_cost);
  std::printf("\npaper: \"minor adjustments of the underlying hardware architecture can\n"
              "make a significant difference in operating system complexity\" -> the\n"
              "retranslation machinery (and its conflicts) ceases to exist: %s\n",
              locked_waits == 0 ? "REPRODUCED" : "MISMATCH");
  return 0;
}
