// P8 — the network I/O redesign [Ciccarelli, 1977].  Two claims reproduced:
//
//  SIZE  — the baseline keeps a full protocol handler in the kernel per
//          attached network (~7,000 lines for two networks, growing
//          linearly); the new design keeps a small generic demultiplexer
//          whose size is independent of the number of networks (~1,000
//          lines), with protocols in the user domain.
//  SPEED — the user-domain configuration pays a gate crossing per read and
//          the structured-code factor on protocol work; the kernel part of
//          the path becomes trivial.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/net/demux.h"

namespace mks {
namespace {

constexpr int kFrames = 5000;
constexpr uint16_t kSubchannels = 8;

double RunBaselineStack(int networks) {
  Clock clock;
  CostModel cost(&clock);
  Metrics metrics;
  std::vector<std::unique_ptr<MultiplexedChannel>> channels;
  InKernelNetworkStack stack(&cost, &metrics);
  for (int n = 0; n < networks; ++n) {
    channels.push_back(std::make_unique<MultiplexedChannel>(ChannelId(static_cast<uint16_t>(n)),
                                                            "net" + std::to_string(n)));
    if (n == 0) {
      stack.AttachArpanet(channels.back().get());
    } else if (n == 1) {
      stack.AttachFrontEnd(channels.back().get());
    } else {
      stack.AttachGenericNetwork(channels.back().get());
    }
  }
  TrafficGenerator gen(7, kSubchannels);
  for (int f = 0; f < kFrames; ++f) {
    channels[f % networks]->Inject(gen.NextFrame());
  }
  const Cycles before = clock.now();
  stack.PumpAll();
  return static_cast<double>(clock.now() - before) / kFrames;
}

double RunDemuxStack(int networks) {
  Clock clock;
  CostModel cost(&clock);
  Metrics metrics;
  std::vector<std::unique_ptr<MultiplexedChannel>> channels;
  GenericDemux demux(&cost, &metrics, /*queue_capacity=*/4096);
  std::vector<std::unique_ptr<NcpProtocolUser>> protocols;
  for (int n = 0; n < networks; ++n) {
    channels.push_back(std::make_unique<MultiplexedChannel>(ChannelId(static_cast<uint16_t>(n)),
                                                            "net" + std::to_string(n)));
    demux.AttachChannel(channels.back().get());
    protocols.push_back(std::make_unique<NcpProtocolUser>(&cost, &metrics, &demux,
                                                          ChannelId(static_cast<uint16_t>(n))));
  }
  TrafficGenerator gen(7, kSubchannels);
  for (int f = 0; f < kFrames; ++f) {
    channels[f % networks]->Inject(gen.NextFrame());
  }
  const Cycles before = clock.now();
  demux.Pump();
  for (int n = 0; n < networks; ++n) {
    for (uint16_t s = 0; s < kSubchannels; ++s) {
      protocols[n]->PumpSubchannel(SubchannelId(s));
    }
  }
  return static_cast<double>(clock.now() - before) / kFrames;
}

// The size model: kernel lines as a function of attached networks.
int BaselineKernelLines(int networks) { return networks * 3500; }  // 7000 lines for 2 networks
int DemuxKernelLines(int networks) { return 900 + networks * 50; }  // registration only

}  // namespace
}  // namespace mks

int main() {
  using namespace mks;
  std::printf("=== P8: Network I/O, per-network in-kernel handlers vs generic demux ===\n\n");
  std::printf("SIZE (kernel lines as networks attach):\n");
  std::printf("%10s %18s %18s\n", "networks", "baseline kernel", "demux kernel");
  for (int n = 1; n <= 4; ++n) {
    std::printf("%10d %18d %18d\n", n, BaselineKernelLines(n), DemuxKernelLines(n));
  }
  std::printf("  paper: 7000 lines at 2 networks -> <1000 in the kernel; growth linear vs ~flat\n\n");

  std::printf("SPEED (sim cycles per frame, full protocol both ways):\n");
  std::printf("%10s %18s %22s\n", "networks", "in-kernel stack", "demux + user domain");
  double kernel_cost2 = 0, user_cost2 = 0;
  for (int n = 1; n <= 3; ++n) {
    const double in_kernel = RunBaselineStack(n);
    const double user_domain = RunDemuxStack(n);
    if (n == 2) {
      kernel_cost2 = in_kernel;
      user_cost2 = user_domain;
    }
    std::printf("%10d %18.1f %22.1f\n", n, in_kernel, user_domain);
    EmitJson(JsonLine("network")
                 .Field("networks", static_cast<uint64_t>(n))
                 .Field("cyc_per_frame_in_kernel", in_kernel)
                 .Field("cyc_per_frame_user_domain", user_domain)
                 .Field("baseline_kernel_lines", static_cast<uint64_t>(BaselineKernelLines(n)))
                 .Field("demux_kernel_lines", static_cast<uint64_t>(DemuxKernelLines(n))));
  }
  std::printf("\nuser-domain overhead at 2 networks: %.1f%%\n",
              100.0 * (user_cost2 / kernel_cost2 - 1.0));
  const bool size_shape = DemuxKernelLines(4) < 1200 && BaselineKernelLines(4) > 10000;
  const bool speed_shape = user_cost2 > kernel_cost2 && user_cost2 < 4.0 * kernel_cost2;
  EmitJson(JsonLine("network_summary")
               .Field("user_domain_overhead_pct", 100.0 * (user_cost2 / kernel_cost2 - 1.0))
               .Field("reproduced", (size_shape && speed_shape) ? "yes" : "no"));
  std::printf(
      "\npaper shape: kernel bulk much reduced and ~independent of network count,\n"
      "at a modest per-frame cost in the user domain -> %s\n",
      (size_shape && speed_shape) ? "REPRODUCED" : "MISMATCH");
  return (size_shape && speed_shape) ? 0 : 1;
}
