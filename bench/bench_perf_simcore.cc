// P14 — simulator-core host throughput.  Unlike every other bench, the
// number here is about the *simulator*, not the simulated designs: how many
// simulated cycles the core executes per host second.  The figure is tracked
// in BENCH_pr6.json like any result so regressions of the hot path (dispatch
// tournament tree, pooled event queue, lazy page fill) show up in review.
//
// Two workloads:
//   fault_storm — the P11 kernel fault storm at 4 CPUs, scaled up by rounds
//                 so the measurement is dominated by steady-state faulting;
//   answering   — the P3 login/logout dialog at answering-service scale
//                 (512 users), the workload the issue wants affordable in CI.
//
// A double-run determinism self-check guards the refactor contract: the same
// configuration run twice must produce byte-identical counter snapshots and
// trace exports (host-side optimizations must never leak into virtual time).
//
// Usage: bench_perf_simcore [--smoke]
//   --smoke: small rounds/users, for CI; the throughput fields are still
//            emitted but only advisory at that scale.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/answering/service.h"
#include "src/fs/path_walker.h"
#include "src/kernel/kernel.h"

namespace mks {
namespace {

struct CoreRun {
  Cycles sim_cycles = 0;   // cycles advanced during the measured region
  double host_ms = 0;      // wall time of the measured region
  std::map<std::string, uint64_t, std::less<>> counters;
  std::string trace_json;  // empty when tracing is off
  bool ok = false;

  double CyclesPerHostSec() const {
    return host_ms <= 0 ? 0 : static_cast<double>(sim_cycles) / (host_ms / 1e3);
  }
};

// The P11 fault storm, kernel supervisor: 4 processes x 24 pages > 64
// frames, so every touch faults.  `rounds` scales the sweep count.
CoreRun RunFaultStorm(uint16_t cpus, uint32_t rounds, bool trace) {
  CoreRun out;
  KernelConfig config;
  config.memory_frames = 64;
  config.records_per_pack = 8192;
  config.cpu_count = cpus;
  config.vp_count = 6;
  config.trace.enabled = trace;
  Kernel kernel{ArmWatchdog(config)};
  if (!kernel.Boot().ok()) {
    return out;
  }
  Subject user{Principal{"Bench", "Proj"}, Label::SystemLow(), 4};
  PathWalker walker(&kernel.gates());
  const Acl acl = BenchWorldAcl();
  for (uint32_t i = 0; i < 4; ++i) {
    auto pid = kernel.processes().CreateProcess(user);
    if (!pid.ok()) {
      return out;
    }
    ProcContext* ctx = kernel.processes().Context(*pid);
    auto entry =
        walker.CreateSegment(*ctx, ">work>p" + std::to_string(i), acl, Label::SystemLow());
    if (!entry.ok()) {
      return out;
    }
    auto segno = kernel.gates().Initiate(*ctx, *entry);
    if (!segno.ok()) {
      return out;
    }
    for (uint32_t p = 0; p < 24; ++p) {
      (void)kernel.gates().Write(*ctx, *segno, p * kPageWords, p + 1);
    }
    std::vector<UserOp> program;
    program.reserve(static_cast<size_t>(rounds) * 24);
    for (uint32_t r = 0; r < rounds; ++r) {
      for (uint32_t p = 0; p < 24; ++p) {
        program.push_back(UserOp::Read(*segno, p * kPageWords));
      }
    }
    (void)kernel.processes().SetProgram(*pid, std::move(program));
  }
  kernel.ctx().smp.AlignAll();
  const Cycles before = Clock::total_advanced();
  const auto t0 = std::chrono::steady_clock::now();
  if (!kernel.processes().RunUntilQuiescent(4000000000ULL).ok()) {
    return out;
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.sim_cycles = Clock::total_advanced() - before;
  out.host_ms =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() / 1e6;
  out.counters = kernel.metrics().counters();
  if (trace) {
    out.trace_json = TraceExporter::Export(kernel.ctx().trace);
  }
  out.ok = true;
  return out;
}

// The P3 login/logout dialog at answering-service scale, user domain.
CoreRun RunAnsweringStorm(int users) {
  CoreRun out;
  Kernel kernel{ArmWatchdog(KernelConfig{})};
  if (!kernel.Boot().ok()) {
    return out;
  }
  Authenticator auth(&kernel);
  if (!auth.Init().ok()) {
    return out;
  }
  AnsweringService service(&kernel, &auth, ServiceDomain::kUserDomain);
  for (int u = 0; u < users; ++u) {
    (void)auth.Enroll(Principal{"User" + std::to_string(u), "Proj"}, "pw" + std::to_string(u),
                      Label(2, 0));
  }
  const Cycles before = Clock::total_advanced();
  const auto t0 = std::chrono::steady_clock::now();
  for (int u = 0; u < users; ++u) {
    auto pid = service.Login(Principal{"User" + std::to_string(u), "Proj"},
                             "pw" + std::to_string(u), Label(0, 0));
    if (!pid.ok()) {
      return out;
    }
    (void)service.Logout(*pid);
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.sim_cycles = Clock::total_advanced() - before;
  out.host_ms =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() / 1e6;
  out.counters = kernel.metrics().counters();
  out.ok = true;
  return out;
}

}  // namespace
}  // namespace mks

int main(int argc, char** argv) {
  using namespace mks;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const uint32_t rounds = smoke ? 50 : 2000;
  const int users = smoke ? 64 : 512;

  std::printf("=== P14: simulator-core host throughput ===\n\n");

  // Determinism self-check first (small, traced): identical virtual-time
  // output across two runs is the contract every host optimization rides on.
  const CoreRun d1 = RunFaultStorm(4, 4, /*trace=*/true);
  const CoreRun d2 = RunFaultStorm(4, 4, /*trace=*/true);
  if (!d1.ok || !d2.ok) {
    std::fprintf(stderr, "determinism check run failed\n");
    return 1;
  }
  const bool deterministic = d1.counters == d2.counters && d1.trace_json == d2.trace_json;
  std::printf("double-run determinism (counters + trace export): %s\n\n",
              deterministic ? "byte-identical" : "MISMATCH");

  const CoreRun storm = RunFaultStorm(4, rounds, /*trace=*/false);
  if (!storm.ok) {
    std::fprintf(stderr, "fault storm failed\n");
    return 1;
  }
  std::printf("fault_storm (P11 shape, 4 cpus, %u rounds):\n", rounds);
  std::printf("  %llu sim cycles in %.1f host ms -> %.3g cycles/host-sec\n\n",
              (unsigned long long)storm.sim_cycles, storm.host_ms, storm.CyclesPerHostSec());
  EmitJson(JsonLine("simcore")
               .Field("workload", "fault_storm")
               .Field("cpus", uint64_t{4})
               .Field("rounds", uint64_t{rounds})
               .Field("sim_cycles", storm.sim_cycles)
               .Field("host_ms", storm.host_ms)
               .Field("cyc_per_host_sec", storm.CyclesPerHostSec())
               .Field("deterministic", deterministic ? "yes" : "no"));

  const CoreRun answering = RunAnsweringStorm(users);
  if (!answering.ok) {
    std::fprintf(stderr, "answering storm failed\n");
    return 1;
  }
  std::printf("answering (user domain, %d users x login+logout):\n", users);
  std::printf("  %llu sim cycles in %.1f host ms -> %.3g cycles/host-sec\n\n",
              (unsigned long long)answering.sim_cycles, answering.host_ms,
              answering.CyclesPerHostSec());
  EmitJson(JsonLine("simcore")
               .Field("workload", "answering")
               .Field("users", static_cast<uint64_t>(users))
               .Field("sim_cycles", answering.sim_cycles)
               .Field("host_ms", answering.host_ms)
               .Field("cyc_per_host_sec", answering.CyclesPerHostSec()));

  if (!deterministic) {
    std::printf("determinism contract violated\n");
    return 1;
  }
  std::printf("simulator core: deterministic, throughput tracked\n");
  return 0;
}
