// Shared helpers for benchmark binaries (no gtest dependency).
#ifndef MKS_BENCH_BENCH_UTIL_H_
#define MKS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/fs/path_walker.h"
#include "src/kernel/kernel.h"

namespace mks {

// Every bench arms the stall watchdog with this: a frozen virtual clock
// across this many scheduler passes is always a modeling bug, never a long
// workload (real work charges cycles every pass).  Arming it does not change
// any output — it only converts a livelock into a flight-recorder dump.
inline constexpr uint64_t kBenchStallRounds = 10000;

// Arms the stall watchdog on a bench's config unless the bench chose its own
// threshold.  Pass every bench KernelConfig through this at the construction
// site: `Kernel kernel{ArmWatchdog(config)};`.
inline KernelConfig ArmWatchdog(KernelConfig config) {
  if (config.profile.stall_rounds == 0) {
    config.profile.stall_rounds = kBenchStallRounds;
  }
  return config;
}

// One machine-readable result line.  Fields print in insertion order:
//   EmitJson(JsonLine("translation").Field("entries", 16).Field("cyc_per_ref", 3.2));
// -> {"bench": "translation", "entries": 16, "cyc_per_ref": 3.2000}
class JsonLine {
 public:
  explicit JsonLine(std::string_view bench) { Quoted("bench", bench); }

  JsonLine& Field(std::string_view key, uint64_t value) {
    return Raw(key, std::to_string(value));
  }
  JsonLine& Field(std::string_view key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4f", value);
    return Raw(key, buf);
  }
  JsonLine& Field(std::string_view key, std::string_view value) { return Quoted(key, value); }

  const std::string& body() const { return body_; }

 private:
  JsonLine& Raw(std::string_view key, std::string_view rendered) {
    if (!body_.empty()) {
      body_ += ", ";
    }
    body_ += '"';
    body_ += key;
    body_ += "\": ";
    body_ += rendered;
    return *this;
  }
  JsonLine& Quoted(std::string_view key, std::string_view value) {
    std::string quoted;
    quoted += '"';
    quoted += value;
    quoted += '"';
    return Raw(key, quoted);
  }

  std::string body_;
};

// Wall-clock anchor for host-throughput fields; dynamic-initialized at load,
// so the first EmitJson already has the whole run behind it.
inline const std::chrono::steady_clock::time_point kBenchHostStart =
    std::chrono::steady_clock::now();

// Every result line also carries the host cost of producing it: `host_ns`
// (wall time since process start) and `sim_cycles_per_host_sec` (simulated
// cycles advanced across all clocks divided by that time).  Both are
// host-dependent by design — they are the tracked throughput figure, not part
// of the deterministic result — so MKS_BENCH_NO_HOST=1 suppresses them for
// byte-stable output comparisons.
inline void EmitJson(const JsonLine& line) {
  static const bool with_host = std::getenv("MKS_BENCH_NO_HOST") == nullptr;
  if (!with_host) {
    std::printf("{%s}\n", line.body().c_str());
    return;
  }
  const auto elapsed = std::chrono::steady_clock::now() - kBenchHostStart;
  const uint64_t ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  JsonLine with_fields = line;
  with_fields.Field("host_ns", ns);
  // The raw tally lets a collector distinguish a bench that legitimately
  // never advanced virtual time (host-level microbenchmarks) from one whose
  // throughput wiring is broken: advanced > 0 with rate 0 is always a bug.
  with_fields.Field("sim_cycles_advanced", Clock::total_advanced());
  with_fields.Field("sim_cycles_per_host_sec",
                    ns == 0 ? uint64_t{0}
                            : static_cast<uint64_t>(static_cast<double>(Clock::total_advanced()) /
                                                    (static_cast<double>(ns) / 1e9)));
  std::printf("{%s}\n", with_fields.body().c_str());
}

// Appends p50/p95/p99 of one Metrics histogram as `<prefix>_p50` etc.  No-op
// when the histogram has no observations (tracing off), so a bench can call
// this unconditionally without perturbing its trace-off output.
inline JsonLine& FieldHistogram(JsonLine& line, const Metrics& metrics,
                                std::string_view hist, std::string_view prefix) {
  if (metrics.HistCount(hist) == 0) {
    return line;
  }
  std::string key(prefix);
  const size_t base = key.size();
  key += "_p50";
  line.Field(key, metrics.HistPercentile(hist, 0.50));
  key.replace(base, std::string::npos, "_p95");
  line.Field(key, metrics.HistPercentile(hist, 0.95));
  key.replace(base, std::string::npos, "_p99");
  line.Field(key, metrics.HistPercentile(hist, 0.99));
  return line;
}

// Total trace records dropped across every CPU ring; 0 with tracing off.
// Benches report it (when tracing) so a collector can tell a complete trace
// export from one that silently wrapped.
inline uint64_t TraceDroppedTotal(const Tracer& trace) {
  uint64_t total = 0;
  for (uint16_t cpu = 0; cpu < trace.cpu_count(); ++cpu) {
    total += trace.dropped(cpu);
  }
  return total;
}

// Appends p50/p95/p99 for EVERY interned histogram with observations, keyed
// `<name_with_dots_as_underscores>_p50` etc.  Replaces the per-bench
// copy-pasted FieldHistogram lists; histogram_names() is sorted, so the field
// order is stable run to run.
inline JsonLine& FieldAllHistograms(JsonLine& line, const Metrics& metrics) {
  for (const std::string& name : metrics.histogram_names()) {
    std::string prefix = name;
    std::replace(prefix.begin(), prefix.end(), '.', '_');
    FieldHistogram(line, metrics, name, prefix);
  }
  return line;
}

// Appends whole-machine per-domain cycle totals as `prof_<domain>` fields
// (zero domains skipped); no-op with the profiler off.
inline JsonLine& FieldProfDomains(JsonLine& line, const Prof& prof) {
  if (!prof.enabled()) {
    return line;
  }
  const std::array<Cycles, kProfDomainCount> totals = prof.DomainTotals();
  for (size_t d = 0; d < kProfDomainCount; ++d) {
    if (totals[d] == 0) {
      continue;
    }
    std::string key = "prof_";
    for (const char* p = ProfDomainName(static_cast<ProfDomain>(d)); *p != '\0'; ++p) {
      key += *p == '-' ? '_' : *p;
    }
    line.Field(key, totals[d]);
  }
  return line;
}

// Human-readable top-domain breakdown for --profile runs: domains sorted by
// attributed cycles, with their share of everything attributed.
inline void PrintProfileTable(const Prof& prof, const char* title) {
  if (!prof.enabled()) {
    return;
  }
  const std::array<Cycles, kProfDomainCount> totals = prof.DomainTotals();
  Cycles sum = 0;
  std::vector<std::pair<Cycles, size_t>> order;
  for (size_t d = 0; d < kProfDomainCount; ++d) {
    sum += totals[d];
    if (totals[d] > 0) {
      order.emplace_back(totals[d], d);
    }
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::printf("# profile: %s (%llu attributed cycles)\n", title,
              static_cast<unsigned long long>(sum));
  for (const auto& [cycles, d] : order) {
    std::printf("#   %-16s %14llu  %5.1f%%\n",
                ProfDomainName(static_cast<ProfDomain>(d)),
                static_cast<unsigned long long>(cycles),
                100.0 * static_cast<double>(cycles) / static_cast<double>(sum));
  }
}

// Writes the profiler's collapsed-stack export (flamegraph.pl / speedscope
// input) to `path`; no-op with the profiler off.
inline void WriteFolded(const Prof& prof, const std::string& path) {
  if (!prof.enabled()) {
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const std::string folded = prof.CollapsedStacks();
  std::fwrite(folded.data(), 1, folded.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "profile: wrote %s\n", path.c_str());
}

inline Acl BenchWorldAcl() {
  Acl acl;
  acl.Add(AclEntry{"*", "*", AccessModes::RWE()});
  return acl;
}

// A booted kernel plus one user process; aborts the bench on failure.
struct BenchKernel {
  explicit BenchKernel(KernelConfig config = KernelConfig{}) : kernel(ArmWatchdog(config)) {
    if (!kernel.Boot().ok()) {
      std::fprintf(stderr, "kernel boot failed\n");
      std::abort();
    }
    Subject user{Principal{"Bench", "Proj"}, Label::SystemLow(), 4};
    auto created = kernel.processes().CreateProcess(user);
    if (!created.ok()) {
      std::fprintf(stderr, "process creation failed\n");
      std::abort();
    }
    pid = *created;
    ctx = kernel.processes().Context(pid);
  }

  Kernel kernel;
  ProcessId pid{};
  ProcContext* ctx = nullptr;
};

}  // namespace mks

#endif  // MKS_BENCH_BENCH_UTIL_H_
