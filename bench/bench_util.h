// Shared helpers for benchmark binaries (no gtest dependency).
#ifndef MKS_BENCH_BENCH_UTIL_H_
#define MKS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "src/fs/path_walker.h"
#include "src/kernel/kernel.h"

namespace mks {

// One machine-readable result line.  Fields print in insertion order:
//   EmitJson(JsonLine("translation").Field("entries", 16).Field("cyc_per_ref", 3.2));
// -> {"bench": "translation", "entries": 16, "cyc_per_ref": 3.2000}
class JsonLine {
 public:
  explicit JsonLine(std::string_view bench) { Quoted("bench", bench); }

  JsonLine& Field(std::string_view key, uint64_t value) {
    return Raw(key, std::to_string(value));
  }
  JsonLine& Field(std::string_view key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4f", value);
    return Raw(key, buf);
  }
  JsonLine& Field(std::string_view key, std::string_view value) { return Quoted(key, value); }

  const std::string& body() const { return body_; }

 private:
  JsonLine& Raw(std::string_view key, std::string_view rendered) {
    if (!body_.empty()) {
      body_ += ", ";
    }
    body_ += '"';
    body_ += key;
    body_ += "\": ";
    body_ += rendered;
    return *this;
  }
  JsonLine& Quoted(std::string_view key, std::string_view value) {
    std::string quoted;
    quoted += '"';
    quoted += value;
    quoted += '"';
    return Raw(key, quoted);
  }

  std::string body_;
};

// Wall-clock anchor for host-throughput fields; dynamic-initialized at load,
// so the first EmitJson already has the whole run behind it.
inline const std::chrono::steady_clock::time_point kBenchHostStart =
    std::chrono::steady_clock::now();

// Every result line also carries the host cost of producing it: `host_ns`
// (wall time since process start) and `sim_cycles_per_host_sec` (simulated
// cycles advanced across all clocks divided by that time).  Both are
// host-dependent by design — they are the tracked throughput figure, not part
// of the deterministic result — so MKS_BENCH_NO_HOST=1 suppresses them for
// byte-stable output comparisons.
inline void EmitJson(const JsonLine& line) {
  static const bool with_host = std::getenv("MKS_BENCH_NO_HOST") == nullptr;
  if (!with_host) {
    std::printf("{%s}\n", line.body().c_str());
    return;
  }
  const auto elapsed = std::chrono::steady_clock::now() - kBenchHostStart;
  const uint64_t ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  JsonLine with_fields = line;
  with_fields.Field("host_ns", ns);
  // The raw tally lets a collector distinguish a bench that legitimately
  // never advanced virtual time (host-level microbenchmarks) from one whose
  // throughput wiring is broken: advanced > 0 with rate 0 is always a bug.
  with_fields.Field("sim_cycles_advanced", Clock::total_advanced());
  with_fields.Field("sim_cycles_per_host_sec",
                    ns == 0 ? uint64_t{0}
                            : static_cast<uint64_t>(static_cast<double>(Clock::total_advanced()) /
                                                    (static_cast<double>(ns) / 1e9)));
  std::printf("{%s}\n", with_fields.body().c_str());
}

// Appends p50/p95/p99 of one Metrics histogram as `<prefix>_p50` etc.  No-op
// when the histogram has no observations (tracing off), so a bench can call
// this unconditionally without perturbing its trace-off output.
inline JsonLine& FieldHistogram(JsonLine& line, const Metrics& metrics,
                                std::string_view hist, std::string_view prefix) {
  if (metrics.HistCount(hist) == 0) {
    return line;
  }
  std::string key(prefix);
  const size_t base = key.size();
  key += "_p50";
  line.Field(key, metrics.HistPercentile(hist, 0.50));
  key.replace(base, std::string::npos, "_p95");
  line.Field(key, metrics.HistPercentile(hist, 0.95));
  key.replace(base, std::string::npos, "_p99");
  line.Field(key, metrics.HistPercentile(hist, 0.99));
  return line;
}

inline Acl BenchWorldAcl() {
  Acl acl;
  acl.Add(AclEntry{"*", "*", AccessModes::RWE()});
  return acl;
}

// A booted kernel plus one user process; aborts the bench on failure.
struct BenchKernel {
  explicit BenchKernel(KernelConfig config = KernelConfig{}) : kernel(config) {
    if (!kernel.Boot().ok()) {
      std::fprintf(stderr, "kernel boot failed\n");
      std::abort();
    }
    Subject user{Principal{"Bench", "Proj"}, Label::SystemLow(), 4};
    auto created = kernel.processes().CreateProcess(user);
    if (!created.ok()) {
      std::fprintf(stderr, "process creation failed\n");
      std::abort();
    }
    pid = *created;
    ctx = kernel.processes().Context(pid);
  }

  Kernel kernel;
  ProcessId pid{};
  ProcContext* ctx = nullptr;
};

}  // namespace mks

#endif  // MKS_BENCH_BENCH_UTIL_H_
