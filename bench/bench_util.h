// Shared helpers for benchmark binaries (no gtest dependency).
#ifndef MKS_BENCH_BENCH_UTIL_H_
#define MKS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/fs/path_walker.h"
#include "src/kernel/kernel.h"

namespace mks {

inline Acl BenchWorldAcl() {
  Acl acl;
  acl.Add(AclEntry{"*", "*", AccessModes::RWE()});
  return acl;
}

// A booted kernel plus one user process; aborts the bench on failure.
struct BenchKernel {
  explicit BenchKernel(KernelConfig config = KernelConfig{}) : kernel(config) {
    if (!kernel.Boot().ok()) {
      std::fprintf(stderr, "kernel boot failed\n");
      std::abort();
    }
    Subject user{Principal{"Bench", "Proj"}, Label::SystemLow(), 4};
    auto created = kernel.processes().CreateProcess(user);
    if (!created.ok()) {
      std::fprintf(stderr, "process creation failed\n");
      std::abort();
    }
    pid = *created;
    ctx = kernel.processes().Context(pid);
  }

  Kernel kernel;
  ProcessId pid{};
  ProcContext* ctx = nullptr;
};

}  // namespace mks

#endif  // MKS_BENCH_BENCH_UTIL_H_
