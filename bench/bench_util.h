// Shared helpers for benchmark binaries (no gtest dependency).
#ifndef MKS_BENCH_BENCH_UTIL_H_
#define MKS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "src/fs/path_walker.h"
#include "src/kernel/kernel.h"

namespace mks {

// One machine-readable result line.  Fields print in insertion order:
//   EmitJson(JsonLine("translation").Field("entries", 16).Field("cyc_per_ref", 3.2));
// -> {"bench": "translation", "entries": 16, "cyc_per_ref": 3.2000}
class JsonLine {
 public:
  explicit JsonLine(std::string_view bench) { Quoted("bench", bench); }

  JsonLine& Field(std::string_view key, uint64_t value) {
    return Raw(key, std::to_string(value));
  }
  JsonLine& Field(std::string_view key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4f", value);
    return Raw(key, buf);
  }
  JsonLine& Field(std::string_view key, std::string_view value) { return Quoted(key, value); }

  const std::string& body() const { return body_; }

 private:
  JsonLine& Raw(std::string_view key, std::string_view rendered) {
    if (!body_.empty()) {
      body_ += ", ";
    }
    body_ += '"';
    body_ += key;
    body_ += "\": ";
    body_ += rendered;
    return *this;
  }
  JsonLine& Quoted(std::string_view key, std::string_view value) {
    std::string quoted;
    quoted += '"';
    quoted += value;
    quoted += '"';
    return Raw(key, quoted);
  }

  std::string body_;
};

inline void EmitJson(const JsonLine& line) { std::printf("{%s}\n", line.body().c_str()); }

inline Acl BenchWorldAcl() {
  Acl acl;
  acl.Add(AclEntry{"*", "*", AccessModes::RWE()});
  return acl;
}

// A booted kernel plus one user process; aborts the bench on failure.
struct BenchKernel {
  explicit BenchKernel(KernelConfig config = KernelConfig{}) : kernel(config) {
    if (!kernel.Boot().ok()) {
      std::fprintf(stderr, "kernel boot failed\n");
      std::abort();
    }
    Subject user{Principal{"Bench", "Proj"}, Label::SystemLow(), 4};
    auto created = kernel.processes().CreateProcess(user);
    if (!created.ok()) {
      std::fprintf(stderr, "process creation failed\n");
      std::abort();
    }
    pid = *created;
    ctx = kernel.processes().Context(pid);
  }

  Kernel kernel;
  ProcessId pid{};
  ProcContext* ctx = nullptr;
};

}  // namespace mks

#endif  // MKS_BENCH_BENCH_UTIL_H_
