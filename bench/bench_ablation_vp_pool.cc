// Ablation — sizing the fixed virtual-processor pool.  Brinch Hansen's
// simplification requires every vp state to live in the fastest memory; the
// two-level design keeps the pool small and multiplexes arbitrary user
// processes over it.  The sweep shows the throughput/memory trade: tiny
// pools serialize the workload, big pools waste permanently-resident core on
// idle state records.
#include <cstdio>

#include "bench/bench_util.h"

namespace mks {
namespace {

struct PoolResult {
  Cycles total_cycles = 0;       // single-clock simulation total
  Cycles parallel_makespan = 0;  // max per-vp busy time: what a real
                                 // multiprocessor would wait for
  uint32_t vp_state_frames = 0;  // permanently-resident state records
};

PoolResult RunWithPool(uint16_t vp_count) {
  KernelConfig config;
  config.vp_count = vp_count;
  config.memory_frames = 256;
  Kernel kernel{config};
  PoolResult result;
  if (!kernel.Boot().ok()) {
    return result;
  }
  Subject user{Principal{"Bench", "Proj"}, Label::SystemLow(), 4};
  PathWalker walker(&kernel.gates());
  constexpr int kProcesses = 12;
  std::vector<ProcessId> pids;
  for (int i = 0; i < kProcesses; ++i) {
    auto pid = kernel.processes().CreateProcess(user);
    if (!pid.ok()) {
      return result;
    }
    pids.push_back(*pid);
    ProcContext* ctx = kernel.processes().Context(*pid);
    auto entry = walker.CreateSegment(*ctx, ">w>p" + std::to_string(i), BenchWorldAcl(),
                                      Label::SystemLow());
    auto segno = kernel.gates().Initiate(*ctx, *entry);
    std::vector<UserOp> program;
    for (uint32_t n = 0; n < 80; ++n) {
      program.push_back(UserOp::Compute(25));
      if (n % 4 == 0) {
        program.push_back(UserOp::Write(*segno, (n % 6) * kPageWords, n));
      }
    }
    (void)kernel.processes().SetProgram(*pid, std::move(program));
  }
  const Cycles before = kernel.clock().now();
  (void)kernel.processes().RunUntilQuiescent(1000000);
  result.total_cycles = kernel.clock().now() - before;
  // The estimate cannot beat the per-process critical path: one process's
  // quanta are sequential no matter how many vps exist.
  Cycles critical_path = 0;
  for (ProcessId pid : pids) {
    const Cycles cpu = kernel.processes().stats(pid).cpu_cycles;
    critical_path = cpu > critical_path ? cpu : critical_path;
  }
  const Cycles busiest = kernel.vprocs().MaxBusy();
  result.parallel_makespan = busiest > critical_path ? busiest : critical_path;
  // vp_states is the first core segment allocated at boot.
  result.vp_state_frames = kernel.core_segments().SizeWords(CoreSegId(0)) / kPageWords;
  return result;
}

}  // namespace
}  // namespace mks

int main() {
  using namespace mks;
  std::printf("=== Ablation: fixed virtual-processor pool size ===\n\n");
  std::printf("12 user processes, identical work, pool swept:\n\n");
  std::printf("%8s %20s %22s %18s\n", "vps", "est. makespan (cyc)", "total work (cyc)",
              "vp states (frames)");
  for (uint16_t vps : {1, 2, 4, 8, 16, 32}) {
    const PoolResult r = RunWithPool(vps);
    std::printf("%8u %20llu %22llu %18u\n", vps, (unsigned long long)r.parallel_makespan,
                (unsigned long long)r.total_cycles, r.vp_state_frames);
  }
  std::printf(
      "\npaper: \"If the number of processes is fixed at the maximum that would\n"
      "ever be needed, valuable primary memory space would be unused at other\n"
      "times.  This combination of pressures led to the design for a two-level\n"
      "implementation of processor multiplexing.\"  The sweep shows the small\n"
      "fixed pool capturing the multiplexing benefit without the memory cost.\n");
  return 0;
}
