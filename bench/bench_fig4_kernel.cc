// Figure 4 — the new design: a loop-free lattice of object managers, with
// program/address-space dependencies on the core segment manager and
// interpreter dependencies on the virtual processor manager.  The bench
// prints the declared lattice, its layer assignment (the verification
// order), and then boots the kernel and drives every major exception path to
// verify the OBSERVED call structure stays inside the declared lattice.
#include <cstdio>

#include "src/fs/path_walker.h"
#include "src/kernel/kernel.h"

int main() {
  using namespace mks;

  std::printf("=== Figure 4: The New Design (loop-free object managers) ===\n\n");
  const DependencyGraph lattice = Kernel::DeclaredLattice();
  std::printf("%s\n", lattice.ToText().c_str());
  std::printf("loop-free: %s\n\n", lattice.IsLoopFree() ? "YES" : "NO");

  auto layers = lattice.Layers();
  std::printf("verification order (dependencies first):\n");
  for (ModuleId m : lattice.VerificationOrder()) {
    std::printf("  layer %d: %s\n", layers[m], lattice.name(m).c_str());
  }

  // Exercise the kernel: paging under pressure, quota exceptions, a
  // full-pack relocation with the upward signal, two-level scheduling.
  KernelConfig config;
  config.memory_frames = 64;
  config.ast_slots = 12;
  config.pack_count = 2;
  config.records_per_pack = 28;
  Kernel kernel{config};
  if (!kernel.Boot().ok()) {
    std::printf("boot failed\n");
    return 1;
  }
  Subject user{Principal{"Bench", "Proj"}, Label::SystemLow(), 4};
  auto pid = kernel.processes().CreateProcess(user);
  if (!pid.ok()) {
    return 1;
  }
  ProcContext* ctx = kernel.processes().Context(*pid);
  PathWalker walker(&kernel.gates());
  Acl acl;
  acl.Add(AclEntry{"*", "*", AccessModes::RWE()});
  auto a = walker.CreateSegment(*ctx, ">udd>p>a", acl, Label::SystemLow());
  auto b = walker.CreateSegment(*ctx, ">udd>p>b", acl, Label::SystemLow());
  if (!a.ok() || !b.ok()) {
    return 1;
  }
  auto sa = kernel.gates().Initiate(*ctx, *a);
  auto sb = kernel.gates().Initiate(*ctx, *b);
  Status st = Status::Ok();
  for (uint32_t p = 0; p < 24 && st.ok(); ++p) {
    st = kernel.gates().Write(*ctx, *sa, p * kPageWords, 1);
    if (st.ok()) {
      st = kernel.gates().Write(*ctx, *sb, p * kPageWords, 1);
    }
  }
  std::vector<UserOp> program;
  for (uint32_t p = 0; p < 8; ++p) {
    program.push_back(UserOp::Read(*sa, p * kPageWords));
  }
  (void)kernel.processes().SetProgram(*pid, std::move(program));
  (void)kernel.processes().RunUntilQuiescent(100000);

  const DependencyGraph& observed = kernel.tracker().observed();
  std::printf("\nOBSERVED runtime call structure:\n%s\n", observed.ToText().c_str());
  std::printf("observed structure loop-free: %s\n",
              observed.IsLoopFree() ? "YES" : "NO");
  const auto undeclared = kernel.tracker().UndeclaredEdges(lattice);
  std::printf("observed edges outside the declared lattice: %zu\n", undeclared.size());
  for (const auto& e : undeclared) {
    std::printf("  UNDECLARED: %s\n", e.c_str());
  }
  std::printf("full-pack moves: %llu, upward signals: %llu\n",
              (unsigned long long)kernel.metrics().Get("ksm.full_pack_moves"),
              (unsigned long long)kernel.metrics().Get("gates.upward_signals"));

  const bool reproduced =
      lattice.IsLoopFree() && observed.IsLoopFree() && undeclared.empty();
  std::printf(
      "\npaper: \"it was possible to design a loop-free structure of object\n"
      "managers that implement the complete functionality required in the\n"
      "Multics kernel.\" -> %s\n",
      reproduced ? "REPRODUCED" : "MISMATCH");
  return reproduced ? 0 : 1;
}
