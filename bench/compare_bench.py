#!/usr/bin/env python3
"""Diff the two newest committed bench collections for metric regressions.

Finds the two highest-numbered BENCH_pr<n>.json files at the repo root
(or takes two explicit paths), matches their JSON-lines rows by bench
identity (bench name + config discriminators like workload/policy/cpus),
and flags any deterministic metric that got WORSE by more than its
threshold (default 25%).  Improvements and small drifts only print.

Host-dependent fields (host_ns, sim_cycles_advanced, *_per_host_sec,
*_ns timings) are skipped: they measure the runner, not the kernel.
Virtual-cycle metrics are deterministic, so any drift is a real change
in modelled behaviour — intentional changes re-baseline by committing a
fresh collection (bench/run_all.sh).

Usage: compare_bench.py [--threshold PCT] [--advisory] [OLD.json NEW.json]

Exit codes: 0 clean (or fewer than two collections to compare, or
--advisory), 1 regression beyond threshold, 2 usage/IO error.
"""

import argparse
import glob
import json
import os
import re
import sys

# Fields that identify which run a row describes, not what it measured.
KEY_FIELDS = (
    "bench",
    "workload",
    "mode",
    "policy",
    "op",
    "cpus",
    "users",
    "sessions",
    "vps",
    "connect_cost",
    "cost",
    "segments",
    "rounds",
)

# Per-metric override thresholds (fraction, worse-direction only).
THRESHOLDS = {
    # Any growth in dropped trace records means the rings got too small for
    # the workload — flag it sooner than a generic 25%.
    "trace_dropped": 0.05,
}
DEFAULT_THRESHOLD = 0.25

# Metrics where bigger is better; everything else numeric is cost-like.
BETTER_BIGGER = re.compile(r"(speedup|throughput|per_host_sec)")
# Host-dependent / non-deterministic fields: never compared.  Anything in
# host time units (ns/us/ms) measures the runner; the per-host-sec rates and
# the wall-clock advance counter come from the same stopwatch.
SKIP = re.compile(
    r"(^host_|^sim_cycles_advanced$|_per_host_sec$|_ns$|_us$|_ms$)")


def newest_two(root):
    found = []
    for path in glob.glob(os.path.join(root, "BENCH_pr*.json")):
        m = re.fullmatch(r"BENCH_pr(\d+)\.json", os.path.basename(path))
        if m:
            found.append((int(m.group(1)), path))
    found.sort()
    return [path for _, path in found[-2:]]


def load_rows(path):
    rows = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line.startswith("{"):
                continue
            row = json.loads(line)
            key = tuple((k, row[k]) for k in KEY_FIELDS if k in row)
            # Duplicate identities (repeated sweeps) get an occurrence index.
            n = 0
            while (key, n) in rows:
                n += 1
            rows[(key, n)] = row
    return rows


def fmt_key(key):
    return " ".join("%s=%s" % (k, v) for k, v in key[0]) + (
        " #%d" % key[1] if key[1] else ""
    )


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("files", nargs="*", help="explicit OLD.json NEW.json pair")
    ap.add_argument("--threshold", type=float, default=100 * DEFAULT_THRESHOLD,
                    help="default worse-direction threshold, percent")
    ap.add_argument("--advisory", action="store_true",
                    help="print the diff but always exit 0")
    args = ap.parse_args()

    if args.files and len(args.files) != 2:
        print("error: pass exactly two files, or none for auto-discovery",
              file=sys.stderr)
        return 2
    pair = args.files or newest_two(os.getcwd())
    if len(pair) < 2:
        print("compare_bench: fewer than two BENCH_pr*.json collections; "
              "nothing to compare")
        return 0
    old_path, new_path = pair
    old_rows, new_rows = load_rows(old_path), load_rows(new_path)
    print("comparing %s (baseline) -> %s" % (old_path, new_path))

    default_frac = args.threshold / 100.0
    regressions = 0
    drifts = 0
    for key, new_row in sorted(new_rows.items(), key=lambda kv: fmt_key(kv[0])):
        old_row = old_rows.get(key)
        if old_row is None:
            print("  new row (no baseline): %s" % fmt_key(key))
            continue
        for field, new_val in new_row.items():
            if field in dict(key[0]) or SKIP.search(field):
                continue
            old_val = old_row.get(field)
            if not isinstance(new_val, (int, float)) or isinstance(new_val, bool):
                continue
            if not isinstance(old_val, (int, float)) or isinstance(old_val, bool):
                continue
            if old_val == new_val:
                continue
            if old_val == 0:
                print("  drift  %s %s: 0 -> %s" % (fmt_key(key), field, new_val))
                drifts += 1
                continue
            delta = (new_val - old_val) / abs(old_val)
            worse = -delta if BETTER_BIGGER.search(field) else delta
            frac = THRESHOLDS.get(field, default_frac)
            tag = "REGRESSION" if worse > frac else "drift "
            print("  %s %s %s: %s -> %s (%+.1f%%)"
                  % (tag, fmt_key(key), field, old_val, new_val, 100 * delta))
            if worse > frac:
                regressions += 1
            else:
                drifts += 1
    removed = [k for k in old_rows if k not in new_rows]
    for key in sorted(removed, key=fmt_key):
        print("  removed row: %s" % fmt_key(key))

    print("compare_bench: %d regression(s), %d drift(s), %d removed row(s)"
          % (regressions, drifts, len(removed)))
    if regressions and not args.advisory:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
