// P4 — the memory manager redesign [Huber, 1976; Mason, in prep.].  Paper:
// the new memory manager was "somewhat slower, for two important reasons":
// (1) PL/I recoding cost ~2x on the code path, (2) dedicated processes added
// a small unavoidable call cost — partially bought back by running the page
// writer at low priority in otherwise idle time.  "All together, the
// performance impact ... would be negative, but not significant unless the
// system were cramped for memory and thrashing."
//
// The bench replays identical locality-bearing reference strings against the
// baseline supervisor and the new kernel across a memory-size sweep and
// reports simulated cycles per reference, plus the idle-time reclamation of
// the asynchronous (daemon) configuration.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/supervisor.h"
#include "src/common/rng.h"
#include "src/fs/path_walker.h"
#include "src/kernel/kernel.h"

namespace mks {
namespace {

struct Ref {
  uint32_t segment;
  uint32_t page;
  bool write;
};

// A reference string with working-set locality: bursts within a segment,
// Zipf-skewed page popularity.
std::vector<Ref> MakeTrace(uint64_t seed, uint32_t segments, uint32_t pages_per_segment,
                           size_t refs) {
  Rng rng(seed);
  std::vector<Ref> trace;
  trace.reserve(refs);
  uint32_t segment = 0;
  while (trace.size() < refs) {
    if (rng.NextBool(0.2)) {
      segment = static_cast<uint32_t>(rng.NextBelow(segments));
    }
    const uint32_t burst = rng.NextBurst(0.7, 8);
    for (uint32_t i = 0; i < burst && trace.size() < refs; ++i) {
      Ref ref;
      ref.segment = segment;
      ref.page = static_cast<uint32_t>(rng.NextZipf(pages_per_segment, 1.0));
      ref.write = rng.NextBool(0.3);
      trace.push_back(ref);
    }
  }
  return trace;
}

struct RunResult {
  Cycles cycles = 0;
  uint64_t faults = 0;
  uint64_t writebacks = 0;
  uint64_t daemon_writes = 0;
  uint64_t assoc_hits = 0;
  uint64_t assoc_misses = 0;
  uint64_t assoc_flushes = 0;
};

RunResult RunBaseline(uint32_t frames, const std::vector<Ref>& trace, uint32_t segments,
                      uint32_t pages) {
  BaselineConfig config;
  config.memory_frames = frames;
  config.records_per_pack = 8192;
  config.retranslate_conflict_rate = 0.02;
  MonolithicSupervisor sup{config};
  RunResult result;
  if (!sup.Boot().ok()) {
    return result;
  }
  std::vector<SegmentUid> uids;
  for (uint32_t s = 0; s < segments; ++s) {
    auto uid = sup.CreatePath(">data>seg" + std::to_string(s));
    if (!uid.ok()) {
      return result;
    }
    uids.push_back(*uid);
    for (uint32_t p = 0; p < pages; ++p) {
      (void)sup.Write(*uid, p * kPageWords, p + 1);
    }
  }
  const uint64_t faults_before = sup.metrics().Get("baseline.page_faults");
  const Cycles before = sup.clock().now();
  for (const Ref& ref : trace) {
    if (ref.write) {
      (void)sup.Write(uids[ref.segment], ref.page * kPageWords + 1, 7);
    } else {
      (void)sup.Read(uids[ref.segment], ref.page * kPageWords + 1);
    }
  }
  result.cycles = sup.clock().now() - before;
  result.faults = sup.metrics().Get("baseline.page_faults") - faults_before;
  result.writebacks = sup.metrics().Get("baseline.writebacks");
  return result;
}

RunResult RunKernel(uint32_t frames, const std::vector<Ref>& trace, uint32_t segments,
                    uint32_t pages, bool async) {
  KernelConfig config;
  config.memory_frames = frames;
  config.records_per_pack = 8192;
  config.async_paging = async;
  Kernel kernel{ArmWatchdog(config)};
  RunResult result;
  if (!kernel.Boot().ok()) {
    return result;
  }
  Subject user{Principal{"Bench", "Proj"}, Label::SystemLow(), 4};
  auto pid = kernel.processes().CreateProcess(user);
  if (!pid.ok()) {
    return result;
  }
  ProcContext* ctx = kernel.processes().Context(*pid);
  PathWalker walker(&kernel.gates());
  Acl acl;
  acl.Add(AclEntry{"*", "*", AccessModes::RWE()});
  std::vector<Segno> segnos;
  for (uint32_t s = 0; s < segments; ++s) {
    auto entry =
        walker.CreateSegment(*ctx, ">data>seg" + std::to_string(s), acl, Label::SystemLow());
    if (!entry.ok()) {
      return result;
    }
    auto segno = kernel.gates().Initiate(*ctx, *entry);
    if (!segno.ok()) {
      return result;
    }
    segnos.push_back(*segno);
    for (uint32_t p = 0; p < pages; ++p) {
      (void)kernel.gates().Write(*ctx, *segno, p * kPageWords, p + 1);
    }
  }
  // Drive the gates directly: this bench isolates the memory manager; the
  // scheduler comparison is bench_perf_scheduler's job.  In the async
  // configuration, blocked references are retried after letting the page
  // I/O daemon run (the page writer cleans frames in between).
  const uint64_t faults_before = kernel.metrics().Get("pfm.faults_serviced");
  const Cycles before = kernel.clock().now();
  for (const Ref& ref : trace) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      Status st = ref.write
                      ? kernel.gates().Write(*ctx, segnos[ref.segment],
                                             ref.page * kPageWords + 1, 7)
                      : kernel.gates().Read(*ctx, segnos[ref.segment],
                                            ref.page * kPageWords + 1)
                            .status();
      if (st.code() != Code::kBlocked) {
        break;
      }
      // Idle until the transfer completes, then let the daemons run.
      if (!kernel.ctx().events.empty()) {
        const Cycles due = kernel.ctx().events.next_due();
        if (due > kernel.clock().now()) {
          kernel.clock().Advance(due - kernel.clock().now());
        }
        kernel.ctx().events.RunDue(kernel.clock().now());
      }
      kernel.vprocs().RunKernelTasks();
    }
  }
  result.cycles = kernel.clock().now() - before;
  result.faults = kernel.metrics().Get("pfm.faults_serviced") - faults_before;
  result.writebacks = kernel.metrics().Get("pfm.writebacks");
  result.daemon_writes = kernel.metrics().Get("pfm.daemon_writes");
  result.assoc_hits = kernel.metrics().Get("hw.assoc_hits");
  result.assoc_misses = kernel.metrics().Get("hw.assoc_misses");
  result.assoc_flushes = kernel.metrics().Get("hw.assoc_flushes");
  return result;
}

}  // namespace
}  // namespace mks

int main() {
  using namespace mks;
  constexpr uint32_t kSegments = 6;
  constexpr uint32_t kPages = 24;  // 144 data pages total
  constexpr size_t kRefs = 3000;
  const auto trace = MakeTrace(1977, kSegments, kPages, kRefs);

  std::printf("=== P4: Memory management, baseline vs new design ===\n\n");
  std::printf("workload: %zu references, %u segments x %u pages (locality+Zipf)\n\n", kRefs,
              kSegments, kPages);
  std::printf("%10s %16s %16s %8s %10s %10s\n", "frames", "baseline cyc/ref", "kernel cyc/ref",
              "ratio", "b.faults", "k.faults");

  double plenty_ratio = 0.0;
  double tight_ratio = 0.0;
  uint64_t plenty_hits = 0, plenty_misses = 0, plenty_flushes = 0;
  const uint32_t sweeps[] = {320, 224, 176, 144, 128};
  for (uint32_t frames : sweeps) {
    const RunResult baseline = RunBaseline(frames, trace, kSegments, kPages);
    const RunResult kernel = RunKernel(frames, trace, kSegments, kPages, /*async=*/false);
    const double b = static_cast<double>(baseline.cycles) / kRefs;
    const double k = static_cast<double>(kernel.cycles) / kRefs;
    const double ratio = k / b;
    if (frames == sweeps[0]) {
      plenty_ratio = ratio;
      plenty_hits = kernel.assoc_hits;
      plenty_misses = kernel.assoc_misses;
      plenty_flushes = kernel.assoc_flushes;
    }
    tight_ratio = ratio;
    std::printf("%10u %16.0f %16.0f %8.2f %10llu %10llu\n", frames, b, k, ratio,
                (unsigned long long)baseline.faults, (unsigned long long)kernel.faults);
    EmitJson(JsonLine("memory_mgmt")
                 .Field("frames", uint64_t{frames})
                 .Field("cyc_per_ref_baseline", b)
                 .Field("cyc_per_ref_kernel", k)
                 .Field("ratio", ratio)
                 .Field("baseline_faults", baseline.faults)
                 .Field("kernel_faults", kernel.faults));
  }

  std::printf("\nkernel associative memory at %u frames: %llu hits / %llu misses / %llu\n"
              "flushes — the fast path the baseline lacks on this reference string.\n",
              sweeps[0], (unsigned long long)plenty_hits, (unsigned long long)plenty_misses,
              (unsigned long long)plenty_flushes);

  std::printf(
      "\nnote: the new kernel's permanently-resident core segments (vp states,\n"
      "AST area, quota table, message queue) come out of the same memory, so it\n"
      "enters the fault-dominated regime a few frames earlier — exactly the\n"
      "\"valuable primary memory space would be unused\" cost the paper weighs\n"
      "against fixing the number of processes.\n");

  // The dedicated-process configuration: the page writer cleans frames at
  // low priority, so replacement rarely pays an inline writeback.
  const RunResult daemons = RunKernel(144, trace, kSegments, kPages, /*async=*/true);
  std::printf("\nasync/daemon configuration at 144 frames: %.0f cyc/ref, inline writebacks %llu,"
              "\n  daemon writes %llu (work moved to otherwise-idle low priority)\n",
              static_cast<double>(daemons.cycles) / kRefs,
              (unsigned long long)daemons.writebacks,
              (unsigned long long)daemons.daemon_writes);
  const bool shape = plenty_ratio < tight_ratio && plenty_ratio < 1.6;
  EmitJson(JsonLine("memory_mgmt_summary")
               .Field("ratio_plenty", plenty_ratio)
               .Field("ratio_tight", tight_ratio)
               .Field("async_cyc_per_ref", static_cast<double>(daemons.cycles) / kRefs)
               .Field("async_inline_writebacks", daemons.writebacks)
               .Field("async_daemon_writes", daemons.daemon_writes)
               .Field("reproduced", shape ? "yes" : "no"));

  std::printf(
      "\npaper shape: new design slightly slower with ample memory, the gap\n"
      "widening only when cramped and thrashing.\n"
      "ratio at %u frames: %.2fx ; ratio at %u frames: %.2fx -> %s\n",
      sweeps[0], plenty_ratio, sweeps[4], tight_ratio, shape ? "REPRODUCED" : "MISMATCH");
  return 0;
}
