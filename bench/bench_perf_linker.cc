// P1 — the dynamic linker extraction.  Paper: "the dynamic linker ran
// somewhat slower when removed from the kernel [;] the causes were well
// understood and curable."  The extracted linker performs its first-
// reference searches through kernel gates from the user ring; the snapped
// (fast) path is equivalent in both configurations.
//
// google-benchmark measures host time per operation; the `sim_cycles`
// counter reports the simulated machine cycles per operation, which is the
// quantity the paper's statement is about.
#include <benchmark/benchmark.h>

#include "src/baseline/supervisor.h"
#include "src/fs/linker.h"
#include "bench/bench_util.h"

namespace mks {
namespace {

constexpr int kSymbols = 64;

void BM_BaselineInKernelSnap(benchmark::State& state) {
  MonolithicSupervisor sup{BaselineConfig{}};
  (void)sup.Boot();
  auto pid = sup.CreateProcess();
  for (int i = 0; i < kSymbols; ++i) {
    (void)sup.CreatePath(">lib>sym" + std::to_string(i));
  }
  Cycles cycles = 0;
  int i = 0;
  for (auto _ : state) {
    const std::string symbol = "sym" + std::to_string(i % kSymbols);
    const bool first = i < kSymbols;
    const Cycles before = sup.clock().now();
    auto r = sup.LinkSnap(*pid, symbol, ">lib>" + symbol);
    benchmark::DoNotOptimize(r);
    cycles += sup.clock().now() - before;
    (void)first;
    ++i;
  }
  state.counters["sim_cycles"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BaselineInKernelSnap)->Arg(0);

void BM_ExtractedUserRingSnap(benchmark::State& state) {
  BenchKernel fx;
  PathWalker walker(&fx.kernel.gates());
  ReferenceNameManager names(&fx.kernel.ctx());
  DynamicLinker linker(&fx.kernel.ctx(), &fx.kernel.gates(), &walker, &names);
  for (int i = 0; i < kSymbols; ++i) {
    (void)walker.CreateSegment(*fx.ctx, ">lib>sym" + std::to_string(i), BenchWorldAcl(),
                               Label::SystemLow());
  }
  linker.AddSearchDir(fx.pid, ">lib");
  Cycles cycles = 0;
  int i = 0;
  for (auto _ : state) {
    const std::string symbol = "sym" + std::to_string(i % kSymbols);
    const Cycles before = fx.kernel.clock().now();
    auto r = linker.Snap(*fx.ctx, symbol);
    benchmark::DoNotOptimize(r);
    cycles += fx.kernel.clock().now() - before;
    ++i;
  }
  state.counters["sim_cycles"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ExtractedUserRingSnap)->Arg(0);

// First-reference cost only (the path the extraction made slower).
void BM_BaselineFirstReference(benchmark::State& state) {
  MonolithicSupervisor sup{BaselineConfig{}};
  (void)sup.Boot();
  auto pid = sup.CreateProcess();
  int i = 0;
  Cycles cycles = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string symbol = "s" + std::to_string(i++);
    (void)sup.CreatePath(">lib>" + symbol);
    state.ResumeTiming();
    const Cycles before = sup.clock().now();
    benchmark::DoNotOptimize(sup.LinkSnap(*pid, symbol, ">lib>" + symbol));
    cycles += sup.clock().now() - before;
  }
  state.counters["sim_cycles"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BaselineFirstReference)->Iterations(256);

void BM_ExtractedFirstReference(benchmark::State& state) {
  BenchKernel fx;
  PathWalker walker(&fx.kernel.gates());
  ReferenceNameManager names(&fx.kernel.ctx());
  DynamicLinker linker(&fx.kernel.ctx(), &fx.kernel.gates(), &walker, &names);
  linker.AddSearchDir(fx.pid, ">lib");
  int i = 0;
  Cycles cycles = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string symbol = "s" + std::to_string(i++);
    (void)walker.CreateSegment(*fx.ctx, ">lib>" + symbol, BenchWorldAcl(), Label::SystemLow());
    state.ResumeTiming();
    const Cycles before = fx.kernel.clock().now();
    benchmark::DoNotOptimize(linker.Snap(*fx.ctx, symbol));
    cycles += fx.kernel.clock().now() - before;
  }
  state.counters["sim_cycles"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ExtractedFirstReference)->Iterations(256);

// Deterministic sim-cycle runs for the JSON summary: google-benchmark's
// counters report per-host-run averages on stdout, but the machine-readable
// line wants the simulated cycles the paper's claim is about, measured once.
struct LinkerSimCycles {
  double snap_baseline = 0;
  double snap_extracted = 0;
  double first_ref_baseline = 0;
  double first_ref_extracted = 0;
};

LinkerSimCycles MeasureSimCycles(int snap_iters, int first_refs) {
  LinkerSimCycles r;
  {
    MonolithicSupervisor sup{BaselineConfig{}};
    (void)sup.Boot();
    auto pid = sup.CreateProcess();
    for (int i = 0; i < kSymbols; ++i) {
      (void)sup.CreatePath(">lib>sym" + std::to_string(i));
      (void)sup.LinkSnap(*pid, "sym" + std::to_string(i), ">lib>sym" + std::to_string(i));
    }
    const Cycles before = sup.clock().now();
    for (int i = 0; i < snap_iters; ++i) {
      const std::string symbol = "sym" + std::to_string(i % kSymbols);
      (void)sup.LinkSnap(*pid, symbol, ">lib>" + symbol);
    }
    r.snap_baseline = static_cast<double>(sup.clock().now() - before) / snap_iters;
    Cycles first = 0;
    for (int i = 0; i < first_refs; ++i) {
      const std::string symbol = "f" + std::to_string(i);
      (void)sup.CreatePath(">lib>" + symbol);
      const Cycles b2 = sup.clock().now();
      (void)sup.LinkSnap(*pid, symbol, ">lib>" + symbol);
      first += sup.clock().now() - b2;
    }
    r.first_ref_baseline = static_cast<double>(first) / first_refs;
  }
  {
    BenchKernel fx;
    PathWalker walker(&fx.kernel.gates());
    ReferenceNameManager names(&fx.kernel.ctx());
    DynamicLinker linker(&fx.kernel.ctx(), &fx.kernel.gates(), &walker, &names);
    linker.AddSearchDir(fx.pid, ">lib");
    for (int i = 0; i < kSymbols; ++i) {
      (void)walker.CreateSegment(*fx.ctx, ">lib>sym" + std::to_string(i), BenchWorldAcl(),
                                 Label::SystemLow());
      (void)linker.Snap(*fx.ctx, "sym" + std::to_string(i));
    }
    const Cycles before = fx.kernel.clock().now();
    for (int i = 0; i < snap_iters; ++i) {
      (void)linker.Snap(*fx.ctx, "sym" + std::to_string(i % kSymbols));
    }
    r.snap_extracted = static_cast<double>(fx.kernel.clock().now() - before) / snap_iters;
    Cycles first = 0;
    for (int i = 0; i < first_refs; ++i) {
      const std::string symbol = "f" + std::to_string(i);
      (void)walker.CreateSegment(*fx.ctx, ">lib>" + symbol, BenchWorldAcl(), Label::SystemLow());
      const Cycles b2 = fx.kernel.clock().now();
      (void)linker.Snap(*fx.ctx, symbol);
      first += fx.kernel.clock().now() - b2;
    }
    r.first_ref_extracted = static_cast<double>(first) / first_refs;
  }
  return r;
}

}  // namespace
}  // namespace mks

int main(int argc, char** argv) {
  using namespace mks;
  std::printf(
      "P1 -- linker extraction.  Paper: extracted linker \"ran somewhat slower\";\n"
      "expect ExtractedFirstReference sim_cycles moderately above\n"
      "BaselineFirstReference, and the snapped fast paths comparable.\n\n");
  const LinkerSimCycles sim = MeasureSimCycles(/*snap_iters=*/512, /*first_refs=*/128);
  EmitJson(JsonLine("linker")
               .Field("cyc_snap_baseline", sim.snap_baseline)
               .Field("cyc_snap_extracted", sim.snap_extracted)
               .Field("cyc_first_ref_baseline", sim.first_ref_baseline)
               .Field("cyc_first_ref_extracted", sim.first_ref_extracted)
               .Field("first_ref_ratio", sim.first_ref_extracted / sim.first_ref_baseline));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
