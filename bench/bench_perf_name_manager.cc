// P2 — the reference name manager extraction.  Paper: "The name space
// manager ran somewhat faster" once moved to the user ring: a lookup became
// an ordinary procedure call into per-process data instead of a trip through
// a kernel gate into a shared kernel table.
#include <benchmark/benchmark.h>

#include "src/baseline/supervisor.h"
#include "src/fs/ref_name.h"
#include "bench/bench_util.h"

namespace mks {
namespace {

constexpr int kNames = 128;

void BM_BaselineInKernelLookup(benchmark::State& state) {
  MonolithicSupervisor sup{BaselineConfig{}};
  (void)sup.Boot();
  auto pid = sup.CreateProcess();
  for (int i = 0; i < kNames; ++i) {
    (void)sup.NameBind(*pid, "name" + std::to_string(i), SegmentUid(100 + i));
  }
  Cycles cycles = 0;
  int i = 0;
  for (auto _ : state) {
    const Cycles before = sup.clock().now();
    benchmark::DoNotOptimize(sup.NameLookup(*pid, "name" + std::to_string(i++ % kNames)));
    cycles += sup.clock().now() - before;
  }
  state.counters["sim_cycles"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BaselineInKernelLookup);

void BM_ExtractedUserRingLookup(benchmark::State& state) {
  BenchKernel fx;
  ReferenceNameManager names(&fx.kernel.ctx());
  for (int i = 0; i < kNames; ++i) {
    (void)names.Bind(fx.pid, "name" + std::to_string(i), Segno(70 + i));
  }
  Cycles cycles = 0;
  int i = 0;
  for (auto _ : state) {
    const Cycles before = fx.kernel.clock().now();
    benchmark::DoNotOptimize(names.Resolve(fx.pid, "name" + std::to_string(i++ % kNames)));
    cycles += fx.kernel.clock().now() - before;
  }
  state.counters["sim_cycles"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ExtractedUserRingLookup);

void BM_BaselineBind(benchmark::State& state) {
  MonolithicSupervisor sup{BaselineConfig{}};
  (void)sup.Boot();
  auto pid = sup.CreateProcess();
  Cycles cycles = 0;
  int i = 0;
  for (auto _ : state) {
    const Cycles before = sup.clock().now();
    benchmark::DoNotOptimize(sup.NameBind(*pid, "n" + std::to_string(i++), SegmentUid(5)));
    cycles += sup.clock().now() - before;
  }
  state.counters["sim_cycles"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BaselineBind);

void BM_ExtractedBind(benchmark::State& state) {
  BenchKernel fx;
  ReferenceNameManager names(&fx.kernel.ctx());
  Cycles cycles = 0;
  int i = 0;
  for (auto _ : state) {
    const Cycles before = fx.kernel.clock().now();
    benchmark::DoNotOptimize(names.Bind(fx.pid, "n" + std::to_string(i++), Segno(70)));
    cycles += fx.kernel.clock().now() - before;
  }
  state.counters["sim_cycles"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ExtractedBind);

}  // namespace
}  // namespace mks

int main(int argc, char** argv) {
  std::printf(
      "P2 -- name manager extraction.  Paper: \"The name space manager ran\n"
      "somewhat faster.\"  Expect ExtractedUserRingLookup sim_cycles below\n"
      "BaselineInKernelLookup (no gate crossing).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
