// P2 — the reference name manager extraction.  Paper: "The name space
// manager ran somewhat faster" once moved to the user ring: a lookup became
// an ordinary procedure call into per-process data instead of a trip through
// a kernel gate into a shared kernel table.
#include <benchmark/benchmark.h>

#include "src/baseline/supervisor.h"
#include "src/fs/ref_name.h"
#include "bench/bench_util.h"

namespace mks {
namespace {

constexpr int kNames = 128;

void BM_BaselineInKernelLookup(benchmark::State& state) {
  MonolithicSupervisor sup{BaselineConfig{}};
  (void)sup.Boot();
  auto pid = sup.CreateProcess();
  for (int i = 0; i < kNames; ++i) {
    (void)sup.NameBind(*pid, "name" + std::to_string(i), SegmentUid(100 + i));
  }
  Cycles cycles = 0;
  int i = 0;
  for (auto _ : state) {
    const Cycles before = sup.clock().now();
    benchmark::DoNotOptimize(sup.NameLookup(*pid, "name" + std::to_string(i++ % kNames)));
    cycles += sup.clock().now() - before;
  }
  state.counters["sim_cycles"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BaselineInKernelLookup);

void BM_ExtractedUserRingLookup(benchmark::State& state) {
  BenchKernel fx;
  ReferenceNameManager names(&fx.kernel.ctx());
  for (int i = 0; i < kNames; ++i) {
    (void)names.Bind(fx.pid, "name" + std::to_string(i), Segno(70 + i));
  }
  Cycles cycles = 0;
  int i = 0;
  for (auto _ : state) {
    const Cycles before = fx.kernel.clock().now();
    benchmark::DoNotOptimize(names.Resolve(fx.pid, "name" + std::to_string(i++ % kNames)));
    cycles += fx.kernel.clock().now() - before;
  }
  state.counters["sim_cycles"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ExtractedUserRingLookup);

void BM_BaselineBind(benchmark::State& state) {
  MonolithicSupervisor sup{BaselineConfig{}};
  (void)sup.Boot();
  auto pid = sup.CreateProcess();
  Cycles cycles = 0;
  int i = 0;
  for (auto _ : state) {
    const Cycles before = sup.clock().now();
    benchmark::DoNotOptimize(sup.NameBind(*pid, "n" + std::to_string(i++), SegmentUid(5)));
    cycles += sup.clock().now() - before;
  }
  state.counters["sim_cycles"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BaselineBind);

void BM_ExtractedBind(benchmark::State& state) {
  BenchKernel fx;
  ReferenceNameManager names(&fx.kernel.ctx());
  Cycles cycles = 0;
  int i = 0;
  for (auto _ : state) {
    const Cycles before = fx.kernel.clock().now();
    benchmark::DoNotOptimize(names.Bind(fx.pid, "n" + std::to_string(i++), Segno(70)));
    cycles += fx.kernel.clock().now() - before;
  }
  state.counters["sim_cycles"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ExtractedBind);

// Deterministic sim-cycle runs for the JSON summary (google-benchmark's
// stdout counters are host-run averages; the paper's claim is in sim cycles).
struct NameSimCycles {
  double lookup_baseline = 0;
  double lookup_extracted = 0;
  double bind_baseline = 0;
  double bind_extracted = 0;
};

NameSimCycles MeasureSimCycles(int iters) {
  NameSimCycles r;
  {
    MonolithicSupervisor sup{BaselineConfig{}};
    (void)sup.Boot();
    auto pid = sup.CreateProcess();
    for (int i = 0; i < kNames; ++i) {
      (void)sup.NameBind(*pid, "name" + std::to_string(i), SegmentUid(100 + i));
    }
    Cycles before = sup.clock().now();
    for (int i = 0; i < iters; ++i) {
      (void)sup.NameLookup(*pid, "name" + std::to_string(i % kNames));
    }
    r.lookup_baseline = static_cast<double>(sup.clock().now() - before) / iters;
    before = sup.clock().now();
    for (int i = 0; i < iters; ++i) {
      (void)sup.NameBind(*pid, "b" + std::to_string(i), SegmentUid(5));
    }
    r.bind_baseline = static_cast<double>(sup.clock().now() - before) / iters;
  }
  {
    BenchKernel fx;
    ReferenceNameManager names(&fx.kernel.ctx());
    for (int i = 0; i < kNames; ++i) {
      (void)names.Bind(fx.pid, "name" + std::to_string(i), Segno(70 + i));
    }
    Cycles before = fx.kernel.clock().now();
    for (int i = 0; i < iters; ++i) {
      (void)names.Resolve(fx.pid, "name" + std::to_string(i % kNames));
    }
    r.lookup_extracted = static_cast<double>(fx.kernel.clock().now() - before) / iters;
    before = fx.kernel.clock().now();
    for (int i = 0; i < iters; ++i) {
      (void)names.Bind(fx.pid, "b" + std::to_string(i), Segno(70));
    }
    r.bind_extracted = static_cast<double>(fx.kernel.clock().now() - before) / iters;
  }
  return r;
}

}  // namespace
}  // namespace mks

int main(int argc, char** argv) {
  using namespace mks;
  std::printf(
      "P2 -- name manager extraction.  Paper: \"The name space manager ran\n"
      "somewhat faster.\"  Expect ExtractedUserRingLookup sim_cycles below\n"
      "BaselineInKernelLookup (no gate crossing).\n\n");
  const NameSimCycles sim = MeasureSimCycles(/*iters=*/512);
  EmitJson(JsonLine("name_manager")
               .Field("cyc_lookup_baseline", sim.lookup_baseline)
               .Field("cyc_lookup_extracted", sim.lookup_extracted)
               .Field("cyc_bind_baseline", sim.bind_baseline)
               .Field("cyc_bind_extracted", sim.bind_extracted)
               .Field("reproduced", sim.lookup_extracted < sim.lookup_baseline ? "yes" : "no"));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
