// P10 — the anticipatory paging pipeline.  With demand paging, a scan over a
// working set larger than memory pays one full disk latency per touched page,
// and every eviction happens inline on the fault path.  The pipeline attacks
// both: the page-writer daemon pre-cleans frames to keep a free pool between
// watermarks (faults stop paying evictions), per-pack request queues dispatch
// in record-sorted rounds (one seek amortized over the round), and a
// forward-sequential fault pattern posts readahead for the next pages (the
// scan stops faulting at all on anticipated pages).
//
// The bench sweeps the knob lattice over a sequential scan and a scattered
// trace, then the tuning dimensions (watermarks, batch size, readahead
// depth) with the other knobs held at their defaults.  Cycles are the
// simulator's single global clock, so the pipeline's wins here are pure cost
// amortization — batching and fault suppression — not overlap.
#include <cstdio>

#include "bench/bench_util.h"

namespace mks {
namespace {

constexpr uint32_t kPages = 192;  // working set: 4x the pageable frames
constexpr uint32_t kRounds = 4;
constexpr uint32_t kPumpEvery = 4;  // references between page-writer pumps

struct RunResult {
  double cyc_per_fault = 0;  // per reference of the scan == per baseline fault
  uint64_t faults = 0;
  uint64_t evictions = 0;
  uint64_t inline_evictions = 0;
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_waste = 0;
  uint64_t batched_records = 0;
};

// Runs one trace against one knob setting.  `sequential` selects the forward
// scan; otherwise a deterministic scattered permutation (stride walk) that
// defeats the sequence detector.  The page-writer daemon is pumped every few
// references, standing in for the idle time it runs in on a real system; its
// cycles land on the same global clock, so pre-cleaning is charged fairly.
RunResult RunTrace(const PagingPipeline& pipeline, bool sequential) {
  KernelConfig config;
  config.memory_frames = 64;
  config.records_per_pack = 8192;
  config.paging_pipeline = pipeline;
  BenchKernel bk{config};
  PathWalker walker(&bk.kernel.gates());
  auto entry = walker.CreateSegment(*bk.ctx, ">pipe", BenchWorldAcl(), Label::SystemLow());
  if (!entry.ok()) {
    std::abort();
  }
  auto segno = bk.kernel.gates().Initiate(*bk.ctx, *entry);
  if (!segno.ok()) {
    std::abort();
  }
  for (uint32_t p = 0; p < kPages; ++p) {
    (void)bk.kernel.gates().Write(*bk.ctx, *segno, p * kPageWords, p + 1);
  }
  uint32_t refs = 0;
  auto touch = [&](uint32_t page) {
    (void)bk.kernel.gates().Read(*bk.ctx, *segno, page * kPageWords);
    if (++refs % kPumpEvery == 0) {
      (void)bk.kernel.vprocs().RunKernelTask("page_writer");
    }
  };
  auto one_round = [&]() {
    if (sequential) {
      for (uint32_t p = 0; p < kPages; ++p) {
        touch(p);
      }
    } else {
      // 67 is coprime to 192: a full-coverage walk with no sequential pairs.
      uint32_t p = 0;
      for (uint32_t i = 0; i < kPages; ++i) {
        touch(p);
        p = (p + 67) % kPages;
      }
    }
  };
  one_round();  // warmup: first evictions write the fill data back
  Metrics& m = bk.kernel.metrics();
  const Cycles before = bk.kernel.clock().now();
  const uint64_t faults0 = m.Get("pfm.faults_serviced");
  const uint64_t evict0 = m.Get("pfm.evictions");
  const uint64_t inline0 = m.Get("pfm.inline_evictions");
  const uint64_t issued0 = m.Get("pfm.prefetch_issued");
  const uint64_t hits0 = m.Get("pfm.prefetch_hits");
  const uint64_t waste0 = m.Get("pfm.prefetch_waste");
  const uint64_t batched0 = m.Get("disk.batched_records");
  for (uint32_t r = 0; r < kRounds; ++r) {
    one_round();
  }
  RunResult result;
  // Under demand paging every reference of the pressured scan faults, so
  // per-reference cycles ARE per-fault cycles of the disabled pipeline — the
  // one denominator that stays comparable as the pipeline suppresses faults.
  result.cyc_per_fault = static_cast<double>(bk.kernel.clock().now() - before) /
                         static_cast<double>(kRounds * kPages);
  result.faults = m.Get("pfm.faults_serviced") - faults0;
  result.evictions = m.Get("pfm.evictions") - evict0;
  result.inline_evictions = m.Get("pfm.inline_evictions") - inline0;
  result.prefetch_issued = m.Get("pfm.prefetch_issued") - issued0;
  result.prefetch_hits = m.Get("pfm.prefetch_hits") - hits0;
  result.prefetch_waste = m.Get("pfm.prefetch_waste") - waste0;
  result.batched_records = m.Get("disk.batched_records") - batched0;
  return result;
}

void Emit(const char* trace, const char* knobs, const PagingPipeline& pp,
          const RunResult& r) {
  const double inline_rate =
      r.evictions == 0 ? 0.0
                       : static_cast<double>(r.inline_evictions) / static_cast<double>(r.evictions);
  EmitJson(JsonLine("paging_pipeline")
               .Field("trace", trace)
               .Field("knobs", knobs)
               .Field("low_watermark", uint64_t{pp.low_watermark})
               .Field("high_watermark", uint64_t{pp.high_watermark})
               .Field("batch", uint64_t{pp.io_batch_size})
               .Field("depth", uint64_t{pp.readahead_depth})
               .Field("cyc_per_fault", r.cyc_per_fault)
               .Field("faults", r.faults)
               .Field("inline_eviction_rate", inline_rate)
               .Field("prefetch_issued", r.prefetch_issued)
               .Field("prefetch_hits", r.prefetch_hits)
               .Field("prefetch_waste", r.prefetch_waste)
               .Field("batched_records", r.batched_records));
}

}  // namespace
}  // namespace mks

int main() {
  using namespace mks;
  std::printf("=== P10: Anticipatory paging pipeline ===\n\n");

  struct Knob {
    const char* name;
    PagingPipeline pp;
  };
  const Knob knobs[] = {
      {"off", PagingPipeline{}},
      {"preclean", [] { PagingPipeline p; p.precleaning = true; return p; }()},
      {"batch", [] { PagingPipeline p; p.batched_io = true; return p; }()},
      {"readahead", [] { PagingPipeline p; p.readahead = true; return p; }()},
      {"preclean+readahead",
       [] { PagingPipeline p; p.precleaning = true; p.readahead = true; return p; }()},
      {"full", PagingPipeline::Full()},
  };

  double off_seq = 0;
  double full_seq = 0;
  for (const char* trace : {"sequential", "scattered"}) {
    const bool sequential = trace[0] == 's' && trace[1] == 'e';
    std::printf("%-10s %-22s %14s %8s %10s %10s\n", "trace", "knobs", "cyc/fault", "faults",
                "inline-ev", "pf hit/iss");
    for (const Knob& k : knobs) {
      const RunResult r = RunTrace(k.pp, sequential);
      std::printf("%-10s %-22s %14.0f %8llu %10llu %5llu/%llu\n", trace, k.name, r.cyc_per_fault,
                  (unsigned long long)r.faults, (unsigned long long)r.inline_evictions,
                  (unsigned long long)r.prefetch_hits, (unsigned long long)r.prefetch_issued);
      Emit(trace, k.name, k.pp, r);
      if (sequential && std::string_view(k.name) == "off") {
        off_seq = r.cyc_per_fault;
      }
      if (sequential && std::string_view(k.name) == "full") {
        full_seq = r.cyc_per_fault;
      }
    }
    std::printf("\n");
  }

  // Tuning sweeps, full pipeline, sequential trace.
  for (uint32_t low : {4u, 8u, 16u}) {
    PagingPipeline pp = PagingPipeline::Full();
    pp.low_watermark = low;
    pp.high_watermark = 3 * low;
    Emit("sequential", "full/watermark", pp, RunTrace(pp, true));
  }
  for (uint32_t batch : {2u, 4u, 8u, 16u}) {
    PagingPipeline pp = PagingPipeline::Full();
    pp.io_batch_size = batch;
    Emit("sequential", "full/batch", pp, RunTrace(pp, true));
  }
  for (uint32_t depth : {2u, 4u, 8u, 16u}) {
    PagingPipeline pp = PagingPipeline::Full();
    pp.readahead_depth = depth;
    Emit("sequential", "full/depth", pp, RunTrace(pp, true));
  }

  const double speedup = full_seq > 0 ? off_seq / full_seq : 0;
  std::printf("\nsequential scan under pressure: %.0f -> %.0f cyc/fault (%.1fx)\n", off_seq,
              full_seq, speedup);
  std::printf("a missing-page fault almost never pays an inline writeback: %s\n",
              speedup >= 2.0 ? "REPRODUCED" : "MISMATCH");
  return speedup >= 2.0 ? 0 : 1;
}
