// P16 — the name storm: read-mostly synchronization policies on the naming
// surface (directory hierarchy + known segment tables) at 1–16 CPUs.
//
// The workload is the paper's traffic asymmetry made concrete: a 1000:1
// read:write mix where every read is a two-component path walk (two gate
// Searches through the directory manager) plus one KST lookup, and every
// 1000th operation is a SetAcl — a write-class gate that must exclude the
// readers.  Ops are dealt round-robin to the furthest-behind CPU, so the
// pool genuinely overlaps in virtual time and the naming lock is the only
// thing standing between the readers and linear speedup.
//
// Three read-side policies over the identical schedule (grant order never
// changes — the serialized simulation orders every section):
//
//   exclusive  — one lock word for readers and writers alike: every lookup
//                serializes like a write, so adding CPUs adds only spin and
//                throughput collapses to the serial section rate.
//   passive_rw — per-CPU read tokens [Liu et al., ATC 2014]: a contended
//                read costs NO line transfers; the rare writer revokes the
//                outstanding tokens at connect_cost per remote reader CPU.
//   epoch      — RCU-style epoch pins [Clements et al., ASPLOS 2012]:
//                readers are free even against an in-flight writer; the
//                writer publishes one broadcast and waits out the grace
//                period (drain + epoch_grace_cost).
//
// Headline: at 16 CPUs both read-mostly policies must beat exclusive on
// walk throughput — the collapse curve P15 showed for the dispatch lock,
// reproduced for the naming surface and then fixed by taking readers out of
// the line-transfer economy.  A bit-identical double-run self-check guards
// determinism.
//
// Usage: bench_perf_name_storm [--smoke] [--profile]
//   --smoke: cpus {1,4}, ~10x fewer ops; skips the 16-CPU verdict but keeps
//            the double-run self-check; always exits 0.
//   --profile: enable the cycle-accounting profiler; each run prints a
//            top-domain breakdown table and emits a `name_storm_prof` JSON
//            line, and the exclusive policy at the largest pool exports
//            bench_perf_name_storm.prof.folded (flamegraph collapsed stacks).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/fs/path_walker.h"
#include "src/kernel/kernel.h"

namespace mks {
namespace {

constexpr ReadPolicy kPolicies[] = {ReadPolicy::kExclusive, ReadPolicy::kPassiveRw,
                                    ReadPolicy::kEpoch};
constexpr uint32_t kLibSegments = 32;
constexpr uint32_t kWritePeriod = 1000;  // the 1000:1 read:write mix

struct StormResult {
  Cycles total = 0;
  Cycles makespan = 0;
  uint64_t walks = 0;
  uint64_t writes = 0;
  // Summed over the directory hierarchy lock and the KST lock.
  uint64_t read_grants = 0;
  uint64_t contended_reads = 0;
  Cycles read_spin_cycles = 0;
  uint64_t write_grants = 0;
  Cycles write_spin_cycles = 0;
  uint64_t revoked_cpus = 0;
  Cycles revocation_cycles = 0;
  Cycles publish_cycles = 0;
  uint64_t grace_waits = 0;
  Cycles grace_cycles = 0;
  uint64_t gate_reads = 0;
  uint64_t gate_writes = 0;
  bool ok = false;

  void AddLock(const SimSharedLock& lock) {
    read_grants += lock.read_grants();
    contended_reads += lock.contended_reads();
    read_spin_cycles += lock.read_spin_cycles();
    write_grants += lock.write_grants();
    write_spin_cycles += lock.write_spin_cycles();
    revoked_cpus += lock.revoked_cpus();
    revocation_cycles += lock.revocation_cycles();
    publish_cycles += lock.publish_cycles();
    grace_waits += lock.grace_waits();
    grace_cycles += lock.grace_cycles();
  }

  bool BitIdentical(const StormResult& other) const {
    return total == other.total && makespan == other.makespan && walks == other.walks &&
           writes == other.writes && read_grants == other.read_grants &&
           contended_reads == other.contended_reads &&
           read_spin_cycles == other.read_spin_cycles && write_grants == other.write_grants &&
           write_spin_cycles == other.write_spin_cycles && revoked_cpus == other.revoked_cpus &&
           revocation_cycles == other.revocation_cycles &&
           publish_cycles == other.publish_cycles && grace_waits == other.grace_waits &&
           grace_cycles == other.grace_cycles && gate_reads == other.gate_reads &&
           gate_writes == other.gate_writes;
  }
};

// Drives `ops` naming operations round-robin across the pool: each op runs
// on the furthest-behind CPU in its own anchored window and its global-clock
// delta is accrued there, so sections genuinely overlap in virtual time.
StormResult RunStorm(ReadPolicy policy, uint16_t cpus, uint32_t ops, bool profile = false,
                     const char* folded_path = nullptr) {
  StormResult out;
  KernelConfig config;
  config.memory_frames = 256;
  config.records_per_pack = 8192;
  config.cpu_count = cpus;
  config.connect_cost = 400;  // prices token revocation and the epoch publish
  config.read_policy = policy;
  config.epoch_grace_cost = 600;
  config.profile.enabled = profile;
  config.profile.stall_rounds = kBenchStallRounds;
  Kernel kernel{config};
  if (!kernel.Boot().ok()) {
    return out;
  }
  KernelContext& kctx = kernel.ctx();
  PathWalker walker(&kernel.gates());
  const Acl acl = BenchWorldAcl();
  Subject user{Principal{"Bench", "Proj"}, Label::SystemLow(), 4};

  // One process per CPU; each initiates one probe segment for KST lookups.
  std::vector<ProcContext*> procs;
  std::vector<ProcessId> pids;
  std::vector<Segno> probes;
  for (uint16_t c = 0; c < cpus; ++c) {
    auto pid = kernel.processes().CreateProcess(user);
    if (!pid.ok()) {
      return out;
    }
    pids.push_back(*pid);
    procs.push_back(kernel.processes().Context(*pid));
  }
  for (uint32_t s = 0; s < kLibSegments; ++s) {
    auto entry =
        walker.CreateSegment(*procs[0], ">lib>s" + std::to_string(s), acl, Label::SystemLow());
    if (!entry.ok()) {
      return out;
    }
  }
  auto lib = walker.Walk(*procs[0], ">lib");
  if (!lib.ok()) {
    return out;
  }
  for (uint16_t c = 0; c < cpus; ++c) {
    auto segno = walker.Initiate(*procs[c], ">lib>s" + std::to_string(c % kLibSegments));
    if (!segno.ok()) {
      return out;
    }
    probes.push_back(*segno);
  }

  // Barrier into the measured region: every local clock aligned AND advanced
  // to the global clock, so release points recorded during (unanchored,
  // single-stream) boot and setup can never read as contention against the
  // measured windows.  At 1 CPU this makes exclusive spin structurally zero.
  kctx.smp.AlignAll();
  if (kernel.clock().now() > kctx.smp.Makespan()) {
    kctx.smp.AdvanceAll(kernel.clock().now() - kctx.smp.Makespan());
  }
  const Cycles m0 = kctx.smp.Makespan();
  const Cycles before = kernel.clock().now();
  for (uint32_t i = 0; i < ops; ++i) {
    const uint16_t cpu = kctx.smp.NextCpu();
    kctx.current_cpu = cpu;
    kctx.trace.SetCpu(cpu);
    kctx.AnchorWindow();
    // Each op is one accrual window; the window closes (and attributes) after
    // the Accrue below, at the end of the iteration.  Everything inside goes
    // through the gate layer, so the root is the gate domain.
    Prof::Window window(&kctx.prof, cpu, ProfDomain::kGate);
    const Cycles t0 = kernel.clock().now();
    if (i % kWritePeriod == kWritePeriod - 1) {
      const std::string name = "s" + std::to_string(i % kLibSegments);
      if (!kernel.gates().SetAcl(*procs[cpu], *lib, name, acl).ok()) {
        return out;
      }
      ++out.writes;
    } else {
      const std::string path = ">lib>s" + std::to_string(i % kLibSegments);
      if (!walker.Walk(*procs[cpu], path).ok()) {
        return out;
      }
      if (kernel.known_segments().Lookup(pids[cpu], probes[cpu]) == nullptr) {
        return out;
      }
      ++out.walks;
    }
    kctx.smp.Accrue(cpu, kernel.clock().now() - t0);
  }
  out.total = kernel.clock().now() - before;
  out.makespan = kctx.smp.Makespan() - m0;
  out.AddLock(kernel.directories().naming_lock());
  out.AddLock(kernel.known_segments().kst_lock());
  out.gate_reads = walker.gate_mix().read_calls;
  out.gate_writes = walker.gate_mix().write_calls;
  if (profile) {
    char title[96];
    std::snprintf(title, sizeof title, "%s @ %u cpus", ReadPolicyName(policy), cpus);
    PrintProfileTable(kctx.prof, title);
    JsonLine pline("name_storm_prof");
    pline.Field("policy", ReadPolicyName(policy)).Field("cpus", uint64_t{cpus});
    EmitJson(FieldProfDomains(pline, kctx.prof));
    if (folded_path != nullptr) {
      WriteFolded(kctx.prof, folded_path);
    }
  }
  out.ok = true;
  return out;
}

}  // namespace
}  // namespace mks

int main(int argc, char** argv) {
  using namespace mks;
  bool smoke = false;
  bool profile = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    }
  }
  const std::vector<uint16_t> cpu_counts =
      smoke ? std::vector<uint16_t>{1, 4} : std::vector<uint16_t>{1, 2, 4, 8, 16};
  const uint32_t ops = smoke ? 4000 : 40000;
  const uint16_t max_cpus = cpu_counts.back();

  std::printf("=== P16: name storm — read-mostly policies on the naming surface ===\n\n");
  std::printf("%u ops, 1 write per %u (SetAcl), read = 2-component walk + KST lookup\n\n",
              ops, kWritePeriod);
  double speedup_at_max[3] = {0, 0, 0};
  std::printf("%11s %5s %12s %12s %9s %12s %11s %11s %11s\n", "policy", "cpus", "makespan",
              "total", "speedup", "walks/Mcyc", "read spin", "revoke cyc", "grace cyc");
  for (int pi = 0; pi < 3; ++pi) {
    const ReadPolicy policy = kPolicies[pi];
    Cycles m1 = 0;
    for (uint16_t cpus : cpu_counts) {
      const bool want_folded =
          profile && policy == ReadPolicy::kExclusive && cpus == max_cpus;
      const StormResult r =
          RunStorm(policy, cpus, ops, profile,
                   want_folded ? "bench_perf_name_storm.prof.folded" : nullptr);
      if (!r.ok) {
        std::fprintf(stderr, "run failed (%s, %u cpus)\n", ReadPolicyName(policy), cpus);
        return 1;
      }
      if (cpus == 1) {
        m1 = r.makespan;
      }
      const double speedup = static_cast<double>(m1) / r.makespan;
      const double walks_per_mcyc =
          r.makespan == 0 ? 0 : static_cast<double>(r.walks) * 1e6 / r.makespan;
      std::printf("%11s %5u %12llu %12llu %8.2fx %12.1f %11llu %11llu %11llu\n",
                  ReadPolicyName(policy), cpus, (unsigned long long)r.makespan,
                  (unsigned long long)r.total, speedup, walks_per_mcyc,
                  (unsigned long long)r.read_spin_cycles,
                  (unsigned long long)r.revocation_cycles, (unsigned long long)r.grace_cycles);
      JsonLine line("name_storm");
      line.Field("policy", ReadPolicyName(policy))
          .Field("cpus", uint64_t{cpus})
          .Field("makespan", r.makespan)
          .Field("total_cycles", r.total)
          .Field("speedup_vs_1cpu", speedup)
          .Field("walks", r.walks)
          .Field("writes", r.writes)
          .Field("walks_per_mcycle", walks_per_mcyc)
          .Field("read_grants", r.read_grants)
          .Field("contended_reads", r.contended_reads)
          .Field("read_spin_cycles", r.read_spin_cycles)
          .Field("write_grants", r.write_grants)
          .Field("write_spin_cycles", r.write_spin_cycles)
          .Field("revoked_cpus", r.revoked_cpus)
          .Field("revocation_cycles", r.revocation_cycles)
          .Field("publish_cycles", r.publish_cycles)
          .Field("grace_waits", r.grace_waits)
          .Field("grace_cycles", r.grace_cycles)
          .Field("gate_read_calls", r.gate_reads)
          .Field("gate_write_calls", r.gate_writes);
      EmitJson(line);
      if (cpus == max_cpus) {
        speedup_at_max[pi] = speedup;
      }
    }
    std::printf("\n");
  }

  // Determinism self-check: the heaviest configuration of each read-mostly
  // policy, twice, must match on every counter bit-for-bit.
  {
    const StormResult a = RunStorm(ReadPolicy::kPassiveRw, max_cpus, ops);
    const StormResult b = RunStorm(ReadPolicy::kPassiveRw, max_cpus, ops);
    const StormResult c = RunStorm(ReadPolicy::kEpoch, max_cpus, ops);
    const StormResult d = RunStorm(ReadPolicy::kEpoch, max_cpus, ops);
    if (!a.ok || !b.ok || !c.ok || !d.ok || !a.BitIdentical(b) || !c.BitIdentical(d)) {
      std::fprintf(stderr, "DETERMINISM FAILURE: double-run results differ\n");
      return 1;
    }
    std::printf("double-run self-check: bit-identical (passive_rw and epoch at %u CPUs)\n",
                max_cpus);
  }

  if (smoke) {
    std::printf("smoke run complete\n");
    return 0;
  }
  const bool separated = speedup_at_max[1] > speedup_at_max[0] &&
                         speedup_at_max[2] > speedup_at_max[0];
  std::printf("\nat %u CPUs: passive_rw %.4fx / epoch %.4fx vs exclusive %.4fx: %s\n", max_cpus,
              speedup_at_max[1], speedup_at_max[2], speedup_at_max[0],
              separated ? "read-mostly policies win" : "NO");
  std::printf("taking lookups out of the line-transfer economy makes the naming surface\n"
              "scale with the pool while exclusive serializes it -> %s\n",
              separated ? "REPRODUCED" : "MISMATCH");
  return separated ? 0 : 1;
}
