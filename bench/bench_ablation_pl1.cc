// Ablation — the "exclusive use of PL/I" tradeoff.  Recoding the kernel's
// assembly in a higher-level language buys 8K source lines of auditability
// and costs roughly a factor of two in generated instructions on the
// recoded paths [Huber, 1976].  This bench sweeps the structured-code factor
// and shows where the cost lands: concentrated in fault handling, diluted in
// end-to-end workloads.
#include <cstdio>

#include "bench/bench_util.h"

namespace mks {
namespace {

struct Sample {
  double growth_cost;      // handler-bound: quota exception + grow, no device
  double paged_read_cost;  // latency-bound: disk transfer dominates
};

Sample RunWorkload(double factor) {
  Sample sample{};
  {
    // Handler-bound path: first-touch growth faults with ample memory.
    KernelConfig config;
    config.memory_frames = 512;
    config.structured_factor = factor;
    BenchKernel fx{config};
    PathWalker walker(&fx.kernel.gates());
    auto entry = walker.CreateSegment(*fx.ctx, ">data>grow", BenchWorldAcl(),
                                      Label::SystemLow());
    auto segno = fx.kernel.gates().Initiate(*fx.ctx, *entry);
    constexpr uint32_t kGrowths = 128;
    const Cycles before = fx.kernel.clock().now();
    for (uint32_t p = 0; p < kGrowths; ++p) {
      (void)fx.kernel.gates().Write(*fx.ctx, *segno, p * kPageWords, p + 1);
    }
    sample.growth_cost =
        static_cast<double>(fx.kernel.clock().now() - before) / kGrowths;
  }
  {
    // Latency-bound path: cyclic reads over more pages than memory holds.
    KernelConfig config;
    config.memory_frames = 64;
    config.structured_factor = factor;
    BenchKernel fx{config};
    PathWalker walker(&fx.kernel.gates());
    auto entry = walker.CreateSegment(*fx.ctx, ">data>sweep", BenchWorldAcl(),
                                      Label::SystemLow());
    auto segno = fx.kernel.gates().Initiate(*fx.ctx, *entry);
    constexpr uint32_t kPages = 96;
    constexpr uint32_t kRounds = 4;
    for (uint32_t p = 0; p < kPages; ++p) {
      (void)fx.kernel.gates().Write(*fx.ctx, *segno, p * kPageWords, p + 1);
    }
    const Cycles before = fx.kernel.clock().now();
    for (uint32_t r = 0; r < kRounds; ++r) {
      for (uint32_t p = 0; p < kPages; ++p) {
        (void)fx.kernel.gates().Read(*fx.ctx, *segno, p * kPageWords);
      }
    }
    sample.paged_read_cost =
        static_cast<double>(fx.kernel.clock().now() - before) / (kPages * kRounds);
  }
  return sample;
}

}  // namespace
}  // namespace mks

int main() {
  using namespace mks;
  std::printf("=== Ablation: the PL/I recoding factor ===\n\n");
  std::printf("%12s %22s %24s\n", "factor", "growth fault (cyc)", "paged read (cyc)");
  Sample at_1{}, at_3{};
  for (double factor : {1.0, 1.5, 2.1, 3.0}) {
    const Sample s = RunWorkload(factor);
    std::printf("%12.1f %22.0f %24.0f\n", factor, s.growth_cost, s.paged_read_cost);
    if (factor == 1.0) {
      at_1 = s;
    }
    if (factor == 3.0) {
      at_3 = s;
    }
  }
  std::printf(
      "\n1.0x -> 3.0x code expansion: growth fault +%.0f%%, paged read +%.1f%%.\n"
      "The expansion hits only the kernel's own instructions; device latency\n"
      "is untouched.  That is why the paper could accept the ~2x code-path\n"
      "factor for an 8K-line auditability gain — \"not significant unless the\n"
      "system were cramped for memory and thrashing\".\n",
      100.0 * (at_3.growth_cost / at_1.growth_cost - 1.0),
      100.0 * (at_3.paged_read_cost / at_1.paged_read_cost - 1.0));
  return 0;
}
