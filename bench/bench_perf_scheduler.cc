// P5 — the two-level process implementation.  Paper: "a structure which in
// the past has not yielded good system performance although no one to our
// knowledge has been willing to claim such a failure in print. ... we are
// confident that the combination of the layers will have a performance about
// the same as the current system."
//
// The bench runs the same multiprogrammed workload through the baseline
// one-level process control (states in pageable segments, dispatch can
// itself fault) and the new two-level design (fixed vp pool + user process
// scheduler with the real-memory queue), and compares simulated cycles.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/supervisor.h"
#include "src/fs/path_walker.h"
#include "src/kernel/kernel.h"

namespace mks {
namespace {

constexpr int kProcesses = 8;
constexpr uint32_t kOpsPerProcess = 120;
constexpr uint32_t kPagesPerProcess = 6;

Cycles RunBaseline() {
  BaselineConfig config;
  config.memory_frames = 256;
  config.records_per_pack = 8192;
  MonolithicSupervisor sup{config};
  if (!sup.Boot().ok()) {
    return 0;
  }
  std::vector<ProcessId> pids;
  for (int i = 0; i < kProcesses; ++i) {
    auto pid = sup.CreateProcess();
    if (!pid.ok()) {
      return 0;
    }
    auto uid = sup.CreatePath(">work>p" + std::to_string(i));
    if (!uid.ok()) {
      return 0;
    }
    std::vector<MonolithicSupervisor::BaselineOp> program;
    for (uint32_t n = 0; n < kOpsPerProcess; ++n) {
      MonolithicSupervisor::BaselineOp op;
      if (n % 3 == 0) {
        op.kind = MonolithicSupervisor::BaselineOp::Kind::kCompute;
        op.compute = 40;
      } else {
        op.kind = MonolithicSupervisor::BaselineOp::Kind::kWrite;
        op.uid = *uid;
        op.offset = (n % kPagesPerProcess) * kPageWords + n;
        op.value = n;
      }
      program.push_back(op);
    }
    (void)sup.SetProgram(*pid, std::move(program));
    pids.push_back(*pid);
  }
  const Cycles before = sup.clock().now();
  (void)sup.RunUntilQuiescent(100000);
  return sup.clock().now() - before;
}

Cycles RunKernel() {
  KernelConfig config;
  config.memory_frames = 256;
  config.records_per_pack = 8192;
  config.vp_count = 6;  // 8 processes multiplexed over a smaller fixed pool
  Kernel kernel{ArmWatchdog(config)};
  if (!kernel.Boot().ok()) {
    return 0;
  }
  Subject user{Principal{"Bench", "Proj"}, Label::SystemLow(), 4};
  PathWalker walker(&kernel.gates());
  Acl acl;
  acl.Add(AclEntry{"*", "*", AccessModes::RWE()});
  for (int i = 0; i < kProcesses; ++i) {
    auto pid = kernel.processes().CreateProcess(user);
    if (!pid.ok()) {
      return 0;
    }
    ProcContext* ctx = kernel.processes().Context(*pid);
    auto entry =
        walker.CreateSegment(*ctx, ">work>p" + std::to_string(i), acl, Label::SystemLow());
    if (!entry.ok()) {
      return 0;
    }
    auto segno = kernel.gates().Initiate(*ctx, *entry);
    if (!segno.ok()) {
      return 0;
    }
    std::vector<UserOp> program;
    for (uint32_t n = 0; n < kOpsPerProcess; ++n) {
      if (n % 3 == 0) {
        program.push_back(UserOp::Compute(40));
      } else {
        program.push_back(
            UserOp::Write(*segno, (n % kPagesPerProcess) * kPageWords + n, n));
      }
    }
    (void)kernel.processes().SetProgram(*pid, std::move(program));
  }
  const Cycles before = kernel.clock().now();
  (void)kernel.processes().RunUntilQuiescent(1000000);
  return kernel.clock().now() - before;
}

}  // namespace
}  // namespace mks

int main() {
  using namespace mks;
  std::printf("=== P5: One-level vs two-level process multiplexing ===\n\n");
  const Cycles baseline = RunBaseline();
  const Cycles kernel = RunKernel();
  const double total_ops = static_cast<double>(kProcesses) * kOpsPerProcess;
  const double b = static_cast<double>(baseline) / total_ops;
  const double k = static_cast<double>(kernel) / total_ops;
  std::printf("%d processes x %u ops (compute + paged writes):\n", kProcesses, kOpsPerProcess);
  std::printf("  one-level (baseline):  %10.0f sim cycles/op\n", b);
  std::printf("  two-level (new design): %9.0f sim cycles/op\n", k);
  std::printf("  ratio: %.2fx\n\n", k / b);
  const bool shape = k / b > 0.6 && k / b < 1.8;
  EmitJson(JsonLine("scheduler")
               .Field("processes", uint64_t{kProcesses})
               .Field("ops_per_process", uint64_t{kOpsPerProcess})
               .Field("cyc_per_op_baseline", b)
               .Field("cyc_per_op_kernel", k)
               .Field("ratio", k / b)
               .Field("reproduced", shape ? "yes" : "no"));
  std::printf(
      "paper: \"confident that the combination of the layers will have a\n"
      "performance about the same as the current system\" (claim marked\n"
      "speculative).  ratio within [0.6, 1.8]: %s\n",
      shape ? "REPRODUCED" : "MISMATCH");
  return shape ? 0 : 1;
}
