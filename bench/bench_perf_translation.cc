// The fast-path reference pipeline: the 6180's associative memory as an
// HwFeatures ablation knob.  Without it, every reference fetches an SDW and
// a PTW from core; with it, a hit pays only the associative search.  The
// bench sweeps cache sizes over a locality-heavy and a locality-hostile
// reference string and verifies that the cache changes only the cost of a
// reference, never its outcome: the fault/address sequence checksum must be
// identical at every size.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/hw/machine.h"

namespace mks {
namespace {

constexpr uint32_t kSegments = 8;       // ordinary read/write segments
constexpr uint32_t kPagesPerSeg = 32;   // 256 resident pages total
constexpr uint16_t kFaultSegno = kSegments;      // read-only, half resident
constexpr uint16_t kMissingSegno = kSegments + 1;  // never present
constexpr size_t kRefs = 50000;

struct Ref {
  uint16_t segno;
  uint32_t offset;
  AccessMode mode;
};

// A standalone translation rig: descriptor segment + page tables, every
// ordinary page resident.  No PrimaryMemory — the bench charges translation
// only, which is what the associative memory changes.
struct Rig {
  Clock clock;
  CostModel cost{&clock};
  Metrics metrics;
  std::vector<PageTable> page_tables;
  DescriptorSegment ds;
  Processor processor;

  explicit Rig(uint16_t assoc_entries)
      : page_tables(kSegments + 1),
        processor(MakeFeatures(assoc_entries), &cost, &metrics) {
    ds.sdws.assign(kSegments + 2, Sdw{});
    for (uint32_t s = 0; s < kSegments; ++s) {
      PageTable& pt = page_tables[s];
      pt.ptws.assign(kPagesPerSeg, Ptw{});
      for (uint32_t p = 0; p < kPagesPerSeg; ++p) {
        pt.ptws[p] = Ptw{s * kPagesPerSeg + p, true, false, false, false, false};
      }
      ds.sdws[s] = Sdw{true, &pt, kPagesPerSeg, true, true, true, 4};
    }
    // The fault segment: read-only, bound covers 16 pages, only the first 8
    // resident — references here must fault identically at every cache size.
    PageTable& fpt = page_tables[kSegments];
    fpt.ptws.assign(16, Ptw{});
    for (uint32_t p = 0; p < 16; ++p) {
      fpt.ptws[p] = Ptw{p, p < 8, false, false, false, false};
    }
    ds.sdws[kFaultSegno] = Sdw{true, &fpt, 16, true, false, false, 4};
    // kMissingSegno stays Sdw{}: not present.
    processor.set_user_ds(&ds);
  }

  static HwFeatures MakeFeatures(uint16_t entries) {
    HwFeatures f;  // no second DSBR: segno indexes the user space directly
    f.associative_memory = true;
    f.associative_entries = entries;
    return f;
  }
};

// Working set of a few pages in one segment at a time, long bursts.
std::vector<Ref> LocalityHeavyTrace() {
  Rng rng(1977);
  std::vector<Ref> trace;
  trace.reserve(kRefs);
  uint16_t segno = 0;
  uint32_t base_page = 0;
  while (trace.size() < kRefs) {
    if (rng.NextBool(0.002)) {
      segno = static_cast<uint16_t>(rng.NextBelow(kSegments));
      base_page = static_cast<uint32_t>(rng.NextBelow(kPagesPerSeg - 4));
    }
    const uint32_t page = base_page + static_cast<uint32_t>(rng.NextZipf(4, 1.2));
    const uint32_t burst = rng.NextBurst(0.8, 16);
    for (uint32_t i = 0; i < burst && trace.size() < kRefs; ++i) {
      const AccessMode mode = rng.NextBool(0.3) ? AccessMode::kWrite : AccessMode::kRead;
      trace.push_back(Ref{segno, page * kPageWords + static_cast<uint32_t>(i), mode});
    }
  }
  return trace;
}

// Uniform over all 256 pages: a 16-entry cache can hold almost none of it.
std::vector<Ref> LocalityHostileTrace() {
  Rng rng(1973);
  std::vector<Ref> trace;
  trace.reserve(kRefs);
  while (trace.size() < kRefs) {
    const uint16_t segno = static_cast<uint16_t>(rng.NextBelow(kSegments));
    const uint32_t page = static_cast<uint32_t>(rng.NextBelow(kPagesPerSeg));
    const AccessMode mode = rng.NextBool(0.3) ? AccessMode::kWrite : AccessMode::kRead;
    trace.push_back(Ref{segno, page * kPageWords, mode});
  }
  return trace;
}

// Sprinkle references that must fault — missing page, access violation,
// out of bounds, missing segment — so the checksum proves the cache never
// swallows or invents one.
void AddFaultingRefs(std::vector<Ref>* trace) {
  for (size_t i = 0; i < trace->size(); i += 97) {
    Ref& ref = (*trace)[i];
    switch ((i / 97) % 4) {
      case 0: {  // resident read-only page, then a write to it at i+1
        const uint32_t offset = static_cast<uint32_t>((i / 97) % 8) * kPageWords;
        ref = Ref{kFaultSegno, offset, AccessMode::kRead};
        if (i + 1 < trace->size()) {
          (*trace)[i + 1] = Ref{kFaultSegno, offset, AccessMode::kWrite};
        }
        break;
      }
      case 1:  // non-resident page
        ref = Ref{kFaultSegno, static_cast<uint32_t>(8 + (i / 97) % 8) * kPageWords,
                  AccessMode::kRead};
        break;
      case 2:  // beyond the bound
        ref = Ref{kFaultSegno, 20 * kPageWords, AccessMode::kRead};
        break;
      case 3:  // segment not present
        ref = Ref{kMissingSegno, 0, AccessMode::kRead};
        break;
    }
  }
}

struct RunResult {
  double cyc_per_ref = 0;
  double hit_rate = 0;
  uint64_t checksum = 0;
};

RunResult Run(uint16_t entries, const std::vector<Ref>& trace) {
  Rig rig(entries);
  const Cycles before = rig.clock.now();
  uint64_t checksum = 1469598103934665603ULL;  // FNV offset basis
  for (const Ref& ref : trace) {
    AccessResult r = rig.processor.Access(Segno(ref.segno), ref.offset, ref.mode, 4);
    checksum = (checksum ^ (static_cast<uint64_t>(r.fault.kind) + 1)) * 1099511628211ULL;
    if (r.ok) {
      checksum = (checksum ^ r.abs_addr) * 1099511628211ULL;
    }
  }
  RunResult result;
  result.cyc_per_ref =
      static_cast<double>(rig.clock.now() - before) / static_cast<double>(trace.size());
  const uint64_t hits = rig.metrics.Get("hw.assoc_hits");
  const uint64_t misses = rig.metrics.Get("hw.assoc_misses");
  result.hit_rate = hits + misses == 0
                        ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(hits + misses);
  result.checksum = checksum;
  return result;
}

}  // namespace
}  // namespace mks

int main() {
  using namespace mks;
  std::printf("=== Fast path: descriptor associative memory sweep ===\n\n");
  std::printf("workload: %zu references, %u segments x %u pages; 0 entries = every\n"
              "reference fetches SDW+PTW from core (pre-associative hardware)\n\n",
              kRefs, kSegments, kPagesPerSeg);

  const uint16_t sweep[] = {0, 4, 16, 64};
  struct Workload {
    const char* name;
    std::vector<Ref> trace;
  };
  Workload workloads[] = {{"locality_heavy", LocalityHeavyTrace()},
                          {"locality_hostile", LocalityHostileTrace()}};
  double heavy_base = 0, heavy_16 = 0;
  bool checksums_match = true;
  for (Workload& w : workloads) {
    AddFaultingRefs(&w.trace);
    std::printf("%-18s %8s %14s %10s %18s\n", w.name, "entries", "cyc/reference", "hit rate",
                "fault checksum");
    uint64_t expect = 0;
    for (uint16_t entries : sweep) {
      const RunResult r = Run(entries, w.trace);
      if (entries == sweep[0]) {
        expect = r.checksum;
      }
      checksums_match = checksums_match && r.checksum == expect;
      if (w.trace.data() == workloads[0].trace.data()) {
        if (entries == 0) heavy_base = r.cyc_per_ref;
        if (entries == 16) heavy_16 = r.cyc_per_ref;
      }
      std::printf("%-18s %8u %14.3f %9.1f%% %18llx\n", "", entries, r.cyc_per_ref,
                  r.hit_rate * 100, (unsigned long long)r.checksum);
      EmitJson(JsonLine("translation")
                   .Field("workload", w.name)
                   .Field("entries", static_cast<uint64_t>(entries))
                   .Field("cyc_per_ref", r.cyc_per_ref)
                   .Field("hit_rate", r.hit_rate)
                   .Field("checksum", r.checksum));
    }
    std::printf("\n");
  }

  const double speedup = heavy_16 > 0 ? heavy_base / heavy_16 : 0;
  std::printf("locality-heavy speedup at 16 entries: %.2fx ; fault sequences identical: %s\n",
              speedup, checksums_match ? "yes" : "NO");
  std::printf("paper: the associative memory makes the two-level descriptor walk\n"
              "affordable; the kernel design keeps it, invalidating explicitly at\n"
              "eviction, deactivation, and disconnection -> %s\n",
              (speedup >= 2.0 && checksums_match) ? "REPRODUCED" : "MISMATCH");
  return (speedup >= 2.0 && checksums_match) ? 0 : 1;
}
