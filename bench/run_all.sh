#!/usr/bin/env bash
# Runs every bench_perf_* binary and collects their machine-readable result
# lines (one JSON object per line, emitted via bench_util.h's EmitJson) into
# a single JSON-lines file.
#
# Usage: bench/run_all.sh [build-dir] [output-file]
#
# The default output name derives from the PR being collected: set PR=<n> in
# the environment (or pass an explicit output file) — the file is BENCH_pr<n>.json,
# written at the repo root.  When PR is unset, it defaults to the latest
# entry in CHANGES.md, so the script stays correct as the stack grows.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${ROOT}/build}"
if [ -z "${PR:-}" ]; then
  PR="$(sed -n 's/^- PR \([0-9][0-9]*\):.*/\1/p' "${ROOT}/CHANGES.md" | tail -1)"
  PR="${PR:-0}"
fi
OUT="${2:-${ROOT}/BENCH_pr${PR}.json}"
BENCH_DIR="${BUILD_DIR}/bench"

if [ ! -d "${BENCH_DIR}" ]; then
  echo "error: ${BENCH_DIR} not found; build first (cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j)" >&2
  exit 2
fi

: > "${OUT}"
failures=0
# The expected set derives from the sources, not from what happens to be in
# the build directory — a bench that failed to build (or was never built)
# must fail the collection loudly, not silently thin the result file.
for src in "${ROOT}"/bench/bench_perf_*.cc; do
  name="$(basename "${src}" .cc)"
  bench="${BENCH_DIR}/${name}"
  if [ ! -x "${bench}" ]; then
    echo "FAILED (missing binary): ${name} — rebuild ${BUILD_DIR}" >&2
    failures=$((failures + 1))
    continue
  fi
  echo "--- ${name}"
  # The google-benchmark binaries accept the min-time flag; the plain ones
  # ignore unknown argv entirely (their main() takes no flags).
  case "${name}" in
    bench_perf_eventcounts|bench_perf_linker|bench_perf_name_manager)
      output="$("${bench}" --benchmark_min_time=0.05s 2>&1)" ;;
    *)
      output="$("${bench}" 2>&1)" ;;
  esac
  status=$?
  if [ ${status} -ne 0 ]; then
    echo "FAILED (exit ${status}): ${name}" >&2
    echo "${output}" | tail -5 >&2
    failures=$((failures + 1))
  fi
  echo "${output}" | grep '^{' >> "${OUT}" || true
done

# A result row that advanced virtual time but reports zero simulated
# throughput means the host-throughput wiring is broken (the PR 6 eventcounts
# row slipped through exactly this way before sim_cycles_advanced existed).
# Rows without host fields (MKS_BENCH_NO_HOST=1) and genuinely host-level
# benches (sim_cycles_advanced 0) are exempt.
while IFS= read -r line; do
  case "${line}" in
    *'"sim_cycles_per_host_sec": 0'*)
      adv="$(printf '%s' "${line}" | sed -n 's/.*"sim_cycles_advanced": \([0-9]*\).*/\1/p')"
      if [ -n "${adv}" ] && [ "${adv}" -gt 0 ]; then
        echo "FAILED (zero sim_cycles_per_host_sec after advancing ${adv} cycles): ${line}" >&2
        failures=$((failures + 1))
      fi
      ;;
  esac
done < "${OUT}"

echo
echo "collected $(wc -l < "${OUT}") result lines into ${OUT}"
exit "${failures}"
