// P13 — sharded per-CPU run queues vs the global ready list, under a charged
// interconnect.  PR 5's dispatch refactor shards the level-2 ready list into
// per-CPU queues (own SimSpinLock each) with deterministic work stealing and
// optional affinity masks; KernelConfig::connect_cost prices every touch of
// scheduler state from a CPU other than its cache line's last owner.
//
// The sweep crosses dispatch mode (global list / sharded / sharded+steal)
// with connect cost {0, 200, 800} and CPU pool {1, 2, 4} over two workloads:
//
//   fault_storm  — P11's kernel fault storm, byte-for-byte the same work
//                  (4 processes x 24 pages > 64 frames, 4 sweep rounds), so
//                  the mode-vs-mode deltas ride on a known baseline;
//   mixed_pinned — a dispatch-rate-bound mix at quantum 2: four paged
//                  readers pinned to CPUs {0,1} and four compute processes
//                  pinned to CPUs {2,3} (pins apply where the mask
//                  intersects the pool), so the global list bounces between
//                  the two halves every quantum while sharded queues keep
//                  each half's traffic local.
//
// At connect cost 0 every mode degenerates to the legacy scheduler's charge
// stream; the interesting rows are cost > 0, where the global list pays a
// line transfer plus the lock-held dispatch window per quantum and the
// sharded queues pay only for steals and cross-CPU re-homes.
//
// Usage: bench_perf_runqueue [--smoke] [--trace] [--profile]
//   --smoke: tiny sweep (1 round, cpus {1,4}, costs {0,800}) with the tracer
//            on; exports bench_perf_runqueue.trace.json; always exits 0
//   --trace: enable the tracer in the full sweep (steal spans, queue-depth
//            histograms, per-queue lock spin) and export the 4-CPU max-cost
//            sharded+steal fault storm as bench_perf_runqueue.trace.json;
//            result lines gain `trace_dropped` and each traced run emits a
//            `runqueue_hist` line with every populated histogram
//   --profile: enable the cycle-accounting profiler; each run prints a
//            top-domain breakdown table and emits a `runqueue_prof` JSON
//            line; the sharded+steal 4-CPU max-cost fault storm exports
//            bench_perf_runqueue.prof.folded (flamegraph collapsed stacks)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/fs/path_walker.h"
#include "src/kernel/kernel.h"

namespace mks {
namespace {

struct Mode {
  const char* name;
  bool sharded;
  bool steal;
};

constexpr Mode kModes[] = {
    {"global", false, false},
    {"sharded", true, false},
    {"sharded_steal", true, true},
};

struct RqResult {
  Cycles total = 0;
  Cycles makespan = 0;
  uint64_t steals = 0;
  uint64_t transfers = 0;
  uint64_t rq_lock_spin_cycles = 0;
  uint64_t list_transfers = 0;
  uint64_t list_lock_spin_cycles = 0;
  uint64_t connect_signals = 0;
  uint64_t vp_migrations = 0;
  uint64_t proc_migrations = 0;
  uint64_t trace_dropped = 0;  // ring records lost; reported when tracing
  bool ok = false;
};

void CaptureCounters(const Metrics& metrics, RqResult* out) {
  out->steals = metrics.Get("runq.steals");
  out->transfers = metrics.Get("runq.transfers");
  out->rq_lock_spin_cycles = metrics.Get("runq.lock_spin_cycles");
  out->list_transfers = metrics.Get("sched.list_transfers");
  out->list_lock_spin_cycles = metrics.Get("sched.list_lock_spin_cycles");
  out->connect_signals = metrics.Get("hw.connect_signals");
  out->vp_migrations = metrics.Get("vproc.vp_migrations");
  out->proc_migrations = metrics.Get("sched.proc_migrations");
}

KernelConfig MakeConfig(const Mode& mode, uint16_t cpus, Cycles connect_cost,
                        uint32_t frames, bool trace, bool profile) {
  KernelConfig config;
  config.memory_frames = frames;
  config.records_per_pack = 8192;
  config.cpu_count = cpus;
  config.vp_count = 6;
  config.sharded_runqueues = mode.sharded;
  config.steal = mode.steal;
  config.connect_cost = connect_cost;
  config.trace.enabled = trace;
  config.profile.enabled = profile;
  config.profile.stall_rounds = kBenchStallRounds;
  return config;
}

// Shared per-run reporting for both workloads: trace_dropped + the all-
// histogram line when tracing, the top-domain table + `runqueue_prof` line
// (and optionally the folded flamegraph export) when profiling.
void ReportRun(Kernel& kernel, RqResult* out, const char* workload, const Mode& mode,
               uint16_t cpus, Cycles cost, bool trace, bool profile,
               const char* folded_path) {
  if (trace) {
    out->trace_dropped = TraceDroppedTotal(kernel.ctx().trace);
    JsonLine hline("runqueue_hist");
    hline.Field("workload", workload)
        .Field("mode", mode.name)
        .Field("cpus", uint64_t{cpus})
        .Field("connect_cost", uint64_t{cost});
    EmitJson(FieldAllHistograms(hline, kernel.metrics()));
  }
  if (profile) {
    char title[96];
    std::snprintf(title, sizeof title, "%s %s @ %u cpus, cost %llu", workload, mode.name,
                  cpus, (unsigned long long)cost);
    PrintProfileTable(kernel.ctx().prof, title);
    JsonLine pline("runqueue_prof");
    pline.Field("workload", workload)
        .Field("mode", mode.name)
        .Field("cpus", uint64_t{cpus})
        .Field("connect_cost", uint64_t{cost});
    EmitJson(FieldProfDomains(pline, kernel.ctx().prof));
    if (folded_path != nullptr) {
      WriteFolded(kernel.ctx().prof, folded_path);
    }
  }
}

// P11's kernel fault storm, unchanged: every touch of the cyclic page sweep
// faults because the working sets sum past the frame pool.
RqResult RunStorm(const Mode& mode, uint16_t cpus, Cycles connect_cost, uint32_t rounds,
                  bool trace, bool profile, const char* trace_path,
                  const char* folded_path) {
  RqResult out;
  constexpr uint32_t kProcs = 4;
  constexpr uint32_t kPages = 24;
  Kernel kernel{MakeConfig(mode, cpus, connect_cost, /*frames=*/64, trace, profile)};
  if (!kernel.Boot().ok()) {
    return out;
  }
  Subject user{Principal{"Bench", "Proj"}, Label::SystemLow(), 4};
  PathWalker walker(&kernel.gates());
  const Acl acl = BenchWorldAcl();
  for (uint32_t i = 0; i < kProcs; ++i) {
    auto pid = kernel.processes().CreateProcess(user);
    if (!pid.ok()) {
      return out;
    }
    ProcContext* ctx = kernel.processes().Context(*pid);
    auto entry =
        walker.CreateSegment(*ctx, ">work>p" + std::to_string(i), acl, Label::SystemLow());
    if (!entry.ok()) {
      return out;
    }
    auto segno = kernel.gates().Initiate(*ctx, *entry);
    if (!segno.ok()) {
      return out;
    }
    for (uint32_t p = 0; p < kPages; ++p) {
      (void)kernel.gates().Write(*ctx, *segno, p * kPageWords, p + 1);
    }
    std::vector<UserOp> program;
    for (uint32_t r = 0; r < rounds; ++r) {
      for (uint32_t p = 0; p < kPages; ++p) {
        program.push_back(UserOp::Read(*segno, p * kPageWords));
      }
    }
    (void)kernel.processes().SetProgram(*pid, std::move(program));
  }
  const Cycles before = kernel.clock().now();
  kernel.ctx().smp.AlignAll();
  const Cycles m0 = kernel.ctx().smp.Makespan();
  if (!kernel.processes().RunUntilQuiescent(1000000).ok()) {
    return out;
  }
  out.total = kernel.clock().now() - before;
  out.makespan = kernel.ctx().smp.Makespan() - m0;
  CaptureCounters(kernel.metrics(), &out);
  if (trace && trace_path != nullptr) {
    if (!TraceExporter::WriteFile(kernel.ctx().trace, trace_path)) {
      std::fprintf(stderr, "trace export failed: %s\n", trace_path);
    } else {
      std::printf("trace written: %s\n", trace_path);
    }
  }
  ReportRun(kernel, &out, "fault_storm", mode, cpus, connect_cost, trace, profile,
            folded_path);
  out.ok = true;
  return out;
}

// The dispatch-rate-bound mix: quantum 2, so every pair of ops pays a full
// dispatch round trip through the scheduler's shared state.  Four paged
// readers carry affinity mask 0x3 (CPUs 0-1) and four compute processes mask
// 0xc (CPUs 2-3); a pin is applied only where it intersects the pool, so the
// 1- and 2-CPU rows degrade gracefully to unpinned halves.
RqResult RunMixed(const Mode& mode, uint16_t cpus, Cycles connect_cost, uint32_t ops,
                  bool trace, bool profile) {
  RqResult out;
  constexpr uint32_t kProcs = 8;
  constexpr uint32_t kPages = 16;
  Kernel kernel{MakeConfig(mode, cpus, connect_cost, /*frames=*/256, trace, profile)};
  if (!kernel.Boot().ok()) {
    return out;
  }
  kernel.processes().set_quantum(2);
  Subject user{Principal{"Bench", "Proj"}, Label::SystemLow(), 4};
  PathWalker walker(&kernel.gates());
  const Acl acl = BenchWorldAcl();
  const uint32_t pool = cpus >= 32 ? ~0u : ((1u << cpus) - 1);
  for (uint32_t i = 0; i < kProcs; ++i) {
    auto pid = kernel.processes().CreateProcess(user);
    if (!pid.ok()) {
      return out;
    }
    ProcContext* ctx = kernel.processes().Context(*pid);
    auto entry =
        walker.CreateSegment(*ctx, ">work>m" + std::to_string(i), acl, Label::SystemLow());
    if (!entry.ok()) {
      return out;
    }
    auto segno = kernel.gates().Initiate(*ctx, *entry);
    if (!segno.ok()) {
      return out;
    }
    for (uint32_t p = 0; p < kPages; ++p) {
      (void)kernel.gates().Write(*ctx, *segno, p * kPageWords, p + 1);
    }
    const bool reader = i < kProcs / 2;
    std::vector<UserOp> program;
    for (uint32_t n = 0; n < ops; ++n) {
      if (reader) {
        program.push_back(UserOp::Read(*segno, (n % kPages) * kPageWords));
      } else {
        program.push_back(UserOp::Compute(40));
      }
    }
    (void)kernel.processes().SetProgram(*pid, std::move(program));
    const uint32_t pin = reader ? 0x3u : 0xcu;
    if ((pin & pool) != 0) {
      (void)kernel.processes().SetAffinity(*pid, pin);
    }
  }
  const Cycles before = kernel.clock().now();
  kernel.ctx().smp.AlignAll();
  const Cycles m0 = kernel.ctx().smp.Makespan();
  if (!kernel.processes().RunUntilQuiescent(1000000).ok()) {
    return out;
  }
  out.total = kernel.clock().now() - before;
  out.makespan = kernel.ctx().smp.Makespan() - m0;
  CaptureCounters(kernel.metrics(), &out);
  ReportRun(kernel, &out, "mixed_pinned", mode, cpus, connect_cost, trace, profile,
            /*folded_path=*/nullptr);
  out.ok = true;
  return out;
}

}  // namespace
}  // namespace mks

int main(int argc, char** argv) {
  using namespace mks;
  bool smoke = false;
  bool trace = false;
  bool profile = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      trace = true;  // the smoke run doubles as the tracer's CI exercise
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    }
  }
  const std::vector<uint16_t> cpu_counts =
      smoke ? std::vector<uint16_t>{1, 4} : std::vector<uint16_t>{1, 2, 4};
  const std::vector<Cycles> costs =
      smoke ? std::vector<Cycles>{0, 800} : std::vector<Cycles>{0, 200, 800};
  const uint32_t storm_rounds = smoke ? 1 : 4;
  const uint32_t mix_ops = smoke ? 24 : 120;
  const Cycles max_cost = costs.back();

  std::printf("=== P13: run-queue sharding x stealing x connect cost ===\n\n");
  // verdict inputs: the 4-CPU max-cost rows of each workload.
  Cycles storm_global_4 = 0, storm_steal_4 = 0;
  double mixed_global_speedup = 0, mixed_steal_speedup = 0;
  for (const char* workload : {"fault_storm", "mixed_pinned"}) {
    const bool storm = std::strcmp(workload, "fault_storm") == 0;
    std::printf("%s:\n%15s %5s %6s %12s %12s %9s %8s %10s %10s\n", workload, "mode", "cpus",
                "cost", "makespan", "total", "speedup", "steals", "transfers", "migrations");
    for (Cycles cost : costs) {
      for (const Mode& mode : kModes) {
        Cycles m1 = 0;
        for (uint16_t cpus : cpu_counts) {
          const bool heaviest = storm && mode.steal && cpus == 4 && cost == max_cost;
          const bool want_export = trace && heaviest;
          const bool want_folded = profile && heaviest;
          const RqResult r =
              storm ? RunStorm(mode, cpus, cost, storm_rounds, trace, profile,
                               want_export ? "bench_perf_runqueue.trace.json" : nullptr,
                               want_folded ? "bench_perf_runqueue.prof.folded" : nullptr)
                    : RunMixed(mode, cpus, cost, mix_ops, trace, profile);
          if (!r.ok) {
            std::fprintf(stderr, "run failed (%s, %s, %u cpus, cost %llu)\n", workload,
                         mode.name, cpus, (unsigned long long)cost);
            return 1;
          }
          if (cpus == 1) {
            m1 = r.makespan;
          }
          const double speedup = static_cast<double>(m1) / r.makespan;
          const uint64_t migrations = r.vp_migrations + r.proc_migrations;
          std::printf("%15s %5u %6llu %12llu %12llu %8.2fx %8llu %10llu %10llu\n", mode.name,
                      cpus, (unsigned long long)cost, (unsigned long long)r.makespan,
                      (unsigned long long)r.total, speedup, (unsigned long long)r.steals,
                      (unsigned long long)(r.transfers + r.list_transfers),
                      (unsigned long long)migrations);
          JsonLine line("runqueue");
          line.Field("workload", workload)
              .Field("mode", mode.name)
              .Field("cpus", uint64_t{cpus})
              .Field("connect_cost", uint64_t{cost})
              .Field("makespan", r.makespan)
              .Field("total_cycles", r.total)
              .Field("speedup_vs_1cpu", speedup)
              .Field("steals", r.steals)
              .Field("queue_transfers", r.transfers)
              .Field("queue_lock_spin_cycles", r.rq_lock_spin_cycles)
              .Field("list_transfers", r.list_transfers)
              .Field("list_lock_spin_cycles", r.list_lock_spin_cycles)
              .Field("connect_signals", r.connect_signals)
              .Field("vp_migrations", r.vp_migrations)
              .Field("proc_migrations", r.proc_migrations);
          if (trace) {
            line.Field("trace_dropped", r.trace_dropped);
          }
          EmitJson(line);
          if (cpus == 4 && cost == max_cost) {
            if (storm && std::strcmp(mode.name, "global") == 0) {
              storm_global_4 = r.makespan;
            }
            if (storm && mode.steal) {
              storm_steal_4 = r.makespan;
            }
            if (!storm && std::strcmp(mode.name, "global") == 0) {
              mixed_global_speedup = speedup;
            }
            if (!storm && mode.steal) {
              mixed_steal_speedup = speedup;
            }
          }
        }
      }
    }
    std::printf("\n");
  }

  if (smoke) {
    std::printf("smoke run complete\n");
    return 0;
  }
  const bool storm_wins = storm_steal_4 != 0 && storm_steal_4 < storm_global_4;
  const bool mixed_wins = mixed_steal_speedup > mixed_global_speedup;
  std::printf("4-CPU fault storm, cost %llu: sharded+steal makespan %llu < global %llu: %s\n",
              (unsigned long long)max_cost, (unsigned long long)storm_steal_4,
              (unsigned long long)storm_global_4, storm_wins ? "yes" : "NO");
  std::printf("4-CPU mixed_pinned, cost %llu: sharded+steal speedup %.2fx > global %.2fx: %s\n",
              (unsigned long long)max_cost, mixed_steal_speedup, mixed_global_speedup,
              mixed_wins ? "yes" : "NO");
  std::printf("\nsharded dispatch keeps scheduler traffic off the interconnect the global\n"
              "ready list saturates -> %s\n",
              storm_wins && mixed_wins ? "REPRODUCED" : "MISMATCH");
  return storm_wins && mixed_wins ? 0 : 1;
}
