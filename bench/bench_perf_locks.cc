// P15 — the scalable-lock suite: measured collapse curves for the
// Mellor-Crummey & Scott progression (test-and-set -> ticket -> Anderson
// array -> MCS queue) on the two most lock-bound workloads in the repo.
//
// Who gets the lock next never changes across policies — the serialized
// virtual-time simulation grants in a fixed total order — so every row runs
// the *identical schedule* and the curves differ only by the interconnect
// traffic a contended handoff generates:
//
//   tas      — the traffic-blind model of P11/P13: waiting burns the gap,
//              line bouncing is free.  Upper bound for the other curves.
//   ticket   — every release invalidates the shared now_serving line in
//              every waiter's cache: a waiter that sat through k handoffs
//              pays k line transfers (the O(waiters) broadcast).
//   anderson — per-waiter spin slots in a static array: one line transfer
//              per handoff, however deep the queue.  Array sized to the
//              pool; over-subscription aborts loudly.
//   mcs      — per-waiter queue nodes: the same O(1) handoff charge with no
//              array bound.
//
// Two workloads:
//   fault_storm  — P11's baseline fault storm scaled to the pool (16
//                  processes x 12 pages > 64 frames, every touch faults and
//                  serializes behind the supervisor's one global lock);
//   mixed_pinned — P13's dispatch-rate-bound kernel mix (quantum 2, four
//                  paged readers pinned to CPUs {0,1}, four compute
//                  processes pinned to {2,3}) on the legacy global ready
//                  list at connect cost 800, so every quantum bounces and
//                  locks the one list line.
//
// The headline number is the 16-CPU separation: ticket's per-waiter
// broadcast grows with the pool while Anderson/MCS stay at one transfer per
// handoff, so the queue locks must sustain strictly higher speedup than the
// ticket lock.  A bit-identical double-run self-check guards determinism.
//
// Usage: bench_perf_locks [--smoke]
//   --smoke: cpus {1,4}, one storm round, tiny mix; skips the 16-CPU
//            verdict but keeps the double-run self-check; always exits 0.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/supervisor.h"
#include "src/fs/path_walker.h"
#include "src/kernel/kernel.h"

namespace mks {
namespace {

constexpr LockPolicy kPolicies[] = {LockPolicy::kTestAndSet, LockPolicy::kTicket,
                                    LockPolicy::kAnderson, LockPolicy::kMcs};

struct LockResult {
  Cycles total = 0;
  Cycles makespan = 0;
  uint64_t acquisitions = 0;
  uint64_t contended = 0;
  Cycles spin_cycles = 0;
  uint64_t handoffs = 0;
  Cycles handoff_cycles = 0;
  uint64_t max_queue_depth = 0;
  bool ok = false;

  bool BitIdentical(const LockResult& other) const {
    return total == other.total && makespan == other.makespan &&
           acquisitions == other.acquisitions && contended == other.contended &&
           spin_cycles == other.spin_cycles && handoffs == other.handoffs &&
           handoff_cycles == other.handoff_cycles &&
           max_queue_depth == other.max_queue_depth;
  }
};

// P11's fault storm on the baseline supervisor, scaled so a 16-CPU pool has
// a process per CPU: every read misses (working sets sum to 3x the frame
// pool) and serializes behind the global lock under the selected policy.
LockResult RunStorm(LockPolicy policy, uint16_t cpus, uint32_t rounds) {
  LockResult out;
  constexpr uint32_t kProcs = 16;
  constexpr uint32_t kPages = 12;
  BaselineConfig config;
  config.memory_frames = 64;
  config.records_per_pack = 8192;
  config.cpu_count = cpus;
  config.lock_policy = policy;
  config.lock_transfer_cost = 400;
  MonolithicSupervisor sup{config};
  if (!sup.Boot().ok()) {
    return out;
  }
  using Op = MonolithicSupervisor::BaselineOp;
  for (uint32_t i = 0; i < kProcs; ++i) {
    auto pid = sup.CreateProcess();
    auto uid = sup.CreatePath(">work>p" + std::to_string(i));
    if (!pid.ok() || !uid.ok()) {
      return out;
    }
    for (uint32_t p = 0; p < kPages; ++p) {
      (void)sup.Write(*uid, p * kPageWords, p + 1);
    }
    std::vector<Op> program;
    for (uint32_t r = 0; r < rounds; ++r) {
      for (uint32_t p = 0; p < kPages; ++p) {
        program.push_back(Op{Op::Kind::kRead, *uid, p * kPageWords, 0, 0});
      }
    }
    (void)sup.SetProgram(*pid, std::move(program));
  }
  const Cycles before = sup.clock().now();
  sup.AlignCpus();
  const Cycles m0 = sup.Makespan();
  if (!sup.RunUntilQuiescent(1000000).ok()) {
    return out;
  }
  out.total = sup.clock().now() - before;
  out.makespan = sup.Makespan() - m0;
  out.acquisitions = sup.global_lock_acquisitions();
  out.contended = sup.global_lock_contended();
  out.spin_cycles = sup.global_lock_spin_cycles();
  out.handoffs = sup.global_lock_handoffs();
  out.handoff_cycles = sup.global_lock_handoff_cycles();
  out.max_queue_depth = sup.global_lock_max_queue_depth();
  out.ok = true;
  return out;
}

// P13's mixed pinned workload on the kernel's legacy global ready list:
// quantum 2 makes dispatch the bottleneck, and at connect cost 800 every
// dispatch locks and bounces the one list line under the selected policy.
LockResult RunMixed(LockPolicy policy, uint16_t cpus, uint32_t ops) {
  LockResult out;
  constexpr uint32_t kProcs = 8;
  constexpr uint32_t kPages = 16;
  KernelConfig config;
  config.memory_frames = 256;
  config.records_per_pack = 8192;
  config.cpu_count = cpus;
  config.vp_count = 6;
  config.connect_cost = 800;
  config.lock_policy = policy;
  Kernel kernel{ArmWatchdog(config)};
  if (!kernel.Boot().ok()) {
    return out;
  }
  kernel.processes().set_quantum(2);
  Subject user{Principal{"Bench", "Proj"}, Label::SystemLow(), 4};
  PathWalker walker(&kernel.gates());
  const Acl acl = BenchWorldAcl();
  const uint32_t pool = cpus >= 32 ? ~0u : ((1u << cpus) - 1);
  for (uint32_t i = 0; i < kProcs; ++i) {
    auto pid = kernel.processes().CreateProcess(user);
    if (!pid.ok()) {
      return out;
    }
    ProcContext* ctx = kernel.processes().Context(*pid);
    auto entry =
        walker.CreateSegment(*ctx, ">work>m" + std::to_string(i), acl, Label::SystemLow());
    if (!entry.ok()) {
      return out;
    }
    auto segno = kernel.gates().Initiate(*ctx, *entry);
    if (!segno.ok()) {
      return out;
    }
    for (uint32_t p = 0; p < kPages; ++p) {
      (void)kernel.gates().Write(*ctx, *segno, p * kPageWords, p + 1);
    }
    const bool reader = i < kProcs / 2;
    std::vector<UserOp> program;
    for (uint32_t n = 0; n < ops; ++n) {
      if (reader) {
        program.push_back(UserOp::Read(*segno, (n % kPages) * kPageWords));
      } else {
        program.push_back(UserOp::Compute(40));
      }
    }
    (void)kernel.processes().SetProgram(*pid, std::move(program));
    const uint32_t pin = reader ? 0x3u : 0xcu;
    if ((pin & pool) != 0) {
      (void)kernel.processes().SetAffinity(*pid, pin);
    }
  }
  const Cycles before = kernel.clock().now();
  kernel.ctx().smp.AlignAll();
  const Cycles m0 = kernel.ctx().smp.Makespan();
  if (!kernel.processes().RunUntilQuiescent(1000000).ok()) {
    return out;
  }
  out.total = kernel.clock().now() - before;
  out.makespan = kernel.ctx().smp.Makespan() - m0;
  const SimSpinLock& lock = kernel.processes().list_lock();
  out.acquisitions = lock.acquisitions();
  out.contended = lock.contended();
  out.spin_cycles = lock.total_spin();
  out.handoffs = lock.handoffs();
  out.handoff_cycles = lock.handoff_cycles();
  out.max_queue_depth = lock.max_queue_depth();
  out.ok = true;
  return out;
}

}  // namespace
}  // namespace mks

int main(int argc, char** argv) {
  using namespace mks;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const std::vector<uint16_t> cpu_counts =
      smoke ? std::vector<uint16_t>{1, 4} : std::vector<uint16_t>{1, 2, 4, 8, 16};
  const uint32_t storm_rounds = smoke ? 1 : 2;
  const uint32_t mix_ops = smoke ? 24 : 120;
  const uint16_t max_cpus = cpu_counts.back();

  std::printf("=== P15: lock-policy collapse curves (tas / ticket / anderson / mcs) ===\n\n");
  // verdict inputs: speedup per policy at the deepest pool, per workload.
  double ticket_speedup[2] = {0, 0};
  double anderson_speedup[2] = {0, 0};
  double mcs_speedup[2] = {0, 0};
  for (int wi = 0; wi < 2; ++wi) {
    const bool storm = wi == 0;
    const char* workload = storm ? "fault_storm" : "mixed_pinned";
    std::printf("%s (%s):\n%10s %5s %12s %12s %9s %11s %14s %7s\n", workload,
                storm ? "baseline global lock" : "kernel global ready list", "policy", "cpus",
                "makespan", "total", "speedup", "spin share", "handoff cyc", "depth");
    for (LockPolicy policy : kPolicies) {
      Cycles m1 = 0;
      for (uint16_t cpus : cpu_counts) {
        const LockResult r = storm ? RunStorm(policy, cpus, storm_rounds)
                                   : RunMixed(policy, cpus, mix_ops);
        if (!r.ok) {
          std::fprintf(stderr, "run failed (%s, %s, %u cpus)\n", workload,
                       LockPolicyName(policy), cpus);
          return 1;
        }
        if (cpus == 1) {
          m1 = r.makespan;
        }
        const double speedup = static_cast<double>(m1) / r.makespan;
        const double spin_share =
            r.total == 0 ? 0 : static_cast<double>(r.spin_cycles) / r.total;
        std::printf("%10s %5u %12llu %12llu %8.2fx %10.1f%% %14llu %7llu\n",
                    LockPolicyName(policy), cpus, (unsigned long long)r.makespan,
                    (unsigned long long)r.total, speedup, spin_share * 100,
                    (unsigned long long)r.handoff_cycles,
                    (unsigned long long)r.max_queue_depth);
        JsonLine line("locks");
        line.Field("workload", workload)
            .Field("policy", LockPolicyName(policy))
            .Field("cpus", uint64_t{cpus})
            .Field("makespan", r.makespan)
            .Field("total_cycles", r.total)
            .Field("speedup_vs_1cpu", speedup)
            .Field("lock_acquisitions", r.acquisitions)
            .Field("lock_contended", r.contended)
            .Field("lock_spin_cycles", r.spin_cycles)
            .Field("spin_share", spin_share)
            .Field("lock_handoffs", r.handoffs)
            .Field("lock_handoff_cycles", r.handoff_cycles)
            .Field("lock_max_queue_depth", r.max_queue_depth);
        EmitJson(line);
        if (cpus == max_cpus) {
          if (policy == LockPolicy::kTicket) {
            ticket_speedup[wi] = speedup;
          } else if (policy == LockPolicy::kAnderson) {
            anderson_speedup[wi] = speedup;
          } else if (policy == LockPolicy::kMcs) {
            mcs_speedup[wi] = speedup;
          }
        }
      }
    }
    std::printf("\n");
  }

  // Determinism self-check: the heaviest configuration of each workload,
  // twice, must match on every counter bit-for-bit.
  {
    const LockResult a = RunStorm(LockPolicy::kMcs, max_cpus, storm_rounds);
    const LockResult b = RunStorm(LockPolicy::kMcs, max_cpus, storm_rounds);
    const LockResult c = RunMixed(LockPolicy::kAnderson, max_cpus, mix_ops);
    const LockResult d = RunMixed(LockPolicy::kAnderson, max_cpus, mix_ops);
    if (!a.ok || !b.ok || !c.ok || !d.ok || !a.BitIdentical(b) || !c.BitIdentical(d)) {
      std::fprintf(stderr, "DETERMINISM FAILURE: double-run results differ\n");
      return 1;
    }
    std::printf("double-run self-check: bit-identical (storm/mcs and mixed/anderson at %u CPUs)\n",
                max_cpus);
  }

  if (smoke) {
    std::printf("smoke run complete\n");
    return 0;
  }
  bool separated = true;
  for (int wi = 0; wi < 2; ++wi) {
    const bool ok =
        anderson_speedup[wi] > ticket_speedup[wi] && mcs_speedup[wi] > ticket_speedup[wi];
    std::printf("%s at %u CPUs: anderson %.4fx / mcs %.4fx vs ticket %.4fx: %s\n",
                wi == 0 ? "fault_storm" : "mixed_pinned", max_cpus, anderson_speedup[wi],
                mcs_speedup[wi], ticket_speedup[wi], ok ? "queue locks win" : "NO");
    separated = separated && ok;
  }
  std::printf("\nper-waiter spin lines make a contended handoff one line transfer instead\n"
              "of a broadcast to every waiter -> %s\n",
              separated ? "REPRODUCED" : "MISMATCH");
  return separated ? 0 : 1;
}
