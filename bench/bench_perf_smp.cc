// P11 — the multiprocessor ablation.  The 6180 was a multiprocessor, and the
// paper's hardware additions (descriptor lock bit, lock-address register,
// wakeup-waiting switch) only earn their keep when processors race on
// descriptors and locks.  This bench sweeps the simulated CPU pool over the
// fault-storm and scheduler-mix workloads for both supervisors.
//
// Two numbers per configuration:
//   total_cycles — serialized work (the global clock delta; what one
//                  processor would take);
//   makespan     — simulated-parallel completion time (the furthest-ahead
//                  per-CPU local clock).
//
// The kernel has no global page-table lock — colliding references park via
// the lock-address register — so its quanta distribute across the pool and
// makespan falls toward total/N.  The baseline serializes every fault behind
// the global lock: waiting CPUs burn the gap as charged spin, the spin share
// of total work grows with the pool, and makespan barely moves — the
// lock-contention collapse the paper predicts.
//
// Usage: bench_perf_smp [--smoke] [--trace] [--ticket] [--profile]
//   --smoke: one tiny iteration, for CI under sanitizers
//   --trace: enable the virtual-time tracer in both supervisors; each traced
//            run emits an `smp_hist` JSON line with p50/p95/p99 of every
//            populated histogram, result lines gain `trace_dropped`, and the
//            4-CPU kernel fault storm is exported as bench_perf_smp.trace.json
//            (Chrome trace-event format, loadable in Perfetto)
//   --profile: enable the cycle-accounting profiler in the kernel runs; each
//            run prints a top-domain breakdown table, emits an `smp_prof`
//            JSON line, and the 4-CPU fault storm's domain trees are exported
//            as bench_perf_smp.prof.folded (flamegraph.pl collapsed stacks)
//   --ticket: additionally run the baseline with the ticket-ordered global
//            lock (extra base-tkt rows; the default rows are untouched).
//            FIFO handoff adds a mandatory line transfer per contended
//            release, so the collapse curve shifts up, not down — fairness
//            does not buy back the serialization.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/supervisor.h"
#include "src/fs/path_walker.h"
#include "src/kernel/kernel.h"

namespace mks {
namespace {

struct Workload {
  const char* name;
  uint32_t processes;
  uint32_t pages_per_process;
  uint32_t rounds;      // fault storm: sweeps over the pages
  uint32_t mix_ops;     // scheduler mix: ops per process (0: pure storm)
};

struct SmpResult {
  Cycles total = 0;
  Cycles makespan = 0;
  uint64_t lock_acquisitions = 0;
  uint64_t lock_contended = 0;
  uint64_t lock_spin = 0;
  uint64_t lock_handoffs = 0;
  uint64_t lock_handoff_cycles = 0;
  uint64_t lock_max_spin = 0;
  uint64_t locked_waits = 0;
  uint64_t trace_dropped = 0;  // ring records lost; reported when tracing
  bool ok = false;
};

// One `smp_hist` line per traced run carries p50/p95/p99 of EVERY histogram
// with observations, emitted while the run's Metrics is still alive.
void EmitHistLine(const Metrics& metrics, const Workload& w, const char* supervisor,
                  uint16_t cpus) {
  JsonLine line("smp_hist");
  line.Field("workload", w.name)
      .Field("supervisor", supervisor)
      .Field("cpus", uint64_t{cpus});
  EmitJson(FieldAllHistograms(line, metrics));
}

// Builds one process's op list.  The fault storm is a cyclic sweep of the
// process's pages (working sets sized so the sum exceeds memory: every touch
// faults); the mix interleaves compute with paged writes like bench P5.
template <typename Op, typename MakeCompute, typename MakeRead, typename MakeWrite>
std::vector<Op> BuildProgram(const Workload& w, MakeCompute compute, MakeRead read,
                             MakeWrite write) {
  std::vector<Op> program;
  if (w.mix_ops == 0) {
    for (uint32_t r = 0; r < w.rounds; ++r) {
      for (uint32_t p = 0; p < w.pages_per_process; ++p) {
        program.push_back(read(p * kPageWords));
      }
    }
  } else {
    for (uint32_t n = 0; n < w.mix_ops; ++n) {
      if (n % 3 == 0) {
        program.push_back(compute(40));
      } else {
        program.push_back(write((n % w.pages_per_process) * kPageWords + n, n));
      }
    }
  }
  return program;
}

SmpResult RunBaseline(const Workload& w, uint16_t cpus, bool trace, bool ticket = false) {
  SmpResult out;
  BaselineConfig config;
  config.memory_frames = w.mix_ops == 0 ? 64 : 256;
  config.records_per_pack = 8192;
  config.cpu_count = cpus;
  config.trace.enabled = trace;
  config.ticket_lock = ticket;
  MonolithicSupervisor sup{config};
  if (!sup.Boot().ok()) {
    return out;
  }
  using Op = MonolithicSupervisor::BaselineOp;
  for (uint32_t i = 0; i < w.processes; ++i) {
    auto pid = sup.CreateProcess();
    auto uid = sup.CreatePath(">work>p" + std::to_string(i));
    if (!pid.ok() || !uid.ok()) {
      return out;
    }
    auto program = BuildProgram<Op>(
        w, [](Cycles c) { return Op{Op::Kind::kCompute, {}, 0, 0, c}; },
        [&](uint32_t off) { return Op{Op::Kind::kRead, *uid, off, 0, 0}; },
        [&](uint32_t off, Word v) { return Op{Op::Kind::kWrite, *uid, off, v, 0}; });
    // Populate the pages so storm reads hit allocated records.
    for (uint32_t p = 0; p < w.pages_per_process; ++p) {
      (void)sup.Write(*uid, p * kPageWords, p + 1);
    }
    (void)sup.SetProgram(*pid, std::move(program));
  }
  const Cycles before = sup.clock().now();
  sup.AlignCpus();  // the measured region starts with the pool synchronized
  const Cycles m0 = sup.Makespan();
  if (!sup.RunUntilQuiescent(1000000).ok()) {
    return out;
  }
  out.total = sup.clock().now() - before;
  out.makespan = sup.Makespan() - m0;
  out.lock_acquisitions = sup.global_lock_acquisitions();
  out.lock_contended = sup.global_lock_contended();
  out.lock_spin = sup.global_lock_spin_cycles();
  out.lock_handoffs = sup.global_lock_handoffs();
  out.lock_handoff_cycles = sup.global_lock_handoff_cycles();
  out.lock_max_spin = sup.global_lock_max_spin();
  if (trace) {
    out.trace_dropped = TraceDroppedTotal(sup.trace());
    EmitHistLine(sup.metrics(), w, ticket ? "base-tkt" : "baseline", cpus);
  }
  out.ok = true;
  return out;
}

SmpResult RunKernel(const Workload& w, uint16_t cpus, bool trace, bool profile,
                    const char* trace_path = nullptr) {
  SmpResult out;
  KernelConfig config;
  config.memory_frames = w.mix_ops == 0 ? 64 : 256;
  config.records_per_pack = 8192;
  config.cpu_count = cpus;
  config.vp_count = 6;
  config.trace.enabled = trace;
  config.profile.enabled = profile;
  config.profile.stall_rounds = kBenchStallRounds;
  Kernel kernel{config};
  if (!kernel.Boot().ok()) {
    return out;
  }
  Subject user{Principal{"Bench", "Proj"}, Label::SystemLow(), 4};
  PathWalker walker(&kernel.gates());
  const Acl acl = BenchWorldAcl();
  for (uint32_t i = 0; i < w.processes; ++i) {
    auto pid = kernel.processes().CreateProcess(user);
    if (!pid.ok()) {
      return out;
    }
    ProcContext* ctx = kernel.processes().Context(*pid);
    auto entry =
        walker.CreateSegment(*ctx, ">work>p" + std::to_string(i), acl, Label::SystemLow());
    if (!entry.ok()) {
      return out;
    }
    auto segno = kernel.gates().Initiate(*ctx, *entry);
    if (!segno.ok()) {
      return out;
    }
    for (uint32_t p = 0; p < w.pages_per_process; ++p) {
      (void)kernel.gates().Write(*ctx, *segno, p * kPageWords, p + 1);
    }
    auto program = BuildProgram<UserOp>(
        w, [](Cycles c) { return UserOp::Compute(c); },
        [&](uint32_t off) { return UserOp::Read(*segno, off); },
        [&](uint32_t off, Word v) { return UserOp::Write(*segno, off, v); });
    (void)kernel.processes().SetProgram(*pid, std::move(program));
  }
  const Cycles before = kernel.clock().now();
  kernel.ctx().smp.AlignAll();  // measured region starts synchronized
  const Cycles m0 = kernel.ctx().smp.Makespan();
  if (!kernel.processes().RunUntilQuiescent(1000000).ok()) {
    return out;
  }
  out.total = kernel.clock().now() - before;
  out.makespan = kernel.ctx().smp.Makespan() - m0;
  out.locked_waits = kernel.metrics().Get("gates.locked_descriptor_waits");
  if (trace) {
    out.trace_dropped = TraceDroppedTotal(kernel.ctx().trace);
    EmitHistLine(kernel.metrics(), w, "kernel", cpus);
  }
  if (trace && trace_path != nullptr) {
    if (!TraceExporter::WriteFile(kernel.ctx().trace, trace_path)) {
      std::fprintf(stderr, "trace export failed: %s\n", trace_path);
    } else {
      std::printf("trace written: %s\n", trace_path);
    }
  }
  if (profile) {
    char title[96];
    std::snprintf(title, sizeof title, "kernel %s @ %u cpus", w.name, cpus);
    PrintProfileTable(kernel.ctx().prof, title);
    JsonLine pline("smp_prof");
    pline.Field("workload", w.name).Field("cpus", uint64_t{cpus});
    EmitJson(FieldProfDomains(pline, kernel.ctx().prof));
    // One flamegraph export, from the most contended configuration.
    if (w.mix_ops == 0 && cpus == 4) {
      WriteFolded(kernel.ctx().prof, "bench_perf_smp.prof.folded");
    }
  }
  out.ok = true;
  return out;
}

}  // namespace
}  // namespace mks

int main(int argc, char** argv) {
  using namespace mks;
  bool smoke = false;
  bool trace = false;
  bool ticket = false;
  bool profile = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--ticket") == 0) {
      ticket = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    }
  }
  const std::vector<uint16_t> cpu_counts =
      smoke ? std::vector<uint16_t>{1, 4} : std::vector<uint16_t>{1, 2, 4, 8};
  const Workload workloads[] = {
      // 4 x 24 pages = 96 > 64 frames: every touch faults.
      {"fault_storm", 4, 24, smoke ? 1u : 4u, 0},
      {"scheduler_mix", 8, 6, 0, smoke ? 24u : 120u},
  };

  std::printf("=== P11: CPU-pool sweep (deterministic interleaving) ===\n\n");
  bool kernel_scales = true;
  bool baseline_collapses = true;
  for (const Workload& w : workloads) {
    std::printf("%s:\n%6s %12s %12s %10s %14s %12s\n", w.name, "cpus", "makespan", "total",
                "speedup", "lock spin", "spin share");
    Cycles kernel_m1 = 0, baseline_m1 = 0, ticket_m1 = 0;
    double baseline_prev_share = -1.0;
    for (uint16_t cpus : cpu_counts) {
      const SmpResult b = RunBaseline(w, cpus, trace);
      // Export the Chrome trace of the most contended kernel configuration:
      // the 4-CPU fault storm.
      const bool want_export = trace && w.mix_ops == 0 && cpus == 4;
      const SmpResult k = RunKernel(w, cpus, trace, profile,
                                    want_export ? "bench_perf_smp.trace.json" : nullptr);
      if (!b.ok || !k.ok) {
        std::fprintf(stderr, "run failed (%s, %u cpus)\n", w.name, cpus);
        return 1;
      }
      if (cpus == 1) {
        kernel_m1 = k.makespan;
        baseline_m1 = b.makespan;
      }
      const double b_speedup = static_cast<double>(baseline_m1) / b.makespan;
      const double k_speedup = static_cast<double>(kernel_m1) / k.makespan;
      const double spin_share = b.total == 0 ? 0 : static_cast<double>(b.lock_spin) / b.total;
      std::printf("  baseline %3u %12llu %12llu %9.2fx %14llu %11.1f%%\n", cpus,
                  (unsigned long long)b.makespan, (unsigned long long)b.total, b_speedup,
                  (unsigned long long)b.lock_spin, spin_share * 100);
      std::printf("  kernel   %3u %12llu %12llu %9.2fx %14s %12s\n", cpus,
                  (unsigned long long)k.makespan, (unsigned long long)k.total, k_speedup, "-",
                  "-");
      JsonLine bline("smp");
      bline.Field("workload", w.name)
          .Field("supervisor", "baseline")
          .Field("cpus", uint64_t{cpus})
          .Field("makespan", b.makespan)
          .Field("total_cycles", b.total)
          .Field("speedup_vs_1cpu", b_speedup)
          .Field("lock_acquisitions", b.lock_acquisitions)
          .Field("lock_contended", b.lock_contended)
          .Field("lock_spin_cycles", b.lock_spin)
          .Field("spin_share", spin_share);
      if (trace) {
        bline.Field("trace_dropped", b.trace_dropped);
      }
      EmitJson(bline);
      JsonLine kline("smp");
      kline.Field("workload", w.name)
          .Field("supervisor", "kernel")
          .Field("cpus", uint64_t{cpus})
          .Field("makespan", k.makespan)
          .Field("total_cycles", k.total)
          .Field("speedup_vs_1cpu", k_speedup)
          .Field("locked_descriptor_waits", k.locked_waits);
      if (trace) {
        kline.Field("trace_dropped", k.trace_dropped);
      }
      EmitJson(kline);
      if (ticket) {
        const SmpResult t = RunBaseline(w, cpus, trace, /*ticket=*/true);
        if (!t.ok) {
          std::fprintf(stderr, "ticket run failed (%s, %u cpus)\n", w.name, cpus);
          return 1;
        }
        if (cpus == 1) {
          ticket_m1 = t.makespan;
        }
        const double t_speedup = static_cast<double>(ticket_m1) / t.makespan;
        const double t_share = t.total == 0 ? 0 : static_cast<double>(t.lock_spin) / t.total;
        std::printf("  base-tkt %3u %12llu %12llu %9.2fx %14llu %11.1f%%\n", cpus,
                    (unsigned long long)t.makespan, (unsigned long long)t.total, t_speedup,
                    (unsigned long long)t.lock_spin, t_share * 100);
        JsonLine tline("smp");
        tline.Field("workload", w.name)
            .Field("supervisor", "baseline")
            .Field("lock", "ticket")
            .Field("cpus", uint64_t{cpus})
            .Field("makespan", t.makespan)
            .Field("total_cycles", t.total)
            .Field("speedup_vs_1cpu", t_speedup)
            .Field("lock_acquisitions", t.lock_acquisitions)
            .Field("lock_contended", t.lock_contended)
            .Field("lock_spin_cycles", t.lock_spin)
            .Field("spin_share", t_share)
            .Field("lock_handoffs", t.lock_handoffs)
            .Field("lock_handoff_cycles", t.lock_handoff_cycles)
            .Field("lock_max_spin", t.lock_max_spin);
        if (trace) {
          tline.Field("trace_dropped", t.trace_dropped);
        }
        EmitJson(tline);
      }
      if (cpus == 4 && k.makespan >= kernel_m1) {
        kernel_scales = false;  // the acceptance shape: 4 CPUs beat 1
      }
      // The collapse claim is about the lock-bound workload; the mix is the
      // contrast case (mostly compute, the lock is incidental).
      if (w.mix_ops == 0 && cpus > 1) {
        if (spin_share <= baseline_prev_share) {
          baseline_collapses = false;  // spin share must grow with the pool
        }
        baseline_prev_share = spin_share;
      }
    }
    std::printf("\n");
  }

  if (smoke) {
    std::printf("smoke run complete\n");
    return 0;
  }
  const bool shape = kernel_scales && baseline_collapses;
  std::printf("kernel makespan improves at 4 CPUs: %s\n", kernel_scales ? "yes" : "NO");
  std::printf("baseline spin share grows with CPU count: %s\n",
              baseline_collapses ? "yes" : "NO");
  std::printf("\npaper: the global page-table lock is the multiprocessor bottleneck the\n"
              "descriptor lock bit removes -> %s\n", shape ? "REPRODUCED" : "MISMATCH");
  return shape ? 0 : 1;
}
