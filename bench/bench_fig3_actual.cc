// Figure 3 — the ACTUAL dependency structure of the 1973 supervisor, once
// maps, programs, address spaces, and the exception paths (quota walk,
// interpretive retranslation, full-pack handling) are taken into account.
// The bench prints both the declared structure and the structure OBSERVED at
// runtime by driving the monolith through the loop-forming paths.
#include <cstdio>

#include "src/baseline/supervisor.h"

int main() {
  using namespace mks;

  std::printf("=== Figure 3: Actual Dependency Structure in Multics ===\n\n");
  const DependencyGraph declared = MonolithicSupervisor::ActualStructure();
  std::printf("%s\n", declared.ToText().c_str());
  size_t declared_largest = 0;
  for (const auto& scc : declared.Loops()) {
    declared_largest = std::max(declared_largest, scc.size());
    std::printf("declared loop (%zu modules):", scc.size());
    for (ModuleId m : scc) {
      std::printf(" %s", declared.name(m).c_str());
    }
    std::printf("\n");
  }

  // Drive the monolith through page faults, quota walks, a full-pack move,
  // and one-level process dispatch, recording actual inter-module calls.
  BaselineConfig config;
  config.pack_count = 2;
  config.records_per_pack = 28;
  config.retranslate_conflict_rate = 0.05;
  MonolithicSupervisor sup{config};
  if (!sup.Boot().ok()) {
    std::printf("boot failed\n");
    return 1;
  }
  (void)sup.SetQuota(">", 1000);
  auto a = sup.CreatePath(">udd>p>a");
  auto b = sup.CreatePath(">udd>p>b");
  if (!a.ok() || !b.ok()) {
    return 1;
  }
  Status st = Status::Ok();
  for (uint32_t p = 0; p < 24 && st.ok(); ++p) {
    st = sup.Write(*a, p * kPageWords, 1);
    if (st.ok()) {
      st = sup.Write(*b, p * kPageWords, 1);
    }
  }
  auto pid = sup.CreateProcess();
  if (pid.ok()) {
    std::vector<MonolithicSupervisor::BaselineOp> program;
    MonolithicSupervisor::BaselineOp op;
    op.kind = MonolithicSupervisor::BaselineOp::Kind::kRead;
    op.uid = *a;
    program.push_back(op);
    (void)sup.SetProgram(*pid, std::move(program));
    (void)sup.RunUntilQuiescent(1000);
  }

  const DependencyGraph& observed = sup.tracker().observed();
  std::printf("\nOBSERVED runtime call structure:\n%s\n", observed.ToText().c_str());
  size_t observed_largest = 0;
  for (const auto& scc : observed.Loops()) {
    observed_largest = std::max(observed_largest, scc.size());
    std::printf("observed loop (%zu modules):", scc.size());
    for (ModuleId m : scc) {
      std::printf(" %s", observed.name(m).c_str());
    }
    std::printf("\n");
  }

  std::printf("\nfull-pack moves exercised: %llu, quota walk hops: %llu, retranslations: %llu\n",
              (unsigned long long)sup.metrics().Get("baseline.full_pack_moves"),
              (unsigned long long)sup.metrics().Get("baseline.quota_walk_hops"),
              (unsigned long long)sup.metrics().Get("baseline.retranslations"));
  std::printf(
      "\npaper: \"the simple, almost linear structure ... becomes the much less\n"
      "simple structure illustrated in Figure 3.\"\n"
      "largest declared SCC: %zu modules; largest observed SCC: %zu modules -> %s\n",
      declared_largest, observed_largest,
      (declared_largest >= 5 && observed_largest >= 2) ? "REPRODUCED" : "MISMATCH");
  return 0;
}
