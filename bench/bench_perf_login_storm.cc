// P18 — the login storm: parallel session establishment across the CPU pool.
//
// The paper's answering-service extraction was measured at toy scale; the
// ROADMAP's north star is "millions of users".  This bench drives thousands
// of login/logout sessions through the answering service at 1–16 CPUs with
// churn (staggered logout/re-login), and measures what it takes to make
// session establishment scale:
//
//   seed    — the serial seed table (no lock).  Not concurrency-safe, so it
//             runs at 1 CPU only: the per-session reference cost.
//   coarse  — the seed path made safe the minimal way: ONE spin lock held
//             across the whole login/logout transaction.  At 16 CPUs every
//             session serializes behind it; this is the baseline the verdict
//             measures against ("the seed path at scale").
//   sharded — lock-per-shard session and accounting tables (PR 7 lock
//             policies price the handoffs); locks held only for table ops.
//   full    — sharded + per-project home-directory skeleton cache behind a
//             read-mostly lock (PR 8 passive reader-writer) + slab-pooled
//             process slots (KST and state segment reused across sessions) +
//             passive reader-writer on the kernel naming surface.  Passive-rw
//             beats epoch here: after warm-up the mix is read-mostly, and an
//             epoch publish would bill every residual write a full-pool
//             broadcast.
//
// Following the P3 precedent, an unmeasured warm-up pass logs every user in
// and out once before the barrier: home directories exist and (with the slab
// knob) a process slot is parked per user, so the measured storm is what the
// issue asks about — repeat logins at scale, not first-boot directory
// creation.  Tracing is enabled only after warm-up and the instrument
// counters are snapshotted, so histograms and deltas cover exactly the
// measured storm.
//
// Per-phase cycle accounting (auth, process-create, home-dir, accounting)
// rides the always-on phase counters; login latency p50/p95/p99 comes from
// the PR 4 tracer's span histograms; `prof_*` domain attribution from the
// PR 9 profiler under the new `session-setup` domain.
//
// Verdict: full must beat coarse by >= 2x on session throughput at 16 CPUs,
// with a bit-identical double-run self-check.
//
// Usage: bench_perf_login_storm [--smoke] [--profile] [--users N] [--churn N]
//   --smoke: cpus {1,4}, ~8x fewer users; skips the 16-CPU verdict but keeps
//            the double-run self-check; always exits 0.
//   --profile: enable the cycle-accounting profiler; each run prints a
//            top-domain table and emits a `login_storm_prof` JSON line, and
//            the coarse mode at the largest pool exports
//            bench_perf_login_storm.prof.folded.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/answering/service.h"

namespace mks {
namespace {

enum class StormMode : uint8_t { kSeed, kCoarse, kSharded, kFull };

const char* ModeName(StormMode mode) {
  switch (mode) {
    case StormMode::kSeed: return "seed";
    case StormMode::kCoarse: return "coarse";
    case StormMode::kSharded: return "sharded";
    case StormMode::kFull: return "full";
  }
  return "?";
}

constexpr int kProjects = 8;

std::string PersonOf(int u) { return "User" + std::to_string(u); }
std::string ProjectOf(int u) { return "Proj" + std::to_string(u % kProjects); }

struct StormResult {
  Cycles makespan = 0;
  Cycles total = 0;
  uint64_t sessions = 0;
  uint64_t logins = 0;
  uint64_t logouts = 0;
  // Per-phase cycle split (always-on counters in the answering service).
  uint64_t phase_auth = 0;
  uint64_t phase_process = 0;
  uint64_t phase_homedir = 0;
  uint64_t phase_accounting = 0;
  // Contention and reuse instruments.
  uint64_t table_spin_cycles = 0;
  uint64_t slab_reuses = 0;
  uint64_t kst_resets = 0;
  uint64_t skel_hits = 0;
  uint64_t skel_misses = 0;
  // Login-latency percentiles from the tracer's span histogram.
  uint64_t login_p50 = 0;
  uint64_t login_p95 = 0;
  uint64_t login_p99 = 0;
  bool ok = false;

  bool BitIdentical(const StormResult& other) const {
    return makespan == other.makespan && total == other.total && sessions == other.sessions &&
           logins == other.logins && logouts == other.logouts &&
           phase_auth == other.phase_auth && phase_process == other.phase_process &&
           phase_homedir == other.phase_homedir &&
           phase_accounting == other.phase_accounting &&
           table_spin_cycles == other.table_spin_cycles && slab_reuses == other.slab_reuses &&
           kst_resets == other.kst_resets && skel_hits == other.skel_hits &&
           skel_misses == other.skel_misses && login_p50 == other.login_p50 &&
           login_p95 == other.login_p95 && login_p99 == other.login_p99;
  }
};

// Drives the storm: login all users, `churn` staggered logout/re-login
// rounds, then logout all.  Each session operation runs on the
// furthest-behind CPU in its own anchored window, so transactions genuinely
// overlap in virtual time and the session-table guard is what decides
// whether the pool helps.
StormResult RunStorm(StormMode mode, uint16_t cpus, int users, int churn, bool profile = false,
                     const char* folded_path = nullptr) {
  StormResult out;
  KernelConfig config;
  config.cpu_count = cpus;
  // Sized for thousands of live sessions: every session owns a state
  // segment's VTOC entry and every user a home directory.
  config.memory_frames = 1024;
  config.ast_slots = 512;
  config.pack_count = 4;
  config.vtoc_slots_per_pack = 4096;
  config.records_per_pack = 16384;
  config.connect_cost = 400;  // prices lock handoffs and naming broadcasts
  // Tracing starts off and is enabled after the warm-up pass, so the
  // latency histograms hold exactly the measured storm's spans.
  config.profile.enabled = profile;
  config.profile.stall_rounds = kBenchStallRounds;
  if (mode == StormMode::kFull) {
    config.slab_processes = true;
    // Passive reader-writer on the naming surface: the storm's directory
    // walks and KST scans read for free, and the (wave-1-only) directory
    // creations revoke just the tokens remote CPUs actually hold — the
    // right PR 8 policy for a read-mostly-after-warmup mix, where epoch
    // publishes would bill every write a full-pool broadcast.
    config.read_policy = ReadPolicy::kPassiveRw;
  }
  Kernel kernel{config};
  if (!kernel.Boot().ok()) {
    return out;
  }
  KernelContext& kctx = kernel.ctx();

  AnsweringConfig acfg;
  switch (mode) {
    case StormMode::kSeed:
      break;  // the serial seed table
    case StormMode::kCoarse:
      acfg.table_mode = SessionTableMode::kCoarse;
      break;
    case StormMode::kSharded:
    case StormMode::kFull:
      acfg.table_mode = SessionTableMode::kSharded;
      acfg.table_lock_policy = LockPolicy::kMcs;
      acfg.table_line_transfer_cost = config.connect_cost;
      break;
  }
  if (mode == StormMode::kFull) {
    acfg.skeleton_cache = true;
    acfg.cache_lock =
        SharedLockConfig{ReadPolicy::kPassiveRw, config.connect_cost, 0, cpus};
  }
  Authenticator auth(&kernel);
  if (!auth.Init().ok()) {
    return out;
  }
  AnsweringService service(&kernel, &auth, ServiceDomain::kUserDomain, acfg);
  for (int u = 0; u < users; ++u) {
    if (!auth.Enroll(Principal{PersonOf(u), ProjectOf(u)}, "pw" + std::to_string(u),
                     Label(2, 0))
             .ok()) {
      return out;
    }
  }

  std::vector<ProcessId> pid_of(static_cast<size_t>(users));
  // One session operation = one anchored accrual window on the
  // furthest-behind CPU, rooted in the session-setup profiler domain.
  auto drive = [&](auto&& op) -> bool {
    const uint16_t cpu = kctx.smp.NextCpu();
    kctx.current_cpu = cpu;
    kctx.trace.SetCpu(cpu);
    kctx.AnchorWindow();
    Prof::Window window(&kctx.prof, cpu, ProfDomain::kSessionSetup);
    const Cycles t0 = kernel.clock().now();
    if (!op()) {
      return false;
    }
    kctx.smp.Accrue(cpu, kernel.clock().now() - t0);
    return true;
  };
  auto login = [&](int u) {
    auto pid = service.Login(Principal{PersonOf(u), ProjectOf(u)}, "pw" + std::to_string(u),
                             Label(0, 0));
    if (!pid.ok()) {
      return false;
    }
    pid_of[static_cast<size_t>(u)] = *pid;
    return true;
  };
  auto logout = [&](int u) { return service.Logout(pid_of[static_cast<size_t>(u)]).ok(); };

  // Warm-up (unmeasured, untraced, serial): every user's first session
  // creates the home directory, and with the slab knob parks a process slot.
  // Login-all before logout-all so the slab holds one slot per user — the
  // measured storm front then sees the steady state, not a cold pool.
  for (int u = 0; u < users; ++u) {
    if (!login(u)) {
      return out;
    }
  }
  for (int u = 0; u < users; ++u) {
    if (!logout(u)) {
      return out;
    }
  }
  // Measurement starts here: spans recorded from now on, counters read as
  // deltas against this snapshot.
  TraceConfig trace_on;
  trace_on.enabled = true;
  kctx.trace.Enable(cpus, trace_on);
  const Metrics& metrics = kernel.metrics();
  struct Snap {
    uint64_t logins, logouts, phase_auth, phase_process, phase_homedir, phase_accounting,
        table_spin, slab_reuses, kst_resets, skel_hits, skel_misses;
  };
  const Snap warm{metrics.Get("answering.logins"),
                  metrics.Get("answering.logouts"),
                  metrics.Get("answering.phase_auth_cycles"),
                  metrics.Get("answering.phase_process_cycles"),
                  metrics.Get("answering.phase_homedir_cycles"),
                  metrics.Get("answering.phase_accounting_cycles"),
                  metrics.Get("answering.session_lock_spin_cycles"),
                  metrics.Get("uproc.slab_reuses"),
                  metrics.Get("ksm.kst_resets"),
                  metrics.Get("answering.skel_hits"),
                  metrics.Get("answering.skel_misses")};

  // Barrier into the measured region (see bench_perf_name_storm): local
  // clocks aligned and advanced to the global clock, so boot, enrollment,
  // and warm-up never read as contention against the measured windows.
  kctx.smp.AlignAll();
  if (kernel.clock().now() > kctx.smp.Makespan()) {
    kctx.smp.AdvanceAll(kernel.clock().now() - kctx.smp.Makespan());
  }
  const Cycles m0 = kctx.smp.Makespan();
  const Cycles before = kernel.clock().now();

  // Phase 1: the storm front — every user logs in.
  for (int u = 0; u < users; ++u) {
    if (!drive([&] { return login(u); })) {
      return out;
    }
  }
  // Phase 2: churn — staggered logout/re-login waves.  The stride spreads
  // each wave across the user population instead of replaying login order,
  // so re-logins from different projects interleave across the pool.
  const int stride = users >= 7 ? 7 : 1;
  for (int round = 0; round < churn; ++round) {
    for (int k = 0; k < users; ++k) {
      const int u = (k * stride + round) % users;
      if (!drive([&] { return logout(u); }) || !drive([&] { return login(u); })) {
        return out;
      }
    }
  }
  // Phase 3: drain — every user logs out.
  for (int u = 0; u < users; ++u) {
    if (!drive([&] { return logout(u); })) {
      return out;
    }
  }

  out.total = kernel.clock().now() - before;
  out.makespan = kctx.smp.Makespan() - m0;
  out.sessions = static_cast<uint64_t>(users) * (1 + static_cast<uint64_t>(churn));
  out.logins = metrics.Get("answering.logins") - warm.logins;
  out.logouts = metrics.Get("answering.logouts") - warm.logouts;
  out.phase_auth = metrics.Get("answering.phase_auth_cycles") - warm.phase_auth;
  out.phase_process = metrics.Get("answering.phase_process_cycles") - warm.phase_process;
  out.phase_homedir = metrics.Get("answering.phase_homedir_cycles") - warm.phase_homedir;
  out.phase_accounting =
      metrics.Get("answering.phase_accounting_cycles") - warm.phase_accounting;
  out.table_spin_cycles = metrics.Get("answering.session_lock_spin_cycles") - warm.table_spin;
  out.slab_reuses = metrics.Get("uproc.slab_reuses") - warm.slab_reuses;
  out.kst_resets = metrics.Get("ksm.kst_resets") - warm.kst_resets;
  out.skel_hits = metrics.Get("answering.skel_hits") - warm.skel_hits;
  out.skel_misses = metrics.Get("answering.skel_misses") - warm.skel_misses;
  out.login_p50 = metrics.HistPercentile("answering.login_cycles", 0.50);
  out.login_p95 = metrics.HistPercentile("answering.login_cycles", 0.95);
  out.login_p99 = metrics.HistPercentile("answering.login_cycles", 0.99);
  if (out.logins != out.logouts || out.logins != out.sessions ||
      service.active_sessions() != 0) {
    return out;  // a storm that did not balance is a broken run
  }
  if (!kernel.AuditIntegrity().empty() || !kernel.Shutdown().ok()) {
    return out;
  }
  if (profile) {
    char title[96];
    std::snprintf(title, sizeof title, "%s @ %u cpus", ModeName(mode), cpus);
    PrintProfileTable(kctx.prof, title);
    JsonLine pline("login_storm_prof");
    pline.Field("mode", ModeName(mode)).Field("cpus", uint64_t{cpus});
    EmitJson(FieldProfDomains(pline, kctx.prof));
    if (folded_path != nullptr) {
      WriteFolded(kctx.prof, folded_path);
    }
  }
  out.ok = true;
  return out;
}

}  // namespace
}  // namespace mks

int main(int argc, char** argv) {
  using namespace mks;
  bool smoke = false;
  bool profile = false;
  int users = 0;
  int churn = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      users = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--churn") == 0 && i + 1 < argc) {
      churn = std::atoi(argv[++i]);
    }
  }
  if (users <= 0) {
    users = smoke ? 128 : 1000;
  }
  if (churn <= 0) {
    churn = smoke ? 1 : 2;
  }
  const std::vector<uint16_t> cpu_counts =
      smoke ? std::vector<uint16_t>{1, 4} : std::vector<uint16_t>{1, 4, 16};
  const uint16_t max_cpus = cpu_counts.back();
  const uint64_t sessions = static_cast<uint64_t>(users) * (1 + static_cast<uint64_t>(churn));

  std::printf("=== P18: login storm — parallel session establishment ===\n\n");
  std::printf("%d users x (1 + %d churn rounds) = %llu sessions per run\n\n", users, churn,
              (unsigned long long)sessions);
  std::printf("%8s %5s %14s %14s %9s %12s %12s %12s %12s\n", "mode", "cpus", "makespan",
              "sess/Mcyc", "speedup", "lock spin", "slab reuse", "skel hits", "login p99");

  auto report = [&](StormMode mode, uint16_t cpus, const StormResult& r, double baseline) {
    const double per_mcyc =
        r.makespan == 0 ? 0 : static_cast<double>(r.sessions) * 1e6 / r.makespan;
    const double speedup = baseline == 0 ? 1.0 : per_mcyc / baseline;
    std::printf("%8s %5u %14llu %14.2f %8.2fx %12llu %12llu %12llu %12llu\n", ModeName(mode),
                cpus, (unsigned long long)r.makespan, per_mcyc, speedup,
                (unsigned long long)r.table_spin_cycles, (unsigned long long)r.slab_reuses,
                (unsigned long long)r.skel_hits, (unsigned long long)r.login_p99);
    JsonLine line("login_storm");
    line.Field("mode", ModeName(mode))
        .Field("cpus", uint64_t{cpus})
        .Field("users", static_cast<uint64_t>(users))
        .Field("sessions", r.sessions)
        .Field("makespan", r.makespan)
        .Field("total_cycles", r.total)
        .Field("sessions_per_mcycle", per_mcyc)
        .Field("phase_auth_cycles", r.phase_auth)
        .Field("phase_process_cycles", r.phase_process)
        .Field("phase_homedir_cycles", r.phase_homedir)
        .Field("phase_accounting_cycles", r.phase_accounting)
        .Field("session_lock_spin_cycles", r.table_spin_cycles)
        .Field("slab_reuses", r.slab_reuses)
        .Field("kst_resets", r.kst_resets)
        .Field("skel_hits", r.skel_hits)
        .Field("skel_misses", r.skel_misses)
        .Field("login_p50", r.login_p50)
        .Field("login_p95", r.login_p95)
        .Field("login_p99", r.login_p99);
    EmitJson(line);
    return per_mcyc;
  };

  // The serial seed table: the 1-CPU reference cost per session.
  const StormResult seed = RunStorm(StormMode::kSeed, 1, users, churn);
  if (!seed.ok) {
    std::fprintf(stderr, "run failed (seed, 1 cpu)\n");
    return 1;
  }
  const double seed_rate = report(StormMode::kSeed, 1, seed, 0.0);

  double coarse_at_max = 0;
  double full_at_max = 0;
  constexpr StormMode kModes[] = {StormMode::kCoarse, StormMode::kSharded, StormMode::kFull};
  for (StormMode mode : kModes) {
    for (uint16_t cpus : cpu_counts) {
      const bool want_folded = profile && mode == StormMode::kCoarse && cpus == max_cpus;
      const StormResult r =
          RunStorm(mode, cpus, users, churn, profile,
                   want_folded ? "bench_perf_login_storm.prof.folded" : nullptr);
      if (!r.ok) {
        std::fprintf(stderr, "run failed (%s, %u cpus)\n", ModeName(mode), cpus);
        return 1;
      }
      const double rate = report(mode, cpus, r, seed_rate);
      if (cpus == max_cpus) {
        if (mode == StormMode::kCoarse) {
          coarse_at_max = rate;
        } else if (mode == StormMode::kFull) {
          full_at_max = rate;
        }
      }
    }
    std::printf("\n");
  }

  // Determinism self-check: the full configuration at the largest pool,
  // twice, must match on every counter and percentile bit-for-bit.
  {
    const StormResult a = RunStorm(StormMode::kFull, max_cpus, users, churn);
    const StormResult b = RunStorm(StormMode::kFull, max_cpus, users, churn);
    if (!a.ok || !b.ok || !a.BitIdentical(b)) {
      std::fprintf(stderr, "DETERMINISM FAILURE: double-run results differ\n");
      return 1;
    }
    std::printf("double-run self-check: bit-identical (full at %u CPUs)\n", max_cpus);
  }

  if (smoke) {
    std::printf("smoke run complete\n");
    return 0;
  }
  const double ratio = coarse_at_max == 0 ? 0 : full_at_max / coarse_at_max;
  const bool wins = ratio >= 2.0;
  std::printf("\nat %u CPUs: full %.2f sessions/Mcyc vs coarse %.2f -> %.2fx: %s\n", max_cpus,
              full_at_max, coarse_at_max, ratio, wins ? ">=2x, sharded+pooled wins" : "NO");
  std::printf("sharding the session table and pooling process slots turns login into a\n"
              "parallel hot path while the coarse lock serializes it -> %s\n",
              wins ? "REPRODUCED" : "MISMATCH");
  return wins ? 0 : 1;
}
