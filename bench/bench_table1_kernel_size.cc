// Table 1 — the kernel-size accounting: starting sizes, the six reduction
// projects, the final total, entry-point statistics for the linker
// extraction, and the file-store specialization estimate.  The census model
// recomputes every number from the component inventory; the paper column is
// printed alongside for comparison.
#include <cstdio>

#include "src/census/census.h"

int main() {
  using namespace mks;
  const KernelCensus census = KernelCensus::Paper1973();
  const SizeTable table = census.ComputeTable();

  std::printf("=== Table 1: Impact of the engineering studies on kernel size ===\n\n");
  std::printf("%s\n", census.Render().c_str());

  struct Row {
    const char* name;
    int model;
    int paper;
  };
  const Row rows[] = {
      {"ring 0 at start", table.start_ring0, 44000},
      {"Answering Service at start", table.start_answering, 10000},
      {"TOTAL at start", table.start_total, 54000},
      {"total reduction", table.total_reduction, 28000},
      {"final kernel", table.final_total, 26000},
  };
  std::printf("%-30s %10s %10s %8s\n", "quantity", "model", "paper", "match");
  bool all_match = true;
  for (const Row& row : rows) {
    const bool match = row.model == row.paper;
    all_match = all_match && match;
    std::printf("%-30s %10d %10d %8s\n", row.name, row.model, row.paper,
                match ? "yes" : "NO");
  }
  std::printf("\ncomponent inventory (source lines, language, disposition):\n");
  for (const CensusComponent& c : census.components()) {
    std::printf("  %-24s %6d %-9s ring%d  %s\n", c.name.c_str(), c.source_lines,
                c.language == Language::kAssembly ? "assembly" : "PL/I", c.ring,
                c.project.empty() ? "(remains)" : c.project.c_str());
  }

  const auto spec = census.FileStoreSpecialization();
  std::printf("\nfile-store-only specialization: %d -> %d lines (%.1f%%; paper: 15-25%%)\n",
              spec.final_total, spec.after_specialization, spec.percent_removed);
  std::printf("\n%s\n", all_match ? "REPRODUCED" : "MISMATCH");
  return all_match ? 0 : 1;
}
