// Ablation (C1) — the zero-page accounting tradeoff.  Default semantics:
// zero pages cost nothing to store, but a mere read can allocate storage and
// move the quota count (the confinement violation).  Channel-closed
// semantics: zero pages retain their records and charges — reads move no
// accounting state, storage is over-charged, and re-touches get faster
// (no reallocation).
#include <cstdio>

#include "bench/bench_util.h"

namespace mks {
namespace {

struct Outcome {
  uint64_t accounting_moves = 0;  // quota count changes caused by reads
  uint64_t records_held = 0;      // records consumed at rest
  Cycles retouch_cycles = 0;      // cost of re-reading the zeroed pages
};

Outcome RunScenario(bool close_channel) {
  KernelConfig config;
  config.close_zero_page_channel = close_channel;
  BenchKernel fx{config};
  KernelGates& gates = fx.kernel.gates();
  PathWalker walker(&gates);

  auto dir = gates.CreateDirectory(*fx.ctx, gates.RootId(), "q", BenchWorldAcl(),
                                   Label::SystemLow());
  (void)gates.SetQuota(*fx.ctx, *dir, 200);
  auto seg = gates.CreateSegment(*fx.ctx, *dir, "sparse", BenchWorldAcl(),
                                 Label::SystemLow());
  auto segno = gates.Initiate(*fx.ctx, *seg);

  // A 32-page file, data only in the first and last page — the paper's
  // 100,000-word example in miniature.
  constexpr uint32_t kFilePages = 32;
  for (uint32_t p = 0; p < kFilePages; ++p) {
    (void)gates.Write(*fx.ctx, *segno, p * kPageWords, p == 0 || p == kFilePages - 1 ? 7 : 1);
  }
  // Zero the interior and push everything out so the zero-page logic runs.
  for (uint32_t p = 1; p + 1 < kFilePages; ++p) {
    (void)gates.Write(*fx.ctx, *segno, p * kPageWords, 0);
  }
  const SegmentUid uid(seg->value);
  fx.kernel.address_spaces().DisconnectEverywhere(uid);
  (void)fx.kernel.segments().Deactivate(fx.kernel.segments().FindIndex(uid));

  Outcome outcome;
  const VtocEntry* at_rest = nullptr;
  // Count records at rest.
  for (uint16_t pk = 0; pk < fx.kernel.ctx().volumes.pack_count(); ++pk) {
    DiskPack* pack = fx.kernel.ctx().volumes.pack(PackId(pk));
    for (uint32_t v = 0; v < pack->vtoc_slots(); ++v) {
      const VtocEntry* entry = pack->GetVtoc(VtocIndex(v));
      if (entry != nullptr && entry->uid == uid) {
        at_rest = entry;
      }
    }
  }
  if (at_rest != nullptr) {
    outcome.records_held = at_rest->RecordsUsed();
  }

  // Re-read every interior (zero) page and watch the books.
  auto before = gates.GetQuota(*fx.ctx, *dir);
  auto fresh = gates.Initiate(*fx.ctx, *seg);
  const Cycles start = fx.kernel.clock().now();
  for (uint32_t p = 1; p + 1 < kFilePages; ++p) {
    (void)gates.Read(*fx.ctx, *fresh, p * kPageWords);
  }
  outcome.retouch_cycles = fx.kernel.clock().now() - start;
  auto after = gates.GetQuota(*fx.ctx, *dir);
  if (before.ok() && after.ok()) {
    outcome.accounting_moves =
        after->count > before->count ? after->count - before->count : 0;
  }
  return outcome;
}

}  // namespace
}  // namespace mks

int main() {
  using namespace mks;
  std::printf("=== Ablation: zero-page accounting vs confinement ===\n\n");
  const Outcome open = RunScenario(false);
  const Outcome closed = RunScenario(true);
  std::printf("%-34s %14s %14s\n", "", "default (open)", "channel closed");
  std::printf("%-34s %14llu %14llu\n", "records held by sparse file at rest",
              (unsigned long long)open.records_held, (unsigned long long)closed.records_held);
  std::printf("%-34s %14llu %14llu\n", "quota moves caused by 30 reads",
              (unsigned long long)open.accounting_moves,
              (unsigned long long)closed.accounting_moves);
  std::printf("%-34s %14llu %14llu\n", "cycles to re-read the zero pages",
              (unsigned long long)open.retouch_cycles,
              (unsigned long long)closed.retouch_cycles);
  std::printf(
      "\npaper: \"a file of size of say, 100,000 words ... non-zero in only the\n"
      "first and last words will accumulate a charge for only two storage\n"
      "pages\" — and \"a read implicitly causes information to be written ...\n"
      "in violation of the confinement goal\".  The ablation shows the trade:\n"
      "cheap sparse storage + a covert channel, or full charging + confinement.\n");
  const bool shape = open.records_held < closed.records_held &&
                     open.accounting_moves > 0 && closed.accounting_moves == 0;
  std::printf("%s\n", shape ? "REPRODUCED" : "MISMATCH");
  return shape ? 0 : 1;
}
