// P3 — the answering service redesign.  Paper: "The revised Answering
// Service, in its preliminary implementation, ran about 3% slower."
// The same login/logout dialog runs in both configurations; the user-domain
// version pays gate crossings and the structured-code factor on its
// bookkeeping, the in-kernel version runs as trusted optimized code.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "src/answering/service.h"

namespace mks {
namespace {

Cycles RunLoginStorm(ServiceDomain domain, int users, int sessions_per_user) {
  Kernel kernel{ArmWatchdog(KernelConfig{})};
  if (!kernel.Boot().ok()) {
    return 0;
  }
  Authenticator auth(&kernel);
  if (!auth.Init().ok()) {
    return 0;
  }
  AnsweringService service(&kernel, &auth, domain);
  for (int u = 0; u < users; ++u) {
    (void)auth.Enroll(Principal{"User" + std::to_string(u), "Proj"}, "pw" + std::to_string(u),
                      Label(2, 0));
  }
  // Warm-up pass creates every home directory, so the measured passes see
  // the steady state (no disk-heavy directory creation noise).
  for (int u = 0; u < users; ++u) {
    auto pid = service.Login(Principal{"User" + std::to_string(u), "Proj"},
                             "pw" + std::to_string(u), Label(0, 0));
    if (pid.ok()) {
      (void)service.Logout(*pid);
    }
  }

  const Cycles before = kernel.clock().now();
  for (int s = 0; s < sessions_per_user; ++s) {
    for (int u = 0; u < users; ++u) {
      auto pid = service.Login(Principal{"User" + std::to_string(u), "Proj"},
                               "pw" + std::to_string(u), Label(0, 0));
      if (pid.ok()) {
        (void)service.Logout(*pid);
      }
    }
  }
  return kernel.clock().now() - before;
}

}  // namespace
}  // namespace mks

int main(int argc, char** argv) {
  using namespace mks;
  int kUsers = 16;
  int kSessions = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--users" && i + 1 < argc) {
      kUsers = std::atoi(argv[++i]);
    } else if (arg == "--sessions" && i + 1 < argc) {
      kSessions = std::atoi(argv[++i]);
    }
  }
  if (kUsers <= 0 || kSessions <= 0) {
    std::fprintf(stderr, "usage: %s [--users N] [--sessions N]\n", argv[0]);
    return 1;
  }
  std::printf("=== P3: Answering service, in-kernel vs user-domain ===\n\n");
  const Cycles in_kernel = RunLoginStorm(ServiceDomain::kInKernel, kUsers, kSessions);
  const Cycles user_domain = RunLoginStorm(ServiceDomain::kUserDomain, kUsers, kSessions);
  const double per_login_kernel =
      static_cast<double>(in_kernel) / (kUsers * kSessions);
  const double per_login_user =
      static_cast<double>(user_domain) / (kUsers * kSessions);
  const double slowdown = 100.0 * (per_login_user / per_login_kernel - 1.0);
  std::printf("login+logout, %d users x %d sessions:\n", kUsers, kSessions);
  std::printf("  in-kernel (1973):    %12.0f sim cycles/session\n", per_login_kernel);
  std::printf("  user-domain (redesign): %9.0f sim cycles/session\n", per_login_user);
  std::printf("  slowdown: %.1f%%   (paper: \"about 3%% slower\")\n\n", slowdown);
  const bool shape_ok = slowdown > 0.0 && slowdown < 15.0;
  EmitJson(JsonLine("answering")
               .Field("users", uint64_t{kUsers})
               .Field("sessions", uint64_t{kSessions})
               .Field("sim_cycles", in_kernel + user_domain)
               .Field("cyc_per_session_kernel", per_login_kernel)
               .Field("cyc_per_session_user", per_login_user)
               .Field("slowdown_pct", slowdown)
               .Field("reproduced", shape_ok ? "yes" : "no"));
  std::printf("shape (small positive slowdown): %s\n", shape_ok ? "REPRODUCED" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
