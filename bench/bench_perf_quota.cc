// P6 — the quota redesign.  In the old supervisor every segment growth
// walks UP the active segment table along the directory hierarchy to find
// the nearest superior quota directory, so the cost of a growth fault rises
// with the segment's depth below its quota directory.  The new design hands
// the segment manager a STATIC quota cell name at initiation: growth cost is
// flat in depth.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/baseline/supervisor.h"
#include "src/fs/path_walker.h"
#include "src/kernel/kernel.h"

namespace mks {
namespace {

// Average simulated cycles per growth fault at hierarchy depth `depth`.
double BaselineGrowthCost(uint32_t depth, uint32_t growths) {
  BaselineConfig config;
  config.memory_frames = 2048;
  config.records_per_pack = 8192;
  config.ast_slots = 128;
  config.retranslate_conflict_rate = 0.0;
  MonolithicSupervisor sup{config};
  if (!sup.Boot().ok()) {
    return -1;
  }
  (void)sup.SetQuota(">", 1u << 20);
  std::string path;
  for (uint32_t d = 0; d < depth; ++d) {
    path += ">d" + std::to_string(d);
  }
  auto uid = sup.CreatePath(path + ">grower");
  if (!uid.ok()) {
    return -1;
  }
  const Cycles before = sup.clock().now();
  for (uint32_t p = 0; p < growths; ++p) {
    (void)sup.Write(*uid, p * kPageWords, 1);
  }
  return static_cast<double>(sup.clock().now() - before) / growths;
}

double KernelGrowthCost(uint32_t depth, uint32_t growths) {
  KernelConfig config;
  config.memory_frames = 2048;
  config.records_per_pack = 8192;
  config.ast_slots = 128;
  Kernel kernel{ArmWatchdog(config)};
  if (!kernel.Boot().ok()) {
    return -1;
  }
  Subject user{Principal{"Bench", "Proj"}, Label::SystemLow(), 4};
  auto pid = kernel.processes().CreateProcess(user);
  if (!pid.ok()) {
    return -1;
  }
  ProcContext* ctx = kernel.processes().Context(*pid);
  PathWalker walker(&kernel.gates());
  Acl acl;
  acl.Add(AclEntry{"*", "*", AccessModes::RWE()});
  std::string path;
  for (uint32_t d = 0; d < depth; ++d) {
    path += ">d" + std::to_string(d);
  }
  auto entry = walker.CreateSegment(*ctx, path + ">grower", acl, Label::SystemLow());
  if (!entry.ok()) {
    return -1;
  }
  auto segno = kernel.gates().Initiate(*ctx, *entry);
  if (!segno.ok()) {
    return -1;
  }
  const Cycles before = kernel.clock().now();
  for (uint32_t p = 0; p < growths; ++p) {
    (void)kernel.gates().Write(*ctx, *segno, p * kPageWords, 1);
  }
  return static_cast<double>(kernel.clock().now() - before) / growths;
}

}  // namespace
}  // namespace mks

int main() {
  using namespace mks;
  constexpr uint32_t kGrowths = 64;
  std::printf("=== P6: Quota enforcement cost vs directory depth ===\n\n");
  std::printf("cost of one growth fault (sim cycles), quota directory at the root:\n\n");
  std::printf("%8s %18s %18s\n", "depth", "baseline (walk)", "kernel (static)");
  double baseline_first = 0, baseline_last = 0, kernel_first = 0, kernel_last = 0;
  const uint32_t depths[] = {1, 2, 4, 8, 16, 32};
  for (uint32_t depth : depths) {
    const double baseline = BaselineGrowthCost(depth, kGrowths);
    const double kernel = KernelGrowthCost(depth, kGrowths);
    std::printf("%8u %18.0f %18.0f\n", depth, baseline, kernel);
    EmitJson(JsonLine("quota")
                 .Field("depth", uint64_t{depth})
                 .Field("cyc_per_growth_baseline", baseline)
                 .Field("cyc_per_growth_kernel", kernel));
    if (depth == depths[0]) {
      baseline_first = baseline;
      kernel_first = kernel;
    }
    baseline_last = baseline;
    kernel_last = kernel;
  }
  const double baseline_growth = baseline_last - baseline_first;
  const double kernel_growth = kernel_last - kernel_first;
  std::printf(
      "\nbaseline cost grows with depth (+%.0f cycles from depth 1 to 32);\n"
      "kernel cost is flat (%+.0f cycles).\n",
      baseline_growth, kernel_growth);
  const bool shape = baseline_growth > 8 * (kernel_growth < 0 ? -kernel_growth : kernel_growth) ||
                     (baseline_growth > 50 && kernel_growth < 10);
  EmitJson(JsonLine("quota_summary")
               .Field("baseline_growth_d1_to_d32", baseline_growth)
               .Field("kernel_growth_d1_to_d32", kernel_growth)
               .Field("reproduced", shape ? "yes" : "no"));
  std::printf(
      "\npaper: \"a dynamic upward search of the hierarchy to locate the\n"
      "appropriate quota directory is no longer required each time a segment\n"
      "is grown.\" -> %s\n",
      shape ? "REPRODUCED" : "MISMATCH");
  return shape ? 0 : 1;
}
