// Tests for user-visible eventcounts: producer/consumer synchronization
// through the two-level scheduler, and the mandatory-policy checks that make
// eventcount signalling an overt (not covert) channel.
#include <gtest/gtest.h>

#include "tests/kernel_fixture.h"

namespace mks {
namespace {

TEST(UserEventcounts, CreateReadAdvance) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  auto ec = gates.CreateEventcount(*fx.ctx, Label::SystemLow());
  ASSERT_TRUE(ec.ok());
  auto v0 = gates.ReadEventcount(*fx.ctx, *ec);
  ASSERT_TRUE(v0.ok());
  EXPECT_EQ(*v0, 0u);
  ASSERT_TRUE(gates.AdvanceEventcount(*fx.ctx, *ec).ok());
  auto v1 = gates.ReadEventcount(*fx.ctx, *ec);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, 1u);
  // A satisfied await completes inline.
  EXPECT_TRUE(gates.AwaitEventcount(*fx.ctx, *ec, 1).ok());
  // An unsatisfied one blocks with a wait spec.
  EXPECT_EQ(gates.AwaitEventcount(*fx.ctx, *ec, 5).code(), Code::kBlocked);
  EXPECT_TRUE(fx.ctx->pending_wait.valid);
  EXPECT_EQ(fx.ctx->pending_wait.target, 5u);
}

TEST(UserEventcounts, BogusIdsRejected) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  EXPECT_EQ(fx.kernel.gates().AdvanceEventcount(*fx.ctx, EventcountId(9999)).code(),
            Code::kNotFound);
}

TEST(UserEventcounts, ProducerConsumerThroughTheScheduler) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  fx.kernel.processes().set_quantum(2);  // force interleaving
  KernelGates& gates = fx.kernel.gates();
  const Segno mailbox = fx.MustCreate(">ipc>mailbox");
  auto ec = gates.CreateEventcount(*fx.ctx, Label::SystemLow());
  ASSERT_TRUE(ec.ok());

  // Consumer (the fixture's process): waits for 3 items, reads them.
  std::vector<UserOp> consumer;
  for (uint64_t n = 1; n <= 3; ++n) {
    consumer.push_back(UserOp::Await(*ec, n));
    consumer.push_back(UserOp::Read(mailbox, static_cast<uint32_t>(n)));
  }
  ASSERT_TRUE(fx.kernel.processes().SetProgram(fx.pid, std::move(consumer)).ok());

  // Producer: another process sharing the mailbox.
  auto producer_pid = fx.kernel.processes().CreateProcess(TestSubject("Producer"));
  ASSERT_TRUE(producer_pid.ok());
  ProcContext* prod = fx.kernel.processes().Context(*producer_pid);
  PathWalker walker(&gates);
  auto prod_segno = walker.Initiate(*prod, ">ipc>mailbox");
  ASSERT_TRUE(prod_segno.ok());
  std::vector<UserOp> producer;
  for (uint64_t n = 1; n <= 3; ++n) {
    producer.push_back(UserOp::Compute(500));  // stagger production
    producer.push_back(UserOp::Write(*prod_segno, static_cast<uint32_t>(n), 100 + n));
    producer.push_back(UserOp::Advance(*ec));
  }
  ASSERT_TRUE(fx.kernel.processes().SetProgram(*producer_pid, std::move(producer)).ok());

  ASSERT_TRUE(fx.kernel.processes().RunUntilQuiescent(100000).ok());
  EXPECT_EQ(fx.kernel.processes().state(fx.pid), ProcState::kDone)
      << fx.kernel.processes().stats(fx.pid).last_error;
  EXPECT_EQ(fx.kernel.processes().state(*producer_pid), ProcState::kDone);
  EXPECT_GT(fx.kernel.processes().stats(fx.pid).blocks, 0u);  // the consumer really waited
  // The mailbox holds the produced values.
  auto value = gates.Read(*fx.ctx, mailbox, 3);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 103u);
}

TEST(UserEventcounts, MandatoryPolicyOnSignalling) {
  KernelFixture fx;  // fixture subject runs at system-low
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  auto high_proc = fx.kernel.processes().CreateProcess(TestSubject("High", 3));
  ProcContext* high = fx.kernel.processes().Context(*high_proc);

  // A low eventcount: the high subject may NOT advance it (write down) —
  // that would be a signalling channel from high to low.
  auto low_ec = gates.CreateEventcount(*fx.ctx, Label::SystemLow());
  ASSERT_TRUE(low_ec.ok());
  EXPECT_EQ(gates.AdvanceEventcount(*high, *low_ec).code(), Code::kNoAccess);
  EXPECT_TRUE(gates.AdvanceEventcount(*fx.ctx, *low_ec).ok());
  // The high subject may observe it (read down).
  EXPECT_TRUE(gates.ReadEventcount(*high, *low_ec).ok());

  // A high eventcount: low may advance (write up) but not observe.
  auto high_ec = gates.CreateEventcount(*high, Label(3, 0));
  ASSERT_TRUE(high_ec.ok());
  EXPECT_TRUE(gates.AdvanceEventcount(*fx.ctx, *high_ec).ok());
  EXPECT_EQ(gates.ReadEventcount(*fx.ctx, *high_ec).code(), Code::kNoAccess);
  EXPECT_EQ(gates.AwaitEventcount(*fx.ctx, *high_ec, 5).code(), Code::kNoAccess);

  // Creation below one's own level is a write-down too.
  EXPECT_EQ(gates.CreateEventcount(*high, Label::SystemLow()).code(), Code::kNoAccess);
}

TEST(Rename, RenamesPreserveIdentityAndAccess) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  auto seg = gates.CreateSegment(*fx.ctx, gates.RootId(), "old", WorldAcl(),
                                 Label::SystemLow());
  ASSERT_TRUE(seg.ok());
  auto segno = gates.Initiate(*fx.ctx, *seg);
  ASSERT_TRUE(gates.Write(*fx.ctx, *segno, 0, 42).ok());

  ASSERT_TRUE(gates.Rename(*fx.ctx, gates.RootId(), "old", "new").ok());
  EXPECT_EQ(gates.Search(*fx.ctx, gates.RootId(), "old").code(), Code::kNoEntry);
  auto found = gates.Search(*fx.ctx, gates.RootId(), "new");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->value, seg->value);  // the unique identifier is untouched
  // The initiated segno keeps working across the rename.
  auto value = gates.Read(*fx.ctx, *segno, 0);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42u);

  // Collisions and missing names are rejected.
  ASSERT_TRUE(
      gates.CreateSegment(*fx.ctx, gates.RootId(), "other", WorldAcl(), Label::SystemLow())
          .ok());
  EXPECT_EQ(gates.Rename(*fx.ctx, gates.RootId(), "new", "other").code(),
            Code::kNameDuplication);
  EXPECT_EQ(gates.Rename(*fx.ctx, gates.RootId(), "ghost", "x").code(), Code::kNoEntry);
}

TEST(Rename, DirectoryRenameUpdatesTheTree) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  PathWalker walker(&gates);
  const Segno inner = fx.MustCreate(">team>notes");
  ASSERT_TRUE(gates.Write(*fx.ctx, inner, 0, 9).ok());
  ASSERT_TRUE(gates.Rename(*fx.ctx, gates.RootId(), "team", "group").ok());
  auto via_new = walker.Initiate(*fx.ctx, ">group>notes");
  ASSERT_TRUE(via_new.ok());
  auto value = gates.Read(*fx.ctx, *via_new, 0);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 9u);
}

TEST(Shutdown, FlushesBooksAndDrainsTheAst) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  auto dir = gates.CreateDirectory(*fx.ctx, gates.RootId(), "q", WorldAcl(),
                                   Label::SystemLow());
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(gates.SetQuota(*fx.ctx, *dir, 50).ok());
  auto seg = gates.CreateSegment(*fx.ctx, *dir, "data", WorldAcl(), Label::SystemLow());
  ASSERT_TRUE(seg.ok());
  auto segno = gates.Initiate(*fx.ctx, *seg);
  for (uint32_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(gates.Write(*fx.ctx, *segno, p * kPageWords, p + 1).ok());
  }
  ASSERT_TRUE(fx.kernel.Shutdown().ok());
  EXPECT_FALSE(fx.kernel.booted());
  EXPECT_EQ(fx.kernel.segments().active_count(), 0u);
  // The quota books were written home: the dir's VTOC store carries the
  // count (its own backing page + 4 data pages).
  bool found = false;
  for (uint16_t pk = 0; pk < fx.kernel.ctx().volumes.pack_count(); ++pk) {
    DiskPack* pack = fx.kernel.ctx().volumes.pack(PackId(pk));
    for (uint32_t v = 0; v < pack->vtoc_slots(); ++v) {
      const VtocEntry* entry = pack->GetVtoc(VtocIndex(v));
      if (entry != nullptr && entry->quota.present && entry->quota.limit == 50) {
        EXPECT_EQ(entry->quota.count, 5u);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace mks
