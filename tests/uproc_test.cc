// Tests for the two-level process implementation: scheduling, blocking on
// asynchronous paging, and the real-memory upward signalling path.
#include <gtest/gtest.h>

#include "tests/kernel_fixture.h"

namespace mks {
namespace {

std::vector<UserOp> TouchProgram(Segno segno, uint32_t pages, uint32_t rounds) {
  std::vector<UserOp> program;
  for (uint32_t r = 0; r < rounds; ++r) {
    for (uint32_t p = 0; p < pages; ++p) {
      program.push_back(UserOp::Write(segno, p * kPageWords + r, r * 100 + p));
      program.push_back(UserOp::Compute(20));
    }
  }
  return program;
}

TEST(Uproc, SingleProcessRunsToCompletion) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  const Segno segno = fx.MustCreate(">work>data");
  ASSERT_TRUE(fx.kernel.processes().SetProgram(fx.pid, TouchProgram(segno, 4, 3)).ok());
  ASSERT_TRUE(fx.kernel.processes().RunUntilQuiescent(100000).ok());
  EXPECT_EQ(fx.kernel.processes().state(fx.pid), ProcState::kDone);
  const ProcessStats& stats = fx.kernel.processes().stats(fx.pid);
  EXPECT_EQ(stats.ops_executed, 24u);
  EXPECT_GT(stats.dispatches, 0u);
}

TEST(Uproc, ManyProcessesShareTheFixedVpPool) {
  KernelConfig config;
  config.vp_count = 4;
  KernelFixture fx{config};
  ASSERT_TRUE(fx.boot_status.ok());
  fx.kernel.processes().set_quantum(4);  // programs span several quanta
  std::vector<ProcessId> pids{fx.pid};
  for (int i = 0; i < 7; ++i) {
    auto pid = fx.kernel.processes().CreateProcess(TestSubject("U" + std::to_string(i)));
    ASSERT_TRUE(pid.ok());
    pids.push_back(*pid);
  }
  // Create the shared segment once (the fixture's own initiation is not
  // reused: each process must initiate for itself).
  (void)fx.MustCreate(">work>shared");
  for (ProcessId pid : pids) {
    // Each process needs its own initiation of the shared segment.
    auto entry = fx.kernel.gates().Search(*fx.kernel.processes().Context(pid),
                                          fx.kernel.gates().RootId(), "work");
    ASSERT_TRUE(entry.ok());
    auto file = fx.kernel.gates().Search(*fx.kernel.processes().Context(pid), *entry, "shared");
    ASSERT_TRUE(file.ok());
    auto my_segno =
        fx.kernel.gates().Initiate(*fx.kernel.processes().Context(pid), *file);
    ASSERT_TRUE(my_segno.ok());
    ASSERT_TRUE(
        fx.kernel.processes().SetProgram(pid, TouchProgram(*my_segno, 3, 2)).ok());
  }
  ASSERT_TRUE(fx.kernel.processes().RunUntilQuiescent(200000).ok());
  for (ProcessId pid : pids) {
    EXPECT_EQ(fx.kernel.processes().state(pid), ProcState::kDone) << pid.value;
  }
  // More processes than user vps: multiplexing really happened.
  EXPECT_GT(fx.kernel.metrics().Get("vproc.dispatches"),
            static_cast<uint64_t>(pids.size()));
}

TEST(UprocAsync, BlockedProcessesAreWokenThroughTheRealMemoryQueue) {
  KernelConfig config;
  config.async_paging = true;
  config.memory_frames = 48;
  config.ast_slots = 12;
  KernelFixture fx{config};
  ASSERT_TRUE(fx.boot_status.ok());

  std::vector<ProcessId> pids{fx.pid};
  for (int i = 0; i < 3; ++i) {
    auto pid = fx.kernel.processes().CreateProcess(TestSubject("U" + std::to_string(i)));
    ASSERT_TRUE(pid.ok());
    pids.push_back(*pid);
  }
  // Each process gets its own segment; small memory forces paging, so reads
  // of evicted pages block on the posted I/O.
  int i = 0;
  for (ProcessId pid : pids) {
    ProcContext* ctx = fx.kernel.processes().Context(pid);
    PathWalker walker(&fx.kernel.gates());
    auto entry = walker.CreateSegment(*ctx, ">w>f" + std::to_string(i++), WorldAcl(),
                                      Label::SystemLow());
    ASSERT_TRUE(entry.ok());
    auto segno = fx.kernel.gates().Initiate(*ctx, *entry);
    ASSERT_TRUE(segno.ok());
    ASSERT_TRUE(fx.kernel.processes().SetProgram(pid, TouchProgram(*segno, 10, 3)).ok());
  }
  ASSERT_TRUE(fx.kernel.processes().RunUntilQuiescent(400000).ok());
  for (ProcessId pid : pids) {
    ASSERT_EQ(fx.kernel.processes().state(pid), ProcState::kDone)
        << fx.kernel.processes().stats(pid).last_error;
  }
  EXPECT_GT(fx.kernel.metrics().Get("pfm.async_reads"), 0u);
  EXPECT_GT(fx.kernel.metrics().Get("pfm.io_completions"), 0u);
  // Some process parked and was re-awakened via the queue.
  uint64_t blocks = 0;
  for (ProcessId pid : pids) {
    blocks += fx.kernel.processes().stats(pid).blocks;
  }
  EXPECT_GT(blocks, 0u);
}

TEST(UprocAsync, IdleTimeIsAccountedWhenAllProcessesWait) {
  KernelConfig config;
  config.async_paging = true;
  config.memory_frames = 64;
  KernelFixture fx{config};
  ASSERT_TRUE(fx.boot_status.ok());
  const Segno segno = fx.MustCreate(">w>lonely");
  std::vector<UserOp> program;
  for (uint32_t p = 0; p < 12; ++p) {
    program.push_back(UserOp::Write(segno, p * kPageWords, p));
  }
  // Re-read everything after eviction pressure from a second pass.
  for (uint32_t p = 0; p < 12; ++p) {
    program.push_back(UserOp::Read(segno, p * kPageWords));
  }
  ASSERT_TRUE(fx.kernel.processes().SetProgram(fx.pid, std::move(program)).ok());
  ASSERT_TRUE(fx.kernel.processes().RunUntilQuiescent(200000).ok());
  EXPECT_EQ(fx.kernel.processes().state(fx.pid), ProcState::kDone);
}

TEST(Uproc, AbortedProcessReportsItsError) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  const Segno segno = fx.MustCreate(">w>bounded");
  std::vector<UserOp> program;
  program.push_back(UserOp::Write(segno, kMaxSegmentPages * kPageWords + 1, 1));
  ASSERT_TRUE(fx.kernel.processes().SetProgram(fx.pid, std::move(program)).ok());
  ASSERT_TRUE(fx.kernel.processes().RunUntilQuiescent(1000).ok());
  EXPECT_EQ(fx.kernel.processes().state(fx.pid), ProcState::kAborted);
  EXPECT_EQ(fx.kernel.processes().stats(fx.pid).last_error.code(), Code::kOutOfBounds);
}

TEST(Uproc, DestroyProcessReleasesResources) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  auto pid = fx.kernel.processes().CreateProcess(TestSubject("Gone"));
  ASSERT_TRUE(pid.ok());
  const size_t before = fx.kernel.address_spaces().space_count();
  ASSERT_TRUE(fx.kernel.processes().DestroyProcess(*pid).ok());
  EXPECT_EQ(fx.kernel.address_spaces().space_count(), before - 1);
  EXPECT_EQ(fx.kernel.processes().DestroyProcess(*pid).code(), Code::kNotFound);
}

}  // namespace
}  // namespace mks
