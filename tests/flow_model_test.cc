// Certification tests: the kernel's reference monitor against the
// independently-stated MITRE model, checked exhaustively over the finite
// label space — the machine-checkable slice of the paper's boxes 4 and 6.
#include <gtest/gtest.h>

#include "src/verify/flow_model.h"

namespace mks {
namespace {

TEST(FlowModel, SpecificationIsSelfConsistent) {
  // The access-rule phrasing and the information-flow phrasing of the model
  // must agree everywhere (8 levels, all subsets of 5 categories: 102,400
  // decisions).
  EXPECT_EQ(CheckSpecificationSelfConsistency(5), 0);
}

TEST(FlowModel, ModelSpotChecks) {
  const ModelLabel low{0, 0};
  const ModelLabel secret{3, 0b011};
  const ModelLabel partial{3, 0b100};
  EXPECT_TRUE(ModelDecision(secret, low, ModelOp::kObserve));    // read down
  EXPECT_FALSE(ModelDecision(low, secret, ModelOp::kObserve));   // no read up
  EXPECT_TRUE(ModelDecision(low, secret, ModelOp::kModify));     // write up
  EXPECT_FALSE(ModelDecision(secret, low, ModelOp::kModify));    // no write down
  // Incomparable categories: neither observe nor be observed.
  EXPECT_FALSE(ModelDecision(secret, partial, ModelOp::kObserve));
  EXPECT_FALSE(ModelDecision(partial, secret, ModelOp::kObserve));
}

TEST(FlowModel, MonitorCompliesExhaustively) {
  Clock clock;
  Metrics metrics;
  ReferenceMonitor monitor(&clock, &metrics);
  // 8 levels x 8 levels x 16 x 16 category subsets x 2 ops = 32,768 decisions.
  const auto divergences = VerifyMonitorAgainstModel(&monitor, /*category_width=*/4);
  EXPECT_TRUE(divergences.empty()) << [&] {
    std::string out;
    for (size_t i = 0; i < divergences.size() && i < 5; ++i) {
      out += divergences[i].ToString() + "\n";
    }
    return out + std::to_string(divergences.size()) + " total divergences";
  }();
}

TEST(FlowModel, WiderCategorySweepStillComplies) {
  Clock clock;
  Metrics metrics;
  ReferenceMonitor monitor(&clock, &metrics);
  // 6 categories: 8*8*64*64*2 = 524,288 decisions; still fast.
  EXPECT_TRUE(VerifyMonitorAgainstModel(&monitor, /*category_width=*/6).empty());
}

TEST(FlowModel, DetectsANonCompliantMonitorStandIn) {
  // Sanity of the checker itself: a deliberately wrong decision procedure
  // diverges.  (We fake it by flipping the operation we ask about.)
  Clock clock;
  Metrics metrics;
  ReferenceMonitor monitor(&clock, &metrics);
  int flipped_divergences = 0;
  for (int ls = 0; ls <= 7; ++ls) {
    for (int lo = 0; lo <= 7; ++lo) {
      const Subject subject{Principal{"x", "y"}, Label(static_cast<uint8_t>(ls), 0), 4};
      const Label object(static_cast<uint8_t>(lo), 0);
      const bool model_allows =
          ModelDecision(ModelLabel{ls, 0}, ModelLabel{lo, 0}, ModelOp::kObserve);
      // Ask the monitor the WRONG question (modify instead of observe).
      const bool wrong_monitor =
          monitor.CheckFlow(subject, object, FlowDirection::kModify).ok();
      if (model_allows != wrong_monitor) {
        ++flipped_divergences;
      }
    }
  }
  EXPECT_GT(flipped_divergences, 0);
}

}  // namespace
}  // namespace mks
