// End-to-end tests of the descriptor-lock wait/notify protocol under
// contention: with asynchronous paging, the first toucher of a missing page
// posts the read and leaves the descriptor locked; every other toucher takes
// a locked-descriptor fault, arms the wakeup-waiting switch, and awaits the
// segment's page-arrival eventcount.  Completion unlocks the descriptor and
// notifies everyone.
#include <gtest/gtest.h>

#include "tests/kernel_fixture.h"

namespace mks {
namespace {

KernelConfig AsyncConfig() {
  KernelConfig config;
  config.async_paging = true;
  config.memory_frames = 64;
  return config;
}

TEST(LockProtocol, SecondToucherWaitsOnTheEventcount) {
  KernelFixture fx{AsyncConfig()};
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();

  // Shared segment with one resident-then-evicted page.
  auto entry = gates.CreateSegment(*fx.ctx, gates.RootId(), "shared", WorldAcl(),
                                   Label::SystemLow());
  ASSERT_TRUE(entry.ok());
  auto segno = gates.Initiate(*fx.ctx, *entry);
  ASSERT_TRUE(gates.Write(*fx.ctx, *segno, 0, 7).ok());
  const SegmentUid uid(entry->value);
  const uint32_t ast_index = fx.kernel.segments().FindIndex(uid);
  AstEntry* ast = fx.kernel.segments().Get(ast_index);
  ASSERT_TRUE(fx.kernel.page_frames()
                  .EvictPage(&ast->page_table, 0, ast->pack, ast->vtoc, ast->quota_cell,
                             ast->page_ec)
                  .ok());

  // First toucher: posts the read, blocks.
  Status first = gates.Read(*fx.ctx, *segno, 0).status();
  EXPECT_EQ(first.code(), Code::kBlocked);
  EXPECT_TRUE(ast->page_table.ptws[0].locked);
  EXPECT_EQ(fx.kernel.page_frames().pending_io(), 1u);

  // Second toucher (another process): hits the LOCKED descriptor, not a
  // missing page, and is told to await the same eventcount.
  auto second_pid = fx.kernel.processes().CreateProcess(TestSubject("Second"));
  ProcContext* second = fx.kernel.processes().Context(*second_pid);
  auto their_segno = gates.Initiate(*second, *entry);
  ASSERT_TRUE(their_segno.ok());
  Status blocked = gates.Read(*second, *their_segno, 0).status();
  EXPECT_EQ(blocked.code(), Code::kBlocked);
  EXPECT_GT(fx.kernel.metrics().Get("gates.locked_descriptor_waits"), 0u);
  EXPECT_TRUE(second->pending_wait.valid);
  EXPECT_EQ(second->pending_wait.ec.value, ast->page_ec.value);

  // The transfer completes; the daemon unlocks and notifies.
  fx.kernel.clock().Advance(Costs::kDiskReadLatency + 1);
  fx.kernel.ctx().events.RunDue(fx.kernel.clock().now());
  EXPECT_TRUE(fx.kernel.page_frames().PageIoDaemonStep());
  EXPECT_FALSE(ast->page_table.ptws[0].locked);
  EXPECT_GE(fx.kernel.ctx().eventcounts.Read(ast->page_ec), second->pending_wait.target);

  // Both retries now succeed and see the data.
  auto mine = gates.Read(*fx.ctx, *segno, 0);
  auto theirs = gates.Read(*second, *their_segno, 0);
  ASSERT_TRUE(mine.ok());
  ASSERT_TRUE(theirs.ok());
  EXPECT_EQ(*mine, 7u);
  EXPECT_EQ(*theirs, 7u);
  // Exactly one disk read serviced both touchers.
  EXPECT_EQ(fx.kernel.metrics().Get("pfm.async_reads"), 1u);
}

TEST(LockProtocol, ManyProcessesSharingOneHotSegmentAllFinish) {
  KernelConfig config = AsyncConfig();
  config.memory_frames = 56;
  KernelFixture fx{config};
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  auto entry = gates.CreateSegment(*fx.ctx, gates.RootId(), "hot", WorldAcl(),
                                   Label::SystemLow());
  ASSERT_TRUE(entry.ok());
  auto warm = gates.Initiate(*fx.ctx, *entry);
  for (uint32_t p = 0; p < 24; ++p) {
    ASSERT_TRUE(gates.Write(*fx.ctx, *warm, p * kPageWords, p + 1).ok());
  }

  std::vector<ProcessId> pids;
  for (int i = 0; i < 4; ++i) {
    auto pid = fx.kernel.processes().CreateProcess(TestSubject("R" + std::to_string(i)));
    ASSERT_TRUE(pid.ok());
    ProcContext* ctx = fx.kernel.processes().Context(*pid);
    auto segno = gates.Initiate(*ctx, *entry);
    ASSERT_TRUE(segno.ok());
    std::vector<UserOp> program;
    for (uint32_t n = 0; n < 48; ++n) {
      // Overlapping strides: several processes regularly race to the same
      // evicted page.
      program.push_back(UserOp::Read(*segno, ((n + 7u * i) % 24) * kPageWords));
    }
    ASSERT_TRUE(fx.kernel.processes().SetProgram(*pid, std::move(program)).ok());
    pids.push_back(*pid);
  }
  ASSERT_TRUE(fx.kernel.processes().RunUntilQuiescent(500000).ok());
  for (ProcessId pid : pids) {
    EXPECT_EQ(fx.kernel.processes().state(pid), ProcState::kDone)
        << fx.kernel.processes().stats(pid).last_error;
  }
  // Values intact under all that contention.
  for (uint32_t p = 0; p < 24; ++p) {
    auto value = gates.Read(*fx.ctx, *warm, p * kPageWords);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, p + 1);
  }
  EXPECT_TRUE(fx.kernel.AuditIntegrity().empty());
}

}  // namespace
}  // namespace mks
