// Tests for the login-storm machinery (PR 10): concurrent Login/Logout
// across the CPU pool is bit-identical on double runs at 4 and 16 CPUs,
// slab-reused process slots leak nothing from their previous life (no bill,
// no KST bindings), and with every knob off the service's new instruments
// stay at zero while behavior stays deterministic.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/answering/service.h"
#include "tests/kernel_fixture.h"

namespace mks {
namespace {

std::string PersonOf(int u) { return "User" + std::to_string(u); }
std::string ProjectOf(int u) { return "Proj" + std::to_string(u % 4); }
std::string PasswordOf(int u) { return "pw" + std::to_string(u); }

// ---------------------------------------------------------------------------
// Concurrent storm determinism.
// ---------------------------------------------------------------------------

struct StormTrace {
  bool ok = false;
  Cycles final_now = 0;
  Cycles makespan = 0;
  uint64_t logins = 0;
  uint64_t logouts = 0;
  uint64_t spin = 0;
  uint64_t slab_reuses = 0;
  uint64_t skel_hits = 0;
  uint64_t login_p99 = 0;
};

bool operator==(const StormTrace& a, const StormTrace& b) {
  return a.ok == b.ok && a.final_now == b.final_now && a.makespan == b.makespan &&
         a.logins == b.logins && a.logouts == b.logouts && a.spin == b.spin &&
         a.slab_reuses == b.slab_reuses && a.skel_hits == b.skel_hits &&
         a.login_p99 == b.login_p99;
}

// A miniature of bench_perf_login_storm: every session op runs in its own
// anchored window on the furthest-behind CPU, all concurrency knobs on.
StormTrace RunStorm(uint16_t cpus, int users) {
  StormTrace out;
  KernelConfig config;
  config.cpu_count = cpus;
  config.connect_cost = 400;
  config.trace.enabled = true;
  config.slab_processes = true;
  config.read_policy = ReadPolicy::kPassiveRw;
  Kernel kernel(config);
  if (!kernel.Boot().ok()) {
    return out;
  }
  KernelContext& kctx = kernel.ctx();

  AnsweringConfig acfg;
  acfg.table_mode = SessionTableMode::kSharded;
  acfg.table_lock_policy = LockPolicy::kMcs;
  acfg.table_line_transfer_cost = config.connect_cost;
  acfg.skeleton_cache = true;
  acfg.cache_lock = SharedLockConfig{ReadPolicy::kPassiveRw, config.connect_cost, 0, cpus};
  Authenticator auth(&kernel);
  if (!auth.Init().ok()) {
    return out;
  }
  AnsweringService service(&kernel, &auth, ServiceDomain::kUserDomain, acfg);
  for (int u = 0; u < users; ++u) {
    if (!auth.Enroll(Principal{PersonOf(u), ProjectOf(u)}, PasswordOf(u), Label(2, 0)).ok()) {
      return out;
    }
  }

  std::vector<ProcessId> pid_of(static_cast<size_t>(users));
  auto drive = [&](auto&& op) -> bool {
    const uint16_t cpu = kctx.smp.NextCpu();
    kctx.current_cpu = cpu;
    kctx.trace.SetCpu(cpu);
    kctx.AnchorWindow();
    const Cycles t0 = kernel.clock().now();
    if (!op()) {
      return false;
    }
    kctx.smp.Accrue(cpu, kernel.clock().now() - t0);
    return true;
  };
  auto login = [&](int u) {
    auto pid = service.Login(Principal{PersonOf(u), ProjectOf(u)}, PasswordOf(u), Label(0, 0));
    if (!pid.ok()) {
      return false;
    }
    pid_of[static_cast<size_t>(u)] = *pid;
    return true;
  };
  auto logout = [&](int u) { return service.Logout(pid_of[static_cast<size_t>(u)]).ok(); };

  // Storm front, one churn wave, drain.
  for (int u = 0; u < users; ++u) {
    if (!drive([&] { return login(u); })) {
      return out;
    }
  }
  for (int u = 0; u < users; ++u) {
    if (!drive([&] { return logout(u); }) || !drive([&] { return login(u); })) {
      return out;
    }
  }
  for (int u = 0; u < users; ++u) {
    if (!drive([&] { return logout(u); })) {
      return out;
    }
  }

  if (service.active_sessions() != 0 || !kernel.AuditIntegrity().empty()) {
    return out;
  }
  out.final_now = kernel.clock().now();
  out.makespan = kctx.smp.Makespan();
  const Metrics& metrics = kernel.metrics();
  out.logins = metrics.Get("answering.logins");
  out.logouts = metrics.Get("answering.logouts");
  out.spin = metrics.Get("answering.session_lock_spin_cycles");
  out.slab_reuses = metrics.Get("uproc.slab_reuses");
  out.skel_hits = metrics.Get("answering.skel_hits");
  out.login_p99 = metrics.HistPercentile("answering.login_cycles", 0.99);
  if (!kernel.Shutdown().ok()) {
    return out;
  }
  out.ok = true;
  return out;
}

TEST(LoginStorm, DoubleRunBitIdenticalAt4Cpus) {
  const StormTrace a = RunStorm(4, 24);
  const StormTrace b = RunStorm(4, 24);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.logins, 2u * 24u);
  EXPECT_GT(a.slab_reuses, 0u);  // the churn wave reuses parked slots
  EXPECT_TRUE(a == b);
}

TEST(LoginStorm, DoubleRunBitIdenticalAt16Cpus) {
  const StormTrace a = RunStorm(16, 24);
  const StormTrace b = RunStorm(16, 24);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_TRUE(a == b);
}

// ---------------------------------------------------------------------------
// Slab-reuse correctness: a recycled slot carries nothing across sessions.
// ---------------------------------------------------------------------------

struct SlabFixture {
  SlabFixture() : kernel(SlabConfig()), auth(&kernel), service(&kernel, &auth) {
    EXPECT_TRUE(kernel.Boot().ok());
    EXPECT_TRUE(auth.Init().ok());
    EXPECT_TRUE(auth.Enroll(Principal{"Alice", "Projx"}, "pw-a", Label(2, 0)).ok());
    EXPECT_TRUE(auth.Enroll(Principal{"Bob", "Projx"}, "pw-b", Label(2, 0)).ok());
  }
  static KernelConfig SlabConfig() {
    KernelConfig config;
    config.slab_processes = true;
    return config;
  }
  Kernel kernel;
  Authenticator auth;
  AnsweringService service;
};

TEST(LoginStorm, SlabReuseLeaksNoBillAndNoKstBindings) {
  SlabFixture fx;
  auto alice = fx.service.Login(Principal{"Alice", "Projx"}, "pw-a", Label(0, 0));
  ASSERT_TRUE(alice.ok()) << alice.status();

  // Alice initiates a segment and runs billable work.
  ProcContext* ctx = fx.kernel.processes().Context(*alice);
  PathWalker walker(&fx.kernel.gates());
  auto entry = walker.CreateSegment(*ctx, ">udd>Projx>Alice>scratch", WorldAcl(), Label(0, 0));
  ASSERT_TRUE(entry.ok());
  auto segno = fx.kernel.gates().Initiate(*ctx, *entry);
  ASSERT_TRUE(segno.ok());
  std::vector<UserOp> program;
  for (int i = 0; i < 4; ++i) {
    program.push_back(UserOp::Write(*segno, static_cast<uint32_t>(i), i));
  }
  ASSERT_TRUE(fx.kernel.processes().SetProgram(*alice, std::move(program)).ok());
  ASSERT_TRUE(fx.kernel.processes().RunUntilQuiescent(10000).ok());
  auto bill = fx.service.BillFor(*alice);
  ASSERT_TRUE(bill.ok());
  EXPECT_GT(bill->ops, 0u);
  ASSERT_TRUE(fx.kernel.known_segments().Lookup(*alice, *segno) != nullptr);

  // Logout parks the slot instead of tearing it down.
  ASSERT_TRUE(fx.service.Logout(*alice).ok());
  EXPECT_EQ(fx.kernel.processes().slab_free(), 1u);

  // Bob's login recycles Alice's slot: same ProcessId, nothing inherited.
  auto bob = fx.service.Login(Principal{"Bob", "Projx"}, "pw-b", Label(0, 0));
  ASSERT_TRUE(bob.ok()) << bob.status();
  EXPECT_EQ(bob->value, alice->value);
  EXPECT_EQ(fx.kernel.processes().slab_free(), 0u);
  EXPECT_EQ(fx.kernel.metrics().Get("uproc.slab_reuses"), 1u);
  EXPECT_GE(fx.kernel.metrics().Get("ksm.kst_resets"), 1u);
  // Alice's KST binding is gone from the recycled table...
  EXPECT_EQ(fx.kernel.known_segments().Lookup(*bob, *segno), nullptr);
  // ...and the fresh session owes nothing for Alice's work.
  auto fresh_bill = fx.service.BillFor(*bob);
  ASSERT_TRUE(fresh_bill.ok());
  EXPECT_EQ(fresh_bill->ops, 0u);
  EXPECT_EQ(fresh_bill->cpu_cycles, 0u);

  // The recycled table is immediately usable for Bob's own bindings.
  ProcContext* bctx = fx.kernel.processes().Context(*bob);
  auto bentry = walker.CreateSegment(*bctx, ">udd>Projx>Bob>scratch", WorldAcl(), Label(0, 0));
  ASSERT_TRUE(bentry.ok());
  EXPECT_TRUE(fx.kernel.gates().Initiate(*bctx, *bentry).ok());
  ASSERT_TRUE(fx.service.Logout(*bob).ok());

  // Shutdown drains the parked slot; nothing dangles.
  EXPECT_TRUE(fx.kernel.AuditIntegrity().empty());
  EXPECT_TRUE(fx.kernel.Shutdown().ok());
}

TEST(LoginStorm, AccountingSurvivesSlabReuse) {
  SlabFixture fx;
  auto alice = fx.service.Login(Principal{"Alice", "Projx"}, "pw-a", Label(0, 0));
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(fx.service.Logout(*alice).ok());
  auto bob = fx.service.Login(Principal{"Bob", "Projx"}, "pw-b", Label(0, 0));
  ASSERT_TRUE(bob.ok());
  ASSERT_TRUE(fx.service.Logout(*bob).ok());
  // Both principals appear in the report even though they shared one slot.
  const std::string report = fx.service.AccountingReport();
  EXPECT_NE(report.find("Alice.Projx"), std::string::npos);
  EXPECT_NE(report.find("Bob.Projx"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Knobs off: the seed path, byte for byte.
// ---------------------------------------------------------------------------

Cycles RunSerialSessions(const AnsweringConfig& acfg, uint64_t* spin, uint64_t* skel,
                         uint64_t* slab) {
  Kernel kernel{KernelConfig{}};
  EXPECT_TRUE(kernel.Boot().ok());
  Authenticator auth(&kernel);
  EXPECT_TRUE(auth.Init().ok());
  AnsweringService service(&kernel, &auth, ServiceDomain::kUserDomain, acfg);
  for (int u = 0; u < 4; ++u) {
    EXPECT_TRUE(
        auth.Enroll(Principal{PersonOf(u), ProjectOf(u)}, PasswordOf(u), Label(2, 0)).ok());
  }
  for (int round = 0; round < 2; ++round) {
    for (int u = 0; u < 4; ++u) {
      auto pid =
          service.Login(Principal{PersonOf(u), ProjectOf(u)}, PasswordOf(u), Label(0, 0));
      EXPECT_TRUE(pid.ok());
      if (pid.ok()) {
        EXPECT_TRUE(service.Logout(*pid).ok());
      }
    }
  }
  const Metrics& metrics = kernel.metrics();
  *spin = metrics.Get("answering.session_lock_spin_cycles");
  *skel = metrics.Get("answering.skel_hits") + metrics.Get("answering.skel_misses");
  *slab = metrics.Get("uproc.slab_reuses") + metrics.Get("ksm.kst_resets");
  return kernel.clock().now();
}

TEST(LoginStorm, KnobsOffChargesNothingAndStaysDeterministic) {
  uint64_t spin = 0, skel = 0, slab = 0;
  const Cycles first = RunSerialSessions(AnsweringConfig{}, &spin, &skel, &slab);
  // The seed path never touches a table lock, the skeleton cache, or the
  // process slab: every new instrument reads zero.
  EXPECT_EQ(spin, 0u);
  EXPECT_EQ(skel, 0u);
  EXPECT_EQ(slab, 0u);
  // Identical runs land on the identical final clock.
  const Cycles second = RunSerialSessions(AnsweringConfig{}, &spin, &skel, &slab);
  EXPECT_EQ(first, second);
  // The phase counters are observation only: explicitly asking for one shard
  // (the serial table's shape) must not move the clock either.
  AnsweringConfig one_shard;
  one_shard.shards = 1;
  const Cycles shaped = RunSerialSessions(one_shard, &spin, &skel, &slab);
  EXPECT_EQ(first, shaped);
}

}  // namespace
}  // namespace mks
