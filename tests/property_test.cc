// Property-based integration tests: randomized workloads against the whole
// kernel, checked with the integrity auditor and data checksums.
//
// Invariants checked after every run, for every seed:
//  * the integrity audit is clean (frames <-> PTWs, SDWs <-> AST,
//    quota cells == records used);
//  * every word ever written reads back (paging is transparent);
//  * the runtime call structure stayed inside the declared lattice;
//  * disk record accounting balances.
#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "tests/kernel_fixture.h"

namespace mks {
namespace {

class RandomWorkloadTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomWorkloadTest, AuditCleanAndDataIntact) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  KernelConfig config;
  config.memory_frames = 64 + rng.NextBelow(64);
  config.ast_slots = 10 + rng.NextBelow(10);
  config.records_per_pack = 2048;
  Kernel kernel{config};
  ASSERT_TRUE(kernel.Boot().ok());

  // A couple of processes, a few segments each, random read/write traffic.
  struct Doc {
    ProcContext* ctx;
    Segno segno;
    std::map<uint32_t, Word> shadow;  // offset -> expected value
  };
  std::vector<Doc> docs;
  PathWalker walker(&kernel.gates());
  const int process_count = 2 + static_cast<int>(rng.NextBelow(3));
  for (int pi = 0; pi < process_count; ++pi) {
    auto pid = kernel.processes().CreateProcess(TestSubject("U" + std::to_string(pi)));
    ASSERT_TRUE(pid.ok());
    ProcContext* ctx = kernel.processes().Context(*pid);
    const int segments = 1 + static_cast<int>(rng.NextBelow(3));
    for (int si = 0; si < segments; ++si) {
      auto entry = walker.CreateSegment(
          *ctx, ">u" + std::to_string(pi) + ">f" + std::to_string(si), WorldAcl(),
          Label::SystemLow());
      ASSERT_TRUE(entry.ok()) << entry.status();
      auto segno = kernel.gates().Initiate(*ctx, *entry);
      ASSERT_TRUE(segno.ok());
      docs.push_back(Doc{ctx, *segno, {}});
    }
  }

  const int ops = 400;
  for (int op = 0; op < ops; ++op) {
    Doc& doc = docs[rng.NextBelow(docs.size())];
    const uint32_t page = static_cast<uint32_t>(rng.NextZipf(20, 1.1));
    const uint32_t offset = page * kPageWords + static_cast<uint32_t>(rng.NextBelow(8));
    if (rng.NextBool(0.55)) {
      const Word value = rng.Next();
      Status st = kernel.gates().Write(*doc.ctx, doc.segno, offset, value);
      ASSERT_TRUE(st.ok()) << st;
      if (value == 0) {
        doc.shadow.erase(offset);
      } else {
        doc.shadow[offset] = value;
      }
    } else if (!doc.shadow.empty()) {
      auto it = doc.shadow.begin();
      std::advance(it, rng.NextBelow(doc.shadow.size()));
      auto value = kernel.gates().Read(*doc.ctx, doc.segno, it->first);
      ASSERT_TRUE(value.ok()) << value.status();
      EXPECT_EQ(*value, it->second) << "seed " << seed << " offset " << it->first;
    }
  }

  // Full verification sweep.
  for (Doc& doc : docs) {
    for (const auto& [offset, expected] : doc.shadow) {
      auto value = kernel.gates().Read(*doc.ctx, doc.segno, offset);
      ASSERT_TRUE(value.ok());
      EXPECT_EQ(*value, expected) << "seed " << seed << " offset " << offset;
    }
  }

  const auto findings = kernel.AuditIntegrity();
  EXPECT_TRUE(findings.empty()) << [&] {
    std::string all = "seed " + std::to_string(seed) + ":\n";
    for (const auto& f : findings) {
      all += "  " + f + "\n";
    }
    return all;
  }();

  const auto undeclared = kernel.tracker().UndeclaredEdges(Kernel::DeclaredLattice());
  EXPECT_TRUE(undeclared.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));

class RandomChurnTest : public ::testing::TestWithParam<uint64_t> {};

// Create/delete churn with quota directories: the books must balance at
// every quiescent point.
TEST_P(RandomChurnTest, QuotaBooksBalanceUnderChurn) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();

  auto qdir = gates.CreateDirectory(*fx.ctx, gates.RootId(), "q", WorldAcl(),
                                    Label::SystemLow());
  ASSERT_TRUE(qdir.ok());
  ASSERT_TRUE(gates.SetQuota(*fx.ctx, *qdir, 200).ok());

  std::vector<std::string> live;
  for (int round = 0; round < 60; ++round) {
    if (live.empty() || rng.NextBool(0.6)) {
      const std::string name = "f" + std::to_string(round);
      auto seg = gates.CreateSegment(*fx.ctx, *qdir, name, WorldAcl(), Label::SystemLow());
      ASSERT_TRUE(seg.ok()) << seg.status();
      auto segno = gates.Initiate(*fx.ctx, *seg);
      ASSERT_TRUE(segno.ok());
      const uint32_t pages = 1 + static_cast<uint32_t>(rng.NextBelow(4));
      for (uint32_t p = 0; p < pages; ++p) {
        Status st = gates.Write(*fx.ctx, *segno, p * kPageWords, p + 1);
        if (st.code() == Code::kQuotaOverflow) {
          break;  // fine: the limit is doing its job
        }
        ASSERT_TRUE(st.ok()) << st;
      }
      ASSERT_TRUE(gates.Terminate(*fx.ctx, *segno).ok());
      live.push_back(name);
    } else {
      const size_t pick = rng.NextBelow(live.size());
      ASSERT_TRUE(gates.Delete(*fx.ctx, *qdir, live[pick]).ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    }
    const auto findings = fx.kernel.AuditIntegrity();
    ASSERT_TRUE(findings.empty()) << "round " << round << ", seed " << seed << ": "
                                  << findings.front();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChurnTest, ::testing::Values(11, 22, 33, 44, 55, 66));

// Auditor sensitivity: a planted inconsistency must be reported.
TEST(Auditor, DetectsPlantedQuotaCorruption) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  const Segno segno = fx.MustCreate(">d>x");
  ASSERT_TRUE(fx.kernel.gates().Write(*fx.ctx, segno, 0, 1).ok());
  ASSERT_TRUE(fx.kernel.AuditIntegrity().empty());
  // Corrupt the books: charge 3 phantom pages to the root cell.
  auto root_status = fx.kernel.gates().GetQuota(*fx.ctx, fx.kernel.gates().RootId());
  ASSERT_TRUE(root_status.ok());
  auto& dirs = fx.kernel.directories();
  (void)dirs;
  // Reach the root cell through the quota manager by home coordinates.
  auto cell = fx.kernel.quota_cells().LoadCell(PackId(0), VtocIndex(0));
  if (cell.ok()) {
    ASSERT_TRUE(fx.kernel.quota_cells().Charge(*cell, 3).ok());
    const auto findings = fx.kernel.AuditIntegrity();
    EXPECT_FALSE(findings.empty());
  }
}

}  // namespace
}  // namespace mks
