// Tests for the virtual-time tracer (src/sim/trace.h).
//
// Load-bearing properties:
//  * reproducibility — because records are stamped from the deterministic
//    global clock, two runs of the same 4-CPU workload export byte-identical
//    Chrome traces;
//  * invisibility — enabling the tracer never changes what the kernel
//    computes: counters, audit, and the clock match a trace-off run exactly
//    (tracing charges no cycles and keeps its names out of the counter
//    store);
//  * ring semantics — bounded per-CPU rings drop oldest-first and count
//    what they dropped;
//  * histogram semantics — log2 buckets with exact boundaries, and
//    percentile readback returns the upper bound of the bucket at rank.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/sim/trace.h"
#include "tests/kernel_fixture.h"

namespace mks {
namespace {

// ---------------------------------------------------------------------------
// Kernel-level: determinism and invisibility at 4 CPUs.
// ---------------------------------------------------------------------------

struct TracedRun {
  std::string trace_json;
  std::map<std::string, uint64_t, std::less<>> counters;
  Cycles clock = 0;
  uint64_t fault_hist_count = 0;
  uint64_t dropped = 0;
  bool ok = false;
};

// Fault-heavy mixed workload at 4 CPUs; exports the trace before teardown.
TracedRun RunTraced(bool trace_enabled) {
  TracedRun out;
  KernelConfig config;
  config.cpu_count = 4;
  config.vp_count = 6;
  config.memory_frames = 48;  // 6 procs x 10 pages = 60 > 48: faults happen
  config.trace.enabled = trace_enabled;
  Kernel kernel{config};
  if (!kernel.Boot().ok()) {
    return out;
  }
  PathWalker walker(&kernel.gates());
  for (uint32_t i = 0; i < 6; ++i) {
    auto pid = kernel.processes().CreateProcess(TestSubject("U" + std::to_string(i)));
    if (!pid.ok()) {
      return out;
    }
    ProcContext* ctx = kernel.processes().Context(*pid);
    auto entry = walker.CreateSegment(*ctx, ">work>p" + std::to_string(i), WorldAcl(),
                                      Label::SystemLow());
    if (!entry.ok()) {
      return out;
    }
    auto segno = kernel.gates().Initiate(*ctx, *entry);
    if (!segno.ok()) {
      return out;
    }
    std::vector<UserOp> program;
    for (uint32_t n = 0; n < 60; ++n) {
      if (n % 3 == 0) {
        program.push_back(UserOp::Compute(25));
      } else {
        program.push_back(UserOp::Write(*segno, (n % 10) * kPageWords + n, n * 7 + i));
      }
    }
    if (!kernel.processes().SetProgram(*pid, std::move(program)).ok()) {
      return out;
    }
  }
  if (!kernel.processes().RunUntilQuiescent(1000000).ok()) {
    return out;
  }
  out.trace_json = TraceExporter::Export(kernel.ctx().trace);
  out.counters = kernel.metrics().counters();
  out.clock = kernel.clock().now();
  out.fault_hist_count = kernel.metrics().HistCount("fault.service_cycles");
  for (uint16_t cpu = 0; cpu < kernel.ctx().trace.cpu_count(); ++cpu) {
    out.dropped += kernel.ctx().trace.dropped(cpu);
  }
  out.ok = true;
  return out;
}

TEST(TraceDeterminism, TwoTracedRunsAtFourCpusExportIdenticalJson) {
  const TracedRun a = RunTraced(true);
  const TracedRun b = RunTraced(true);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  // The whole exported trace — every timestamp, duration, lane, and arg —
  // must be byte-identical: the stamps come from the deterministic global
  // clock, so any divergence means tracing consulted real time or memory
  // layout.
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_GT(a.trace_json.size(), 2u);
  EXPECT_GT(a.fault_hist_count, 0u);  // the workload really faulted
}

TEST(TraceInvisibility, EnablingTheTracerChangesNothingTheKernelComputes) {
  const TracedRun off = RunTraced(false);
  const TracedRun on = RunTraced(true);
  ASSERT_TRUE(off.ok);
  ASSERT_TRUE(on.ok);
  // Tracing charges no cycles and interns its names outside the counter
  // store, so the full counter dump and the final clock match exactly.
  EXPECT_EQ(off.counters, on.counters);
  EXPECT_EQ(off.clock, on.clock);
  // With the knob off nothing records or observes.
  EXPECT_EQ(off.fault_hist_count, 0u);
  EXPECT_TRUE(TraceExporter::Export(Tracer{nullptr, nullptr}).find("\"ph\":\"X\"") ==
              std::string::npos);
}

// ---------------------------------------------------------------------------
// Unit-level: ring overflow.
// ---------------------------------------------------------------------------

TEST(TraceRing, DropsOldestAndCountsDropped) {
  Clock clock;
  Metrics metrics;
  Tracer tracer(&clock, &metrics);
  TraceConfig config;
  config.enabled = true;
  config.ring_capacity = 8;
  tracer.Enable(1, config);
  const TraceEventId ev = tracer.InternEvent("tick");
  for (uint32_t i = 0; i < 20; ++i) {
    clock.Advance(1);
    tracer.Instant(ev, /*proc=*/i);
  }
  const std::vector<TraceRecord> kept = tracer.Snapshot(0);
  ASSERT_EQ(kept.size(), 8u);
  // Oldest-first: the survivors are pushes 12..19 (ts 13..20).
  for (size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].proc, 12 + i);
    EXPECT_EQ(kept[i].ts, 13 + i);
  }
  EXPECT_EQ(tracer.dropped(0), 12u);
  // A second lane never received records.
  EXPECT_EQ(tracer.dropped(1), 0u);
  EXPECT_TRUE(tracer.Snapshot(1).empty());
}

TEST(TraceRing, DisabledTracerRecordsNothing) {
  Clock clock;
  Metrics metrics;
  Tracer tracer(&clock, &metrics);
  tracer.Enable(2, TraceConfig{});  // enabled defaults to false
  const TraceEventId ev = tracer.InternEvent("tick");
  tracer.Instant(ev);
  tracer.CloseSpan(tracer.Begin(), ev);
  EXPECT_TRUE(tracer.Snapshot(0).empty());
  EXPECT_EQ(tracer.dropped(0), 0u);
}

// ---------------------------------------------------------------------------
// Unit-level: log2 histogram boundaries and percentiles.
// ---------------------------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 holds only the value 0; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(Metrics::BucketOf(0), 0u);
  EXPECT_EQ(Metrics::BucketOf(1), 1u);
  EXPECT_EQ(Metrics::BucketOf(2), 2u);
  EXPECT_EQ(Metrics::BucketOf(3), 2u);
  EXPECT_EQ(Metrics::BucketOf(4), 3u);
  EXPECT_EQ(Metrics::BucketOf(7), 3u);
  EXPECT_EQ(Metrics::BucketOf(8), 4u);
  EXPECT_EQ(Metrics::BucketOf((1ull << 20) - 1), 20u);
  EXPECT_EQ(Metrics::BucketOf(1ull << 20), 21u);
  EXPECT_EQ(Metrics::BucketOf(UINT64_MAX), 64u);
  // Upper bounds are what percentile readback reports.
  EXPECT_EQ(Metrics::BucketUpper(0), 0u);
  EXPECT_EQ(Metrics::BucketUpper(3), 7u);
  EXPECT_EQ(Metrics::BucketUpper(64), UINT64_MAX);
}

TEST(Histogram, PercentileReadsBucketUpperAtRank) {
  Metrics metrics;
  const HistId h = metrics.InternHistogram("test.latency");
  for (uint64_t v : {1ull, 2ull, 4ull, 8ull}) {
    metrics.Observe(h, v);
  }
  EXPECT_EQ(metrics.HistCount("test.latency"), 4u);
  // rank(p) = max(1, ceil(p * 4)); the answer is the upper bound of the
  // bucket holding the rank-th smallest observation.
  EXPECT_EQ(metrics.HistPercentile("test.latency", 0.50), 3u);   // rank 2 -> bucket of 2
  EXPECT_EQ(metrics.HistPercentile("test.latency", 0.25), 1u);   // rank 1 -> bucket of 1
  EXPECT_EQ(metrics.HistPercentile("test.latency", 0.95), 15u);  // rank 4 -> bucket of 8
  EXPECT_EQ(metrics.HistPercentile("test.latency", 0.99), 15u);
}

TEST(Histogram, StaysOutOfTheCounterStore) {
  Metrics metrics;
  const HistId h = metrics.InternHistogram("test.hidden");
  metrics.Observe(h, 42);
  // Histograms live in their own store: the counter dump is untouched, so
  // pre-tracer tests comparing counters() exactly keep passing.
  EXPECT_TRUE(metrics.counters().empty());
  ASSERT_EQ(metrics.histogram_names().size(), 1u);
  EXPECT_EQ(metrics.histogram_names()[0], "test.hidden");
  // Unknown names read as empty.
  EXPECT_EQ(metrics.HistCount("test.absent"), 0u);
  EXPECT_EQ(metrics.HistPercentile("test.absent", 0.5), 0u);
}

}  // namespace
}  // namespace mks
