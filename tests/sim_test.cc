// Tests for the simulation substrate: clock, cost model, event queue.
#include <gtest/gtest.h>

#include "src/sim/clock.h"
#include "src/sim/event_queue.h"

namespace mks {
namespace {

TEST(Clock, AdvancesMonotonically) {
  Clock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.Advance(5);
  clock.Advance(7);
  EXPECT_EQ(clock.now(), 12u);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0u);
}

TEST(CostModel, StructuredFactorApplies) {
  Clock clock;
  CostModel cost(&clock);
  cost.set_structured_factor(2.0);
  cost.Charge(CodeStyle::kOptimized, 100);
  EXPECT_EQ(clock.now(), 100u);
  cost.Charge(CodeStyle::kStructured, 100);
  EXPECT_EQ(clock.now(), 300u);
}

TEST(CostModel, DefaultFactorMatchesThePaperObservation) {
  // "the number of generated machine instructions seems to increase by
  // somewhat more than a factor of two"
  EXPECT_GT(CostModel::kDefaultStructuredFactor, 2.0);
  EXPECT_LT(CostModel::kDefaultStructuredFactor, 2.5);
}

TEST(EventQueue, RunsDueEventsInOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(30, [&] { order.push_back(3); });
  queue.Schedule(10, [&] { order.push_back(1); });
  queue.Schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(queue.RunDue(15), 1u);
  EXPECT_EQ(queue.RunDue(100), 2u);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
}

TEST(EventQueue, FifoTieBreakAtSameTime) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.Schedule(10, [&order, i] { order.push_back(i); });
  }
  queue.RunDue(10);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueue, EventsMayScheduleFurtherEvents) {
  EventQueue queue;
  int fired = 0;
  queue.Schedule(10, [&] {
    ++fired;
    queue.Schedule(20, [&] { ++fired; });
  });
  EXPECT_EQ(queue.RunDue(25), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, NextDueReportsEarliest) {
  EventQueue queue;
  queue.Schedule(50, [] {});
  queue.Schedule(40, [] {});
  EXPECT_EQ(queue.next_due(), 40u);
}

}  // namespace
}  // namespace mks
