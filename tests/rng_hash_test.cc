// Tests for deterministic randomness and hashing.
#include <gtest/gtest.h>

#include "src/common/hash.h"
#include "src/common/rng.h"

namespace mks {
namespace {

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  bool differs = false;
  for (int i = 0; i < 64; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    const uint64_t v = rng.NextInRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ZipfStaysInRangeAndSkews) {
  Rng rng(123);
  uint64_t low_half = 0;
  constexpr int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) {
    const uint64_t v = rng.NextZipf(100, 1.1);
    ASSERT_LT(v, 100u);
    if (v < 50) {
      ++low_half;
    }
  }
  // A Zipf(1.1) draw over 100 ranks lands in the first half far more than
  // uniformly.
  EXPECT_GT(low_half, static_cast<uint64_t>(kDraws) * 7 / 10);
}

TEST(Rng, BurstRespectsCap) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const uint32_t burst = rng.NextBurst(0.9, 8);
    EXPECT_GE(burst, 1u);
    EXPECT_LE(burst, 8u);
  }
}

TEST(Fnv, MatchesReferenceValues) {
  // FNV-1a 64 reference: empty string hashes to the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  // "a" -> known FNV-1a 64 value.
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Fnv, MixOrderMatters) {
  const uint64_t h1 = Fnv1a64Mix(Fnv1a64Mix(1, 2), 3);
  const uint64_t h2 = Fnv1a64Mix(Fnv1a64Mix(1, 3), 2);
  EXPECT_NE(h1, h2);
}

TEST(Sha256, KnownVectors) {
  // NIST test vectors.
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 hasher;
  hasher.Update("hello ");
  hasher.Update("world");
  EXPECT_EQ(Sha256::ToHex(hasher.Finish()), Sha256::ToHex(Sha256::Hash("hello world")));
}

TEST(Sha256, LongInputCrossesBlockBoundaries) {
  std::string long_input(1000, 'x');
  Sha256 incremental;
  for (size_t i = 0; i < long_input.size(); i += 7) {
    incremental.Update(long_input.substr(i, 7));
  }
  EXPECT_EQ(Sha256::ToHex(incremental.Finish()), Sha256::ToHex(Sha256::Hash(long_input)));
}

}  // namespace
}  // namespace mks
