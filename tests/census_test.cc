// Tests that the census reproduces the paper's kernel-size arithmetic
// exactly.
#include <gtest/gtest.h>

#include "src/census/census.h"

namespace mks {
namespace {

TEST(Census, StartingSizesMatchThePaper) {
  const KernelCensus census = KernelCensus::Paper1973();
  const SizeTable table = census.ComputeTable();
  EXPECT_EQ(table.start_ring0, 44000);
  EXPECT_EQ(table.start_answering, 10000);
  EXPECT_EQ(table.start_total, 54000);
}

TEST(Census, Pl1EquivalentRingZeroIs36K) {
  const KernelCensus census = KernelCensus::Paper1973();
  int equivalent = 0;
  int asm_source = 0;
  for (const CensusComponent& c : census.components()) {
    if (c.ring == 0) {
      equivalent += KernelCensus::Pl1Equivalent(c);
      if (c.language == Language::kAssembly) {
        asm_source += c.source_lines;
      }
    }
  }
  EXPECT_EQ(equivalent, 36000);
  // "Some of the kernel, approximately 10%," is assembly: 16K source whose
  // PL/I equivalent is 8K, i.e. ~10% of the 36K+8K picture... the paper's own
  // rough figure.  What we verify precisely is the source arithmetic.
  EXPECT_EQ(asm_source, 16000);
}

TEST(Census, ReductionsMatchThePaperTable) {
  const SizeTable table = KernelCensus::Paper1973().ComputeTable();
  std::map<std::string, int> expected = {
      {"Linker", 2000},          {"Name Manager", 1000}, {"Answering Service", 9000},
      {"Network I/O", 6000},     {"Initialization", 2000}, {"Exclusive use of PL/I", 8000},
  };
  ASSERT_EQ(table.reductions.size(), expected.size());
  for (const auto& [project, saved] : table.reductions) {
    ASSERT_TRUE(expected.count(project)) << project;
    EXPECT_EQ(saved, expected[project]) << project;
  }
  EXPECT_EQ(table.total_reduction, 28000);
  EXPECT_EQ(table.final_total, 26000);
  // "The combined effect ... could be to cut the size of the kernel roughly
  // in half."
  EXPECT_LT(table.final_total, table.start_total * 55 / 100);
  EXPECT_GT(table.final_total, table.start_total * 40 / 100);
}

TEST(Census, EntryPointStatsMatchThePaper) {
  const EntryPointStats stats = KernelCensus::Paper1973().EntryPoints();
  EXPECT_EQ(stats.internal_entries, 1200);
  EXPECT_EQ(stats.user_gates, 157);
  EXPECT_DOUBLE_EQ(stats.linker_object_code_share, 0.05);
  EXPECT_DOUBLE_EQ(stats.linker_internal_entry_share, 0.025);
  EXPECT_DOUBLE_EQ(stats.linker_user_gate_share, 0.11);
}

TEST(Census, FileStoreSpecializationWithinPaperBounds) {
  const auto spec = KernelCensus::Paper1973().FileStoreSpecialization();
  EXPECT_GE(spec.percent_removed, 15.0);
  EXPECT_LE(spec.percent_removed, 25.0);
  EXPECT_EQ(spec.final_total - spec.after_specialization,
            spec.final_total - spec.after_specialization);
  EXPECT_LT(spec.after_specialization, spec.final_total);
}

TEST(Census, RenderMentionsEveryProject) {
  const std::string rendered = KernelCensus::Paper1973().Render();
  for (const char* needle :
       {"44K ring 0", "10K Answering Service", "54K TOTAL", "Linker", "Name Manager",
        "Network I/O", "Initialization", "Exclusive use of PL/I", "26K", "157"}) {
    EXPECT_NE(rendered.find(needle), std::string::npos) << needle << "\n" << rendered;
  }
}

}  // namespace
}  // namespace mks
