// Tests for eventcounts, sequencers, the simulated spin lock, and the
// real-memory message queue.
#include <gtest/gtest.h>

#include "src/sync/eventcount.h"
#include "src/sync/message_queue.h"
#include "src/sync/spinlock.h"

namespace mks {
namespace {

TEST(SimSpinLock, UncontendedAcquireIsFree) {
  SimSpinLock lock;
  EXPECT_EQ(lock.Acquire(100), 0u);
  lock.Release(150);
  // The next acquirer arrives after the release point: still free.
  EXPECT_EQ(lock.Acquire(200), 0u);
  EXPECT_EQ(lock.contended(), 0u);
}

TEST(SimSpinLock, ContendedAcquireBurnsTheGap) {
  SimSpinLock lock;
  lock.Acquire(0);
  lock.Release(500);
  // An acquirer whose local clock is behind the release point spins the gap.
  EXPECT_EQ(lock.Acquire(120), 380u);
  EXPECT_EQ(lock.contended(), 1u);
  EXPECT_EQ(lock.total_spin(), 380u);
  EXPECT_EQ(lock.max_spin(), 380u);
  EXPECT_EQ(lock.handoffs(), 0u);  // plain mode: no handoff charges
}

TEST(SimSpinLock, TicketModeAddsHandoffPerContendedGrant) {
  SimSpinLock plain;
  SimSpinLock ticket;
  ticket.ConfigureTicket(true, 48);
  for (SimSpinLock* lock : {&plain, &ticket}) {
    lock->Acquire(0);
    lock->Release(500);
  }
  EXPECT_EQ(plain.Acquire(120), 380u);
  EXPECT_EQ(ticket.Acquire(120), 428u);  // the same gap plus one handoff
  EXPECT_EQ(ticket.handoffs(), 1u);
  EXPECT_EQ(ticket.handoff_cycles(), 48u);
  // Uncontended acquisitions stay free in ticket mode: the line is resident.
  ticket.Release(900);
  EXPECT_EQ(ticket.Acquire(1000), 0u);
  EXPECT_EQ(ticket.handoffs(), 1u);
}

TEST(Eventcount, AdvanceWakesSatisfiedWaiters) {
  Metrics metrics;
  EventcountTable table(&metrics);
  const EventcountId ec = table.Create("page_arrival");
  EXPECT_EQ(table.Read(ec), 0u);

  EXPECT_FALSE(table.AwaitOrEnqueue(ec, 1, VpId(1)));
  EXPECT_FALSE(table.AwaitOrEnqueue(ec, 2, VpId(2)));
  EXPECT_EQ(table.WaiterCount(ec), 2u);

  auto woken = table.Advance(ec);
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0].value, 1u);
  EXPECT_EQ(table.WaiterCount(ec), 1u);

  woken = table.Advance(ec);
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0].value, 2u);
}

TEST(Eventcount, AwaitAlreadySatisfiedDoesNotEnqueue) {
  Metrics metrics;
  EventcountTable table(&metrics);
  const EventcountId ec = table.Create("x");
  table.Advance(ec);
  EXPECT_TRUE(table.AwaitOrEnqueue(ec, 1, VpId(1)));
  EXPECT_EQ(table.WaiterCount(ec), 0u);
}

TEST(Eventcount, BroadcastWakesAllWaitersAtSameTarget) {
  Metrics metrics;
  EventcountTable table(&metrics);
  const EventcountId ec = table.Create("x");
  for (uint16_t vp = 0; vp < 5; ++vp) {
    EXPECT_FALSE(table.AwaitOrEnqueue(ec, 1, VpId(vp)));
  }
  // "Notifies all processes that have been waiting for this event."
  EXPECT_EQ(table.Advance(ec).size(), 5u);
}

TEST(Eventcount, CancelWaitRemovesWaiter) {
  Metrics metrics;
  EventcountTable table(&metrics);
  const EventcountId ec = table.Create("x");
  EXPECT_FALSE(table.AwaitOrEnqueue(ec, 1, VpId(3)));
  table.CancelWait(ec, VpId(3));
  EXPECT_EQ(table.Advance(ec).size(), 0u);
}

TEST(Eventcount, ValuesAreMonotonic) {
  Metrics metrics;
  EventcountTable table(&metrics);
  const EventcountId ec = table.Create("x");
  uint64_t last = table.Read(ec);
  for (int i = 0; i < 100; ++i) {
    table.Advance(ec);
    EXPECT_EQ(table.Read(ec), last + 1);
    last = table.Read(ec);
  }
}

TEST(Sequencer, TicketsStrictlyIncrease) {
  Sequencer seq;
  uint64_t prev = seq.Ticket();
  for (int i = 0; i < 50; ++i) {
    const uint64_t t = seq.Ticket();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(RealMemoryQueue, FifoRoundTrip) {
  std::vector<uint64_t> storage(RealMemoryQueue::kHeaderWords +
                                4 * RealMemoryQueue::kSlotWords);
  RealMemoryQueue queue{std::span<uint64_t>(storage)};
  EXPECT_EQ(queue.capacity(), 4u);
  EXPECT_TRUE(queue.empty());
  ASSERT_TRUE(queue.Push(UpwardMessage{ProcessId(7), 1, 42}).ok());
  ASSERT_TRUE(queue.Push(UpwardMessage{ProcessId(8), 2, 43}).ok());
  auto first = queue.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->dest.value, 7u);
  EXPECT_EQ(first->payload, 42u);
  auto second = queue.Pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->dest.value, 8u);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(RealMemoryQueue, OverflowCountsDropsNeverBlocks) {
  std::vector<uint64_t> storage(RealMemoryQueue::kHeaderWords +
                                2 * RealMemoryQueue::kSlotWords);
  RealMemoryQueue queue{std::span<uint64_t>(storage)};
  ASSERT_TRUE(queue.Push(UpwardMessage{ProcessId(1), 0, 0}).ok());
  ASSERT_TRUE(queue.Push(UpwardMessage{ProcessId(2), 0, 0}).ok());
  EXPECT_EQ(queue.Push(UpwardMessage{ProcessId(3), 0, 0}).code(), Code::kResourceExhausted);
  EXPECT_EQ(queue.dropped(), 1u);
}

TEST(RealMemoryQueue, WrapsAroundManyTimes) {
  std::vector<uint64_t> storage(RealMemoryQueue::kHeaderWords +
                                3 * RealMemoryQueue::kSlotWords);
  RealMemoryQueue queue{std::span<uint64_t>(storage)};
  for (uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.Push(UpwardMessage{ProcessId(i), i, i * 2}).ok());
    auto msg = queue.Pop();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->dest.value, i);
    EXPECT_EQ(msg->payload, i * 2u);
  }
}

TEST(RealMemoryQueue, ContentLivesInTheBackingWords) {
  // The residency claim: every message is literally words in the span.
  std::vector<uint64_t> storage(RealMemoryQueue::kHeaderWords +
                                2 * RealMemoryQueue::kSlotWords);
  RealMemoryQueue queue{std::span<uint64_t>(storage)};
  ASSERT_TRUE(queue.Push(UpwardMessage{ProcessId(9), 5, 1234}).ok());
  EXPECT_EQ(storage[RealMemoryQueue::kHeaderWords], 9u);
  EXPECT_EQ(storage[RealMemoryQueue::kHeaderWords + 2], 1234u);
}

}  // namespace
}  // namespace mks
