// Tests for the directory manager: Bratt's search primitive, ACL/label
// interaction, and entry lifecycle.
#include <gtest/gtest.h>

#include "tests/kernel_fixture.h"

namespace mks {
namespace {

TEST(DirectorySearch, AccessibleDirectoryNormalSemantics) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  auto seg = gates.CreateSegment(*fx.ctx, gates.RootId(), "real", WorldAcl(),
                                 Label::SystemLow());
  ASSERT_TRUE(seg.ok());
  auto hit = gates.Search(*fx.ctx, gates.RootId(), "real");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->value, seg->value);
  EXPECT_EQ(gates.Search(*fx.ctx, gates.RootId(), "fake").code(), Code::kNoEntry);
}

// The Bratt gimmick, end to end: an inaccessible intermediate directory
// leaks nothing, yet a path through it to an accessible file still works.
TEST(DirectorySearch, InaccessibleDirectoryAlwaysAnswers) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();

  // Owner builds >secret (owner-only) containing an open file and nothing else.
  auto owner_proc = fx.kernel.processes().CreateProcess(TestSubject("Owner"));
  ASSERT_TRUE(owner_proc.ok());
  ProcContext* owner = fx.kernel.processes().Context(*owner_proc);
  auto secret_dir = gates.CreateDirectory(*owner, gates.RootId(), "secret",
                                          OwnerOnlyAcl("Owner"), Label::SystemLow());
  ASSERT_TRUE(secret_dir.ok());
  auto open_file =
      gates.CreateSegment(*owner, *secret_dir, "open_file", WorldAcl(), Label::SystemLow());
  ASSERT_TRUE(open_file.ok());

  // A stranger probes through the inaccessible directory.
  auto dir_id = gates.Search(*fx.ctx, gates.RootId(), "secret");
  ASSERT_TRUE(dir_id.ok());  // the directory's NAME is in the (readable) root

  // Probing an existing name and a nonexistent name both "succeed".
  auto exists = gates.Search(*fx.ctx, *dir_id, "open_file");
  auto ghost = gates.Search(*fx.ctx, *dir_id, "no_such_file");
  ASSERT_TRUE(exists.ok());
  ASSERT_TRUE(ghost.ok());

  // The real one can be initiated (access determined ENTIRELY by the file's
  // own ACL); the ghost yields the same "no access" any inaccessible object
  // yields.
  EXPECT_TRUE(gates.Initiate(*fx.ctx, *exists).ok());
  EXPECT_EQ(gates.Initiate(*fx.ctx, *ghost).code(), Code::kNoAccess);
}

TEST(DirectorySearch, MythicalChainsAreSelfConsistent) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  auto owner_proc = fx.kernel.processes().CreateProcess(TestSubject("Owner"));
  ASSERT_TRUE(owner_proc.ok());
  ProcContext* owner = fx.kernel.processes().Context(*owner_proc);
  auto secret_dir = gates.CreateDirectory(*owner, gates.RootId(), "vault",
                                          OwnerOnlyAcl("Owner"), Label::SystemLow());
  ASSERT_TRUE(secret_dir.ok());

  // Searching a mythical identifier as if it were a directory also succeeds,
  // deterministically (the same probe gives the same identifier).
  auto ghost_dir = gates.Search(*fx.ctx, *secret_dir, "maybe_dir");
  ASSERT_TRUE(ghost_dir.ok());
  auto deeper1 = gates.Search(*fx.ctx, *ghost_dir, "deeper");
  auto deeper2 = gates.Search(*fx.ctx, *ghost_dir, "deeper");
  ASSERT_TRUE(deeper1.ok());
  ASSERT_TRUE(deeper2.ok());
  EXPECT_EQ(deeper1->value, deeper2->value);
  EXPECT_EQ(gates.Initiate(*fx.ctx, *deeper1).code(), Code::kNoAccess);
}

TEST(DirectorySearch, ProbeCannotDistinguishExistenceThroughOpaqueDir) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  auto owner_proc = fx.kernel.processes().CreateProcess(TestSubject("Owner"));
  ASSERT_TRUE(owner_proc.ok());
  ProcContext* owner = fx.kernel.processes().Context(*owner_proc);
  auto secret_dir = gates.CreateDirectory(*owner, gates.RootId(), "opaque",
                                          OwnerOnlyAcl("Owner"), Label::SystemLow());
  ASSERT_TRUE(secret_dir.ok());
  auto private_file = gates.CreateSegment(*owner, *secret_dir, "private",
                                          OwnerOnlyAcl("Owner"), Label::SystemLow());
  ASSERT_TRUE(private_file.ok());

  // For the prober, an existing-but-private file and a nonexistent file give
  // IDENTICAL observable sequences: search ok, initiate no_access.
  auto probe_existing = gates.Search(*fx.ctx, *secret_dir, "private");
  auto probe_missing = gates.Search(*fx.ctx, *secret_dir, "missing");
  ASSERT_TRUE(probe_existing.ok());
  ASSERT_TRUE(probe_missing.ok());
  EXPECT_EQ(gates.Initiate(*fx.ctx, *probe_existing).code(), Code::kNoAccess);
  EXPECT_EQ(gates.Initiate(*fx.ctx, *probe_missing).code(), Code::kNoAccess);
}

TEST(Directory, NameDuplicationRejected) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  ASSERT_TRUE(gates.CreateSegment(*fx.ctx, gates.RootId(), "dup", WorldAcl(),
                                  Label::SystemLow())
                  .ok());
  EXPECT_EQ(gates.CreateSegment(*fx.ctx, gates.RootId(), "dup", WorldAcl(), Label::SystemLow())
                .code(),
            Code::kNameDuplication);
}

TEST(Directory, DeleteRequiresEmptyDirectory) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  auto dir = gates.CreateDirectory(*fx.ctx, gates.RootId(), "d", WorldAcl(), Label::SystemLow());
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(gates.CreateSegment(*fx.ctx, *dir, "x", WorldAcl(), Label::SystemLow()).ok());
  EXPECT_EQ(gates.Delete(*fx.ctx, gates.RootId(), "d").code(), Code::kNonEmpty);
  ASSERT_TRUE(gates.Delete(*fx.ctx, *dir, "x").ok());
  EXPECT_TRUE(gates.Delete(*fx.ctx, gates.RootId(), "d").ok());
}

TEST(Directory, ListNamesRequiresStatusAccess) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  auto owner_proc = fx.kernel.processes().CreateProcess(TestSubject("Owner"));
  ASSERT_TRUE(owner_proc.ok());
  ProcContext* owner = fx.kernel.processes().Context(*owner_proc);
  auto dir = gates.CreateDirectory(*owner, gates.RootId(), "mine", OwnerOnlyAcl("Owner"),
                                   Label::SystemLow());
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(gates.CreateSegment(*owner, *dir, "a", WorldAcl(), Label::SystemLow()).ok());
  std::vector<std::string> names;
  EXPECT_TRUE(gates.ListNames(*owner, *dir, &names).ok());
  EXPECT_EQ(names.size(), 1u);
  EXPECT_EQ(gates.ListNames(*fx.ctx, *dir, &names).code(), Code::kNoAccess);
}

TEST(Directory, SetAclChangesEffectiveAccess) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  auto seg = gates.CreateSegment(*fx.ctx, gates.RootId(), "f", OwnerOnlyAcl("Jones"),
                                 Label::SystemLow());
  ASSERT_TRUE(seg.ok());
  auto other_proc = fx.kernel.processes().CreateProcess(TestSubject("Smith"));
  ASSERT_TRUE(other_proc.ok());
  ProcContext* other = fx.kernel.processes().Context(*other_proc);
  EXPECT_EQ(gates.Initiate(*other, *seg).code(), Code::kNoAccess);
  // Grant Smith access: one ACL change on the file, nothing else to touch —
  // "the transaction is complete".
  ASSERT_TRUE(gates.SetAcl(*fx.ctx, gates.RootId(), "f", WorldAcl()).ok());
  EXPECT_TRUE(gates.Initiate(*other, *seg).ok());
}

TEST(Directory, LabelsFlowDownward) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  // A secret-labelled subject cannot create under an unclassified directory
  // with an unclassified label (would write down), and entries must dominate
  // their directory.
  auto secret_proc = fx.kernel.processes().CreateProcess(TestSubject("Spy", 3));
  ASSERT_TRUE(secret_proc.ok());
  ProcContext* spy = fx.kernel.processes().Context(*secret_proc);
  // Writing an entry into the (low) root is a write-down for a secret
  // subject: forbidden regardless of the requested entry label.
  EXPECT_FALSE(
      gates.CreateSegment(*spy, gates.RootId(), "leak", WorldAcl(), Label::SystemLow()).ok());
  EXPECT_FALSE(
      gates.CreateSegment(*spy, gates.RootId(), "report", WorldAcl(), Label(3, 0)).ok());
  // A low subject builds an UPGRADED directory (label 3) in the low root;
  // the secret subject may then create inside it, at its own level.
  auto upgraded =
      gates.CreateDirectory(*fx.ctx, gates.RootId(), "secret_area", WorldAcl(), Label(3, 0));
  ASSERT_TRUE(upgraded.ok()) << upgraded.status();
  EXPECT_TRUE(gates.CreateSegment(*spy, *upgraded, "report", WorldAcl(), Label(3, 0)).ok());
  // And an entry may never be labelled below its directory.
  EXPECT_FALSE(gates.CreateSegment(*spy, *upgraded, "down", WorldAcl(), Label(1, 0)).ok());
}

}  // namespace
}  // namespace mks
