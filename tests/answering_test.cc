// Tests for the answering service: authentication, clearance, sessions,
// and accounting.
#include <gtest/gtest.h>

#include "src/answering/service.h"
#include "tests/kernel_fixture.h"

namespace mks {
namespace {

struct AnsweringFixture {
  AnsweringFixture() : kernel(KernelConfig{}), auth(&kernel), service(&kernel, &auth) {
    EXPECT_TRUE(kernel.Boot().ok());
    EXPECT_TRUE(auth.Init().ok());
    EXPECT_TRUE(auth.Enroll(Principal{"Jones", "Projx"}, "hunter2", Label(3, 0b11)).ok());
  }
  Kernel kernel;
  Authenticator auth;
  AnsweringService service;
};

TEST(Auth, GoodAndBadPasswords) {
  AnsweringFixture fx;
  auto subject = fx.auth.Authenticate(Principal{"Jones", "Projx"}, "hunter2", Label(1, 0));
  ASSERT_TRUE(subject.ok());
  EXPECT_EQ(subject->principal.person, "Jones");
  EXPECT_EQ(subject->label.level(), 1);

  EXPECT_EQ(fx.auth.Authenticate(Principal{"Jones", "Projx"}, "wrong", Label(1, 0)).code(),
            Code::kAuthenticationFailed);
  EXPECT_EQ(fx.auth.Authenticate(Principal{"Nobody", "P"}, "hunter2", Label(1, 0)).code(),
            Code::kAuthenticationFailed);
  EXPECT_EQ(fx.auth.failed_attempts(), 2u);
}

TEST(Auth, ClearanceBoundsSessionLabel) {
  AnsweringFixture fx;
  // Within clearance (3, {0,1}).
  EXPECT_TRUE(fx.auth.Authenticate(Principal{"Jones", "Projx"}, "hunter2", Label(3, 0b10)).ok());
  // Above clearance level.
  EXPECT_EQ(
      fx.auth.Authenticate(Principal{"Jones", "Projx"}, "hunter2", Label(4, 0)).code(),
      Code::kNoAccess);
  // Compartment outside clearance.
  EXPECT_EQ(
      fx.auth.Authenticate(Principal{"Jones", "Projx"}, "hunter2", Label(1, 0b100)).code(),
      Code::kNoAccess);
}

TEST(Auth, ChangePasswordRequiresOldPassword) {
  AnsweringFixture fx;
  EXPECT_EQ(
      fx.auth.ChangePassword(Principal{"Jones", "Projx"}, "nope", "newpw").code(),
      Code::kAuthenticationFailed);
  ASSERT_TRUE(fx.auth.ChangePassword(Principal{"Jones", "Projx"}, "hunter2", "newpw").ok());
  EXPECT_TRUE(fx.auth.Authenticate(Principal{"Jones", "Projx"}, "newpw", Label(0, 0)).ok());
  EXPECT_EQ(fx.auth.Authenticate(Principal{"Jones", "Projx"}, "hunter2", Label(0, 0)).code(),
            Code::kAuthenticationFailed);
}

TEST(Answering, LoginCreatesProcessAndHomeDirectory) {
  AnsweringFixture fx;
  auto pid = fx.service.Login(Principal{"Jones", "Projx"}, "hunter2", Label(0, 0));
  ASSERT_TRUE(pid.ok()) << pid.status();
  EXPECT_EQ(fx.service.active_sessions(), 1u);
  // The home directory exists and is usable by the session.
  ProcContext* ctx = fx.kernel.processes().Context(*pid);
  PathWalker walker(&fx.kernel.gates());
  auto segno = walker.CreateSegment(*ctx, ">udd>Projx>Jones>mbx", WorldAcl(), Label(0, 0));
  EXPECT_TRUE(segno.ok()) << segno.status();
}

TEST(Answering, LoginFailuresCreateNoSession) {
  AnsweringFixture fx;
  EXPECT_FALSE(fx.service.Login(Principal{"Jones", "Projx"}, "bad", Label(0, 0)).ok());
  EXPECT_EQ(fx.service.active_sessions(), 0u);
  EXPECT_EQ(fx.kernel.metrics().Get("answering.logins"), 0u);
}

TEST(Answering, LogoutBillsTheSession) {
  AnsweringFixture fx;
  auto pid = fx.service.Login(Principal{"Jones", "Projx"}, "hunter2", Label(0, 0));
  ASSERT_TRUE(pid.ok());
  // Run a little work so the bill is nonzero.
  ProcContext* ctx = fx.kernel.processes().Context(*pid);
  PathWalker walker(&fx.kernel.gates());
  auto entry = walker.CreateSegment(*ctx, ">udd>Projx>Jones>scratch", WorldAcl(), Label(0, 0));
  ASSERT_TRUE(entry.ok());
  auto segno = fx.kernel.gates().Initiate(*ctx, *entry);
  ASSERT_TRUE(segno.ok());
  std::vector<UserOp> program;
  for (int i = 0; i < 10; ++i) {
    program.push_back(UserOp::Write(*segno, static_cast<uint32_t>(i), i));
    program.push_back(UserOp::Compute(50));
  }
  ASSERT_TRUE(fx.kernel.processes().SetProgram(*pid, std::move(program)).ok());
  ASSERT_TRUE(fx.kernel.processes().RunUntilQuiescent(10000).ok());

  auto bill = fx.service.BillFor(*pid);
  ASSERT_TRUE(bill.ok());
  EXPECT_EQ(bill->ops, 20u);
  EXPECT_GT(bill->cpu_cycles, 0u);
  ASSERT_TRUE(fx.service.Logout(*pid).ok());
  EXPECT_EQ(fx.service.active_sessions(), 0u);
  const std::string report = fx.service.AccountingReport();
  EXPECT_NE(report.find("Jones.Projx"), std::string::npos);
}

TEST(Answering, PasswordImagesLiveInAProtectedSegment) {
  AnsweringFixture fx;
  // A user-ring subject cannot initiate >system>password_images.
  auto pid = fx.service.Login(Principal{"Jones", "Projx"}, "hunter2", Label(3, 0b11));
  ASSERT_TRUE(pid.ok());
  ProcContext* ctx = fx.kernel.processes().Context(*pid);
  PathWalker walker(&fx.kernel.gates());
  auto probe = walker.Walk(*ctx, ">system>password_images");
  ASSERT_TRUE(probe.ok());  // an identifier comes back (real or mythical)...
  EXPECT_EQ(fx.kernel.gates().Initiate(*ctx, *probe).code(), Code::kNoAccess);
}

}  // namespace
}  // namespace mks
