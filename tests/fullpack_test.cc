// End-to-end tests of the full-pack exception path in the new kernel: the
// downward grow chain, relocation, and the non-returning upward signal that
// rewrites the directory entry.
#include <gtest/gtest.h>

#include "tests/kernel_fixture.h"

namespace mks {
namespace {

KernelConfig TinyPacks() {
  KernelConfig config;
  config.pack_count = 2;
  config.records_per_pack = 28;
  config.vtoc_slots_per_pack = 32;
  return config;
}

TEST(FullPack, SegmentMovesAndDirectoryEntryIsRewritten) {
  KernelFixture fx{TinyPacks()};
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();

  auto a = gates.CreateSegment(*fx.ctx, gates.RootId(), "a", WorldAcl(), Label::SystemLow());
  auto b = gates.CreateSegment(*fx.ctx, gates.RootId(), "b", WorldAcl(), Label::SystemLow());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto sa = gates.Initiate(*fx.ctx, *a);
  auto sb = gates.Initiate(*fx.ctx, *b);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());

  // Interleave growth on both segments until one pack fills and the upward
  // signal fires.
  Status st = Status::Ok();
  uint32_t grown = 0;
  for (uint32_t p = 0; p < 24 && st.ok(); ++p) {
    st = gates.Write(*fx.ctx, *sa, p * kPageWords, p + 1);
    if (st.ok()) {
      st = gates.Write(*fx.ctx, *sb, p * kPageWords, p + 101);
      ++grown;
    }
  }
  ASSERT_GT(fx.kernel.metrics().Get("ksm.full_pack_moves"), 0u);
  ASSERT_GT(fx.kernel.metrics().Get("gates.upward_signals"), 0u);
  ASSERT_GT(fx.kernel.metrics().Get("dir.moves_completed"), 0u);

  // Every page written before and after the move is intact.
  for (uint32_t p = 0; p < grown; ++p) {
    auto va = gates.Read(*fx.ctx, *sa, p * kPageWords);
    ASSERT_TRUE(va.ok()) << p << ": " << va.status();
    EXPECT_EQ(*va, p + 1);
    auto vb = gates.Read(*fx.ctx, *sb, p * kPageWords);
    ASSERT_TRUE(vb.ok()) << p << ": " << vb.status();
    EXPECT_EQ(*vb, p + 101);
  }
}

TEST(FullPack, OtherProcessReconnectsThroughSegmentFault) {
  KernelFixture fx{TinyPacks()};
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();

  auto other_proc = fx.kernel.processes().CreateProcess(TestSubject("Smith"));
  ASSERT_TRUE(other_proc.ok());
  ProcContext* other = fx.kernel.processes().Context(*other_proc);

  auto a = gates.CreateSegment(*fx.ctx, gates.RootId(), "a", WorldAcl(), Label::SystemLow());
  auto filler =
      gates.CreateSegment(*fx.ctx, gates.RootId(), "fill", WorldAcl(), Label::SystemLow());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(filler.ok());
  auto sa_mine = gates.Initiate(*fx.ctx, *a);
  auto sa_other = gates.Initiate(*other, *a);
  auto sf = gates.Initiate(*fx.ctx, *filler);
  ASSERT_TRUE(sa_mine.ok());
  ASSERT_TRUE(sa_other.ok());
  ASSERT_TRUE(sf.ok());

  // Both processes touch `a`, then growth forces it off its pack.
  ASSERT_TRUE(gates.Write(*fx.ctx, *sa_mine, 0, 42).ok());
  auto seen = gates.Read(*other, *sa_other, 0);
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(*seen, 42u);

  Status st = Status::Ok();
  for (uint32_t p = 0; p < 24 && st.ok(); ++p) {
    st = gates.Write(*fx.ctx, *sf, p * kPageWords, 1);
    if (st.ok()) {
      st = gates.Write(*fx.ctx, *sa_mine, p * kPageWords, p);
    }
  }
  ASSERT_GT(fx.kernel.metrics().Get("ksm.full_pack_moves"), 0u);

  // The other process's SDW was severed by the move; its next reference
  // takes a missing-segment fault and reconnects via the standard machinery.
  auto after = gates.Read(*other, *sa_other, 0);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(*after, 0u);  // page 0 was rewritten with p=0 during the fill
  EXPECT_GT(fx.kernel.metrics().Get("ksm.segment_faults"), 0u);
}

TEST(FullPack, WhenNoTargetPackExistsGrowthFails) {
  KernelConfig config = TinyPacks();
  config.pack_count = 1;  // nowhere to move to
  KernelFixture fx{config};
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  auto a = gates.CreateSegment(*fx.ctx, gates.RootId(), "a", WorldAcl(), Label::SystemLow());
  ASSERT_TRUE(a.ok());
  auto sa = gates.Initiate(*fx.ctx, *a);
  ASSERT_TRUE(sa.ok());
  Status st = Status::Ok();
  uint32_t p = 0;
  for (; p < 40 && st.ok(); ++p) {
    st = gates.Write(*fx.ctx, *sa, p * kPageWords, 1);
  }
  EXPECT_EQ(st.code(), Code::kPackFull);
}

}  // namespace
}  // namespace mks
