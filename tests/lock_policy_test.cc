// Tests for the pluggable lock-policy suite (PR 7): the per-policy handoff
// arithmetic at the SimSpinLock unit level, loud Anderson over-subscription,
// knobs-off byte-equivalence with the pre-policy lock, and bit-identical
// double-runs per policy at 4 and 16 CPUs.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/baseline/supervisor.h"
#include "src/sync/spinlock.h"
#include "tests/kernel_fixture.h"

namespace mks {
namespace {

// ---------------------------------------------------------------------------
// SimSpinLock unit level: the handoff-traffic arithmetic.
//
// One shared script, three acquirers: A takes the lock uncontended and holds
// until t=1000; B arrives at t=0 (one grant inside its wait window); C
// arrives at t=500 after B released at t=1200 (two grants inside its
// window).  Only the traffic charged on top of the gap differs by policy.
// ---------------------------------------------------------------------------

constexpr Cycles kLine = 100;

LockPolicyConfig PolicyConfig(LockPolicy policy, uint16_t slots = 4) {
  return LockPolicyConfig{policy, kLine, slots};
}

TEST(LockPolicyUnit, TestAndSetChargesOnlyTheGap) {
  SimSpinLock lock;
  lock.Configure(PolicyConfig(LockPolicy::kTestAndSet));
  EXPECT_EQ(lock.Acquire(0, 0), 0u);
  lock.Release(1000);
  EXPECT_EQ(lock.Acquire(0, 1), 1000u);  // the gap, nothing else
  lock.Release(1200);
  EXPECT_EQ(lock.Acquire(500, 2), 700u);
  lock.Release(1400);
  EXPECT_EQ(lock.acquisitions(), 3u);
  EXPECT_EQ(lock.contended(), 2u);
  EXPECT_EQ(lock.handoffs(), 0u);
  EXPECT_EQ(lock.handoff_cycles(), 0u);
  EXPECT_EQ(lock.total_spin(), 1700u);
}

TEST(LockPolicyUnit, TicketPaysOneLinePerObservedHandoff) {
  SimSpinLock lock;
  lock.Configure(PolicyConfig(LockPolicy::kTicket));
  EXPECT_EQ(lock.Acquire(0, 0), 0u);  // uncontended: line already resident
  lock.Release(1000);
  // B's window (0, 1000] holds one recorded grant: gap 1000 + 1 transfer.
  EXPECT_EQ(lock.Acquire(0, 1), 1000u + kLine);
  lock.Release(1200);
  // C's window (500, 1200] holds both grants (1000 and 1200): now_serving
  // was invalidated under it twice, so it pays two line re-fetches.
  EXPECT_EQ(lock.Acquire(500, 2), 700u + 2 * kLine);
  lock.Release(1400);
  EXPECT_EQ(lock.handoffs(), 3u);
  EXPECT_EQ(lock.handoff_cycles(), 3 * kLine);
  EXPECT_EQ(lock.max_queue_depth(), 3u);  // C saw two grants + itself
  EXPECT_EQ(lock.max_spin(), 1000u + kLine);
}

TEST(LockPolicyUnit, AndersonAndMcsPayExactlyOneLinePerHandoff) {
  for (LockPolicy policy : {LockPolicy::kAnderson, LockPolicy::kMcs}) {
    SCOPED_TRACE(LockPolicyName(policy));
    SimSpinLock lock;
    lock.Configure(PolicyConfig(policy));
    EXPECT_EQ(lock.Acquire(0, 0), 0u);
    lock.Release(1000);
    EXPECT_EQ(lock.Acquire(0, 1), 1000u + kLine);
    lock.Release(1200);
    // Same two-grant window as the ticket case, but the releasing holder
    // wrote C's private slot/node: one line moved, however deep the queue.
    EXPECT_EQ(lock.Acquire(500, 2), 700u + kLine);
    lock.Release(1400);
    EXPECT_EQ(lock.handoffs(), 2u);
    EXPECT_EQ(lock.handoff_cycles(), 2 * kLine);
    EXPECT_EQ(lock.max_queue_depth(), 3u);  // depth observed, not charged
    EXPECT_EQ(lock.total_spin(), 1700u + 2 * kLine);
  }
}

TEST(LockPolicyUnit, HandoffOrderIsFifoAndResumesAtTheReleasePoint) {
  // Host call order is grant order in every policy.  A contended acquirer
  // resumes exactly at the previous holder's release point plus its
  // policy's transfer charge: local_now + spin lands on free_at_ + traffic,
  // never earlier and never reordered.
  for (LockPolicy policy : {LockPolicy::kTicket, LockPolicy::kAnderson, LockPolicy::kMcs}) {
    SCOPED_TRACE(LockPolicyName(policy));
    SimSpinLock lock;
    lock.Configure(PolicyConfig(policy));
    ASSERT_EQ(lock.Acquire(0, 0), 0u);
    lock.Release(900);
    Cycles release_point = 900;
    // Arrival times deliberately out of order (700 after 300): the lock
    // still hands off in call order, each acquirer departing from the
    // previous release point.
    const Cycles arrivals[] = {300, 700, 100};
    const uint16_t cpus[] = {1, 2, 3};
    for (int i = 0; i < 3; ++i) {
      const Cycles spin = lock.Acquire(arrivals[i], cpus[i]);
      const Cycles resume = arrivals[i] + spin;
      EXPECT_GE(resume, release_point + kLine);
      if (policy != LockPolicy::kTicket) {
        EXPECT_EQ(resume, release_point + kLine);  // exactly one line transfer
      }
      const Cycles hold = 50;
      release_point = resume + hold;
      lock.Release(release_point);
    }
    EXPECT_EQ(lock.contended(), 3u);
  }
}

TEST(LockPolicyUnit, UncontendedAcquiresAreFreeUnderEveryPolicy) {
  for (LockPolicy policy :
       {LockPolicy::kTestAndSet, LockPolicy::kTicket, LockPolicy::kAnderson, LockPolicy::kMcs}) {
    SimSpinLock lock;
    lock.Configure(PolicyConfig(policy));
    EXPECT_EQ(lock.Acquire(0, 0), 0u);
    lock.Release(100);
    EXPECT_EQ(lock.Acquire(200, 1), 0u);  // arrived after the release: no handoff
    lock.Release(300);
    EXPECT_EQ(lock.contended(), 0u);
    EXPECT_EQ(lock.handoff_cycles(), 0u);
  }
}

TEST(LockPolicyUnit, ConfigureSupersedesTheLegacyTicketModel) {
  SimSpinLock lock;
  lock.ConfigureTicket(true, 48);
  lock.Configure(PolicyConfig(LockPolicy::kMcs));
  EXPECT_EQ(lock.Acquire(0, 0), 0u);
  lock.Release(1000);
  // The legacy fixed 48-cycle charge must be gone: MCS charges one line.
  EXPECT_EQ(lock.Acquire(0, 1), 1000u + kLine);
}

TEST(LockPolicyUnit, LegacyTicketModelIsUntouched) {
  SimSpinLock lock;
  lock.ConfigureTicket(true, 48);
  EXPECT_EQ(lock.Acquire(0), 0u);
  lock.Release(1000);
  EXPECT_EQ(lock.Acquire(0), 1048u);  // gap + fixed handoff, the PR 5 model
  EXPECT_EQ(lock.handoffs(), 1u);
  EXPECT_EQ(lock.handoff_cycles(), 48u);
}

TEST(LockPolicyDeathTest, AndersonWithoutSlotsAbortsAtConfigure) {
  EXPECT_DEATH(
      {
        SimSpinLock lock;
        lock.Configure(LockPolicyConfig{LockPolicy::kAnderson, kLine, 0});
      },
      "anderson_slots");
}

TEST(LockPolicyDeathTest, AndersonOverSubscriptionAbortsLoudly) {
  // A 2-slot array accepts two distinct CPUs; the third is the silent-wrap
  // bug class of the real lock and must abort, not wrap.
  EXPECT_DEATH(
      {
        SimSpinLock lock;
        lock.Configure(LockPolicyConfig{LockPolicy::kAnderson, kLine, 2});
        lock.Acquire(0, 0);
        lock.Release(10);
        lock.Acquire(0, 1);
        lock.Release(20);
        lock.Acquire(0, 2);
      },
      "over-subscribed");
}

// ---------------------------------------------------------------------------
// Kernel level: knobs-off equivalence and per-policy determinism on the
// global ready list (the runqueue_test.cc mixed workload, with the list
// lock under contention at quantum 3 and connect cost 200).
// ---------------------------------------------------------------------------

struct RunResult {
  std::map<std::string, uint64_t, std::less<>> counters;
  std::vector<std::string> audit;
  Cycles clock = 0;
  std::vector<Word> values;
  uint64_t lock_contended = 0;
  uint64_t lock_handoffs = 0;
  Cycles lock_handoff_cycles = 0;
  uint64_t lock_max_queue_depth = 0;
  bool all_done = false;
  bool ok = false;
};

RunResult RunMixed(const KernelConfig& config) {
  RunResult out;
  Kernel kernel{config};
  if (!kernel.Boot().ok()) {
    return out;
  }
  kernel.processes().set_quantum(3);
  PathWalker walker(&kernel.gates());
  std::vector<ProcessId> pids;
  std::vector<Segno> segnos;
  for (uint32_t i = 0; i < 6; ++i) {
    auto pid = kernel.processes().CreateProcess(TestSubject("U" + std::to_string(i)));
    if (!pid.ok()) {
      return out;
    }
    ProcContext* ctx = kernel.processes().Context(*pid);
    auto entry = walker.CreateSegment(*ctx, ">work>p" + std::to_string(i), WorldAcl(),
                                      Label::SystemLow());
    if (!entry.ok()) {
      return out;
    }
    auto segno = kernel.gates().Initiate(*ctx, *entry);
    if (!segno.ok()) {
      return out;
    }
    std::vector<UserOp> program;
    for (uint32_t n = 0; n < 48; ++n) {
      if (n % 3 == 0) {
        program.push_back(UserOp::Compute(25));
      } else {
        program.push_back(UserOp::Write(*segno, (n % 10) * kPageWords + n, n * 7 + i));
      }
    }
    if (!kernel.processes().SetProgram(*pid, std::move(program)).ok()) {
      return out;
    }
    pids.push_back(*pid);
    segnos.push_back(*segno);
  }
  if (!kernel.processes().RunUntilQuiescent(1000000).ok()) {
    return out;
  }
  for (uint32_t i = 0; i < 6; ++i) {
    auto word = kernel.gates().Read(*kernel.processes().Context(pids[i]), segnos[i],
                                    7 * kPageWords + 47);
    if (!word.ok()) {
      return out;
    }
    out.values.push_back(*word);
  }
  out.all_done = kernel.processes().AllDone();
  out.audit = kernel.AuditIntegrity();
  out.counters = kernel.metrics().counters();
  out.clock = kernel.clock().now();
  const SimSpinLock& lock = kernel.processes().list_lock();
  out.lock_contended = lock.contended();
  out.lock_handoffs = lock.handoffs();
  out.lock_handoff_cycles = lock.handoff_cycles();
  out.lock_max_queue_depth = lock.max_queue_depth();
  out.ok = true;
  return out;
}

KernelConfig PolicyKernelConfig(uint16_t cpus, LockPolicy policy) {
  KernelConfig config;
  config.cpu_count = cpus;
  config.memory_frames = 48;
  config.vp_count = 6;
  config.connect_cost = 200;  // prices dispatch traffic AND the lock lines
  config.lock_policy = policy;
  return config;
}

TEST(LockPolicyEquivalence, KnobsOffIsByteIdenticalToExplicitTestAndSet) {
  // The default-constructed config and an explicit kTestAndSet selection
  // must run the exact pre-policy code path: same counters, clock, audit,
  // values — and no handoff traffic recorded anywhere.
  KernelConfig defaults;
  defaults.cpu_count = 4;
  defaults.memory_frames = 48;
  defaults.vp_count = 6;
  defaults.connect_cost = 200;
  const RunResult off = RunMixed(defaults);
  const RunResult tas = RunMixed(PolicyKernelConfig(4, LockPolicy::kTestAndSet));
  ASSERT_TRUE(off.ok);
  ASSERT_TRUE(tas.ok);
  EXPECT_EQ(off.counters, tas.counters);
  EXPECT_EQ(off.audit, tas.audit);
  EXPECT_EQ(off.clock, tas.clock);
  EXPECT_EQ(off.values, tas.values);
  EXPECT_EQ(off.lock_handoffs, 0u);
  EXPECT_EQ(off.lock_handoff_cycles, 0u);
  EXPECT_EQ(tas.lock_handoff_cycles, 0u);
}

TEST(LockPolicyEquivalence, PoliciesNeverChangeWhatProgramsCompute) {
  // Policies price the handoff; they never reorder grants.  Every policy
  // computes identical stored values and finishes cleanly, and the traffic
  // ordering holds: tas <= anderson == mcs <= ticket in total clock.
  const RunResult tas = RunMixed(PolicyKernelConfig(4, LockPolicy::kTestAndSet));
  const RunResult ticket = RunMixed(PolicyKernelConfig(4, LockPolicy::kTicket));
  const RunResult anderson = RunMixed(PolicyKernelConfig(4, LockPolicy::kAnderson));
  const RunResult mcs = RunMixed(PolicyKernelConfig(4, LockPolicy::kMcs));
  ASSERT_TRUE(tas.ok);
  ASSERT_TRUE(ticket.ok);
  ASSERT_TRUE(anderson.ok);
  ASSERT_TRUE(mcs.ok);
  ASSERT_GT(ticket.lock_contended, 0u) << "workload must contend the list lock";
  EXPECT_EQ(tas.values, ticket.values);
  EXPECT_EQ(tas.values, anderson.values);
  EXPECT_EQ(tas.values, mcs.values);
  EXPECT_TRUE(ticket.all_done);
  EXPECT_TRUE(ticket.audit.empty()) << ticket.audit.front();
  // Anderson and MCS charge identically (one line per handoff): their whole
  // runs are byte-identical, down to the counter dump.
  EXPECT_EQ(anderson.counters, mcs.counters);
  EXPECT_EQ(anderson.clock, mcs.clock);
  EXPECT_EQ(anderson.lock_handoff_cycles, mcs.lock_handoff_cycles);
  // The ticket broadcast can only cost more than the single-line handoff,
  // which can only cost more than charging nothing.
  EXPECT_LE(tas.clock, anderson.clock);
  EXPECT_LE(anderson.clock, ticket.clock);
  EXPECT_GE(ticket.lock_handoff_cycles, mcs.lock_handoff_cycles);
  if (ticket.lock_max_queue_depth > 2) {
    // Some waiter observed more than one grant: the broadcast strictly
    // out-costs the single line.
    EXPECT_GT(ticket.lock_handoff_cycles, mcs.lock_handoff_cycles);
    EXPECT_GT(ticket.clock, anderson.clock);
  }
}

TEST(LockPolicyDeterminism, DoubleRunsAreBitIdenticalAtFourAndSixteenCpus) {
  for (LockPolicy policy : {LockPolicy::kTicket, LockPolicy::kAnderson, LockPolicy::kMcs}) {
    for (uint16_t cpus : {uint16_t{4}, uint16_t{16}}) {
      SCOPED_TRACE(std::string(LockPolicyName(policy)) + " @ " + std::to_string(cpus));
      const KernelConfig config = PolicyKernelConfig(cpus, policy);
      const RunResult a = RunMixed(config);
      const RunResult b = RunMixed(config);
      ASSERT_TRUE(a.ok);
      ASSERT_TRUE(b.ok);
      EXPECT_EQ(a.counters, b.counters);
      EXPECT_EQ(a.audit, b.audit);
      EXPECT_EQ(a.clock, b.clock);
      EXPECT_EQ(a.values, b.values);
      EXPECT_EQ(a.lock_handoff_cycles, b.lock_handoff_cycles);
      EXPECT_EQ(a.lock_max_queue_depth, b.lock_max_queue_depth);
    }
  }
}

TEST(LockPolicyDeterminism, ShardedRunQueuesAcceptThePolicyDeterministically) {
  // The policy also rides the per-shard locks: sharded + steal + MCS must
  // double-run bit-identical and still compute the same values as TAS.
  KernelConfig config = PolicyKernelConfig(4, LockPolicy::kMcs);
  config.sharded_runqueues = true;
  config.steal = true;
  const RunResult a = RunMixed(config);
  const RunResult b = RunMixed(config);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.clock, b.clock);
  EXPECT_EQ(a.values, b.values);
  KernelConfig tas = config;
  tas.lock_policy = LockPolicy::kTestAndSet;
  const RunResult t = RunMixed(tas);
  ASSERT_TRUE(t.ok);
  EXPECT_EQ(a.values, t.values);
}

// ---------------------------------------------------------------------------
// Baseline supervisor: the policy knob on the one global lock.
// ---------------------------------------------------------------------------

TEST(LockPolicyBaseline, GlobalLockChargesPerPolicyAndStaysDeterministic) {
  auto run = [](LockPolicy policy) {
    struct Out {
      Cycles clock = 0;
      uint64_t contended = 0;
      uint64_t handoffs = 0;
      Cycles handoff_cycles = 0;
      bool ok = false;
    } out;
    BaselineConfig config;
    config.memory_frames = 16;  // 4 procs x 6 pages = 24 > 16: every pass faults
    config.cpu_count = 4;
    config.lock_policy = policy;
    config.lock_transfer_cost = 100;
    MonolithicSupervisor sup{config};
    if (!sup.Boot().ok()) {
      return out;
    }
    using Op = MonolithicSupervisor::BaselineOp;
    for (uint32_t i = 0; i < 4; ++i) {
      auto pid = sup.CreateProcess();
      auto uid = sup.CreatePath(">t>s" + std::to_string(i));
      if (!pid.ok() || !uid.ok()) {
        return out;
      }
      for (uint32_t p = 0; p < 6; ++p) {
        (void)sup.Write(*uid, p * kPageWords, p + 1);
      }
      std::vector<Op> program;
      for (uint32_t p = 0; p < 6; ++p) {
        program.push_back(Op{Op::Kind::kRead, *uid, p * kPageWords, 0, 0});
      }
      (void)sup.SetProgram(*pid, std::move(program));
    }
    sup.AlignCpus();
    if (!sup.RunUntilQuiescent(100000).ok()) {
      return out;
    }
    out.clock = sup.clock().now();
    out.contended = sup.global_lock_contended();
    out.handoffs = sup.global_lock_handoffs();
    out.handoff_cycles = sup.global_lock_handoff_cycles();
    out.ok = true;
    return out;
  };
  const auto mcs_a = run(LockPolicy::kMcs);
  const auto mcs_b = run(LockPolicy::kMcs);
  const auto ticket = run(LockPolicy::kTicket);
  ASSERT_TRUE(mcs_a.ok);
  ASSERT_TRUE(mcs_b.ok);
  ASSERT_TRUE(ticket.ok);
  ASSERT_GT(mcs_a.contended, 0u) << "storm must contend the global lock";
  // MCS: exactly one 100-cycle line per contended handoff, reproducibly.
  EXPECT_EQ(mcs_a.handoffs, mcs_a.contended);
  EXPECT_EQ(mcs_a.handoff_cycles, mcs_a.handoffs * 100);
  EXPECT_EQ(mcs_a.clock, mcs_b.clock);
  EXPECT_EQ(mcs_a.handoff_cycles, mcs_b.handoff_cycles);
  // The ticket broadcast observed at least as many handoffs as MCS granted.
  EXPECT_GE(ticket.handoffs, mcs_a.handoffs);
  EXPECT_GE(ticket.handoff_cycles, mcs_a.handoff_cycles);
}

}  // namespace
}  // namespace mks
