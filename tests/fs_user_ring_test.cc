// Tests for the user-ring file system software: path walker, reference name
// manager, dynamic linker.
#include <gtest/gtest.h>

#include "src/fs/linker.h"
#include "tests/kernel_fixture.h"

namespace mks {
namespace {

TEST(PathWalker, SplitsTreeNames) {
  EXPECT_TRUE(PathWalker::Split("").empty());
  EXPECT_TRUE(PathWalker::Split(">").empty());
  auto parts = PathWalker::Split(">udd>Projx>Jones");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "udd");
  EXPECT_EQ(parts[2], "Jones");
}

TEST(PathWalker, WalkAndInitiate) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  PathWalker walker(&fx.kernel.gates());
  auto entry = walker.CreateSegment(*fx.ctx, ">udd>Projx>Jones>notes", WorldAcl(),
                                    Label::SystemLow());
  ASSERT_TRUE(entry.ok()) << entry.status();
  auto segno = walker.Initiate(*fx.ctx, ">udd>Projx>Jones>notes");
  ASSERT_TRUE(segno.ok()) << segno.status();
  ASSERT_TRUE(fx.kernel.gates().Write(*fx.ctx, *segno, 3, 9).ok());
  auto walked = walker.Walk(*fx.ctx, ">udd>Projx>Jones>notes");
  ASSERT_TRUE(walked.ok());
  EXPECT_EQ(walked->value, entry->value);
}

TEST(PathWalker, WalkThroughInaccessibleDirectoryReachesOpenFile) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  auto owner_proc = fx.kernel.processes().CreateProcess(TestSubject("Owner"));
  ASSERT_TRUE(owner_proc.ok());
  ProcContext* owner = fx.kernel.processes().Context(*owner_proc);
  PathWalker walker(&fx.kernel.gates());
  // >closed is owner-only; >closed>public is world-readable.
  auto dir = fx.kernel.gates().CreateDirectory(*owner, fx.kernel.gates().RootId(), "closed",
                                               OwnerOnlyAcl("Owner"), Label::SystemLow());
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(fx.kernel.gates()
                  .CreateSegment(*owner, *dir, "public", WorldAcl(), Label::SystemLow())
                  .ok());
  // The stranger walks straight through.
  auto segno = walker.Initiate(*fx.ctx, ">closed>public");
  ASSERT_TRUE(segno.ok()) << segno.status();
  // And probing nonsense below the closed directory fails only at initiate.
  auto ghost = walker.Walk(*fx.ctx, ">closed>nothing>here");
  ASSERT_TRUE(ghost.ok());
  EXPECT_EQ(fx.kernel.gates().Initiate(*fx.ctx, *ghost).code(), Code::kNoAccess);
}

TEST(RefName, BindResolveUnbind) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  ReferenceNameManager names(&fx.kernel.ctx());
  ASSERT_TRUE(names.Bind(fx.pid, "sqrt", Segno(70)).ok());
  ASSERT_TRUE(names.Bind(fx.pid, "sin", Segno(71)).ok());
  auto segno = names.Resolve(fx.pid, "sqrt");
  ASSERT_TRUE(segno.ok());
  EXPECT_EQ(segno->value, 70u);
  EXPECT_EQ(names.Names(fx.pid).size(), 2u);
  ASSERT_TRUE(names.Unbind(fx.pid, "sqrt").ok());
  EXPECT_EQ(names.Resolve(fx.pid, "sqrt").code(), Code::kNotFound);
  // Per-process isolation.
  EXPECT_EQ(names.Resolve(ProcessId(9999), "sin").code(), Code::kNotFound);
}

TEST(Linker, SnapsThroughSearchRulesThenHitsFast) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  PathWalker walker(&fx.kernel.gates());
  ReferenceNameManager names(&fx.kernel.ctx());
  DynamicLinker linker(&fx.kernel.ctx(), &fx.kernel.gates(), &walker, &names);

  ASSERT_TRUE(
      walker.CreateSegment(*fx.ctx, ">lib>math_", WorldAcl(), Label::SystemLow()).ok());
  linker.AddSearchDir(fx.pid, ">nonexistent");
  linker.AddSearchDir(fx.pid, ">lib");

  auto first = linker.Snap(*fx.ctx, "math_");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(linker.snaps(), 1u);
  auto second = linker.Snap(*fx.ctx, "math_");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->value, first->value);
  EXPECT_EQ(linker.fast_hits(), 1u);
  EXPECT_EQ(linker.snaps(), 1u);  // no second search

  EXPECT_EQ(linker.Snap(*fx.ctx, "no_such_symbol").code(), Code::kNotFound);
}

TEST(Linker, ResetLinkageForcesResnap) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  PathWalker walker(&fx.kernel.gates());
  ReferenceNameManager names(&fx.kernel.ctx());
  DynamicLinker linker(&fx.kernel.ctx(), &fx.kernel.gates(), &walker, &names);
  ASSERT_TRUE(walker.CreateSegment(*fx.ctx, ">lib>tool_", WorldAcl(), Label::SystemLow()).ok());
  linker.AddSearchDir(fx.pid, ">lib");
  ASSERT_TRUE(linker.Snap(*fx.ctx, "tool_").ok());
  linker.ResetLinkage(fx.pid);
  ASSERT_TRUE(linker.Snap(*fx.ctx, "tool_").ok());
  // The second resolution used the reference-name rule (bound on first snap)
  // rather than a directory search.
  EXPECT_EQ(fx.kernel.metrics().Get("linker.snaps"), 1u);
  EXPECT_EQ(linker.snaps(), 2u);
}

}  // namespace
}  // namespace mks
