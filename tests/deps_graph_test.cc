// Tests for the dependency-structure analyzer: SCCs, layers, the runtime
// call tracker, and the signal scope.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/deps/tracker.h"

namespace mks {
namespace {

TEST(DependencyGraph, EmptyGraphIsLoopFree) {
  DependencyGraph g;
  EXPECT_TRUE(g.IsLoopFree());
  EXPECT_TRUE(g.Loops().empty());
}

TEST(DependencyGraph, ChainIsLoopFreeWithLayers) {
  DependencyGraph g;
  g.AddEdge("c", "b", DepKind::kComponent);
  g.AddEdge("b", "a", DepKind::kComponent);
  ASSERT_TRUE(g.IsLoopFree());
  auto layers = g.Layers();
  EXPECT_EQ(layers[g.FindModule("a")], 0);
  EXPECT_EQ(layers[g.FindModule("b")], 1);
  EXPECT_EQ(layers[g.FindModule("c")], 2);
  auto order = g.VerificationOrder();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(g.name(order[0]), "a");
  EXPECT_EQ(g.name(order[2]), "c");
}

TEST(DependencyGraph, DetectsTwoNodeLoop) {
  DependencyGraph g;
  g.AddEdge("page", "process", DepKind::kInterpreter);
  g.AddEdge("process", "page", DepKind::kComponent);
  auto loops = g.Loops();
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].size(), 2u);
  EXPECT_TRUE(g.Layers().empty());
  EXPECT_TRUE(g.VerificationOrder().empty());
}

TEST(DependencyGraph, SelfEdgeIsALoop) {
  DependencyGraph g;
  g.AddEdge("m", "m", DepKind::kMap);
  EXPECT_FALSE(g.IsLoopFree());
}

TEST(DependencyGraph, MultipleKindsBetweenSameModules) {
  DependencyGraph g;
  g.AddEdge("a", "b", DepKind::kComponent);
  g.AddEdge("a", "b", DepKind::kMap);
  g.AddEdge("a", "b", DepKind::kProgram);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_TRUE(g.IsLoopFree());
}

TEST(DependencyGraph, DotAndTextRendering) {
  DependencyGraph g;
  g.AddEdge("segment_manager", "page_frame_manager", DepKind::kComponent);
  const std::string dot = g.ToDot("fig");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("component"), std::string::npos);
  const std::string text = g.ToText();
  EXPECT_NE(text.find("segment_manager --component--> page_frame_manager"), std::string::npos);
}

// Property test: random DAGs (edges only from higher to lower index) are
// always loop-free and the layer assignment respects every edge; adding one
// back edge creates a loop.
class RandomDagTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDagTest, LayersRespectEdgesAndBackEdgeCreatesLoop) {
  Rng rng(GetParam());
  DependencyGraph g;
  constexpr int kNodes = 24;
  for (int i = 0; i < kNodes; ++i) {
    g.AddModule("m" + std::to_string(i));
  }
  struct Edge {
    int from, to;
  };
  std::vector<Edge> edges;
  for (int from = 1; from < kNodes; ++from) {
    const int fanout = static_cast<int>(rng.NextBelow(4));
    for (int k = 0; k < fanout; ++k) {
      const int to = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(from)));
      g.AddEdge(ModuleId(static_cast<uint16_t>(from)), ModuleId(static_cast<uint16_t>(to)),
                DepKind::kComponent);
      edges.push_back({from, to});
    }
  }
  ASSERT_TRUE(g.IsLoopFree());
  auto layers = g.Layers();
  for (const Edge& e : edges) {
    EXPECT_GT(layers[ModuleId(static_cast<uint16_t>(e.from))],
              layers[ModuleId(static_cast<uint16_t>(e.to))]);
  }
  // Close a random edge backwards: instant loop.
  if (!edges.empty()) {
    const Edge& e = edges[rng.NextBelow(edges.size())];
    g.AddEdge(ModuleId(static_cast<uint16_t>(e.to)), ModuleId(static_cast<uint16_t>(e.from)),
              DepKind::kMap);
    EXPECT_FALSE(g.IsLoopFree());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(CallTracker, RecordsNestedCallsOnly) {
  CallTracker tracker;
  const ModuleId a = tracker.Register("a");
  const ModuleId b = tracker.Register("b");
  const ModuleId c = tracker.Register("c");
  {
    CallTracker::Scope sa(&tracker, a);
    {
      CallTracker::Scope sb(&tracker, b);
      CallTracker::Scope sc(&tracker, c);
    }
  }
  const DependencyGraph& observed = tracker.observed();
  EXPECT_TRUE(observed.HasEdge(a, b));
  EXPECT_TRUE(observed.HasEdge(b, c));
  EXPECT_FALSE(observed.HasEdge(a, c));
}

TEST(CallTracker, ReentrantSameModuleRecordsNothing) {
  CallTracker tracker;
  const ModuleId a = tracker.Register("a");
  CallTracker::Scope s1(&tracker, a);
  CallTracker::Scope s2(&tracker, a);
  EXPECT_EQ(tracker.observed().edge_count(), 0u);
}

TEST(CallTracker, SignalScopeSuspendsTheCallerStack) {
  CallTracker tracker;
  const ModuleId low = tracker.Register("page_frame");
  const ModuleId high = tracker.Register("directory");
  {
    CallTracker::Scope in_low(&tracker, low);
    // The upward software signal: no activation records left behind, so the
    // high module's work is observed as a fresh entry, not an edge.
    CallTracker::SignalScope signal(&tracker);
    CallTracker::Scope in_high(&tracker, high);
  }
  EXPECT_FALSE(tracker.observed().HasEdge(low, high));
  // And the stack was restored afterwards.
  {
    CallTracker::Scope in_low(&tracker, low);
    CallTracker::Scope nested(&tracker, high);
  }
  EXPECT_TRUE(tracker.observed().HasEdge(low, high));
}

TEST(CallTracker, UndeclaredEdgesReported) {
  CallTracker tracker;
  const ModuleId a = tracker.Register("a");
  const ModuleId b = tracker.Register("b");
  {
    CallTracker::Scope sa(&tracker, a);
    CallTracker::Scope sb(&tracker, b);
  }
  DependencyGraph declared;
  declared.AddModule("a");
  declared.AddModule("b");
  EXPECT_EQ(tracker.UndeclaredEdges(declared).size(), 1u);
  declared.AddEdge("a", "b", DepKind::kInterpreter);  // any kind legitimizes
  EXPECT_TRUE(tracker.UndeclaredEdges(declared).empty());
}

}  // namespace
}  // namespace mks
