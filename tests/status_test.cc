// Tests for the Status/Result error model.
#include <gtest/gtest.h>

#include "src/common/status.h"

namespace mks {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Code::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s(Code::kQuotaOverflow, "segment >udd>x");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.ToString(), "quota_overflow: segment >udd>x");
}

TEST(Status, HistoricalConditionNames) {
  EXPECT_EQ(CodeName(Code::kNoAccess), "no_access");
  EXPECT_EQ(CodeName(Code::kNoEntry), "no_entry");
  EXPECT_EQ(CodeName(Code::kPackFull), "pack_full");
  EXPECT_EQ(CodeName(Code::kQuotaOverflow), "quota_overflow");
  EXPECT_EQ(CodeName(Code::kNameDuplication), "name_duplication");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_EQ(r.code(), Code::kOk);
}

TEST(Result, HoldsError) {
  Result<int> r(Status(Code::kPackFull, "pack 3"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Code::kPackFull);
  EXPECT_EQ(r.value_or(7), 7);
}

Status FailWhenNegative(int x) {
  if (x < 0) {
    return Status(Code::kInvalidArgument, "negative");
  }
  return Status::Ok();
}

Result<int> Doubled(int x) {
  MKS_RETURN_IF_ERROR(FailWhenNegative(x));
  return 2 * x;
}

Result<int> Chained(int x) {
  MKS_ASSIGN_OR_RETURN(int doubled, Doubled(x));
  MKS_ASSIGN_OR_RETURN(int again, Doubled(doubled));
  return again;
}

TEST(Result, PropagationMacros) {
  auto good = Chained(3);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 12);
  auto bad = Chained(-1);
  EXPECT_EQ(bad.code(), Code::kInvalidArgument);
}

}  // namespace
}  // namespace mks
