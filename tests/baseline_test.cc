// Tests of the baseline (1973-style) monolithic supervisor, including the
// dependency-loop structure of Figures 2 and 3.
#include <gtest/gtest.h>

#include "src/baseline/supervisor.h"

namespace mks {
namespace {

TEST(Baseline, CreateWriteRead) {
  MonolithicSupervisor sup{BaselineConfig{}};
  ASSERT_TRUE(sup.Boot().ok());
  auto uid = sup.CreatePath(">udd>proj>alpha");
  ASSERT_TRUE(uid.ok()) << uid.status();
  ASSERT_TRUE(sup.Write(*uid, 123, 77).ok());
  auto v = sup.Read(*uid, 123);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 77u);
}

TEST(Baseline, FileFoundNeverRevealsIntermediateNames) {
  MonolithicSupervisor sup{BaselineConfig{}};
  ASSERT_TRUE(sup.Boot().ok());
  ASSERT_TRUE(sup.CreatePath(">a>b>c").ok());
  EXPECT_TRUE(sup.FileFound(">a>b>c").ok());
  // Both a missing leaf and a missing intermediate produce the identical
  // "no access" response.
  auto missing_leaf = sup.FileFound(">a>b>zzz");
  auto missing_dir = sup.FileFound(">nope>b>c");
  EXPECT_EQ(missing_leaf.code(), Code::kNoAccess);
  EXPECT_EQ(missing_dir.code(), Code::kNoAccess);
}

TEST(Baseline, QuotaWalkChargesNearestQuotaDirectory) {
  MonolithicSupervisor sup{BaselineConfig{}};
  ASSERT_TRUE(sup.Boot().ok());
  ASSERT_TRUE(sup.CreateDirectoryPath(">udd>deep>deeper").ok());
  ASSERT_TRUE(sup.SetQuota(">udd", 10).ok());
  auto uid = sup.CreatePath(">udd>deep>deeper>file");
  ASSERT_TRUE(uid.ok());
  for (uint32_t p = 0; p < 10; ++p) {
    ASSERT_TRUE(sup.Write(*uid, p * kPageWords, 1).ok()) << p;
  }
  // The 11th page exceeds the quota found by walking up to >udd.
  EXPECT_EQ(sup.Write(*uid, 10 * kPageWords, 1).code(), Code::kQuotaOverflow);
  EXPECT_GT(sup.metrics().Get("baseline.quota_walk_hops"), 0u);
  auto used = sup.QuotaUsed(">udd");
  ASSERT_TRUE(used.ok());
  EXPECT_EQ(*used, 10u);
}

TEST(Baseline, FullPackMovesSegmentAndUpdatesDirectoryEntry) {
  BaselineConfig config;
  config.pack_count = 2;
  config.records_per_pack = 24;  // tiny packs so one fills quickly
  config.retranslate_conflict_rate = 0.0;
  MonolithicSupervisor sup{config};
  ASSERT_TRUE(sup.Boot().ok());
  auto a = sup.CreatePath(">a");
  auto b = sup.CreatePath(">b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Fill pages alternately until one pack fills and a move happens.
  Status st = Status::Ok();
  for (uint32_t p = 0; p < 20 && st.ok(); ++p) {
    st = sup.Write(*a, p * kPageWords, 1);
    if (st.ok()) {
      st = sup.Write(*b, p * kPageWords, 1);
    }
  }
  EXPECT_GT(sup.metrics().Get("baseline.full_pack_moves"), 0u);
  // Data still reachable after the move.
  auto v = sup.Read(*a, 0);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(*v, 1u);
}

TEST(Baseline, HierarchyConstrainsDeactivation) {
  BaselineConfig config;
  config.ast_slots = 6;  // tiny AST: force replacements
  MonolithicSupervisor sup{config};
  ASSERT_TRUE(sup.Boot().ok());
  // A deep chain keeps all ancestors active: replacements must skip them.
  std::vector<SegmentUid> uids;
  for (int i = 0; i < 6; ++i) {
    auto uid = sup.CreatePath(">d1>d2>f" + std::to_string(i));
    ASSERT_TRUE(uid.ok());
    uids.push_back(*uid);
  }
  for (auto uid : uids) {
    ASSERT_TRUE(sup.Write(uid, 0, 9).ok());
  }
  EXPECT_GT(sup.metrics().Get("baseline.deactivation_blocked_by_hierarchy"), 0u);
}

TEST(Baseline, ProcessesRunToCompletion) {
  MonolithicSupervisor sup{BaselineConfig{}};
  ASSERT_TRUE(sup.Boot().ok());
  auto uid = sup.CreatePath(">data>shared");
  ASSERT_TRUE(uid.ok());
  for (int i = 0; i < 3; ++i) {
    auto pid = sup.CreateProcess();
    ASSERT_TRUE(pid.ok());
    std::vector<MonolithicSupervisor::BaselineOp> program;
    for (uint32_t n = 0; n < 40; ++n) {
      MonolithicSupervisor::BaselineOp op;
      op.kind = MonolithicSupervisor::BaselineOp::Kind::kWrite;
      op.uid = *uid;
      op.offset = (n % 8) * kPageWords + static_cast<uint32_t>(i);
      op.value = n;
      program.push_back(op);
    }
    ASSERT_TRUE(sup.SetProgram(*pid, std::move(program)).ok());
  }
  EXPECT_TRUE(sup.RunUntilQuiescent(10000).ok());
  EXPECT_GT(sup.metrics().Get("baseline.state_loads"), 0u);
}

TEST(BaselineFigures, SuperficialStructureHasExactlyTheObviousLoop) {
  const DependencyGraph g = MonolithicSupervisor::SuperficialStructure();
  const auto loops = g.Loops();
  ASSERT_EQ(loops.size(), 1u);
  // The loop is page control <-> process control (through segment control).
  std::vector<std::string> names;
  for (ModuleId m : loops[0]) {
    names.push_back(g.name(m));
  }
  EXPECT_NE(std::find(names.begin(), names.end(), baseline_modules::kPageControl), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), baseline_modules::kProcessControl),
            names.end());
}

TEST(BaselineFigures, ActualStructureHasLargerLoops) {
  const DependencyGraph superficial = MonolithicSupervisor::SuperficialStructure();
  const DependencyGraph actual = MonolithicSupervisor::ActualStructure();
  ASSERT_FALSE(actual.IsLoopFree());
  size_t superficial_largest = 0;
  for (const auto& scc : superficial.Loops()) {
    superficial_largest = std::max(superficial_largest, scc.size());
  }
  size_t actual_largest = 0;
  for (const auto& scc : actual.Loops()) {
    actual_largest = std::max(actual_largest, scc.size());
  }
  // Close inspection reveals more modules entangled than the obvious view.
  EXPECT_GT(actual_largest, superficial_largest);
  EXPECT_GE(actual_largest, 5u);  // dir, as, seg, page, proc
}

TEST(BaselineFigures, ObservedCallsReproduceTheLoops) {
  BaselineConfig config;
  config.pack_count = 2;
  config.records_per_pack = 24;
  config.retranslate_conflict_rate = 0.0;
  MonolithicSupervisor sup{config};
  ASSERT_TRUE(sup.Boot().ok());
  ASSERT_TRUE(sup.SetQuota(">", 1000).ok());
  auto a = sup.CreatePath(">x>y>a");
  auto b = sup.CreatePath(">x>y>b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Status st = Status::Ok();
  for (uint32_t p = 0; p < 20 && st.ok(); ++p) {
    st = sup.Write(*a, p * kPageWords, 1);
    if (st.ok()) {
      st = sup.Write(*b, p * kPageWords, 1);
    }
  }
  auto pid = sup.CreateProcess();
  ASSERT_TRUE(pid.ok());
  std::vector<MonolithicSupervisor::BaselineOp> program;
  MonolithicSupervisor::BaselineOp op;
  op.kind = MonolithicSupervisor::BaselineOp::Kind::kRead;
  op.uid = *a;
  program.push_back(op);
  ASSERT_TRUE(sup.SetProgram(*pid, std::move(program)).ok());
  ASSERT_TRUE(sup.RunUntilQuiescent(1000).ok());

  // The runtime call structure itself contains a loop: the monolith really
  // does call around its own layering.
  EXPECT_FALSE(sup.tracker().observed().IsLoopFree());
}

}  // namespace
}  // namespace mks
