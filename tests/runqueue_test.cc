// Tests for the sharded per-CPU run queues (PR 5): determinism with work
// stealing on, fixed steal-victim ordering, affinity masks under dispatch
// pressure, and knobs-off equivalence with the legacy global ready list.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/sim/cpu_sched.h"
#include "tests/kernel_fixture.h"

namespace mks {
namespace {

struct RunResult {
  std::map<std::string, uint64_t, std::less<>> counters;
  std::vector<std::string> audit;
  Cycles clock = 0;
  std::vector<Word> values;  // last-written word per process
  bool all_done = false;
  bool ok = false;
};

// Boots a kernel under `config`, runs a mixed compute/paged-write workload
// across `processes` processes (working sets overflow the frame pool, so
// parking and re-readying exercise the wake -> enqueue path), and snapshots
// everything observable.
RunResult RunMixed(const KernelConfig& config, uint32_t processes = 6) {
  RunResult out;
  Kernel kernel{config};
  if (!kernel.Boot().ok()) {
    return out;
  }
  kernel.processes().set_quantum(3);  // several dispatches per program
  PathWalker walker(&kernel.gates());
  std::vector<ProcessId> pids;
  std::vector<Segno> segnos;
  for (uint32_t i = 0; i < processes; ++i) {
    auto pid = kernel.processes().CreateProcess(TestSubject("U" + std::to_string(i)));
    if (!pid.ok()) {
      return out;
    }
    ProcContext* ctx = kernel.processes().Context(*pid);
    auto entry = walker.CreateSegment(*ctx, ">work>p" + std::to_string(i), WorldAcl(),
                                      Label::SystemLow());
    if (!entry.ok()) {
      return out;
    }
    auto segno = kernel.gates().Initiate(*ctx, *entry);
    if (!segno.ok()) {
      return out;
    }
    std::vector<UserOp> program;
    for (uint32_t n = 0; n < 48; ++n) {
      if (n % 3 == 0) {
        program.push_back(UserOp::Compute(25));
      } else {
        program.push_back(UserOp::Write(*segno, (n % 10) * kPageWords + n, n * 7 + i));
      }
    }
    if (!kernel.processes().SetProgram(*pid, std::move(program)).ok()) {
      return out;
    }
    pids.push_back(*pid);
    segnos.push_back(*segno);
  }
  if (!kernel.processes().RunUntilQuiescent(1000000).ok()) {
    return out;
  }
  for (uint32_t i = 0; i < processes; ++i) {
    // Op n=47 is the last write: offset (47%10)*kPageWords + 47.
    auto word = kernel.gates().Read(*kernel.processes().Context(pids[i]), segnos[i],
                                    7 * kPageWords + 47);
    if (!word.ok()) {
      return out;
    }
    out.values.push_back(*word);
  }
  out.all_done = kernel.processes().AllDone();
  out.audit = kernel.AuditIntegrity();
  out.counters = kernel.metrics().counters();
  out.clock = kernel.clock().now();
  out.ok = true;
  return out;
}

KernelConfig RqConfig(uint16_t cpus, bool sharded, bool steal, Cycles connect_cost) {
  KernelConfig config;
  config.cpu_count = cpus;
  config.memory_frames = 48;  // 6 procs x 10 pages = 60 > 48: eviction pressure
  config.vp_count = 6;
  config.sharded_runqueues = sharded;
  config.steal = steal;
  config.connect_cost = connect_cost;
  return config;
}

TEST(RunQueueDeterminism, TwoShardedStealRunsAreBitIdentical) {
  const KernelConfig config = RqConfig(4, /*sharded=*/true, /*steal=*/true,
                                       /*connect_cost=*/200);
  const RunResult a = RunMixed(config);
  const RunResult b = RunMixed(config);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  // Work stealing and the connect-cost charges are part of the deterministic
  // interleaving: the full counter dump (runq.steals, per-shard depths, the
  // per-CPU busy clocks), the audit, the global clock, and the stored values
  // must all match exactly across runs.
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.audit, b.audit);
  EXPECT_EQ(a.clock, b.clock);
  EXPECT_EQ(a.values, b.values);
}

TEST(RunQueueEquivalence, KnobsOffIsByteIdenticalAndStealAloneIsInert) {
  // steal=true without sharded_runqueues configures no queues at all: the
  // knob combination must be byte-identical to the defaults.
  const RunResult off = RunMixed(RqConfig(4, false, false, 0));
  const RunResult steal_only = RunMixed(RqConfig(4, false, true, 0));
  ASSERT_TRUE(off.ok);
  ASSERT_TRUE(steal_only.ok);
  EXPECT_EQ(off.counters, steal_only.counters);
  EXPECT_EQ(off.clock, steal_only.clock);
  EXPECT_EQ(off.values, steal_only.values);
}

TEST(RunQueueEquivalence, ShardedComputesTheSameResultsAsTheGlobalList) {
  // Sharding changes who runs where and what the dispatch path charges —
  // never what the programs compute.  Same stored values, everything
  // finishes, books balance.
  const RunResult global = RunMixed(RqConfig(4, false, false, 0));
  const RunResult sharded = RunMixed(RqConfig(4, true, true, 200));
  ASSERT_TRUE(global.ok);
  ASSERT_TRUE(sharded.ok);
  EXPECT_EQ(global.values, sharded.values);
  EXPECT_TRUE(global.all_done);
  EXPECT_TRUE(sharded.all_done);
  EXPECT_TRUE(global.audit.empty()) << global.audit.front();
  EXPECT_TRUE(sharded.audit.empty()) << sharded.audit.front();
}

// ---------------------------------------------------------------------------
// RunQueueSet unit level: steal ordering and mask filtering.
// ---------------------------------------------------------------------------

struct RqRig {
  Clock clock;
  CostModel cost{&clock};
  Metrics metrics;
  Tracer trace{&clock, &metrics};
  RunQueueSet rq;

  explicit RqRig(uint16_t cpus, bool steal, Cycles connect_cost = 0)
      : rq(cpus, steal, connect_cost, &cost, &metrics, &trace) {}
};

TEST(RunQueueSetUnit, StealScansVictimsInFixedAscendingOrder) {
  RqRig rig(4, /*steal=*/true);
  // Hint-pin one any-CPU item to each of queues 2, 1, 3 (enqueue order
  // deliberately scrambled; placement, not arrival, must decide).
  rig.rq.Enqueue(22, 0, /*from_cpu=*/2, /*hint_cpu=*/2, 0);
  rig.rq.Enqueue(11, 0, /*from_cpu=*/1, /*hint_cpu=*/1, 0);
  rig.rq.Enqueue(33, 0, /*from_cpu=*/3, /*hint_cpu=*/3, 0);
  ASSERT_EQ(rig.rq.depth(1), 1u);
  ASSERT_EQ(rig.rq.depth(2), 1u);
  ASSERT_EQ(rig.rq.depth(3), 1u);
  // CPU 0's own queue is empty: victims scan 1, 2, 3 — in that order, every
  // time, regardless of queue depths or enqueue order.
  const auto first = rig.rq.Dequeue(0, 0);
  ASSERT_TRUE(first.ok);
  EXPECT_TRUE(first.stolen);
  EXPECT_EQ(first.id, 11u);
  EXPECT_EQ(first.victim, 1u);
  const auto second = rig.rq.Dequeue(0, 0);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.id, 22u);
  EXPECT_EQ(second.victim, 2u);
  const auto third = rig.rq.Dequeue(0, 0);
  ASSERT_TRUE(third.ok);
  EXPECT_EQ(third.id, 33u);
  EXPECT_EQ(third.victim, 3u);
  EXPECT_FALSE(rig.rq.Dequeue(0, 0).ok);
  EXPECT_EQ(rig.metrics.Get("runq.steals"), 3u);
}

TEST(RunQueueSetUnit, StealSkipsAffinityIncompatibleItems) {
  RqRig rig(4, /*steal=*/true);
  // Queue 1 holds an item only CPU 1 may run; queue 2 holds an any-CPU item.
  rig.rq.Enqueue(11, /*mask=*/1u << 1, /*from_cpu=*/1, RunQueueSet::kNoCpu, 0);
  rig.rq.Enqueue(22, /*mask=*/0, /*from_cpu=*/2, /*hint_cpu=*/2, 0);
  ASSERT_EQ(rig.rq.depth(1), 1u);
  // The thief checks victim 1 first, finds nothing it may run, and moves on.
  const auto popped = rig.rq.Dequeue(0, 0);
  ASSERT_TRUE(popped.ok);
  EXPECT_TRUE(popped.stolen);
  EXPECT_EQ(popped.id, 22u);
  EXPECT_EQ(popped.victim, 2u);
  EXPECT_EQ(rig.rq.depth(1), 1u);  // the pinned item was not disturbed
  // CPU 1 takes its own pinned item off the front, unstolen.
  const auto own = rig.rq.Dequeue(1, 0);
  ASSERT_TRUE(own.ok);
  EXPECT_FALSE(own.stolen);
  EXPECT_EQ(own.id, 11u);
}

TEST(RunQueueSetUnit, StealDisabledLeavesOtherQueuesAlone) {
  RqRig rig(2, /*steal=*/false);
  rig.rq.Enqueue(7, 0, /*from_cpu=*/1, /*hint_cpu=*/1, 0);
  EXPECT_FALSE(rig.rq.Dequeue(0, 0).ok);
  EXPECT_TRUE(rig.rq.AnyQueued());
  EXPECT_TRUE(rig.rq.Dequeue(1, 0).ok);
}

// ---------------------------------------------------------------------------
// Affinity under pressure.
// ---------------------------------------------------------------------------

TEST(RunQueueAffinity, InvalidMaskIsRejected) {
  KernelFixture fx(RqConfig(2, true, true, 0));
  ASSERT_TRUE(fx.boot_status.ok());
  // Bit 2 names a CPU outside the 2-CPU pool: the mask excludes every CPU.
  EXPECT_EQ(fx.kernel.processes().SetAffinity(fx.pid, 1u << 2).code(),
            Code::kInvalidArgument);
  EXPECT_EQ(fx.kernel.processes().SetAffinity(fx.pid, 0x3).code(), Code::kOk);
  EXPECT_EQ(fx.kernel.processes().affinity(fx.pid), 0x3u);
  EXPECT_EQ(fx.kernel.processes().SetAffinity(ProcessId(999), 1).code(), Code::kNotFound);
}

TEST(RunQueueAffinity, MasksAreRespectedUnderDispatchPressure) {
  KernelConfig config = RqConfig(4, /*sharded=*/true, /*steal=*/true, /*connect_cost=*/200);
  config.trace.enabled = true;
  Kernel kernel{config};
  ASSERT_TRUE(kernel.Boot().ok());
  kernel.processes().set_quantum(2);  // maximal dispatch pressure
  PathWalker walker(&kernel.gates());
  std::map<uint32_t, uint32_t> pin_of;  // pid -> affinity mask
  std::vector<ProcessId> pids;
  for (uint32_t i = 0; i < 8; ++i) {
    auto pid = kernel.processes().CreateProcess(TestSubject("A" + std::to_string(i)));
    ASSERT_TRUE(pid.ok());
    ProcContext* ctx = kernel.processes().Context(*pid);
    auto entry = walker.CreateSegment(*ctx, ">work>a" + std::to_string(i), WorldAcl(),
                                      Label::SystemLow());
    ASSERT_TRUE(entry.ok());
    auto segno = kernel.gates().Initiate(*ctx, *entry);
    ASSERT_TRUE(segno.ok());
    std::vector<UserOp> program;
    for (uint32_t n = 0; n < 32; ++n) {
      program.push_back(UserOp::Compute(30));
      program.push_back(UserOp::Write(*segno, (n % 4) * kPageWords, n));
    }
    ASSERT_TRUE(kernel.processes().SetProgram(*pid, std::move(program)).ok());
    // Interleave pins: even processes on CPUs {0,1}, odd on CPUs {2,3}.
    // With 8 runnable processes on 4 CPUs every dispatch is contended, so any
    // mask violation (a steal crossing the pin, a mis-homed enqueue) shows.
    const uint32_t pin = (i % 2 == 0) ? 0x3u : 0xcu;
    ASSERT_TRUE(kernel.processes().SetAffinity(*pid, pin).ok());
    pin_of[pid->value] = pin;
    pids.push_back(*pid);
  }
  ASSERT_TRUE(kernel.processes().RunUntilQuiescent(1000000).ok());
  for (ProcessId pid : pids) {
    EXPECT_EQ(kernel.processes().state(pid), ProcState::kDone);
  }
  // Every surviving quantum span must have run on a CPU its process's mask
  // allows.
  const Tracer& trace = kernel.ctx().trace;
  uint64_t quanta_seen = 0;
  for (uint16_t cpu = 0; cpu < 4; ++cpu) {
    for (const TraceRecord& rec : trace.Snapshot(cpu)) {
      if (trace.EventName(rec.event) != "uproc.quantum") {
        continue;
      }
      auto pin = pin_of.find(rec.proc);
      if (pin == pin_of.end()) {
        continue;
      }
      ++quanta_seen;
      EXPECT_NE(pin->second & (1u << rec.cpu), 0u)
          << "process " << rec.proc << " (mask " << pin->second << ") ran a quantum on cpu "
          << rec.cpu;
    }
  }
  EXPECT_GT(quanta_seen, 0u);
  // Both halves of the pool did real work.
  for (uint16_t cpu = 0; cpu < 4; ++cpu) {
    EXPECT_GT(kernel.metrics().Get("smp.cpu" + std::to_string(cpu) + ".busy_cycles"), 0u);
  }
}

}  // namespace
}  // namespace mks
