// Boot and end-to-end smoke tests of the assembled kernel.
#include <gtest/gtest.h>

#include "src/kernel/kernel.h"

namespace mks {
namespace {

Subject UserSubject(const std::string& person = "Jones", uint8_t level = 0) {
  return Subject{Principal{person, "Projx"}, Label(level, 0), /*ring=*/4};
}

Acl OpenAcl() {
  Acl acl;
  acl.Add(AclEntry{"*", "*", AccessModes::RWE()});
  return acl;
}

TEST(KernelBoot, BootSucceeds) {
  Kernel kernel{KernelConfig{}};
  ASSERT_TRUE(kernel.Boot().ok());
  EXPECT_TRUE(kernel.booted());
  EXPECT_TRUE(kernel.core_segments().sealed());
  EXPECT_GT(kernel.page_frames().free_frames(), 0u);
}

TEST(KernelBoot, CoreSegmentsAreFixedAfterBoot) {
  Kernel kernel{KernelConfig{}};
  ASSERT_TRUE(kernel.Boot().ok());
  auto extra = kernel.core_segments().Allocate("late", 1);
  EXPECT_EQ(extra.code(), Code::kFailedPrecondition);
}

TEST(KernelEndToEnd, CreateWriteReadSegment) {
  Kernel kernel{KernelConfig{}};
  ASSERT_TRUE(kernel.Boot().ok());

  auto pid = kernel.processes().CreateProcess(UserSubject());
  ASSERT_TRUE(pid.ok());
  ProcContext* ctx = kernel.processes().Context(*pid);
  ASSERT_NE(ctx, nullptr);

  KernelGates& gates = kernel.gates();
  auto seg = gates.CreateSegment(*ctx, gates.RootId(), "alpha", OpenAcl(), Label::SystemLow());
  ASSERT_TRUE(seg.ok()) << seg.status();

  auto segno = gates.Initiate(*ctx, *seg);
  ASSERT_TRUE(segno.ok()) << segno.status();

  ASSERT_TRUE(gates.Write(*ctx, *segno, 0, 0xdeadbeef).ok());
  ASSERT_TRUE(gates.Write(*ctx, *segno, 5000, 42).ok());  // crosses pages, grows
  auto v0 = gates.Read(*ctx, *segno, 0);
  ASSERT_TRUE(v0.ok());
  EXPECT_EQ(*v0, 0xdeadbeefu);
  auto v1 = gates.Read(*ctx, *segno, 5000);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, 42u);
  // An untouched word in a grown page reads zero.
  auto v2 = gates.Read(*ctx, *segno, 5001);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 0u);
}

TEST(KernelEndToEnd, SearchFindsCreatedEntry) {
  Kernel kernel{KernelConfig{}};
  ASSERT_TRUE(kernel.Boot().ok());
  auto pid = kernel.processes().CreateProcess(UserSubject());
  ASSERT_TRUE(pid.ok());
  ProcContext* ctx = kernel.processes().Context(*pid);
  KernelGates& gates = kernel.gates();

  auto seg = gates.CreateSegment(*ctx, gates.RootId(), "beta", OpenAcl(), Label::SystemLow());
  ASSERT_TRUE(seg.ok());
  auto found = gates.Search(*ctx, gates.RootId(), "beta");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->value, seg->value);

  auto missing = gates.Search(*ctx, gates.RootId(), "gamma");
  EXPECT_EQ(missing.code(), Code::kNoEntry);
}

TEST(KernelEndToEnd, DataSurvivesDeactivationCycles) {
  KernelConfig config;
  config.memory_frames = 64;  // small memory: forces paging
  config.ast_slots = 8;
  Kernel kernel{config};
  ASSERT_TRUE(kernel.Boot().ok());
  auto pid = kernel.processes().CreateProcess(UserSubject());
  ASSERT_TRUE(pid.ok());
  ProcContext* ctx = kernel.processes().Context(*pid);
  KernelGates& gates = kernel.gates();

  // Create several segments and fill pages, cycling the small AST/memory.
  std::vector<Segno> segnos;
  for (int i = 0; i < 4; ++i) {
    auto seg = gates.CreateSegment(*ctx, gates.RootId(), "f" + std::to_string(i), OpenAcl(),
                                   Label::SystemLow());
    ASSERT_TRUE(seg.ok()) << seg.status();
    auto segno = gates.Initiate(*ctx, *seg);
    ASSERT_TRUE(segno.ok()) << segno.status();
    segnos.push_back(*segno);
    for (uint32_t p = 0; p < 16; ++p) {
      ASSERT_TRUE(gates.Write(*ctx, *segno, p * kPageWords + 7, 100u * i + p).ok());
    }
  }
  for (int i = 0; i < 4; ++i) {
    for (uint32_t p = 0; p < 16; ++p) {
      auto v = gates.Read(*ctx, segnos[i], p * kPageWords + 7);
      ASSERT_TRUE(v.ok()) << v.status();
      EXPECT_EQ(*v, 100u * i + p);
    }
  }
  EXPECT_GT(kernel.metrics().Get("pfm.evictions"), 0u);
}

TEST(KernelEndToEnd, RuntimeCallsStayInsideDeclaredLattice) {
  KernelConfig config;
  config.memory_frames = 96;
  config.ast_slots = 8;
  Kernel kernel{config};
  ASSERT_TRUE(kernel.Boot().ok());
  auto pid = kernel.processes().CreateProcess(UserSubject());
  ASSERT_TRUE(pid.ok());
  ProcContext* ctx = kernel.processes().Context(*pid);
  KernelGates& gates = kernel.gates();

  auto dir = gates.CreateDirectory(*ctx, gates.RootId(), "sub", OpenAcl(), Label::SystemLow());
  ASSERT_TRUE(dir.ok());
  auto seg = gates.CreateSegment(*ctx, *dir, "data", OpenAcl(), Label::SystemLow());
  ASSERT_TRUE(seg.ok());
  auto segno = gates.Initiate(*ctx, *seg);
  ASSERT_TRUE(segno.ok());
  for (uint32_t p = 0; p < 30; ++p) {
    ASSERT_TRUE(gates.Write(*ctx, *segno, p * kPageWords, p).ok());
  }
  ASSERT_TRUE(gates.Delete(*ctx, *dir, "data").ok());

  const DependencyGraph declared = Kernel::DeclaredLattice();
  EXPECT_TRUE(declared.IsLoopFree());
  const auto undeclared = kernel.tracker().UndeclaredEdges(declared);
  EXPECT_TRUE(undeclared.empty()) << [&] {
    std::string all;
    for (const auto& e : undeclared) {
      all += e + "\n";
    }
    return all;
  }();
}

}  // namespace
}  // namespace mks
