// Tests for the descriptor associative memory: the cache is a pure
// accelerator, so no invalidation event (eviction, deactivation, bound
// shrink, access revocation, DSBR reload) may ever let it serve a stale
// translation, and switching it off must not change what the kernel does --
// only what it costs.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/hw/machine.h"
#include "tests/kernel_fixture.h"

namespace mks {
namespace {

// ---------------------------------------------------------------------------
// AssociativeMemory in isolation.
// ---------------------------------------------------------------------------

TEST(AssocMemory, ZeroEntriesIsDisabled) {
  AssociativeMemory assoc(0);
  EXPECT_FALSE(assoc.enabled());
  EXPECT_EQ(assoc.capacity(), 0u);
  EXPECT_EQ(assoc.Lookup(AssociativeMemory::MakeKey(1, 2)), nullptr);
}

TEST(AssocMemory, InsertThenLookup) {
  AssociativeMemory assoc(16);
  ASSERT_TRUE(assoc.enabled());
  Ptw ptw;
  const uint64_t key = AssociativeMemory::MakeKey(7, 3);
  assoc.Insert(key, &ptw, true, false, false, 4);
  AssociativeMemory::Entry* entry = assoc.Lookup(key);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->ptw, &ptw);
  EXPECT_TRUE(entry->read);
  EXPECT_FALSE(entry->write);
  EXPECT_EQ(entry->ring_bracket, 4);
  EXPECT_EQ(assoc.Lookup(AssociativeMemory::MakeKey(7, 4)), nullptr);
}

TEST(AssocMemory, LruEvictionWithinSet) {
  // 4 entries = a single 4-way set; five distinct keys force an eviction of
  // exactly the least recently used one.
  AssociativeMemory assoc(AssociativeMemory::kWays);
  std::vector<Ptw> ptws(5);
  std::vector<uint64_t> keys;
  for (uint32_t i = 0; i < 4; ++i) {
    keys.push_back(AssociativeMemory::MakeKey(1, i));
    assoc.Insert(keys[i], &ptws[i], true, true, true, 7);
  }
  // Touch key 0 so key 1 becomes the LRU victim.
  ASSERT_NE(assoc.Lookup(keys[0]), nullptr);
  assoc.Insert(AssociativeMemory::MakeKey(1, 99), &ptws[4], true, true, true, 7);
  EXPECT_NE(assoc.Lookup(keys[0]), nullptr);
  EXPECT_EQ(assoc.Lookup(keys[1]), nullptr);
  EXPECT_NE(assoc.Lookup(AssociativeMemory::MakeKey(1, 99)), nullptr);
}

TEST(AssocMemory, InvalidateTagDropsOnlyThatTag) {
  AssociativeMemory assoc(16);
  Ptw a, b;
  assoc.Insert(AssociativeMemory::MakeKey(5, 0), &a, true, true, true, 7);
  assoc.Insert(AssociativeMemory::MakeKey(5, 1), &a, true, true, true, 7);
  assoc.Insert(AssociativeMemory::MakeKey(6, 0), &b, true, true, true, 7);
  EXPECT_EQ(assoc.InvalidateTag(5), 2u);
  EXPECT_EQ(assoc.Lookup(AssociativeMemory::MakeKey(5, 0)), nullptr);
  EXPECT_EQ(assoc.Lookup(AssociativeMemory::MakeKey(5, 1)), nullptr);
  EXPECT_NE(assoc.Lookup(AssociativeMemory::MakeKey(6, 0)), nullptr);
}

TEST(AssocMemory, InvalidatePtwAndPageTable) {
  AssociativeMemory assoc(16);
  PageTable pt;
  pt.ptws.assign(4, Ptw{});
  Ptw outside;
  assoc.Insert(AssociativeMemory::MakeKey(1, 0), &pt.ptws[0], true, true, true, 7);
  assoc.Insert(AssociativeMemory::MakeKey(1, 2), &pt.ptws[2], true, true, true, 7);
  assoc.Insert(AssociativeMemory::MakeKey(2, 0), &outside, true, true, true, 7);
  EXPECT_EQ(assoc.InvalidatePtw(&pt.ptws[2]), 1u);
  EXPECT_EQ(assoc.Lookup(AssociativeMemory::MakeKey(1, 2)), nullptr);
  // Deactivation: everything resolved through the table's PTW storage dies.
  EXPECT_EQ(assoc.InvalidatePageTable(&pt), 1u);
  EXPECT_EQ(assoc.Lookup(AssociativeMemory::MakeKey(1, 0)), nullptr);
  EXPECT_NE(assoc.Lookup(AssociativeMemory::MakeKey(2, 0)), nullptr);
  assoc.Flush();
  EXPECT_EQ(assoc.Lookup(AssociativeMemory::MakeKey(2, 0)), nullptr);
}

// ---------------------------------------------------------------------------
// The Processor's use of the cache: invalidation correctness.
// ---------------------------------------------------------------------------

struct AssocRig {
  Clock clock;
  CostModel cost{&clock};
  Metrics metrics;
  PageTable pt;
  DescriptorSegment ds;
  Processor processor;

  AssocRig()
      : processor(HwFeatures{.second_dsbr = true,
                             .associative_memory = true,
                             .associative_entries = 16},
                  &cost, &metrics) {
    pt.ptws.assign(8, Ptw{});
    ds.sdws.assign(4, Sdw{});
    Sdw& sdw = ds.sdws[0];
    sdw.present = true;
    sdw.page_table = &pt;
    sdw.bound_pages = 8;
    sdw.read = true;
    sdw.write = true;
    sdw.ring_bracket = 4;
    processor.set_user_ds(&ds);
  }

  void MapPage(uint32_t page, uint32_t frame) {
    pt.ptws[page].in_core = true;
    pt.ptws[page].unallocated = false;
    pt.ptws[page].frame = frame;
  }

  uint64_t Hits() const { return metrics.Get("hw.assoc_hits"); }
};

constexpr Segno kSeg{kSystemSegnoLimit};

TEST(AssocProcessor, SecondAccessIsAHit) {
  AssocRig rig;
  rig.MapPage(1, 7);
  auto first = rig.processor.Access(kSeg, kPageWords + 5, AccessMode::kRead, 4);
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(rig.Hits(), 0u);
  auto second = rig.processor.Access(kSeg, kPageWords + 6, AccessMode::kRead, 4);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(rig.Hits(), 1u);
  EXPECT_EQ(second.abs_addr, 7u * kPageWords + 6);
}

TEST(AssocProcessor, EvictedPageFaultsInsteadOfServingStaleFrame) {
  AssocRig rig;
  rig.MapPage(2, 9);
  ASSERT_TRUE(rig.processor.Access(kSeg, 2 * kPageWords, AccessMode::kRead, 4).ok);
  // Page control evicts the page: frame is reassigned, PTW goes out-of-core,
  // and the eviction site invalidates the cached pairing.
  rig.pt.ptws[2].in_core = false;
  rig.pt.ptws[2].frame = 0;
  rig.processor.InvalidateAssociative(&rig.pt.ptws[2]);
  auto r = rig.processor.Access(kSeg, 2 * kPageWords, AccessMode::kRead, 4);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.fault.kind, FaultKind::kMissingPage);
}

TEST(AssocProcessor, EvictedPageFaultsEvenWithoutExplicitInvalidation) {
  // Belt and braces: the hit path validates the live PTW, so even a missed
  // invalidation cannot produce a wrong absolute address for an out-of-core
  // page -- the reference falls through to the full walk and faults.
  AssocRig rig;
  rig.MapPage(2, 9);
  ASSERT_TRUE(rig.processor.Access(kSeg, 2 * kPageWords, AccessMode::kRead, 4).ok);
  rig.pt.ptws[2].in_core = false;
  auto r = rig.processor.Access(kSeg, 2 * kPageWords, AccessMode::kRead, 4);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.fault.kind, FaultKind::kMissingPage);
  EXPECT_EQ(rig.Hits(), 0u);
}

TEST(AssocProcessor, DeactivatedPageTableStorageIsNeverConsulted) {
  AssocRig rig;
  rig.MapPage(3, 11);
  ASSERT_TRUE(rig.processor.Access(kSeg, 3 * kPageWords, AccessMode::kRead, 4).ok);
  // Segment control deactivates: the PTW storage is invalidated, then the
  // AST slot (and its page table) is handed to a different segment whose
  // page 3 lives in another frame.
  rig.processor.InvalidateAssociative(&rig.pt);
  rig.pt.ptws.assign(8, Ptw{});
  rig.MapPage(3, 5);
  auto r = rig.processor.Access(kSeg, 3 * kPageWords, AccessMode::kRead, 4);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.abs_addr, 5u * kPageWords);
}

TEST(AssocProcessor, BoundShrinkNeverServesStale) {
  AssocRig rig;
  rig.MapPage(5, 13);
  ASSERT_TRUE(rig.processor.Access(kSeg, 5 * kPageWords, AccessMode::kRead, 4).ok);
  // The hit path does not re-check the bound (the cached pairing stands in
  // for the whole walk), so the descriptor-mutation site must invalidate.
  rig.ds.sdws[0].bound_pages = 4;
  rig.processor.ClearAssociative(kSeg);
  auto r = rig.processor.Access(kSeg, 5 * kPageWords, AccessMode::kRead, 4);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.fault.kind, FaultKind::kOutOfBounds);
}

TEST(AssocProcessor, AccessRevocationNeverServesStale) {
  AssocRig rig;
  rig.MapPage(0, 3);
  ASSERT_TRUE(rig.processor.Access(kSeg, 1, AccessMode::kWrite, 4).ok);
  rig.ds.sdws[0].write = false;
  rig.processor.ClearAssociative(kSeg);
  auto r = rig.processor.Access(kSeg, 1, AccessMode::kWrite, 4);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.fault.kind, FaultKind::kAccessViolation);
  // Reads were not revoked and still resolve (and re-fill the cache).
  EXPECT_TRUE(rig.processor.Access(kSeg, 1, AccessMode::kRead, 4).ok);
}

TEST(AssocProcessor, DsbrReloadFlushes) {
  AssocRig rig;
  rig.MapPage(1, 7);
  ASSERT_TRUE(rig.processor.Access(kSeg, kPageWords, AccessMode::kRead, 4).ok);
  ASSERT_TRUE(rig.processor.Access(kSeg, kPageWords, AccessMode::kRead, 4).ok);
  EXPECT_EQ(rig.Hits(), 1u);
  const uint64_t flushes_before = rig.metrics.Get("hw.assoc_flushes");
  // Loading a different descriptor base clears the associative memory, as on
  // the 6180: entries from the old address space must not survive.  The new
  // space maps the same segno to a different frame; serving the cached
  // pairing would hand back the old one.
  DescriptorSegment other = rig.ds;
  PageTable other_pt;
  other_pt.ptws.assign(8, Ptw{});
  other_pt.ptws[1] = Ptw{.frame = 12, .in_core = true, .unallocated = false};
  other.sdws[0].page_table = &other_pt;
  rig.processor.set_user_ds(&other);
  EXPECT_GT(rig.metrics.Get("hw.assoc_flushes"), flushes_before);
  auto r = rig.processor.Access(kSeg, kPageWords, AccessMode::kRead, 4);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.abs_addr, 12u * kPageWords);
  EXPECT_EQ(rig.Hits(), 1u);  // first post-reload reference misses
}

// ---------------------------------------------------------------------------
// Property: cache on vs cache off is cost-only.  Same reference string, a
// memory small enough to force eviction and reactivation traffic, and the
// two kernels must agree on every per-reference outcome, every value read
// back, and the total fault count.
// ---------------------------------------------------------------------------

TEST(AssocProperty, CacheOnAndOffAgreeOnEverythingButCost) {
  constexpr uint32_t kSegments = 5;
  constexpr uint32_t kPagesPerSeg = 12;
  constexpr size_t kReferences = 4000;

  KernelConfig on_config;
  on_config.memory_frames = 72;  // < data pages + resident core segments
  KernelConfig off_config = on_config;
  off_config.features.associative_memory = false;

  KernelFixture on(on_config);
  KernelFixture off(off_config);
  ASSERT_TRUE(on.boot_status.ok());
  ASSERT_TRUE(off.boot_status.ok());

  std::vector<Segno> on_segs, off_segs;
  for (uint32_t s = 0; s < kSegments; ++s) {
    const std::string path = ">prop>seg" + std::to_string(s);
    on_segs.push_back(on.MustCreate(path));
    off_segs.push_back(off.MustCreate(path));
  }

  Rng rng(42);
  uint64_t mismatches = 0;
  for (size_t i = 0; i < kReferences; ++i) {
    const uint32_t s = static_cast<uint32_t>(rng.NextBelow(kSegments));
    const uint32_t page = static_cast<uint32_t>(rng.NextZipf(kPagesPerSeg, 1.1));
    const uint32_t offset = page * kPageWords + static_cast<uint32_t>(rng.NextBelow(kPageWords));
    if (rng.NextBool(0.4)) {
      const Word value = static_cast<Word>(i + 1);
      Status a = on.kernel.gates().Write(*on.ctx, on_segs[s], offset, value);
      Status b = off.kernel.gates().Write(*off.ctx, off_segs[s], offset, value);
      mismatches += a.code() != b.code();
    } else {
      auto a = on.kernel.gates().Read(*on.ctx, on_segs[s], offset);
      auto b = off.kernel.gates().Read(*off.ctx, off_segs[s], offset);
      mismatches += a.status().code() != b.status().code();
      if (a.ok() && b.ok()) {
        mismatches += *a != *b;
      } else {
        mismatches += a.ok() != b.ok();
      }
    }
  }
  EXPECT_EQ(mismatches, 0u);

  // The cache did something (otherwise this property is vacuous) ...
  EXPECT_GT(on.kernel.metrics().Get("hw.assoc_hits"), 0u);
  EXPECT_EQ(off.kernel.metrics().Get("hw.assoc_hits"), 0u);
  // ... and changed nothing the program can observe: same fault history,
  // same final memory contents.
  EXPECT_EQ(on.kernel.metrics().Get("pfm.faults_serviced"),
            off.kernel.metrics().Get("pfm.faults_serviced"));
  EXPECT_EQ(on.kernel.metrics().Get("ksm.segment_faults"),
            off.kernel.metrics().Get("ksm.segment_faults"));
  for (uint32_t s = 0; s < kSegments; ++s) {
    for (uint32_t w = 0; w < kPagesPerSeg * kPageWords; w += 257) {
      auto a = on.kernel.gates().Read(*on.ctx, on_segs[s], w);
      auto b = off.kernel.gates().Read(*off.ctx, off_segs[s], w);
      ASSERT_EQ(a.ok(), b.ok()) << "seg " << s << " word " << w;
      if (a.ok()) {
        ASSERT_EQ(*a, *b) << "seg " << s << " word " << w;
      }
    }
  }
}

}  // namespace
}  // namespace mks
