// Tests for the simulated hardware: translation, faults, and the new-design
// processor features.
#include <gtest/gtest.h>

#include "src/hw/machine.h"

namespace mks {
namespace {

struct HwFixture {
  Clock clock;
  CostModel cost{&clock};
  Metrics metrics;
  PrimaryMemory memory{16, &cost, &metrics};
  PageTable pt;
  DescriptorSegment ds;

  explicit HwFixture(HwFeatures features = HwFeatures::KernelDesign())
      : processor(features, &cost, &metrics) {
    pt.ptws.assign(4, Ptw{});
    ds.sdws.assign(4, Sdw{});
    Sdw& sdw = ds.sdws[0];
    sdw.present = true;
    sdw.page_table = &pt;
    sdw.bound_pages = 4;
    sdw.read = true;
    sdw.write = true;
    sdw.ring_bracket = 4;
    processor.set_user_ds(&ds);
  }

  void MapPage(uint32_t page, uint32_t frame) {
    pt.ptws[page].in_core = true;
    pt.ptws[page].unallocated = false;
    pt.ptws[page].frame = frame;
  }

  Processor processor;
};

// With the second DSBR, user segnos start at kSystemSegnoLimit.
constexpr Segno kSeg0{kSystemSegnoLimit};

TEST(Hw, SuccessfulTranslationSetsUsedAndModified) {
  HwFixture hw;
  hw.MapPage(1, 7);
  auto r = hw.processor.Access(kSeg0, kPageWords + 5, AccessMode::kWrite, 4);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.abs_addr, 7u * kPageWords + 5);
  EXPECT_TRUE(hw.pt.ptws[1].used);
  EXPECT_TRUE(hw.pt.ptws[1].modified);
}

TEST(Hw, MissingSegmentFault) {
  HwFixture hw;
  auto r = hw.processor.Access(Segno{kSystemSegnoLimit + 2}, 0, AccessMode::kRead, 4);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.fault.kind, FaultKind::kMissingSegment);
}

TEST(Hw, OutOfBoundsFault) {
  HwFixture hw;
  auto r = hw.processor.Access(kSeg0, 4 * kPageWords, AccessMode::kRead, 4);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.fault.kind, FaultKind::kOutOfBounds);
}

TEST(Hw, AccessViolationAndRingViolation) {
  HwFixture hw;
  hw.MapPage(0, 3);
  auto exec = hw.processor.Access(kSeg0, 0, AccessMode::kExecute, 4);
  EXPECT_EQ(exec.fault.kind, FaultKind::kAccessViolation);
  auto ring = hw.processor.Access(kSeg0, 0, AccessMode::kRead, 5);
  EXPECT_EQ(ring.fault.kind, FaultKind::kRingViolation);
}

TEST(Hw, QuotaExceptionBitDistinguishesGrowth) {
  HwFixture with_bit{HwFeatures::KernelDesign()};
  auto r = with_bit.processor.Access(kSeg0, 0, AccessMode::kWrite, 4);
  EXPECT_EQ(r.fault.kind, FaultKind::kQuotaException);

  // Baseline hardware reports only a missing page; software re-diagnoses.
  HwFixture without{HwFeatures::Baseline()};
  auto r2 = without.processor.Access(Segno{0}, 0, AccessMode::kWrite, 4);
  EXPECT_EQ(r2.fault.kind, FaultKind::kMissingPage);
}

TEST(Hw, DescriptorLockBitLocksAndLatchesAddress) {
  HwFixture hw;
  hw.pt.ptws[0].unallocated = false;  // allocated but not in core
  auto first = hw.processor.Access(kSeg0, 0, AccessMode::kRead, 4);
  EXPECT_EQ(first.fault.kind, FaultKind::kMissingPage);
  EXPECT_TRUE(hw.pt.ptws[0].locked);
  EXPECT_EQ(hw.processor.lock_address_register(), &hw.pt.ptws[0]);
  // A second toucher sees the locked descriptor, not a missing page.
  auto second = hw.processor.Access(kSeg0, 0, AccessMode::kRead, 4);
  EXPECT_EQ(second.fault.kind, FaultKind::kLockedDescriptor);
}

TEST(Hw, BaselineHardwareNeverLocks) {
  HwFixture hw{HwFeatures::Baseline()};
  hw.pt.ptws[0].unallocated = false;
  auto first = hw.processor.Access(Segno{0}, 0, AccessMode::kRead, 4);
  EXPECT_EQ(first.fault.kind, FaultKind::kMissingPage);
  EXPECT_FALSE(hw.pt.ptws[0].locked);
  auto second = hw.processor.Access(Segno{0}, 0, AccessMode::kRead, 4);
  EXPECT_EQ(second.fault.kind, FaultKind::kMissingPage);
}

TEST(Hw, SecondDsbrSplitsSystemAndUserSpaces) {
  HwFixture hw;
  // Build a one-segment system space.
  PageTable sys_pt;
  sys_pt.ptws.assign(1, Ptw{});
  sys_pt.ptws[0].in_core = true;
  sys_pt.ptws[0].unallocated = false;
  sys_pt.ptws[0].frame = 2;
  DescriptorSegment sys_ds;
  sys_ds.sdws.assign(1, Sdw{});
  sys_ds.sdws[0] = Sdw{true, &sys_pt, 1, true, true, true, 0};
  hw.processor.set_system_ds(&sys_ds);

  // Segno 0 translates through the system space at ring 0 only.
  auto sys = hw.processor.Access(Segno{0}, 9, AccessMode::kRead, 0);
  ASSERT_TRUE(sys.ok);
  EXPECT_EQ(sys.abs_addr, 2u * kPageWords + 9);
  auto user_ring = hw.processor.Access(Segno{0}, 9, AccessMode::kRead, 4);
  EXPECT_EQ(user_ring.fault.kind, FaultKind::kRingViolation);

  // User segnos are offset by the system boundary.
  hw.MapPage(0, 5);
  auto user = hw.processor.Access(kSeg0, 3, AccessMode::kRead, 4);
  ASSERT_TRUE(user.ok);
  EXPECT_EQ(user.abs_addr, 5u * kPageWords + 3);
}

TEST(Hw, WakeupWaitingSwitch) {
  HwFixture hw;
  hw.processor.ArmWakeupWaiting();
  EXPECT_FALSE(hw.processor.wakeup_waiting());
  hw.processor.SetWakeupWaiting();
  EXPECT_TRUE(hw.processor.wakeup_waiting());
}

TEST(Hw, ZeroScanChargesPerWordAndDetects) {
  HwFixture hw;
  const Cycles before = hw.clock.now();
  EXPECT_TRUE(hw.memory.FrameIsZero(FrameIndex(1)));
  EXPECT_GE(hw.clock.now() - before, static_cast<Cycles>(kPageWords));
  hw.memory.FrameSpan(FrameIndex(1))[17] = 9;
  EXPECT_FALSE(hw.memory.FrameIsZero(FrameIndex(1)));
}

TEST(Hw, MemoryReadWriteRoundTrip) {
  HwFixture hw;
  hw.memory.WriteWord(1234, 0xabcdef);
  EXPECT_EQ(hw.memory.ReadWord(1234), 0xabcdefu);
  hw.memory.ZeroFrame(FrameIndex(1234 / kPageWords));
  EXPECT_EQ(hw.memory.ReadWord(1234), 0u);
}

}  // namespace
}  // namespace mks
