// The zero-page confinement case study (paper section "From simple semantics
// do complex implementations grow"): because page-sized blocks of zeros are
// represented by file-map flags, READING a zero page allocates storage and
// updates the quota count — a write caused by a read, "perhaps on the other
// side of a protection boundary, in violation of the confinement goal".
//
// These tests demonstrate the channel and the close_zero_page_channel knob
// that trades storage charging accuracy for confinement.
#include <gtest/gtest.h>

#include "tests/kernel_fixture.h"

namespace mks {
namespace {

// Builds a directory with quota, a segment with a reclaimed zero page, and
// returns (dir id, segno for the reader).
struct ChannelSetup {
  EntryId dir{};
  Segno segno{};
};

ChannelSetup BuildZeroPageSegment(KernelFixture& fx) {
  KernelGates& gates = fx.kernel.gates();
  ChannelSetup setup;
  auto dir =
      gates.CreateDirectory(*fx.ctx, gates.RootId(), "qdir", WorldAcl(), Label::SystemLow());
  EXPECT_TRUE(dir.ok());
  setup.dir = *dir;
  EXPECT_TRUE(gates.SetQuota(*fx.ctx, *dir, 100).ok());
  auto seg = gates.CreateSegment(*fx.ctx, *dir, "signal_file", WorldAcl(), Label::SystemLow());
  EXPECT_TRUE(seg.ok());
  auto segno = gates.Initiate(*fx.ctx, *seg);
  EXPECT_TRUE(segno.ok());
  setup.segno = *segno;
  // Grow page 0 with data, then zero it so eviction reclaims the record.
  EXPECT_TRUE(gates.Write(*fx.ctx, *segno, 0, 1).ok());
  EXPECT_TRUE(gates.Write(*fx.ctx, *segno, 0, 0).ok());
  // Force the page out: deactivate by severing and recycling.
  const SegmentUid uid(seg->value);
  fx.kernel.address_spaces().DisconnectEverywhere(uid);
  const uint32_t ast = fx.kernel.segments().FindIndex(uid);
  EXPECT_NE(ast, kNoAst);
  EXPECT_TRUE(fx.kernel.segments().Deactivate(ast).ok());
  return setup;
}

TEST(Confinement, ZeroPageReclaimRefundsQuota) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  ChannelSetup setup = BuildZeroPageSegment(fx);
  EXPECT_GT(fx.kernel.metrics().Get("pfm.zero_reclaims"), 0u);
  auto q = gates.GetQuota(*fx.ctx, setup.dir);
  ASSERT_TRUE(q.ok());
  // Only the directory's own backing page remains charged; the zeroed page
  // was refunded.
  EXPECT_EQ(q->count, 1u);
}

TEST(Confinement, ReadOfZeroPageWritesAccounting) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  ChannelSetup setup = BuildZeroPageSegment(fx);

  auto before = gates.GetQuota(*fx.ctx, setup.dir);
  ASSERT_TRUE(before.ok());

  // The observer "reads" — and the quota count changes.  One bit has crossed
  // from the reader's activity into low-visible accounting state.
  auto value = gates.Read(*fx.ctx, setup.segno, 0);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0u);

  auto after = gates.GetQuota(*fx.ctx, setup.dir);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->count, before->count + 1);
  EXPECT_GT(fx.kernel.metrics().Get("pfm.zero_page_reallocations"), 0u);
}

TEST(Confinement, CovertChannelTransmitsBits) {
  // A high-labelled sender modulates reads of zero pages in a low segment;
  // a low observer reads the quota count.  (Reading DOWN is legal under
  // simple security — that is exactly why this is a covert channel and not
  // an access-control failure.)
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();

  auto dir =
      gates.CreateDirectory(*fx.ctx, gates.RootId(), "qdir", WorldAcl(), Label::SystemLow());
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(gates.SetQuota(*fx.ctx, *dir, 100).ok());
  auto seg = gates.CreateSegment(*fx.ctx, *dir, "medium", WorldAcl(), Label::SystemLow());
  ASSERT_TRUE(seg.ok());
  auto segno_low = gates.Initiate(*fx.ctx, *seg);
  ASSERT_TRUE(segno_low.ok());
  // Prepare 4 zero pages (grow + zero + evict).
  for (uint32_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(gates.Write(*fx.ctx, *segno_low, p * kPageWords, 1).ok());
    ASSERT_TRUE(gates.Write(*fx.ctx, *segno_low, p * kPageWords, 0).ok());
  }
  const SegmentUid uid(seg->value);
  fx.kernel.address_spaces().DisconnectEverywhere(uid);
  ASSERT_TRUE(fx.kernel.segments().Deactivate(fx.kernel.segments().FindIndex(uid)).ok());

  // High sender: reads pages 0 and 2 only (the message 1010).
  auto high_proc = fx.kernel.processes().CreateProcess(TestSubject("High", 3));
  ASSERT_TRUE(high_proc.ok());
  ProcContext* high = fx.kernel.processes().Context(*high_proc);
  auto segno_high = gates.Initiate(*high, *seg);
  ASSERT_TRUE(segno_high.ok());
  auto q0 = gates.GetQuota(*fx.ctx, *dir);
  ASSERT_TRUE(q0.ok());
  ASSERT_TRUE(gates.Read(*high, *segno_high, 0 * kPageWords).ok());
  ASSERT_TRUE(gates.Read(*high, *segno_high, 2 * kPageWords).ok());

  // Low observer: the count moved by exactly the number of 1-bits sent.
  auto q1 = gates.GetQuota(*fx.ctx, *dir);
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(q1->count - q0->count, 2u);
}

TEST(Confinement, RetainModeClosesTheChannel) {
  KernelConfig config;
  config.close_zero_page_channel = true;
  KernelFixture fx{config};
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  ChannelSetup setup = BuildZeroPageSegment(fx);

  auto before = gates.GetQuota(*fx.ctx, setup.dir);
  ASSERT_TRUE(before.ok());
  // With records retained for zero pages, a read moves no accounting state.
  ASSERT_TRUE(gates.Read(*fx.ctx, setup.segno, 0).ok());
  auto after = gates.GetQuota(*fx.ctx, setup.dir);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->count, before->count);
  // The price: the zero page still holds (and is charged for) its record.
  EXPECT_GT(fx.kernel.metrics().Get("pfm.zero_retained"), 0u);
  EXPECT_EQ(fx.kernel.metrics().Get("pfm.zero_page_reallocations"), 0u);
}

}  // namespace
}  // namespace mks
