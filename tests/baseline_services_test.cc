// Tests for the baseline supervisor's in-kernel services (the code bodies the
// redesign projects later extracted) and its race machinery.
#include <gtest/gtest.h>

#include "src/baseline/supervisor.h"

namespace mks {
namespace {

TEST(BaselineServices, LinkSnapCachesPerProcess) {
  MonolithicSupervisor sup{BaselineConfig{}};
  ASSERT_TRUE(sup.Boot().ok());
  auto target = sup.CreatePath(">lib>sqrt_");
  ASSERT_TRUE(target.ok());
  auto pid = sup.CreateProcess();
  ASSERT_TRUE(pid.ok());

  auto first = sup.LinkSnap(*pid, "sqrt_", ">lib>sqrt_");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->value, target->value);
  EXPECT_EQ(sup.metrics().Get("baseline.links_snapped"), 1u);
  // The snapped link short-circuits the search.
  auto second = sup.LinkSnap(*pid, "sqrt_", ">lib>sqrt_");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(sup.metrics().Get("baseline.links_snapped"), 1u);
  // Another process has its own linkage section.
  auto other = sup.CreateProcess();
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(sup.LinkSnap(*other, "sqrt_", ">lib>sqrt_").ok());
  EXPECT_EQ(sup.metrics().Get("baseline.links_snapped"), 2u);
}

TEST(BaselineServices, LinkSnapUnresolvedIsNoAccess) {
  MonolithicSupervisor sup{BaselineConfig{}};
  ASSERT_TRUE(sup.Boot().ok());
  auto pid = sup.CreateProcess();
  ASSERT_TRUE(pid.ok());
  // The two-response rule applies inside the linker too.
  EXPECT_EQ(sup.LinkSnap(*pid, "ghost_", ">lib>ghost_").code(), Code::kNoAccess);
}

TEST(BaselineServices, NameManagerPerProcessBindings) {
  MonolithicSupervisor sup{BaselineConfig{}};
  ASSERT_TRUE(sup.Boot().ok());
  auto pid = sup.CreateProcess();
  auto other = sup.CreateProcess();
  ASSERT_TRUE(sup.NameBind(*pid, "ws", SegmentUid(77)).ok());
  auto mine = sup.NameLookup(*pid, "ws");
  ASSERT_TRUE(mine.ok());
  EXPECT_EQ(mine->value, 77u);
  EXPECT_EQ(sup.NameLookup(*other, "ws").code(), Code::kNotFound);
}

TEST(BaselineServices, RetranslationConflictsForceRetriesButSucceed) {
  BaselineConfig config;
  config.memory_frames = 48;
  config.retranslate_conflict_rate = 0.5;  // a hostile multiprocessor
  MonolithicSupervisor sup{config};
  ASSERT_TRUE(sup.Boot().ok());
  auto uid = sup.CreatePath(">noisy");
  ASSERT_TRUE(uid.ok());
  for (uint32_t p = 0; p < 40; ++p) {
    ASSERT_TRUE(sup.Write(*uid, p * kPageWords, p + 1).ok()) << p;
  }
  for (uint32_t p = 0; p < 40; ++p) {
    auto value = sup.Read(*uid, p * kPageWords);
    ASSERT_TRUE(value.ok()) << p;
    EXPECT_EQ(*value, p + 1);
  }
  EXPECT_GT(sup.metrics().Get("baseline.retranslation_conflicts"), 0u);
  EXPECT_GT(sup.global_lock_acquisitions(), 0u);
}

TEST(BaselineServices, ZeroPageReclaimAndReallocation) {
  BaselineConfig config;
  config.memory_frames = 48;  // small: the flood below must force eviction
  MonolithicSupervisor sup{config};
  ASSERT_TRUE(sup.Boot().ok());
  ASSERT_TRUE(sup.SetQuota(">", 1000).ok());
  auto uid = sup.CreatePath(">sparse");
  ASSERT_TRUE(uid.ok());
  ASSERT_TRUE(sup.Write(*uid, 0, 1).ok());
  ASSERT_TRUE(sup.Write(*uid, 0, 0).ok());  // now all-zero
  // Evict everything by flooding memory with another segment.
  auto flood = sup.CreatePath(">flood");
  ASSERT_TRUE(flood.ok());
  for (uint32_t p = 0; p < 200; ++p) {
    Status st = sup.Write(*flood, (p % kMaxSegmentPages) * kPageWords, p + 1);
    if (!st.ok()) {
      break;
    }
  }
  // Reading the zeroed page reallocates (the baseline leaks accounting too).
  auto value = sup.Read(*uid, 0);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0u);
  EXPECT_GE(sup.metrics().Get("baseline.zero_reclaims") +
                sup.metrics().Get("baseline.zero_page_reallocations"),
            1u);
}

TEST(BaselineServices, QuotaUsedReflectsSubtreeCharges) {
  MonolithicSupervisor sup{BaselineConfig{}};
  ASSERT_TRUE(sup.Boot().ok());
  ASSERT_TRUE(sup.CreateDirectoryPath(">proj").ok());
  ASSERT_TRUE(sup.SetQuota(">proj", 100).ok());
  auto uid = sup.CreatePath(">proj>data");
  ASSERT_TRUE(uid.ok());
  for (uint32_t p = 0; p < 5; ++p) {
    ASSERT_TRUE(sup.Write(*uid, p * kPageWords, 1).ok());
  }
  auto used = sup.QuotaUsed(">proj");
  ASSERT_TRUE(used.ok());
  EXPECT_EQ(*used, 5u);
}

}  // namespace
}  // namespace mks
